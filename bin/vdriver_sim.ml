(* Command-line driver: run one experiment configuration against one of
   the four engines and print the time series the paper's figures plot. *)

open Cmdliner

let engine_of_string = function
  | "pg" -> Ok (fun _config schema -> Inrow_engine.create schema)
  | "mysql" -> Ok (fun _config schema -> Offrow_engine.create schema)
  | "pg-vdriver" ->
      Ok (fun config schema -> Siro_engine.create ~driver_config:config ~flavor:`Pg schema)
  | "mysql-vdriver" ->
      Ok (fun config schema -> Siro_engine.create ~driver_config:config ~flavor:`Mysql schema)
  | s -> Error (`Msg (Printf.sprintf "unknown engine %S" s))

let engine_conv =
  Arg.conv
    ( (fun s -> Result.map (fun e -> (s, e)) (engine_of_string s)),
      fun fmt (s, _) -> Format.pp_print_string fmt s )

let gc_backend_conv =
  Arg.conv
    ( Gc_backend.kind_of_string,
      fun fmt k -> Format.pp_print_string fmt (Gc_backend.kind_name k) )

let run_cmd =
  let engine =
    Arg.(
      required
      & opt (some engine_conv) None
      & info [ "e"; "engine" ] ~docv:"ENGINE"
          ~doc:"Engine: pg, mysql, pg-vdriver or mysql-vdriver.")
  in
  let duration =
    Arg.(value & opt float 20. & info [ "d"; "duration" ] ~docv:"SECONDS" ~doc:"Simulated duration.")
  in
  let workers = Arg.(value & opt int 16 & info [ "w"; "workers" ] ~doc:"OLTP worker count.") in
  let zipf =
    Arg.(
      value & opt float 0. & info [ "z"; "zipf" ] ~doc:"Zipfian exponent (0 = uniform access).")
  in
  let llt_start = Arg.(value & opt float 5. & info [ "llt-start" ] ~doc:"LLT group start (s).") in
  let llt_duration =
    Arg.(value & opt float 10. & info [ "llt-duration" ] ~doc:"LLT lifetime (s).")
  in
  let llts = Arg.(value & opt int 0 & info [ "llts" ] ~doc:"Number of LLTs in the group.") in
  let tables = Arg.(value & opt int 48 & info [ "tables" ] ~doc:"Number of tables.") in
  let rows = Arg.(value & opt int 1000 & info [ "rows" ] ~doc:"Rows per table.") in
  let record_bytes = Arg.(value & opt int 256 & info [ "record-bytes" ] ~doc:"Record size.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic seed.") in
  let quota =
    Arg.(
      value & opt int 0
      & info [ "quota" ] ~docv:"BYTES"
          ~doc:
            "Hard version-space quota for the governor (vDriver engines only; 0 = disabled). \
             Nonzero arms the Normal/Pressured/Emergency/Shedding ladder and prints its \
             summary after the time series.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace_event JSON of the run (one thread per pipeline \
             subsystem; load in chrome://tracing or Perfetto). Tracing is off by \
             default and leaves the simulation bit-identical when disabled.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write the flat metrics JSON snapshot (counters, gauges, histogram \
             summaries) collected during the run.")
  in
  let mode =
    Arg.(
      value
      & opt (enum [ ("sim", `Sim); ("domains", `Domains) ]) `Sim
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "Execution substrate: $(b,sim) (deterministic discrete-event simulation, the \
             default) or $(b,domains) (real OCaml 5 domains under the bounded-skew \
             window; statistically reproducible, prints the run digest).")
  in
  let ndomains =
    Arg.(
      value & opt int 2
      & info [ "domains" ] ~docv:"N" ~doc:"Domain count for --mode=domains.")
  in
  let gc_backend =
    Arg.(
      value
      & opt gc_backend_conv Gc_backend.Vcutter
      & info [ "gc-backend" ] ~docv:"BACKEND"
          ~doc:
            "GC backend for vDriver engines: $(b,vcutter) (the paper's dead-zone \
             collector, the default), $(b,range) (per-version interval subtraction) or \
             $(b,bounded) (enforced worst-case resident dead-version bound). Ignored by \
             the pg/mysql baselines, which have no vDriver to collect.")
  in
  let run (ename, engine) duration workers zipf llt_start llt_duration llts tables rows
      record_bytes seed quota trace_out metrics_out mode ndomains gc_backend =
    let pattern = if zipf <= 0. then Access.Uniform else Access.Zipfian zipf in
    let cfg =
      {
        Exp_config.default with
        Exp_config.name = ename;
        seed;
        duration_s = duration;
        workers;
        schema = { Schema.default with Schema.tables; rows_per_table = rows; record_bytes };
        phases = [ { Exp_config.at_s = 0.; pattern } ];
        llts =
          (if llts = 0 then []
           else [ { Exp_config.start_s = llt_start; duration_s = llt_duration; count = llts } ]);
      }
    in
    let driver_config =
      if quota <= 0 then State.default_config
      else { State.default_config with State.governor = Governor.governed ~quota_bytes:quota }
    in
    let gc_cfg = { Gc_backend.default_config with Gc_backend.kind = gc_backend } in
    let engine = Gc_backend.wrap_engine gc_cfg (engine driver_config) in
    let r =
      match mode with
      | `Sim ->
          Obs_export.with_obs ?trace:trace_out ?metrics:metrics_out (fun () ->
              Runner.run ~engine cfg)
      | `Domains ->
          if trace_out <> None || metrics_out <> None then begin
            prerr_endline "vdriver_sim: --trace/--metrics are Sim-only (tracing assumes \
                           the single-threaded scheduler)";
            exit 2
          end;
          Runner.run ~engine ~mode:(Runner.Domains { domains = ndomains }) cfg
    in
    Printf.printf "# engine=%s duration=%.0fs workers=%d access=%s llts=%d\n" r.Runner.engine_name
      duration workers
      (Access.pattern_to_string pattern)
      llts;
    (match mode with
    | `Domains ->
        Format.printf "%a@." Run_digest.pp
          (Run_digest.of_result ~mode:"domains" ~domains:ndomains cfg r)
    | `Sim -> ());
    Printf.printf "# commits=%d conflicts=%d llt_reads=%d truncations=%d\n" r.Runner.commits
      r.Runner.conflicts r.Runner.llt_reads r.Runner.truncations;
    Printf.printf "# wal_errors=%d retries=%d give_ups=%d sheds=%d\n" r.Runner.wal_errors
      r.Runner.retries r.Runner.give_ups r.Runner.sheds;
    let rows =
      List.map
        (fun (t, tput) ->
          let at l = match List.find_opt (fun (t', _) -> t' > t -. 0.5 && t' <= t +. 0.5) l with
            | Some (_, v) -> v
            | None -> 0.
          in
          [
            Printf.sprintf "%.0f" t;
            Printf.sprintf "%.0f" tput;
            Table.fmt_bytes (int_of_float (at r.Runner.version_space));
            Printf.sprintf "%.0f" (at r.Runner.max_chain);
            Printf.sprintf "%.0f" (at r.Runner.splits);
          ])
        r.Runner.throughput
    in
    Table.print ~header:[ "sec"; "commits/s"; "version-space"; "max-chain"; "splits" ] rows;
    match r.Runner.driver with
    | Some d when quota > 0 ->
        Format.printf "%a@."
          (fun fmt g -> Governor.pp_summary fmt ~now:(Clock.seconds duration) g)
          (Driver.governor d)
    | _ -> ()
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one experiment and print its time series.")
    Term.(
      const run $ engine $ duration $ workers $ zipf $ llt_start $ llt_duration $ llts $ tables
      $ rows $ record_bytes $ seed $ quota $ trace_out $ metrics_out $ mode $ ndomains
      $ gc_backend)

let compare_cmd =
  let duration =
    Arg.(value & opt float 15. & info [ "d"; "duration" ] ~doc:"Simulated duration (s).")
  in
  let zipf = Arg.(value & opt float 0.9 & info [ "z"; "zipf" ] ~doc:"Zipfian exponent (0 = uniform).") in
  let llts = Arg.(value & opt int 4 & info [ "llts" ] ~doc:"LLTs joining at 1/4 of the run.") in
  let run duration zipf llts =
    let pattern = if zipf <= 0. then Access.Uniform else Access.Zipfian zipf in
    let cfg =
      {
        Exp_config.default with
        Exp_config.name = "compare";
        duration_s = duration;
        schema = { Schema.default with Schema.tables = 8; rows_per_table = 500 };
        phases = [ { Exp_config.at_s = 0.; pattern } ];
        llts =
          (if llts = 0 then []
           else
             [
               {
                 Exp_config.start_s = duration /. 4.;
                 duration_s = duration /. 2.;
                 count = llts;
               };
             ]);
      }
    in
    let engines =
      [
        ("pg", fun s -> Inrow_engine.create s);
        ("mysql", fun s -> Offrow_engine.create s);
        ("pg-vdriver", fun s -> Siro_engine.create ~flavor:`Pg s);
        ("mysql-vdriver", fun s -> Siro_engine.create ~flavor:`Mysql s);
      ]
    in
    let quarter = duration /. 4. in
    let rows =
      List.map
        (fun (name, engine) ->
          let r = Runner.run ~engine cfg in
          let before = Runner.avg_throughput r ~between:(0.5, quarter -. 0.5) in
          let during =
            Runner.avg_throughput r ~between:(quarter +. 2., (3. *. quarter) -. 1.)
          in
          [
            name;
            Printf.sprintf "%.0f" before;
            Printf.sprintf "%.0f" during;
            Table.fmt_bytes (Runner.peak_space r);
            string_of_int (Runner.peak_chain r);
            Printf.sprintf "%d us" (Histogram.percentile r.Runner.latency_us 0.99);
          ])
        engines
    in
    Table.print
      ~header:[ "engine"; "tput"; "tput(LLT)"; "peak-space"; "peak-chain"; "p99-latency" ]
      rows
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Run the same LLT scenario on all four engines and compare.")
    Term.(const run $ duration $ zipf $ llts)

let () =
  let doc = "vDriver reproduction simulator (SIGMOD 2020)" in
  let info = Cmd.info "vdriver_sim" ~doc in
  exit (Cmd.eval (Cmd.group info [ run_cmd; compare_cmd ]))
