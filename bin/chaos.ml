(* Seeded chaos campaigns: run the vDriver engines under a randomized
   fault plan with the full invariant catalogue armed, and fail loudly
   if any safety property breaks.

   Everything — workload, fault plan, victim selection, report — is a
   deterministic function of the seed, so `chaos --seed N` prints the
   same bytes on every machine and every run. That makes a violation a
   one-line bug report: the seed reproduces it.

   `--sabotage W` deliberately widens every dead zone by W timestamp
   units (an unsound pruning rule); the run is then *expected* to be
   caught by the prune-soundness oracle, which is how CI proves the
   harness has teeth.

   `--quota BYTES` arms the version-space governor: the campaign then
   additionally asserts that every post-maintenance space checkpoint
   stays within the quota and that the health-ladder transition log is
   honest. `--quota-sabotage` keeps the quota configured but makes the
   governor ignore it — the space invariant must then flag the breach,
   the overload twin of `--sabotage`. `--require-shed` makes a clean
   exit additionally require at least one campaign that reached the
   Shedding rung and recovered to Normal (CI uses it to prove the
   overload scenario actually exercises the whole ladder).

   `--crash-points N` switches the engine to the durable typed-record
   WAL and schedules N deterministic power losses per campaign by WAL
   position (seeded LSN gaps), each with a fabricated torn tail; the
   engine restarts by ARIES-lite replay and the post-recovery
   invariants compare it against the honest log oracle. Poisson
   crashes from the random plan take the same restart path.
   `--skip-tail-check` is the recovery sabotage: restart replays the
   log tail without CRC verification, so a torn tail gets replayed as
   if durable — the post-recovery invariants must catch the divergence
   (a clean exit is a harness bug).

   `--stalls` draws cleaner-stall and collab-delay rates into the plan
   (the cleaning loop hangs for 150-600 ms at a time) and arms the
   liveness watchdog; `--zombie-llts` additionally draws LLT-zombie
   injections (a driver that stops issuing operations but keeps its
   snapshot). With the watchdog on, the campaign must stay within the
   computable reclamation-lag bound (0 violations). `--no-watchdog` is
   the liveness sabotage: leases, beats and the lag monitor still
   observe, but the ladder never acts — the reclamation-lag invariant
   must then flag the stall (a clean exit is a harness bug).
   `--require-containment` makes a clean exit additionally require
   that the injected pressure was really exercised: at least one
   escalation under `--stalls`, at least one zombie cancel under
   `--zombie-llts`. *)

open Cmdliner

let engine_of_string = function
  | "pg-vdriver" -> Ok (fun config schema -> Siro_engine.create ~driver_config:config ~flavor:`Pg schema)
  | "mysql-vdriver" ->
      Ok (fun config schema -> Siro_engine.create ~driver_config:config ~flavor:`Mysql schema)
  | s -> Error (`Msg (Printf.sprintf "unknown engine %S (chaos drives the vDriver engines)" s))

let engine_conv =
  Arg.conv
    ( (fun s -> Result.map (fun e -> (s, e)) (engine_of_string s)),
      fun fmt (s, _) -> Format.pp_print_string fmt s )

let gc_backend_conv =
  Arg.conv
    ( Gc_backend.kind_of_string,
      fun fmt k -> Format.pp_print_string fmt (Gc_backend.kind_name k) )

(* `--gc-backend` swaps the collector behind Driver.maintain for every
   engine the campaigns build; `--gc-sabotage` arms the chosen backend's
   own sabotage knob (a budget-shirking cutter, an announce-array
   off-by-one, a bound-ignoring token collector) which the invariant
   catalogue must catch. The vcutter backend is byte-identical to the
   un-hooked seed path, so installing it unconditionally keeps every
   default campaign reproducible against old outputs. *)
let gc_config ~kind ~sabotage =
  { Gc_backend.default_config with Gc_backend.kind; sabotage }

let gc_banner (cfg : Gc_backend.config) =
  Printf.sprintf " gc=%s%s"
    (Gc_backend.kind_name cfg.Gc_backend.kind)
    (if cfg.Gc_backend.sabotage then " gc-sabotage" else "")

let campaign_config ~seed ~duration =
  {
    Exp_config.default with
    Exp_config.name = "chaos";
    seed;
    duration_s = duration;
    workers = 8;
    schema = { Schema.default with Schema.tables = 4; rows_per_table = 250 };
    phases = [ { Exp_config.at_s = 0.; pattern = Access.Zipfian 0.9 } ];
    llts =
      [
        { Exp_config.start_s = duration /. 5.; duration_s = duration /. 2.; count = 2 };
        { Exp_config.start_s = duration /. 2.; duration_s = duration /. 4.; count = 1 };
      ];
  }

(* `--mode=domains`: every campaign runs twice under the same crash-free
   fault plan — once on the deterministic Sim scheduler, once on real
   OCaml 5 domains — and the two {!Run_digest}s must agree in addition
   to both runs holding every online invariant. `--skip-publish-fence`
   sabotages the domains run's counter publication; the digest
   comparison must then exit 1 (a clean exit is a harness bug). *)
let run_domains_campaigns (ename, engine) seed campaigns duration sabotage quota
    quota_sabotage require_shed ndomains skip_publish_fence vbuffer gc_cfg =
  let governor =
    if quota <= 0 then Governor.default_config
    else
      { (Governor.governed ~quota_bytes:quota) with Governor.quota_ignore_sabotage = quota_sabotage }
  in
  let driver_config =
    { State.default_config with State.zone_widen_sabotage = sabotage; governor }
  in
  let driver_config =
    if vbuffer <= 0 then driver_config
    else { driver_config with State.vbuffer_bytes = vbuffer }
  in
  let engine config = Gc_backend.wrap_engine gc_cfg (engine config) in
  let campaign_seeds =
    let rng = Rng.create seed in
    List.init campaigns (fun _ -> Int64.to_int (Rng.next_int64 rng) land 0x3fffffff)
  in
  Printf.printf "chaos: engine=%s seed=%d campaigns=%d duration=%.1fs mode=domains x%d sabotage=%d quota=%d%s%s%s%s\n"
    ename seed campaigns duration ndomains sabotage quota
    (if quota_sabotage then " quota-sabotage" else "")
    (if skip_publish_fence then " skip-publish-fence" else "")
    (if vbuffer > 0 then Printf.sprintf " vbuffer=%d" vbuffer else "")
    (gc_banner gc_cfg);
  let total_violations = ref 0 and total_mismatches = ref 0 in
  let shed_recoveries = ref 0 in
  List.iteri
    (fun i campaign_seed ->
      (* A plan's poll cursor is stateful: both runs (and the banner)
         get a fresh instance drawn from the same seed. *)
      let plan () = Fault_plan.random ~crashes:false ~seed:campaign_seed () in
      let cfg = campaign_config ~seed:campaign_seed ~duration in
      let rs = Runner.run ~engine:(engine driver_config) ~faults:(plan ()) cfg in
      let rd =
        Runner.run ~engine:(engine driver_config) ~faults:(plan ())
          ~mode:(Runner.Domains { domains = ndomains })
          ~skip_publish_fence cfg
      in
      total_violations :=
        !total_violations
        + Fault_report.violation_count rs.Runner.faults
        + Fault_report.violation_count rd.Runner.faults;
      let ds = Run_digest.of_result ~mode:"sim" ~domains:1 cfg rs in
      let dd = Run_digest.of_result ~mode:"domains" ~domains:ndomains cfg rd in
      Format.printf "@[<v>campaign %d seed=%d plan: %a@ sim:     %a@ domains: %a@]@." i
        campaign_seed Fault_plan.pp (plan ()) Run_digest.pp ds Run_digest.pp dd;
      (match Run_digest.diff ds dd with
      | [] -> Printf.printf "campaign %d digests agree\n" i
      | msgs ->
          total_mismatches := !total_mismatches + List.length msgs;
          List.iter (fun m -> Printf.printf "campaign %d MISMATCH: %s\n" i m) msgs);
      match rd.Runner.driver with
      | Some d when quota > 0 ->
          let g = Driver.governor d in
          let reached_shedding =
            List.exists
              (fun tr -> tr.Governor.to_rung = Governor.Shedding)
              (Governor.transitions g)
          in
          if reached_shedding && Governor.rung g = Governor.Normal then incr shed_recoveries;
          Format.printf "@[<v>campaign %d %a@]@." i
            (fun fmt g -> Governor.pp_summary fmt ~now:(Clock.seconds duration) g)
            g
      | _ -> ())
    campaign_seeds;
  Printf.printf "chaos: %d campaign(s), %d violation(s), %d digest mismatch(es)\n" campaigns
    !total_violations !total_mismatches;
  if !total_violations > 0 || !total_mismatches > 0 then exit 1;
  if require_shed && !shed_recoveries = 0 then begin
    Printf.printf "chaos: FAIL --require-shed: no campaign reached Shedding and recovered\n";
    exit 1
  end

(* `--shards=N`: the campaign drives a {!Shard_group} — N vDriver
   pipelines over one snapshot order — through {!Shard_runner}: routed
   OLTP with a drawn fraction of cross-shard (2PC) transactions, an LLT
   fleet, epoch-broadcast dead zones, power losses by global log
   position, crash-at-2PC-step schedules and torn tails, with the
   per-shard invariant catalogue and the cross-shard atomicity oracle
   armed. `--skip-coord-decision` is the 2PC sabotage: commit decisions
   are never forced, so a skipped decision (statically) or a half-applied
   commit (after a crash) must fail the run. *)
let run_shard_campaigns seed campaigns duration shards scenario cross_pct crash_points
    ckpt_ms crash_steps skip_coord_decision mode ndomains net_loss net_dup net_delay_us
    partitions net_sabotage replicas rep_quorum kill_nodes kill_steps failover_sabotage =
  let scenario =
    match Shard_router.scenario_of_string scenario with
    | Some s -> s
    | None ->
        prerr_endline "chaos: unknown --shard-scenario (uniform | zipf | hot)";
        exit 2
  in
  let net_sabotage =
    match net_sabotage with
    | None -> None
    | Some s -> (
        match Shard_group.net_sabotage_of_string s with
        | Some _ as v -> v
        | None ->
            prerr_endline "chaos: unknown --net-sabotage (apply-on-timeout | ack-forge)";
            exit 2)
  in
  let failover_sabotage =
    match failover_sabotage with
    | None -> None
    | Some s -> (
        match Replica.sabotage_of_string s with
        | Some _ as v -> v
        | None ->
            prerr_endline
              "chaos: unknown --failover-sabotage (ack-before-replicate | stale-primary-writes)";
            exit 2)
  in
  let net_on = net_loss > 0. || net_dup > 0. || net_delay_us > 0 || partitions > 0 in
  if net_on && shards < 2 then begin
    prerr_endline "chaos: network faults need at least two shards (--shards=2+)";
    exit 2
  end;
  if (net_on || net_sabotage <> None) && (crash_points > 0 || crash_steps > 0) then begin
    prerr_endline
      "chaos: network faults and crash schedules are separate campaigns for now — drop \
       --crash-points/--crash-steps or the --net-* flags";
    exit 2
  end;
  if replicas > 0 && (crash_points > 0 || crash_steps > 0) then begin
    prerr_endline
      "chaos: whole-system crash schedules do not compose with replication (power loss \
       truncates the device out from under the mirror protocol) — drop \
       --crash-points/--crash-steps or --replicas";
    exit 2
  end;
  if replicas = 0 && (kill_nodes || kill_steps > 0 || failover_sabotage <> None) then begin
    prerr_endline "chaos: --kill-nodes/--kill-steps/--failover-sabotage need --replicas";
    exit 2
  end;
  if rep_quorum > 0 && (replicas = 0 || rep_quorum > replicas + 1) then begin
    prerr_endline "chaos: --rep-quorum needs --replicas and at most replicas+1";
    exit 2
  end;
  let campaign_seeds =
    let rng = Rng.create seed in
    List.init campaigns (fun _ -> Int64.to_int (Rng.next_int64 rng) land 0x3fffffff)
  in
  Printf.printf
    "chaos: sharded seed=%d campaigns=%d duration=%.1fs shards=%d scenario=%s cross=%d%%%s%s%s%s%s%s%s%s\n"
    seed campaigns duration shards
    (Shard_router.scenario_to_string scenario)
    cross_pct
    (if crash_points > 0 then Printf.sprintf " crash-points=%d" crash_points else "")
    (if crash_steps > 0 then Printf.sprintf " crash-steps=%d" crash_steps else "")
    (if skip_coord_decision then " skip-coord-decision" else "")
    (if net_on then
       Printf.sprintf " net[loss=%.2f dup=%.2f delay=%dus partitions=%d]" net_loss net_dup
         net_delay_us partitions
     else "")
    (match net_sabotage with
    | Some s -> Printf.sprintf " net-sabotage=%s" (Shard_group.net_sabotage_name s)
    | None -> "")
    (if replicas > 0 then
       Printf.sprintf " replicas=%d%s%s%s" replicas
         (if rep_quorum > 0 then Printf.sprintf " quorum=%d" rep_quorum else "")
         (if kill_nodes then " kill-nodes" else "")
         (if kill_steps > 0 then Printf.sprintf " kill-steps=%d" kill_steps else "")
     else "")
    (match failover_sabotage with
    | Some s -> Printf.sprintf " failover-sabotage=%s" (Replica.sabotage_name s)
    | None -> "")
    (match mode with `Domains -> Printf.sprintf " mode=domains x%d" ndomains | `Sim -> "");
  let total_violations = ref 0 and total_mismatches = ref 0 in
  List.iteri
    (fun i campaign_seed ->
      let base =
        {
          (campaign_config ~seed:campaign_seed ~duration) with
          Exp_config.ckpt_period_s = float_of_int ckpt_ms /. 1000.;
        }
      in
      let points =
        if crash_points <= 0 then []
        else begin
          let rng = Rng.create (campaign_seed lxor 0x632d7074) in
          let lsn = ref (shards * Wal.bootstrap_lsn) in
          List.init crash_points (fun _ ->
              lsn := !lsn + 400 + Rng.int rng 4001;
              !lsn)
        end
      in
      let steps =
        if crash_steps <= 0 then []
        else begin
          let rng = Rng.create (campaign_seed lxor 0x32706373) in
          let s = ref 0 in
          List.init crash_steps (fun _ ->
              s := !s + 5 + Rng.int rng 80;
              !s)
        end
      in
      let net =
        if not net_on then Net_fault.none
        else
          Fault_plan.random_net ~loss:net_loss ~dup:net_dup ~delay_us:net_delay_us
            ~partitions ~shards
            ~horizon:(Clock.seconds duration)
            ~seed:campaign_seed ()
      in
      let ksteps =
        (* Replication-step kill schedule: seeded cumulative gaps wide
           enough that the group recovers (promotes and re-syncs)
           between kills. *)
        if kill_steps <= 0 then []
        else begin
          let rng = Rng.create (campaign_seed lxor 0x6b737470) in
          let s = ref 0 in
          List.init kill_steps (fun _ ->
              s := !s + 50 + Rng.int rng 400;
              !s)
        end
      in
      let cfg =
        {
          (Shard_runner.default ~shards base) with
          Shard_runner.scenario;
          cross_pct;
          crash_points = points;
          crash_steps = steps;
          torn_tail = points <> [] || steps <> [];
          skip_coord_decision;
          net;
          net_sabotage;
          replicas;
          rep_quorum = (if rep_quorum > 0 then Some rep_quorum else None);
          kill_steps = ksteps;
          node_faults =
            (if kill_nodes then Some (Fault_plan.random_nodes ~seed:campaign_seed ())
             else None);
          failover_sabotage;
        }
      in
      let r = Shard_runner.run cfg in
      total_violations := !total_violations + Fault_report.violation_count r.Shard_runner.report;
      Format.printf
        "@[<v>campaign %d seed=%d commits=%d (cross=%d single=%d) conflicts=%d 2pc-steps=%d \
         crashes=%d epochs=%d@ %a@]@."
        i campaign_seed r.Shard_runner.commits r.Shard_runner.cross_commits
        r.Shard_runner.single_commits r.Shard_runner.conflicts r.Shard_runner.two_pc_steps
        r.Shard_runner.crashes r.Shard_runner.epochs Fault_report.pp r.Shard_runner.report;
      if r.Shard_runner.crashes > 0 then begin
        let sum f = List.fold_left (fun acc x -> acc + f x) 0 r.Shard_runner.recoveries in
        Format.printf "campaign %d recovery: crashes=%d replayed=%d truncated=%d losers=%d@." i
          r.Shard_runner.crashes
          (sum (fun (x : Engine.restart_info) -> x.Engine.replayed_records))
          (sum (fun (x : Engine.restart_info) -> x.Engine.truncated_frames))
          (sum (fun (x : Engine.restart_info) -> x.Engine.losers_rolled_back))
      end;
      (match r.Shard_runner.digest.Shard_runner.d_net with
      | None -> ()
      | Some n ->
          Printf.printf
            "campaign %d net: sent=%d dropped=%d retried=%d net-aborts=%d indoubt-max=%dus \
             indoubt-mean=%.0fus\n"
            i n.Shard_runner.nd_sent n.Shard_runner.nd_dropped n.Shard_runner.nd_retried
            r.Shard_runner.net_aborts r.Shard_runner.indoubt_max_us
            r.Shard_runner.indoubt_mean_us);
      (match r.Shard_runner.digest.Shard_runner.d_repl with
      | None -> ()
      | Some d ->
          Printf.printf
            "campaign %d repl: kills=%d revives=%d promotions=%d fencings=%d stale-acks=%d \
             restarts=%d failover-lag-max=%dus\n"
            i d.Shard_runner.rd_kills d.Shard_runner.rd_revives d.Shard_runner.rd_promotions
            d.Shard_runner.rd_fencings d.Shard_runner.rd_stale_acks d.Shard_runner.rd_restarts
            d.Shard_runner.rd_lag_max_us);
      match mode with
      | `Sim -> ()
      | `Domains ->
          (* Differential leg: the same honest campaign on real domains;
             the digests must agree. Crash faults are Sim-only, so the
             comparison runs the crash-free variant on both substrates. *)
          let honest =
            {
              cfg with
              Shard_runner.crash_points = [];
              crash_steps = [];
              torn_tail = false;
            }
          in
          let ds = (Shard_runner.run ~mode:Shard_runner.Sim honest).Shard_runner.digest in
          let dd =
            (Shard_runner.run ~mode:(Shard_runner.Domains { domains = ndomains }) honest)
              .Shard_runner.digest
          in
          (match Shard_runner.digest_diff ds dd with
          | [] -> Printf.printf "campaign %d sim/domains digests agree\n" i
          | msgs ->
              total_mismatches := !total_mismatches + List.length msgs;
              List.iter (fun m -> Printf.printf "campaign %d MISMATCH: %s\n" i m) msgs))
    campaign_seeds;
  Printf.printf "chaos: %d sharded campaign(s), %d violation(s), %d digest mismatch(es)\n"
    campaigns !total_violations !total_mismatches;
  if !total_violations > 0 || !total_mismatches > 0 then exit 1

let rec run_campaigns (ename, engine) seed campaigns duration sabotage quota quota_sabotage
    require_shed crash_points ckpt_ms skip_tail_check stalls zombie_llts no_watchdog
    require_containment trace_out metrics_out mode ndomains skip_publish_fence shards
    shard_scenario cross_pct crash_steps skip_coord_decision vbuffer gc_backend gc_sabotage
    net_loss net_dup net_delay_us partitions net_sabotage replicas rep_quorum kill_nodes
    kill_steps failover_sabotage =
  let gc_cfg = gc_config ~kind:gc_backend ~sabotage:gc_sabotage in
  if shards > 0 then begin
    if
      sabotage <> 0 || quota > 0 || quota_sabotage || require_shed || skip_tail_check || stalls
      || zombie_llts || no_watchdog || require_containment || skip_publish_fence
      || trace_out <> None || metrics_out <> None
      || vbuffer > 0 || gc_backend <> Gc_backend.Vcutter || gc_sabotage
    then begin
      prerr_endline
        "chaos: --shards composes only with --crash-points/--crash-steps/--skip-coord-decision/\
         --cross-pct/--shard-scenario/--ckpt-ms/--mode/--net-loss/--net-dup/--net-delay-us/\
         --partitions/--net-sabotage/--replicas/--rep-quorum/--kill-nodes/--kill-steps/\
         --failover-sabotage (the sharded campaign has its own sabotage and oracle, and runs \
         the built-in vcutter path)";
      exit 2
    end;
    run_shard_campaigns seed campaigns duration shards shard_scenario cross_pct crash_points
      ckpt_ms crash_steps skip_coord_decision mode ndomains net_loss net_dup net_delay_us
      partitions net_sabotage replicas rep_quorum kill_nodes kill_steps failover_sabotage
  end
  else if crash_steps > 0 || skip_coord_decision then begin
    prerr_endline "chaos: --crash-steps/--skip-coord-decision need --shards";
    exit 2
  end
  else if replicas > 0 || rep_quorum > 0 || kill_nodes || kill_steps > 0
          || failover_sabotage <> None
  then begin
    prerr_endline
      "chaos: the --replicas/--kill-nodes/--kill-steps/--failover-sabotage surface needs \
       --shards";
    exit 2
  end
  else if net_loss > 0. || net_dup > 0. || net_delay_us > 0 || partitions > 0
          || net_sabotage <> None
  then begin
    prerr_endline "chaos: the --net-*/--partitions fault surface needs --shards";
    exit 2
  end
  else
  match mode with
  | `Domains ->
      if crash_points > 0 || skip_tail_check then begin
        prerr_endline
          "chaos: crash-restart campaigns are Sim-only (crash faults are skipped in domains \
           mode); drop --crash-points/--skip-tail-check";
        exit 2
      end;
      if stalls || zombie_llts || no_watchdog then begin
        prerr_endline
          "chaos: the liveness watchdog is Sim-only; drop --stalls/--zombie-llts/--no-watchdog";
        exit 2
      end;
      if require_containment then begin
        prerr_endline "chaos: --require-containment needs the Sim-only liveness flags";
        exit 2
      end;
      if trace_out <> None || metrics_out <> None then begin
        prerr_endline "chaos: --trace/--metrics are Sim-only (tracing assumes the \
                       single-threaded scheduler)";
        exit 2
      end;
      run_domains_campaigns (ename, engine) seed campaigns duration sabotage quota
        quota_sabotage require_shed ndomains skip_publish_fence vbuffer gc_cfg
  | `Sim ->
      if skip_publish_fence then begin
        prerr_endline "chaos: --skip-publish-fence only sabotages --mode=domains runs";
        exit 2
      end;
      run_sim_campaigns (ename, engine) seed campaigns duration sabotage quota quota_sabotage
        require_shed crash_points ckpt_ms skip_tail_check stalls zombie_llts no_watchdog
        require_containment trace_out metrics_out vbuffer gc_cfg

and run_sim_campaigns (ename, engine) seed campaigns duration sabotage quota quota_sabotage
    require_shed crash_points ckpt_ms skip_tail_check stalls zombie_llts no_watchdog
    require_containment trace_out metrics_out vbuffer gc_cfg =
  let governor =
    if quota <= 0 then Governor.default_config
    else { (Governor.governed ~quota_bytes:quota) with Governor.quota_ignore_sabotage = quota_sabotage }
  in
  let durable = crash_points > 0 || skip_tail_check in
  let driver_config =
    {
      State.default_config with
      State.zone_widen_sabotage = sabotage;
      governor;
      durable_wal = durable;
      recovery_skip_tail_check = skip_tail_check;
    }
  in
  let driver_config =
    if vbuffer <= 0 then driver_config
    else { driver_config with State.vbuffer_bytes = vbuffer }
  in
  let engine config = Gc_backend.wrap_engine gc_cfg (engine config) in
  let campaign_seeds =
    (* Derive one independent seed per campaign from the base seed. *)
    let rng = Rng.create seed in
    List.init campaigns (fun _ -> Int64.to_int (Rng.next_int64 rng) land 0x3fffffff)
  in
  let liveness = stalls || zombie_llts || no_watchdog in
  let wdog =
    if not liveness then None
    else
      Some
        {
          Watchdog.default_config with
          Watchdog.enabled = not no_watchdog;
          check_period = Clock.ms 5;
          stall_timeout = Clock.ms 20;
          escalation_cooldown = Clock.ms 10;
        }
  in
  Printf.printf
    "chaos: engine=%s seed=%d campaigns=%d duration=%.1fs sabotage=%d quota=%d%s%s%s%s%s%s%s%s\n"
    ename seed campaigns duration sabotage quota
    (if quota_sabotage then " quota-sabotage" else "")
    (if crash_points > 0 then Printf.sprintf " crash-points=%d" crash_points else "")
    (if skip_tail_check then " skip-tail-check" else "")
    (if stalls then " stalls" else "")
    (if zombie_llts then " zombie-llts" else "")
    (if no_watchdog then " no-watchdog" else "")
    (if vbuffer > 0 then Printf.sprintf " vbuffer=%d" vbuffer else "")
    (gc_banner gc_cfg);
  (match wdog with
  | Some w ->
      Printf.printf "chaos: liveness lag bound L=%dus (watchdog %s)\n"
        (Watchdog.lag_bound w ~gc_period:Exp_config.default.Exp_config.gc_period / 1000)
        (if w.Watchdog.enabled then "on" else "OFF — sabotage")
  | None -> ());
  let total_violations = ref 0 in
  let shed_recoveries = ref 0 in
  let total_escalations = ref 0 in
  let total_zombie_cancels = ref 0 in
  let horizon = Clock.seconds duration in
  (* One obs scope spans all campaigns: the trace shows the campaigns
     back to back and the metrics snapshot aggregates them. The exports
     are written before the violation count decides the exit status, so
     a failing campaign still leaves its artifacts behind. *)
  Obs_export.with_obs ?trace:trace_out ?metrics:metrics_out (fun () ->
  List.iteri
    (fun i campaign_seed ->
      (* Crash points by WAL position: a seeded schedule with gaps wide
         enough to let relocations, hardens and cuts land between
         crashes, tight enough that several crashes interrupt them
         mid-flight. Points below the bootstrap checkpoint are
         meaningless; start past it. *)
      let points =
        if (not durable) || crash_points <= 0 then []
        else begin
          let rng = Rng.create (campaign_seed lxor 0x632d7074) in
          let lsn = ref Wal.bootstrap_lsn in
          List.init crash_points (fun _ ->
              lsn := !lsn + 200 + Rng.int rng 2801;
              !lsn)
        end
      in
      let plan =
        Fault_plan.random ~crash_points:points ~torn_tail:(points <> []) ~stalls
          ~zombies:zombie_llts ~seed:campaign_seed ()
      in
      let cfg =
        { (campaign_config ~seed:campaign_seed ~duration) with
          Exp_config.ckpt_period_s = float_of_int ckpt_ms /. 1000. }
      in
      let r = Runner.run ~engine:(engine driver_config) ~faults:plan ?watchdog:wdog cfg in
      total_violations := !total_violations + Fault_report.violation_count r.Runner.faults;
      Format.printf "@[<v>campaign %d seed=%d plan: %a@ commits=%d conflicts=%d@ %a@]@." i
        campaign_seed Fault_plan.pp plan r.Runner.commits r.Runner.conflicts Fault_report.pp
        r.Runner.faults;
      if r.Runner.crashes > 0 then begin
        let sum f = List.fold_left (fun acc i -> acc + f i) 0 r.Runner.recoveries in
        Format.printf
          "campaign %d recovery: crashes=%d replayed=%d versions=%d truncated=%d losers=%d@."
          i r.Runner.crashes
          (sum (fun (x : Engine.restart_info) -> x.Engine.replayed_records))
          (sum (fun (x : Engine.restart_info) -> x.Engine.replayed_versions))
          (sum (fun (x : Engine.restart_info) -> x.Engine.truncated_frames))
          (sum (fun (x : Engine.restart_info) -> x.Engine.losers_rolled_back))
      end;
      if liveness then begin
        total_escalations := !total_escalations + r.Runner.watchdog_escalations;
        total_zombie_cancels := !total_zombie_cancels + r.Runner.zombie_cancels;
        Format.printf
          "campaign %d liveness: escalations=%d zombie-cancels=%d max-lag-us=%d lag-samples=%d@."
          i r.Runner.watchdog_escalations r.Runner.zombie_cancels
          (r.Runner.max_reclamation_lag / 1000)
          (Histogram.total r.Runner.reclamation_lag_us)
      end;
      match r.Runner.driver with
      | Some d when quota > 0 ->
          let g = Driver.governor d in
          let reached_shedding =
            List.exists
              (fun tr -> tr.Governor.to_rung = Governor.Shedding)
              (Governor.transitions g)
          in
          if reached_shedding && Governor.rung g = Governor.Normal then incr shed_recoveries;
          Format.printf "@[<v>campaign %d %a@]@." i
            (fun fmt g -> Governor.pp_summary fmt ~now:horizon g)
            g
      | _ -> ())
    campaign_seeds);
  Printf.printf "chaos: %d campaign(s), %d violation(s)\n" campaigns !total_violations;
  if require_shed then
    Printf.printf "chaos: %d campaign(s) shed and recovered to normal\n" !shed_recoveries;
  if liveness then
    Printf.printf "chaos: liveness totals: escalations=%d zombie-cancels=%d\n"
      !total_escalations !total_zombie_cancels;
  if !total_violations > 0 then exit 1;
  if require_shed && !shed_recoveries = 0 then begin
    Printf.printf "chaos: FAIL --require-shed: no campaign reached Shedding and recovered\n";
    exit 1
  end;
  if require_containment then begin
    if stalls && !total_escalations = 0 then begin
      Printf.printf "chaos: FAIL --require-containment: --stalls injected but no escalation\n";
      exit 1
    end;
    if zombie_llts && !total_zombie_cancels = 0 then begin
      Printf.printf
        "chaos: FAIL --require-containment: --zombie-llts injected but no zombie cancel\n";
      exit 1
    end
  end

let cmd =
  let engine =
    Arg.(
      value
      & opt engine_conv ("pg-vdriver", fun config schema -> Siro_engine.create ~driver_config:config ~flavor:`Pg schema)
      & info [ "e"; "engine" ] ~docv:"ENGINE" ~doc:"Engine under test: pg-vdriver or mysql-vdriver.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Base seed; drives everything.") in
  let campaigns =
    Arg.(value & opt int 4 & info [ "campaigns" ] ~doc:"Independent seeded campaigns to run.")
  in
  let duration =
    Arg.(value & opt float 4. & info [ "d"; "duration" ] ~doc:"Simulated seconds per campaign.")
  in
  let sabotage =
    Arg.(
      value & opt int 0
      & info [ "sabotage" ]
          ~doc:
            "Widen every dead zone by this many timestamp units — an intentionally unsound \
             pruning rule the invariant checker must catch (nonzero makes a clean exit a \
             harness bug).")
  in
  let quota =
    Arg.(
      value & opt int 0
      & info [ "quota" ] ~docv:"BYTES"
          ~doc:
            "Arm the version-space governor with this hard quota; the campaign then also \
             asserts the post-maintenance space envelope and the health-ladder honesty \
             (0 = governor disabled).")
  in
  let quota_sabotage =
    Arg.(
      value & flag
      & info [ "quota-sabotage" ]
          ~doc:
            "Keep the quota configured but make the governor ignore it — the space-quota \
             invariant must then flag the breach (a clean exit is a harness bug).")
  in
  let require_shed =
    Arg.(
      value & flag
      & info [ "require-shed" ]
          ~doc:
            "Fail unless at least one campaign climbed the ladder to Shedding and recovered \
             to Normal by the end of the run.")
  in
  let crash_points =
    Arg.(
      value & opt int 0
      & info [ "crash-points" ] ~docv:"N"
          ~doc:
            "Switch the engine to the durable typed-record WAL and schedule N deterministic \
             power losses per campaign by WAL position, each with a fabricated torn tail; \
             recovery replays the surviving log and the post-recovery invariants must hold \
             (0 = no crash points, non-durable engine unless --skip-tail-check).")
  in
  let ckpt_ms =
    Arg.(
      value & opt int 250
      & info [ "ckpt-ms" ] ~docv:"MS"
          ~doc:"Fuzzy-checkpoint period for durable campaigns, in simulated milliseconds.")
  in
  let skip_tail_check =
    Arg.(
      value & flag
      & info [ "skip-tail-check" ]
          ~doc:
            "Recovery sabotage: restart replays the WAL tail without CRC verification, so \
             fabricated torn tails get replayed as durable — the post-recovery invariants \
             must catch the divergence (a clean exit is a harness bug). Implies the durable \
             WAL.")
  in
  let stalls =
    Arg.(
      value & flag
      & info [ "stalls" ]
          ~doc:
            "Draw cleaner-stall and collab-delay rates into the fault plan (the cleaning loop \
             hangs for 150-600 ms at a time) and arm the liveness watchdog; the campaign must \
             stay within the computable reclamation-lag bound.")
  in
  let zombie_llts =
    Arg.(
      value & flag
      & info [ "zombie-llts" ]
          ~doc:
            "Draw LLT-zombie injections (a driver that stops issuing operations but keeps its \
             snapshot pinned) and arm the liveness watchdog; harmful zombies must be shed \
             through the lease path.")
  in
  let no_watchdog =
    Arg.(
      value & flag
      & info [ "no-watchdog" ]
          ~doc:
            "Liveness sabotage: keep leases, heartbeats and the reclamation-lag monitor \
             observing, but never let the watchdog ladder act. Under --stalls the \
             reclamation-lag invariant must then flag the hang (a clean exit is a harness \
             bug).")
  in
  let require_containment =
    Arg.(
      value & flag
      & info [ "require-containment" ]
          ~doc:
            "Fail unless the liveness pressure was really exercised: at least one watchdog \
             escalation under --stalls, at least one zombie cancel under --zombie-llts.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace_event JSON covering every campaign (one thread per \
             pipeline subsystem, fault injections on their own track).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Write the flat metrics JSON aggregated across all campaigns.")
  in
  let mode =
    Arg.(
      value
      & opt (enum [ ("sim", `Sim); ("domains", `Domains) ]) `Sim
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "Execution substrate: $(b,sim) (deterministic, the default) or $(b,domains) — \
             each campaign then runs twice under the same crash-free plan, once on the Sim \
             scheduler and once on real OCaml 5 domains, and the run digests must agree on \
             top of both sides passing every online invariant.")
  in
  let ndomains =
    Arg.(
      value & opt int 2
      & info [ "domains" ] ~docv:"N" ~doc:"Domain count for --mode=domains.")
  in
  let skip_publish_fence =
    Arg.(
      value & flag
      & info [ "skip-publish-fence" ]
          ~doc:
            "Differential sabotage (--mode=domains only): sever the publication of each \
             task's local counters to the shared aggregate. The sim-vs-domains digest \
             comparison must then fail the run (a clean exit is a harness bug).")
  in
  let shards =
    Arg.(
      value & opt int 0
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Run sharded campaigns: N vDriver pipelines over one snapshot order, with routed \
             OLTP, cross-shard 2PC transactions, epoch-broadcast dead zones and the \
             cross-shard atomicity oracle armed (0 = unsharded, the default).")
  in
  let shard_scenario =
    Arg.(
      value & opt string "uniform"
      & info [ "shard-scenario" ] ~docv:"S"
          ~doc:"Traffic shape across shards: $(b,uniform), $(b,zipf) or $(b,hot).")
  in
  let cross_pct =
    Arg.(
      value & opt int 30
      & info [ "cross-pct" ] ~docv:"PCT"
          ~doc:"Percentage of writing transactions forced to span two shards (2PC traffic).")
  in
  let crash_steps =
    Arg.(
      value & opt int 0
      & info [ "crash-steps" ] ~docv:"N"
          ~doc:
            "Sharded campaigns: schedule N whole-system crashes at seeded global 2PC step \
             indices — power loss at exact points of the prepare/decide/apply/ack/forget \
             sequence; recovery must resolve every orphaned prepare to one outcome on every \
             shard.")
  in
  let skip_coord_decision =
    Arg.(
      value & flag
      & info [ "skip-coord-decision" ]
          ~doc:
            "2PC sabotage (sharded campaigns): commit cross-shard transactions without ever \
             forcing the coordinator's decision record. The cross-shard atomicity oracle must \
             then fail the run (a clean exit is a harness bug).")
  in
  let gc_backend =
    Arg.(
      value
      & opt gc_backend_conv Gc_backend.Vcutter
      & info [ "gc-backend" ] ~docv:"BACKEND"
          ~doc:
            "GC backend behind Driver.maintain: $(b,vcutter) (the paper's dead-zone design, \
             the default — byte-identical to the un-hooked seed path), $(b,range) \
             (Wei/Fatourou-style per-version range tracking with live-set subtraction) or \
             $(b,bounded) (BBF+-style bounded-space collection with an enforced resident \
             dead-version bound). All three run under the same governor budgets, invariant \
             catalogue and fault plans.")
  in
  let vbuffer =
    Arg.(
      value & opt int 0
      & info [ "vbuffer" ] ~docv:"BYTES"
          ~doc:
            "Override the vBuffer capacity (0 = the 8 MiB default). Dead-zone pruning keeps \
             the buffer so small that default campaigns never harden a segment; a small \
             vBuffer forces steady hardened-store traffic, which is what exercises the \
             cutter-side reclaim paths of every GC backend.")
  in
  let gc_sabotage =
    Arg.(
      value & flag
      & info [ "gc-sabotage" ]
          ~doc:
            "Arm the chosen backend's own sabotage knob: a cutter that skips every other \
             dead candidate (vcutter), an announce-array off-by-one that never subtracts the \
             oldest live reader (range), or a token-effort collector that ignores its space \
             bound (bounded). The invariant catalogue must catch it — a clean exit is a \
             harness bug.")
  in
  let net_loss =
    Arg.(
      value & opt float 0.
      & info [ "net-loss" ] ~docv:"P"
          ~doc:
            "Sharded campaigns: per-message drop probability on the 2PC/epoch fabric \
             (0 = the provably transparent pass-through). Lost votes retry under \
             per-channel backoff; lost decisions resend until acked.")
  in
  let net_dup =
    Arg.(
      value & opt float 0.
      & info [ "net-dup" ] ~docv:"P"
          ~doc:
            "Sharded campaigns: per-message duplication probability — every receive path \
             must be idempotent for the run to stay clean.")
  in
  let net_delay_us =
    Arg.(
      value & opt int 0
      & info [ "net-delay-us" ] ~docv:"US"
          ~doc:
            "Sharded campaigns: uniform per-message delay bound in simulated microseconds \
             (drawn jitter — what reorders messages in flight).")
  in
  let partitions =
    Arg.(
      value & opt int 0
      & info [ "partitions" ] ~docv:"N"
          ~doc:
            "Sharded campaigns: schedule N seeded bidirectional partitions per campaign, \
             each isolating a drawn subset of shards for a drawn window that heals before \
             the horizon. Single-shard traffic must keep committing; cross-shard \
             transactions spanning the cut fail fast; in-doubt participants must resolve \
             after heal.")
  in
  let net_sabotage =
    Arg.(
      value
      & opt (some string) None
      & info [ "net-sabotage" ] ~docv:"MODE"
          ~doc:
            "Network-layer sabotage (sharded campaigns): $(b,apply-on-timeout) makes an \
             in-doubt participant unilaterally apply a fabricated commit instead of asking \
             the coordinator (the 2PC decision oracle must fail the run); $(b,ack-forge) \
             makes a participant roll back yet ack the commit (the cross-shard atomicity \
             oracle must fail the run). A clean exit is a harness bug.")
  in
  let replicas =
    Arg.(
      value & opt int 0
      & info [ "replicas" ] ~docv:"R"
          ~doc:
            "Sharded campaigns: give every shard R backup nodes mirroring the primary's WAL \
             by typed CRC'd frame shipping, with commits acknowledged only at the \
             sync-replication quorum, lease-based deterministic failover on node death, and \
             the no-committed-loss / no-split-brain / bounded-failover-lag oracles armed \
             (0 = the replication layer is absent and the campaign is byte-identical to the \
             unreplicated driver).")
  in
  let rep_quorum =
    Arg.(
      value & opt int 0
      & info [ "rep-quorum" ] ~docv:"Q"
          ~doc:
            "Sync-replication quorum, counting the primary (0 = a majority of replicas+1). \
             Q=1 acknowledges on the primary alone — safe only against backup deaths.")
  in
  let kill_nodes =
    Arg.(
      value & flag
      & info [ "kill-nodes" ]
          ~doc:
            "Draw a seeded whole-node kill/revive plan per campaign (victims drawn per \
             arrival): dead primaries expire their lease and the highest-caught-up backup is \
             promoted under a bumped fencing epoch; every acknowledged commit must survive.")
  in
  let kill_steps =
    Arg.(
      value & opt int 0
      & info [ "kill-steps" ] ~docv:"N"
          ~doc:
            "Sharded replicated campaigns: schedule N node kills at seeded global \
             replication-step indices — death lands exactly between a ship/ack/quorum \
             step's intent and its effect.")
  in
  let failover_sabotage =
    Arg.(
      value
      & opt (some string) None
      & info [ "failover-sabotage" ] ~docv:"MODE"
          ~doc:
            "Replication sabotage: $(b,ack-before-replicate) acknowledges commits before any \
             frame ships, so a primary kill loses acknowledged commits (no-committed-loss \
             must fail the run); $(b,stale-primary-writes) revives a fenced ex-primary that \
             claims the shard and fabricates commit acks under its old epoch \
             (no-split-brain/no-committed-loss must fail the run). A clean exit is a \
             harness bug.")
  in
  Cmd.v
    (Cmd.info "chaos" ~doc:"Seeded fault-injection campaigns with online invariant checking.")
    Term.(
      const run_campaigns $ engine $ seed $ campaigns $ duration $ sabotage $ quota
      $ quota_sabotage $ require_shed $ crash_points $ ckpt_ms $ skip_tail_check
      $ stalls $ zombie_llts $ no_watchdog $ require_containment $ trace_out $ metrics_out
      $ mode $ ndomains $ skip_publish_fence $ shards $ shard_scenario $ cross_pct
      $ crash_steps $ skip_coord_decision $ vbuffer $ gc_backend $ gc_sabotage
      $ net_loss $ net_dup $ net_delay_us $ partitions $ net_sabotage $ replicas
      $ rep_quorum $ kill_nodes $ kill_steps $ failover_sabotage)

let () = exit (Cmd.eval cmd)
