(* In-repo schema checker for the observability exports: validates a
   Chrome trace_event JSON (--trace) and/or a flat metrics JSON
   (--metrics) produced by `vdriver_sim run` / `chaos`, and exits
   non-zero listing every violation. CI runs this over the smoke-job
   artifacts so a malformed export fails the build, not the person who
   later loads it in chrome://tracing. *)

open Cmdliner

let load path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Jsonx.of_string contents with
  | Ok json -> Ok json
  | Error msg -> Error (Printf.sprintf "%s: JSON parse error: %s" path msg)

let report label path problems =
  if problems = [] then begin
    Printf.printf "obs_check: %s OK (%s)\n" label path;
    0
  end
  else begin
    Printf.printf "obs_check: %s INVALID (%s):\n" label path;
    List.iter (fun p -> Printf.printf "  - %s\n" p) problems;
    List.length problems
  end

let check trace metrics min_tracks no_required =
  if trace = None && metrics = None then begin
    prerr_endline "obs_check: nothing to check (pass --trace and/or --metrics)";
    exit 2
  end;
  let failures = ref 0 in
  (match trace with
  | None -> ()
  | Some path -> (
      match load path with
      | Error msg ->
          Printf.printf "obs_check: %s\n" msg;
          incr failures
      | Ok json ->
          failures := !failures + report "trace" path (Obs_schema.check_trace ~min_tracks json)));
  (match metrics with
  | None -> ()
  | Some path -> (
      match load path with
      | Error msg ->
          Printf.printf "obs_check: %s\n" msg;
          incr failures
      | Ok json ->
          let required = if no_required then [] else Obs_schema.default_metrics_required in
          failures := !failures + report "metrics" path (Obs_schema.check_metrics ~required json)));
  if !failures > 0 then exit 1

let cmd =
  let trace =
    Arg.(
      value
      & opt (some file) None
      & info [ "trace" ] ~docv:"FILE" ~doc:"Chrome trace_event JSON to validate.")
  in
  let metrics =
    Arg.(
      value
      & opt (some file) None
      & info [ "metrics" ] ~docv:"FILE" ~doc:"Flat metrics JSON to validate.")
  in
  let min_tracks =
    Arg.(
      value & opt int 1
      & info [ "min-tracks" ] ~docv:"N"
          ~doc:
            "Require at least this many distinct subsystem tracks (non-metadata tids) \
             in the trace — the coverage floor CI holds the instrumentation to.")
  in
  let no_required =
    Arg.(
      value & flag
      & info [ "no-required" ]
          ~doc:
            "Skip the headline-gauge presence check (txn.throughput, scan percentiles, \
             space peak, prune completeness) when validating metrics.")
  in
  Cmd.v
    (Cmd.info "obs_check" ~doc:"Validate observability exports against the in-repo schema.")
    Term.(const check $ trace $ metrics $ min_tracks $ no_required)

let () = exit (Cmd.eval cmd)
