#!/usr/bin/env bash
# Regenerate the committed golden metrics snapshot CI diffs traced smoke
# runs against (test/golden/obs_metrics.json).
#
# The exporter is deterministic — sim-clock timestamps, canonical JSON,
# fixed seed — so the golden is byte-exact on every machine. Run this
# after a change that legitimately moves the numbers (new metric sites,
# cost-model or scheduling changes), eyeball the diff, and commit it
# together with the change that caused it.
set -euo pipefail
cd "$(dirname "$0")/.."

dune build bin/vdriver_sim.exe bin/obs_check.exe

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Keep in sync with the "Observability smoke" step in .github/workflows/ci.yml.
./_build/default/bin/vdriver_sim.exe run -e pg-vdriver -d 2 --llts 2 --seed 42 \
  --metrics "$tmp/metrics.json" >/dev/null
./_build/default/bin/obs_check.exe --metrics "$tmp/metrics.json"

if [ -f test/golden/obs_metrics.json ] && diff -q test/golden/obs_metrics.json "$tmp/metrics.json" >/dev/null; then
  echo "golden unchanged"
else
  cp "$tmp/metrics.json" test/golden/obs_metrics.json
  echo "updated test/golden/obs_metrics.json — review and commit:"
  git diff --stat -- test/golden/obs_metrics.json || true
fi
