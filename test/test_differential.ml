(* Sim-vs-Domains differential tests.

   The Exec substrate is unit-tested on its own (determinism of the
   inline twin, window respect and completion on real domains, crash
   containment), then the two Runner modes are compared end to end:
   a pinned-config regression proves the default Sim path still
   produces the exact seed numbers after the domain-safety rewrites,
   and a qcheck property drives both modes over random configurations
   and fault plans, requiring zero invariant violations on both sides
   and an empty {!Run_digest.diff}. A sabotaged Domains run (publish
   fence skipped) must produce a non-empty diff — the harness's
   ability to notice lost updates is itself under test. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -------------------------------------------------------------------- *)
(* Exec substrate *)

(* Two inline runs of the same task set produce the identical step log:
   the inline substrate is the deterministic twin. *)
let exec_inline_log () =
  let log = ref [] in
  let e = Exec.inline () in
  for i = 0 to 3 do
    let period = Clock.us (7 + (5 * i)) in
    let remaining = ref (20 + i) in
    Exec.spawn e
      ~name:(Printf.sprintf "t%d" i)
      ~at:(Clock.us i)
      (fun now ->
        log := (i, now) :: !log;
        decr remaining;
        if !remaining = 0 then Exec.Finished else Exec.Sleep_until (now + period))
  done;
  let last = Exec.run e ~until:(Clock.ms 10) in
  (List.rev !log, last)

let test_inline_deterministic () =
  let log1, last1 = exec_inline_log () in
  let log2, last2 = exec_inline_log () in
  check_int "all steps dispatched" (20 + 21 + 22 + 23) (List.length log1);
  check_bool "identical step logs" true (log1 = log2);
  check_int "identical last dispatch" last1 last2;
  (* The log is totally ordered by wake-up time. *)
  let rec sorted = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b && sorted rest
    | _ -> true
  in
  check_bool "inline log time-ordered" true (sorted log1)

(* On real domains every task completes its full step count, the
   dispatched-step telemetry adds up, and no step ever ran further
   ahead of the frontier than the window allows. *)
let test_domains_completion_and_skew () =
  let window = Clock.us 100 in
  let tasks = 6 and steps_each = 200 in
  let counts = Array.make tasks 0 in
  let e = Exec.domains ~window ~domains:3 () in
  for i = 0 to tasks - 1 do
    let period = Clock.us (3 + i) in
    Exec.spawn e
      ~name:(Printf.sprintf "d%d" i)
      ~at:(Clock.us i)
      (fun now ->
        counts.(i) <- counts.(i) + 1;
        if counts.(i) >= steps_each then Exec.Finished
        else Exec.Sleep_until (now + period))
  done;
  let (_ : Clock.time) = Exec.run e ~until:(Clock.seconds 1.) in
  Array.iteri (fun i c -> check_int (Printf.sprintf "task %d steps" i) steps_each c) counts;
  check_int "total dispatched steps" (tasks * steps_each) (Exec.steps e);
  check_bool "skew bounded by window" true (Exec.max_skew_observed e <= window);
  check_int "frontier settles at until" (Clock.seconds 1.) (Exec.frontier e)

(* A task whose step raises is retired (it cannot wedge the window for
   the survivors) and the exception resurfaces from [run] after the
   join, with every other task having completed normally. *)
let test_domains_crash_containment () =
  let healthy = Array.make 2 0 in
  let e = Exec.domains ~domains:2 () in
  let boom_steps = ref 0 in
  Exec.spawn e ~name:"boom" ~at:0 (fun now ->
      incr boom_steps;
      if !boom_steps >= 3 then failwith "boom"
      else Exec.Sleep_until (now + Clock.us 5));
  for i = 0 to 1 do
    Exec.spawn e
      ~name:(Printf.sprintf "ok%d" i)
      ~at:(Clock.us 1)
      (fun now ->
        healthy.(i) <- healthy.(i) + 1;
        if healthy.(i) >= 100 then Exec.Finished
        else Exec.Sleep_until (now + Clock.us 4))
  done;
  Alcotest.check_raises "task exception re-raised after join" (Failure "boom")
    (fun () -> ignore (Exec.run e ~until:(Clock.seconds 1.) : Clock.time));
  check_int "crashed task stopped at the raise" 3 !boom_steps;
  Array.iteri
    (fun i c -> check_int (Printf.sprintf "survivor %d completed" i) 100 c)
    healthy

let test_spawn_after_run_rejected () =
  let e = Exec.inline () in
  Exec.spawn e ~name:"t" ~at:0 (fun _ -> Exec.Finished);
  ignore (Exec.run e ~until:(Clock.ms 1) : Clock.time);
  Alcotest.check_raises "spawn after run" (Invalid_argument "Exec.spawn: run already started")
    (fun () -> Exec.spawn e ~name:"late" ~at:0 (fun _ -> Exec.Finished))

(* -------------------------------------------------------------------- *)
(* Sim pinning: the default-mode runner still produces the exact seed
   numbers after the Metrics / Prune_stats domain-safety rewrites. *)

let pg_vdriver schema = Siro_engine.create ~flavor:`Pg schema
let mysql_vdriver schema = Siro_engine.create ~flavor:`Mysql schema

let pinned_cfg () =
  {
    Exp_config.default with
    Exp_config.name = "pinned";
    seed = 1234;
    duration_s = 1.0;
    workers = 8;
    schema = { Schema.default with Schema.tables = 4; rows_per_table = 250 };
    phases = [ { Exp_config.at_s = 0.; pattern = Access.Zipfian 0.9 } ];
    llts = [ { Exp_config.start_s = 0.2; duration_s = 0.5; count = 2 } ];
  }

let test_sim_pinned_clean () =
  let r = Runner.run ~engine:pg_vdriver (pinned_cfg ()) in
  check_int "commits" 28700 r.Runner.commits;
  check_int "conflicts" 223 r.Runner.conflicts;
  check_int "llt_reads" 22263 r.Runner.llt_reads;
  check_int "retries" 0 r.Runner.retries;
  check_int "give_ups" 0 r.Runner.give_ups;
  check_int "sheds" 0 r.Runner.sheds;
  check_int "peak space" 141568 (Runner.peak_space r);
  check_int "final space" 141568 (Runner.final_space r);
  check_int "peak chain" 40 (Runner.peak_chain r);
  match r.Runner.driver with
  | None -> Alcotest.fail "vDriver engine must expose its driver"
  | Some d ->
      let s = d.State.stats in
      check_int "relocated" 56177 (Prune_stats.relocated s);
      check_int "prune1" 42312 (Prune_stats.prune1_total s);
      check_int "prune2" 13865 (Prune_stats.prune2_total s);
      check_int "stored" 0 (Prune_stats.stored_total s)

let test_sim_pinned_faulted () =
  let faults = Fault_plan.random ~seed:77 () in
  let r = Runner.run ~engine:pg_vdriver ~faults (pinned_cfg ()) in
  check_int "commits" 28786 r.Runner.commits;
  check_int "conflicts" 226 r.Runner.conflicts;
  check_int "retries" 7 r.Runner.retries;
  check_int "give_ups" 0 r.Runner.give_ups;
  check_int "violations" 0 (Fault_report.violation_count r.Runner.faults)

(* -------------------------------------------------------------------- *)
(* Differential property *)

type case = {
  c_seed : int;
  c_duration_cs : int;  (* simulated centiseconds, 30..50 *)
  c_workers : int;
  c_zipf : bool;
  c_llts : int;
  c_domains : int;
  c_fault : int option;  (* crash-free random plan seed *)
}

let case_to_string c =
  Printf.sprintf
    "{seed=%d; duration=%.2fs; workers=%d; zipf=%b; llts=%d; domains=%d; fault=%s}"
    c.c_seed
    (float_of_int c.c_duration_cs /. 100.)
    c.c_workers c.c_zipf c.c_llts c.c_domains
    (match c.c_fault with None -> "none" | Some s -> string_of_int s)

let case_gen =
  QCheck.Gen.(
    map
      (fun ((c_seed, c_duration_cs, c_workers), (c_zipf, c_llts, c_domains, f)) ->
        {
          c_seed;
          c_duration_cs;
          c_workers;
          c_zipf;
          c_llts;
          c_domains;
          c_fault = (if f < 200 then None else Some f);
        })
      (pair
         (triple (int_range 1 1_000_000) (int_range 30 50) (int_range 3 5))
         (quad bool (int_range 0 2) (int_range 1 3) (int_range 0 599))))

let cfg_of_case c =
  let duration_s = float_of_int c.c_duration_cs /. 100. in
  {
    Exp_config.default with
    Exp_config.name = "diff";
    seed = c.c_seed;
    duration_s;
    workers = c.c_workers;
    reads_per_txn = 2;
    writes_per_txn = 1;
    schema = { Schema.default with Schema.tables = 2; rows_per_table = 200; record_bytes = 64 };
    phases =
      [ { Exp_config.at_s = 0.; pattern = (if c.c_zipf then Access.Zipfian 0.9 else Access.Uniform) } ];
    llts =
      (if c.c_llts = 0 then []
       else
         [
           {
             Exp_config.start_s = duration_s /. 4.;
             duration_s = duration_s /. 2.;
             count = c.c_llts;
           };
         ]);
    sample_period_s = 0.1;
    gc_period = Clock.ms 5;
  }

(* Both modes run under fresh-but-equal plans (a plan's [poll] is
   stateful, so each run gets its own instance from the same seed). *)
let digests_of_case ?(engine = pg_vdriver) ?(skip_publish_fence = false) c =
  let cfg = cfg_of_case c in
  let plan () = Option.map (fun s -> Fault_plan.random ~crashes:false ~seed:s ()) c.c_fault in
  let sim = Runner.run ~engine ?faults:(plan ()) cfg in
  let dom =
    Runner.run ~engine ?faults:(plan ())
      ~mode:(Runner.Domains { domains = c.c_domains })
      ~skip_publish_fence cfg
  in
  ( Run_digest.of_result ~mode:"sim" ~domains:1 cfg sim,
    Run_digest.of_result ~mode:"domains" ~domains:c.c_domains cfg dom )

let qcheck_differential =
  QCheck.Test.make ~name:"sim and domains modes agree (digest + invariants)" ~count:25
    (QCheck.make ~print:case_to_string case_gen)
    (fun c ->
      let ds, dd = digests_of_case c in
      if ds.Run_digest.invariant_violations <> 0 then
        QCheck.Test.fail_reportf "sim mode violated invariants on %s" (case_to_string c);
      if dd.Run_digest.invariant_violations <> 0 then
        QCheck.Test.fail_reportf "domains mode violated invariants on %s" (case_to_string c);
      match Run_digest.diff ds dd with
      | [] -> true
      | msgs ->
          QCheck.Test.fail_reportf "digest mismatch on %s:\n  %s" (case_to_string c)
            (String.concat "\n  " msgs))

(* Three pinned cases that once probed interesting corners (faulted
   zipf run, fault-free uniform run, three-domain LLT run) stay green
   forever. *)
let regression_cases =
  [
    ( "regression seed A (faulted, zipf)",
      pg_vdriver,
      { c_seed = 11; c_duration_cs = 40; c_workers = 4; c_zipf = true; c_llts = 1; c_domains = 2; c_fault = Some 301 } );
    ( "regression seed B (clean, uniform)",
      mysql_vdriver,
      { c_seed = 4242; c_duration_cs = 35; c_workers = 5; c_zipf = false; c_llts = 0; c_domains = 2; c_fault = None } );
    ( "regression seed C (3 domains, LLTs)",
      pg_vdriver,
      { c_seed = 90210; c_duration_cs = 45; c_workers = 4; c_zipf = true; c_llts = 2; c_domains = 3; c_fault = Some 555 } );
  ]

let test_regression (name, engine, c) () =
  let ds, dd = digests_of_case ~engine c in
  check_int (name ^ ": sim violations") 0 ds.Run_digest.invariant_violations;
  check_int (name ^ ": domains violations") 0 dd.Run_digest.invariant_violations;
  match Run_digest.diff ds dd with
  | [] -> ()
  | msgs ->
      Format.eprintf "%s:@.sim digest: %a@.domains digest: %a@." name Run_digest.pp ds
        Run_digest.pp dd;
      Alcotest.fail (name ^ ": " ^ String.concat "; " msgs)

(* Sabotage: severing the publish fence must surface as a digest
   mismatch — the harness notices lost task-local counters. *)
let test_sabotage_caught () =
  let c =
    { c_seed = 77; c_duration_cs = 40; c_workers = 4; c_zipf = true; c_llts = 1; c_domains = 2; c_fault = None }
  in
  let ds, dd = digests_of_case ~skip_publish_fence:true c in
  check_bool "sabotaged digest differs" true (Run_digest.diff ds dd <> [])

(* Domains mode rejects the Sim-only stop-the-world constructs loudly. *)
let test_domains_rejects_watchdog () =
  let c = { c_seed = 1; c_duration_cs = 30; c_workers = 3; c_zipf = false; c_llts = 0; c_domains = 2; c_fault = None } in
  Alcotest.check_raises "watchdog rejected"
    (Invalid_argument
       "Runner.run: the watchdog ladder is Sim-only (its stall injections and \
        stop-the-world restart rung assume the discrete-event scheduler)")
    (fun () ->
      ignore
        (Runner.run ~engine:pg_vdriver ~watchdog:Watchdog.default_config
           ~mode:(Runner.Domains { domains = 2 })
           (cfg_of_case c)
          : Runner.result))

let suites =
  [
    ( "exec",
      [
        Alcotest.test_case "inline substrate deterministic" `Quick test_inline_deterministic;
        Alcotest.test_case "domains complete within skew window" `Quick
          test_domains_completion_and_skew;
        Alcotest.test_case "task crash contained and re-raised" `Quick
          test_domains_crash_containment;
        Alcotest.test_case "spawn after run rejected" `Quick test_spawn_after_run_rejected;
      ] );
    ( "differential",
      [
        Alcotest.test_case "sim pinned to seed numbers (clean)" `Slow test_sim_pinned_clean;
        Alcotest.test_case "sim pinned to seed numbers (faulted)" `Slow test_sim_pinned_faulted;
        QCheck_alcotest.to_alcotest qcheck_differential;
        Alcotest.test_case "publish-fence sabotage caught" `Slow test_sabotage_caught;
        Alcotest.test_case "watchdog rejected in domains mode" `Quick
          test_domains_rejects_watchdog;
      ]
      @ List.map
          (fun ((name, _, _) as rc) -> Alcotest.test_case name `Slow (test_regression rc))
          regression_cases );
  ]
