(* Replication-layer tests (DESIGN §4j): exact-prefix mirror shipping,
   deterministic lease-based promotion, the one-dead-node rule, honest
   vs primaryless revival semantics, the no-committed-loss oracle as a
   unit, the double-restart idempotence property (satellite), and the
   campaign-level acceptance gates — honest node-kill campaigns clean
   in Sim and Domains with promotion/fencing gauges surfaced, both
   failover sabotages provably caught, and the unreplicated digest
   keeping its pre-replication bytes. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let small_schema =
  { Schema.default with Schema.tables = 2; rows_per_table = 100; record_bytes = 64 }

let mk ?(shards = 2) ?(replicas = 2) ?quorum () =
  let g = Shard_group.create ~shards small_schema in
  let r = Replica.create ?quorum ~replicas ~wals:(Shard_group.wals g) () in
  Shard_group.attach_replicas g r;
  (g, r)

(* One single-shard committed write on [sid]'s keyspace. *)
let commit_on g ~sid ~payload ~now =
  let txn, t = Shard_group.begin_txn g ~now in
  (match Shard_group.write g txn ~rid:sid ~payload ~now:t with
  | Engine.Committed_path _ -> ()
  | _ -> Alcotest.fail "write refused");
  Shard_group.commit g txn ~now:t

let gwal g ~sid = List.assoc sid (Shard_group.wals g)

(* -------------------------------------------------------------------- *)
(* Mirror shipping *)

let test_mirror_exact_prefix () =
  let g, r = mk () in
  let now = ref (Clock.ms 1) in
  for i = 1 to 20 do
    now := commit_on g ~sid:(i mod 2) ~payload:i ~now:!now
  done;
  (* Commit acks gate on quorum, and the passthrough fabric ships
     synchronously: every live backup holds an exact prefix of the
     device covering every committed frame (only the ack-journal tail
     the ship itself appends may trail the mirror). *)
  List.iter
    (fun sid ->
      let dev = gwal g ~sid in
      let last_commit =
        List.fold_left
          (fun acc (lsn, repr) ->
            match Wal_record.decode repr with
            | Ok { Wal_record.payload = Wal_record.Txn_commit _; _ } -> max acc lsn
            | _ -> acc)
          0 (Wal.frames dev)
      in
      check_bool "workload committed here" true (last_commit > 0);
      for node = 1 to 2 do
        let m = Replica.mirror r ~sid ~node in
        check_bool "mirror covers every commit" true (Wal.max_lsn m >= last_commit);
        let mframes = Wal.frames m in
        let dprefix =
          List.filteri (fun i _ -> i < List.length mframes) (Wal.frames dev)
        in
        Alcotest.(check (list (pair int string)))
          "mirror is an exact device prefix" dprefix mframes
      done)
    [ 0; 1 ]

(* -------------------------------------------------------------------- *)
(* Kill, lease expiry, deterministic promotion *)

let run_kill_promote () =
  let g, r = mk () in
  let now = ref (Clock.ms 1) in
  for i = 1 to 10 do
    now := commit_on g ~sid:(i mod 2) ~payload:i ~now:!now
  done;
  check_bool "killed" true (Replica.kill r ~sid:0 ~node:0 ~now:!now);
  check_bool "shard down" false (Shard_group.shard_is_up g 0);
  check_bool "primaryless" true (Replica.primary r ~sid:0 = None);
  (* Reads on the dead shard are turned away, not wedged. *)
  let txn, t = Shard_group.begin_txn g ~now:!now in
  (try
     ignore (Shard_group.read g txn ~rid:0 ~now:t);
     Alcotest.fail "read on dead shard must raise"
   with Shard_group.Shard_down 0 -> ());
  ignore (Shard_group.abort g txn ~now:t);
  (* The other shard keeps committing while the victim waits. *)
  now := commit_on g ~sid:1 ~payload:99 ~now:t;
  (* Sweep inside the lease: no promotion yet. *)
  Replica.sweep r ~now:!now;
  check_bool "lease still fencing" true (Replica.primary r ~sid:0 = None);
  (* Sweep past the lease: deterministic failover. *)
  let after = Clock.ms 80 in
  Replica.sweep r ~now:after;
  (g, r, after)

let test_kill_then_promotion () =
  let g, r, after = run_kill_promote () in
  check_bool "promoted" true (Replica.primary r ~sid:0 <> None);
  check_bool "shard back up" true (Shard_group.shard_is_up g 0);
  check_int "epoch fenced up" 1 (Replica.epoch r ~sid:0);
  check_int "one promotion" 1 (Replica.promotions r ~sid:0);
  (match Replica.lags r with
  | [ (0, lag) ] -> check_bool "lag spans kill to promotion" true (lag > 0 && lag < after)
  | l -> Alcotest.failf "expected one completed failover, got %d" (List.length l));
  (* The promoted timeline serves new work. *)
  ignore (commit_on g ~sid:0 ~payload:1000 ~now:(after + Clock.ms 1))

let test_promotion_deterministic () =
  let _, r1, _ = run_kill_promote () in
  let _, r2, _ = run_kill_promote () in
  check_bool "same successor both runs" true
    (Replica.primary r1 ~sid:0 = Replica.primary r2 ~sid:0);
  check_int "same epoch both runs" (Replica.epoch r1 ~sid:0) (Replica.epoch r2 ~sid:0)

let test_one_dead_node_per_group () =
  let _, r = mk () in
  check_bool "first kill lands" true (Replica.kill r ~sid:0 ~node:0 ~now:(Clock.ms 1));
  check_bool "second kill refused" false (Replica.kill r ~sid:0 ~node:1 ~now:(Clock.ms 2));
  check_bool "dead twice refused" false (Replica.kill r ~sid:0 ~node:0 ~now:(Clock.ms 3));
  Alcotest.(check (list (pair int int))) "one dead node" [ (0, 0) ] (Replica.dead_nodes r)

(* -------------------------------------------------------------------- *)
(* Revival semantics *)

let test_revive_after_failover_state_transfers () =
  let g, r, after = run_kill_promote () in
  let now = ref (after + Clock.ms 1) in
  for i = 1 to 5 do
    now := commit_on g ~sid:0 ~payload:(200 + i) ~now:!now
  done;
  check_bool "revived" true (Replica.revive r ~sid:0 ~node:0 ~now:!now);
  check_bool "alive again" true (Replica.node_alive r ~sid:0 ~node:0);
  (* Honest revival under a live successor state-transfers: the
     rejoining node is a caught-up backup on the promoted timeline. *)
  check_int "caught up to the promoted device"
    (Wal.max_lsn (gwal g ~sid:0))
    (Wal.max_lsn (Replica.mirror r ~sid:0 ~node:0));
  Alcotest.(check (list (pair int int))) "no dead nodes left" [] (Replica.dead_nodes r)

let test_primaryless_revive_keeps_coffin_and_wins () =
  let g, r = mk () in
  let now = ref (Clock.ms 1) in
  for i = 1 to 10 do
    now := commit_on g ~sid:0 ~payload:i ~now:!now
  done;
  let lsn_at_kill = Wal.max_lsn (gwal g ~sid:0) in
  check_bool "killed" true (Replica.kill r ~sid:0 ~node:0 ~now:!now);
  (* Fast reboot before the lease expires: no successor exists, so the
     node rejoins with its own coffin — the full timeline it held as
     primary — rather than state-transferring from a detached device. *)
  check_bool "revived primaryless" true
    (Replica.revive r ~sid:0 ~node:0 ~now:(!now + Clock.ms 5));
  check_int "coffin kept, not reset"
    lsn_at_kill
    (Wal.max_lsn (Replica.mirror r ~sid:0 ~node:0));
  (* Candidacy: the rebooted ex-primary is the highest-caught-up live
     node, so the failover re-elects its timeline — nothing acked is
     lost even though the lease had to run out first. *)
  Replica.sweep r ~now:(Clock.ms 80);
  check_bool "ex-primary re-elected" true (Replica.primary r ~sid:0 = Some 0);
  check_int "under a fenced epoch" 1 (Replica.epoch r ~sid:0)

(* -------------------------------------------------------------------- *)
(* The loss oracle as a unit: audit the acked ledger against the logs *)

let test_loss_oracle_unit () =
  let g, _ = mk () in
  let now = ref (Clock.ms 1) in
  for i = 1 to 12 do
    now := commit_on g ~sid:(i mod 2) ~payload:i ~now:!now
  done;
  let wals = Shard_group.wals g in
  let acked = Shard_group.acked g in
  check_bool "ledger populated" true (List.length acked >= 12);
  Alcotest.(check (list string))
    "honest ledger clean" []
    (List.map
       (fun { Invariant.invariant; detail } -> invariant ^ ": " ^ detail)
       (Invariant.check_no_committed_loss ~acked wals));
  (* A fabricated ack no log witnesses — the stale-primary shape — must
     be flagged; its cts sits far above any checkpoint horizon. *)
  let forged = (999_999_999, 999_999_999, [ 0 ]) in
  (match Invariant.check_no_committed_loss ~acked:(forged :: acked) wals with
  | [ { Invariant.invariant = "no-committed-loss"; _ } ] -> ()
  | vs -> Alcotest.failf "expected exactly the forged loss, got %d" (List.length vs));
  (* An acked commit whose cts predates the log's checkpoint horizon has
     legitimately aged out of the bounded window: not a violation. *)
  let aged = (888_888_888, 0, [ 0 ]) in
  check_int "pre-horizon ack ages out" 0
    (List.length (Invariant.check_no_committed_loss ~acked:(aged :: acked) wals))

(* -------------------------------------------------------------------- *)
(* Satellite: double-restart idempotence (qcheck) *)

let read_all g ~now =
  let txn, t = Shard_group.begin_txn g ~now in
  let records = Schema.records small_schema in
  let vals =
    List.init records (fun rid -> fst (Shard_group.read g txn ~rid ~now:t))
  in
  ignore (Shard_group.abort g txn ~now:t);
  vals

let prop_double_restart_idempotent =
  QCheck.Test.make ~name:"restart_all is safely re-enterable" ~count:30
    QCheck.(make Gen.(int_range 0 100000))
    (fun seed ->
      let g = Shard_group.create ~shards:2 small_schema in
      let rng = Rng.create seed in
      let now = ref (Clock.ms 1) in
      for i = 1 to 5 + Rng.int rng 8 do
        let txn, t = Shard_group.begin_txn g ~now:!now in
        let rid = Rng.int rng (Schema.records small_schema) in
        (match Shard_group.write g txn ~rid ~payload:i ~now:t with
        | Engine.Committed_path _ -> now := Shard_group.commit g txn ~now:t
        | _ -> now := Shard_group.abort g txn ~now:t)
      done;
      Shard_group.crash_all g;
      let infos1 = Shard_group.restart_all g ~now:!now in
      let state1 = read_all g ~now:!now in
      (* Re-entry without an intervening crash: same clean slate, same
         recovered state, nothing left to truncate or roll back. *)
      let infos2 = Shard_group.restart_all g ~now:!now in
      let state2 = read_all g ~now:!now in
      List.length infos1 = List.length infos2
      && state1 = state2
      && List.for_all
           (fun (i : Engine.restart_info) ->
             i.Engine.truncated_frames = 0 && i.Engine.losers_rolled_back = 0)
           infos2
      &&
      (* Still a working group afterwards. *)
      let txn, t = Shard_group.begin_txn g ~now:!now in
      match Shard_group.write g txn ~rid:0 ~payload:77 ~now:t with
      | Engine.Committed_path _ ->
          ignore (Shard_group.commit g txn ~now:t);
          true
      | _ -> false)

(* -------------------------------------------------------------------- *)
(* Campaign-level gates *)

let campaign_base ?(dur = 0.3) ~name ~seed () =
  {
    Exp_config.default with
    Exp_config.name;
    seed;
    duration_s = dur;
    workers = 4;
    reads_per_txn = 2;
    writes_per_txn = 2;
    schema = small_schema;
    llts = [ { Exp_config.start_s = 0.05; duration_s = 0.15; count = 1 } ];
    gc_period = Clock.ms 5;
    sample_period_s = 0.05;
    ckpt_period_s = 0.1;
  }

let campaign_cfg ?dur ?(replicas = 2) ?(kill_steps = []) ?node_faults ?failover_sabotage
    ~name ~seed () =
  {
    (Shard_runner.default ~shards:2 (campaign_base ?dur ~name ~seed ())) with
    Shard_runner.cross_pct = 40;
    replicas;
    kill_steps;
    node_faults;
    failover_sabotage;
  }

let test_kill_campaign_honest () =
  let cfg =
    campaign_cfg ~name:"replica-honest" ~seed:11 ~kill_steps:[ 2_000; 9_000 ] ()
  in
  let res = Shard_runner.run ~mode:Shard_runner.Sim cfg in
  check_int "zero violations" 0 (Fault_report.violation_count res.Shard_runner.report);
  let rd =
    match res.Shard_runner.digest.Shard_runner.d_repl with
    | Some rd -> rd
    | None -> Alcotest.fail "replicated digest block missing"
  in
  check_int "both kills landed" 2 rd.Shard_runner.rd_kills;
  check_bool "at least one promotion" true (rd.Shard_runner.rd_promotions >= 1);
  (* Satellite: restart and promotion/fencing visibility is uniform —
     the digest counters and the report gauges must tell one story. *)
  let gauge name =
    match Fault_report.gauge res.Shard_runner.report name with
    | Some v -> v
    | None -> Alcotest.failf "gauge %s missing" name
  in
  check_int "restarts gauge matches digest" rd.Shard_runner.rd_restarts
    (gauge "recovery-restarts");
  check_int "kill gauge matches digest" rd.Shard_runner.rd_kills (gauge "rep-kills");
  check_int "promotion gauges sum to digest" rd.Shard_runner.rd_promotions
    (gauge "promotions-s0" + gauge "promotions-s1");
  check_int "fencing gauges sum to digest" rd.Shard_runner.rd_fencings
    (gauge "fencings-s0" + gauge "fencings-s1");
  check_bool "every completed failover within the budget" true
    (List.for_all
       (fun l -> l <= cfg.Shard_runner.rep_lag_bound / 1000)
       res.Shard_runner.failover_lags_us)

let test_kill_campaign_domains () =
  let cfg =
    campaign_cfg ~name:"replica-domains" ~seed:12 ~kill_steps:[ 3_000 ] ()
  in
  let sim = Shard_runner.run ~mode:Shard_runner.Sim cfg in
  let dom = Shard_runner.run ~mode:(Shard_runner.Domains { domains = 2 }) cfg in
  check_int "sim clean" 0 sim.Shard_runner.digest.Shard_runner.d_violations;
  check_int "domains clean" 0 dom.Shard_runner.digest.Shard_runner.d_violations;
  Alcotest.(check (list string))
    "digests agree" []
    (Shard_runner.digest_diff sim.Shard_runner.digest dom.Shard_runner.digest)

let test_sabotage_ack_before_replicate_caught () =
  (* Under this sabotage no ship steps ever fire, so kills must come
     from the time-based plan, not the step schedule. *)
  let cfg =
    campaign_cfg ~name:"replica-sab-ack" ~seed:13 ~dur:1.0
      ~node_faults:(Fault_plan.random_nodes ~seed:13 ())
      ~failover_sabotage:Replica.Ack_before_replicate ()
  in
  let res = Shard_runner.run ~mode:Shard_runner.Sim cfg in
  check_bool "acked-then-lost commits caught" true
    (Fault_report.violation_count res.Shard_runner.report > 0)

let test_sabotage_stale_primary_caught () =
  (* Seed chosen so the drawn kill schedule actually fells a primary:
     the stale claimant only exists after an ex-primary's revival. *)
  let cfg =
    campaign_cfg ~name:"replica-sab-stale" ~seed:17 ~dur:1.0
      ~node_faults:(Fault_plan.random_nodes ~seed:17 ())
      ~failover_sabotage:Replica.Stale_primary_writes ()
  in
  let res = Shard_runner.run ~mode:Shard_runner.Sim cfg in
  let kinds =
    List.map
      (fun (v : Fault_report.violation) -> v.Fault_report.invariant)
      (Fault_report.violations res.Shard_runner.report)
  in
  check_bool "split brain caught" true (List.mem "no-split-brain" kinds);
  check_bool "fabricated acks caught as loss" true (List.mem "no-committed-loss" kinds)

let test_replicas_zero_digest_unchanged () =
  let cfg = campaign_cfg ~name:"replica-off" ~seed:15 ~replicas:0 () in
  let res = Shard_runner.run ~mode:Shard_runner.Sim cfg in
  check_bool "no replicated digest block" true
    (res.Shard_runner.digest.Shard_runner.d_repl = None);
  check_bool "no replication gauges" true
    (Fault_report.gauge res.Shard_runner.report "rep-kills" = None);
  check_int "zero violations" 0 (Fault_report.violation_count res.Shard_runner.report)

let suites =
  [
    ( "replica-shipping",
      [
        Alcotest.test_case "backups hold the exact device prefix" `Quick
          test_mirror_exact_prefix;
      ] );
    ( "replica-failover",
      [
        Alcotest.test_case "kill, lease expiry, promotion" `Quick test_kill_then_promotion;
        Alcotest.test_case "promotion is deterministic" `Quick test_promotion_deterministic;
        Alcotest.test_case "one dead node per group" `Quick test_one_dead_node_per_group;
        Alcotest.test_case "revival after failover state-transfers" `Quick
          test_revive_after_failover_state_transfers;
        Alcotest.test_case "primaryless revival keeps its coffin and wins" `Quick
          test_primaryless_revive_keeps_coffin_and_wins;
      ] );
    ( "replica-loss-oracle",
      [ Alcotest.test_case "ledger audited against the logs" `Quick test_loss_oracle_unit ] );
    ("replica-restart", [ QCheck_alcotest.to_alcotest prop_double_restart_idempotent ]);
    ( "replica-campaign",
      [
        Alcotest.test_case "honest kill campaign is clean" `Slow test_kill_campaign_honest;
        Alcotest.test_case "sim-vs-domains under kills" `Slow test_kill_campaign_domains;
        Alcotest.test_case "ack-before-replicate caught" `Slow
          test_sabotage_ack_before_replicate_caught;
        Alcotest.test_case "stale-primary-writes caught" `Slow
          test_sabotage_stale_primary_caught;
        Alcotest.test_case "replicas=0 keeps the unreplicated digest" `Quick
          test_replicas_zero_digest_unchanged;
      ] );
  ]
