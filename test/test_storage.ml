(* Tests for repro_storage: lru, pages, heap splits, buffer pool, wal. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -------------------------------------------------------------------- *)
(* Lru *)

let test_lru_hit_miss () =
  let l = Lru.create ~capacity:2 in
  check_bool "first is miss" true (Lru.touch l 1 = `Miss None);
  check_bool "second is miss" true (Lru.touch l 2 = `Miss None);
  check_bool "hit" true (Lru.touch l 1 = `Hit);
  (* 2 is now LRU; inserting 3 evicts it. *)
  check_bool "evicts lru" true (Lru.touch l 3 = `Miss (Some 2));
  check_bool "evicted gone" false (Lru.mem l 2);
  check_bool "recent kept" true (Lru.mem l 1)

let test_lru_remove_clear () =
  let l = Lru.create ~capacity:4 in
  List.iter (fun k -> ignore (Lru.touch l k)) [ 1; 2; 3 ];
  Lru.remove l 2;
  check_int "size after remove" 2 (Lru.size l);
  Lru.remove l 99 (* absent: no-op *);
  Lru.clear l;
  check_int "cleared" 0 (Lru.size l)

let qcheck_lru_capacity_respected =
  QCheck.Test.make ~name:"lru never exceeds capacity" ~count:300
    QCheck.(pair (int_range 1 8) (list_of_size Gen.(0 -- 100) (int_bound 20)))
    (fun (cap, keys) ->
      let l = Lru.create ~capacity:cap in
      List.for_all
        (fun k ->
          ignore (Lru.touch l k);
          Lru.size l <= cap)
        keys)

(* -------------------------------------------------------------------- *)
(* Page *)

let test_page_accounting () =
  let p = Page.create ~id:0 ~cap_bytes:1000 in
  Page.add_bytes p 600;
  check_int "free" 400 (Page.free_bytes p);
  check_bool "not overflowed" false (Page.overflowed p);
  Page.add_bytes p 600;
  check_bool "overflowed" true (Page.overflowed p);
  Page.remove_bytes p 300;
  check_int "used" 900 p.Page.used_bytes;
  Alcotest.check_raises "remove too much" (Invalid_argument "Page.remove_bytes: bad amount")
    (fun () -> Page.remove_bytes p 10_000)

(* -------------------------------------------------------------------- *)
(* Heap *)

let mk_heap ?(page_bytes = 1000) ?(slot_bytes = 100) ?(records = 20) ?(fill_factor = 0.5) () =
  Heap.create ~page_bytes ~slot_bytes ~records ~fill_factor ~wal:(Wal.create ())

let test_heap_layout () =
  let h = mk_heap () in
  (* fill factor 0.5 -> 5 records per 1000-byte page -> 4 pages. *)
  check_int "pages" 4 (Heap.page_count h);
  check_int "records" 20 (Heap.record_count h);
  check_int "total bytes" 2000 (Heap.total_bytes h);
  check_int "no version bytes" 0 (Heap.version_bytes h)

let test_heap_version_growth_splits () =
  let h = mk_heap () in
  let page0 = Heap.page_of h ~rid:0 in
  (* Page 0 holds rids 0..4 at 500/1000 bytes. Blow it up. *)
  check_bool "fits" true (Heap.add_version_bytes h ~rid:0 ~bytes:400 = `Fits);
  check_bool "split on overflow" true (Heap.add_version_bytes h ~rid:1 ~bytes:200 = `Split);
  check_int "one split" 1 (Heap.splits h);
  check_bool "page count grew" true (Heap.page_count h > 4);
  check_bool "no page overflows after split" true (not (Page.overflowed page0));
  check_int "version bytes tracked" 600 (Heap.version_bytes h)

let test_heap_vacuum () =
  let h = mk_heap () in
  ignore (Heap.add_version_bytes h ~rid:3 ~bytes:300);
  Heap.remove_version_bytes h ~rid:3 ~bytes:200;
  check_int "after vacuum" 100 (Heap.version_bytes h);
  check_int "per-rid" 100 (Heap.rid_version_bytes h ~rid:3);
  Alcotest.check_raises "reclaim too much"
    (Invalid_argument "Heap.remove_version_bytes: more than held") (fun () ->
      Heap.remove_version_bytes h ~rid:3 ~bytes:500)

let test_heap_split_preserves_membership () =
  let h = mk_heap () in
  (* Force several splits, then every rid must still resolve to a page
     that accounts for it. *)
  for rid = 0 to 19 do
    ignore (Heap.add_version_bytes h ~rid ~bytes:450)
  done;
  check_bool "splits happened" true (Heap.splits h > 0);
  for rid = 0 to 19 do
    let p = Heap.page_of h ~rid in
    check_bool "page known" true (p.Page.id < Heap.page_count h)
  done;
  (* Byte conservation: slots + versions = total. *)
  check_int "byte conservation" (2000 + Heap.version_bytes h) (Heap.total_bytes h)

let test_heap_split_generates_redo () =
  let wal = Wal.create () in
  let h = Heap.create ~page_bytes:1000 ~slot_bytes:100 ~records:20 ~fill_factor:0.5 ~wal in
  for rid = 0 to 4 do
    ignore (Heap.add_version_bytes h ~rid ~bytes:150)
  done;
  check_bool "split occurred" true (Heap.splits h > 0);
  check_bool "redo produced" true (Wal.total_bytes wal > 0)

(* -------------------------------------------------------------------- *)
(* Buffer pool *)

let test_buffer_pool () =
  let bp = Buffer_pool.create ~name:"undo" ~capacity_blocks:2 in
  check_bool "cold miss" true (Buffer_pool.access bp ~block:1 = `Miss);
  check_bool "warm hit" true (Buffer_pool.access bp ~block:1 = `Hit);
  ignore (Buffer_pool.access bp ~block:2);
  ignore (Buffer_pool.access bp ~block:3);
  (* 1 was LRU after touching 2 and 3. *)
  check_bool "evicted" true (Buffer_pool.access bp ~block:1 = `Miss);
  check_int "hits" 1 (Buffer_pool.hits bp);
  check_int "misses" 4 (Buffer_pool.misses bp);
  Buffer_pool.evict bp ~block:3;
  check_bool "explicit evict" true (Buffer_pool.access bp ~block:3 = `Miss);
  Buffer_pool.clear bp;
  check_int "cleared" 0 (Buffer_pool.resident bp)

(* -------------------------------------------------------------------- *)
(* Wal *)

let test_wal () =
  let w = Wal.create () in
  Wal.append w ~bytes:100 ();
  Wal.append w ~bytes:50 ();
  check_int "bytes" 150 (Wal.total_bytes w);
  check_int "records" 2 (Wal.records w)

let suites =
  [
    ( "storage.lru",
      [
        Alcotest.test_case "hit/miss/evict" `Quick test_lru_hit_miss;
        Alcotest.test_case "remove/clear" `Quick test_lru_remove_clear;
        QCheck_alcotest.to_alcotest qcheck_lru_capacity_respected;
      ] );
    ("storage.page", [ Alcotest.test_case "byte accounting" `Quick test_page_accounting ]);
    ( "storage.heap",
      [
        Alcotest.test_case "initial layout" `Quick test_heap_layout;
        Alcotest.test_case "version growth splits pages" `Quick test_heap_version_growth_splits;
        Alcotest.test_case "vacuum reclaims" `Quick test_heap_vacuum;
        Alcotest.test_case "split preserves membership" `Quick test_heap_split_preserves_membership;
        Alcotest.test_case "split generates redo" `Quick test_heap_split_generates_redo;
      ] );
    ("storage.buffer_pool", [ Alcotest.test_case "lru semantics" `Quick test_buffer_pool ]);
    ("storage.wal", [ Alcotest.test_case "accounting" `Quick test_wal ]);
  ]
