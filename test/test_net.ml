(* Network-fault layer tests: bus fault-model semantics and seeded
   determinism, the transparent-passthrough byte-identity pin (digests
   with the net layer installed but no faults must equal the pre-layer
   bytes), per-channel backoff stream forking, partition-tolerant
   degradation of the sharded campaign, duplicate-delivery idempotence,
   cooperative in-doubt termination, both network sabotage modes
   (provably caught), and the qcheck property that duplicated 2PC
   frames in a WAL prefix change nothing about recovery's decision
   table or in-doubt set. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* -------------------------------------------------------------------- *)
(* Bus semantics *)

let collect_bus ?faults ~endpoints () =
  let bus = Bus.create ?faults ~endpoints () in
  let log = ref [] in
  for ep = 0 to endpoints - 1 do
    Bus.set_handler bus ~ep (fun ~now ~src msg -> log := (ep, now, src, msg) :: !log)
  done;
  (bus, fun () -> List.rev !log)

let test_passthrough_inline () =
  let bus, seen = collect_bus ~endpoints:3 () in
  Bus.send bus ~src:0 ~dst:1 ~now:5 "a";
  Bus.send bus ~src:1 ~dst:2 ~now:6 "b";
  Bus.send bus ~src:2 ~dst:2 ~now:7 "self";
  check_int "nothing queued" 0 (Bus.pending bus);
  check_bool "inline, in send order" true
    (seen () = [ (1, 5, 0, "a"); (2, 6, 1, "b"); (2, 7, 2, "self") ]);
  let s = Bus.stats bus in
  check_int "sent" 3 s.Bus.sent;
  check_int "delivered" 3 s.Bus.delivered;
  check_int "no loss draws" 0 (s.Bus.dropped_loss + s.Bus.duplicated)

let lossy_cfg ?(loss = 0.3) ?(dup = 0.2) ?(seed = 42) () =
  Net_fault.make ~loss ~dup ~max_delay:(Clock.us 50) ~seed ()

let run_lossy ~seed n =
  let bus, seen = collect_bus ~faults:(lossy_cfg ~seed ()) ~endpoints:2 () in
  for i = 0 to n - 1 do
    Bus.send bus ~src:0 ~dst:1 ~now:(i * 100) (string_of_int i)
  done;
  ignore (Bus.pump bus ~now:max_int);
  (Bus.stats bus, seen ())

let test_bus_determinism () =
  let s1, d1 = run_lossy ~seed:7 500 in
  let s2, d2 = run_lossy ~seed:7 500 in
  check_bool "same stats" true (s1 = s2);
  check_bool "same delivery sequence" true (d1 = d2);
  let _, d3 = run_lossy ~seed:8 500 in
  check_bool "different seed, different sequence" true (d1 <> d3)

let test_bus_loss_dup_accounting () =
  let s, delivered = run_lossy ~seed:42 1000 in
  check_int "all sends counted" 1000 s.Bus.sent;
  check_bool "losses happened" true (s.Bus.dropped_loss > 100);
  check_bool "duplicates happened" true (s.Bus.duplicated > 50);
  (* Every surviving copy was delivered once the queue drained. *)
  check_int "conservation" (s.Bus.sent - s.Bus.dropped_loss + s.Bus.duplicated)
    s.Bus.delivered;
  check_int "delivered = observed" s.Bus.delivered (List.length delivered)

let test_bus_reorders () =
  let bus, seen = collect_bus ~faults:(lossy_cfg ~loss:0. ~dup:0. ()) ~endpoints:2 () in
  (* Overlapping jitter windows: back-to-back sends must swap at least
     once over a long run for this seed. *)
  for i = 0 to 199 do
    Bus.send bus ~src:0 ~dst:1 ~now:i "m"
  done;
  ignore (Bus.pump bus ~now:max_int);
  let times = List.map (fun (_, now, _, _) -> now) (seen ()) in
  check_bool "delivery times are sorted (heap order)" true
    (List.sort compare times = times);
  check_int "all delivered" 200 (List.length times)

let test_bus_partition () =
  let faults =
    Net_fault.make
      ~partitions:
        [ { Net_fault.p_name = "cut"; isolated = [ 1 ]; from_t = 100; heal_t = 200 } ]
      ~seed:1 ()
  in
  let bus, seen = collect_bus ~faults ~endpoints:3 () in
  check_bool "reachable before" true (Bus.reachable bus ~src:0 ~dst:1 ~now:50);
  check_bool "severed during" false (Bus.reachable bus ~src:0 ~dst:1 ~now:150);
  check_bool "both directions" false (Bus.reachable bus ~src:1 ~dst:0 ~now:150);
  check_bool "outside pair unaffected" true (Bus.reachable bus ~src:0 ~dst:2 ~now:150);
  check_bool "healed after" true (Bus.reachable bus ~src:0 ~dst:1 ~now:200);
  Bus.send bus ~src:0 ~dst:1 ~now:150 "dropped";
  Bus.send bus ~src:0 ~dst:2 ~now:150 "kept";
  Bus.send bus ~src:0 ~dst:1 ~now:250 "after-heal";
  ignore (Bus.pump bus ~now:max_int);
  let s = Bus.stats bus in
  check_int "partition drop counted" 1 s.Bus.dropped_partition;
  Alcotest.(check (list string))
    "only unsevered traffic arrives" [ "kept"; "after-heal" ]
    (List.map (fun (_, _, _, m) -> m) (seen ()));
  check_int "last heal" 200 (Net_fault.last_heal faults);
  check_bool "active inside window" true (Net_fault.active_at faults ~now:150);
  check_bool "inactive after" false (Net_fault.active_at faults ~now:200)

let test_bus_crash_clear () =
  let faults = Net_fault.make ~min_delay:(Clock.ms 1) ~seed:3 () in
  let bus, seen = collect_bus ~faults ~endpoints:2 () in
  Bus.send bus ~src:0 ~dst:1 ~now:0 "in-flight";
  check_int "queued" 1 (Bus.pending bus);
  Bus.clear bus;
  check_int "dropped by crash" 0 (Bus.pending bus);
  ignore (Bus.pump bus ~now:max_int);
  check_int "never delivered" 0 (List.length (seen ()));
  check_int "stats survive" 1 (Bus.stats bus).Bus.sent

(* -------------------------------------------------------------------- *)
(* Per-channel backoff streams (satellite: stream forking) *)

let drain ch =
  let b = Backoff.channel ~base_ns:1000 ~cap_ns:8000 ~max_attempts:6 ~seed:42 ~channel:ch () in
  let rec go acc =
    match Backoff.next b with Some d -> go (d :: acc) | None -> List.rev acc
  in
  go []

let test_backoff_channel_pinned () =
  (* Pinned delay schedules: a pure function of (seed, channel). Any
     drift here means some other subsystem's draws leaked into the
     channel stream — exactly what forking exists to prevent. *)
  Alcotest.(check (list int))
    "net:0->1 schedule" [ 1109; 2231; 4029; 9593; 8738; 9094 ] (drain "net:0->1");
  Alcotest.(check (list int))
    "net:1->0 schedule" [ 1248; 2499; 4135; 8670; 8722; 8203 ] (drain "net:1->0");
  let r = Backoff.channel_rng ~seed:42 ~channel:"net:0->1" in
  check_int "rng draw 1" 365565 (Rng.int r 1000000);
  check_int "rng draw 2" 629757 (Rng.int r 1000000);
  check_int "rng draw 3" 727403 (Rng.int r 1000000)

let test_backoff_channel_independence () =
  check_bool "same channel replays" true (drain "net:0->1" = drain "net:0->1");
  check_bool "channels differ" true (drain "net:0->1" <> drain "net:1->0");
  let seeded s =
    let b = Backoff.channel ~seed:s ~channel:"net:0->1" () in
    match Backoff.next b with Some d -> d | None -> -1
  in
  check_bool "seed matters" true (seeded 1 <> seeded 2)

(* -------------------------------------------------------------------- *)
(* Transparent passthrough: the byte-identity pin *)

let pin_cfg ~shards ~seed ~cross_pct ~dur =
  let base =
    {
      Exp_config.default with
      Exp_config.name = "net-pin";
      seed;
      duration_s = dur;
      workers = 4;
      reads_per_txn = 2;
      writes_per_txn = 2;
      schema = { Schema.default with Schema.tables = 2; rows_per_table = 100; record_bytes = 64 };
      llts = [ { Exp_config.start_s = 0.05; duration_s = 0.2; count = 2 } ];
      gc_period = Clock.ms 5;
      sample_period_s = 0.05;
      ckpt_period_s = 0.1;
    }
  in
  {
    (Shard_runner.default ~shards base) with
    Shard_runner.cross_pct;
    check_period = Clock.ms 20;
  }

let test_passthrough_digest_pinned () =
  (* These strings were captured from the pre-net-layer driver (PR 8
     head). The net layer is installed in both runs below — with
     [Net_fault.none] it must be a provably invisible pass-through:
     same commits, same conflicts, same peak bytes, same digest JSON,
     and no net block. *)
  let digest cfg =
    Jsonx.to_string (Shard_runner.digest_to_json (Shard_runner.run cfg).Shard_runner.digest)
  in
  check_str "config A byte-identical to pre-net driver"
    "{\"mode\":\"sim\",\"shards\":3,\"commits\":7701,\"conflicts\":22,\"cross_commits\":3072,\"violations\":0,\"peak_space\":336704,\"throughput\":25670.0}"
    (digest (pin_cfg ~shards:3 ~seed:77 ~cross_pct:40 ~dur:0.3));
  check_str "config B byte-identical to pre-net driver"
    "{\"mode\":\"sim\",\"shards\":2,\"commits\":9783,\"conflicts\":27,\"cross_commits\":4854,\"violations\":0,\"peak_space\":395776,\"throughput\":24457.5}"
    (digest (pin_cfg ~shards:2 ~seed:11 ~cross_pct:50 ~dur:0.4))

(* -------------------------------------------------------------------- *)
(* Sharded campaigns under network faults *)

let net_campaign ?(seed = 42) ?(dur = 0.2) ?(shards = 2) ?(cross_pct = 50) net =
  let base =
    {
      Exp_config.default with
      Exp_config.name = "net-campaign";
      seed;
      duration_s = dur;
      workers = 4;
      reads_per_txn = 2;
      writes_per_txn = 2;
      schema = { Schema.default with Schema.tables = 2; rows_per_table = 100; record_bytes = 64 };
      llts = [ { Exp_config.start_s = 0.02; duration_s = 0.1; count = 1 } ];
      gc_period = Clock.ms 5;
      sample_period_s = 0.05;
      ckpt_period_s = 0.1;
    }
  in
  {
    (Shard_runner.default ~shards base) with
    Shard_runner.cross_pct;
    check_period = Clock.ms 20;
    net;
  }

let test_partition_graceful_degradation () =
  let horizon = Clock.seconds 0.2 in
  let net =
    Net_fault.make ~loss:0.1 ~dup:0.05 ~max_delay:(Clock.us 150)
      ~partitions:
        [
          {
            Net_fault.p_name = "cut";
            isolated = [ 1 ];
            from_t = horizon / 4;
            heal_t = horizon / 2;
          };
        ]
      ~seed:42 ()
  in
  let r = Shard_runner.run (net_campaign net) in
  check_int "no violations (liveness + atomicity + catalogue)" 0
    (Fault_report.violation_count r.Shard_runner.report);
  check_bool "single-shard traffic kept committing" true
    (r.Shard_runner.single_commits > 0);
  check_bool "cross-shard traffic still committed overall" true
    (r.Shard_runner.cross_commits > 0);
  check_bool "partition forced fail-fast aborts" true (r.Shard_runner.net_aborts > 0);
  check_bool "in-doubt residence observed" true (r.Shard_runner.indoubt_max_us > 0);
  (match r.Shard_runner.digest.Shard_runner.d_net with
  | None -> Alcotest.fail "expected a net digest block under faults"
  | Some n ->
      check_bool "drops counted" true (n.Shard_runner.nd_dropped > 0);
      check_bool "retries counted" true (n.Shard_runner.nd_retried > 0));
  (* Satellite: per-shard in-doubt and epoch-lag ride the report as
     gauges. Post-quiesce both must have drained/caught up. *)
  check_int "in-doubt drained (shard 0)" 0
    (Option.value ~default:(-1) (Fault_report.gauge r.Shard_runner.report "indoubt-s0"));
  check_int "in-doubt drained (shard 1)" 0
    (Option.value ~default:(-1) (Fault_report.gauge r.Shard_runner.report "indoubt-s1"));
  check_bool "epoch lag gauge present and small" true
    (match Fault_report.gauge r.Shard_runner.report "epoch-lag-s1" with
    | Some l -> l >= 0 && l <= 12
    | None -> false)

let test_dup_heavy_idempotent_and_reproducible () =
  let net = Net_fault.make ~loss:0.05 ~dup:0.5 ~max_delay:(Clock.us 200) ~seed:9 () in
  let r1 = Shard_runner.run (net_campaign ~seed:9 net) in
  let r2 = Shard_runner.run (net_campaign ~seed:9 net) in
  check_int "duplicate-delivery idempotence: no violations" 0
    (Fault_report.violation_count r1.Shard_runner.report);
  check_bool "duplicates actually flew" true
    (match r1.Shard_runner.digest.Shard_runner.d_net with
    | Some n -> n.Shard_runner.nd_sent > 0 && (Fault_report.gauge r1.Shard_runner.report "net-duplicated" <> Some 0)
    | None -> false);
  check_bool "seeded fault campaign is bit-reproducible" true
    (r1.Shard_runner.digest = r2.Shard_runner.digest);
  check_int "same commits" r1.Shard_runner.commits r2.Shard_runner.commits

(* -------------------------------------------------------------------- *)
(* Cooperative termination and the sabotage modes, deterministically *)

let small_schema =
  { Schema.default with Schema.tables = 2; rows_per_table = 100; record_bytes = 64 }

(* One cross-shard transaction against a fabric where shard 1 is cut
   off just after the prepare leaves: the prepare (sent before the cut
   opens at 2 ms, delayed 10 ms) still lands, while the vote-retry
   budget exhausts around 3 ms — so the abort decision, the late
   votes and the termination queries all die on the cut. Shard 1 is left
   genuinely in doubt. *)
let indoubt_scenario ~heal_t =
  let net =
    Net_fault.make ~min_delay:(Clock.ms 10) ~max_delay:(Clock.us 2)
      ~partitions:
        [ { Net_fault.p_name = "cut"; isolated = [ 1 ]; from_t = Clock.ms 2; heal_t } ]
      ~seed:5 ()
  in
  let g =
    Shard_group.create ~net ~net_rto:(Clock.us 200) ~net_indoubt_after:(Clock.ms 2)
      ~shards:2 small_schema
  in
  let txn, t = Shard_group.begin_txn g ~now:0 in
  (match Shard_group.write g txn ~rid:0 ~payload:1 ~now:t with
  | Engine.Committed_path _ -> ()
  | Engine.Conflict _ -> Alcotest.fail "unexpected conflict");
  (match Shard_group.write g txn ~rid:1 ~payload:2 ~now:t with
  | Engine.Committed_path _ -> ()
  | Engine.Conflict _ -> Alcotest.fail "unexpected conflict");
  let outcome = Shard_group.commit_checked g txn ~now:t in
  (match outcome with
  | Shard_group.Net_abort _ -> ()
  | Shard_group.Committed _ ->
      Alcotest.fail "expected fail-fast: the participant was unreachable");
  check_int "fail-fast counted" 1 (Shard_group.net_aborts g);
  (* Deliver the delayed prepare; shard 1 goes in doubt. *)
  Shard_group.tick g ~now:(Clock.ms 12);
  check_int "participant prepared in doubt" 1 (Shard_group.indoubt_count g ~sid:1);
  g

let test_cooperative_termination_resolves () =
  (* Heal at 30 ms: the termination query must reach the coordinator,
     find no durable decision (only Coord_abort), and resolve the
     participant by presumed abort. *)
  let g = indoubt_scenario ~heal_t:(Clock.ms 30) in
  let endt = Shard_group.quiesce g ~now:(Clock.ms 35) in
  check_int "in-doubt drained after heal" 0 (Shard_group.indoubt_total g);
  check_int "fabric drained" 0 (Shard_group.net_pending g);
  Alcotest.(check (list (pair string string)))
    "liveness clean" [] (Shard_group.check_indoubt_liveness g ~now:endt);
  Alcotest.(check (list (pair string string)))
    "atomicity clean: both sides aborted" []
    (List.map
       (fun { Invariant.invariant; detail } -> (invariant, detail))
       (Invariant.check_cross_shard_atomicity (Shard_group.wals g)))

let test_indoubt_liveness_skips_active_partition () =
  (* A partition that never heals within the run legitimately pins the
     doubt: the liveness invariant must stay silent, not cry wolf. *)
  let g = indoubt_scenario ~heal_t:(Clock.seconds 100.) in
  Alcotest.(check (list (pair string string)))
    "pinned doubt under an active cut is not a violation" []
    (Shard_group.check_indoubt_liveness g ~now:(Clock.seconds 10.))

let test_sabotage_apply_on_timeout_caught () =
  let net =
    Net_fault.make ~min_delay:(Clock.ms 10) ~max_delay:(Clock.us 2)
      ~partitions:
        [
          {
            Net_fault.p_name = "cut";
            isolated = [ 1 ];
            from_t = Clock.ms 2;
            heal_t = Clock.seconds 100.;
          };
        ]
      ~seed:5 ()
  in
  let g =
    Shard_group.create ~net ~net_rto:(Clock.us 200) ~net_indoubt_after:(Clock.ms 2)
      ~shards:2 small_schema
  in
  Shard_group.set_net_sabotage g (Some Shard_group.Apply_on_timeout);
  let txn, t = Shard_group.begin_txn g ~now:0 in
  ignore (Shard_group.write g txn ~rid:0 ~payload:1 ~now:t);
  ignore (Shard_group.write g txn ~rid:1 ~payload:2 ~now:t);
  (match Shard_group.commit_checked g txn ~now:t with
  | Shard_group.Net_abort _ -> ()
  | Shard_group.Committed _ -> Alcotest.fail "expected fail-fast");
  (* Prepare lands at ~10 ms; past the in-doubt timeout the sabotaged
     participant applies a fabricated commit instead of querying. *)
  Shard_group.tick g ~now:(Clock.ms 12);
  check_int "in doubt before the timeout" 1 (Shard_group.indoubt_count g ~sid:1);
  Shard_group.tick g ~now:(Clock.ms 15);
  check_int "unilateral apply resolved the doubt" 0 (Shard_group.indoubt_count g ~sid:1);
  let vs = Invariant.check_cross_shard_atomicity (Shard_group.wals g) in
  check_bool "fabricated commit caught" true (vs <> []);
  check_bool "caught by the 2PC decision/atomicity oracle" true
    (List.for_all
       (fun { Invariant.invariant; _ } ->
         invariant = "2pc-decision-missing" || invariant = "cross-shard-atomicity")
       vs
    && vs <> [])

let test_sabotage_ack_forge_caught () =
  (* Static, even on the transparent fabric: the non-coordinator
     participant rolls its work back yet acks, so the coordinator
     forgets a transaction one shard never applied. *)
  let g = Shard_group.create ~shards:2 small_schema in
  Shard_group.set_net_sabotage g (Some Shard_group.Ack_forge);
  let txn, t = Shard_group.begin_txn g ~now:0 in
  ignore (Shard_group.write g txn ~rid:0 ~payload:1 ~now:t);
  ignore (Shard_group.write g txn ~rid:1 ~payload:2 ~now:t);
  (match Shard_group.commit_checked g txn ~now:t with
  | Shard_group.Committed _ -> ()
  | Shard_group.Net_abort _ -> Alcotest.fail "passthrough cannot be unreachable");
  let vs = Invariant.check_cross_shard_atomicity (Shard_group.wals g) in
  check_bool "forged ack caught" true
    (List.exists
       (fun { Invariant.invariant; _ } -> invariant = "cross-shard-atomicity")
       vs)

(* -------------------------------------------------------------------- *)
(* qcheck: duplicated 2PC frames are recovery no-ops (satellite) *)

let prop_duplicated_frames_idempotent =
  QCheck.Test.make ~name:"duplicated Ack/Forget/Coord_commit frames change nothing"
    ~count:40
    QCheck.(make Gen.(0 -- 100000))
    (fun seed ->
      let rng = Rng.create seed in
      (* One seeded 2PC frame mix: prepares as participant (coord
         elsewhere), decisions as coordinator, acks and forgets — plus
         plain transactions for ballast. *)
      let base_frames =
        List.concat
          (List.init
             (1 + Rng.int rng 6)
             (fun i ->
               let tid = 100 + (i * 10) in
               match Rng.int rng 4 with
               | 0 ->
                   (* prepared here, coordinated by shard 1: in doubt *)
                   [ Wal_record.Txn_begin { tid };
                     Wal_record.Prepare { tid; coord = 1; shards = [ 0; 1 ] } ]
               | 1 ->
                   (* coordinator with a durable decision, partly acked *)
                   [ Wal_record.Coord_commit { gid = tid; cts = tid + 1; shards = [ 0; 1 ] };
                     Wal_record.Ack { gid = tid; shard = 1 } ]
               | 2 ->
                   (* fully settled: decision, both acks, forget *)
                   [ Wal_record.Coord_commit { gid = tid; cts = tid + 1; shards = [ 0; 1 ] };
                     Wal_record.Ack { gid = tid; shard = 0 };
                     Wal_record.Ack { gid = tid; shard = 1 };
                     Wal_record.Forget { gid = tid } ]
               | _ ->
                   [ Wal_record.Txn_begin { tid };
                     Wal_record.Txn_commit { tid; cts = tid + 1 } ]))
      in
      let build frames =
        let w = Wal.create ~shard:0 () in
        Wal.enable_durability w;
        List.iter (fun p -> ignore (Wal.log w p)) frames;
        ignore (Wal.fsync w ());
        Wal_recovery.expect (Wal_recovery.analyze w)
      in
      let dupable = function
        | Wal_record.Ack _ | Wal_record.Forget _ | Wal_record.Coord_commit _ -> true
        | _ -> false
      in
      (* Re-log already-seen dup-able frames at seeded later positions —
         the duplicated/reordered delivery a lossy fabric's resends
         produce. *)
      let dup_frames =
        let seen = ref [] in
        List.concat_map
          (fun p ->
            if dupable p then seen := p :: !seen;
            match !seen with
            | [] -> [ p ]
            | choices when Rng.int rng 100 < 40 ->
                [ p; List.nth choices (Rng.int rng (List.length choices)) ]
            | _ -> [ p ])
          base_frames
      in
      let a = build base_frames and b = build dup_frames in
      a.Wal_recovery.decisions = b.Wal_recovery.decisions
      && a.Wal_recovery.indoubt = b.Wal_recovery.indoubt
      && a.Wal_recovery.committed = b.Wal_recovery.committed
      && a.Wal_recovery.aborted = b.Wal_recovery.aborted
      && a.Wal_recovery.losers = b.Wal_recovery.losers)

(* -------------------------------------------------------------------- *)
(* Satellite: partition-window edge cases, pinned as fixtures. The
   window is [from_t, heal_t) — heal is exclusive, so a zero-length
   window ([from_t = heal_t]) covers no instant at all, overlapping
   windows isolating the same endpoint sever until the LAST heal edge,
   and a heal scheduled before its own start is a config error. *)

let zero_window at =
  { Net_fault.p_name = "zero"; isolated = [ 1 ]; from_t = at; heal_t = at }

let test_zero_length_window_never_severs () =
  let c = Net_fault.make ~partitions:[ zero_window 100 ] ~seed:1 () in
  List.iter
    (fun now ->
      check_bool "never active" false (Net_fault.active_at c ~now);
      check_bool "never severed" true (Net_fault.severed c ~src:0 ~dst:1 ~now = None))
    [ 0; 99; 100; 101; 1000 ];
  check_int "still counts as the last heal edge" 100 (Net_fault.last_heal c)

let test_overlapping_windows_same_endpoint () =
  let w name from_t heal_t =
    { Net_fault.p_name = name; isolated = [ 1 ]; from_t; heal_t }
  in
  (* Two overlapping cuts of endpoint 1: [100,300) and [200,400). The
     first heal edge at 300 must NOT reconnect — the second window
     still covers 300..399. *)
  let c = Net_fault.make ~partitions:[ w "a" 100 300; w "b" 200 400 ] ~seed:1 () in
  let sev now = Net_fault.severed c ~src:0 ~dst:1 ~now in
  check_bool "before both" true (sev 99 = None);
  check_str "first window" "a" (Option.get (sev 150));
  check_str "overlap reports first match" "a" (Option.get (sev 250));
  check_str "past a's heal, b still cuts" "b" (Option.get (sev 300));
  check_str "late in b" "b" (Option.get (sev 399));
  check_bool "healed only at the later edge" true (sev 400 = None);
  check_int "last heal is the max edge" 400 (Net_fault.last_heal c);
  (* Endpoints inside the isolated set still reach each other, and the
     severance is bidirectional while any window is live. *)
  check_bool "self-side unaffected" true (Net_fault.severed c ~src:1 ~dst:1 ~now:250 = None);
  check_bool "bidirectional" true (Net_fault.severed c ~src:1 ~dst:0 ~now:350 <> None)

let test_heal_before_start_rejected () =
  (try
     ignore
       (Net_fault.make
          ~partitions:[ { Net_fault.p_name = "bad"; isolated = [ 0 ]; from_t = 200; heal_t = 100 } ]
          ~seed:1 ());
     Alcotest.fail "heal before window start must be rejected"
   with Invalid_argument _ -> ());
  (* Healing exactly AT the window start is the zero-length window:
     accepted, covers nothing. *)
  let c = Net_fault.make ~partitions:[ zero_window 200 ] ~seed:1 () in
  check_bool "accepted and inert" false (Net_fault.active_at c ~now:200)

let test_zero_length_window_transparent () =
  (* A full sharded campaign whose only fault is a zero-length window:
     the fabric must drop nothing, sever nothing and abort nothing —
     the degenerate schedule behaves like a healthy (though queued)
     network. *)
  let net = Net_fault.make ~partitions:[ zero_window (Clock.ms 50) ] ~seed:5 () in
  let r = Shard_runner.run (net_campaign net) in
  check_int "no violations" 0 (Fault_report.violation_count r.Shard_runner.report);
  check_int "no fail-fast aborts" 0 r.Shard_runner.net_aborts;
  match r.Shard_runner.digest.Shard_runner.d_net with
  | None -> Alcotest.fail "net digest block expected (config is active)"
  | Some n ->
      check_int "zero drops" 0 n.Shard_runner.nd_dropped;
      check_bool "traffic flowed" true (n.Shard_runner.nd_sent > 0)

(* -------------------------------------------------------------------- *)

let suites =
  [
    ( "net-bus",
      [
        Alcotest.test_case "no-fault bus is an inline pass-through" `Quick
          test_passthrough_inline;
        Alcotest.test_case "fault sequences replay bit-for-bit" `Quick test_bus_determinism;
        Alcotest.test_case "loss/dup accounting conserves copies" `Quick
          test_bus_loss_dup_accounting;
        Alcotest.test_case "delayed copies drain in due order" `Quick test_bus_reorders;
        Alcotest.test_case "partitions sever and heal on schedule" `Quick test_bus_partition;
        Alcotest.test_case "crash clears in-flight frames" `Quick test_bus_crash_clear;
      ] );
    ( "net-backoff",
      [
        Alcotest.test_case "per-channel streams pinned" `Quick test_backoff_channel_pinned;
        Alcotest.test_case "channels fork independently" `Quick
          test_backoff_channel_independence;
      ] );
    ( "net-passthrough",
      [
        Alcotest.test_case "no-fault digests byte-identical to pre-net driver" `Quick
          test_passthrough_digest_pinned;
      ] );
    ( "net-campaign",
      [
        Alcotest.test_case "partition degrades gracefully, then drains" `Quick
          test_partition_graceful_degradation;
        Alcotest.test_case "duplicate-heavy fabric stays idempotent + reproducible" `Quick
          test_dup_heavy_idempotent_and_reproducible;
      ] );
    ( "net-termination",
      [
        Alcotest.test_case "cooperative termination resolves after heal" `Quick
          test_cooperative_termination_resolves;
        Alcotest.test_case "liveness check tolerates an unhealed cut" `Quick
          test_indoubt_liveness_skips_active_partition;
        Alcotest.test_case "apply-on-timeout sabotage caught" `Quick
          test_sabotage_apply_on_timeout_caught;
        Alcotest.test_case "ack-forge sabotage caught" `Quick test_sabotage_ack_forge_caught;
      ] );
    ( "net-recovery",
      [ QCheck_alcotest.to_alcotest prop_duplicated_frames_idempotent ] );
    ( "net-partition-edges",
      [
        Alcotest.test_case "zero-length window never severs" `Quick
          test_zero_length_window_never_severs;
        Alcotest.test_case "overlapping windows heal at the later edge" `Quick
          test_overlapping_windows_same_endpoint;
        Alcotest.test_case "heal before start is rejected" `Quick
          test_heal_before_start_rejected;
        Alcotest.test_case "zero-length window is run-transparent" `Quick
          test_zero_length_window_transparent;
      ] );
  ]
