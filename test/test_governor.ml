(* Version-space governor tests: the health ladder's thresholds,
   adjacency and hysteresis; the snapshot-too-old shedding path through
   the driver; the retry backoff's determinism and cap; and the quota
   envelope as a property over random configurations and histories. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -------------------------------------------------------------------- *)
(* Ladder unit tests (pure Governor) *)

let gcfg ?(quota = 1000) ?(sabotage = false) () =
  {
    (Governor.governed ~quota_bytes:quota) with
    Governor.quota_ignore_sabotage = sabotage;
    shed_grace = Clock.ms 10;
  }

let test_thresholds () =
  let c = gcfg () in
  check_int "normal" 0 (Governor.enter_threshold c Governor.Normal);
  check_int "pressured at 55%" 550 (Governor.enter_threshold c Governor.Pressured);
  check_int "emergency at 75%" 750 (Governor.enter_threshold c Governor.Emergency);
  check_int "shedding at 90%" 900 (Governor.enter_threshold c Governor.Shedding)

let test_escalation_one_rung_per_observation () =
  let g = Governor.create ~config:(gcfg ()) () in
  (* A reading far past every threshold still climbs one rung at a
     time: adjacency is structural, not a property of gentle load. *)
  check_bool "first step" true (Governor.observe g ~now:1 ~space_bytes:5000 = Governor.Pressured);
  check_bool "second step" true (Governor.observe g ~now:2 ~space_bytes:5000 = Governor.Emergency);
  check_bool "third step" true (Governor.observe g ~now:3 ~space_bytes:5000 = Governor.Shedding);
  check_bool "top rung absorbs" true (Governor.observe g ~now:4 ~space_bytes:5000 = Governor.Shedding);
  check_int "three transitions logged" 3 (List.length (Governor.transitions g));
  check_bool "honest ladder" true (Governor.check_ladder g = [])

let test_hysteresis_no_flap () =
  let g = Governor.create ~config:(gcfg ()) () in
  ignore (Governor.observe g ~now:1 ~space_bytes:560);
  check_bool "pressured" true (Governor.rung g = Governor.Pressured);
  (* Oscillating just under the entry threshold must not de-escalate:
     the floor is 550 * (1 - 0.08) = 506. *)
  ignore (Governor.observe g ~now:2 ~space_bytes:540);
  ignore (Governor.observe g ~now:3 ~space_bytes:510);
  check_bool "held through the band" true (Governor.rung g = Governor.Pressured);
  ignore (Governor.observe g ~now:4 ~space_bytes:505);
  check_bool "released under the floor" true (Governor.rung g = Governor.Normal);
  check_int "exactly two transitions" 2 (List.length (Governor.transitions g));
  check_bool "honest ladder" true (Governor.check_ladder g = [])

let test_disabled_and_sabotaged_inert () =
  let off = Governor.create () in
  check_bool "disabled" true (not (Governor.enabled off));
  check_bool "observe answers Normal" true
    (Governor.observe off ~now:1 ~space_bytes:max_int = Governor.Normal);
  check_int "no transitions" 0 (List.length (Governor.transitions off));
  let sab = Governor.create ~config:(gcfg ~sabotage:true ()) () in
  check_bool "sabotaged not enabled" true (not (Governor.enabled sab));
  check_bool "sabotaged answers Normal" true
    (Governor.observe sab ~now:1 ~space_bytes:max_int = Governor.Normal);
  check_int "sabotaged logs nothing" 0 (List.length (Governor.transitions sab))

let test_rung_mechanisms () =
  let g = Governor.create ~config:(gcfg ()) () in
  check_int "normal budget" 64 (Governor.max_segments g);
  check_bool "normal scale" true (Governor.gc_scale g = 1.0);
  ignore (Governor.observe g ~now:1 ~space_bytes:5000);
  check_int "pressured budget" 256 (Governor.max_segments g);
  check_bool "pressured scale" true (Governor.gc_scale g = 0.25);
  check_bool "no emergency yet" true (not (Governor.emergency_active g));
  ignore (Governor.observe g ~now:2 ~space_bytes:5000);
  check_bool "emergency active" true (Governor.emergency_active g);
  check_bool "not shedding yet" true (not (Governor.shed_active g));
  ignore (Governor.observe g ~now:3 ~space_bytes:5000);
  check_bool "shedding active" true (Governor.shed_active g);
  check_bool "emergency still active" true (Governor.emergency_active g)

let test_dwell_times_account_for_now () =
  let g = Governor.create ~config:(gcfg ()) () in
  ignore (Governor.observe g ~now:(Clock.ms 10) ~space_bytes:5000);
  ignore (Governor.observe g ~now:(Clock.ms 30) ~space_bytes:0);
  let dwell = Governor.dwell_times g ~now:(Clock.ms 50) in
  check_int "all four rungs listed" 4 (List.length dwell);
  let total = List.fold_left (fun acc (_, t) -> acc + t) 0 dwell in
  check_int "dwell sums to elapsed time" (Clock.ms 50) total;
  check_int "pressured dwell" (Clock.ms 20) (List.assoc Governor.Pressured dwell)

let test_config_validation () =
  let expect_invalid name c =
    match Governor.create ~config:c () with
    | _ -> Alcotest.fail name
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "unordered fractions"
    { (gcfg ()) with Governor.pressured_frac = 0.8; emergency_frac = 0.7 };
  expect_invalid "hysteresis out of range" { (gcfg ()) with Governor.hysteresis_frac = 1.0 };
  expect_invalid "zero batch" { (gcfg ()) with Governor.shed_batch = 0 }

(* -------------------------------------------------------------------- *)
(* Ladder monotonicity under monotone load (qcheck) *)

let qcheck_monotone_load_monotone_ladder =
  QCheck.Test.make ~name:"monotone load climbs the ladder monotonically, one rung at a time"
    ~count:300
    QCheck.(list_of_size Gen.(1 -- 40) (int_bound 2000))
    (fun readings ->
      let g = Governor.create ~config:(gcfg ()) () in
      let sorted = List.sort compare readings in
      let rec feed i prev = function
        | [] -> true
        | space :: rest ->
            let r = Governor.observe g ~now:i ~space_bytes:space in
            let ri = Governor.rung_index r and pi = Governor.rung_index prev in
            ri >= pi && ri - pi <= 1 && feed (i + 1) r rest
      in
      feed 1 Governor.Normal sorted && Governor.check_ladder g = [])

(* -------------------------------------------------------------------- *)
(* Retry backoff: deterministic per seed, capped, bounded attempts *)

let drain_backoff b =
  let rec go acc = match Backoff.next b with Some d -> go (d :: acc) | None -> List.rev acc in
  go []

let test_backoff_deterministic_and_capped () =
  let mk () = Backoff.create ~base_ns:100 ~cap_ns:1000 ~max_attempts:8 (Rng.create 7) in
  let a = drain_backoff (mk ()) and b = drain_backoff (mk ()) in
  check_bool "same seed, same delays" true (a = b);
  check_int "exactly max_attempts delays" 8 (List.length a);
  List.iter
    (fun d -> check_bool "within cap + jitter" true (d >= 100 && d <= 1000 + 250))
    a;
  (* The first delay is base-sized; growth saturates at the cap. *)
  check_bool "first delay near base" true (List.hd a <= 125);
  let last = List.nth a 7 in
  check_bool "late delays cap-sized" true (last >= 1000)

let qcheck_backoff_properties =
  QCheck.Test.make ~name:"backoff: per-seed deterministic, capped, attempt-bounded" ~count:300
    QCheck.(
      make
        Gen.(
          let* seed = 0 -- 100_000 in
          let* base = 1 -- 1000 in
          let* cap_mult = 1 -- 64 in
          let* attempts = 1 -- 12 in
          return (seed, base, base * cap_mult, attempts)))
    (fun (seed, base, cap, attempts) ->
      let mk () = Backoff.create ~base_ns:base ~cap_ns:cap ~max_attempts:attempts (Rng.create seed) in
      let a = drain_backoff (mk ()) and b = drain_backoff (mk ()) in
      let bound = cap + int_of_float (float_of_int cap *. 0.25) + 1 in
      a = b
      && List.length a = attempts
      && List.for_all (fun d -> d >= min base cap && d <= bound) a
      && Backoff.next (mk ()) <> None)

(* -------------------------------------------------------------------- *)
(* Driver fixtures: governed instance under LLT pinning *)

let config ?(segment_bytes = 300) ?(quota = 0) ?(sabotage = false) ?(grace = 0) () =
  {
    State.default_config with
    State.segment_bytes;
    vbuffer_bytes = 8 * 1024 * 1024;
    classifier = Classifier.create ~delta_hot:(Clock.ms 5) ~delta_llt:(Clock.ms 10) ();
    zone_refresh_period = 0;
    governor =
      (if quota = 0 then Governor.default_config
       else
         {
           (Governor.governed ~quota_bytes:quota) with
           Governor.quota_ignore_sabotage = sabotage;
           shed_grace = grace;
           shed_batch = 4;
         });
  }

let committed_update mgr driver slot ~now ~payload =
  let t = Txn_manager.begin_txn mgr ~now in
  let r = Siro.update slot ~vs:t.Txn.tid ~vs_time:now ~payload ~bytes:100 in
  (match r.Siro.relocated with
  | Some v -> ignore (Driver.relocate driver v ~now)
  | None -> ());
  Txn_manager.commit mgr t ~now:(now + Clock.us 20)

(* An LLT opens early and pins one version per record; with enough
   records the pins spread across many segments, each blocked from
   cutting, so no amount of sweep-and-cut can get back under the quota
   without shedding the LLT. *)
let pinned_overload ?(records = 6) ?(rounds = 12) ~quota ?(sabotage = false) ?(grace = 0) () =
  let mgr = Txn_manager.create () in
  let driver = Driver.create ~config:(config ~quota ~sabotage ~grace ()) mgr in
  let slots =
    Array.init records (fun rid -> Siro.create ~rid ~bytes:100 ~payload:0 ~vs:0 ~vs_time:0)
  in
  Array.iteri
    (fun i slot -> committed_update mgr driver slot ~now:(Clock.ms 1 + Clock.us i) ~payload:1)
    slots;
  let llt = Txn_manager.begin_txn mgr ~now:(Clock.ms 8) in
  for round = 0 to rounds - 1 do
    Array.iteri
      (fun i slot ->
        committed_update mgr driver slot
          ~now:(Clock.ms (20 + (10 * round)) + Clock.us i)
          ~payload:(round + 2))
      slots
  done;
  (mgr, driver, llt)

let test_shedding_evicts_the_pin_and_recovers () =
  (* 60 pins across ~20 segments: > 4000 B is unreclaimable while the
     LLT lives, whatever the relocate-path assists managed during
     setup. The grace period outlives the whole setup, so the first
     chance to shed is the explicit maintenance call. *)
  let _, driver, llt =
    pinned_overload ~records:60 ~rounds:6 ~quota:4000 ~grace:(Clock.ms 200) ()
  in
  check_bool "overloaded before maintenance" true (Driver.space_bytes driver > 4000);
  check_bool "the LLT survives the grace period" true (Txn.is_active llt);
  let _ = Driver.maintain driver ~now:(Clock.ms 500) in
  let g = Driver.governor driver in
  check_bool "the LLT was shed" true (not (Txn.is_active llt));
  check_bool "sheds counted" true (Governor.sheds g > 0);
  check_bool "space back under quota" true (Driver.space_bytes driver <= 4000);
  check_bool "honest ladder" true (Governor.check_ladder g = []);
  check_bool "reached shedding" true
    (List.exists (fun tr -> tr.Governor.to_rung = Governor.Shedding) (Governor.transitions g));
  (* Quiet observations walk the ladder back down, one rung at a time. *)
  for i = 1 to 4 do
    ignore (Driver.maintain driver ~now:(Clock.ms (500 + i)))
  done;
  check_bool "recovered to Normal" true (Driver.rung driver = Governor.Normal);
  check_bool "still honest" true (Governor.check_ladder g = []);
  check_bool "no invariant violations" true (Invariant.check_governor driver = [])

let test_grace_period_protects_young_victims () =
  (* Same overload, but every live transaction is younger than the
     grace period: shedding finds no candidate and must not kill. *)
  let _, driver, llt = pinned_overload ~quota:4000 ~grace:Clock.(seconds 10.) () in
  let _ = Driver.maintain driver ~now:(Clock.ms 400) in
  check_bool "young LLT survives" true (Txn.is_active llt);
  check_int "nothing shed" 0 (Governor.sheds (Driver.governor driver))

let test_backpressure_assists_on_relocate () =
  let mgr, driver, _llt =
    pinned_overload ~records:60 ~rounds:6 ~quota:4000 ~grace:Clock.(seconds 10.) ()
  in
  (* The ladder is already at the top; the next relocation must pay. *)
  let before = Governor.assists (Driver.governor driver) in
  let slot = Siro.create ~rid:99 ~bytes:100 ~payload:0 ~vs:0 ~vs_time:0 in
  committed_update mgr driver slot ~now:(Clock.ms 500) ~payload:9;
  committed_update mgr driver slot ~now:(Clock.ms 501) ~payload:10;
  check_bool "writer assisted maintenance" true (Governor.assists (Driver.governor driver) > before)

let test_quota_sabotage_is_caught_by_the_invariant () =
  let _, driver, llt =
    pinned_overload ~records:60 ~rounds:6 ~quota:4000 ~sabotage:true ~grace:0 ()
  in
  let _ = Driver.maintain driver ~now:(Clock.ms 400) in
  check_bool "sabotaged governor never sheds" true (Txn.is_active llt);
  check_bool "space still over quota" true (Driver.space_bytes driver > 4000);
  let violations = Invariant.check_governor driver in
  check_bool "space-quota violation flagged" true
    (List.exists (fun v -> v.Invariant.invariant = "space-quota") violations)

let test_ungoverned_runs_record_no_checkpoint () =
  let _, driver, _llt = pinned_overload ~quota:0 () in
  let _ = Driver.maintain driver ~now:(Clock.ms 400) in
  check_bool "no checkpoint without a quota" true
    ((driver : State.t).State.post_maintain_space = None);
  check_bool "no governor violations" true (Invariant.check_governor driver = [])

(* -------------------------------------------------------------------- *)
(* Quota envelope as a property: random quota x random history *)

let overload_case_gen =
  QCheck.Gen.(
    let* records = 2 -- 8 in
    let* rounds = 2 -- 15 in
    (* Quota floor: the open segments (one per class) plus slack for
       the freshest sealed tail that nothing can reclaim yet. *)
    let floor = (Vclass.count + 2) * 300 in
    let* quota = floor -- (4 * floor) in
    return (records, rounds, quota))

let qcheck_space_within_quota_after_maintain =
  QCheck.Test.make
    ~name:"random quota x random history: maintain ends within the hard quota" ~count:60
    (QCheck.make overload_case_gen)
    (fun (records, rounds, quota) ->
      let _, driver, _llt = pinned_overload ~records ~rounds ~quota ~grace:0 () in
      let _ = Driver.maintain driver ~now:(Clock.ms 900) in
      Driver.space_bytes driver <= quota
      && Governor.check_ladder (Driver.governor driver) = []
      && Invariant.check_governor driver = [])

(* -------------------------------------------------------------------- *)
(* End-to-end: a governed run under a space-storm plan is reproducible *)

let governed_engine schema =
  Siro_engine.create
    ~driver_config:
      { State.default_config with State.governor = Governor.governed ~quota_bytes:(768 * 1024) }
    ~flavor:`Pg schema

let storm_cfg seed =
  {
    Exp_config.default with
    Exp_config.name = "governor-storm";
    seed;
    duration_s = 0.6;
    workers = 4;
    reads_per_txn = 2;
    writes_per_txn = 1;
    schema = { Schema.default with Schema.tables = 2; rows_per_table = 50; record_bytes = 64 };
    llts = [ { Exp_config.start_s = 0.05; duration_s = 0.3; count = 1 } ];
    sample_period_s = 0.1;
    gc_period = Clock.ms 5;
  }

let comparable (r : Runner.result) =
  ( r.Runner.commits,
    r.Runner.conflicts,
    r.Runner.throughput,
    r.Runner.version_space,
    r.Runner.retries,
    r.Runner.give_ups,
    r.Runner.sheds,
    Fault_report.to_string r.Runner.faults )

let test_governed_storm_run_reproducible () =
  let plan () = Fault_plan.create ~seed:5 ~space_storm_rate:30. ~abort_rate:10. () in
  let a = Runner.run ~engine:governed_engine ~faults:(plan ()) (storm_cfg 21) in
  let b = Runner.run ~engine:governed_engine ~faults:(plan ()) (storm_cfg 21) in
  check_bool "same seed, same run" true (comparable a = comparable b);
  check_bool "no violations" true (Fault_report.ok a.Runner.faults);
  check_bool "storms were injected" true
    (List.mem_assoc "space-storm" (Fault_report.faults_injected a.Runner.faults));
  check_bool "robustness gauges exported" true
    (Fault_report.gauge a.Runner.faults "sheds" <> None
    && Fault_report.gauge a.Runner.faults "retries" <> None
    && Fault_report.gauge a.Runner.faults "wal-errors" <> None)

let suites =
  [
    ( "governor.ladder",
      [
        Alcotest.test_case "thresholds" `Quick test_thresholds;
        Alcotest.test_case "escalation one rung per observation" `Quick
          test_escalation_one_rung_per_observation;
        Alcotest.test_case "hysteresis prevents flapping" `Quick test_hysteresis_no_flap;
        Alcotest.test_case "disabled and sabotaged are inert" `Quick
          test_disabled_and_sabotaged_inert;
        Alcotest.test_case "rung mechanisms" `Quick test_rung_mechanisms;
        Alcotest.test_case "dwell times" `Quick test_dwell_times_account_for_now;
        Alcotest.test_case "config validation" `Quick test_config_validation;
        QCheck_alcotest.to_alcotest qcheck_monotone_load_monotone_ladder;
      ] );
    ( "governor.backoff",
      [
        Alcotest.test_case "deterministic and capped" `Quick test_backoff_deterministic_and_capped;
        QCheck_alcotest.to_alcotest qcheck_backoff_properties;
      ] );
    ( "governor.shedding",
      [
        Alcotest.test_case "sheds the pin and recovers" `Quick
          test_shedding_evicts_the_pin_and_recovers;
        Alcotest.test_case "grace protects young victims" `Quick
          test_grace_period_protects_young_victims;
        Alcotest.test_case "emergency backpressure assists" `Quick
          test_backpressure_assists_on_relocate;
        Alcotest.test_case "quota sabotage caught" `Quick
          test_quota_sabotage_is_caught_by_the_invariant;
        Alcotest.test_case "ungoverned records no checkpoint" `Quick
          test_ungoverned_runs_record_no_checkpoint;
        QCheck_alcotest.to_alcotest qcheck_space_within_quota_after_maintain;
      ] );
    ( "governor.runner",
      [
        Alcotest.test_case "governed storm run reproducible" `Slow
          test_governed_storm_run_reproducible;
      ] );
  ]
