(* Crash-recovery tests: WAL record framing and CRC rejection, the
   durable-mode log semantics (LSNs, fsync frontier, power loss), the
   ["wal.fsync"] fail-point's conservative accounting, fuzzy
   checkpoints spanned by in-flight transactions, crash-at-every-LSN
   recovery through the real engine restart path, the torn-tail
   sabotage the honest invariants must catch, and the golden-metrics
   compatibility of non-crash runs. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -------------------------------------------------------------------- *)
(* Record framing *)

let sample_snapshot = Jsonx.Obj [ ("oracle_next", Jsonx.Int 17); ("live", Jsonx.Arr []) ]

let sample_payloads : Wal_record.payload list =
  [
    Wal_record.Txn_begin { tid = 7 };
    Wal_record.Txn_commit { tid = 7; cts = 9 };
    Wal_record.Txn_abort { tid = 8; ats = 10 };
    Wal_record.Version_insert { tid = 7; rid = 3; value = 42 };
    Wal_record.Relocate
      {
        rid = 3;
        vs = 7;
        ve = 11;
        vs_time = 100;
        ve_time = 200;
        bytes = 64;
        value = 5;
        seg_id = 2;
        cls = "rec";
        lo = 9;
        hi = 12;
      };
    Wal_record.Seg_harden { seg_id = 2 };
    Wal_record.Seg_drop { seg_id = 3 };
    Wal_record.Seg_cut { seg_id = 2 };
    Wal_record.Ckpt_begin;
    Wal_record.Ckpt_end { snapshot = sample_snapshot };
  ]

let test_record_roundtrip () =
  List.iteri
    (fun i payload ->
      let r = { Wal_record.lsn = 10 + i; at = Clock.ms (1 + i); shard = 0; payload } in
      match Wal_record.decode (Wal_record.encode r) with
      | Ok r' ->
          check_bool (Printf.sprintf "roundtrip %s" (Wal_record.kind_name payload)) true (r = r')
      | Error e -> Alcotest.failf "roundtrip %s: %s" (Wal_record.kind_name payload) e)
    sample_payloads

let test_record_crc_rejects_flip () =
  let r =
    { Wal_record.lsn = 3; at = Clock.ms 2; shard = 0; payload = Wal_record.Version_insert { tid = 5; rid = 1; value = 42 } }
  in
  let frame = Wal_record.encode r in
  (* Swap one digit of the value — still valid JSON, but the body no
     longer matches the checksum. *)
  let needle = "\"value\":42" in
  let idx =
    let rec find i =
      if i + String.length needle > String.length frame then
        Alcotest.fail "value member not found in frame"
      else if String.sub frame i (String.length needle) = needle then i
      else find (i + 1)
    in
    find 0
  in
  let corrupt =
    String.mapi (fun i c -> if i = idx + String.length needle - 1 then '3' else c) frame
  in
  (match Wal_record.decode corrupt with
  | Ok _ -> Alcotest.fail "corrupt frame must be rejected"
  | Error _ -> ());
  (* The sabotage knob replays it blindly, seeing the flipped value. *)
  match Wal_record.decode ~check_crc:false corrupt with
  | Ok { Wal_record.payload = Wal_record.Version_insert { value; _ }; _ } ->
      check_int "sabotage decode sees the flip" 43 value
  | Ok _ -> Alcotest.fail "unexpected payload"
  | Error e -> Alcotest.failf "check_crc:false must accept the frame: %s" e

let test_record_bad_crc_encoder () =
  let r = { Wal_record.lsn = 4; at = 0; shard = 0; payload = Wal_record.Txn_commit { tid = 9; cts = 12 } } in
  let frame = Wal_record.encode_with_bad_crc r in
  (match Wal_record.decode frame with
  | Ok _ -> Alcotest.fail "bad-crc frame must be rejected"
  | Error _ -> ());
  match Wal_record.decode ~check_crc:false frame with
  | Ok r' -> check_bool "payload intact under sabotage" true (r'.Wal_record.payload = r.Wal_record.payload)
  | Error e -> Alcotest.failf "check_crc:false must accept: %s" e

(* -------------------------------------------------------------------- *)
(* Durable-mode log semantics *)

let test_non_durable_log_is_noop () =
  let w = Wal.create () in
  check_bool "not durable" false (Wal.is_durable w);
  check_bool "log returns None" true (Wal.log w (Wal_record.Txn_begin { tid = 1 }) = None);
  check_int "no frames" 0 (List.length (Wal.frames w));
  check_int "no records" 0 (Wal.records w);
  check_bool "fsync trivially true" true (Wal.fsync w ())

let test_durable_lsns_and_crash () =
  let w = Wal.create () in
  Wal.enable_durability w;
  let lsn i = Wal.log w (Wal_record.Txn_begin { tid = i }) in
  for i = 1 to 5 do
    check_bool "sequential lsns" true (lsn i = Some i)
  done;
  check_int "max_lsn" 5 (Wal.max_lsn w);
  check_int "nothing flushed yet" 0 (Wal.flushed_lsn w);
  check_bool "fsync ok" true (Wal.fsync w ());
  check_int "frontier advanced" 5 (Wal.flushed_lsn w);
  ignore (lsn 6);
  ignore (lsn 7);
  (* Power loss: unflushed tail evaporates, LSNs are never reused. *)
  Wal.crash w ~keep_lsn:(Wal.flushed_lsn w);
  check_int "tail dropped" 5 (Wal.max_lsn w);
  check_int "lsns not reused" 8 (Wal.next_lsn w);
  check_int "crash counted" 1 (Wal.crashes w)

let test_fsync_failpoint_conservative () =
  Failpoint.with_scope (fun () ->
      let w = Wal.create () in
      Wal.enable_durability w;
      ignore (Wal.log w (Wal_record.Txn_begin { tid = 1 }));
      let errors_before = Wal.errors w in
      Failpoint.arm_fail_n "wal.fsync" 1;
      check_bool "failed fsync reports false" false (Wal.fsync w ());
      check_int "frontier not advanced" 0 (Wal.flushed_lsn w);
      check_int "failure counted into errors" (errors_before + 1) (Wal.errors w);
      check_int "failure counted" 1 (Wal.fsync_failures w);
      check_bool "next fsync passes" true (Wal.fsync w ());
      check_int "frontier catches up" (Wal.max_lsn w) (Wal.flushed_lsn w))

(* -------------------------------------------------------------------- *)
(* Engine-level fixtures *)

let tiny_schema = { Schema.default with Schema.tables = 2; rows_per_table = 20; record_bytes = 64 }

let durable_engine ?(skip_tail_check = false) () =
  let cfg =
    { State.default_config with State.durable_wal = true; recovery_skip_tail_check = skip_tail_check }
  in
  Siro_engine.create ~driver_config:cfg ~flavor:`Pg tiny_schema

let wal_of eng =
  let st : State.t = Siro_engine.driver_exn eng in
  match st.State.wal with Some w -> w | None -> Alcotest.fail "durable engine has no wal"

(* A deterministic mini-history: [n] committed single-write txns, then
   [losers] left in flight (their begins carried past the durability
   frontier by the last commit's fsync as long as a commit follows). *)
let mini_history ?(n = 8) ?(losers = 2) eng =
  let now = ref (Clock.ms 1) in
  let tick () =
    now := !now + Clock.us 200;
    !now
  in
  let records = Schema.records tiny_schema in
  let pending =
    List.init losers (fun i ->
        let txn, _ = eng.Engine.begin_txn ~now:(tick ()) in
        (match eng.Engine.write txn ~rid:((i * 7) mod records) ~payload:(-1) ~now:(tick ()) with
        | Engine.Committed_path _ | Engine.Conflict _ -> ());
        txn)
  in
  for i = 1 to n do
    let txn, _ = eng.Engine.begin_txn ~now:(tick ()) in
    (match eng.Engine.write txn ~rid:(i mod records) ~payload:(100 + i) ~now:(tick ()) with
    | Engine.Committed_path _ | Engine.Conflict _ -> ());
    ignore (eng.Engine.commit txn ~now:(tick ()))
  done;
  (pending, !now)

let restart_of eng =
  match eng.Engine.restart with Some f -> f | None -> Alcotest.fail "no restart closure"

let no_violations name vs =
  check_bool name true
    (match vs with
    | [] -> true
    | { Invariant.invariant; detail } :: _ ->
        Printf.printf "unexpected violation [%s] %s\n" invariant detail;
        false)

(* -------------------------------------------------------------------- *)
(* Fuzzy checkpoint spanned by an in-flight transaction *)

let test_checkpoint_spanning_commit_replays () =
  let eng = durable_engine () in
  let now = ref (Clock.ms 1) in
  let tick () =
    now := !now + Clock.us 100;
    !now
  in
  let spanner, _ = eng.Engine.begin_txn ~now:(tick ()) in
  (match eng.Engine.write spanner ~rid:1 ~payload:111 ~now:(tick ()) with
  | Engine.Committed_path _ -> ()
  | Engine.Conflict _ -> Alcotest.fail "unexpected conflict");
  (* Checkpoint while the txn is in flight: its write must travel in the
     snapshot's pending set so the post-checkpoint commit suffices. *)
  (match eng.Engine.checkpoint with
  | Some ckpt -> ckpt ~now:(tick ())
  | None -> Alcotest.fail "durable engine has no checkpoint closure");
  ignore (eng.Engine.commit spanner ~now:(tick ()));
  let other, _ = eng.Engine.begin_txn ~now:(tick ()) in
  (match eng.Engine.write other ~rid:2 ~payload:222 ~now:(tick ()) with
  | Engine.Committed_path _ | Engine.Conflict _ -> ());
  ignore (eng.Engine.commit other ~now:(tick ()));
  let wal = wal_of eng in
  Wal.crash wal ~keep_lsn:(Wal.flushed_lsn wal);
  let info = restart_of eng ~now:(tick ()) in
  check_bool "replayed something past the checkpoint" true (info.Engine.replayed_records > 0);
  no_violations "post-recovery invariants" (Invariant.check_post_recovery (Siro_engine.driver_exn eng));
  let probe, _ = eng.Engine.begin_txn ~now:(tick ()) in
  let v1, _ = eng.Engine.read probe ~rid:1 ~now:(tick ()) in
  let v2, _ = eng.Engine.read probe ~rid:2 ~now:(tick ()) in
  check_int "spanning txn's write durable" 111 v1;
  check_int "post-checkpoint txn durable" 222 v2

(* -------------------------------------------------------------------- *)
(* Crash at every LSN of a short history *)

let qcheck_crash_at_every_lsn =
  QCheck.Test.make ~name:"crash at every WAL LSN recovers with clean invariants" ~count:3
    QCheck.(make Gen.(0 -- 1000))
    (fun seed ->
      let n = 4 + (seed mod 5) in
      let max_lsn =
        let eng = durable_engine () in
        ignore (mini_history ~n eng);
        Wal.max_lsn (wal_of eng)
      in
      let ok = ref true in
      for lsn = Wal.bootstrap_lsn to max_lsn do
        let eng = durable_engine () in
        let _, last = mini_history ~n eng in
        let wal = wal_of eng in
        Wal.crash wal ~keep_lsn:lsn;
        ignore (restart_of eng ~now:(last + Clock.ms 1));
        match Invariant.check_post_recovery (Siro_engine.driver_exn eng) with
        | [] -> ()
        | { Invariant.invariant; detail } :: _ ->
            Printf.printf "crash at lsn %d: [%s] %s\n" lsn invariant detail;
            ok := false
      done;
      !ok)

(* -------------------------------------------------------------------- *)
(* Torn-tail sabotage: a skipped tail check must be caught *)

let torn_tail_frame wal =
  let exp = Wal_recovery.expect (Wal_recovery.analyze ~check_crc:true wal) in
  let tid = exp.Wal_recovery.oracle_floor + 999983 in
  Wal_record.encode_with_bad_crc
    {
      Wal_record.lsn = Wal.next_lsn wal;
      at = 0;
      shard = Wal.shard wal;
      payload = Wal_record.Txn_commit { tid; cts = tid + 1 };
    }

let test_honest_restart_truncates_torn_tail () =
  let eng = durable_engine () in
  let _, last = mini_history eng in
  let wal = wal_of eng in
  Wal.crash wal ~keep_lsn:(Wal.flushed_lsn wal);
  ignore (Wal.inject_raw wal (torn_tail_frame wal));
  let info = restart_of eng ~now:(last + Clock.ms 1) in
  check_bool "torn frame refused" true (info.Engine.truncated_frames >= 1);
  no_violations "honest recovery is clean" (Invariant.check_post_recovery (Siro_engine.driver_exn eng))

let test_skipped_tail_check_is_caught () =
  let eng = durable_engine ~skip_tail_check:true () in
  let _, last = mini_history eng in
  let wal = wal_of eng in
  Wal.crash wal ~keep_lsn:(Wal.flushed_lsn wal);
  ignore (Wal.inject_raw wal (torn_tail_frame wal));
  ignore (restart_of eng ~now:(last + Clock.ms 1));
  (* The sabotaged restart replayed a corrupt commit the honest oracle
     refuses; the post-recovery invariants must flag the divergence. *)
  check_bool "sabotaged recovery flagged" true
    (Invariant.check_post_recovery (Siro_engine.driver_exn eng) <> [])

(* -------------------------------------------------------------------- *)
(* Non-crash runs: durability must be workload-invisible, and the
   canonical sim scenario must still match the committed golden. *)

let runner_cfg =
  {
    Exp_config.default with
    Exp_config.name = "recovery-test";
    seed = 23;
    duration_s = 0.4;
    workers = 4;
    reads_per_txn = 2;
    writes_per_txn = 1;
    schema = { Schema.default with Schema.tables = 2; rows_per_table = 50; record_bytes = 64 };
    llts = [ { Exp_config.start_s = 0.05; duration_s = 0.2; count = 1 } ];
    sample_period_s = 0.1;
    gc_period = Clock.ms 5;
  }

let comparable (r : Runner.result) =
  ( r.Runner.commits,
    r.Runner.conflicts,
    r.Runner.llt_reads,
    r.Runner.throughput,
    r.Runner.version_space,
    r.Runner.max_chain,
    r.Runner.chain_cdf,
    Histogram.cdf r.Runner.latency_us )

let test_durability_is_workload_invisible () =
  let bare =
    Runner.run ~engine:(fun s -> Siro_engine.create ~flavor:`Pg s) runner_cfg
  in
  let durable =
    Runner.run
      ~engine:(fun s ->
        Siro_engine.create
          ~driver_config:{ State.default_config with State.durable_wal = true }
          ~flavor:`Pg s)
      runner_cfg
  in
  check_bool "durable run, no crash plan: workload bit-identical" true
    (comparable bare = comparable durable);
  check_int "no crashes without a plan" 0 durable.Runner.crashes;
  check_bool "no recoveries" true (durable.Runner.recoveries = [])

let test_golden_metrics_unchanged () =
  (* The CI golden scenario: vdriver_sim run -e pg-vdriver -d 2 --llts 2
     --seed 42 (48x1000 schema, 16 workers, uniform access, LLT group at
     5 s — past the horizon, so it never starts). The metrics export
     must stay byte-identical to test/golden/obs_metrics.json. *)
  let cfg =
    {
      Exp_config.default with
      Exp_config.name = "pg-vdriver";
      seed = 42;
      duration_s = 2.;
      workers = 16;
      schema = { Schema.default with Schema.tables = 48; rows_per_table = 1000; record_bytes = 256 };
      phases = [ { Exp_config.at_s = 0.; pattern = Access.Uniform } ];
      llts = [ { Exp_config.start_s = 5.; duration_s = 10.; count = 2 } ];
    }
  in
  let reg = Metrics.create () in
  ignore
    (Metrics.with_registry reg (fun () ->
         Runner.run
           ~engine:(fun s -> Siro_engine.create ~driver_config:State.default_config ~flavor:`Pg s)
           cfg));
  let got = Jsonx.to_string (Metrics.to_json reg) ^ "\n" in
  let path =
    (* dune runtest runs in _build/default/test; a manual run from the
       repo root finds the file under test/. *)
    if Sys.file_exists "golden/obs_metrics.json" then "golden/obs_metrics.json"
    else "test/golden/obs_metrics.json"
  in
  let ic = open_in_bin path in
  let want =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  check_bool "golden obs_metrics.json unchanged by the durability layer" true (got = want)

let suites =
  [
    ( "recovery.record",
      [
        Alcotest.test_case "roundtrip every payload" `Quick test_record_roundtrip;
        Alcotest.test_case "crc rejects a bit flip" `Quick test_record_crc_rejects_flip;
        Alcotest.test_case "bad-crc encoder" `Quick test_record_bad_crc_encoder;
      ] );
    ( "recovery.wal",
      [
        Alcotest.test_case "non-durable log is a no-op" `Quick test_non_durable_log_is_noop;
        Alcotest.test_case "lsns, frontier, power loss" `Quick test_durable_lsns_and_crash;
        Alcotest.test_case "fsync failpoint conservative" `Quick test_fsync_failpoint_conservative;
      ] );
    ( "recovery.restart",
      [
        Alcotest.test_case "checkpoint-spanning commit" `Quick test_checkpoint_spanning_commit_replays;
        QCheck_alcotest.to_alcotest qcheck_crash_at_every_lsn;
        Alcotest.test_case "honest restart truncates torn tail" `Quick
          test_honest_restart_truncates_torn_tail;
        Alcotest.test_case "skipped tail check is caught" `Quick test_skipped_tail_check_is_caught;
      ] );
    ( "recovery.compat",
      [
        Alcotest.test_case "durability workload-invisible" `Quick test_durability_is_workload_invisible;
        Alcotest.test_case "golden metrics unchanged" `Slow test_golden_metrics_unchanged;
      ] );
  ]
