(* Tests for repro_util: rng, zipf, histogram, stats, series, vec. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -------------------------------------------------------------------- *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Rng.next_int64 a = Rng.next_int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.next_int64 a = Rng.next_int64 b then incr same
  done;
  check_bool "streams differ" true (!same < 4)

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 13 in
    check_bool "in range" true (x >= 0 && x < 13)
  done

let test_rng_int_in_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 1_000 do
    let x = Rng.int_in_range rng ~lo:5 ~hi:9 in
    check_bool "in inclusive range" true (x >= 5 && x <= 9)
  done

let test_rng_int_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_float_range () =
  let rng = Rng.create 11 in
  for _ = 1 to 10_000 do
    let f = Rng.float rng in
    check_bool "in [0,1)" true (f >= 0. && f < 1.)
  done

let test_rng_float_mean () =
  let rng = Rng.create 23 in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.float rng
  done;
  let mean = !sum /. float_of_int n in
  check_bool "mean near 0.5" true (abs_float (mean -. 0.5) < 0.01)

let test_rng_split_independent () =
  let parent = Rng.create 5 in
  let child = Rng.split parent in
  check_bool "child differs from parent continuation" true
    (Rng.next_int64 child <> Rng.next_int64 parent)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 3 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

(* -------------------------------------------------------------------- *)
(* Zipf *)

let test_zipf_bounds () =
  let rng = Rng.create 17 in
  let z = Zipf.create ~n:100 ~s:1.2 in
  for _ = 1 to 10_000 do
    let k = Zipf.sample z rng in
    check_bool "rank in range" true (k >= 0 && k < 100)
  done

let test_zipf_rank0_most_popular () =
  let rng = Rng.create 29 in
  let z = Zipf.create ~n:1000 ~s:1.1 in
  let counts = Array.make 1000 0 in
  for _ = 1 to 100_000 do
    let k = Zipf.sample z rng in
    counts.(k) <- counts.(k) + 1
  done;
  check_bool "rank 0 beats rank 10" true (counts.(0) > counts.(10));
  check_bool "rank 0 beats rank 500" true (counts.(0) > counts.(500));
  check_bool "heavy head" true (counts.(0) > 100_000 / 10)

let test_zipf_exponent_skew () =
  (* Higher exponent concentrates more mass on rank 0. *)
  let count_rank0 s =
    let rng = Rng.create 31 in
    let z = Zipf.create ~n:1000 ~s in
    let c = ref 0 in
    for _ = 1 to 50_000 do
      if Zipf.sample z rng = 0 then incr c
    done;
    !c
  in
  check_bool "1.3 skews harder than 0.8" true (count_rank0 1.3 > count_rank0 0.8)

let test_zipf_near_one_exponent () =
  (* s = 1.0 is the YCSB formula's singularity; ours must handle it. *)
  let rng = Rng.create 37 in
  let z = Zipf.create ~n:50 ~s:1.0 in
  for _ = 1 to 5_000 do
    let k = Zipf.sample z rng in
    check_bool "in range at s=1" true (k >= 0 && k < 50)
  done

let test_zipf_single_item () =
  let rng = Rng.create 41 in
  let z = Zipf.create ~n:1 ~s:2.0 in
  for _ = 1 to 100 do
    check_int "only rank" 0 (Zipf.sample z rng)
  done

let test_zipf_invalid () =
  Alcotest.check_raises "n=0" (Invalid_argument "Zipf.create: n must be positive") (fun () ->
      ignore (Zipf.create ~n:0 ~s:1.0));
  Alcotest.check_raises "s=0" (Invalid_argument "Zipf.create: s must be positive") (fun () ->
      ignore (Zipf.create ~n:10 ~s:0.))

(* -------------------------------------------------------------------- *)
(* Histogram *)

let test_histogram_counts () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 1; 1; 2; 5 ];
  check_int "total" 4 (Histogram.total h);
  check_int "max" 5 (Histogram.max_value h);
  check_int "le 1" 2 (Histogram.count_le h 1);
  check_int "le 4" 3 (Histogram.count_le h 4);
  check_int "le 5" 4 (Histogram.count_le h 5)

let test_histogram_cdf () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 0; 1; 2; 3 ];
  let cdf = Histogram.cdf h in
  check_int "four points" 4 (List.length cdf);
  let _, last = List.nth cdf 3 in
  check_bool "cdf ends at 1" true (abs_float (last -. 1.0) < 1e-9)

let test_histogram_percentile () =
  let h = Histogram.create () in
  for v = 1 to 100 do
    Histogram.add h v
  done;
  check_int "p50" 50 (Histogram.percentile h 0.5);
  check_int "p99" 99 (Histogram.percentile h 0.99);
  check_int "p100" 100 (Histogram.percentile h 1.0)

let test_histogram_buckets () =
  let h = Histogram.create ~bucket_width:10 () in
  List.iter (Histogram.add h) [ 0; 9; 10; 19; 25 ];
  (* buckets: [0,9] x2, [10,19] x2, [20,29] x1; representatives 9/19/29 *)
  check_int "le 9" 2 (Histogram.count_le h 9);
  check_int "le 19" 4 (Histogram.count_le h 19);
  check_int "le 29" 5 (Histogram.count_le h 29)

let test_histogram_empty () =
  let h = Histogram.create () in
  check_int "empty total" 0 (Histogram.total h);
  check_bool "empty cdf" true (Histogram.cdf h = [])

let test_histogram_add_many () =
  let h = Histogram.create () in
  Histogram.add_many h 3 ~count:7;
  check_int "bulk total" 7 (Histogram.total h);
  check_int "bulk le" 7 (Histogram.count_le h 3)

let test_histogram_tail_clamp () =
  (* Wide buckets must not report a tail beyond the largest recorded
     observation: one value 3 at width 10 lives in bucket [0,9] but
     every percentile answers 3, not the raw bucket bound 9. *)
  let h = Histogram.create ~bucket_width:10 () in
  Histogram.add h 3;
  check_int "p100 clamped" 3 (Histogram.percentile h 1.0);
  check_bool "cdf clamped" true (Histogram.cdf h = [ (3, 1.0) ]);
  Histogram.add h 25;
  check_int "top bucket clamped to max" 25 (Histogram.percentile h 1.0);
  (* The non-top bucket keeps its full upper bound. *)
  check_int "lower bucket repr" 9 (Histogram.percentile h 0.5)

let test_histogram_merge () =
  let a = Histogram.create ~bucket_width:5 () in
  let b = Histogram.create ~bucket_width:5 () in
  List.iter (Histogram.add a) [ 1; 2; 12 ];
  List.iter (Histogram.add b) [ 3; 22 ];
  let m = Histogram.merge a b in
  check_int "merged total" 5 (Histogram.total m);
  check_int "merged max" 22 (Histogram.max_value m);
  check_int "merged le 4" 3 (Histogram.count_le m 4);
  check_int "merged p100" 22 (Histogram.percentile m 1.0);
  (* Operands are untouched. *)
  check_int "a intact" 3 (Histogram.total a);
  check_int "b intact" 2 (Histogram.total b);
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Histogram.merge: bucket_width mismatch") (fun () ->
      ignore (Histogram.merge a (Histogram.create ())))

let qcheck_histogram_merge_totals =
  QCheck.Test.make ~name:"histogram merge behaves like concatenation" ~count:200
    QCheck.(pair (list (int_bound 100)) (list (int_bound 100)))
    (fun (xs, ys) ->
      let a = Histogram.create ~bucket_width:3 () in
      let b = Histogram.create ~bucket_width:3 () in
      List.iter (Histogram.add a) xs;
      List.iter (Histogram.add b) ys;
      let m = Histogram.merge a b in
      let c = Histogram.create ~bucket_width:3 () in
      List.iter (Histogram.add c) (xs @ ys);
      Histogram.total m = Histogram.total c
      && Histogram.max_value m = Histogram.max_value c
      && Histogram.cdf m = Histogram.cdf c)

(* -------------------------------------------------------------------- *)
(* Stats *)

let feq a b = abs_float (a -. b) < 1e-9

let test_stats_mean () =
  check_bool "mean" true (feq (Stats.mean [ 1.; 2.; 3. ]) 2.);
  check_bool "empty mean" true (feq (Stats.mean []) 0.)

let test_stats_stddev () =
  check_bool "constant" true (feq (Stats.stddev [ 4.; 4.; 4. ]) 0.);
  check_bool "spread" true (feq (Stats.stddev [ 1.; 3. ]) 1.)

let test_stats_percentile () =
  let xs = [ 5.; 1.; 4.; 2.; 3. ] in
  check_bool "p50 = 3" true (feq (Stats.percentile xs 0.5) 3.);
  check_bool "p100 = 5" true (feq (Stats.percentile xs 1.0) 5.)

let test_stats_min_max () =
  check_bool "min" true (feq (Stats.minimum [ 3.; 1.; 2. ]) 1.);
  check_bool "max" true (feq (Stats.maximum [ 3.; 1.; 2. ]) 3.)

let test_stats_percentiles_batch () =
  let xs = [ 5.; 1.; 4.; 2.; 3. ] in
  (match Stats.percentiles xs [ 0.5; 1.0; 0.0 ] with
  | [ p50; p100; p0 ] ->
      check_bool "p50" true (feq p50 3.);
      check_bool "p100" true (feq p100 5.);
      check_bool "p0" true (feq p0 1.)
  | other -> Alcotest.failf "expected 3 results, got %d" (List.length other));
  check_bool "empty fractions" true (Stats.percentiles xs [] = []);
  (* Batch answers must agree with one-at-a-time answers. *)
  List.iter
    (fun p ->
      check_bool "agrees with percentile" true
        (feq (Stats.percentile xs p) (List.hd (Stats.percentiles xs [ p ]))))
    [ 0.0; 0.25; 0.5; 0.9; 1.0 ]

let test_stats_nan_safe () =
  (* Float.compare sorts NaNs first: a poisoned sample yields the NaN
     at p0 but leaves every real rank deterministic — crucially the
     result never depends on the input order (polymorphic compare on
     NaN is order-dependent). *)
  let a = [ Float.nan; 2.; 1.; 3. ] and b = [ 3.; 1.; 2.; Float.nan ] in
  check_bool "NaN sorts first" true (Float.is_nan (Stats.percentile a 0.0));
  check_bool "real ranks unaffected" true (feq (Stats.percentile a 1.0) 3.);
  check_bool "order-independent p50" true
    (feq (Stats.percentile a 0.5) (Stats.percentile b 0.5));
  check_bool "order-independent min" true
    (Float.compare (Stats.minimum a) (Stats.minimum b) = 0);
  check_bool "max ignores position" true (feq (Stats.maximum b) 3.)

(* -------------------------------------------------------------------- *)
(* Series *)

let test_series_order () =
  let s = Series.create "space" in
  Series.add s ~time:0. ~value:1.;
  Series.add s ~time:1. ~value:2.;
  check_bool "points" true (Series.to_list s = [ (0., 1.); (1., 2.) ]);
  check_bool "last" true (Series.last s = Some (1., 2.))

let test_rate_buckets () =
  let r = Series.Rate.create ~bucket:1.0 "commits" in
  Series.Rate.incr r ~time:0.1;
  Series.Rate.incr r ~time:0.9;
  Series.Rate.incr r ~time:1.5;
  check_int "total" 3 (Series.Rate.total r);
  match Series.Rate.per_second r with
  | [ (_, r0); (_, r1) ] ->
      check_bool "bucket 0 rate 2" true (feq r0 2.);
      check_bool "bucket 1 rate 1" true (feq r1 1.)
  | other -> Alcotest.failf "expected 2 buckets, got %d" (List.length other)

let test_rate_empty_windows () =
  let r = Series.Rate.create "sparse" in
  Series.Rate.incr r ~time:3.5;
  check_int "windows up to last event" 4 (List.length (Series.Rate.per_second r))

(* -------------------------------------------------------------------- *)
(* Vec *)

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  check_int "length" 100 (Vec.length v);
  check_int "get 57" 57 (Vec.get v 57);
  Vec.set v 57 (-1);
  check_int "set" (-1) (Vec.get v 57)

let test_vec_pop () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  check_bool "pop 3" true (Vec.pop v = Some 3);
  check_int "len 2" 2 (Vec.length v);
  ignore (Vec.pop v);
  ignore (Vec.pop v);
  check_bool "empty pop" true (Vec.pop v = None)

let test_vec_filter_in_place () =
  let v = Vec.of_list [ 1; 2; 3; 4; 5; 6 ] in
  Vec.filter_in_place (fun x -> x mod 2 = 0) v;
  Alcotest.(check (list int)) "evens kept in order" [ 2; 4; 6 ] (Vec.to_list v)

let test_vec_bounds () =
  let v = Vec.of_list [ 1 ] in
  Alcotest.check_raises "oob" (Invalid_argument "Vec: index out of bounds") (fun () ->
      ignore (Vec.get v 1))

let test_vec_drop_front () =
  let v = Vec.of_list [ 1; 2; 3; 4; 5 ] in
  Vec.drop_front v 2;
  Alcotest.(check (list int)) "prefix dropped" [ 3; 4; 5 ] (Vec.to_list v);
  Vec.drop_front v 0;
  check_int "zero is a no-op" 3 (Vec.length v);
  Vec.drop_front v 3;
  check_int "can drop all" 0 (Vec.length v);
  Alcotest.check_raises "too many" (Invalid_argument "Vec.drop_front") (fun () ->
      Vec.drop_front v 1)

let test_vec_fold_exists () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  check_int "fold sum" 6 (Vec.fold_left ( + ) 0 v);
  check_bool "exists" true (Vec.exists (fun x -> x = 2) v);
  check_bool "not exists" false (Vec.exists (fun x -> x = 9) v)

(* -------------------------------------------------------------------- *)

let qcheck_histogram_percentile_monotone =
  QCheck.Test.make ~name:"histogram percentile is monotone in p" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (int_bound 1000))
    (fun values ->
      QCheck.assume (values <> []);
      let h = Histogram.create () in
      List.iter (Histogram.add h) values;
      Histogram.percentile h 0.3 <= Histogram.percentile h 0.9)

let qcheck_vec_roundtrip =
  QCheck.Test.make ~name:"vec of_list/to_list roundtrip" ~count:200
    QCheck.(list int)
    (fun xs -> Vec.to_list (Vec.of_list xs) = xs)

let suites =
  [
    ( "util.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
        Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
        Alcotest.test_case "int_in_range" `Quick test_rng_int_in_range;
        Alcotest.test_case "invalid bound" `Quick test_rng_int_invalid;
        Alcotest.test_case "float range" `Quick test_rng_float_range;
        Alcotest.test_case "float mean" `Quick test_rng_float_mean;
        Alcotest.test_case "split independent" `Quick test_rng_split_independent;
        Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
      ] );
    ( "util.zipf",
      [
        Alcotest.test_case "bounds" `Quick test_zipf_bounds;
        Alcotest.test_case "rank 0 most popular" `Quick test_zipf_rank0_most_popular;
        Alcotest.test_case "exponent increases skew" `Quick test_zipf_exponent_skew;
        Alcotest.test_case "s = 1.0 singularity" `Quick test_zipf_near_one_exponent;
        Alcotest.test_case "single item" `Quick test_zipf_single_item;
        Alcotest.test_case "invalid args" `Quick test_zipf_invalid;
      ] );
    ( "util.histogram",
      [
        Alcotest.test_case "counts" `Quick test_histogram_counts;
        Alcotest.test_case "cdf" `Quick test_histogram_cdf;
        Alcotest.test_case "percentile" `Quick test_histogram_percentile;
        Alcotest.test_case "bucket widths" `Quick test_histogram_buckets;
        Alcotest.test_case "empty" `Quick test_histogram_empty;
        Alcotest.test_case "add_many" `Quick test_histogram_add_many;
        Alcotest.test_case "tail clamp" `Quick test_histogram_tail_clamp;
        Alcotest.test_case "merge" `Quick test_histogram_merge;
        QCheck_alcotest.to_alcotest qcheck_histogram_percentile_monotone;
        QCheck_alcotest.to_alcotest qcheck_histogram_merge_totals;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "mean" `Quick test_stats_mean;
        Alcotest.test_case "stddev" `Quick test_stats_stddev;
        Alcotest.test_case "percentile" `Quick test_stats_percentile;
        Alcotest.test_case "percentiles batch" `Quick test_stats_percentiles_batch;
        Alcotest.test_case "NaN safety" `Quick test_stats_nan_safe;
        Alcotest.test_case "min/max" `Quick test_stats_min_max;
      ] );
    ( "util.series",
      [
        Alcotest.test_case "ordered points" `Quick test_series_order;
        Alcotest.test_case "rate buckets" `Quick test_rate_buckets;
        Alcotest.test_case "empty windows" `Quick test_rate_empty_windows;
      ] );
    ( "util.vec",
      [
        Alcotest.test_case "push/get/set" `Quick test_vec_push_get;
        Alcotest.test_case "pop" `Quick test_vec_pop;
        Alcotest.test_case "filter_in_place" `Quick test_vec_filter_in_place;
        Alcotest.test_case "drop_front" `Quick test_vec_drop_front;
        Alcotest.test_case "bounds checks" `Quick test_vec_bounds;
        Alcotest.test_case "fold/exists" `Quick test_vec_fold_exists;
        QCheck_alcotest.to_alcotest qcheck_vec_roundtrip;
      ] );
  ]
