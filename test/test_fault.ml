(* Fault-injection harness tests: plan determinism, the invariant
   catalogue on healthy and deliberately-broken drivers, the §3.5
   crash/abort matrix, and end-to-end chaos properties through the
   runner. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -------------------------------------------------------------------- *)
(* Fault_plan *)

let grid = List.init 200 (fun i -> Clock.ms (10 * i))
let drain plan = List.concat_map (fun t -> Fault_plan.poll plan ~now:t) grid

let test_plan_none_empty () =
  check_int "no injections" 0 (List.length (drain Fault_plan.none))

let test_plan_events_ordered () =
  let plan =
    Fault_plan.create
      ~events:
        [
          { Fault_plan.at = Clock.ms 5; action = Fault_plan.Crash };
          { Fault_plan.at = Clock.ms 1; action = Fault_plan.Wal_error };
        ]
      ()
  in
  check_int "nothing due yet" 0 (List.length (Fault_plan.poll plan ~now:0));
  check_bool "earliest first" true
    (Fault_plan.poll plan ~now:(Clock.ms 2) = [ Fault_plan.Wal_error ]);
  check_bool "later event" true
    (Fault_plan.poll plan ~now:(Clock.ms 10) = [ Fault_plan.Crash ]);
  check_int "events fire once" 0 (List.length (Fault_plan.poll plan ~now:(Clock.ms 100)))

let test_plan_deterministic () =
  let a = Fault_plan.random ~seed:99 () and b = Fault_plan.random ~seed:99 () in
  check_bool "same pp" true
    (Format.asprintf "%a" Fault_plan.pp a = Format.asprintf "%a" Fault_plan.pp b);
  check_bool "same injection sequence" true (drain a = drain b);
  let c = Fault_plan.random ~seed:100 () in
  check_bool "different seed, different plan" true
    (Format.asprintf "%a" Fault_plan.pp a <> Format.asprintf "%a" Fault_plan.pp c)

let test_plan_poisson_rate () =
  (* ~20/s over 2 simulated seconds of grid: expect roughly 40 arrivals;
     accept a generous band (Poisson, but deterministic per seed). *)
  let plan = Fault_plan.create ~seed:7 ~abort_rate:20. () in
  let n = List.length (drain plan) in
  check_bool "arrivals in band" true (n > 15 && n < 80)

let test_plan_negative_rate_raises () =
  match Fault_plan.create ~crash_rate:(-1.) () with
  | _ -> Alcotest.fail "negative rate must raise"
  | exception Invalid_argument _ -> ()

(* -------------------------------------------------------------------- *)
(* Driver fixtures (same shape as the core suites). *)

let config ?(segment_bytes = 300) ?(vbuffer_bytes = 8 * 1024 * 1024) ?(zone_widen_sabotage = 0)
    () =
  {
    State.default_config with
    State.segment_bytes;
    vbuffer_bytes;
    zone_widen_sabotage;
    classifier = Classifier.create ~delta_hot:(Clock.ms 5) ~delta_llt:(Clock.ms 10) ();
    zone_refresh_period = 0;
  }

let committed_update mgr driver slot ~now ~payload =
  let t = Txn_manager.begin_txn mgr ~now in
  let r = Siro.update slot ~vs:t.Txn.tid ~vs_time:now ~payload ~bytes:100 in
  (match r.Siro.relocated with
  | Some v -> ignore (Driver.relocate driver v ~now)
  | None -> ());
  Txn_manager.commit mgr t ~now:(now + Clock.us 20);
  t.Txn.tid

(* An LLT pins one version per record; three relocations happen per
   record so segments fill, seal, and (under vbuffer pressure) harden. *)
let pinned_setup ?vbuffer_bytes ?(records = 4) () =
  let mgr = Txn_manager.create () in
  let driver = Driver.create ~config:(config ?vbuffer_bytes ()) mgr in
  let slots =
    Array.init records (fun rid -> Siro.create ~rid ~bytes:100 ~payload:0 ~vs:0 ~vs_time:0)
  in
  Array.iteri
    (fun i slot -> ignore (committed_update mgr driver slot ~now:(Clock.ms (1 + i)) ~payload:1))
    slots;
  let llt = Txn_manager.begin_txn mgr ~now:(Clock.ms 5) in
  Array.iteri
    (fun i slot ->
      ignore (committed_update mgr driver slot ~now:(Clock.ms (20 + i)) ~payload:2);
      ignore (committed_update mgr driver slot ~now:(Clock.ms (30 + i)) ~payload:3);
      ignore (committed_update mgr driver slot ~now:(Clock.ms (40 + i)) ~payload:4))
    slots;
  (mgr, driver, llt)

let no_violations name vs =
  check_bool name true
    (match vs with
    | [] -> true
    | { Invariant.invariant; detail } :: _ ->
        Printf.printf "unexpected violation [%s] %s\n" invariant detail;
        false)

(* -------------------------------------------------------------------- *)
(* Invariant catalogue on healthy drivers *)

let test_invariants_hold_healthy () =
  let _, driver, _llt = pinned_setup () in
  no_violations "healthy buffered driver" (Invariant.check_all driver);
  ignore (Driver.sweep driver ~now:(Clock.ms 60));
  no_violations "after sweep" (Invariant.check_all driver)

let test_invariants_hold_after_pressure () =
  let _, driver, _llt = pinned_setup ~vbuffer_bytes:100 () in
  ignore (Driver.sweep driver ~now:(Clock.ms 60));
  check_bool "store populated" true (Version_store.live_bytes (Driver.store driver) > 0);
  no_violations "after pressure flush" (Invariant.check_all driver)

(* The sabotage knob: with an adjacent live reader, the sound test keeps
   the interval and the widened rule w=1 wrongly declares it dead. This
   is the unit-level form of what the chaos campaign must catch. *)
let test_sabotage_changes_decision () =
  let mgr = Txn_manager.create () in
  let creator = Txn_manager.begin_txn mgr ~now:0 in
  Txn_manager.commit mgr creator ~now:1;
  let reader = Txn_manager.begin_txn mgr ~now:2 in
  (* Advance the oracle well past the interval. *)
  for i = 1 to 4 do
    let t = Txn_manager.begin_txn mgr ~now:(Clock.ms i) in
    Txn_manager.commit mgr t ~now:(Clock.ms i + Clock.us 1)
  done;
  let tb = reader.Txn.tid in
  let lo = tb - 1 and hi = tb + 5 in
  let sound = Driver.create ~config:(config ()) mgr in
  let broken = Driver.create ~config:(config ~zone_widen_sabotage:1 ()) mgr in
  check_bool "sound rule keeps the pinned interval" false (State.interval_dead sound ~lo ~hi);
  check_bool "sabotaged rule prunes it" true (State.interval_dead broken ~lo ~hi)

(* -------------------------------------------------------------------- *)
(* Crash/abort matrix (§3.5) *)

let post_crash_checks driver =
  no_violations "post-crash emptiness" (Invariant.check_post_crash driver);
  no_violations "post-crash catalogue" (Invariant.check_all driver);
  check_int "space empty" 0 (Driver.space_bytes driver);
  check_int "chains empty" 0 (Driver.max_chain_length driver)

let test_crash_with_buffered_versions () =
  let _, driver, _llt = pinned_setup () in
  check_bool "versions buffered" true (Driver.space_bytes driver > 0);
  Driver.crash_restart driver;
  post_crash_checks driver;
  check_bool "buffered losses accounted as lost" true
    (Prune_stats.lost (Driver.stats driver) > 0)

let test_crash_between_sweep_and_cut () =
  let _, driver, _llt = pinned_setup ~vbuffer_bytes:100 () in
  ignore (Driver.sweep driver ~now:(Clock.ms 60));
  check_bool "hardened segments exist" true
    (Version_store.live_bytes (Driver.store driver) > 0);
  (* Crash in the window after the sweep hardened segments but before
     vCutter ran over them. *)
  Driver.crash_restart driver;
  post_crash_checks driver

let test_crash_mid_segment_flush () =
  Failpoint.with_scope @@ fun () ->
  let mgr, driver, _llt = pinned_setup ~vbuffer_bytes:100 () in
  ignore (Driver.sweep driver ~now:(Clock.ms 60));
  (* More relocations refill the buffer, then the flush path fails: the
     sweep leaves sealed segments stranded in the buffer while earlier
     ones are already hardened — the mid-flush crash state. *)
  let slot = Siro.create ~rid:99 ~bytes:100 ~payload:0 ~vs:0 ~vs_time:0 in
  for i = 0 to 5 do
    ignore (committed_update mgr driver slot ~now:(Clock.ms (70 + i)) ~payload:i)
  done;
  Failpoint.arm_fail_n "vsorter.flush" 1;
  let r = Driver.sweep driver ~now:(Clock.ms 80) in
  check_int "flush blocked by failpoint" 0 r.Vsorter.segments_flushed;
  check_bool "failpoint consulted" true (Failpoint.fail_count "vsorter.flush" >= 1);
  no_violations "consistent despite failed flush" (Invariant.check_all driver);
  Driver.crash_restart driver;
  post_crash_checks driver

let test_crash_mid_cut () =
  let mgr, driver, llt = pinned_setup ~vbuffer_bytes:100 () in
  ignore (Driver.sweep driver ~now:(Clock.ms 60));
  Txn_manager.commit mgr llt ~now:(Clock.ms 90);
  (* Everything is dead now; cut at most one segment so the crash lands
     between two vCutter steps with the store half-collected. *)
  let r = Driver.vcutter_step driver ~now:(Clock.ms 100) ~max_segments:1 in
  check_bool "one segment cut" true (r.Vcutter.segments_cut >= 1);
  no_violations "consistent mid-cut" (Invariant.check_all driver);
  Driver.crash_restart driver;
  post_crash_checks driver

let test_abort_leaves_llb_untouched () =
  let _, driver, _llt = pinned_setup () in
  let space = Driver.space_bytes driver in
  let chain = Driver.max_chain_length driver in
  Driver.abort_cleanup driver;
  check_int "space unchanged" space (Driver.space_bytes driver);
  check_int "chains unchanged" chain (Driver.max_chain_length driver);
  no_violations "catalogue clean after abort" (Invariant.check_all driver)

let test_wal_failpoint_counts_errors () =
  Failpoint.with_scope @@ fun () ->
  let wal = Wal.create () in
  Failpoint.arm_fail_n "wal.append" 2;
  Wal.append wal ~bytes:10 ();
  Wal.append wal ~bytes:10 ();
  Wal.append wal ~bytes:10 ();
  check_int "two rejected" 2 (Wal.errors wal);
  check_int "one durable" 10 (Wal.total_bytes wal)

(* -------------------------------------------------------------------- *)
(* prunable_by_views conservative w.r.t. the commit-time oracle *)

let history_gen =
  QCheck.Gen.(
    let* writer_count = 2 -- 12 in
    let* reader_starts = list_size (0 -- 6) (0 -- 100) in
    return (writer_count, reader_starts))

let build_history (writer_count, reader_starts) =
  let mgr = Txn_manager.create () in
  let version_bounds = ref [] in
  let next_reader = ref (List.sort compare reader_starts) in
  for i = 0 to writer_count - 1 do
    (match !next_reader with
    | r :: rest when r mod writer_count <= i ->
        ignore (Txn_manager.begin_txn mgr ~now:i);
        next_reader := rest
    | _ :: _ | [] -> ());
    let w = Txn_manager.begin_txn mgr ~now:i in
    version_bounds := w.Txn.tid :: !version_bounds;
    Txn_manager.commit mgr w ~now:i
  done;
  (mgr, List.rev !version_bounds)

let qcheck_prunable_by_views_conservative =
  QCheck.Test.make ~name:"prunable_by_views conservative w.r.t. Definition 3.3" ~count:500
    (QCheck.make history_gen)
    (fun case ->
      let mgr, bounds = build_history case in
      let views = Txn_manager.live_views mgr in
      let log = Txn_manager.commit_log mgr in
      let live = Txn_manager.live_begin_ts mgr in
      let rec intervals = function
        | a :: (b :: _ as rest) -> (a, b) :: intervals rest
        | [ _ ] | [] -> []
      in
      List.for_all
        (fun (vs, ve) ->
          match Prune.commit_interval log ~vs ~ve with
          | None -> true
          | Some (cs, ce) ->
              (* Whatever the read-view rule prunes, the oracle agrees is
                 dead. *)
              (not (Prune.prunable_by_views ~views ~vs ~ve))
              || Prune.dead_spec ~live ~vs:cs ~ve:ce)
        (intervals bounds))

(* -------------------------------------------------------------------- *)
(* End-to-end through the runner *)

let tiny_schema =
  { Schema.default with Schema.tables = 2; rows_per_table = 50; record_bytes = 64 }

let chaos_cfg ?(seed = 11) ?(duration_s = 0.4) () =
  {
    Exp_config.default with
    Exp_config.name = "fault-test";
    seed;
    duration_s;
    workers = 4;
    reads_per_txn = 2;
    writes_per_txn = 1;
    schema = tiny_schema;
    llts = [ { Exp_config.start_s = 0.05; duration_s = duration_s /. 2.; count = 1 } ];
    sample_period_s = 0.1;
    gc_period = Clock.ms 5;
  }

let vdriver schema = Siro_engine.create ~flavor:`Pg schema

let comparable (r : Runner.result) =
  ( r.Runner.commits,
    r.Runner.conflicts,
    r.Runner.llt_reads,
    r.Runner.throughput,
    r.Runner.version_space,
    r.Runner.redo,
    r.Runner.max_chain,
    r.Runner.chain_cdf,
    Histogram.cdf r.Runner.latency_us )

let test_noop_plan_bit_identical () =
  let cfg = chaos_cfg () in
  let bare = Runner.run ~engine:vdriver cfg in
  let noop = Runner.run ~engine:vdriver ~faults:Fault_plan.none cfg in
  check_bool "no-op plan leaves the run bit-identical" true (comparable bare = comparable noop);
  check_bool "sweeps ran" true (Fault_report.checks_run noop.Runner.faults > 0);
  check_bool "no violations" true (Fault_report.ok noop.Runner.faults)

let qcheck_random_plans_hold_invariants =
  QCheck.Test.make ~name:"randomized fault plans never break the invariants" ~count:4
    QCheck.(make Gen.(0 -- 10_000))
    (fun seed ->
      let plan = Fault_plan.random ~seed () in
      let r = Runner.run ~engine:vdriver ~faults:plan (chaos_cfg ~seed ()) in
      Fault_report.checks_run r.Runner.faults > 0 && Fault_report.ok r.Runner.faults)

let test_sabotaged_rule_is_caught () =
  (* The acceptance test: widening every zone by one must be caught
     within one short campaign, either by the continuous prune audit or
     as an engine failure when a reader hits the missing version. *)
  let engine schema =
    Siro_engine.create
      ~driver_config:{ State.default_config with State.zone_widen_sabotage = 1 }
      ~flavor:`Pg schema
  in
  let caught =
    List.exists
      (fun seed ->
        let cfg =
          {
            (chaos_cfg ~seed ~duration_s:1.0 ()) with
            Exp_config.workers = 8;
            schema = { Schema.default with Schema.tables = 4; rows_per_table = 250 };
            phases = [ { Exp_config.at_s = 0.; pattern = Access.Zipfian 0.9 } ];
            llts =
              [
                { Exp_config.start_s = 0.2; duration_s = 0.5; count = 2 };
                { Exp_config.start_s = 0.5; duration_s = 0.25; count = 1 };
              ];
          }
        in
        let r = Runner.run ~engine ~faults:Fault_plan.none cfg in
        not (Fault_report.ok r.Runner.faults))
      [ 422710743; 7; 42 ]
  in
  check_bool "sabotage caught" true caught

let test_report_caps_details () =
  let rep = Fault_report.create ~max_details:2 () in
  for i = 1 to 5 do
    Fault_report.record rep ~at:(Clock.ms i) ~invariant:"x" ~detail:(string_of_int i)
  done;
  check_int "stored capped" 2 (List.length (Fault_report.violations rep));
  check_int "count exact" 5 (Fault_report.violation_count rep);
  check_bool "not ok" true (not (Fault_report.ok rep))

let suites =
  [
    ( "fault.plan",
      [
        Alcotest.test_case "none is empty" `Quick test_plan_none_empty;
        Alcotest.test_case "events ordered, fire once" `Quick test_plan_events_ordered;
        Alcotest.test_case "seeded determinism" `Quick test_plan_deterministic;
        Alcotest.test_case "poisson rate" `Quick test_plan_poisson_rate;
        Alcotest.test_case "negative rate raises" `Quick test_plan_negative_rate_raises;
      ] );
    ( "fault.invariants",
      [
        Alcotest.test_case "healthy driver" `Quick test_invariants_hold_healthy;
        Alcotest.test_case "after pressure" `Quick test_invariants_hold_after_pressure;
        Alcotest.test_case "sabotage flips the decision" `Quick test_sabotage_changes_decision;
        QCheck_alcotest.to_alcotest qcheck_prunable_by_views_conservative;
      ] );
    ( "fault.matrix",
      [
        Alcotest.test_case "crash with buffered versions" `Quick test_crash_with_buffered_versions;
        Alcotest.test_case "crash between sweep and cut" `Quick test_crash_between_sweep_and_cut;
        Alcotest.test_case "crash mid segment flush" `Quick test_crash_mid_segment_flush;
        Alcotest.test_case "crash mid cut" `Quick test_crash_mid_cut;
        Alcotest.test_case "abort leaves LLB untouched" `Quick test_abort_leaves_llb_untouched;
        Alcotest.test_case "wal failpoint" `Quick test_wal_failpoint_counts_errors;
      ] );
    ( "fault.runner",
      [
        Alcotest.test_case "no-op plan bit-identical" `Quick test_noop_plan_bit_identical;
        QCheck_alcotest.to_alcotest qcheck_random_plans_hold_invariants;
        Alcotest.test_case "sabotaged rule caught" `Slow test_sabotaged_rule_is_caught;
        Alcotest.test_case "report caps details" `Quick test_report_caps_details;
      ] );
  ]
