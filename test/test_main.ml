let () =
  Alcotest.run "vdriver-repro"
    (List.concat [ Test_util.suites; Test_sim.suites; Test_txn.suites; Test_deadzone.suites; Test_version.suites; Test_storage.suites; Test_core.suites; Test_core2.suites; Test_engines.suites; Test_workload.suites; Test_fault.suites; Test_governor.suites; Test_model.suites; Test_more.suites; Test_obs.suites; Test_recovery.suites; Test_liveness.suites; Test_differential.suites; Test_hammer.suites; Test_shard.suites; Test_gc.suites; Test_net.suites; Test_replica.suites ])
