(* Sharded-deployment tests: keyspace routing, the stale-epoch
   soundness property (a broadcast dead-zone snapshot only ever
   under-prunes), the presumed-abort 2PC record choreography,
   crash-at-every-2PC-step recovery with the cross-shard atomicity
   oracle, in-doubt state across fuzzy checkpoints, the
   skip-coordinator-decision sabotage (caught with and without a
   crash), shard-foreign frame refusal, and campaign-level
   reproducibility plus the Sim-vs-Domains digest. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let small_schema =
  { Schema.default with Schema.tables = 2; rows_per_table = 100; record_bytes = 64 }

let mk_group ?(shards = 2) () = Shard_group.create ~shards small_schema

let no_violations label vs =
  Alcotest.(check (list string))
    label []
    (List.map
       (fun { Invariant.invariant; detail } -> invariant ^ ": " ^ detail)
       vs)

(* -------------------------------------------------------------------- *)
(* Routing *)

let test_rid_mapping () =
  let g = mk_group ~shards:4 () in
  let records = Schema.records small_schema in
  let seen = Hashtbl.create records in
  for rid = 0 to records - 1 do
    let sid = Shard_group.shard_of g ~rid in
    let local = Shard_group.local_rid g ~rid in
    check_int "roundtrip" rid (Shard_group.global_rid g ~sid ~local);
    check_bool "shard in range" true (sid >= 0 && sid < 4);
    check_bool "local in range" true
      (local >= 0 && local < Shard_group.local_records ~shards:4 ~records ~sid);
    let key = (sid, local) in
    check_bool "injective" false (Hashtbl.mem seen key);
    Hashtbl.replace seen key ()
  done;
  check_int "total" records (Hashtbl.length seen)

let test_router_lands_on_shard () =
  let router =
    Shard_router.create ~shards:4 small_schema Shard_router.Uniform_shards
  in
  let rng = Rng.create 42 in
  for _ = 1 to 500 do
    let sid = Rng.int rng 4 in
    let rid = Shard_router.sample_on router rng ~sid in
    check_int "sample_on honors shard" sid (rid mod 4);
    check_bool "valid rid" true (rid < Schema.records small_schema)
  done

let test_router_hot_shard_skew () =
  let router =
    Shard_router.create ~shards:4 small_schema
      (Shard_router.Hot_shard { shard = 2; pct = 80 })
  in
  let rng = Rng.create 7 in
  let hits = Array.make 4 0 in
  let n = 4000 in
  for _ = 1 to n do
    let rid = Shard_router.sample router rng in
    hits.(rid mod 4) <- hits.(rid mod 4) + 1
  done;
  check_bool "hot shard dominates" true (hits.(2) > (2 * n) / 3);
  for s = 0 to 3 do
    check_bool "every shard sees traffic" true (hits.(s) > 0)
  done

(* -------------------------------------------------------------------- *)
(* Satellite: stale-epoch soundness. A zone snapshot broadcast at
   oracle time [c] can cover only intervals with [hi < c]; any later
   transaction begins at or after [c]; survivors are a subset of the
   snapshot's live set. So an interval the stale snapshot covers is
   still covered by (and dead against) every later live state. *)

let stale_epoch_case_gen =
  QCheck.Gen.(
    let* c = int_range 20 120 in
    let* l0 = list_size (int_range 0 12) (int_range 1 (c - 1)) in
    let l0 = List.sort_uniq compare l0 in
    (* survivors: a random subset of the broadcast-time live set *)
    let* keep = list_repeat (List.length l0) bool in
    let survivors = List.filteri (fun i _ -> List.nth keep i) l0 in
    let* gap = int_range 1 40 in
    let c' = c + gap in
    (* newcomers draw begin timestamps at or after the broadcast *)
    let* news = list_size (int_range 0 8) (int_range c (c' - 1)) in
    let live' = List.sort_uniq compare (survivors @ news) in
    let* lo = int_range 0 (c - 1) in
    let* hi = int_range lo (c - 1) in
    QCheck.Gen.return (c, l0, live', c', lo, hi))

let prop_stale_epoch_under_prunes =
  QCheck.Test.make ~name:"stale epoch broadcast never kills a reachable version"
    ~count:2000 (QCheck.make stale_epoch_case_gen)
    (fun (c, l0, live', c', lo, hi) ->
      let stale = Zone_set.make ~live:l0 ~now_ts:c in
      if not (Zone_set.covers stale ~lo ~hi) then true
      else begin
        (* Dead per Definition 3.3 against the *later* global state. *)
        let fresh = Zone_set.make ~live:live' ~now_ts:c' in
        Zone_set.covers fresh ~lo ~hi
        && (lo >= hi || Prune.dead_spec ~live:live' ~vs:lo ~ve:hi)
      end)

(* -------------------------------------------------------------------- *)
(* 2PC record choreography *)

let kinds wal =
  List.filter_map
    (fun (_, frame) ->
      match Wal_record.decode frame with
      | Ok r -> Some (Wal_record.kind_name r.Wal_record.payload)
      | Error _ -> None)
    (Wal.frames wal)

let cross_commit g ~now =
  let txn, t = Shard_group.begin_txn g ~now in
  let t =
    match Shard_group.write g txn ~rid:0 ~payload:11 ~now:t with
    | Engine.Committed_path t -> t
    | Engine.Conflict _ -> Alcotest.fail "unexpected conflict"
  in
  let t =
    match Shard_group.write g txn ~rid:1 ~payload:22 ~now:t with
    | Engine.Committed_path t -> t
    | Engine.Conflict _ -> Alcotest.fail "unexpected conflict"
  in
  (txn, Shard_group.commit g txn ~now:t)

let test_2pc_happy_path_records () =
  let g = mk_group () in
  let txn, _ = cross_commit g ~now:(Clock.ms 1) in
  check_int "one cross commit" 1 (Shard_group.cross_commits g);
  check_int "eight micro-steps" 8 (Shard_group.two_pc_steps g);
  let coord_kinds = kinds (Shard_group.shards g).(0).Shard.wal in
  let part_kinds = kinds (Shard_group.shards g).(1).Shard.wal in
  let count k l = List.length (List.filter (( = ) k) l) in
  check_int "coordinator prepare" 1 (count "2pc-prepare" coord_kinds);
  check_int "coordinator decision" 1 (count "2pc-commit" coord_kinds);
  check_int "coordinator acks" 2 (count "2pc-ack" coord_kinds);
  check_int "coordinator forget" 1 (count "2pc-forget" coord_kinds);
  check_int "coordinator local outcome" 1 (count "txn-commit" coord_kinds);
  check_int "participant prepare" 1 (count "2pc-prepare" part_kinds);
  check_int "participant local outcome" 1 (count "txn-commit" part_kinds);
  check_int "participant holds no decision" 0 (count "2pc-commit" part_kinds);
  (* The decision precedes every participant apply in the coordinator's
     log order. *)
  let rec index k i = function
    | [] -> -1
    | x :: rest -> if x = k then i else index k (i + 1) rest
  in
  check_bool "decision before local apply" true
    (index "2pc-commit" 0 coord_kinds < index "txn-commit" 0 coord_kinds);
  no_violations "honest 2PC run"
    (Invariant.check_cross_shard_atomicity (Shard_group.wals g));
  ignore txn

let test_single_shard_commit_skips_2pc () =
  let g = mk_group () in
  let txn, t = Shard_group.begin_txn g ~now:(Clock.ms 1) in
  let t =
    match Shard_group.write g txn ~rid:0 ~payload:5 ~now:t with
    | Engine.Committed_path t -> t
    | Engine.Conflict _ -> Alcotest.fail "unexpected conflict"
  in
  ignore (Shard_group.commit g txn ~now:t);
  check_int "no 2pc steps" 0 (Shard_group.two_pc_steps g);
  check_int "single commit" 1 (Shard_group.single_commits g);
  check_int "no prepare frames" 0
    (List.length (List.filter (( = ) "2pc-prepare") (kinds (Shard_group.shards g).(0).Shard.wal)))

let test_cross_abort_presumed () =
  let g = mk_group () in
  let txn, t = Shard_group.begin_txn g ~now:(Clock.ms 1) in
  let t =
    match Shard_group.write g txn ~rid:0 ~payload:5 ~now:t with
    | Engine.Committed_path t -> t
    | Engine.Conflict _ -> Alcotest.fail "unexpected conflict"
  in
  let t =
    match Shard_group.write g txn ~rid:1 ~payload:6 ~now:t with
    | Engine.Committed_path t -> t
    | Engine.Conflict _ -> Alcotest.fail "unexpected conflict"
  in
  ignore (Shard_group.abort g txn ~now:t);
  let coord_kinds = kinds (Shard_group.shards g).(0).Shard.wal in
  check_bool "informational coord abort" true (List.mem "2pc-abort" coord_kinds);
  check_bool "no decision record" true (not (List.mem "2pc-commit" coord_kinds));
  no_violations "aborted cross txn is consistent"
    (Invariant.check_cross_shard_atomicity (Shard_group.wals g))

(* -------------------------------------------------------------------- *)
(* Crash at every 2PC step. With two participants the sequence has 8
   durable micro-steps: Prepared x2, Decided, (Applied, Acked) x2,
   Forgotten. Dying right after each must leave a state recovery
   resolves to the same outcome on every shard — commit iff the
   decision was durable (step >= 3). *)

exception Boom

let test_crash_at_step s () =
  let g = mk_group () in
  let tid = ref (-1) in
  Shard_group.set_on_step g
    (Some
       (fun n st ->
         (match st with
         | Shard_group.Prepared { tid = t; _ } -> tid := t
         | _ -> ());
         if n = s then raise Boom));
  (try
     ignore (cross_commit g ~now:(Clock.ms 1));
     Alcotest.failf "step %d never fired" s
   with Boom -> ());
  Shard_group.set_on_step g None;
  Shard_group.crash_all g;
  let infos = Shard_group.restart_all g ~now:(Clock.ms 2) in
  check_int "both shards restarted" 2 (List.length infos);
  Array.iter
    (fun (sh : Shard.t) ->
      no_violations
        (Printf.sprintf "post-recovery, shard %d, crash step %d" sh.Shard.sid s)
        (Invariant.check_post_recovery sh.Shard.driver))
    (Shard_group.shards g);
  no_violations
    (Printf.sprintf "cross-shard atomicity, crash step %d" s)
    (Invariant.check_cross_shard_atomicity
       ~clog:(Txn_manager.commit_log (Shard_group.mgr g))
       (Shard_group.wals g));
  (* The outcome is determined by decision durability alone. *)
  let coord_wal = (Shard_group.shards g).(0).Shard.wal in
  let exp = Wal_recovery.expect (Wal_recovery.analyze coord_wal) in
  let decided = exp.Wal_recovery.decisions <> [] in
  check_bool "decision durable iff past the commit point" (s >= 3) decided;
  (* Both shards' resolved outcomes agree with the decision. *)
  let resolve ~tid:t ~coord:_ = List.assoc_opt t exp.Wal_recovery.decisions in
  List.iter
    (fun (sid, wal) ->
      let e = Wal_recovery.expect ~resolve (Wal_recovery.analyze wal) in
      check_bool
        (Printf.sprintf "shard %d outcome matches decision (step %d)" sid s)
        decided
        (List.mem_assoc !tid e.Wal_recovery.committed))
    (Shard_group.wals g)

let test_crash_at_every_step () =
  for s = 1 to 8 do
    test_crash_at_step s ()
  done

(* -------------------------------------------------------------------- *)
(* In-doubt state across fuzzy checkpoints *)

let checkpoint_all g ~now =
  Array.iter
    (fun (sh : Shard.t) ->
      match sh.Shard.engine.Engine.checkpoint with
      | Some ckpt -> ckpt ~now
      | None -> Alcotest.fail "shard not durable")
    (Shard_group.shards g)

(* Crash with prepares durable, a checkpoint taken while prepared, and
   no decision: recovery presumed-aborts on every shard. *)
let test_checkpoint_preserves_indoubt () =
  let g = mk_group () in
  Shard_group.set_on_step g
    (Some
       (fun n _ ->
         if n = 2 then begin
           (* Both participants prepared, nobody decided: checkpoint
              now, so the in-doubt window must survive through the
              snapshot, then die. *)
           checkpoint_all g ~now:(Clock.ms 5);
           raise Boom
         end));
  (try ignore (cross_commit g ~now:(Clock.ms 1)) with Boom -> ());
  Shard_group.set_on_step g None;
  Shard_group.crash_all g;
  ignore (Shard_group.restart_all g ~now:(Clock.ms 6));
  Array.iter
    (fun (sh : Shard.t) ->
      no_violations
        (Printf.sprintf "ckpt-indoubt post-recovery shard %d" sh.Shard.sid)
        (Invariant.check_post_recovery sh.Shard.driver))
    (Shard_group.shards g);
  no_violations "ckpt-indoubt atomicity"
    (Invariant.check_cross_shard_atomicity
       ~clog:(Txn_manager.commit_log (Shard_group.mgr g))
       (Shard_group.wals g))

(* Crash with the decision durable and a checkpoint taken after it:
   the decision must survive checkpointing (in the decisions window)
   and both in-doubt participants must resolve to commit. *)
let test_checkpoint_preserves_decision () =
  let g = mk_group () in
  Shard_group.set_on_step g
    (Some
       (fun n _ ->
         if n = 3 then begin
           checkpoint_all g ~now:(Clock.ms 5);
           raise Boom
         end));
  (try ignore (cross_commit g ~now:(Clock.ms 1)) with Boom -> ());
  Shard_group.set_on_step g None;
  Shard_group.crash_all g;
  ignore (Shard_group.restart_all g ~now:(Clock.ms 6));
  no_violations "ckpt-decision atomicity"
    (Invariant.check_cross_shard_atomicity
       ~clog:(Txn_manager.commit_log (Shard_group.mgr g))
       (Shard_group.wals g));
  let exp =
    Wal_recovery.expect (Wal_recovery.analyze (Shard_group.shards g).(0).Shard.wal)
  in
  check_bool "decision survived the checkpoint" true (exp.Wal_recovery.decisions <> [])

let test_checkpoint_indoubt_json_roundtrip () =
  let ck =
    {
      Checkpoint.at = Clock.ms 3;
      oracle_next = 17;
      live = [ 5 ];
      committed = [ (3, 4) ];
      aborted = [];
      rows = [];
      pending = [];
      segments = [];
      next_seg_id = 9;
      prepared = [ (5, 0); (6, 1) ];
      decisions = [ (7, 42) ];
    }
  in
  match Checkpoint.of_json (Checkpoint.to_json ck) with
  | Ok ck' ->
      check_bool "prepared window" true (ck'.Checkpoint.prepared = ck.Checkpoint.prepared);
      check_bool "decision window" true (ck'.Checkpoint.decisions = ck.Checkpoint.decisions)
  | Error e -> Alcotest.failf "roundtrip: %s" e

(* -------------------------------------------------------------------- *)
(* Sabotage: the coordinator never forces its decision *)

let test_sabotage_caught_statically () =
  let g = mk_group () in
  Shard_group.set_skip_coord_decision g true;
  ignore (cross_commit g ~now:(Clock.ms 1));
  let vs = Invariant.check_cross_shard_atomicity (Shard_group.wals g) in
  check_bool "decision-missing violations" true
    (List.exists (fun v -> v.Invariant.invariant = "2pc-decision-missing") vs)

let test_sabotage_caught_after_crash () =
  let g = mk_group () in
  Shard_group.set_skip_coord_decision g true;
  (* Die after the first participant applied its commit: shard 0 holds
     a committed transaction, shard 1 presumed-aborts it. *)
  Shard_group.set_on_step g (Some (fun n _ -> if n = 4 then raise Boom));
  (try ignore (cross_commit g ~now:(Clock.ms 1)) with Boom -> ());
  Shard_group.set_on_step g None;
  Shard_group.crash_all g;
  ignore (Shard_group.restart_all g ~now:(Clock.ms 2));
  let vs =
    Invariant.check_cross_shard_atomicity
      ~clog:(Txn_manager.commit_log (Shard_group.mgr g))
      (Shard_group.wals g)
  in
  check_bool "atomicity violation caught" true
    (List.exists
       (fun v ->
         v.Invariant.invariant = "cross-shard-atomicity"
         || v.Invariant.invariant = "2pc-decision-missing")
       vs)

(* -------------------------------------------------------------------- *)
(* Shard logs are disjoint LSN namespaces *)

let test_foreign_frame_ends_prefix () =
  let g = mk_group () in
  ignore (cross_commit g ~now:(Clock.ms 1));
  let wal1 = (Shard_group.shards g).(1).Shard.wal in
  let before = (Wal_recovery.analyze wal1).Wal_recovery.survivors in
  (* A frame tagged for shard 0 — valid CRC, wrong namespace. *)
  let foreign =
    Wal_record.encode
      {
        Wal_record.lsn = Wal.next_lsn wal1;
        at = Clock.ms 2;
        shard = 0;
        payload = Wal_record.Txn_commit { tid = 999; cts = 1000 };
      }
  in
  ignore (Wal.inject_raw wal1 foreign);
  let a = Wal_recovery.analyze wal1 in
  check_int "foreign frame not trusted" before a.Wal_recovery.survivors;
  check_bool "tail dropped" true (a.Wal_recovery.dropped >= 1)

(* -------------------------------------------------------------------- *)
(* Campaign level *)

let campaign_cfg ?(sabotage = false) () =
  let base =
    {
      Exp_config.default with
      Exp_config.name = "shard-campaign";
      seed = 11;
      duration_s = 0.4;
      workers = 4;
      reads_per_txn = 2;
      writes_per_txn = 2;
      schema = small_schema;
      llts = [ { Exp_config.start_s = 0.05; duration_s = 0.2; count = 2 } ];
      gc_period = Clock.ms 5;
      sample_period_s = 0.05;
      ckpt_period_s = 0.1;
    }
  in
  {
    (Shard_runner.default ~shards:2 base) with
    Shard_runner.cross_pct = 50;
    crash_points = [ 400 ];
    crash_steps = [ 12; 40 ];
    torn_tail = true;
    skip_coord_decision = sabotage;
    check_period = Clock.ms 20;
  }

let test_campaign_honest_and_reproducible () =
  let r1 = Shard_runner.run (campaign_cfg ()) in
  let r2 = Shard_runner.run (campaign_cfg ()) in
  check_int "campaign is honest" 0 (Fault_report.violation_count r1.Shard_runner.report);
  check_bool "crashes happened" true (r1.Shard_runner.crashes >= 2);
  check_bool "2pc traffic happened" true (r1.Shard_runner.cross_commits > 0);
  check_bool "byte-reproducible digest" true
    (r1.Shard_runner.digest = r2.Shard_runner.digest);
  check_int "same crashes" r1.Shard_runner.crashes r2.Shard_runner.crashes;
  check_int "same 2pc steps" r1.Shard_runner.two_pc_steps r2.Shard_runner.two_pc_steps

let test_campaign_sabotage_caught () =
  let r = Shard_runner.run (campaign_cfg ~sabotage:true ()) in
  check_bool "sabotage produces violations" true
    (Fault_report.violation_count r.Shard_runner.report > 0)

let test_sim_vs_domains_digest () =
  let base =
    {
      Exp_config.default with
      Exp_config.name = "shard-digest";
      seed = 5;
      duration_s = 0.2;
      workers = 4;
      reads_per_txn = 2;
      writes_per_txn = 2;
      schema = small_schema;
      llts = [ { Exp_config.start_s = 0.02; duration_s = 0.1; count = 1 } ];
      gc_period = Clock.ms 5;
      sample_period_s = 0.05;
      ckpt_period_s = 0.;
    }
  in
  let cfg = { (Shard_runner.default ~shards:2 base) with Shard_runner.cross_pct = 50 } in
  let sim = Shard_runner.run ~mode:Shard_runner.Sim cfg in
  let dom = Shard_runner.run ~mode:(Shard_runner.Domains { domains = 2 }) cfg in
  check_int "sim honest" 0 sim.Shard_runner.digest.Shard_runner.d_violations;
  check_int "domains honest" 0 dom.Shard_runner.digest.Shard_runner.d_violations;
  Alcotest.(check (list string))
    "digests agree" []
    (Shard_runner.digest_diff sim.Shard_runner.digest dom.Shard_runner.digest)

let suites =
  [
    ( "shard-routing",
      [
        Alcotest.test_case "rid mapping is a bijection" `Quick test_rid_mapping;
        Alcotest.test_case "sample_on lands on the shard" `Quick test_router_lands_on_shard;
        Alcotest.test_case "hot-shard scenario skews" `Quick test_router_hot_shard_skew;
      ] );
    ( "shard-epoch",
      [ QCheck_alcotest.to_alcotest prop_stale_epoch_under_prunes ] );
    ( "shard-2pc",
      [
        Alcotest.test_case "happy-path record choreography" `Quick test_2pc_happy_path_records;
        Alcotest.test_case "single-shard commit skips 2PC" `Quick
          test_single_shard_commit_skips_2pc;
        Alcotest.test_case "cross-shard abort is presumed" `Quick test_cross_abort_presumed;
        Alcotest.test_case "crash at every 2PC step" `Quick test_crash_at_every_step;
        Alcotest.test_case "checkpoint preserves in-doubt window" `Quick
          test_checkpoint_preserves_indoubt;
        Alcotest.test_case "checkpoint preserves decision window" `Quick
          test_checkpoint_preserves_decision;
        Alcotest.test_case "checkpoint in-doubt JSON roundtrip" `Quick
          test_checkpoint_indoubt_json_roundtrip;
        Alcotest.test_case "skipped decision caught statically" `Quick
          test_sabotage_caught_statically;
        Alcotest.test_case "skipped decision caught after crash" `Quick
          test_sabotage_caught_after_crash;
        Alcotest.test_case "foreign-shard frame ends the prefix" `Quick
          test_foreign_frame_ends_prefix;
      ] );
    ( "shard-campaign",
      [
        Alcotest.test_case "honest campaign, byte-reproducible" `Slow
          test_campaign_honest_and_reproducible;
        Alcotest.test_case "sabotaged campaign caught" `Slow test_campaign_sabotage_caught;
        Alcotest.test_case "sim-vs-domains digest" `Slow test_sim_vs_domains_digest;
      ] );
  ]
