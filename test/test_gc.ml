(* Pluggable GC backend tests (DESIGN §4h).

   Four layers:

   - plumbing: backend-name parsing is total and stable, installation
     is visible through [Gc_backend.installed_name] / the run digest;
   - the pinned regression: the default (vcutter) backend installed
     behind [Driver.maintain] reproduces the seed path's exact pinned
     counters — the refactor is byte-identical, not merely equivalent;
   - qcheck properties: Definition-3.3 prune soundness holds for all
     three backends under random plans x histories (the continuous
     audit plus the periodic catalogue sweep must stay silent), and the
     bounded backend's post-step dead-resident checkpoint never exceeds
     K under adversarial LLT fleets;
   - sabotage: each backend's defect knob produces invariant
     violations on a workload its honest twin survives cleanly.

   Store traffic matters: dead-zone pruning keeps the vBuffer so small
   that a default-config run never hardens a segment, which would leave
   the cutter-side reclaim paths untested. The store-heavy configs here
   shrink the vBuffer so every backend's harden/reclaim machinery runs
   (the same lever `chaos --vbuffer` pulls). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let pg_vdriver schema = Siro_engine.create ~flavor:`Pg schema

(* A 64 KiB vBuffer (one segment) forces steady hardened-store
   traffic: versions pinned by a live LLT are flushed instead of aging
   in the buffer, and die in the store when the LLT ends. *)
let store_driver_config = { State.default_config with State.vbuffer_bytes = 64 * 1024 }

let pg_vdriver_store schema =
  Siro_engine.create ~driver_config:store_driver_config ~flavor:`Pg schema

let wrap ?(sabotage = false) ?bounded_max_dead kind engine =
  let cfg =
    { Gc_backend.default_config with Gc_backend.kind; sabotage }
  in
  let cfg =
    match bounded_max_dead with
    | None -> cfg
    | Some k -> { cfg with Gc_backend.bounded_max_dead = k }
  in
  Gc_backend.wrap_engine cfg engine

(* -------------------------------------------------------------------- *)
(* Plumbing *)

let test_kind_parsing () =
  List.iter
    (fun k ->
      match Gc_backend.kind_of_string (Gc_backend.kind_name k) with
      | Ok k' -> check_bool ("roundtrip " ^ Gc_backend.kind_name k) true (k = k')
      | Error (`Msg m) -> Alcotest.fail m)
    Gc_backend.all_kinds;
  check_int "three backends" 3 (List.length Gc_backend.all_kinds);
  check_int "vcutter id" 0 (Gc_backend.kind_id Gc_backend.Vcutter);
  check_int "range id" 1 (Gc_backend.kind_id Gc_backend.Range);
  check_int "bounded id" 2 (Gc_backend.kind_id Gc_backend.Bounded);
  let contains hay needle =
    let hl = String.length hay and nl = String.length needle in
    let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
    at 0
  in
  match Gc_backend.kind_of_string "nosuch" with
  | Ok _ -> Alcotest.fail "unknown backend name accepted"
  | Error (`Msg m) -> check_bool "error names the offender" true (contains m "nosuch")

let test_install_api () =
  let e = pg_vdriver { Schema.default with Schema.tables = 1; rows_per_table = 10 } in
  match e.Engine.driver with
  | None -> Alcotest.fail "siro engine must expose its driver"
  | Some d ->
      check_str "un-hooked name" "vcutter" (Gc_backend.installed_name d);
      check_bool "un-hooked gauges empty" true (Gc_backend.gauges d = []);
      check_bool "un-hooked frontier absent" true (Gc_backend.frontier d = None);
      Gc_backend.install d { Gc_backend.default_config with Gc_backend.kind = Gc_backend.Range };
      check_str "range installed" "range" (Gc_backend.installed_name d);
      check_bool "range gauges present" true (Gc_backend.gauges d <> []);
      check_bool "frontier present" true (Gc_backend.frontier d <> None);
      Gc_backend.uninstall d;
      check_str "uninstalled" "vcutter" (Gc_backend.installed_name d)

(* -------------------------------------------------------------------- *)
(* The pinned regression: default backend byte-identical post-refactor.
   Same config and constants as test_differential's sim pinning — a
   drift here with the vcutter hook installed (but not in
   test_differential's bare run) means the hook path diverged from the
   seed maintenance pair. *)

let pinned_cfg () =
  {
    Exp_config.default with
    Exp_config.name = "gc-pinned";
    seed = 1234;
    duration_s = 1.0;
    workers = 8;
    schema = { Schema.default with Schema.tables = 4; rows_per_table = 250 };
    phases = [ { Exp_config.at_s = 0.; pattern = Access.Zipfian 0.9 } ];
    llts = [ { Exp_config.start_s = 0.2; duration_s = 0.5; count = 2 } ];
  }

let stats_tuple (r : Runner.result) =
  match r.Runner.driver with
  | None -> Alcotest.fail "vDriver engine must expose its driver"
  | Some d ->
      let s = Driver.stats d in
      ( Prune_stats.relocated s,
        Prune_stats.prune1_total s,
        Prune_stats.prune2_total s,
        Prune_stats.stored_total s )

let test_vcutter_hook_byte_identical () =
  let bare = Runner.run ~engine:pg_vdriver (pinned_cfg ()) in
  let hooked = Runner.run ~engine:(wrap Gc_backend.Vcutter pg_vdriver) (pinned_cfg ()) in
  (* Exact equality against the bare run, field by field... *)
  check_int "commits" bare.Runner.commits hooked.Runner.commits;
  check_int "conflicts" bare.Runner.conflicts hooked.Runner.conflicts;
  check_int "llt_reads" bare.Runner.llt_reads hooked.Runner.llt_reads;
  check_int "peak space" (Runner.peak_space bare) (Runner.peak_space hooked);
  check_int "final space" (Runner.final_space bare) (Runner.final_space hooked);
  check_int "peak chain" (Runner.peak_chain bare) (Runner.peak_chain hooked);
  check_bool "prune stats identical" true (stats_tuple bare = stats_tuple hooked);
  (* ...and against the pinned seed constants, so this test still bites
     if both paths drift together. *)
  check_int "pinned commits" 28700 hooked.Runner.commits;
  check_int "pinned conflicts" 223 hooked.Runner.conflicts;
  check_int "pinned llt_reads" 22263 hooked.Runner.llt_reads;
  check_int "pinned peak space" 141568 (Runner.peak_space hooked);
  let relocated, p1, p2, stored = stats_tuple hooked in
  check_int "pinned relocated" 56177 relocated;
  check_int "pinned prune1" 42312 p1;
  check_int "pinned prune2" 13865 p2;
  check_int "pinned stored" 0 stored

(* -------------------------------------------------------------------- *)
(* Digest identity *)

let small_cfg ?(llts = 1) seed =
  {
    Exp_config.default with
    Exp_config.name = "gc-small";
    seed;
    duration_s = 0.3;
    workers = 4;
    schema = { Schema.default with Schema.tables = 2; rows_per_table = 200; record_bytes = 64 };
    phases = [ { Exp_config.at_s = 0.; pattern = Access.Zipfian 0.9 } ];
    llts =
      (if llts = 0 then []
       else [ { Exp_config.start_s = 0.05; duration_s = 0.15; count = llts } ]);
  }

let test_digest_backend_field () =
  List.iter
    (fun kind ->
      let cfg = small_cfg 7 in
      let r = Runner.run ~engine:(wrap kind pg_vdriver_store) cfg in
      let d = Run_digest.of_result ~mode:"sim" ~domains:1 cfg r in
      check_str
        ("digest names " ^ Gc_backend.kind_name kind)
        (Gc_backend.kind_name kind) d.Run_digest.gc_backend)
    Gc_backend.all_kinds;
  let cfg = small_cfg 7 in
  let bare = Runner.run ~engine:pg_vdriver cfg in
  let d = Run_digest.of_result ~mode:"sim" ~domains:1 cfg bare in
  check_str "un-hooked digest says vcutter" "vcutter" d.Run_digest.gc_backend

(* -------------------------------------------------------------------- *)
(* qcheck: Definition-3.3 soundness for all three backends under random
   plans x histories. The runner arms the continuous prune audit and
   the periodic catalogue sweep (which includes each backend's own
   check); any violation fails the property. *)

type gc_case = {
  g_seed : int;
  g_duration_cs : int;
  g_workers : int;
  g_llts : int;
  g_kind : int;  (* index into all_kinds *)
  g_fault : int option;
}

let gc_case_to_string c =
  Printf.sprintf "{seed=%d; duration=%.2fs; workers=%d; llts=%d; backend=%s; fault=%s}"
    c.g_seed
    (float_of_int c.g_duration_cs /. 100.)
    c.g_workers c.g_llts
    (Gc_backend.kind_name (List.nth Gc_backend.all_kinds c.g_kind))
    (match c.g_fault with None -> "none" | Some s -> string_of_int s)

let gc_case_gen =
  QCheck.Gen.(
    map
      (fun ((g_seed, g_duration_cs, g_workers), (g_llts, g_kind, f)) ->
        { g_seed; g_duration_cs; g_workers; g_llts; g_kind; g_fault = (if f < 150 then None else Some f) })
      (pair
         (triple (int_range 1 1_000_000) (int_range 20 40) (int_range 3 5))
         (triple (int_range 0 2) (int_range 0 2) (int_range 0 599))))

let cfg_of_gc_case c =
  let duration_s = float_of_int c.g_duration_cs /. 100. in
  {
    Exp_config.default with
    Exp_config.name = "gc-qcheck";
    seed = c.g_seed;
    duration_s;
    workers = c.g_workers;
    reads_per_txn = 2;
    writes_per_txn = 1;
    schema = { Schema.default with Schema.tables = 2; rows_per_table = 200; record_bytes = 64 };
    phases = [ { Exp_config.at_s = 0.; pattern = Access.Zipfian 0.9 } ];
    llts =
      (if c.g_llts = 0 then []
       else
         [
           {
             Exp_config.start_s = duration_s /. 4.;
             duration_s = duration_s /. 2.;
             count = c.g_llts;
           };
         ]);
    sample_period_s = 0.1;
    gc_period = Clock.ms 5;
  }

let qcheck_soundness =
  QCheck.Test.make
    ~name:"every backend prune-sound under random plans x histories" ~count:18
    (QCheck.make ~print:gc_case_to_string gc_case_gen)
    (fun c ->
      let kind = List.nth Gc_backend.all_kinds c.g_kind in
      let faults =
        match c.g_fault with
        | None -> Fault_plan.none
        | Some s -> Fault_plan.random ~crashes:false ~seed:s ()
      in
      let r = Runner.run ~engine:(wrap kind pg_vdriver_store) ~faults (cfg_of_gc_case c) in
      match Fault_report.violations r.Runner.faults with
      | [] -> true
      | v :: _ ->
          QCheck.Test.fail_reportf "%d violation(s) on %s, first: [%s] %s"
            (Fault_report.violation_count r.Runner.faults)
            (gc_case_to_string c) v.Fault_report.invariant v.Fault_report.detail)

(* qcheck: the BBF+ bound holds under adversarial LLT fleets — several
   staggered groups whose deaths each dump a storm of dead versions
   into the store at once. The honest collector must keep every
   post-step dead-resident checkpoint within K even when the storm
   exceeds the governor budget. *)

let fleet_to_string (seed, groups) =
  Printf.sprintf "{seed=%d; groups=%s}" seed
    (String.concat ","
       (List.map (fun (s, d, n) -> Printf.sprintf "(%.2f+%.2fs x%d)" s d n) groups))

let fleet_gen =
  QCheck.Gen.(
    pair (int_range 1 1_000_000)
      (list_size (int_range 1 3)
         (triple
            (map (fun i -> float_of_int i /. 100.) (int_range 5 25))
            (map (fun i -> float_of_int i /. 100.) (int_range 10 30))
            (int_range 1 3))))

let qcheck_bounded_bound =
  QCheck.Test.make ~name:"bounded backend holds K under adversarial LLT fleets" ~count:12
    (QCheck.make ~print:fleet_to_string fleet_gen)
    (fun (seed, groups) ->
      let k = 64 in
      let cfg =
        {
          Exp_config.default with
          Exp_config.name = "gc-fleet";
          seed;
          duration_s = 0.6;
          workers = 4;
          schema =
            { Schema.default with Schema.tables = 2; rows_per_table = 200; record_bytes = 64 };
          phases = [ { Exp_config.at_s = 0.; pattern = Access.Zipfian 0.9 } ];
          llts =
            List.map
              (fun (start_s, duration_s, count) -> { Exp_config.start_s; duration_s; count })
              groups;
          sample_period_s = 0.1;
          gc_period = Clock.ms 5;
        }
      in
      let r =
        Runner.run
          ~engine:(wrap ~bounded_max_dead:k Gc_backend.Bounded pg_vdriver_store)
          ~faults:Fault_plan.none cfg
      in
      if Fault_report.violation_count r.Runner.faults <> 0 then
        QCheck.Test.fail_reportf "violations on %s" (fleet_to_string (seed, groups));
      match r.Runner.driver with
      | None -> QCheck.Test.fail_report "driver missing"
      | Some d ->
          let peak =
            match List.assoc_opt "gc.bounded.peak_dead" (Gc_backend.gauges d) with
            | Some v -> v
            | None -> QCheck.Test.fail_report "peak_dead gauge missing"
          in
          if peak > k then
            QCheck.Test.fail_reportf "peak dead-resident %d exceeds K=%d on %s" peak k
              (fleet_to_string (seed, groups))
          else true)

(* -------------------------------------------------------------------- *)
(* Sabotage: each backend's defect produces violations on a workload
   its honest twin survives cleanly (the catalogue catches the defect,
   not the workload). *)

let sabotage_cfg seed =
  {
    Exp_config.default with
    Exp_config.name = "gc-sabotage";
    seed;
    duration_s = 1.0;
    workers = 8;
    schema = { Schema.default with Schema.tables = 4; rows_per_table = 250 };
    phases = [ { Exp_config.at_s = 0.; pattern = Access.Zipfian 0.9 } ];
    (* A *lone* LLT: the range sabotage drops the oldest live reader
       from the subtraction, which only over-reclaims when no second
       reader with the same begin covers the victim versions. *)
    llts = [ { Exp_config.start_s = 0.2; duration_s = 0.4; count = 1 } ];
    gc_period = Clock.ms 5;
  }

let test_sabotage_caught kind expected_invariant () =
  let honest =
    Runner.run ~engine:(wrap kind pg_vdriver_store) ~faults:Fault_plan.none (sabotage_cfg 99)
  in
  check_int
    (Gc_backend.kind_name kind ^ ": honest run clean")
    0
    (Fault_report.violation_count honest.Runner.faults);
  let sabotaged =
    Runner.run
      ~engine:(wrap ~sabotage:true kind pg_vdriver_store)
      ~faults:Fault_plan.none (sabotage_cfg 99)
  in
  let vs = Fault_report.violations sabotaged.Runner.faults in
  check_bool (Gc_backend.kind_name kind ^ ": sabotage caught") true (vs <> []);
  check_bool
    (Gc_backend.kind_name kind ^ ": caught by " ^ expected_invariant)
    true
    (List.exists (fun v -> v.Fault_report.invariant = expected_invariant) vs)

let suites =
  [
    ( "gc-backend",
      [
        Alcotest.test_case "backend names parse and roundtrip" `Quick test_kind_parsing;
        Alcotest.test_case "install / uninstall / gauges / frontier" `Quick test_install_api;
        Alcotest.test_case "vcutter hook byte-identical to seed path" `Slow
          test_vcutter_hook_byte_identical;
        Alcotest.test_case "digest carries the backend name" `Slow test_digest_backend_field;
        QCheck_alcotest.to_alcotest qcheck_soundness;
        QCheck_alcotest.to_alcotest qcheck_bounded_bound;
        Alcotest.test_case "vcutter sabotage caught (cut completeness)" `Slow
          (test_sabotage_caught Gc_backend.Vcutter "gc-backend");
        Alcotest.test_case "range sabotage caught (prune soundness)" `Slow
          (test_sabotage_caught Gc_backend.Range "prune-soundness");
        Alcotest.test_case "bounded sabotage caught (space bound)" `Slow
          (test_sabotage_caught Gc_backend.Bounded "gc-backend");
      ] );
  ]
