(* Race-hygiene hammers: the lock-free Collab protocol and the
   latch-disciplined Llb/Chain structures under real OCaml 5 domains,
   plus exactness hammers for the Atomic counter rewrites
   (Metrics / Prune_stats) that made the aggregation layer domain-safe.

   These tests are about memory-model hygiene, not statistics: every
   assertion is exact (exactly one delete, exact counter totals, chain
   invariants Ok). A TSan variant re-runs the same hammers for
   race-detecting runtimes; on this switch (no TSan instrumentation) it
   is visibly skipped rather than silently green. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Start gate so the racing domains enter their critical sections
   together instead of serializing on spawn latency: [make_gate n]
   returns a spawner whose domains all wait for the n-th arrival. *)
let make_gate n =
  let barrier = Atomic.make 0 in
  fun f ->
    Domain.spawn (fun () ->
        Atomic.incr barrier;
        while Atomic.get barrier < n do
          Domain.cpu_relax ()
        done;
        f ())

(* -------------------------------------------------------------------- *)
(* Collab: sorter vs cutter episodes over a real Chain *)

let mk_version ~vs ~payload =
  Version.make ~rid:0 ~vs ~ve:(vs + 1) ~vs_time:(vs * 1000) ~ve_time:((vs + 1) * 1000)
    ~bytes:100 ~payload

(* One episode: a 3-version chain, the interior node dead; a real
   cutter domain races a real sorter domain for its deletion while the
   sorter also has a newer version to insert. Afterwards the chain must
   be structurally sound, the dead version deleted exactly once, and
   the insertion present — whoever won. *)
let test_collab_chain_episodes () =
  let episodes = 300 in
  Collab.reset_spin_stats ();
  let bad = ref [] in
  for ep = 1 to episodes do
    let chain = Chain.create 0 in
    ignore (Chain.push_newest chain (mk_version ~vs:1 ~payload:1) ~seg_id:0);
    let target = Chain.push_newest chain (mk_version ~vs:3 ~payload:2) ~seg_id:0 in
    ignore (Chain.push_newest chain (mk_version ~vs:5 ~payload:3) ~seg_id:0);
    let c = Collab.create () in
    let deletes = Atomic.make 0 in
    let spawn = make_gate 2 in
    let s_out = ref `Did_both and c_out = ref `Won in
    let d1 =
      spawn (fun () ->
          s_out :=
            Collab.sorter c
              ~delete:(fun () ->
                Atomic.incr deletes;
                Chain.delete_node chain target)
              ~insert:(fun () ->
                ignore (Chain.push_newest chain (mk_version ~vs:7 ~payload:4) ~seg_id:0)))
    in
    let d2 =
      spawn (fun () ->
          c_out :=
            Collab.cutter c
              ~delete:(fun () ->
                Atomic.incr deletes;
                Chain.delete_node chain target)
              ~fixup:(fun () -> ()))
    in
    Domain.join d1;
    Domain.join d2;
    let note fmt = Printf.ksprintf (fun m -> bad := Printf.sprintf "ep %d: %s" ep m :: !bad) fmt in
    (match Chain.check_invariants chain with
    | Ok () -> ()
    | Error e -> note "chain invariants: %s" e);
    if Atomic.get deletes <> 1 then note "dead version deleted %d times" (Atomic.get deletes);
    if not target.Chain.deleted then note "dead version still live";
    if Chain.live_length chain <> 3 then note "live length %d" (Chain.live_length chain);
    (match Chain.head chain with
    | Some n when n.Chain.version.Version.payload = 4 -> ()
    | _ -> note "insertion lost");
    (* The outcome pair must tell one linearizable story: either the
       sorter won and did both tasks, or the cutter won and the sorter
       deferred. *)
    match (!s_out, !c_out) with
    | `Did_both, `Lost | `Inserted_after_cutter, `Won -> ()
    | `Did_both, `Won -> note "both sides claim the win"
    | `Inserted_after_cutter, `Lost -> note "nobody claims the win"
  done;
  check_bool (String.concat "; " !bad) true (!bad = [])

(* -------------------------------------------------------------------- *)
(* Llb / Chain under the engine's latch discipline *)

(* Three domains hammer a shared LLB through one mutex — the same
   discipline the Domains runner applies to the whole engine. The
   structures need not be lock-free; the claim under test is that the
   latch discipline plus the Atomic stats keep them exactly consistent
   under real parallelism. *)
let test_llb_latched_hammer () =
  let llb = Llb.create () in
  let lock = Mutex.create () in
  let ts = Atomic.make 1 in
  let pushes = Atomic.make 0 and deletes = Atomic.make 0 in
  let ndomains = 3 and ops = 4_000 and rids = 16 in
  let worker d () =
    let rng = Rng.create (0xbeef + d) in
    let mine = ref [] in
    for _ = 1 to ops do
      Mutex.lock lock;
      (try
         let rid = Rng.int rng rids in
         let chain = Llb.get_or_create llb ~rid in
         (* Timestamps drawn under the lock stay chain-monotone. *)
         let vs = Atomic.fetch_and_add ts 2 in
         let v =
           Version.make ~rid ~vs ~ve:(vs + 1) ~vs_time:vs ~ve_time:(vs + 1) ~bytes:64
             ~payload:d
         in
         let node = Chain.push_newest chain v ~seg_id:d in
         Atomic.incr pushes;
         mine := (chain, node) :: !mine;
         (* Periodically cut an older version we own — interior cuts
            exercise the hole/Fixup machinery. *)
         (match !mine with
         | _ :: ((_, old) as prev) :: rest when Rng.int rng 4 = 0 ->
             if not old.Chain.deleted then begin
               let chain, old = prev in
               Chain.delete_node chain old;
               Atomic.incr deletes
             end;
             mine := List.hd !mine :: rest
         | _ -> ())
       with exn ->
         Mutex.unlock lock;
         raise exn);
      Mutex.unlock lock
    done
  in
  let spawn = make_gate ndomains in
  let domains = List.init ndomains (fun d -> spawn (worker d)) in
  List.iter Domain.join domains;
  check_int "no version lost or double-counted"
    (Atomic.get pushes - Atomic.get deletes)
    (Llb.total_live_versions llb);
  check_int "every chain created" rids (Llb.chain_count llb);
  Llb.iter llb (fun chain ->
      (match Chain.check_invariants chain with
      | Ok () -> ()
      | Error e -> Alcotest.failf "chain %d: %s" (Chain.rid chain) e);
      check_bool "SIRO hole bound" true (Chain.holes chain <= 1))

(* -------------------------------------------------------------------- *)
(* Atomic counter rewrites: exact totals under contention *)

let test_metrics_counters_exact () =
  let m = Metrics.create () in
  let c = Metrics.counter m "hammer.direct" in
  let ndomains = 4 and iters = 50_000 in
  Metrics.with_registry m (fun () ->
      let spawn = make_gate ndomains in
      let domains =
        List.init ndomains (fun _ ->
            spawn (fun () ->
                for _ = 1 to iters do
                  Metrics.incr c;
                  Metrics.add c 2;
                  Metrics.bump "hammer.scoped"
                done))
      in
      List.iter Domain.join domains);
  check_int "direct counter exact" (ndomains * iters * 3) (Metrics.counter_value c);
  check_int "scoped counter exact" (ndomains * iters)
    (Metrics.counter_value (Metrics.counter m "hammer.scoped"))

let test_prune_stats_exact () =
  let s = Prune_stats.create () in
  let ndomains = 4 and iters = 25_000 in
  let spawn = make_gate ndomains in
  let domains =
    List.init ndomains (fun d ->
        spawn (fun () ->
            let cls = Vclass.of_index (d mod Vclass.count) in
            for _ = 1 to iters do
              Prune_stats.note_relocated s;
              Prune_stats.note_prune1 s cls;
              Prune_stats.note_relocated s;
              Prune_stats.note_prune2 s cls;
              Prune_stats.note_relocated s;
              Prune_stats.note_stored s cls
            done))
  in
  List.iter Domain.join domains;
  check_int "relocated exact" (3 * ndomains * iters) (Prune_stats.relocated s);
  check_int "prune1 exact" (ndomains * iters) (Prune_stats.prune1_total s);
  check_int "prune2 exact" (ndomains * iters) (Prune_stats.prune2_total s);
  check_int "stored exact" (ndomains * iters) (Prune_stats.stored_total s);
  check_int "conservation: nothing in flight" 0 (Prune_stats.in_flight s)

(* -------------------------------------------------------------------- *)
(* TSan variant *)

(* ThreadSanitizer support for the OCaml runtime needs a TSan-enabled
   switch (5.2+, configured with --enable-tsan); this image's 5.1
   runtime has no instrumentation, so the variant announces itself as
   skipped instead of passing vacuously. Set REPRO_TSAN=1 on a TSan
   switch to run the same hammers under the race detector. *)
let test_tsan_variant () =
  match Sys.getenv_opt "REPRO_TSAN" with
  | None -> Alcotest.skip ()
  | Some _ ->
      test_collab_chain_episodes ();
      test_llb_latched_hammer ();
      test_metrics_counters_exact ();
      test_prune_stats_exact ()

let suites =
  [
    ( "hammer",
      [
        Alcotest.test_case "collab episodes over a real chain" `Slow test_collab_chain_episodes;
        Alcotest.test_case "llb consistent under latch discipline" `Slow test_llb_latched_hammer;
        Alcotest.test_case "metrics counters exact under contention" `Slow
          test_metrics_counters_exact;
        Alcotest.test_case "prune stats exact under contention" `Slow test_prune_stats_exact;
        Alcotest.test_case "tsan variant (needs TSan runtime)" `Quick test_tsan_variant;
      ] );
  ]
