(* Observability subsystem tests: deterministic JSON, metrics registry
   semantics, tracer ring behavior, export schemas, and — the property
   the whole design hangs on — that observing a run neither perturbs it
   nor varies between identically-seeded invocations. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* -------------------------------------------------------------------- *)
(* Jsonx *)

let test_jsonx_print () =
  let j =
    Jsonx.Obj
      [
        ("b", Jsonx.Int 2);
        ("a", Jsonx.Arr [ Jsonx.Null; Jsonx.Bool true; Jsonx.Str "x\"y\n" ]);
        ("f", Jsonx.Float 1.5);
        ("g", Jsonx.Float 3.);
      ]
  in
  (* Keys stay in construction order; integral floats keep a decimal
     point so they re-parse as floats. *)
  check_str "stable bytes" {|{"b":2,"a":[null,true,"x\"y\n"],"f":1.5,"g":3.0}|}
    (Jsonx.to_string j)

let test_jsonx_nonfinite () =
  check_str "nan is null" "null" (Jsonx.to_string (Jsonx.Float Float.nan));
  check_str "inf is null" "null" (Jsonx.to_string (Jsonx.Float Float.infinity))

let test_jsonx_roundtrip () =
  let j =
    Jsonx.Obj
      [
        ("counters", Jsonx.Obj [ ("wal.appends", Jsonx.Int 41) ]);
        ("ratio", Jsonx.Float 0.875);
        ("name", Jsonx.Str "vDriver \xe2\x80\x94 trace");
        ("list", Jsonx.Arr [ Jsonx.Int (-3); Jsonx.Float 2.25; Jsonx.Bool false ]);
      ]
  in
  match Jsonx.of_string (Jsonx.to_string j) with
  | Ok j' -> check_str "roundtrip" (Jsonx.to_string j) (Jsonx.to_string j')
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_jsonx_parse_errors () =
  List.iter
    (fun s ->
      match Jsonx.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"\\q\""; "1 2"; "{\"a\" 1}" ]

let test_jsonx_unicode_escape () =
  match Jsonx.of_string {|"\u00e9\t"|} with
  | Ok (Jsonx.Str s) -> check_str "utf8 decoded" "\xc3\xa9\t" s
  | Ok _ -> Alcotest.fail "expected string"
  | Error e -> Alcotest.failf "parse failed: %s" e

(* -------------------------------------------------------------------- *)
(* Metrics *)

let test_metrics_registry () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "a.count" in
  Metrics.incr c;
  Metrics.add c 4;
  check_int "counter" 5 (Metrics.counter_value c);
  check_bool "get-or-create shares state" true
    (Metrics.counter_value (Metrics.counter reg "a.count") = 5);
  let g = Metrics.gauge reg "a.gauge" in
  Metrics.set g 2.5;
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics: \"a.gauge\" already registered as a gauge, requested as a counter")
    (fun () -> ignore (Metrics.counter reg "a.gauge"));
  let names = List.map fst (Metrics.snapshot reg) in
  check_bool "snapshot sorted" true (names = List.sort compare names)

let test_metrics_scope () =
  check_bool "no registry outside scope" true (Metrics.in_scope () = None);
  (* Out-of-scope helpers must be silent no-ops. *)
  Metrics.bump "ghost";
  Metrics.observe "ghost.h" 3;
  Metrics.set_gauge "ghost.g" 1.;
  let reg = Metrics.create () in
  Metrics.with_registry reg (fun () ->
      Metrics.bump "live";
      Metrics.bump_by "live" 2;
      Metrics.observe "live.h" 9);
  check_bool "scope restored" true (Metrics.in_scope () = None);
  match Metrics.snapshot reg with
  | [ ("live", Metrics.Counter 3); ("live.h", Metrics.Histo h) ] ->
      check_int "histogram recorded" 1 (Histogram.total h)
  | other -> Alcotest.failf "unexpected snapshot (%d entries)" (List.length other)

let test_metrics_json () =
  let reg = Metrics.create () in
  Metrics.with_registry reg (fun () ->
      Metrics.bump "z.count";
      Metrics.set_gauge "a.gauge" 1.5;
      List.iter (Metrics.observe "m.h") [ 1; 2; 3; 4 ]);
  check_str "flat sorted json"
    {|{"a.gauge":1.5,"m.h":{"count":4,"p50":2,"p90":4,"p99":4,"max":4},"z.count":1}|}
    (Jsonx.to_string (Metrics.to_json reg))

(* -------------------------------------------------------------------- *)
(* Trace ring *)

let test_trace_ring_wrap () =
  let tr = Trace.create ~capacity:4 () in
  Trace.with_tracer tr (fun () ->
      for i = 1 to 7 do
        Trace.instant Trace.Wal (string_of_int i) ~at:i []
      done);
  check_int "length capped" 4 (Trace.length tr);
  check_int "emitted counts all" 7 (Trace.emitted tr);
  check_int "dropped = emitted - kept" 3 (Trace.dropped tr);
  (* Drop-oldest: the survivors are the end of the run. *)
  check_bool "keeps newest" true
    (List.map (fun e -> e.Trace.name) (Trace.events tr) = [ "4"; "5"; "6"; "7" ])

let test_trace_off_is_noop () =
  check_bool "off" true (not (Trace.on ()));
  Trace.span Trace.Engine "ghost" ~start:0 ~dur:1 [];
  Trace.instant Trace.Engine "ghost" ~at:0 [];
  let tr = Trace.create () in
  check_int "nothing recorded" 0 (Trace.length tr)

let test_trace_chrome_export () =
  let tr = Trace.create () in
  Trace.with_tracer tr (fun () ->
      Trace.span Trace.Scheduler "w0" ~start:1000 ~dur:500 [ ("n", Trace.I 1) ];
      Trace.instant Trace.Governor "escalate" ~at:2000 [ ("to", Trace.S "pressured") ];
      Trace.count Trace.Governor "space_bytes" ~at:2000 4096;
      Trace.span Trace.Wal "neg" ~start:100 ~dur:(-5) []);
  let json = Trace.to_chrome_json tr in
  check_bool "schema-valid, all tracks named" true (Obs_schema.check_trace ~min_tracks:3 json = []);
  (* Spot-check the grammar: a span made it through as "X" with µs
     timestamps, and the negative duration was clamped. *)
  match json with
  | Jsonx.Obj (("traceEvents", Jsonx.Arr events) :: _) ->
      let phases =
        List.filter_map
          (function
            | Jsonx.Obj fields -> (
                match List.assoc_opt "ph" fields with Some (Jsonx.Str p) -> Some p | _ -> None)
            | _ -> None)
          events
      in
      check_bool "has X i C M" true
        (List.for_all (fun p -> List.mem p phases) [ "X"; "i"; "C"; "M" ]);
      let durs =
        List.filter_map
          (function
            | Jsonx.Obj fields when List.assoc_opt "ph" fields = Some (Jsonx.Str "X") ->
                List.assoc_opt "dur" fields
            | _ -> None)
          events
      in
      check_bool "negative dur clamped" true
        (List.for_all (function Jsonx.Float d -> d >= 0. | _ -> false) durs)
  | _ -> Alcotest.fail "expected traceEvents object"

(* -------------------------------------------------------------------- *)
(* Schema checker *)

let test_schema_rejects () =
  let bad_trace = Jsonx.Obj [ ("traceEvents", Jsonx.Int 3) ] in
  check_bool "non-array traceEvents" true (Obs_schema.check_trace bad_trace <> []);
  let no_span =
    Jsonx.Obj
      [
        ( "traceEvents",
          Jsonx.Arr
            [
              Jsonx.Obj
                [
                  ("name", Jsonx.Str "i0");
                  ("ph", Jsonx.Str "i");
                  ("pid", Jsonx.Int 1);
                  ("tid", Jsonx.Int 1);
                  ("ts", Jsonx.Float 0.);
                ];
            ] );
      ]
  in
  check_bool "missing span flagged" true (Obs_schema.check_trace no_span <> []);
  check_bool "span not required" true (Obs_schema.check_trace ~require_span:false no_span = []);
  check_bool "track floor" true (Obs_schema.check_trace ~require_span:false ~min_tracks:2 no_span <> []);
  let m = Jsonx.Obj [ ("x", Jsonx.Int 1) ] in
  check_bool "missing required gauges" true (Obs_schema.check_metrics m <> []);
  check_bool "no required is fine" true (Obs_schema.check_metrics ~required:[] m = []);
  check_bool "non-object rejected" true (Obs_schema.check_metrics ~required:[] (Jsonx.Int 1) <> [])

(* -------------------------------------------------------------------- *)
(* End to end: observation is deterministic and non-perturbing *)

let obs_cfg =
  {
    Exp_config.default with
    Exp_config.name = "obs-test";
    duration_s = 0.4;
    workers = 4;
    reads_per_txn = 2;
    writes_per_txn = 1;
    schema = { Schema.default with Schema.tables = 2; rows_per_table = 50; record_bytes = 64 };
    llts = [ { Exp_config.start_s = 0.1; duration_s = 0.2; count = 1 } ];
    sample_period_s = 0.1;
    gc_period = Clock.ms 5;
  }

let engine schema = Siro_engine.create ~flavor:`Pg schema

let observed_run () =
  let reg = Metrics.create () in
  let tr = Trace.create () in
  let r =
    Metrics.with_registry reg (fun () ->
        Trace.with_tracer tr (fun () -> Runner.run ~engine obs_cfg))
  in
  (r, Jsonx.to_string (Trace.to_chrome_json tr), Jsonx.to_string (Metrics.to_json reg))

let test_traced_run_reproducible () =
  let _, trace1, metrics1 = observed_run () in
  let _, trace2, metrics2 = observed_run () in
  check_str "trace bytes identical" trace1 trace2;
  check_str "metrics bytes identical" metrics1 metrics2

let test_observation_does_not_perturb () =
  let plain = Runner.run ~engine obs_cfg in
  let observed, _, _ = observed_run () in
  check_int "commits" plain.Runner.commits observed.Runner.commits;
  check_int "conflicts" plain.Runner.conflicts observed.Runner.conflicts;
  check_int "llt reads" plain.Runner.llt_reads observed.Runner.llt_reads;
  check_int "retries" plain.Runner.retries observed.Runner.retries;
  check_bool "throughput series" true (plain.Runner.throughput = observed.Runner.throughput);
  check_bool "space series" true
    (plain.Runner.version_space = observed.Runner.version_space);
  check_bool "chain cdf" true (plain.Runner.chain_cdf = observed.Runner.chain_cdf);
  check_bool "latency histogram" true
    (Histogram.cdf plain.Runner.latency_us = Histogram.cdf observed.Runner.latency_us)

let test_traced_run_valid_and_covered () =
  let _, trace, metrics = observed_run () in
  (match Jsonx.of_string trace with
  | Ok json ->
      (* The acceptance floor: spans from at least 6 distinct subsystems. *)
      check_bool "trace valid with 6 tracks" true (Obs_schema.check_trace ~min_tracks:6 json = [])
  | Error e -> Alcotest.failf "trace unparseable: %s" e);
  match Jsonx.of_string metrics with
  | Ok json -> check_bool "metrics valid + headline gauges" true (Obs_schema.check_metrics json = [])
  | Error e -> Alcotest.failf "metrics unparseable: %s" e

let suites =
  [
    ( "obs.jsonx",
      [
        Alcotest.test_case "deterministic print" `Quick test_jsonx_print;
        Alcotest.test_case "non-finite floats" `Quick test_jsonx_nonfinite;
        Alcotest.test_case "roundtrip" `Quick test_jsonx_roundtrip;
        Alcotest.test_case "parse errors" `Quick test_jsonx_parse_errors;
        Alcotest.test_case "unicode escapes" `Quick test_jsonx_unicode_escape;
      ] );
    ( "obs.metrics",
      [
        Alcotest.test_case "registry + kind clash" `Quick test_metrics_registry;
        Alcotest.test_case "scoped recording" `Quick test_metrics_scope;
        Alcotest.test_case "json snapshot" `Quick test_metrics_json;
      ] );
    ( "obs.trace",
      [
        Alcotest.test_case "ring wrap drops oldest" `Quick test_trace_ring_wrap;
        Alcotest.test_case "no-op when off" `Quick test_trace_off_is_noop;
        Alcotest.test_case "chrome export" `Quick test_trace_chrome_export;
      ] );
    ("obs.schema", [ Alcotest.test_case "rejections" `Quick test_schema_rejects ]);
    ( "obs.run",
      [
        Alcotest.test_case "traced run reproducible" `Quick test_traced_run_reproducible;
        Alcotest.test_case "observation non-perturbing" `Quick test_observation_does_not_perturb;
        Alcotest.test_case "exports valid, 6+ tracks" `Quick test_traced_run_valid_and_covered;
      ] );
  ]
