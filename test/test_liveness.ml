(* Liveness watchdog tests (DESIGN §4e): the escalation ladder's unit
   behaviour and honesty replay, lease expiry and the no-false-kill
   journal, gated liveness draws in Fault_plan (classic streams must be
   preserved bit-for-bit), end-to-end zombie containment and the
   bounded-reclamation-lag guarantee through the runner — honest runs
   stay inside the bound, the [--no-watchdog] sabotage provably does
   not — the watchdog-off bit-identity guarantee, and a real
   multi-domain collaboration stress with the cutter delayed inside
   exactly the window the [Collab_delay] fault stretches. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -------------------------------------------------------------------- *)
(* Watchdog ladder units *)

let wcfg =
  {
    Watchdog.default_config with
    Watchdog.check_period = Clock.ms 5;
    stall_timeout = Clock.ms 25;
    escalation_cooldown = Clock.ms 10;
  }

(* Stub actions with call counters; [zombie_count] injects the health
   signal. *)
let counting_actions ?(zombie_count = fun ~now:_ -> 0) () =
  let nudges = ref 0 and restarts = ref 0 and syncs = ref 0 and sheds = ref 0 in
  let actions =
    {
      Watchdog.nudge = (fun ~now:_ -> incr nudges);
      restart_cleaners = (fun ~now:_ -> incr restarts);
      sync_reclaim = (fun ~now:_ -> incr syncs);
      shed_zombies = (fun ~max ~now:_ -> incr sheds; min max 1);
      zombie_count;
    }
  in
  (actions, nudges, restarts, syncs, sheds)

let test_ladder_escalates_and_recovers () =
  let w = Watchdog.create ~config:wcfg () in
  let actions, nudges, restarts, syncs, sheds = counting_actions () in
  Watchdog.register w "cleaner" ~now:0;
  Watchdog.beat w "cleaner" ~now:0;
  (* Within the timeout: healthy, no action. *)
  Watchdog.poll w ~now:(Clock.ms 20) ~actions;
  check_bool "healthy below timeout" true (Watchdog.rung w = Watchdog.Healthy);
  check_int "no nudge yet" 0 !nudges;
  (* Past the timeout: one rung per cooldown dwell, immediate from
     Healthy, and the actions are cumulative while unhealthy. *)
  Watchdog.poll w ~now:(Clock.ms 30) ~actions;
  check_bool "first unhealthy poll escalates to Nudge" true (Watchdog.rung w = Watchdog.Nudge);
  check_int "nudged" 1 !nudges;
  Watchdog.poll w ~now:(Clock.ms 35) ~actions;
  check_bool "cooldown dwell holds the rung" true (Watchdog.rung w = Watchdog.Nudge);
  check_int "nudge repeats while unhealthy" 2 !nudges;
  Watchdog.poll w ~now:(Clock.ms 45) ~actions;
  check_bool "second rung" true (Watchdog.rung w = Watchdog.Restart);
  check_int "restart ran" 1 !restarts;
  check_int "nudge still runs below it" 3 !nudges;
  Watchdog.poll w ~now:(Clock.ms 60) ~actions;
  check_bool "third rung" true (Watchdog.rung w = Watchdog.Sync_reclaim);
  check_int "sync reclaim ran" 1 !syncs;
  Watchdog.poll w ~now:(Clock.ms 75) ~actions;
  check_bool "top rung" true (Watchdog.rung w = Watchdog.Shed);
  check_int "shed ran" 1 !sheds;
  check_int "four escalations" 4 (Watchdog.escalations w);
  check_bool "stall magnitude observed" true (Watchdog.max_stall_observed w >= Clock.ms 50);
  (* The cleaner comes back: one rung down per healthy poll, and no
     action runs on the way down. *)
  Watchdog.beat w "cleaner" ~now:(Clock.ms 76);
  let before = (!nudges, !restarts, !syncs, !sheds) in
  let rec descend t =
    if Watchdog.rung w <> Watchdog.Healthy then begin
      Watchdog.poll w ~now:t ~actions;
      descend (t + Clock.ms 5)
    end
  in
  descend (Clock.ms 80);
  check_bool "healthy polls run no action" true (before = (!nudges, !restarts, !syncs, !sheds));
  check_int "ladder log replays clean" 0 (List.length (Watchdog.check_ladder w))

let test_zombies_alone_drive_the_ladder () =
  let w = Watchdog.create ~config:wcfg () in
  let actions, _, _, _, _ = counting_actions ~zombie_count:(fun ~now:_ -> 1) () in
  Watchdog.register w "cleaner" ~now:0;
  let rec climb t =
    Watchdog.beat w "cleaner" ~now:t;
    (* never stalled *)
    Watchdog.poll w ~now:t ~actions;
    if Watchdog.rung w <> Watchdog.Shed && t < Clock.ms 200 then climb (t + Clock.ms 5)
  in
  climb (Clock.ms 5);
  check_bool "zombies escalate to Shed without any stall" true (Watchdog.rung w = Watchdog.Shed);
  check_bool "cancels counted" true (Watchdog.zombie_cancels w > 0);
  check_int "ladder log replays clean" 0 (List.length (Watchdog.check_ladder w))

let test_disabled_watchdog_observes_but_never_acts () =
  let w = Watchdog.create ~config:{ wcfg with Watchdog.enabled = false } () in
  let actions, nudges, restarts, syncs, sheds = counting_actions () in
  Watchdog.register w "cleaner" ~now:0;
  List.iter (fun i -> Watchdog.poll w ~now:(Clock.ms (30 + (5 * i))) ~actions) (List.init 10 Fun.id);
  check_bool "rung pinned at Healthy" true (Watchdog.rung w = Watchdog.Healthy);
  check_int "no escalations" 0 (Watchdog.escalations w);
  check_bool "no action ever ran" true ((0, 0, 0, 0) = (!nudges, !restarts, !syncs, !sheds));
  check_bool "stall still observed" true (Watchdog.max_stall_observed w > Clock.ms 25)

let test_unwatched_source_never_stalls () =
  let w = Watchdog.create ~config:wcfg () in
  Watchdog.register ~watch:false w "checkpointer" ~now:0;
  Watchdog.beat w "checkpointer" ~now:0;
  check_bool "counter still recorded" true (Watchdog.progress w "checkpointer" = 1);
  check_bool "exempt from stall detection" true
    (Watchdog.stalled_sources w ~now:(Clock.seconds 10.) = []);
  Watchdog.beat w "late-registrant" ~now:0;
  check_bool "beat auto-registers watched" true
    (Watchdog.stalled_sources w ~now:(Clock.seconds 10.) = [ "late-registrant" ])

let test_config_validation_and_bound () =
  (match Watchdog.create ~config:{ wcfg with Watchdog.check_period = 0 } () with
  | _ -> Alcotest.fail "zero check period must raise"
  | exception Invalid_argument _ -> ());
  let bound c = Watchdog.lag_bound c ~gc_period:(Clock.ms 10) in
  check_bool "bound positive" true (bound wcfg > 0);
  check_bool "bound grows with the stall timeout" true
    (bound { wcfg with Watchdog.stall_timeout = Clock.ms 250 } > bound wcfg);
  check_bool "bound grows with the cooldown" true
    (bound { wcfg with Watchdog.escalation_cooldown = Clock.ms 100 } > bound wcfg)

(* -------------------------------------------------------------------- *)
(* Leases and no-false-kill *)

let lcfg = { Lease.short_lease = Clock.ms 10; llt_lease = Clock.ms 100 }

let test_lease_expiry_and_progress () =
  let l = Lease.create ~config:lcfg () in
  Lease.grant l ~tid:1 ~kind:Lease.Short ~now:0;
  Lease.grant l ~tid:2 ~kind:Lease.Llt ~now:0;
  check_bool "nothing expired early" true (Lease.expired l ~now:(Clock.ms 5) = []);
  check_bool "short expires first" true (Lease.expired l ~now:(Clock.ms 11) = [ 1 ]);
  Lease.note_progress l ~tid:1 ~now:(Clock.ms 11);
  check_bool "progress resets the clock" true (Lease.expired l ~now:(Clock.ms 20) = []);
  check_bool "both expire eventually, ascending" true
    (Lease.expired l ~now:(Clock.ms 150) = [ 1; 2 ]);
  Lease.release l ~tid:1;
  check_bool "release removes" true (Lease.expired l ~now:(Clock.ms 150) = [ 2 ]);
  check_int "one live lease" 1 (Lease.live l);
  check_int "two grants" 2 (Lease.grants l);
  check_bool "llt lease visible" true (Lease.lease_of l ~tid:2 = Some (Clock.ms 100));
  check_bool "idle visible" true (Lease.idle l ~tid:2 ~now:(Clock.ms 150) = Some (Clock.ms 150))

let test_no_false_kill_journal () =
  let l = Lease.create ~config:lcfg () in
  (* An honest cancel: idle well past the lease. *)
  Lease.grant l ~tid:7 ~kind:Lease.Short ~now:0;
  Lease.note_cancel l ~tid:7 ~now:(Clock.ms 50);
  check_int "honest cancel passes" 0 (List.length (Invariant.check_no_false_kill l));
  (* A false kill: the victim made progress within its lease. *)
  Lease.grant l ~tid:8 ~kind:Lease.Short ~now:(Clock.ms 60);
  Lease.note_progress l ~tid:8 ~now:(Clock.ms 64);
  Lease.note_cancel l ~tid:8 ~now:(Clock.ms 67);
  (match Invariant.check_no_false_kill l with
  | [ v ] ->
      check_bool "named invariant" true (v.Invariant.invariant = "no-false-kill");
      check_bool "journalled" true (Lease.cancel_count l = 2)
  | vs -> Alcotest.failf "expected exactly one violation, got %d" (List.length vs))

(* -------------------------------------------------------------------- *)
(* Fault-plan gating: liveness draws must not perturb classic streams *)

let drain_grid plan =
  List.concat_map
    (fun i ->
      let now = Clock.ms (10 * i) in
      List.map (fun a -> (now, a)) (Fault_plan.poll plan ~now))
    (List.init 400 Fun.id)

let is_liveness = function
  | Fault_plan.Cleaner_stall | Fault_plan.Llt_zombie | Fault_plan.Collab_delay -> true
  | _ -> false

let test_liveness_draws_gated_and_stream_preserving () =
  let classic = drain_grid (Fault_plan.random ~seed:31 ()) in
  check_bool "no liveness events without the flags" true
    (List.for_all (fun (_, a) -> not (is_liveness a)) classic);
  let armed () = Fault_plan.random ~stalls:true ~zombies:true ~seed:31 () in
  let full = drain_grid (armed ()) in
  check_bool "deterministic per seed" true (full = drain_grid (armed ()));
  check_bool "classic stream preserved bit-for-bit" true
    (List.filter (fun (_, a) -> not (is_liveness a)) full = classic);
  let count p = List.length (List.filter (fun (_, a) -> p a) full) in
  check_bool "stalls drawn" true (count (( = ) Fault_plan.Cleaner_stall) > 0);
  check_bool "collab delays drawn" true (count (( = ) Fault_plan.Collab_delay) > 0);
  check_bool "zombies drawn" true (count (( = ) Fault_plan.Llt_zombie) > 0)

(* -------------------------------------------------------------------- *)
(* End-to-end through the runner *)

let tiny_schema =
  { Schema.default with Schema.tables = 2; rows_per_table = 100; record_bytes = 64 }

let liveness_cfg ?(seed = 11) ?(duration_s = 1.5) () =
  {
    Exp_config.default with
    Exp_config.name = "liveness-test";
    seed;
    duration_s;
    workers = 4;
    reads_per_txn = 2;
    writes_per_txn = 1;
    schema = tiny_schema;
    llts = [ { Exp_config.start_s = 0.1; duration_s = duration_s -. 0.3; count = 1 } ];
    sample_period_s = 0.25;
    gc_period = Clock.ms 5;
  }

let vdriver schema = Siro_engine.create ~flavor:`Pg schema

let run_wdog = { wcfg with Watchdog.stall_timeout = Clock.ms 20 }

let test_zombie_cancelled_end_to_end () =
  let plan = Fault_plan.create ~seed:3 ~llt_zombie_rate:3. ~check_period:(Clock.ms 20) () in
  let r = Runner.run ~engine:vdriver ~faults:plan ~watchdog:run_wdog (liveness_cfg ()) in
  check_bool "zombie LLT was cancelled" true (r.Runner.zombie_cancels > 0);
  check_bool "ladder climbed to do it" true (r.Runner.watchdog_escalations > 0);
  check_bool "no violation (incl. no-false-kill)" true (Fault_report.ok r.Runner.faults)

let test_stall_contained_honest_vs_sabotage () =
  let plan () = Fault_plan.create ~seed:17 ~cleaner_stall_rate:2. ~check_period:(Clock.ms 20) () in
  let cfg = liveness_cfg ~seed:13 () in
  let honest = Runner.run ~engine:vdriver ~faults:(plan ()) ~watchdog:run_wdog cfg in
  let bound = Watchdog.lag_bound run_wdog ~gc_period:cfg.Exp_config.gc_period in
  check_bool "honest run inside the bound" true (honest.Runner.max_reclamation_lag <= bound);
  check_bool "honest run has no violations" true (Fault_report.ok honest.Runner.faults);
  check_bool "watchdog did real work" true (honest.Runner.watchdog_escalations > 0);
  (* Same faults, ladder disabled (--no-watchdog): the reclamation-lag
     invariant must catch the unbounded lag. *)
  let sab =
    Runner.run ~engine:vdriver ~faults:(plan ())
      ~watchdog:{ run_wdog with Watchdog.enabled = false }
      cfg
  in
  check_bool "sabotage violates reclamation-lag" true
    (Fault_report.violation_count sab.Runner.faults > 0);
  check_bool "sabotage lag exceeds the bound" true (sab.Runner.max_reclamation_lag > bound)

let comparable (r : Runner.result) =
  ( r.Runner.commits,
    r.Runner.conflicts,
    r.Runner.llt_reads,
    r.Runner.throughput,
    r.Runner.version_space,
    r.Runner.redo,
    r.Runner.max_chain,
    r.Runner.chain_cdf,
    Histogram.cdf r.Runner.latency_us )

let test_watchdog_off_bit_identity () =
  (* Liveness injections only bite in armed runs: a plan carrying only
     stall/zombie/delay events leaves an unarmed run bit-identical to a
     bare one, and the liveness result fields stay at their zeros. *)
  let cfg = liveness_cfg ~seed:29 ~duration_s:0.6 () in
  let bare = Runner.run ~engine:vdriver cfg in
  let unarmed =
    Runner.run ~engine:vdriver
      ~faults:
        (Fault_plan.create ~seed:29 ~cleaner_stall_rate:3. ~llt_zombie_rate:2.
           ~collab_delay_rate:3. ())
      cfg
  in
  check_bool "unarmed liveness faults leave the run bit-identical" true
    (comparable bare = comparable unarmed);
  check_int "no cancels" 0 unarmed.Runner.zombie_cancels;
  check_int "no escalations" 0 unarmed.Runner.watchdog_escalations;
  check_int "no lag observed" 0 unarmed.Runner.max_reclamation_lag;
  check_int "empty lag histogram" 0 (Histogram.total unarmed.Runner.reclamation_lag_us);
  (* And arming with identical runs is reproducible. *)
  let armed () =
    Runner.run ~engine:vdriver
      ~faults:(Fault_plan.random ~stalls:true ~zombies:true ~seed:29 ())
      ~watchdog:run_wdog cfg
  in
  let a = armed () and b = armed () in
  check_bool "armed runs reproducible" true (comparable a = comparable b);
  check_int "same escalations" a.Runner.watchdog_escalations b.Runner.watchdog_escalations

(* -------------------------------------------------------------------- *)
(* Multi-domain collaboration stress under Collab_delay *)

let busy n = for _ = 1 to n do Domain.cpu_relax () done

(* One contended episode: the cutter (own domain) races the sorter,
   dawdling [delay] iterations inside the install→completion window —
   exactly what the Collab_delay fault stretches. The sorter gets a
   tiny spin budget so long waits exercise the yield fallback. *)
let episode ~delay ~head_start =
  let c = Collab.create () in
  let deleted = Atomic.make 0 and inserted = Atomic.make 0 in
  let cutter_domain =
    Domain.spawn (fun () ->
        Collab.cutter c ~delay:(fun () -> busy delay)
          ~delete:(fun () -> Atomic.incr deleted)
          ~fixup:(fun () -> ()))
  in
  busy head_start;
  let outcome =
    Collab.sorter ~spin_budget:32 c
      ~delete:(fun () -> Atomic.incr deleted)
      ~insert:(fun () -> Atomic.incr inserted)
  in
  let cutter_outcome = Domain.join cutter_domain in
  check_int "dead version deleted exactly once" 1 (Atomic.get deleted);
  check_int "insertion happened exactly once" 1 (Atomic.get inserted);
  (match (outcome, cutter_outcome) with
  | `Did_both, `Lost | `Inserted_after_cutter, `Won -> ()
  | `Did_both, `Won -> Alcotest.fail "both sides claim the deletion"
  | `Inserted_after_cutter, `Lost -> Alcotest.fail "nobody claims the deletion");
  outcome

let qcheck_collab_delay_stress =
  QCheck.Test.make ~name:"multi-domain collab: exactly-once under cutter delay x contention"
    ~count:6
    QCheck.(pair (make Gen.(0 -- 3000)) (make Gen.(0 -- 500)))
    (fun (delay, head_start) ->
      (* A loss does not imply a wait (the cutter may have finished
         before the sorter's test-and-set), so the racy stress asserts
         only the exactly-once protocol; the guaranteed-wait case is
         pinned deterministically below. *)
      for _ = 1 to 40 do
        ignore (episode ~delay ~head_start)
      done;
      true)

let test_collab_yield_fallback_under_long_delay () =
  (* Deterministic handshake: the cutter holds its critical window open
     until the sorter has provably exhausted its spin budget and
     yielded — no timing luck involved. *)
  Collab.reset_spin_stats ();
  let c = Collab.create () in
  let deleted = Atomic.make 0 and inserted = Atomic.make 0 in
  let installed = Atomic.make false and sorter_yielding = Atomic.make false in
  let cutter_domain =
    Domain.spawn (fun () ->
        Collab.cutter c
          ~delay:(fun () ->
            Atomic.set installed true;
            while not (Atomic.get sorter_yielding) do Domain.cpu_relax () done)
          ~delete:(fun () -> Atomic.incr deleted)
          ~fixup:(fun () -> ()))
  in
  (* Wait until the cutter is inside install -> completion, so the
     sorter is guaranteed to lose the race and spin. *)
  while not (Atomic.get installed) do Domain.cpu_relax () done;
  let outcome =
    Collab.sorter ~spin_budget:32
      ~yield:(fun () -> Atomic.set sorter_yielding true)
      c
      ~delete:(fun () -> Atomic.incr deleted)
      ~insert:(fun () -> Atomic.incr inserted)
  in
  check_bool "cutter won" true (Domain.join cutter_domain = `Won);
  check_bool "sorter inserted after the cutter" true (outcome = `Inserted_after_cutter);
  check_int "deleted exactly once" 1 (Atomic.get deleted);
  check_int "inserted exactly once" 1 (Atomic.get inserted);
  check_bool "spin gauge advanced" true (Collab.max_spin_observed () > 0);
  check_bool "budget exhaustion fell back to yield" true (Collab.yields_observed () > 0)

let suites =
  [
    ( "liveness.watchdog",
      [
        Alcotest.test_case "ladder escalates and recovers" `Quick test_ladder_escalates_and_recovers;
        Alcotest.test_case "zombies alone drive the ladder" `Quick test_zombies_alone_drive_the_ladder;
        Alcotest.test_case "disabled observes, never acts" `Quick
          test_disabled_watchdog_observes_but_never_acts;
        Alcotest.test_case "unwatched source never stalls" `Quick test_unwatched_source_never_stalls;
        Alcotest.test_case "config validation and lag bound" `Quick test_config_validation_and_bound;
      ] );
    ( "liveness.lease",
      [
        Alcotest.test_case "expiry, progress, release" `Quick test_lease_expiry_and_progress;
        Alcotest.test_case "no-false-kill journal" `Quick test_no_false_kill_journal;
      ] );
    ( "liveness.plan",
      [
        Alcotest.test_case "gated draws preserve classic streams" `Quick
          test_liveness_draws_gated_and_stream_preserving;
      ] );
    ( "liveness.runner",
      [
        Alcotest.test_case "zombie LLT cancelled end-to-end" `Slow test_zombie_cancelled_end_to_end;
        Alcotest.test_case "stall contained; sabotage caught" `Slow
          test_stall_contained_honest_vs_sabotage;
        Alcotest.test_case "watchdog-off bit-identity" `Slow test_watchdog_off_bit_identity;
      ] );
    ( "liveness.collab",
      [
        QCheck_alcotest.to_alcotest qcheck_collab_delay_stress;
        Alcotest.test_case "yield fallback under long delay" `Quick
          test_collab_yield_fallback_under_long_delay;
      ] );
  ]
