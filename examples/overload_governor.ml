(* Overload protection: the banking scenario from banking_llt.ml, but
   with the version space capped by a hard quota. The auditor's report
   pins versions; once the space climbs the governor's health ladder
   (Normal -> Pressured -> Emergency -> Shedding) the report is evicted
   with "snapshot too old", the segments it pinned are reclaimed, and
   the tellers it was starving — some of them forcibly aborted along the
   way — complete on backoff-and-retry.

   Run with: dune exec examples/overload_governor.exe *)

let quota = 1024 * 1024

let scenario ~governed =
  let cfg =
    {
      Exp_config.default with
      Exp_config.name = (if governed then "governed" else "ungoverned");
      duration_s = 10.;
      workers = 8;
      reads_per_txn = 2;
      writes_per_txn = 2 (* debit one account, credit another *);
      schema =
        { Schema.default with Schema.tables = 4; rows_per_table = 1000; record_bytes = 256 };
      phases = [ { Exp_config.at_s = 0.; pattern = Access.Zipfian 0.9 } ];
      (* The compliance report: one repeatable-read scan for 8 seconds —
         it pins a version of every account it has seen. *)
      llts = [ { Exp_config.start_s = 1.; duration_s = 8.; count = 1 } ];
    }
  in
  let engine schema =
    let driver_config =
      if governed then
        {
          State.default_config with
          State.governor =
            { (Governor.governed ~quota_bytes:quota) with Governor.shed_grace = Clock.ms 250 };
        }
      else State.default_config
    in
    Siro_engine.create ~driver_config ~flavor:`Mysql schema
  in
  Runner.run ~engine cfg

let () =
  print_endline "== Banking ledger under a 1 MiB version-space quota ==";
  print_endline "8 tellers transfer money continuously; at t=1s an auditor";
  print_endline "opens a repeatable-read report. Ungoverned, the report pins";
  print_endline "versions without limit; governed, the version-space ladder";
  print_endline "sheds it once the quota comes under threat.\n";
  let ungoverned = scenario ~governed:false in
  let governed = scenario ~governed:true in
  let row name (r : Runner.result) =
    let before = Runner.avg_throughput r ~between:(0.5, 1.5) in
    let during = Runner.avg_throughput r ~between:(3., 8.) in
    [
      name;
      Printf.sprintf "%.0f" before;
      Printf.sprintf "%.0f" during;
      Table.fmt_bytes (Runner.peak_space r);
      string_of_int r.Runner.sheds;
      string_of_int r.Runner.retries;
      string_of_int r.Runner.give_ups;
    ]
  in
  Table.print
    ~header:[ "run"; "transfers/s"; "transfers/s (report)"; "peak space"; "sheds"; "retries"; "give-ups" ]
    [ row "ungoverned" ungoverned; row "governed (1 MiB)" governed ];
  (match governed.Runner.driver with
  | Some d ->
      print_endline "\nThe governed run's health ladder:";
      Format.printf "%a@."
        (fun fmt g -> Governor.pp_summary fmt ~now:(Clock.seconds 10.) g)
        (Driver.governor d)
  | None -> ());
  print_endline "Each time the report's pins pushed the space to the top rung,";
  print_endline "the report was evicted (snapshot too old): its segments became";
  print_endline "cuttable the moment its read view collapsed, and the space";
  print_endline "crashed back down — the sawtooth in the transition log. The";
  print_endline "shed report and aborted tellers re-executed under bounded";
  print_endline "exponential backoff (the retries column): degraded, never";
  print_endline "stopped. Peak *sampled* space may exceed the quota briefly";
  print_endline "between maintenance passes; the invariant the chaos harness";
  print_endline "enforces is the post-maintenance checkpoint."
