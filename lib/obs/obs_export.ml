let write_file path json =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Jsonx.to_string json);
      output_char oc '\n')

let with_obs ?trace ?metrics f =
  match (trace, metrics) with
  | None, None -> f ()
  | _ ->
      (* The registry is installed whenever either export is requested:
         the trace is cheap to interpret next to the metrics it was
         recorded with, and headline gauges (throughput, scan
         percentiles) only exist when a registry is in scope. *)
      let reg = Metrics.create () in
      let tracer = match trace with Some _ -> Some (Trace.create ()) | None -> None in
      let run () = Metrics.with_registry reg f in
      let result =
        match tracer with Some tr -> Trace.with_tracer tr run | None -> run ()
      in
      (match (trace, tracer) with
      | Some path, Some tr -> write_file path (Trace.to_chrome_json tr)
      | _ -> ());
      (match metrics with
      | Some path -> write_file path (Metrics.to_json reg)
      | None -> ());
      result
