(** File export glue for the CLI binaries.

    [with_obs ?trace ?metrics f] runs [f] with a fresh tracer and
    metrics registry in scope and, on normal return, writes the Chrome
    [trace_event] JSON to [trace] and the flat metrics JSON to
    [metrics] (each a file path). With neither path given [f] runs
    untouched — no scopes are installed, so the run is bit-identical
    to an unobserved one. *)

val with_obs : ?trace:string -> ?metrics:string -> (unit -> 'a) -> 'a

val write_file : string -> Jsonx.t -> unit
(** Write one JSON document plus a trailing newline. *)
