(** Deterministic event tracer for the vDriver pipeline.

    A fixed-capacity ring buffer of typed events stamped with the
    simulator clock (integer nanoseconds — the tracer never reads wall
    time, so a seeded run traces to the same bytes everywhere). When the
    ring is full the {e oldest} events are overwritten and counted in
    {!dropped}: a bounded trace always keeps the end of the run, which
    is where overload and fault episodes live.

    Like {!Metrics}, recording goes through a scoped current tracer:
    {!with_tracer} installs one, and without one every recording helper
    is a no-op that performs no allocation and touches no simulator
    state — untraced runs stay bit-identical to a build without this
    library. Hot paths guard argument-list construction behind {!on}.

    {!to_chrome_json} renders the Chrome [trace_event] JSON array form
    loadable in [chrome://tracing] and Perfetto, with one "thread" per
    subsystem track. *)

type track =
  | Scheduler  (** discrete-event dispatch *)
  | Txn  (** per-transaction lifecycle (begin/commit/abort/shed/retry) *)
  | Vsorter  (** sweeps, prunes and segment flushes *)
  | Vcutter  (** cut-and-fix rounds *)
  | Governor  (** maintenance passes, ladder transitions, space curve *)
  | Wal  (** redo appends *)
  | Engine  (** engine-level events (relocations, assists) *)
  | Fault  (** injected faults *)
  | Watchdog  (** liveness ladder transitions, sheds, lag readings *)

val track_name : track -> string
val track_tid : track -> int
(** Stable "thread id" used in the Chrome export; [Scheduler] is 1. *)

val all_tracks : track list

type arg = I of int | F of float | S of string

type kind =
  | Span of int  (** duration in ns; rendered as a complete ["X"] event *)
  | Instant  (** rendered as an ["i"] event *)
  | Count of int  (** rendered as a ["C"] counter event (value graphs) *)

type event = { track : track; name : string; at : int; kind : kind; args : (string * arg) list }

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 262144 events. Raises on non-positive capacity. *)

val capacity : t -> int

val with_tracer : t -> (unit -> 'a) -> 'a
(** Install [t] as the tracer in scope for the thunk (restoring the
    previous one on exit, even by exception). *)

val on : unit -> bool
(** Is a tracer in scope? Sites use this to skip argument building. *)

val span : track -> string -> start:int -> dur:int -> (string * arg) list -> unit
(** Record a complete span; no-op without a tracer in scope. Negative
    durations are clamped to 0. *)

val instant : track -> string -> at:int -> (string * arg) list -> unit
val count : track -> string -> at:int -> int -> unit

val events : t -> event list
(** Oldest first (insertion order; survivors only once the ring wraps). *)

val length : t -> int
val emitted : t -> int
(** Total events recorded, including overwritten ones. *)

val dropped : t -> int
val to_chrome_json : t -> Jsonx.t
