type track =
  | Scheduler
  | Txn
  | Vsorter
  | Vcutter
  | Governor
  | Wal
  | Engine
  | Fault
  | Watchdog

let track_name = function
  | Scheduler -> "scheduler"
  | Txn -> "txn"
  | Vsorter -> "vSorter"
  | Vcutter -> "vCutter"
  | Governor -> "governor"
  | Wal -> "WAL"
  | Engine -> "engine"
  | Fault -> "fault"
  | Watchdog -> "watchdog"

let track_tid = function
  | Scheduler -> 1
  | Txn -> 2
  | Vsorter -> 3
  | Vcutter -> 4
  | Governor -> 5
  | Wal -> 6
  | Engine -> 7
  | Fault -> 8
  | Watchdog -> 9

let all_tracks = [ Scheduler; Txn; Vsorter; Vcutter; Governor; Wal; Engine; Fault; Watchdog ]

type arg = I of int | F of float | S of string
type kind = Span of int | Instant | Count of int
type event = { track : track; name : string; at : int; kind : kind; args : (string * arg) list }

type t = {
  cap : int;
  buf : event option array;
  mutable len : int;
  mutable next : int; (* ring write index *)
  mutable emitted : int;
}

let create ?(capacity = 1 lsl 18) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { cap = capacity; buf = Array.make capacity None; len = 0; next = 0; emitted = 0 }

let capacity t = t.cap
let length t = t.len
let emitted t = t.emitted
let dropped t = t.emitted - t.len

let record t e =
  t.buf.(t.next) <- Some e;
  t.next <- (t.next + 1) mod t.cap;
  if t.len < t.cap then t.len <- t.len + 1;
  t.emitted <- t.emitted + 1

let events t =
  let start = if t.len < t.cap then 0 else t.next in
  List.init t.len (fun i ->
      match t.buf.((start + i) mod t.cap) with
      | Some e -> e
      | None -> assert false)

(* ------------------------------------------------------------------ *)
(* Scoped tracer *)

let current : t option ref = ref None

let with_tracer t f =
  let saved = !current in
  current := Some t;
  Fun.protect ~finally:(fun () -> current := saved) f

let on () = !current <> None

let span track name ~start ~dur args =
  match !current with
  | None -> ()
  | Some t -> record t { track; name; at = start; kind = Span (max 0 dur); args }

let instant track name ~at args =
  match !current with
  | None -> ()
  | Some t -> record t { track; name; at; kind = Instant; args }

let count track name ~at value =
  match !current with
  | None -> ()
  | Some t -> record t { track; name; at; kind = Count value; args = [] }

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export *)

let us_of_ns ns = float_of_int ns /. 1000.

let arg_json = function
  | I n -> Jsonx.Int n
  | F f -> Jsonx.Float f
  | S s -> Jsonx.Str s

let event_json e =
  let base =
    [
      ("name", Jsonx.Str e.name);
      ("cat", Jsonx.Str (track_name e.track));
      ("pid", Jsonx.Int 1);
      ("tid", Jsonx.Int (track_tid e.track));
      ("ts", Jsonx.Float (us_of_ns e.at));
    ]
  in
  let args = List.map (fun (k, v) -> (k, arg_json v)) e.args in
  match e.kind with
  | Span dur ->
      Jsonx.Obj
        (base
        @ [ ("ph", Jsonx.Str "X"); ("dur", Jsonx.Float (us_of_ns dur)); ("args", Jsonx.Obj args) ]
        )
  | Instant ->
      Jsonx.Obj (base @ [ ("ph", Jsonx.Str "i"); ("s", Jsonx.Str "t"); ("args", Jsonx.Obj args) ])
  | Count value ->
      Jsonx.Obj
        (base @ [ ("ph", Jsonx.Str "C"); ("args", Jsonx.Obj [ ("value", Jsonx.Int value) ]) ])

let metadata_json =
  let meta ~tid ~name ~value =
    Jsonx.Obj
      [
        ("name", Jsonx.Str name);
        ("ph", Jsonx.Str "M");
        ("pid", Jsonx.Int 1);
        ("tid", Jsonx.Int tid);
        ("args", Jsonx.Obj [ ("name", Jsonx.Str value) ]);
      ]
  in
  meta ~tid:0 ~name:"process_name" ~value:"vdriver"
  :: List.concat_map
       (fun tr ->
         [
           meta ~tid:(track_tid tr) ~name:"thread_name" ~value:(track_name tr);
           Jsonx.Obj
             [
               ("name", Jsonx.Str "thread_sort_index");
               ("ph", Jsonx.Str "M");
               ("pid", Jsonx.Int 1);
               ("tid", Jsonx.Int (track_tid tr));
               ("args", Jsonx.Obj [ ("sort_index", Jsonx.Int (track_tid tr)) ]);
             ];
         ])
       all_tracks

let to_chrome_json t =
  Jsonx.Obj
    [
      ("traceEvents", Jsonx.Arr (metadata_json @ List.map event_json (events t)));
      ("displayTimeUnit", Jsonx.Str "ns");
      ( "otherData",
        Jsonx.Obj
          [
            ("emitted", Jsonx.Int t.emitted);
            ("dropped", Jsonx.Int (dropped t));
            ("capacity", Jsonx.Int t.cap);
          ] );
    ]
