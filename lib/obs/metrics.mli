(** Metrics registry: named counters, gauges and histograms.

    Instrumentation sites across the vDriver pipeline report into the
    {e registry in scope} (installed with {!with_registry}); when no
    registry is in scope every reporting helper is a no-op that touches
    nothing — no allocation, no RNG, no simulator state — so an
    uninstrumented run is bit-identical to one from a build without this
    library linked in.

    Names are flat dot-separated labels ([wal.appends],
    [read.chain_hops]). A name is registered once with one kind;
    re-registering it with a different kind raises, which catches label
    collisions at the first scrape. {!snapshot} and {!to_json} present a
    stable label→value view sorted by name, with histograms summarised
    as [count/p50/p90/p99/max] — the flat metrics JSON consumed by bench
    and the CI golden diff. *)

type t

type counter
type gauge

type value =
  | Counter of int
  | Gauge of float
  | Histo of Histogram.t

val create : unit -> t

val counter : t -> string -> counter
(** Get-or-create. Raises [Invalid_argument] if [name] is already
    registered as another kind. *)

val gauge : t -> string -> gauge
val histogram : t -> ?bucket_width:int -> string -> Histogram.t
(** [bucket_width] is honoured on first registration only. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(* ---- the scoped registry instrumentation sites report into ---- *)

val with_registry : t -> (unit -> 'a) -> 'a
(** Install [t] as the registry in scope for the thunk (restoring the
    previous one on exit, even by exception). Scopes nest. *)

val in_scope : unit -> t option

val bump : string -> unit
(** Increment a counter in the registry in scope; no-op without one. *)

val bump_by : string -> int -> unit
val observe : ?bucket_width:int -> string -> int -> unit
(** Record one histogram observation in the registry in scope. *)

val set_gauge : string -> float -> unit

(* ---- scraping ---- *)

val snapshot : t -> (string * value) list
(** Sorted by name. *)

val to_json : t -> Jsonx.t
(** Flat object, keys sorted: counters as ints, gauges as floats,
    histograms as [{"count";"p50";"p90";"p99";"max"}] objects. *)
