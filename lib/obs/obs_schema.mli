(** Structural validation of the two observability export formats.

    This is the in-repo schema checker CI runs over [--trace] and
    [--metrics] outputs ([bin/obs_check] is a thin CLI over it). Checks
    are structural, not semantic: field presence, types, Chrome
    [trace_event] phase grammar, and coverage floors (distinct
    subsystem tracks, at least one complete span). Each function returns
    human-readable violation descriptions; an empty list means the
    document is valid. *)

val check_trace : ?min_tracks:int -> ?require_span:bool -> Jsonx.t -> string list
(** Validate a Chrome [trace_event] document (the object form with a
    ["traceEvents"] array): every event must carry [name]/[ph]/[pid]/
    [tid], non-metadata events a numeric [ts], ["X"] spans a numeric
    [dur], and phases must be one of [X i C M]. [min_tracks] (default 1)
    is the minimum number of distinct non-metadata [tid]s;
    [require_span] (default true) demands at least one ["X"] event. *)

val check_metrics : ?required:string list -> Jsonx.t -> string list
(** Validate a flat metrics snapshot: a top-level object whose members
    are ints (counters), floats (gauges) or histogram-summary objects
    ([count/p50/p90/p99/max], all ints). [required] (default
    {!default_metrics_required}) lists keys that must be present. *)

val default_metrics_required : string list
(** The per-run headline metrics every traced run must export:
    [txn.throughput], [scan.p50], [scan.p99], [space.peak_bytes],
    [prune.completeness]. *)
