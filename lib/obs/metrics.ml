(* Counters and gauges are Atomics and the registry table is guarded by
   a mutex, so concurrent domains can bump counters and register names
   without torn updates or a corrupted Hashtbl. Histograms stay plain
   mutable structures: every histogram site in the pipeline runs under
   the engine latch in Domains mode (and on one thread in Sim mode), so
   they need no locking of their own — documented in DESIGN §4f.

   Single-threaded behaviour is value-identical to the plain-ref
   version (same registration order, same snapshot), which keeps the
   Sim-mode golden metrics byte-identical. *)

type counter = int Atomic.t

(* Gauges are last-writer-wins floats set from exactly one domain at a
   time (engine latch or the post-join coordinator), so a plain mutable
   field suffices; a word-sized store cannot tear. *)
type gauge = { mutable value : float }

type entry = C of counter | G of gauge | H of Histogram.t

type value =
  | Counter of int
  | Gauge of float
  | Histo of Histogram.t

type t = { tbl : (string, entry) Hashtbl.t; lock : Mutex.t }

let create () = { tbl = Hashtbl.create 64; lock = Mutex.create () }

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let clash name entry want =
  invalid_arg
    (Printf.sprintf "Metrics: %S already registered as a %s, requested as a %s" name
       (kind_name entry) want)

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let counter t name =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.tbl name with
  | Some (C c) -> c
  | Some e -> clash name e "counter"
  | None ->
      let c = Atomic.make 0 in
      Hashtbl.replace t.tbl name (C c);
      c

let gauge t name =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.tbl name with
  | Some (G g) -> g
  | Some e -> clash name e "gauge"
  | None ->
      let g = { value = 0. } in
      Hashtbl.replace t.tbl name (G g);
      g

let histogram t ?(bucket_width = 1) name =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.tbl name with
  | Some (H h) -> h
  | Some e -> clash name e "histogram"
  | None ->
      let h = Histogram.create ~bucket_width () in
      Hashtbl.replace t.tbl name (H h);
      h

let incr c = Atomic.incr c
let add c n = ignore (Atomic.fetch_and_add c n : int)
let counter_value c = Atomic.get c

let set g v = g.value <- v
let gauge_value g = g.value

(* ------------------------------------------------------------------ *)
(* Scoped registry *)

let current : t option ref = ref None

let with_registry t f =
  let saved = !current in
  current := Some t;
  Fun.protect ~finally:(fun () -> current := saved) f

let in_scope () = !current

let bump_by name n = match !current with None -> () | Some m -> add (counter m name) n
let bump name = bump_by name 1

let observe ?bucket_width name v =
  match !current with None -> () | Some m -> Histogram.add (histogram m ?bucket_width name) v

let set_gauge name v = match !current with None -> () | Some m -> set (gauge m name) v

(* ------------------------------------------------------------------ *)
(* Scraping *)

let snapshot t =
  locked t (fun () ->
      Hashtbl.fold
        (fun name entry acc ->
          let v =
            match entry with
            | C c -> Counter (counter_value c)
            | G g -> Gauge (gauge_value g)
            | H h -> Histo h
          in
          (name, v) :: acc)
        t.tbl [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let histo_json h =
  let pctl p = if Histogram.total h = 0 then 0 else Histogram.percentile h p in
  Jsonx.Obj
    [
      ("count", Jsonx.Int (Histogram.total h));
      ("p50", Jsonx.Int (pctl 0.5));
      ("p90", Jsonx.Int (pctl 0.9));
      ("p99", Jsonx.Int (pctl 0.99));
      ("max", Jsonx.Int (Histogram.max_value h));
    ]

let to_json t =
  Jsonx.Obj
    (List.map
       (fun (name, v) ->
         ( name,
           match v with
           | Counter n -> Jsonx.Int n
           | Gauge f -> Jsonx.Float f
           | Histo h -> histo_json h ))
       (snapshot t))
