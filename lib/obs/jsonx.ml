type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printer *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f.0" f
  else Printf.sprintf "%.12g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape_to buf s
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj members ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        members;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char buf e;
              loop ()
          | 'n' ->
              Buffer.add_char buf '\n';
              loop ()
          | 't' ->
              Buffer.add_char buf '\t';
              loop ()
          | 'r' ->
              Buffer.add_char buf '\r';
              loop ()
          | 'b' ->
              Buffer.add_char buf '\b';
              loop ()
          | 'f' ->
              Buffer.add_char buf '\012';
              loop ()
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex) with Failure _ -> fail "bad \\u escape"
              in
              (* Encode the BMP code point as UTF-8; surrogate pairs are
                 out of scope for the exporter's own output. *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
              end;
              loop ()
          | _ -> fail "unknown escape")
      | c -> (
          Buffer.add_char buf c;
          loop ())
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let saw = ref false in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        saw := true;
        advance ()
      done;
      if not !saw then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elems [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "offset %d: trailing garbage" !pos)
    else Ok v
  with
  | Parse_error (at, msg) -> Error (Printf.sprintf "offset %d: %s" at msg)
  | Failure msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function Obj ms -> List.assoc_opt key ms | _ -> None
let to_int = function Int n -> Some n | _ -> None
let to_float = function Int n -> Some (float_of_int n) | Float f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_arr = function Arr xs -> Some xs | _ -> None
