(** Minimal JSON values with a deterministic printer and a small strict
    parser.

    The observability exporters must produce {e byte-identical} files for
    the same seed on every machine, so the printer is fully specified: no
    insignificant whitespace, object members in construction order
    (callers sort when the source is unordered), floats printed with
    [%.12g] (integral floats as [x.] with no exponent), and non-finite
    floats as [null] (JSON has no representation for them). The parser
    exists for the in-repo schema checker ([bin/obs_check]) and accepts
    standard JSON; it is not streaming and is not meant for large or
    adversarial inputs. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Canonical single-line rendering (see above for the guarantees). *)

val to_buffer : Buffer.t -> t -> unit

val of_string : string -> (t, string) result
(** Parse one JSON document (surrounding whitespace allowed). The error
    string includes the byte offset of the failure. *)

val member : string -> t -> t option
(** [member key (Obj _)] — [None] for a missing key or a non-object. *)

val to_int : t -> int option
(** [Int n] gives [Some n]; anything else [None]. *)

val to_float : t -> float option
(** [Int] and [Float] both convert; anything else [None]. *)

val to_str : t -> string option
val to_arr : t -> t list option
