let default_metrics_required =
  [ "txn.throughput"; "scan.p50"; "scan.p99"; "space.peak_bytes"; "prune.completeness" ]

let is_number v = Jsonx.to_float v <> None

let check_trace ?(min_tracks = 1) ?(require_span = true) json =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  (match Jsonx.member "traceEvents" json with
  | None -> err "missing \"traceEvents\" member (expected the object form of trace_event JSON)"
  | Some events -> (
      match Jsonx.to_arr events with
      | None -> err "\"traceEvents\" is not an array"
      | Some events ->
          let tids = Hashtbl.create 16 in
          let spans = ref 0 in
          List.iteri
            (fun i ev ->
              let field name = Jsonx.member name ev in
              let str_field name =
                match field name with
                | Some v when Jsonx.to_str v <> None -> ()
                | Some _ -> err "event %d: %S is not a string" i name
                | None -> err "event %d: missing %S" i name
              in
              let int_field name =
                match field name with
                | Some v when Jsonx.to_int v <> None -> ()
                | Some _ -> err "event %d: %S is not an integer" i name
                | None -> err "event %d: missing %S" i name
              in
              str_field "name";
              int_field "pid";
              int_field "tid";
              match Option.bind (field "ph") Jsonx.to_str with
              | None -> err "event %d: missing or non-string \"ph\"" i
              | Some ph -> (
                  if ph <> "M" then begin
                    (match field "ts" with
                    | Some v when is_number v -> ()
                    | Some _ -> err "event %d: \"ts\" is not a number" i
                    | None -> err "event %d: missing \"ts\"" i);
                    match Option.bind (field "tid") Jsonx.to_int with
                    | Some tid -> Hashtbl.replace tids tid ()
                    | None -> ()
                  end;
                  match ph with
                  | "X" -> (
                      incr spans;
                      match field "dur" with
                      | Some v when is_number v -> ()
                      | Some _ -> err "event %d: \"dur\" is not a number" i
                      | None -> err "event %d: span without \"dur\"" i)
                  | "i" | "C" | "M" -> ()
                  | other -> err "event %d: unknown phase %S" i other))
            events;
          let distinct = Hashtbl.length tids in
          if distinct < min_tracks then
            err "only %d distinct subsystem track(s), need at least %d" distinct min_tracks;
          if require_span && !spans = 0 then err "no complete (\"X\") span events at all"));
  List.rev !errors

let check_metrics ?(required = default_metrics_required) json =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  (match json with
  | Jsonx.Obj members ->
      List.iter
        (fun (name, v) ->
          match v with
          | Jsonx.Int _ | Jsonx.Float _ -> ()
          | Jsonx.Obj _ ->
              List.iter
                (fun field ->
                  match Option.bind (Jsonx.member field v) Jsonx.to_int with
                  | Some _ -> ()
                  | None -> err "metric %S: histogram summary missing integer %S" name field)
                [ "count"; "p50"; "p90"; "p99"; "max" ]
          | _ -> err "metric %S: value is neither number nor histogram summary" name)
        members;
      List.iter
        (fun key ->
          if not (List.mem_assoc key members) then err "missing required metric %S" key)
        required
  | _ -> err "metrics document is not an object");
  List.rev !errors
