(** Version-space governor: quotas, backpressure, graceful degradation.

    The paper bounds LLT damage by pruning harder; this module bounds it
    by {e refusing to grow}. A configurable byte quota over the whole
    version space ([vBuffer + hardened store]) drives a four-rung health
    ladder

    {v Normal -> Pressured -> Emergency -> Shedding v}

    with hysteresis so the state machine cannot flap. Each rung arms a
    concrete mechanism (wired in {!Driver} and {!Runner}):

    - {b Pressured} — maintenance runs more often (the runner shrinks
      the GC period by {!gc_scale}) and vCutter's per-pass segment
      budget rises to [pressured_max_segments];
    - {b Emergency} — relocations pay for cleaning synchronously
      (backpressure on the write path, like InnoDB's sync flush point);
    - {b Shedding} — the snapshot-too-old policy: the oldest read views
      older than [shed_grace] are evicted and their owners aborted,
      which collapses the dead-zone boundary so vCutter can reclaim the
      segments they pinned.

    Transitions are always between adjacent rungs and are logged with
    the space reading that caused them; {!check_ladder} replays the log
    against the thresholds, which is how the fault harness proves the
    ladder honest. [quota_ignore_sabotage] makes the governor ignore its
    quota entirely — chaos campaigns use it to prove the space invariant
    has teeth, mirroring [zone_widen_sabotage]. *)

type rung = Normal | Pressured | Emergency | Shedding

val rung_name : rung -> string
val rung_index : rung -> int
(** [Normal] is 0, [Shedding] is 3. *)

val rung_of_index : int -> rung
val pp_rung : Format.formatter -> rung -> unit

type config = {
  hard_quota_bytes : int;
      (** ceiling on [Driver.space_bytes]; [0] disables the governor
          entirely (the default — ungoverned runs are bit-identical to
          pre-governor builds) *)
  pressured_frac : float;  (** enter Pressured at [frac * quota] *)
  emergency_frac : float;  (** enter Emergency at [frac * quota] *)
  shedding_frac : float;  (** enter Shedding at [frac * quota] *)
  hysteresis_frac : float;
      (** de-escalate from rung [r] only once space falls below
          [enter_threshold r * (1 - hysteresis_frac)] *)
  shed_grace : Clock.time;
      (** snapshot-too-old grace: only transactions older than this are
          eviction candidates *)
  shed_batch : int;  (** victims evicted per shedding round *)
  normal_max_segments : int;  (** vCutter per-pass budget at Normal *)
  pressured_max_segments : int;  (** budget at Pressured and above *)
  pressured_gc_scale : float;
      (** GC-period multiplier at Pressured (< 1 shortens the cadence) *)
  emergency_gc_scale : float;  (** multiplier at Emergency and Shedding *)
  quota_ignore_sabotage : bool;
      (** chaos-testing only: keep the quota configured but never act on
          it. The space invariant still checks the configured quota, so
          a campaign under load must flag the breach. *)
}

val default_config : config
(** Disabled ([hard_quota_bytes = 0]); thresholds 55% / 75% / 90%,
    8% hysteresis, 100 ms grace, batch 4, budgets 64/256, GC scales
    0.25 / 0.1. *)

val governed : quota_bytes:int -> config
(** [default_config] with the quota set — the one-liner CLIs use. *)

type transition = {
  at : Clock.time;
  from_rung : rung;
  to_rung : rung;
  space_bytes : int;  (** the reading that caused the transition *)
}

type t

val create : ?config:config -> unit -> t
val config : t -> config
val enabled : t -> bool
(** A nonzero quota and no sabotage. *)

val hard_quota : t -> int
val rung : t -> rung

val enter_threshold : config -> rung -> int
(** Escalation threshold of a rung ([0] for [Normal]). *)

val observe : t -> now:Clock.time -> space_bytes:int -> rung
(** Feed one space reading: the ladder moves {e at most one rung} toward
    where the reading points (escalate when the next rung's threshold is
    reached, de-escalate under the current rung's hysteresis floor),
    logging any transition. Returns the rung now in force. Disabled or
    sabotaged governors always answer [Normal] and log nothing. *)

val max_segments : t -> int
(** vCutter budget for the current rung. *)

val gc_scale : t -> float
(** Maintenance-period multiplier for the current rung (1.0 at Normal). *)

val emergency_active : t -> bool
(** Emergency or Shedding: relocations must clean synchronously. *)

val shed_active : t -> bool

val note_shed : t -> int -> unit
(** Count victims evicted by the snapshot-too-old policy. *)

val sheds : t -> int
val note_assist : t -> unit
(** Count one synchronous emergency-maintenance pass on the relocate
    path. *)

val assists : t -> int

val note_headroom : t -> now:Clock.time -> space_bytes:int -> unit
(** Record the quota-headroom gauge sample ([quota - space], clamped at
    0) into {!headroom_series}. No-op when disabled. *)

val headroom_series : t -> Series.t
val transitions : t -> transition list
(** Oldest first. *)

val dwell_times : t -> now:Clock.time -> (rung * Clock.time) list
(** Cumulative simulated time spent in each rung, the current residence
    counted up to [now]. All four rungs, ladder order. *)

val check_ladder : t -> string list
(** Replay the transition log against the thresholds: every transition
    must be adjacent, every escalation must have seen space at or above
    the target rung's threshold, every de-escalation must have seen
    space below the source rung's hysteresis floor. Returns violation
    descriptions (empty = honest ladder). *)

val pp_transition : Format.formatter -> transition -> unit
val pp_summary : Format.formatter -> now:Clock.time -> t -> unit
(** One-paragraph report: rung, sheds, assists, transition log, dwell
    times. *)
