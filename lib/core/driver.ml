type t = State.t

let create = State.create
let config (t : t) = t.State.config
let relocate t version ~now = Vsorter.relocate t version ~now

type read_source = From_vbuffer | From_store_cached | From_store_io

let read (t : t) view ~rid =
  match Llb.find t.State.llb ~rid with
  | None -> None
  | Some chain -> (
      match Chain.find_visible chain view with
      | None -> None
      | Some (node, hops) -> (
          match State.find_segment t node.Chain.seg_id with
          | None -> None (* segment vanished under us: treat as miss *)
          | Some seg ->
              let source =
                match seg.Segment.state with
                | Segment.In_buffer -> From_vbuffer
                | Segment.Hardened -> (
                    match Buffer_pool.access t.State.store_cache ~block:seg.Segment.id with
                    | `Hit -> From_store_cached
                    | `Miss -> From_store_io)
                | Segment.Cut -> assert false (* cut nodes are deleted *)
              in
              Some (node.Chain.version, source, hops)))

let vcutter_step t ~now ~max_segments = Vcutter.step t ~now ~max_segments
let sweep t ~now = Vsorter.sweep t ~now

let maintain t ~now =
  let swept = Vsorter.sweep t ~now in
  let cut = Vcutter.step t ~now ~max_segments:64 in
  (swept, cut)

let flush_all t ~now = Vsorter.flush_all t ~now
let abort_cleanup (_ : t) = ()

let crash_restart (t : t) =
  (* Versions still buffered (open or sealed segments) die with the
     restart without ever being pruned or stored; account them so the
     Prune_stats conservation law survives the crash (§3.5). *)
  let buffered =
    Array.fold_left
      (fun acc -> function Some seg -> acc + Segment.live_count seg | None -> acc)
      0 t.State.open_segments
    + Vec.fold_left (fun acc seg -> acc + Segment.live_count seg) 0 t.State.sealed
  in
  Prune_stats.note_lost t.State.stats buffered;
  Llb.clear t.State.llb;
  Version_store.clear t.State.store;
  Buffer_pool.clear t.State.store_cache;
  Vec.iter (fun seg -> State.drop_segment t seg) t.State.sealed;
  Vec.clear t.State.sealed;
  Array.iteri
    (fun i seg_opt ->
      match seg_opt with
      | Some seg ->
          State.drop_segment t seg;
          t.State.open_segments.(i) <- None
      | None -> ())
    t.State.open_segments;
  Hashtbl.reset t.State.seg_index

let space_bytes = State.space_bytes
let max_chain_length (t : t) = Llb.max_live_chain t.State.llb

let chain_length (t : t) ~rid =
  match Llb.find t.State.llb ~rid with Some c -> Chain.live_length c | None -> 0
let chain_length_histogram (t : t) = Llb.chain_length_histogram t.State.llb
let stats (t : t) = t.State.stats
let store (t : t) = t.State.store
let zone_refreshes (t : t) = t.State.zone_refreshes
