type t = State.t

let create = State.create
let config (t : t) = t.State.config
let governor (t : t) = t.State.governor
let rung (t : t) = Governor.rung t.State.governor

(* ------------------------------------------------------------------ *)
(* Overload protection: the governor's ladder, observed on the relocate
   and maintenance paths, arms one mechanism per rung (see Governor). *)

let combine_sweeps (a : Vsorter.sweep_result) (b : Vsorter.sweep_result) =
  {
    Vsorter.segments_dropped = a.Vsorter.segments_dropped + b.Vsorter.segments_dropped;
    versions_pruned = a.Vsorter.versions_pruned + b.Vsorter.versions_pruned;
    segments_flushed = a.Vsorter.segments_flushed + b.Vsorter.segments_flushed;
    versions_stored = a.Vsorter.versions_stored + b.Vsorter.versions_stored;
  }

let combine_cuts (a : Vcutter.result) (b : Vcutter.result) =
  {
    Vcutter.segments_cut = a.Vcutter.segments_cut + b.Vcutter.segments_cut;
    versions_cut = a.Vcutter.versions_cut + b.Vcutter.versions_cut;
    bytes_reclaimed = a.Vcutter.bytes_reclaimed + b.Vcutter.bytes_reclaimed;
    segments_scanned = a.Vcutter.segments_scanned + b.Vcutter.segments_scanned;
  }

(* Snapshot-too-old: evict the oldest read views past the grace period,
   aborting their owners. Through the runner's hook when installed (the
   engine rolls back the victim's writes); directly in the transaction
   manager otherwise (safe for the read-only victims of the tests).
   Returns the number of victims actually killed. *)
let shed_victims (t : t) ~now =
  let g = t.State.governor in
  let cfg = Governor.config g in
  let candidates =
    Txn_manager.shed_candidates t.State.txns ~now ~min_age:cfg.Governor.shed_grace
  in
  let rec kill n = function
    | [] -> n
    | _ when n >= cfg.Governor.shed_batch -> n
    | (txn : Txn.t) :: rest ->
        let killed =
          match t.State.shed_hook with
          | Some hook -> hook ~tid:txn.Txn.tid ~now
          | None ->
              Txn_manager.abort t.State.txns txn ~now;
              true
        in
        kill (if killed then n + 1 else n) rest
  in
  let shed = kill 0 candidates in
  if shed > 0 then begin
    Governor.note_shed g shed;
    if Trace.on () then
      Trace.instant Trace.Governor "shed" ~at:now
        [ ("victims", Trace.I shed); ("candidates", Trace.I (List.length candidates)) ];
    (* The dead-zone boundary just collapsed: reclaim immediately. *)
    State.refresh_zones t ~now
  end;
  shed

(* One sweep + cut at the governor's current vCutter budget. An
   installed GC backend replaces the pair wholesale (same budget, same
   result shape); the default path is untouched so un-hooked runs stay
   bit-identical to the seed. *)
let maintain_pass (t : t) ~now =
  let budget = Governor.max_segments t.State.governor in
  match t.State.gc_backend with
  | None ->
      let swept = Vsorter.sweep t ~now in
      let cut = Vcutter.step t ~now ~max_segments:budget in
      (swept, cut)
  | Some h ->
      let s = h.State.gh_step ~now ~budget in
      ( {
          Vsorter.segments_dropped = s.State.gs_segments_dropped;
          versions_pruned = s.State.gs_versions_pruned;
          segments_flushed = s.State.gs_segments_flushed;
          versions_stored = s.State.gs_versions_stored;
        },
        {
          Vcutter.segments_cut = s.State.gs_segments_cut;
          versions_cut = s.State.gs_versions_cut;
          bytes_reclaimed = s.State.gs_bytes_reclaimed;
          segments_scanned = s.State.gs_segments_scanned;
        } )

(* Governed maintenance: sweep and cut, then — while the space reading
   keeps the ladder at Shedding (>= 90% of quota) or outright exceeds
   the hard quota — climb the ladder one observation at a time
   (adjacency) and let Shedding evict pins until either the space fits
   or nothing is left to shed. Shedding acts *before* the quota is
   breached: that is the point of the top rung. Rounds are bounded:
   each round either sheds at least one victim or advances the rung,
   and both are finite. *)
let maintain t ~now =
  let g = t.State.governor in
  let rounds_run = ref 1 in
  let acc = ref (maintain_pass t ~now) in
  if Governor.enabled g then begin
    let rec enforce rounds =
      let space = State.space_bytes t in
      let r = Governor.observe g ~now ~space_bytes:space in
      if rounds > 0 && (space > Governor.hard_quota g || r = Governor.Shedding) then begin
        let progress =
          if r = Governor.Shedding then shed_victims t ~now > 0
          else true (* climbing the ladder is progress; observe again *)
        in
        if progress then begin
          let swept, cut = maintain_pass t ~now in
          incr rounds_run;
          acc := (combine_sweeps (fst !acc) swept, combine_cuts (snd !acc) cut);
          enforce (rounds - 1)
        end
      end
    in
    enforce (4 + Txn_manager.live_count t.State.txns)
  end;
  (* The checkpoint is recorded whenever a quota is *configured*, not
     merely when the governor is willing to act on it: that is what
     lets the space invariant catch [quota_ignore_sabotage]. *)
  if (Governor.config g).Governor.hard_quota_bytes > 0 then begin
    let space = State.space_bytes t in
    Governor.note_headroom g ~now ~space_bytes:space;
    t.State.post_maintain_space <- Some (now, space)
  end;
  (match t.State.watchdog with
  | Some w -> Watchdog.beat w "governor" ~now
  | None -> ());
  Metrics.bump "driver.maintains";
  if Trace.on () then begin
    let swept, cut = !acc in
    Trace.span Trace.Governor "maintain" ~start:now ~dur:0
      [
        ("rung", Trace.S (Governor.rung_name (Governor.rung g)));
        ("rounds", Trace.I !rounds_run);
        ("versions_pruned", Trace.I swept.Vsorter.versions_pruned);
        ("versions_stored", Trace.I swept.Vsorter.versions_stored);
        ("segments_cut", Trace.I cut.Vcutter.segments_cut);
        ("space_bytes", Trace.I (State.space_bytes t));
      ]
  end;
  !acc

let relocate t version ~now =
  let outcome = Vsorter.relocate t version ~now in
  let g = t.State.governor in
  if Governor.enabled g then begin
    let r = Governor.observe g ~now ~space_bytes:(State.space_bytes t) in
    (* Emergency backpressure: the writer that displaced a version pays
       for cleaning synchronously, InnoDB sync-flush style. *)
    if r = Governor.Emergency || r = Governor.Shedding then begin
      Governor.note_assist g;
      ignore (maintain t ~now)
    end
  end;
  outcome

(* Zombie-pinning test for the watchdog's shed rung: is [tid] the pin
   on otherwise-dead versions? True when some sealed or hardened
   segment's descriptor interval is dead per Definition 3.3 over the
   live table with [tid] removed, but not with [tid] present. Pure: the
   zone snapshot and the store are read, never touched. *)
let pins_dead_interval (t : t) ~tid =
  let live = Txn_manager.live_begin_ts t.State.txns in
  let live_without = List.filter (fun b -> b <> tid) live in
  if List.length live_without = List.length live then false
  else begin
    let pins = ref false in
    let consider seg =
      if (not !pins) && Segment.live_count seg > 0 then begin
        let _, vmin, vmax = Segment.descriptor seg in
        if
          vmin < vmax
          && Prune.dead_spec ~live:live_without ~vs:vmin ~ve:vmax
          && not (Prune.dead_spec ~live ~vs:vmin ~ve:vmax)
        then pins := true
      end
    in
    Vec.iter consider t.State.sealed;
    Version_store.iter_hardened t.State.store consider;
    !pins
  end

type read_source = From_vbuffer | From_store_cached | From_store_io

let read (t : t) view ~rid =
  match Llb.find t.State.llb ~rid with
  | None -> None
  | Some chain -> (
      match Chain.find_visible chain view with
      | None -> None
      | Some (node, hops) -> (
          match State.find_segment t node.Chain.seg_id with
          | None -> None (* segment vanished under us: treat as miss *)
          | Some seg ->
              let source =
                match seg.Segment.state with
                | Segment.In_buffer -> From_vbuffer
                | Segment.Hardened -> (
                    match Buffer_pool.access t.State.store_cache ~block:seg.Segment.id with
                    | `Hit -> From_store_cached
                    | `Miss -> From_store_io)
                | Segment.Cut -> assert false (* cut nodes are deleted *)
              in
              Some (node.Chain.version, source, hops)))

let vcutter_step t ~now ~max_segments = Vcutter.step t ~now ~max_segments
let sweep t ~now = Vsorter.sweep t ~now
let flush_all t ~now = Vsorter.flush_all t ~now
let abort_cleanup (_ : t) = ()

let crash_restart (t : t) =
  (* Versions still buffered (open or sealed segments) die with the
     restart without ever being pruned or stored; account them so the
     Prune_stats conservation law survives the crash (§3.5). *)
  let buffered =
    Array.fold_left
      (fun acc -> function Some seg -> acc + Segment.live_count seg | None -> acc)
      0 t.State.open_segments
    + Vec.fold_left (fun acc seg -> acc + Segment.live_count seg) 0 t.State.sealed
  in
  Prune_stats.note_lost t.State.stats buffered;
  Llb.clear t.State.llb;
  Version_store.clear t.State.store;
  Buffer_pool.clear t.State.store_cache;
  Vec.iter (fun seg -> State.drop_segment t seg) t.State.sealed;
  Vec.clear t.State.sealed;
  Array.iteri
    (fun i seg_opt ->
      match seg_opt with
      | Some seg ->
          State.drop_segment t seg;
          t.State.open_segments.(i) <- None
      | None -> ())
    t.State.open_segments;
  Hashtbl.reset t.State.seg_index;
  (* The checkpoint predates the restart; a fresh one is recorded by the
     next governed maintenance pass. *)
  t.State.post_maintain_space <- None

let space_bytes = State.space_bytes
let max_chain_length (t : t) = Llb.max_live_chain t.State.llb

let gc_backend_name = State.gc_backend_name

let chain_length (t : t) ~rid =
  match Llb.find t.State.llb ~rid with Some c -> Chain.live_length c | None -> 0
let chain_length_histogram (t : t) = Llb.chain_length_histogram t.State.llb
let stats (t : t) = t.State.stats
let store (t : t) = t.State.store
let zone_refreshes (t : t) = t.State.zone_refreshes
