(** vSorter (§3.3): placement of relocated versions.

    When SIRO-versioning pushes a displaced [v^{r,1->2}] off-row,
    vSorter classifies it, attempts the {e dead zone-based version
    pruning} (the 1st prune of Figure 15), and buffers survivors into
    the open segment of their class. A full segment is {e sealed} and
    ages inside vBuffer; the periodic {!sweep} applies the
    {e dead zone-based segment pruning} (the 2nd prune) at segment
    granularity — a sealed segment whose whole [\[v_min, v_max\]] range
    fell inside a dead zone is dropped without ever touching storage.
    Only memory pressure (or shutdown) hardens surviving sealed segments
    into the version store, where vCutter takes over. *)

type outcome =
  | Pruned_first of Vclass.t  (** dead on arrival; class recorded for the breakdown *)
  | Buffered of Vclass.t

type sweep_result = {
  segments_dropped : int;  (** sealed segments dead in their entirety *)
  versions_pruned : int;  (** versions those segments contained (2nd prune) *)
  segments_flushed : int;  (** sealed segments hardened under memory pressure *)
  versions_stored : int;  (** versions that reached the version store *)
}

val relocate : State.t -> Version.t -> now:Clock.time -> outcome
(** Process one displaced version. May seal a full segment as a side
    effect (sealing never blocks on pruning — that is {!sweep}'s job). *)

val drop_dead_segment : State.t -> Segment.t -> now:Clock.time -> int
(** Discard a sealed segment that is dead in its entirety: every live
    node is removed from its chain, audited and counted into the 2nd
    prune, and the segment is dropped (with its WAL record). Returns the
    number of versions pruned. The caller owns removing the segment from
    [sealed] — exported so pluggable GC backends reuse the exact seed
    reclaim path (audits, stats, WAL) instead of reimplementing it. *)

val harden_segment : State.t -> Segment.t -> now:Clock.time -> int
(** Flush one (already popped) sealed segment into the version store,
    counting its versions as stored (with WAL record, metrics, trace).
    Returns the number of versions stored. Exported for GC backends. *)

val sweep : State.t -> now:Clock.time -> sweep_result
(** One vBuffer maintenance pass: 2nd-prune sealed segments against
    fresh dead zones, then flush the oldest survivors while the buffer
    exceeds its byte budget. *)

val flush_all : State.t -> now:Clock.time -> sweep_result
(** Shutdown/settlement: seal every open segment, sweep, and harden all
    remaining sealed segments so every relocated version is accounted
    as pruned or stored. *)
