type result = { versions : int; segments : int; hardened : int }

let cls_of_string s =
  match List.find_opt (fun c -> Vclass.to_string c = s) Vclass.all with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Vrecovery: unknown version class %S" s)

let rebuild (st : State.t) ~(segments : Wal_recovery.seg_build list) ~next_seg_id ~now =
  (* Recreate every surviving segment with its original identity. The
     capacity is widened to its recovered contents if the configured
     segment size shrank across the restart. *)
  let builds =
    List.filter (fun (b : Wal_recovery.seg_build) -> b.versions <> []) segments
  in
  let made =
    List.map
      (fun (b : Wal_recovery.seg_build) ->
        let bytes =
          List.fold_left
            (fun acc (v : Checkpoint.seg_version) -> acc + v.bytes)
            0 b.versions
        in
        let seg =
          Segment.create ~id:b.seg_id ~cls:(cls_of_string b.cls)
            ~cap_bytes:(max st.State.config.State.segment_bytes bytes)
            ~now
        in
        Hashtbl.replace st.State.seg_index b.seg_id seg;
        (b, seg))
      builds
  in
  let seg_of_id = Hashtbl.create 64 in
  List.iter (fun ((b : Wal_recovery.seg_build), seg) -> Hashtbl.replace seg_of_id b.seg_id seg) made;
  (* Chains must be rebuilt oldest-first per record: push_newest demands
     ascending creator timestamps, and relocation order across segments
     is not segment-id order. *)
  let per_rid : (int, (int * Checkpoint.seg_version) list ref) Hashtbl.t =
    Hashtbl.create 1024
  in
  List.iter
    (fun ((b : Wal_recovery.seg_build), _) ->
      List.iter
        (fun (v : Checkpoint.seg_version) ->
          match Hashtbl.find_opt per_rid v.rid with
          | Some l -> l := (b.seg_id, v) :: !l
          | None -> Hashtbl.replace per_rid v.rid (ref [ (b.seg_id, v) ]))
        b.versions)
    made;
  let rids = Hashtbl.fold (fun rid _ acc -> rid :: acc) per_rid [] |> List.sort compare in
  let count = ref 0 in
  List.iter
    (fun rid ->
      let versions =
        !(Hashtbl.find per_rid rid)
        |> List.sort (fun (_, (a : Checkpoint.seg_version)) (_, b) -> compare a.vs b.vs)
      in
      let chain = Llb.get_or_create st.State.llb ~rid in
      List.iter
        (fun (seg_id, (v : Checkpoint.seg_version)) ->
          let seg = Hashtbl.find seg_of_id seg_id in
          let version =
            Version.make ~rid:v.rid ~vs:v.vs ~ve:v.ve ~vs_time:v.vs_time ~ve_time:v.ve_time
              ~bytes:v.bytes ~payload:v.value
          in
          let node =
            Chain.push_newest chain ~prune_interval:(v.lo, v.hi) version ~seg_id
          in
          Segment.add seg node;
          (* Reborn after being counted lost by the crash: the
             conservation law [relocated = prune1 + prune2 + stored +
             lost + in_flight] stays exact through the round trip. *)
          Prune_stats.note_relocated st.State.stats;
          incr count)
        versions)
    rids;
  (* Restore each segment's lifecycle state: hardened ones re-enter the
     version store, buffered ones queue as sealed (flush order by id —
     ids are allocation order). *)
  let hardened = ref 0 in
  List.iter
    (fun ((b : Wal_recovery.seg_build), seg) ->
      if b.hardened then begin
        Version_store.harden st.State.store seg ~now;
        List.iter
          (fun (_ : Checkpoint.seg_version) ->
            Prune_stats.note_stored st.State.stats seg.Segment.cls)
          b.versions;
        incr hardened
      end
      else Vec.push st.State.sealed seg)
    made;
  st.State.next_seg_id <- max st.State.next_seg_id next_seg_id;
  Metrics.bump_by "recovery.versions_replayed" !count;
  Metrics.bump_by "recovery.segments_rebuilt" (List.length made);
  { versions = !count; segments = List.length made; hardened = !hardened }
