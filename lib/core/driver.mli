(** vDriver — the public facade (§3.2, Figure 5).

    A standalone version manager pluggable into an MVCC engine. The
    engine keeps SIRO slots in its data pages ({!Siro}) and hands every
    displaced [v^{r,1->2}] to {!relocate}; reads that miss the in-row
    pair are served from the version-buffer layer through {!read};
    background maintenance drives {!vcutter_step}.

    All state lives in {!State.t}; this module wires vSorter, vCutter,
    the LLB and the version store together and adds the read path and
    crash/abort semantics. *)

type t = State.t

val create : ?config:State.config -> Txn_manager.t -> t
val config : t -> State.config

val governor : t -> Governor.t
(** The overload-protection ladder (disabled unless the config sets a
    hard quota). *)

val rung : t -> Governor.rung
(** Health rung currently in force. *)

val relocate : t -> Version.t -> now:Clock.time -> Vsorter.outcome
(** Feed one displaced in-row version to vSorter. Under an enabled
    governor every relocation is also a ladder observation, and at
    [Emergency] and above the caller pays for a synchronous maintenance
    pass before this returns — the backpressure that keeps a write storm
    from outrunning the cleaners. *)

type read_source =
  | From_vbuffer  (** version found in an in-memory (filling) segment *)
  | From_store_cached  (** hardened segment, resident in the cache *)
  | From_store_io  (** hardened segment, fetched from stable storage *)

val read : t -> Read_view.t -> rid:int -> (Version.t * read_source * int) option
(** Off-row lookup: find the snapshot read of [rid] for the view in the
    LLB chain. Returns the version, where it was found, and the chain
    hops taken. [None] when the record has no visible off-row version
    (the caller's in-row check should have succeeded, or the record was
    never updated). *)

val vcutter_step : t -> now:Clock.time -> max_segments:int -> Vcutter.result

val sweep : t -> now:Clock.time -> Vsorter.sweep_result
(** vBuffer maintenance: segment-granularity 2nd prune plus
    flush-on-pressure (see {!Vsorter.sweep}). *)

val maintain : t -> now:Clock.time -> Vsorter.sweep_result * Vcutter.result
(** One full background pass: sweep the buffer, then run vCutter over
    the store (with the governor's per-rung segment budget). While the
    hard quota is exceeded the pass loops — observing the ladder one
    adjacent step at a time and, once [Shedding] is reached, evicting
    the oldest read views past the grace period — until the space fits
    or nothing sheddable remains. The final {!space_bytes} reading is
    recorded as the post-maintenance checkpoint the space-quota
    invariant audits. *)

val flush_all : t -> now:Clock.time -> Vsorter.sweep_result

val abort_cleanup : t -> unit
(** Transaction abort leaves version segments and the LLB unaffected
    (§3.5, Figure 10a) — provided for symmetry and assertion hooks. *)

val pins_dead_interval : t -> tid:Timestamp.t -> bool
(** Zombie-pinning test for the watchdog's shed rung: does the live
    transaction whose begin timestamp is [tid] pin otherwise-dead
    versions? True when some sealed or hardened segment's descriptor
    interval is dead (Definition 3.3) over the live table with [tid]
    removed, but not with [tid] present. Read-only. *)

val crash_restart : t -> unit
(** Crash recovery: every off-row version predates the restart and no
    new transaction can request it, so vBuffer, LLB and the version
    store are emptied wholesale (§3.5, Figure 10b). *)

(** {1 Observability} *)

val space_bytes : t -> int

val max_chain_length : t -> int
(** Longest live off-row chain across all records. *)

val chain_length : t -> rid:int -> int
(** Live off-row versions of one record (0 if it has no chain). *)

val gc_backend_name : t -> string
(** Name of the installed GC backend (["vcutter"] for the built-in
    path). Recorded in run digests and fault-report gauges. *)

val chain_length_histogram : t -> Histogram.t
val stats : t -> Prune_stats.t
val store : t -> Version_store.t
val zone_refreshes : t -> int
