type result = {
  segments_cut : int;
  versions_cut : int;
  bytes_reclaimed : int;
  segments_scanned : int;
}

let cut_segment (st : State.t) seg ~now =
  let versions = ref 0 in
  Vec.iter
    (fun node ->
      if not node.Chain.deleted then begin
        let rid = node.Chain.version.Version.rid in
        match Llb.find st.State.llb ~rid with
        | Some chain ->
            (* Race arbitration against a concurrent vSorter insertion.
               In the discrete-event engines the episode is uncontended
               and the cutter always wins; the multi-domain tests are
               where the protocol earns its keep. *)
            let episode = Collab.create () in
            (match
               Collab.cutter episode
                 ~delete:(fun () -> Chain.delete_node chain node)
                 ~fixup:(fun () -> ())
             with
            | `Won -> ()
            | `Lost -> Chain.delete_node chain node);
            State.audit_prune st ~now ~origin:`Cut ~lo:node.Chain.prune_lo
              ~hi:node.Chain.prune_hi;
            incr versions
        | None -> assert false
      end)
    seg.Segment.nodes;
  let bytes = seg.Segment.used_bytes in
  Version_store.cut st.State.store seg ~now;
  Buffer_pool.evict st.State.store_cache ~block:seg.Segment.id;
  State.drop_segment st seg;
  State.log_wal st ~now (Wal_record.Seg_cut { seg_id = seg.Segment.id });
  if Trace.on () then
    Trace.instant Trace.Vcutter "cut-segment" ~at:now
      [
        ("seg", Trace.I seg.Segment.id);
        ("class", Trace.S (Vclass.to_string seg.Segment.cls));
        ("versions", Trace.I !versions);
        ("bytes", Trace.I bytes);
      ];
  (!versions, bytes)

let step (st : State.t) ~now ~max_segments =
  State.refresh_zones st ~now;
  let candidates = ref [] in
  let scanned = ref 0 in
  Version_store.iter_hardened st.State.store (fun seg ->
      incr scanned;
      let _, vmin, vmax = Segment.descriptor seg in
      if State.interval_dead st ~lo:vmin ~hi:vmax then candidates := seg :: !candidates);
  let candidates = List.rev !candidates in
  let rec cut_up_to acc n = function
    | [] -> acc
    | _ when n = 0 -> acc
    | seg :: rest ->
        let versions, bytes = cut_segment st seg ~now in
        let acc =
          {
            acc with
            segments_cut = acc.segments_cut + 1;
            versions_cut = acc.versions_cut + versions;
            bytes_reclaimed = acc.bytes_reclaimed + bytes;
          }
        in
        cut_up_to acc (n - 1) rest
  in
  let r =
    cut_up_to
      { segments_cut = 0; versions_cut = 0; bytes_reclaimed = 0; segments_scanned = !scanned }
      max_segments candidates
  in
  (match st.State.watchdog with
  | Some w -> Watchdog.beat w "vcutter" ~now
  | None -> ());
  Metrics.bump_by "vcutter.segments_scanned" r.segments_scanned;
  Metrics.bump_by "vcutter.segments_cut" r.segments_cut;
  Metrics.bump_by "vcutter.versions_cut" r.versions_cut;
  Metrics.bump_by "vcutter.bytes_reclaimed" r.bytes_reclaimed;
  if Trace.on () then
    Trace.span Trace.Vcutter "cut-round" ~start:now ~dur:0
      [
        ("scanned", Trace.I r.segments_scanned);
        ("cut", Trace.I r.segments_cut);
        ("versions", Trace.I r.versions_cut);
        ("bytes_reclaimed", Trace.I r.bytes_reclaimed);
        ("budget", Trace.I max_segments);
      ];
  r
