(** Liveness watchdog for the vDriver cleaning pipeline (DESIGN §4e).

    The paper's promise is that dead versions are reclaimed regardless
    of LLT behaviour — but a vCutter that silently stalls, a vSorter
    stuck in the collab spin, or a zombie LLT pinning an otherwise-dead
    zone would all break it without ever tripping a safety invariant.
    The watchdog turns that into a monitored {e bounded-lag} property:

    - every cleaning loop ([vsorter], [vcutter], the governed
      maintenance loop, the runner's background cleaner, the
      checkpointer) posts a {b monotone progress counter} via {!beat};
      a source whose counter has not advanced within [stall_timeout]
      of simulated time is {e stalled};
    - lease-expired transactions (see {!Lease}) that stopped making
      progress are {e zombies};
    - any stall or zombie drives a logged four-rung escalation ladder,
      mirroring {!Governor}'s design: {b Nudge} (run a synchronous
      maintenance pass), {b Restart} (revive the stalled cleaner),
      {b Sync_reclaim} (emergency flush + reclaim), {b Shed} (cancel
      zombie transactions cooperatively, through the workload's
      forced-abort path). The ladder is cumulative — rung r runs every
      mechanism at or below r on every poll while unhealthy — and
      de-escalates one rung per healthy poll.

    Everything is driven by the simulated clock through {!poll}; the
    watchdog owns no process and draws no randomness, so an armed run
    is still a pure function of the seed. With [enabled = false] the
    ladder never moves and no action runs, but stalls are still
    observed — that is the [--no-watchdog] sabotage mode the
    [reclamation-lag] invariant must catch. *)

type rung = Healthy | Nudge | Restart | Sync_reclaim | Shed

val rung_name : rung -> string
val rung_index : rung -> int
val rung_of_index : int -> rung
val all_rungs : rung list
val pp_rung : Format.formatter -> rung -> unit

type config = {
  enabled : bool;  (** [false]: observe, log nothing, act never *)
  check_period : Clock.time;  (** cadence of the owning poll process *)
  stall_timeout : Clock.time;  (** no-progress deadline per source *)
  escalation_cooldown : Clock.time;
      (** minimum dwell on a rung before climbing to the next *)
  shed_batch : int;  (** max zombies cancelled per poll at {!Shed} *)
}

val default_config : config
(** enabled, 5 ms checks, 25 ms stall timeout, 10 ms cooldown, batch 4. *)

val lag_bound : config -> gc_period:Clock.time -> Clock.time
(** The reclamation-lag bound [L] this configuration guarantees: any
    version (segment) dead at time [t] is reclaimed by [t + L] while
    the watchdog is enabled. Computed as stall detection
    ([stall_timeout + check_period]) plus the full three-step climb to
    the top rung ([3 * (escalation_cooldown + check_period)]) plus the
    cleaner revival taking effect (twice the larger of [check_period]
    and the maintenance period) plus the lag monitor's observation
    granularity ([4 * check_period]). The [reclamation-lag] invariant
    asserts exactly this bound online. *)

type transition = {
  at : Clock.time;
  from_rung : rung;
  to_rung : rung;
  stalled : string list;
      (** sources past their deadline when the verdict was taken *)
  zombies : int;  (** lease-expired transactions at the verdict *)
}

type actions = {
  nudge : now:Clock.time -> unit;
      (** run one synchronous maintenance pass on the watchdog's own
          dime (treats the symptom while the cleaner is down) *)
  restart_cleaners : now:Clock.time -> unit;
      (** clear the stall state so the background cleaner resumes at
          its next wakeup (cures the root cause) *)
  sync_reclaim : now:Clock.time -> unit;
      (** emergency synchronous reclaim: flush everything buffered and
          maintain until reclaimable space is gone *)
  shed_zombies : max:int -> now:Clock.time -> int;
      (** cancel up to [max] zombie transactions through the workload's
          cooperative forced-abort path; returns the number actually
          cancelled *)
  zombie_count : now:Clock.time -> int;
      (** lease-expired transactions right now (the health signal) *)
}

type t

val create : ?config:config -> unit -> t
(** Validates the configuration ([check_period], [stall_timeout] and
    [shed_batch] positive, cooldown non-negative); raises
    [Invalid_argument] otherwise. *)

val config : t -> config
val enabled : t -> bool
val rung : t -> rung

val register : ?watch:bool -> t -> string -> now:Clock.time -> unit
(** Declare a progress source. Idempotent. A registered source is
    monitored from [now] on, even if it never beats. [~watch:false]
    records the monotone counter but exempts the source from stall
    detection — for legitimately slow-cadence loops (the checkpointer
    ticks in seconds, far past any sane [stall_timeout]). *)

val beat : t -> string -> now:Clock.time -> unit
(** Post one unit of progress for a source: its monotone pass counter
    advances and its deadline resets to [now + stall_timeout].
    Auto-registers unknown sources. *)

val progress : t -> string -> int
(** The source's monotone pass counter (0 if unknown). *)

val sources : t -> (string * int * Clock.time) list
(** [(name, beats, last_advance)], sorted by name. *)

val stalled_sources : t -> now:Clock.time -> string list
(** Sources whose counter has not advanced within [stall_timeout]. *)

val poll : t -> now:Clock.time -> actions:actions -> unit
(** One watchdog tick: take the health verdict (stalled sources +
    zombie count), move the ladder at most one adjacent rung (up after
    the cooldown dwell while unhealthy, down one per healthy poll), and
    run the cumulative actions for the current rung. With
    [enabled = false] only the verdict and {!max_stall_observed} are
    updated. *)

val escalations : t -> int
val nudges : t -> int
val restarts : t -> int
val sync_reclaims : t -> int
val zombie_cancels : t -> int
val max_stall_observed : t -> Clock.time
val polls : t -> int
val transitions : t -> transition list
(** Oldest first. *)

val check_ladder : t -> string list
(** Honesty replay over the transition log (the [watchdog-ladder]
    invariant): transitions chain from Healthy, move one rung at a
    time, every escalation carries a recorded unhealthy verdict and
    every de-escalation a clean one. Empty when honest. *)

val pp_summary : Format.formatter -> t -> unit
