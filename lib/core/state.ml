type config = {
  segment_bytes : int;
  vbuffer_bytes : int;
  classifier : Classifier.t;
  zone_refresh_period : Clock.time;
  store_cache_segments : int;
  classification : [ `Three_way | `Single_class ];
  pruning : [ `Dead_zones | `Oldest_active ];
  zone_widen_sabotage : int;
  governor : Governor.config;
  durable_wal : bool;
  recovery_skip_tail_check : bool;
}

let default_config =
  {
    segment_bytes = 64 * 1024;
    vbuffer_bytes = 8 * 1024 * 1024;
    classifier = Classifier.create ();
    zone_refresh_period = Clock.ms 2;
    store_cache_segments = 128;
    classification = `Three_way;
    pruning = `Dead_zones;
    zone_widen_sabotage = 0;
    governor = Governor.default_config;
    durable_wal = false;
    recovery_skip_tail_check = false;
  }

type prune_origin = [ `Prune1 | `Prune2 | `Cut ]

(* Flat counters for one GC pass, mode-independent. State cannot
   reference Vsorter/Vcutter result records (they are defined above it
   in the module order), so the backend hook reports a plain-int record
   that Driver converts back into the pipeline's native result types. *)
type gc_step = {
  gs_segments_dropped : int;
  gs_versions_pruned : int;
  gs_segments_flushed : int;
  gs_versions_stored : int;
  gs_segments_cut : int;
  gs_versions_cut : int;
  gs_bytes_reclaimed : int;
  gs_segments_scanned : int;
}

type gc_hook = {
  gh_name : string;
  gh_id : int;
  gh_step : now:Clock.time -> budget:int -> gc_step;
  gh_frontier : unit -> Timestamp.t;
  gh_check : unit -> string list;
  gh_gauges : unit -> (string * int) list;
}

type t = {
  config : config;
  txns : Txn_manager.t;
  llb : Llb.t;
  store : Version_store.t;
  store_cache : Buffer_pool.t;
  stats : Prune_stats.t;
  mutable zones : Zone_set.t;
  mutable zone_views : Read_view.t list;
  mutable llt_views : Read_view.t list;
  mutable last_refresh : Clock.time;
  mutable delta_llt_effective : Clock.time;
  open_segments : Segment.t option array;
  sealed : Segment.t Vec.t;
  seg_index : (int, Segment.t) Hashtbl.t;
  mutable next_seg_id : int;
  mutable zone_refreshes : int;
  mutable prune_audit :
    (now:Clock.time -> origin:prune_origin -> lo:Timestamp.t -> hi:Timestamp.t -> unit) option;
  governor : Governor.t;
  mutable shed_hook : (tid:Timestamp.t -> now:Clock.time -> bool) option;
  mutable post_maintain_space : (Clock.time * int) option;
  mutable wal : Wal.t option;
  mutable inrow_probe : (unit -> (int * int * Timestamp.t) list) option;
  mutable watchdog : Watchdog.t option;
  mutable shard_id : int;
  mutable zone_source : (unit -> Zone_set.t) option;
  mutable shared_mgr : bool;
  mutable indoubt_resolver : (tid:int -> coord:int -> int option) option;
  mutable ckpt_indoubt : (unit -> (int * int) list * (int * int) list) option;
  mutable gc_backend : gc_hook option;
}

let create ?(config = default_config) txns =
  {
    config;
    txns;
    llb = Llb.create ();
    store = Version_store.create ();
    store_cache =
      Buffer_pool.create ~name:"version-store" ~capacity_blocks:config.store_cache_segments;
    stats = Prune_stats.create ();
    zones = Zone_set.of_txn_manager txns;
    zone_views = [];
    llt_views = [];
    last_refresh = 0;
    delta_llt_effective = config.classifier.Classifier.delta_llt;
    open_segments = Array.make Vclass.count None;
    sealed = Vec.create ();
    seg_index = Hashtbl.create 256;
    next_seg_id = 0;
    zone_refreshes = 0;
    prune_audit = None;
    governor = Governor.create ~config:config.governor ();
    shed_hook = None;
    post_maintain_space = None;
    wal = None;
    inrow_probe = None;
    watchdog = None;
    shard_id = 0;
    zone_source = None;
    shared_mgr = false;
    indoubt_resolver = None;
    ckpt_indoubt = None;
    gc_backend = None;
  }

let gc_backend_name t =
  match t.gc_backend with Some h -> h.gh_name | None -> "vcutter"

(* The pruning policy, shared by vSorter (per-version and per-sealed-
   segment prunes) and vCutter (hardened-segment covers check). [lo, hi]
   is a commit-time visibility interval or a segment's [v_min, v_max]
   descriptor.

   [zone_widen_sabotage] deliberately weakens the containment test so
   that chaos campaigns can prove the invariant checker catches an
   over-eager rule; it must stay 0 in real runs. The sound test blocks
   pruning on any live boundary in the closed [lo, hi] — one unit of
   slack per side beyond strict visibility, since timestamps are unique
   integers. Sabotage level [w] blocks only boundaries in
   [lo+w+1, hi-w-1]: already at [w = 1] a transaction that began
   adjacent to an interval edge (its begin ts strictly inside the
   version's visibility interval) no longer blocks, so the rule is
   genuinely unsound — the paper's "widen the zone by one" mistake. *)
let interval_dead t ~lo ~hi =
  let w = t.config.zone_widen_sabotage in
  match t.config.pruning with
  | `Dead_zones ->
      if w = 0 then Zone_set.covers t.zones ~lo ~hi
      else
        let lo = lo + w + 1 and hi = hi - w - 1 in
        lo > hi || Zone_set.covers t.zones ~lo ~hi
  | `Oldest_active -> hi - w < Zone_set.oldest_boundary t.zones

let audit_prune t ~now ~origin ~lo ~hi =
  match t.prune_audit with Some f -> f ~now ~origin ~lo ~hi | None -> ()

let refresh_zones t ~now =
  (* Sharded instances take their zone snapshot from the global epoch
     broadcast instead of reading the live table directly — staleness is
     conservative (a broadcast's [now_ts] upper-bounds every interval it
     can cover, and transactions born later have begin timestamps at or
     above it), so a stale snapshot only under-prunes, never over-prunes. *)
  (t.zones <-
     (match t.zone_source with
     | Some source -> source ()
     | None -> Zone_set.of_txn_manager t.txns));
  t.zone_views <- Txn_manager.live_views t.txns;
  t.llt_views <- Txn_manager.llt_views t.txns ~now ~delta_llt:t.delta_llt_effective;
  t.last_refresh <- now;
  t.zone_refreshes <- t.zone_refreshes + 1

let maybe_refresh t ~now =
  if now - t.last_refresh >= t.config.zone_refresh_period then refresh_zones t ~now

let fresh_segment t ~cls ~now =
  let seg =
    Segment.create ~id:t.next_seg_id ~cls ~cap_bytes:t.config.segment_bytes ~now
  in
  Hashtbl.replace t.seg_index seg.Segment.id seg;
  t.next_seg_id <- t.next_seg_id + 1;
  seg

let log_wal t ~now payload =
  match t.wal with
  | Some wal when Wal.is_durable wal -> ignore (Wal.log wal ~at:now payload)
  | Some _ | None -> ()

let drop_segment t seg = Hashtbl.remove t.seg_index seg.Segment.id
let find_segment t id = Hashtbl.find_opt t.seg_index id

let open_bytes t =
  Array.fold_left
    (fun acc -> function Some s -> acc + s.Segment.used_bytes | None -> acc)
    0 t.open_segments

let buffered_bytes t =
  open_bytes t + Vec.fold_left (fun acc s -> acc + s.Segment.used_bytes) 0 t.sealed

let pop_oldest_sealed t =
  if Vec.is_empty t.sealed then None
  else begin
    let seg = Vec.get t.sealed 0 in
    Vec.drop_front t.sealed 1;
    Some seg
  end

let space_bytes t = buffered_bytes t + Version_store.live_bytes t.store
