(** Shared mutable state of a vDriver instance.

    vSorter and vCutter are separate modules operating over this record;
    [Driver] is the public facade. The zone set and the view snapshots
    are refreshed together, periodically (§3.3's accuracy/performance
    trade-off): staleness is conservative for pruning. *)

type config = {
  segment_bytes : int;  (** version segment size (Figure 19 knob) *)
  vbuffer_bytes : int;  (** vBuffer budget; 8 MiB in the paper's runs *)
  classifier : Classifier.t;
  zone_refresh_period : Clock.time;  (** how often [Z_T] is rebuilt *)
  store_cache_segments : int;  (** hardened segments kept hot for reads *)
  classification : [ `Three_way | `Single_class ];
      (** ablation: [`Single_class] stores every version in one cluster,
          so LLT-pinned versions suspend everyone's cleaning *)
  pruning : [ `Dead_zones | `Oldest_active ];
      (** ablation: [`Oldest_active] replaces Theorem 3.5 with the
          age-old criterion (reclaim only below the oldest live
          transaction) *)
  zone_widen_sabotage : int;
      (** chaos-testing only: widen every dead zone by this many
          timestamp units before the containment test, making pruning
          deliberately unsound. 0 (the default, and the only sound
          value) in real runs; the fault harness uses nonzero values to
          prove its invariant checker catches a broken rule. *)
  governor : Governor.config;
      (** version-space overload protection (quota, ladder thresholds,
          snapshot-too-old policy); disabled by default *)
  durable_wal : bool;
      (** switch the engine's WAL to typed-record durable mode and log
          every pipeline event (relocations, hardens, drops, cuts,
          checkpoints) so a crash can be recovered by replay. Off by
          default — non-durable runs stay bit-identical to the seed. *)
  recovery_skip_tail_check : bool;
      (** sabotage knob: make restart recovery replay the log tail
          without CRC verification. A torn or corrupt tail then gets
          replayed as if durable — the post-recovery invariants must
          catch the divergence. Never enable outside the harness. *)
}

val default_config : config

type prune_origin = [ `Prune1 | `Prune2 | `Cut ]
(** Which stage discarded a version: relocation-time prune, sealed
    segment drop, or vCutter's hardened-segment cut. *)

type gc_step = {
  gs_segments_dropped : int;
  gs_versions_pruned : int;
  gs_segments_flushed : int;
  gs_versions_stored : int;
  gs_segments_cut : int;
  gs_versions_cut : int;
  gs_bytes_reclaimed : int;
  gs_segments_scanned : int;
}
(** Flat counters for one GC maintenance pass. State sits below
    {!Vsorter}/{!Vcutter} in the module order, so the backend hook
    reports this mode-independent record and {!Driver.maintain}
    converts it back into the pipeline's native result types. *)

type gc_hook = {
  gh_name : string;  (** backend name, e.g. ["vcutter"], ["range"], ["bounded"] *)
  gh_id : int;  (** stable numeric id for deterministic gauges *)
  gh_step : now:Clock.time -> budget:int -> gc_step;
      (** one full maintenance pass (buffer + store) at the governor's
          per-rung segment [budget] *)
  gh_frontier : unit -> Timestamp.t;
      (** the backend's reclamation frontier: the oldest timestamp it
          still considers potentially live *)
  gh_check : unit -> string list;
      (** backend-relative online invariant (vCutter: cut completeness
          within budget; BBF+: the resident dead-version bound);
          nonempty means a violation *)
  gh_gauges : unit -> (string * int) list;
      (** backend-specific observability counters for benches/reports *)
}
(** A pluggable GC backend (DESIGN §4h). When installed it replaces the
    sweep-then-cut pair inside {!Driver.maintain} wholesale; the default
    [None] keeps the seed's vSorter/vCutter path, bit-identical. *)

type t = {
  config : config;
  txns : Txn_manager.t;
  llb : Llb.t;
  store : Version_store.t;
  store_cache : Buffer_pool.t;
  stats : Prune_stats.t;
  mutable zones : Zone_set.t;
  mutable zone_views : Read_view.t list;
  mutable llt_views : Read_view.t list;
  mutable last_refresh : Clock.time;
  mutable delta_llt_effective : Clock.time;
  open_segments : Segment.t option array;  (** one per {!Vclass.t} *)
  sealed : Segment.t Vec.t;  (** full segments aging in vBuffer, oldest first *)
  seg_index : (int, Segment.t) Hashtbl.t;  (** live segments by id *)
  mutable next_seg_id : int;
  mutable zone_refreshes : int;
  mutable prune_audit :
    (now:Clock.time -> origin:prune_origin -> lo:Timestamp.t -> hi:Timestamp.t -> unit) option;
      (** online safety oracle: called with the commit-time visibility
          interval of {e every} version the instance discards, at the
          moment of the discard. The fault harness installs a checker
          that replays Definition 3.3 against the live table. *)
  governor : Governor.t;  (** overload-protection ladder over {!space_bytes} *)
  mutable shed_hook : (tid:Timestamp.t -> now:Clock.time -> bool) option;
      (** installed by the workload runner: abort the transaction with
          this begin timestamp {e through the engine} (rolling back its
          writes) and return whether a victim was actually killed. When
          absent the driver falls back to aborting directly in the
          transaction manager, which is only safe for read-only
          victims. *)
  mutable post_maintain_space : (Clock.time * int) option;
      (** time and {!space_bytes} reading at the end of the most recent
          governed maintenance pass — the checkpoint the space-quota
          invariant audits. Cleared by a crash-restart. *)
  mutable wal : Wal.t option;
      (** the engine's log, installed when [durable_wal] is set so the
          pipeline stages ({!Vsorter}, {!Vcutter}) can write their
          typed records and the invariant checker can rescan them. *)
  mutable inrow_probe : (unit -> (int * int * Timestamp.t) list) option;
      (** installed by the engine: snapshot of the current in-row image
          as [(rid, payload, vs)], sorted by rid — what the
          post-recovery durability invariant compares against the log
          oracle without the fault library depending on the engines. *)
  mutable watchdog : Watchdog.t option;
      (** installed by the workload runner when the liveness watchdog is
          armed: {!Vsorter.sweep}, {!Vcutter.step} and
          {!Driver.maintain} post their progress beats here, and the
          invariant sweep replays its ladder honesty. [None] (the
          default) keeps every pipeline path beat-free and runs
          bit-identical to the seed. *)
  mutable shard_id : int;
      (** which keyspace shard this pipeline instance serves (0 = the
          unsharded default — one global pipeline, as in the seed). *)
  mutable zone_source : (unit -> Zone_set.t) option;
      (** installed by the shard group: {!refresh_zones} pulls the zone
          snapshot from the global epoch broadcast instead of reading
          the (shared) live table directly. Broadcast staleness is
          conservative — it can only delay pruning, never admit an
          unsound prune — which is what keeps Theorem 3.5 global while
          prune decisions stay shard-local. *)
  mutable shared_mgr : bool;
      (** true when this instance shares its transaction manager with
          other shards: restart recovery must then {e merge} its
          recovered outcomes into the manager instead of resetting it
          (the group resets once, before the per-shard restarts). *)
  mutable indoubt_resolver : (tid:int -> coord:int -> int option) option;
      (** installed by the shard group: answers a 2PC in-doubt
          transaction from the coordinator shard's durable log —
          [Some cts] iff a commit decision survived there. *)
  mutable ckpt_indoubt : (unit -> (int * int) list * (int * int) list) option;
      (** installed by the shard group: snapshot of
          [(prepared, decisions)] 2PC state to persist in this shard's
          checkpoints (see {!Checkpoint.t}). *)
  mutable gc_backend : gc_hook option;
      (** installed by [Gc_backend.install]: routes every maintenance
          pass through a pluggable collector instead of the built-in
          sweep-then-cut pair. [None] (the default) runs the seed path
          byte-identically. *)
}

val create : ?config:config -> Txn_manager.t -> t

val gc_backend_name : t -> string
(** Name of the installed GC backend; ["vcutter"] when none is
    installed (the built-in path {e is} the vCutter design). *)

val interval_dead : t -> lo:Timestamp.t -> hi:Timestamp.t -> bool
(** The configured pruning predicate over the current zone snapshot
    ([`Dead_zones] containment or the [`Oldest_active] horizon),
    including any [zone_widen_sabotage]. Shared by vSorter and vCutter
    so the policy — and the sabotage — has exactly one definition. *)

val audit_prune :
  t -> now:Clock.time -> origin:prune_origin -> lo:Timestamp.t -> hi:Timestamp.t -> unit
(** Notify the installed {!field-prune_audit} hook, if any. *)

val refresh_zones : t -> now:Clock.time -> unit
(** Rebuild [zones], [zone_views] and [llt_views] from the live table. *)

val maybe_refresh : t -> now:Clock.time -> unit
(** Refresh if [zone_refresh_period] has elapsed. *)

val log_wal : t -> now:Clock.time -> Wal_record.payload -> unit
(** Append a typed record to the installed WAL, if durable. Dropped
    appends (fail-point) are already counted conservatively by
    {!Wal.log}; pipeline callers fire and forget. *)

val fresh_segment : t -> cls:Vclass.t -> now:Clock.time -> Segment.t
(** Allocate and index a new filling segment. *)

val drop_segment : t -> Segment.t -> unit
(** Remove a segment from the id index (after a cut or an all-dead
    flush). *)

val find_segment : t -> int -> Segment.t option

val open_bytes : t -> int
(** Bytes currently buffered in open (filling) segments. *)

val buffered_bytes : t -> int
(** Open plus sealed segments — total vBuffer residency, compared
    against the [vbuffer_bytes] budget. *)

val pop_oldest_sealed : t -> Segment.t option
(** Remove and return the oldest sealed segment (flush order). *)

val space_bytes : t -> int
(** vBuffer residency plus hardened store — the version-space overhead
    the Figure 13 space curves report. *)
