type rung = Normal | Pressured | Emergency | Shedding

let rung_name = function
  | Normal -> "normal"
  | Pressured -> "pressured"
  | Emergency -> "emergency"
  | Shedding -> "shedding"

let rung_index = function Normal -> 0 | Pressured -> 1 | Emergency -> 2 | Shedding -> 3

let rung_of_index = function
  | 0 -> Normal
  | 1 -> Pressured
  | 2 -> Emergency
  | 3 -> Shedding
  | i -> invalid_arg (Printf.sprintf "Governor.rung_of_index: %d" i)

let all_rungs = [ Normal; Pressured; Emergency; Shedding ]
let pp_rung fmt r = Format.pp_print_string fmt (rung_name r)

type config = {
  hard_quota_bytes : int;
  pressured_frac : float;
  emergency_frac : float;
  shedding_frac : float;
  hysteresis_frac : float;
  shed_grace : Clock.time;
  shed_batch : int;
  normal_max_segments : int;
  pressured_max_segments : int;
  pressured_gc_scale : float;
  emergency_gc_scale : float;
  quota_ignore_sabotage : bool;
}

let default_config =
  {
    hard_quota_bytes = 0;
    pressured_frac = 0.55;
    emergency_frac = 0.75;
    shedding_frac = 0.9;
    hysteresis_frac = 0.08;
    shed_grace = Clock.ms 100;
    shed_batch = 4;
    normal_max_segments = 64;
    pressured_max_segments = 256;
    pressured_gc_scale = 0.25;
    emergency_gc_scale = 0.1;
    quota_ignore_sabotage = false;
  }

let governed ~quota_bytes = { default_config with hard_quota_bytes = quota_bytes }

type transition = { at : Clock.time; from_rung : rung; to_rung : rung; space_bytes : int }

type t = {
  config : config;
  mutable rung : rung;
  mutable entered_at : Clock.time;  (* when the current rung was entered *)
  mutable last_seen : Clock.time;  (* newest [now] passed to observe *)
  dwell : Clock.time array;  (* completed residences, indexed by rung *)
  mutable log : transition list;  (* newest first *)
  mutable sheds : int;
  mutable assists : int;
  headroom : Series.t;
}

let create ?(config = default_config) () =
  if config.hard_quota_bytes < 0 then invalid_arg "Governor.create: negative quota";
  if
    not
      (config.pressured_frac > 0.
      && config.pressured_frac < config.emergency_frac
      && config.emergency_frac < config.shedding_frac
      && config.shedding_frac <= 1.)
  then invalid_arg "Governor.create: thresholds must satisfy 0 < p < e < s <= 1";
  if config.hysteresis_frac < 0. || config.hysteresis_frac >= 1. then
    invalid_arg "Governor.create: hysteresis_frac must be in [0, 1)";
  if config.shed_batch <= 0 then invalid_arg "Governor.create: shed_batch must be positive";
  {
    config;
    rung = Normal;
    entered_at = 0;
    last_seen = 0;
    dwell = Array.make 4 0;
    log = [];
    sheds = 0;
    assists = 0;
    headroom = Series.create "quota-headroom";
  }

let config t = t.config
let enabled t = t.config.hard_quota_bytes > 0 && not t.config.quota_ignore_sabotage
let hard_quota t = t.config.hard_quota_bytes
let rung t = t.rung

let enter_threshold config r =
  let frac =
    match r with
    | Normal -> 0.
    | Pressured -> config.pressured_frac
    | Emergency -> config.emergency_frac
    | Shedding -> config.shedding_frac
  in
  int_of_float (frac *. float_of_int config.hard_quota_bytes)

let hysteresis_floor config r =
  int_of_float (float_of_int (enter_threshold config r) *. (1. -. config.hysteresis_frac))

let transition t ~now ~space_bytes to_rung =
  let from_rung = t.rung in
  t.dwell.(rung_index from_rung) <-
    t.dwell.(rung_index from_rung) + max 0 (now - t.entered_at);
  t.rung <- to_rung;
  t.entered_at <- now;
  t.log <- { at = now; from_rung; to_rung; space_bytes } :: t.log;
  Metrics.bump "governor.transitions";
  if Trace.on () then
    Trace.instant Trace.Governor
      (if rung_index to_rung > rung_index from_rung then "escalate" else "de-escalate")
      ~at:now
      [
        ("from", Trace.S (rung_name from_rung));
        ("to", Trace.S (rung_name to_rung));
        ("space_bytes", Trace.I space_bytes);
      ]

let observe t ~now ~space_bytes =
  if not (enabled t) then Normal
  else begin
    t.last_seen <- max t.last_seen now;
    let r = rung_index t.rung in
    (* One adjacent step per observation: up when the next rung's
       threshold is reached, down when we are under this rung's
       hysteresis floor. The band between the floor and the next
       threshold is the no-flap zone. *)
    if r < 3 && space_bytes >= enter_threshold t.config (rung_of_index (r + 1)) then
      transition t ~now ~space_bytes (rung_of_index (r + 1))
    else if r > 0 && space_bytes < hysteresis_floor t.config t.rung then
      transition t ~now ~space_bytes (rung_of_index (r - 1));
    t.rung
  end

let max_segments t =
  match t.rung with
  | Normal -> t.config.normal_max_segments
  | Pressured | Emergency | Shedding -> t.config.pressured_max_segments

let gc_scale t =
  match t.rung with
  | Normal -> 1.0
  | Pressured -> t.config.pressured_gc_scale
  | Emergency | Shedding -> t.config.emergency_gc_scale

let emergency_active t = match t.rung with Emergency | Shedding -> true | _ -> false
let shed_active t = t.rung = Shedding
let note_shed t n =
  t.sheds <- t.sheds + n;
  Metrics.bump_by "governor.sheds" n

let sheds t = t.sheds

let note_assist t =
  t.assists <- t.assists + 1;
  Metrics.bump "governor.assists"

let assists t = t.assists

let note_headroom t ~now ~space_bytes =
  if enabled t then begin
    Series.add t.headroom ~time:(Clock.to_seconds now)
      ~value:(float_of_int (max 0 (t.config.hard_quota_bytes - space_bytes)));
    (* A counter-phase event renders the space curve as a graph track in
       chrome://tracing, right above the ladder's instants. *)
    Trace.count Trace.Governor "space_bytes" ~at:now space_bytes
  end

let headroom_series t = t.headroom
let transitions t = List.rev t.log

let dwell_times t ~now =
  List.map
    (fun r ->
      let d = t.dwell.(rung_index r) in
      let d = if r = t.rung then d + max 0 (now - t.entered_at) else d in
      (r, d))
    all_rungs

let check_ladder t =
  let check acc tr =
    let step = rung_index tr.to_rung - rung_index tr.from_rung in
    if abs step <> 1 then
      Format.asprintf "non-adjacent transition %a->%a at %a" pp_rung tr.from_rung pp_rung
        tr.to_rung Clock.pp tr.at
      :: acc
    else if step = 1 then begin
      let need = enter_threshold t.config tr.to_rung in
      if tr.space_bytes < need then
        Format.asprintf
          "escalation %a->%a at %a saw %d bytes, below the %d-byte threshold" pp_rung
          tr.from_rung pp_rung tr.to_rung Clock.pp tr.at tr.space_bytes need
        :: acc
      else acc
    end
    else begin
      let floor = hysteresis_floor t.config tr.from_rung in
      if tr.space_bytes >= floor then
        Format.asprintf
          "de-escalation %a->%a at %a saw %d bytes, above the %d-byte hysteresis floor"
          pp_rung tr.from_rung pp_rung tr.to_rung Clock.pp tr.at tr.space_bytes floor
        :: acc
      else acc
    end
  in
  (* Transitions must also chain: each one starts from the rung the
     previous one reached. *)
  let rec chained acc prev = function
    | [] -> acc
    | tr :: rest ->
        let acc =
          if tr.from_rung <> prev then
            Format.asprintf "transition at %a leaves %a but the ladder was at %a" Clock.pp
              tr.at pp_rung tr.from_rung pp_rung prev
            :: acc
          else acc
        in
        chained (check acc tr) tr.to_rung rest
  in
  List.rev (chained [] Normal (transitions t))

let pp_transition fmt tr =
  Format.fprintf fmt "%a %a->%a (%d B)" Clock.pp tr.at pp_rung tr.from_rung pp_rung
    tr.to_rung tr.space_bytes

let pp_summary fmt ~now t =
  if not (t.config.hard_quota_bytes > 0) then Format.fprintf fmt "governor: disabled"
  else begin
    Format.fprintf fmt "@[<v>governor: quota=%d B rung=%a sheds=%d assists=%d%s@ "
      t.config.hard_quota_bytes pp_rung t.rung t.sheds t.assists
      (if t.config.quota_ignore_sabotage then " SABOTAGED" else "");
    Format.fprintf fmt "dwell:";
    List.iter
      (fun (r, d) -> Format.fprintf fmt " %s=%a" (rung_name r) Clock.pp d)
      (dwell_times t ~now);
    let trs = transitions t in
    Format.fprintf fmt "@ transitions (%d):" (List.length trs);
    List.iter (fun tr -> Format.fprintf fmt "@ %a" pp_transition tr) trs;
    Format.fprintf fmt "@]"
  end
