(** vCutter (§3.4): version segment cleaning.

    Periodically checks every hardened segment's VS descriptor
    [\[v_min, v_max\]] against the current dead zones; a covered segment
    is dead in its entirety and is cut. Cutting removes its versions
    from their LLB chains through the cut-and-fix state machine
    (holes, Fixup) and the collaborative TAS protocol against concurrent
    vSorter insertions. *)

type result = {
  segments_cut : int;
  versions_cut : int;
  bytes_reclaimed : int;
  segments_scanned : int;
}

val cut_segment : State.t -> Segment.t -> now:Clock.time -> int * int
(** Cut one hardened segment: delete its remaining live nodes from
    their chains (through the collaborative TAS protocol), audit each
    deletion, remove the segment from the store, the cache and the
    index, and log the cut. Returns [(versions deleted, bytes freed)].
    Exported so pluggable GC backends reuse the exact seed reclaim
    path; already-deleted nodes are skipped (and not re-audited), so a
    backend that reclaims per-version may finish a segment through this
    without double counting. *)

val step : State.t -> now:Clock.time -> max_segments:int -> result
(** One cleaning pass: refresh zones, scan descriptors, cut up to
    [max_segments] dead segments. *)
