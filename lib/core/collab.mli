(** Collaborative version cleaning (§3.4, Figure 9).

    When vCutter wants to logically delete a version from a chain at the
    same moment vSorter wants to insert a newer version into that chain,
    both race on a per-chain flag with an atomic test-and-set instead of
    a chain latch. Whoever installs its footprint first wins and is
    responsible for deleting the dead version:

    - if {b vSorter} wins it performs both tasks (delete, then insert);
    - if {b vCutter} wins it deletes and fixes up, and vSorter —
      discovering the cutter's footprint — spin-waits for the cutter's
      completion mark before doing its own insertion.

    The invariant is that the dead version is deleted by {e exactly} the
    winner, never twice and never zero times. This module implements the
    protocol over [Atomic] so that the real multi-domain tests can hammer
    it; the discrete-event engines call it too (trivially uncontended
    there). *)

type t

val create : unit -> t
(** One [t] arbitrates one cleaning episode: a specific dead version
    that vCutter wants to delete while an insertion into the same chain
    may be in flight. Create a fresh instance per episode. *)

val default_spin_budget : int
(** 4096 busy iterations before the losing sorter falls back to
    yielding. *)

val sorter :
  ?spin_budget:int ->
  ?yield:(unit -> unit) ->
  t ->
  delete:(unit -> unit) ->
  insert:(unit -> unit) ->
  [ `Did_both | `Inserted_after_cutter ]
(** vSorter's side: race for the flag; run [delete] only on a win; run
    [insert] in all cases (after the cutter finished, on a loss). The
    flag is released afterwards so the chain can host later races.

    The losing sorter's wait is {e bounded}: it busy-spins
    ([Domain.cpu_relax]) for at most [spin_budget] iterations, then
    calls [yield] once per further iteration — pass the hosting
    scheduler's yield so a cutter delayed inside its critical window
    (the [Collab_delay] fault) degrades to cooperative waiting instead
    of livelocking the domain. [yield] defaults to [Domain.cpu_relax]
    when the caller has nothing better. *)

val cutter :
  ?delay:(unit -> unit) ->
  t ->
  delete:(unit -> unit) ->
  fixup:(unit -> unit) ->
  [ `Won | `Lost ]
(** vCutter's side: on a win, delete the dead version and fix broken
    links, then publish completion; on a loss return immediately —
    the sorter took over the deletion (vCutter must not block, it is
    "battling with numerous foreground transactions"). [delay] is the
    fault-injection hook: it runs {e between} the fixup and the
    completion mark, exactly the window that forces long sorter
    waits. *)

val races_lost_by_sorter : t -> int
(** How often the sorter had to spin-wait (observability for tests). *)

val last_spin_count : t -> int
(** Iterations the sorter waited in this episode (0 if it won). *)

val max_spin_observed : unit -> int
(** Longest sorter wait seen by any episode since the last
    {!reset_spin_stats} — the satellite gauge the multi-domain stress
    asserts against. *)

val yields_observed : unit -> int
(** Wait iterations that fell back to yielding (budget exhausted). *)

val reset_spin_stats : unit -> unit
