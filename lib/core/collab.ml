(* Flag values: the "winner constant" (free) plus the two footprints and
   the cutter's completion mark. *)
let free = 0
let sorter_footprint = 1
let cutter_footprint = 2
let cutter_done = 3

type t = { flag : int Atomic.t; sorter_waits : int Atomic.t; spins : int Atomic.t }

let create () =
  { flag = Atomic.make free; sorter_waits = Atomic.make 0; spins = Atomic.make 0 }

let default_spin_budget = 4096

(* Cross-episode observability: the longest wait any sorter ever sat
   through, and how many iterations fell back to yielding. Only the
   contended (multi-domain) path touches these — the discrete-event
   engines never race, so determinism is unaffected. *)
let max_spin_seen = Atomic.make 0
let yields_seen = Atomic.make 0

let rec note_spin_max n =
  let cur = Atomic.get max_spin_seen in
  if n > cur && not (Atomic.compare_and_set max_spin_seen cur n) then note_spin_max n

let max_spin_observed () = Atomic.get max_spin_seen
let yields_observed () = Atomic.get yields_seen

let reset_spin_stats () =
  Atomic.set max_spin_seen 0;
  Atomic.set yields_seen 0

let sorter ?(spin_budget = default_spin_budget) ?yield t ~delete ~insert =
  if Atomic.compare_and_set t.flag free sorter_footprint then begin
    (* vSorter won: it is delegated the whole cleaning. The footprint
       stays — the episode is one-shot, so a late cutter must lose. *)
    delete ();
    insert ();
    `Did_both
  end
  else begin
    Atomic.incr t.sorter_waits;
    (* The cutter owns the version; wait for its completion mark. The
       wait is bounded: up to [spin_budget] busy iterations, then each
       further iteration yields instead of spinning — a cutter delayed
       between its footprint and its completion mark (the Collab_delay
       fault) can no longer livelock the sorter's domain. *)
    let spins = ref 0 in
    while Atomic.get t.flag <> cutter_done do
      incr spins;
      if !spins > spin_budget then begin
        Atomic.incr yields_seen;
        match yield with Some f -> f () | None -> Domain.cpu_relax ()
      end
      else Domain.cpu_relax ()
    done;
    Atomic.set t.spins !spins;
    note_spin_max !spins;
    insert ();
    `Inserted_after_cutter
  end

let cutter ?delay t ~delete ~fixup =
  if Atomic.compare_and_set t.flag free cutter_footprint then begin
    delete ();
    fixup ();
    (* Fault hook: hold the flag between the fixup and the completion
       mark, the window a stalled cutter forces long sorter waits in. *)
    (match delay with Some f -> f () | None -> ());
    Atomic.set t.flag cutter_done;
    `Won
  end
  else `Lost

let races_lost_by_sorter t = Atomic.get t.sorter_waits
let last_spin_count t = Atomic.get t.spins
