type t = {
  mutable relocated : int;
  prune1 : int array;
  prune2 : int array;
  stored : int array;
  mutable lost : int;
}

let create () =
  {
    relocated = 0;
    prune1 = Array.make Vclass.count 0;
    prune2 = Array.make Vclass.count 0;
    stored = Array.make Vclass.count 0;
    lost = 0;
  }

let bump a cls = a.(Vclass.to_index cls) <- a.(Vclass.to_index cls) + 1
let note_relocated t = t.relocated <- t.relocated + 1
let note_prune1 t cls = bump t.prune1 cls
let note_prune2 t cls = bump t.prune2 cls
let note_stored t cls = bump t.stored cls
let note_lost t n =
  if n < 0 then invalid_arg "Prune_stats.note_lost: negative count";
  t.lost <- t.lost + n

let sum = Array.fold_left ( + ) 0
let relocated t = t.relocated
let lost t = t.lost
let in_flight t = t.relocated - sum t.prune1 - sum t.prune2 - sum t.stored - t.lost
let prune1 t cls = t.prune1.(Vclass.to_index cls)
let prune2 t cls = t.prune2.(Vclass.to_index cls)
let stored t cls = t.stored.(Vclass.to_index cls)
let prune1_total t = sum t.prune1
let prune2_total t = sum t.prune2
let stored_total t = sum t.stored

let reset t =
  t.relocated <- 0;
  t.lost <- 0;
  Array.fill t.prune1 0 Vclass.count 0;
  Array.fill t.prune2 0 Vclass.count 0;
  Array.fill t.stored 0 Vclass.count 0

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun cls ->
      Format.fprintf fmt "%-4s 1st=%d 2nd=%d stored=%d@ " (Vclass.to_string cls) (prune1 t cls)
        (prune2 t cls) (stored t cls))
    Vclass.all;
  if t.lost > 0 then Format.fprintf fmt "lost=%d@ " t.lost;
  Format.fprintf fmt "@]"
