(* All cells are Atomics so the counters stay exact when vSorter /
   vCutter / recovery bump them from concurrent domains (the Domains
   runner holds the engine latch around pipeline calls today, but the
   stats must not silently rely on that). Single-threaded the values
   are identical to the plain-ref version. *)

type t = {
  relocated : int Atomic.t;
  prune1 : int Atomic.t array;
  prune2 : int Atomic.t array;
  stored : int Atomic.t array;
  lost : int Atomic.t;
}

let cells () = Array.init Vclass.count (fun _ -> Atomic.make 0)

let create () =
  {
    relocated = Atomic.make 0;
    prune1 = cells ();
    prune2 = cells ();
    stored = cells ();
    lost = Atomic.make 0;
  }

let bump a cls = Atomic.incr a.(Vclass.to_index cls)
let note_relocated t = Atomic.incr t.relocated
let note_prune1 t cls = bump t.prune1 cls
let note_prune2 t cls = bump t.prune2 cls
let note_stored t cls = bump t.stored cls

let note_lost t n =
  if n < 0 then invalid_arg "Prune_stats.note_lost: negative count";
  ignore (Atomic.fetch_and_add t.lost n : int)

let sum = Array.fold_left (fun acc c -> acc + Atomic.get c) 0
let relocated t = Atomic.get t.relocated
let lost t = Atomic.get t.lost

let in_flight t =
  relocated t - sum t.prune1 - sum t.prune2 - sum t.stored - lost t

let prune1 t cls = Atomic.get t.prune1.(Vclass.to_index cls)
let prune2 t cls = Atomic.get t.prune2.(Vclass.to_index cls)
let stored t cls = Atomic.get t.stored.(Vclass.to_index cls)
let prune1_total t = sum t.prune1
let prune2_total t = sum t.prune2
let stored_total t = sum t.stored

let reset t =
  Atomic.set t.relocated 0;
  Atomic.set t.lost 0;
  let zero = Array.iter (fun c -> Atomic.set c 0) in
  zero t.prune1;
  zero t.prune2;
  zero t.stored

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun cls ->
      Format.fprintf fmt "%-4s 1st=%d 2nd=%d stored=%d@ " (Vclass.to_string cls) (prune1 t cls)
        (prune2 t cls) (stored t cls))
    Vclass.all;
  if lost t > 0 then Format.fprintf fmt "lost=%d@ " (lost t);
  Format.fprintf fmt "@]"
