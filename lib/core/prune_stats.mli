(** Per-class pruning breakdown — the Figure 15 instrumentation.

    Every relocated version is classified (even when immediately pruned;
    the paper does "extra work to obtain version class information just
    for this evaluation") and then counted into exactly one bucket:
    pruned at relocation (1st prune), pruned at segment flush
    (2nd prune), or written to version space (no prune). *)

type t

val create : unit -> t
val note_relocated : t -> unit
val note_prune1 : t -> Vclass.t -> unit
val note_prune2 : t -> Vclass.t -> unit
val note_stored : t -> Vclass.t -> unit

val note_lost : t -> int -> unit
(** Versions that were buffered when a crash wiped the vBuffer: neither
    pruned nor stored, gone with the restart (§3.5). Keeps the
    conservation law [relocated = prune1 + prune2 + stored + lost +
    in_flight] exact across crashes — the fault harness asserts it. *)

val relocated : t -> int
val lost : t -> int

val in_flight : t -> int
(** Relocated versions still buffered in open or sealed segments (not
    yet pruned, hardened, or lost to a crash). *)

val prune1 : t -> Vclass.t -> int
val prune2 : t -> Vclass.t -> int
val stored : t -> Vclass.t -> int
val prune1_total : t -> int
val prune2_total : t -> int
val stored_total : t -> int
val reset : t -> unit
val pp : Format.formatter -> t -> unit
