(* Liveness watchdog: a heartbeat/progress registry over the cleaning
   pipeline plus a four-rung escalation ladder that cures stalls and
   sheds zombie pins. Mirrors the governor's ladder design: adjacent
   transitions only, a logged trail, and a [check_ladder] honesty
   replay the invariant sweep asserts continuously. *)

type rung = Healthy | Nudge | Restart | Sync_reclaim | Shed

let rung_name = function
  | Healthy -> "healthy"
  | Nudge -> "nudge"
  | Restart -> "restart"
  | Sync_reclaim -> "sync-reclaim"
  | Shed -> "shed"

let rung_index = function
  | Healthy -> 0
  | Nudge -> 1
  | Restart -> 2
  | Sync_reclaim -> 3
  | Shed -> 4

let rung_of_index = function
  | 0 -> Healthy
  | 1 -> Nudge
  | 2 -> Restart
  | 3 -> Sync_reclaim
  | 4 -> Shed
  | i -> invalid_arg (Printf.sprintf "Watchdog.rung_of_index: %d" i)

let all_rungs = [ Healthy; Nudge; Restart; Sync_reclaim; Shed ]
let pp_rung fmt r = Format.pp_print_string fmt (rung_name r)

type config = {
  enabled : bool;
  check_period : Clock.time;
  stall_timeout : Clock.time;
  escalation_cooldown : Clock.time;
  shed_batch : int;
}

let default_config =
  {
    enabled = true;
    check_period = Clock.ms 5;
    stall_timeout = Clock.ms 25;
    escalation_cooldown = Clock.ms 10;
    shed_batch = 4;
  }

(* The reclamation-lag bound L the watchdog guarantees (DESIGN §4e):
   detection of a stall, the full climb to the top rung, the cleaner
   revival taking effect within one maintenance period, plus the lag
   monitor's own observation granularity. Every term is a config knob,
   so the bound is computable before the run and the [reclamation-lag]
   invariant can assert it online. *)
let lag_bound config ~gc_period =
  config.stall_timeout + config.check_period
  + (3 * (config.escalation_cooldown + config.check_period))
  + (2 * max config.check_period gc_period)
  + (4 * config.check_period)

type source = {
  mutable beats : int;  (* monotone pass counter *)
  mutable last_advance : Clock.time;  (* when [beats] last moved *)
  watched : bool;  (* false: counter only, exempt from stall detection *)
}

type transition = {
  at : Clock.time;
  from_rung : rung;
  to_rung : rung;
  stalled : string list;  (* sources past the deadline at the verdict *)
  zombies : int;  (* lease-expired transactions at the verdict *)
}

type actions = {
  nudge : now:Clock.time -> unit;
  restart_cleaners : now:Clock.time -> unit;
  sync_reclaim : now:Clock.time -> unit;
  shed_zombies : max:int -> now:Clock.time -> int;
  zombie_count : now:Clock.time -> int;
}

type t = {
  config : config;
  sources : (string, source) Hashtbl.t;
  mutable rung : rung;
  mutable entered_at : Clock.time;
  mutable log : transition list;  (* newest first *)
  mutable escalations : int;
  mutable nudges : int;
  mutable restarts : int;
  mutable sync_reclaims : int;
  mutable zombie_cancels : int;
  mutable max_stall : Clock.time;
  mutable polls : int;
}

let create ?(config = default_config) () =
  if config.check_period <= 0 then invalid_arg "Watchdog.create: check_period must be positive";
  if config.stall_timeout <= 0 then invalid_arg "Watchdog.create: stall_timeout must be positive";
  if config.escalation_cooldown < 0 then
    invalid_arg "Watchdog.create: negative escalation_cooldown";
  if config.shed_batch <= 0 then invalid_arg "Watchdog.create: shed_batch must be positive";
  {
    config;
    sources = Hashtbl.create 8;
    rung = Healthy;
    entered_at = 0;
    log = [];
    escalations = 0;
    nudges = 0;
    restarts = 0;
    sync_reclaims = 0;
    zombie_cancels = 0;
    max_stall = 0;
    polls = 0;
  }

let config t = t.config
let enabled t = t.config.enabled
let rung t = t.rung

let register ?(watch = true) t name ~now =
  if not (Hashtbl.mem t.sources name) then
    Hashtbl.replace t.sources name { beats = 0; last_advance = now; watched = watch }

let beat t name ~now =
  match Hashtbl.find_opt t.sources name with
  | Some src ->
      src.beats <- src.beats + 1;
      src.last_advance <- max src.last_advance now
  | None -> Hashtbl.replace t.sources name { beats = 1; last_advance = now; watched = true }

let progress t name = match Hashtbl.find_opt t.sources name with Some s -> s.beats | None -> 0

let sources t =
  List.sort compare
    (Hashtbl.fold (fun name src acc -> (name, src.beats, src.last_advance) :: acc) t.sources [])

let stalled_sources t ~now =
  List.sort compare
    (Hashtbl.fold
       (fun name src acc ->
         if src.watched && now - src.last_advance > t.config.stall_timeout then name :: acc
         else acc)
       t.sources [])

let transition t ~now ~stalled ~zombies to_rung =
  let from_rung = t.rung in
  t.rung <- to_rung;
  t.entered_at <- now;
  t.log <- { at = now; from_rung; to_rung; stalled; zombies } :: t.log;
  let up = rung_index to_rung > rung_index from_rung in
  if up then t.escalations <- t.escalations + 1;
  Metrics.bump "watchdog.transitions";
  if up then Metrics.bump "watchdog.escalations";
  if Trace.on () then
    Trace.instant Trace.Watchdog
      (if up then "escalate" else "de-escalate")
      ~at:now
      [
        ("from", Trace.S (rung_name from_rung));
        ("to", Trace.S (rung_name to_rung));
        ("stalled", Trace.I (List.length stalled));
        ("zombies", Trace.I zombies);
      ]

let poll t ~now ~actions =
  t.polls <- t.polls + 1;
  (* Verdict first: which sources missed their deadline, how many
     transactions are past their lease. Both are computed whether or
     not the ladder is enabled, so a disabled watchdog still observes
     (and the sabotage run still reports max_stall honestly). *)
  Hashtbl.iter
    (fun _ src ->
      if src.watched then begin
        let stall = now - src.last_advance in
        if stall > t.max_stall then t.max_stall <- stall
      end)
    t.sources;
  let stalled = stalled_sources t ~now in
  let zombies = actions.zombie_count ~now in
  let unhealthy = stalled <> [] || zombies > 0 in
  if Trace.on () && unhealthy then
    Trace.instant Trace.Watchdog "unhealthy" ~at:now
      [
        ("stalled", Trace.I (List.length stalled));
        ("zombies", Trace.I zombies);
        ("rung", Trace.S (rung_name t.rung));
      ];
  if t.config.enabled then
    if unhealthy then begin
      (* Climb one adjacent rung per poll, after dwelling at least the
         cooldown on the current one (the first climb out of Healthy is
         immediate: detection already waited for the stall timeout). *)
      if
        rung_index t.rung < 4
        && (t.rung = Healthy || now - t.entered_at >= t.config.escalation_cooldown)
      then transition t ~now ~stalled ~zombies (rung_of_index (rung_index t.rung + 1));
      (* Run every mechanism at or below the current rung, every poll
         while unhealthy: the ladder is cumulative, so reaching rung r
         never gives up the weaker cures. *)
      let r = rung_index t.rung in
      if r >= 1 then begin
        t.nudges <- t.nudges + 1;
        actions.nudge ~now
      end;
      if r >= 2 then begin
        t.restarts <- t.restarts + 1;
        actions.restart_cleaners ~now
      end;
      if r >= 3 then begin
        t.sync_reclaims <- t.sync_reclaims + 1;
        actions.sync_reclaim ~now
      end;
      if r >= 4 then begin
        let n = actions.shed_zombies ~max:t.config.shed_batch ~now in
        t.zombie_cancels <- t.zombie_cancels + n;
        if n > 0 && Trace.on () then
          Trace.instant Trace.Watchdog "zombie-shed" ~at:now [ ("victims", Trace.I n) ]
      end
    end
    else if rung_index t.rung > 0 then
      transition t ~now ~stalled ~zombies (rung_of_index (rung_index t.rung - 1))

let escalations t = t.escalations
let nudges t = t.nudges
let restarts t = t.restarts
let sync_reclaims t = t.sync_reclaims
let zombie_cancels t = t.zombie_cancels
let max_stall_observed t = t.max_stall
let polls t = t.polls
let transitions t = List.rev t.log

(* Honesty replay, mirroring [Governor.check_ladder]: transitions chain
   from Healthy, move one rung at a time, and every escalation carries
   a recorded unhealthy verdict while every de-escalation carries a
   clean one. *)
let check_ladder t =
  let check acc tr =
    let step = rung_index tr.to_rung - rung_index tr.from_rung in
    if abs step <> 1 then
      Format.asprintf "non-adjacent transition %a->%a at %a" pp_rung tr.from_rung pp_rung
        tr.to_rung Clock.pp tr.at
      :: acc
    else if step = 1 then begin
      if tr.stalled = [] && tr.zombies = 0 then
        Format.asprintf "escalation %a->%a at %a with no stalled source and no zombie" pp_rung
          tr.from_rung pp_rung tr.to_rung Clock.pp tr.at
        :: acc
      else acc
    end
    else if tr.stalled <> [] || tr.zombies > 0 then
      Format.asprintf "de-escalation %a->%a at %a while unhealthy (%d stalled, %d zombies)"
        pp_rung tr.from_rung pp_rung tr.to_rung Clock.pp tr.at (List.length tr.stalled)
        tr.zombies
      :: acc
    else acc
  in
  let rec chained acc prev = function
    | [] -> acc
    | tr :: rest ->
        let acc =
          if tr.from_rung <> prev then
            Format.asprintf "transition at %a leaves %a but the ladder was at %a" Clock.pp tr.at
              pp_rung tr.from_rung pp_rung prev
            :: acc
          else acc
        in
        chained (check acc tr) tr.to_rung rest
  in
  List.rev (chained [] Healthy (transitions t))

let pp_transition fmt tr =
  Format.fprintf fmt "%a %a->%a (%d stalled, %d zombies)" Clock.pp tr.at pp_rung tr.from_rung
    pp_rung tr.to_rung (List.length tr.stalled) tr.zombies

let pp_summary fmt t =
  Format.fprintf fmt
    "@[<v>watchdog:%s rung=%a polls=%d escalations=%d nudges=%d restarts=%d sync-reclaims=%d \
     zombie-cancels=%d max-stall=%a@ "
    (if t.config.enabled then "" else " DISABLED")
    pp_rung t.rung t.polls t.escalations t.nudges t.restarts t.sync_reclaims t.zombie_cancels
    Clock.pp t.max_stall;
  Format.fprintf fmt "sources:";
  List.iter
    (fun (name, beats, last) ->
      Format.fprintf fmt " %s=%d@@%a" name beats Clock.pp last)
    (sources t);
  let trs = transitions t in
  Format.fprintf fmt "@ transitions (%d):" (List.length trs);
  List.iter (fun tr -> Format.fprintf fmt "@ %a" pp_transition tr) trs;
  Format.fprintf fmt "@]"
