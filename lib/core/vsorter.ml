type outcome = Pruned_first of Vclass.t | Buffered of Vclass.t

type sweep_result = {
  segments_dropped : int;
  versions_pruned : int;
  segments_flushed : int;
  versions_stored : int;
}

let empty_sweep =
  { segments_dropped = 0; versions_pruned = 0; segments_flushed = 0; versions_stored = 0 }

(* Drop a sealed segment that is dead in its entirety: every version it
   holds is removed from its chain and counted into the 2nd prune. *)
let drop_dead_segment (st : State.t) seg ~now =
  let pruned = ref 0 in
  Vec.iter
    (fun node ->
      if not node.Chain.deleted then begin
        (match Llb.find st.State.llb ~rid:node.Chain.version.Version.rid with
        | Some chain -> Chain.delete_node chain node
        | None -> assert false);
        State.audit_prune st ~now ~origin:`Prune2 ~lo:node.Chain.prune_lo
          ~hi:node.Chain.prune_hi;
        Prune_stats.note_prune2 st.State.stats seg.Segment.cls;
        incr pruned
      end)
    seg.Segment.nodes;
  State.drop_segment st seg;
  State.log_wal st ~now (Wal_record.Seg_drop { seg_id = seg.Segment.id });
  !pruned

let harden_segment (st : State.t) seg ~now =
  let stored = Segment.version_count seg in
  Version_store.harden st.State.store seg ~now;
  for _ = 1 to stored do
    Prune_stats.note_stored st.State.stats seg.Segment.cls
  done;
  State.log_wal st ~now (Wal_record.Seg_harden { seg_id = seg.Segment.id });
  Metrics.bump "vsorter.segments_flushed";
  Metrics.bump_by "vsorter.versions_stored" stored;
  if Trace.on () then
    Trace.instant Trace.Vsorter "flush" ~at:now
      [
        ("seg", Trace.I seg.Segment.id);
        ("class", Trace.S (Vclass.to_string seg.Segment.cls));
        ("versions", Trace.I stored);
        ("bytes", Trace.I seg.Segment.used_bytes);
      ];
  stored

let sweep (st : State.t) ~now =
  State.refresh_zones st ~now;
  let result = ref empty_sweep in
  (* 2nd prune: segment-granularity, against fresh zones. *)
  Vec.filter_in_place
    (fun seg ->
      let _, vmin, vmax = Segment.descriptor seg in
      if State.interval_dead st ~lo:vmin ~hi:vmax then begin
        let pruned = drop_dead_segment st seg ~now in
        result :=
          {
            !result with
            segments_dropped = !result.segments_dropped + 1;
            versions_pruned = !result.versions_pruned + pruned;
          };
        false
      end
      else true)
    st.State.sealed;
  (* Memory pressure: flush the oldest surviving sealed segments. A
     ["vsorter.flush"] fail-point failure models a rejected or delayed
     store write: the segment stays sealed in the buffer (pressure
     persists) and the flush is retried on the next sweep. *)
  let rec relieve () =
    if State.buffered_bytes st > st.State.config.State.vbuffer_bytes then begin
      match Failpoint.check "vsorter.flush" with
      | `Fail -> ()
      | `Pass -> (
          match State.pop_oldest_sealed st with
          | Some seg ->
              let stored = harden_segment st seg ~now in
              result :=
                {
                  !result with
                  segments_flushed = !result.segments_flushed + 1;
                  versions_stored = !result.versions_stored + stored;
                };
              relieve ()
          | None -> ())
    end
  in
  relieve ();
  (match st.State.watchdog with
  | Some w -> Watchdog.beat w "vsorter" ~now
  | None -> ());
  let r = !result in
  Metrics.bump_by "vsorter.segments_dropped" r.segments_dropped;
  Metrics.bump_by "vsorter.prune2" r.versions_pruned;
  if Trace.on () then
    Trace.span Trace.Vsorter "sweep" ~start:now ~dur:0
      [
        ("segments_dropped", Trace.I r.segments_dropped);
        ("versions_pruned", Trace.I r.versions_pruned);
        ("segments_flushed", Trace.I r.segments_flushed);
        ("versions_stored", Trace.I r.versions_stored);
        ("buffered_bytes", Trace.I (State.buffered_bytes st));
      ];
  r

let seal (st : State.t) ~cls ~now =
  let idx = Vclass.to_index cls in
  match st.State.open_segments.(idx) with
  | Some seg ->
      st.State.open_segments.(idx) <- None;
      if Segment.is_empty seg then begin
        State.drop_segment st seg;
        State.log_wal st ~now (Wal_record.Seg_drop { seg_id = seg.Segment.id })
      end
      else Vec.push st.State.sealed seg
  | None -> ()

let relocate (st : State.t) version ~now =
  State.maybe_refresh st ~now;
  Prune_stats.note_relocated st.State.stats;
  let cls =
    match st.State.config.State.classification with
    | `Single_class -> Vclass.Hot
    | `Three_way ->
        Classifier.classify st.State.config.State.classifier ~llt_views:st.State.llt_views
          version
  in
  let vs = version.Version.vs and ve = version.Version.ve in
  let commit_log = Txn_manager.commit_log st.State.txns in
  let interval =
    match Prune.commit_interval commit_log ~vs ~ve with
    | Some i -> i
    | None ->
        (* SIRO guarantees both the creator and the closer of a
           displaced version have committed (a third update cannot
           begin before the second's owner finished). *)
        invalid_arg "Vsorter.relocate: displaced version with uncommitted bounds"
  in
  let lo, hi = interval in
  (* Pruning runs against the periodically refreshed zone snapshot
     (§3.3's accuracy/performance trade-off). Versions whose successor
     committed after the snapshot's C^T — rapid updates under skew —
     legitimately pass this first stage and die at the segment prune
     instead, exactly the Figure 15 breakdown. *)
  Metrics.bump "vsorter.relocations";
  if State.interval_dead st ~lo ~hi then begin
    State.audit_prune st ~now ~origin:`Prune1 ~lo ~hi;
    Prune_stats.note_prune1 st.State.stats cls;
    Metrics.bump "vsorter.prune1";
    Pruned_first cls
  end
  else begin
    let idx = Vclass.to_index cls in
    let seg =
      match st.State.open_segments.(idx) with
      | Some seg when Segment.fits seg ~bytes:version.Version.bytes -> seg
      | Some _ ->
          seal st ~cls ~now;
          let seg = State.fresh_segment st ~cls ~now in
          st.State.open_segments.(idx) <- Some seg;
          seg
      | None ->
          let seg = State.fresh_segment st ~cls ~now in
          st.State.open_segments.(idx) <- Some seg;
          seg
    in
    let chain = Llb.get_or_create st.State.llb ~rid:version.Version.rid in
    let node = Chain.push_newest chain ~prune_interval:interval version ~seg_id:seg.Segment.id in
    Segment.add seg node;
    State.log_wal st ~now
      (Wal_record.Relocate
         {
           rid = version.Version.rid;
           vs;
           ve;
           vs_time = version.Version.vs_time;
           ve_time = version.Version.ve_time;
           bytes = version.Version.bytes;
           value = version.Version.payload;
           seg_id = seg.Segment.id;
           cls = Vclass.to_string cls;
           lo;
           hi;
         });
    Buffered cls
  end

let flush_all (st : State.t) ~now =
  List.iter (fun cls -> seal st ~cls ~now) Vclass.all;
  let swept = sweep st ~now in
  (* Harden whatever survived the final sweep. *)
  let flushed = ref 0 and stored = ref 0 in
  let rec drain () =
    match State.pop_oldest_sealed st with
    | Some seg ->
        stored := !stored + harden_segment st seg ~now;
        incr flushed;
        drain ()
    | None -> ()
  in
  drain ();
  {
    swept with
    segments_flushed = swept.segments_flushed + !flushed;
    versions_stored = swept.versions_stored + !stored;
  }
