(** Restart rebuild of the driver's off-row state.

    Consumes the surviving-segment image computed by
    {!Wal_recovery.expect} (last checkpoint's segments merged with
    post-checkpoint relocations, minus dropped and cut segments) and
    reconstructs the LLB chains, vBuffer sealed queue, version store and
    segment index with the original segment identities.

    Chains come back in the 0-hole state — every per-record version
    list is re-pushed oldest first — and every rebuilt version re-enters
    the {!Prune_stats} conservation law as relocated (plus stored for
    hardened segments), balancing the [lost] bucket the crash charged.

    Must be called on a freshly wiped state ({!Driver.crash_restart})
    before the workload resumes. *)

type result = { versions : int; segments : int; hardened : int }

val rebuild :
  State.t ->
  segments:Wal_recovery.seg_build list ->
  next_seg_id:int ->
  now:Clock.time ->
  result
