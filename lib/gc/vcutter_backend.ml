(* Backend 0: the paper's own design behind the pluggable interface.

   The honest step is literally the seed maintenance pair —
   [Vsorter.sweep] then [Vcutter.step] at the governor's budget — so an
   installed vcutter backend is byte-identical to an un-hooked driver
   (the pinned regression in test_gc proves it run-for-run).

   Its backend-relative online invariant is *cut completeness within
   budget*: after a step that cut C segments under budget B, either
   every dead candidate was cut or the budget was exhausted (C = B).
   The post-step recheck below is a pure read over the same zone
   snapshot the step used (deadness against a fixed snapshot is
   stable), so recording the verdict at step time is deterministic.
   The sabotage knob skips every other dead candidate — a collector
   that silently under-delivers on its own budget — which leaves a
   dead survivor with C < B and trips the check. *)

type t = {
  st : State.t;
  sabotage : bool;
  mutable last_budget : int;
  mutable last_cut : int;
  mutable last_dead_after : int;
  mutable shortfalls : int;
}

(* Dead hardened candidates under the *current* zone snapshot. Pure:
   no refresh, no metrics, no trace — safe on the byte-identical path. *)
let dead_candidates st =
  let n = ref 0 in
  Version_store.iter_hardened st.State.store (fun seg ->
      let _, vmin, vmax = Segment.descriptor seg in
      if State.interval_dead st ~lo:vmin ~hi:vmax then incr n);
  !n

let note_step b ~budget ~cut =
  b.last_budget <- budget;
  b.last_cut <- cut;
  b.last_dead_after <- dead_candidates b.st;
  if b.last_dead_after > 0 && cut < budget then b.shortfalls <- b.shortfalls + 1

let honest_step b ~now ~budget =
  let swept = Vsorter.sweep b.st ~now in
  let cut = Vcutter.step b.st ~now ~max_segments:budget in
  note_step b ~budget ~cut:cut.Vcutter.segments_cut;
  (swept, cut)

(* The sabotaged cutter: same discovery, but only every other dead
   candidate is cut (still within budget). *)
let sabotaged_step b ~now ~budget =
  let st = b.st in
  let swept = Vsorter.sweep st ~now in
  State.refresh_zones st ~now;
  let candidates = ref [] and scanned = ref 0 in
  Version_store.iter_hardened st.State.store (fun seg ->
      incr scanned;
      let _, vmin, vmax = Segment.descriptor seg in
      if State.interval_dead st ~lo:vmin ~hi:vmax then candidates := seg :: !candidates);
  let candidates = List.rev !candidates in
  let segs = ref 0 and vers = ref 0 and bytes = ref 0 in
  let rec cut_up_to i n = function
    | [] -> ()
    | _ when n = 0 -> ()
    | seg :: rest ->
        if i mod 2 = 1 then cut_up_to (i + 1) n rest
        else begin
          let v, by = Vcutter.cut_segment st seg ~now in
          incr segs;
          vers := !vers + v;
          bytes := !bytes + by;
          cut_up_to (i + 1) (n - 1) rest
        end
  in
  cut_up_to 0 budget candidates;
  (match st.State.watchdog with Some w -> Watchdog.beat w "vcutter" ~now | None -> ());
  note_step b ~budget ~cut:!segs;
  ( swept,
    {
      Vcutter.segments_cut = !segs;
      versions_cut = !vers;
      bytes_reclaimed = !bytes;
      segments_scanned = !scanned;
    } )

let hook st ~sabotage =
  let b =
    { st; sabotage; last_budget = 0; last_cut = 0; last_dead_after = 0; shortfalls = 0 }
  in
  {
    State.gh_name = "vcutter";
    gh_id = 0;
    gh_step =
      (fun ~now ~budget ->
        let swept, cut = if b.sabotage then sabotaged_step b ~now ~budget else honest_step b ~now ~budget in
        {
          State.gs_segments_dropped = swept.Vsorter.segments_dropped;
          gs_versions_pruned = swept.Vsorter.versions_pruned;
          gs_segments_flushed = swept.Vsorter.segments_flushed;
          gs_versions_stored = swept.Vsorter.versions_stored;
          gs_segments_cut = cut.Vcutter.segments_cut;
          gs_versions_cut = cut.Vcutter.versions_cut;
          gs_bytes_reclaimed = cut.Vcutter.bytes_reclaimed;
          gs_segments_scanned = cut.Vcutter.segments_scanned;
        });
    gh_frontier = (fun () -> Zone_set.oldest_boundary st.State.zones);
    gh_check =
      (fun () ->
        if b.shortfalls > 0 then
          [
            Printf.sprintf
              "cut completeness: %d step(s) left dead segments resident under budget \
               (last: cut=%d budget=%d dead_after=%d)"
              b.shortfalls b.last_cut b.last_budget b.last_dead_after;
          ]
        else []);
    gh_gauges =
      (fun () ->
        [ ("gc.vcutter.shortfalls", b.shortfalls); ("gc.vcutter.dead_after", b.last_dead_after) ]);
  }
