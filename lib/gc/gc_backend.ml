type kind = Vcutter | Range | Bounded

type config = {
  kind : kind;
  sabotage : bool;
  range_scan_cap : int;
  bounded_max_dead : int;
}

let default_config =
  { kind = Vcutter; sabotage = false; range_scan_cap = 4; bounded_max_dead = 256 }

let kind_name = function Vcutter -> "vcutter" | Range -> "range" | Bounded -> "bounded"
let kind_id = function Vcutter -> 0 | Range -> 1 | Bounded -> 2
let all_kinds = [ Vcutter; Range; Bounded ]

let kind_of_string = function
  | "vcutter" -> Ok Vcutter
  | "range" -> Ok Range
  | "bounded" -> Ok Bounded
  | s ->
      Error
        (`Msg
          (Printf.sprintf "unknown GC backend %S (expected vcutter, range or bounded)" s))

let install (d : Driver.t) (cfg : config) =
  let st : State.t = d in
  let hook =
    match cfg.kind with
    | Vcutter -> Vcutter_backend.hook st ~sabotage:cfg.sabotage
    | Range -> Range_track_backend.hook st ~sabotage:cfg.sabotage ~scan_cap:cfg.range_scan_cap
    | Bounded -> Bounded_backend.hook st ~sabotage:cfg.sabotage ~max_dead:cfg.bounded_max_dead
  in
  st.State.gc_backend <- Some hook

let uninstall (d : Driver.t) =
  let st : State.t = d in
  st.State.gc_backend <- None

let installed_name (d : Driver.t) = State.gc_backend_name d

let gauges (d : Driver.t) =
  let st : State.t = d in
  match st.State.gc_backend with Some h -> h.State.gh_gauges () | None -> []

let frontier (d : Driver.t) =
  let st : State.t = d in
  match st.State.gc_backend with Some h -> Some (h.State.gh_frontier ()) | None -> None

(* Wrap an engine factory so every driver the runner builds gets the
   backend installed before the workload starts. The runner constructs
   engines internally, so this is the composition point for CLIs,
   benches and tests. *)
let wrap_engine cfg engine schema =
  let e = engine schema in
  (match e.Engine.driver with Some d -> install d cfg | None -> ());
  e
