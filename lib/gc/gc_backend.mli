(** Pluggable GC backends (DESIGN §4h).

    Three collectors answer "which versions may be reclaimed, and
    when?" against the same version store:

    - {b vcutter} — the paper's dead-zone design: buffered aging with
      segment-granularity pruning, then whole-segment cuts. Wins prune
      completeness (versions die in vBuffer before ever being stored).
      Online invariant: cut completeness within the governor budget.
    - {b range} — Wei & Fatourou-style range tracking: announce the
      valid interval, harden eagerly, reclaim per-version in the store
      by subtracting the live-snapshot set. Online invariant: the
      universal Definition-3.3 prune audit (its reclaims are the most
      fine-grained, so it leans hardest on it).
    - {b bounded} — BBF+-style bounded-space collection: eager flush
      plus per-version reclaim that {e outranks} the governor budget
      while more than K dead versions remain resident. Wins worst-case
      space. Online invariant: every post-step dead-resident checkpoint
      is within K.

    Each backend also has a sabotage mode the invariant catalogue
    provably catches (a budget-shirking cutter, an announce-array
    off-by-one, a token-effort collector ignoring its bound).

    Installation swaps the whole sweep-then-cut pair inside
    {!Driver.maintain}; governor budgets, Emergency sync-maintenance
    and the shedding ladder apply to all three unchanged. An installed
    [vcutter] backend is byte-identical to an un-hooked driver. *)

type kind = Vcutter | Range | Bounded

type config = {
  kind : kind;
  sabotage : bool;
  range_scan_cap : int;  (** sealed segments announced per range step *)
  bounded_max_dead : int;  (** K: the BBF+ resident dead-version bound *)
}

val default_config : config
(** [vcutter], no sabotage, scan cap 4, bound 256. *)

val kind_name : kind -> string
val kind_id : kind -> int
(** Stable: vcutter=0, range=1, bounded=2 (the [gc-backend] gauge). *)

val all_kinds : kind list

val kind_of_string : string -> (kind, [ `Msg of string ]) result
(** Parse a [--gc-backend] value; the [`Msg] form feeds straight into a
    cmdliner usage error for unknown names. *)

val install : Driver.t -> config -> unit
val uninstall : Driver.t -> unit

val installed_name : Driver.t -> string
(** ["vcutter"] when nothing is installed — the built-in path {e is}
    the vCutter design. *)

val gauges : Driver.t -> (string * int) list
(** The installed backend's observability counters (empty un-hooked). *)

val frontier : Driver.t -> Timestamp.t option
(** The installed backend's reclamation frontier: the oldest timestamp
    it still treats as potentially live. *)

val wrap_engine :
  config -> (Schema.t -> Engine.t) -> Schema.t -> Engine.t
(** [wrap_engine cfg factory] is a factory that installs the backend on
    every driver-backed engine it builds — the composition point for
    the runner's [~engine] argument. *)
