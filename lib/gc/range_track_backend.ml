(* Range-tracking GC, à la Wei & Fatourou: every retired version
   carries its valid interval [prune_lo, prune_hi]; the collector
   subtracts the live-snapshot set from the announced intervals and
   reclaims whatever no snapshot can still need — at *version*
   granularity, in the store, rather than vCutter's whole-segment cuts.

   Mapped onto the vDriver pipeline:

   - Announce pass: the oldest [scan_cap] sealed segments are examined
     exactly once. A whole-dead one is dropped (the 2nd prune);
     survivors are hardened *immediately* — range tracking records the
     interval and moves on, it never ages segments in vBuffer the way
     vSorter's flush-on-pressure does. This is where the design loses
     prune completeness to vCutter (versions that would have died in
     the buffer get stored instead) and why the shootout's completeness
     column goes to the paper's design.
   - Store pass: up to [budget] hardened segments per step (rotating
     cursor), subtracting the live set per node; dead nodes are deleted
     and audited, and a segment whose last live node goes is finished
     through {!Vcutter.cut_segment} (freeing its bytes).

   Soundness is backend-relative only in mechanism, not in judge: the
   universal Definition-3.3 prune audit re-checks every deletion this
   backend makes. The sabotage knob models the classic announce-array
   off-by-one — the subtraction scan starts at slot 1 and never
   subtracts the *oldest* live reader — which over-reclaims precisely
   what that reader still needs, and the audit catches it. *)

type t = {
  st : State.t;
  sabotage : bool;
  scan_cap : int;
  mutable cursor : int;
  mutable store_reclaims : int; (* versions reclaimed by interval subtraction *)
}

let node_dead b (node : Chain.node) =
  let lo = node.Chain.prune_lo and hi = node.Chain.prune_hi in
  if b.sabotage then
    match List.sort compare (Txn_manager.live_begin_ts b.st.State.txns) with
    | [] -> Prune.dead_spec ~live:[] ~vs:lo ~ve:hi
    | _oldest :: rest -> Prune.dead_spec ~live:rest ~vs:lo ~ve:hi
  else State.interval_dead b.st ~lo ~hi

(* Delete the dead nodes of one hardened segment; finish it through the
   seed cut path once nothing live remains. Returns versions deleted
   and bytes freed. *)
let subtract_segment b seg ~now =
  let st = b.st in
  let deleted = ref 0 in
  Vec.iter
    (fun (node : Chain.node) ->
      if (not node.Chain.deleted) && node_dead b node then begin
        (match Llb.find st.State.llb ~rid:node.Chain.version.Version.rid with
        | Some chain ->
            let episode = Collab.create () in
            (match
               Collab.cutter episode
                 ~delete:(fun () -> Chain.delete_node chain node)
                 ~fixup:(fun () -> ())
             with
            | `Won -> ()
            | `Lost -> Chain.delete_node chain node)
        | None -> assert false);
        State.audit_prune st ~now ~origin:`Cut ~lo:node.Chain.prune_lo
          ~hi:node.Chain.prune_hi;
        incr deleted
      end)
    seg.Segment.nodes;
  b.store_reclaims <- b.store_reclaims + !deleted;
  if Segment.live_count seg = 0 then begin
    let _, bytes = Vcutter.cut_segment st seg ~now in
    (!deleted, bytes, true)
  end
  else (!deleted, 0, false)

let rotate k l =
  let n = List.length l in
  if n = 0 then []
  else
    let k = k mod n in
    let rec split i acc rest =
      if i = k then rest @ List.rev acc
      else
        match rest with
        | x :: tl -> split (i + 1) (x :: acc) tl
        | [] -> List.rev acc
    in
    split 0 [] l

let step b ~now ~budget =
  let st = b.st in
  State.refresh_zones st ~now;
  (* Announce pass over the oldest sealed segments. *)
  let dropped = ref 0 and pruned = ref 0 and flushed = ref 0 and stored = ref 0 in
  let examined = ref 0 and blocked = ref false in
  while (not !blocked) && !examined < b.scan_cap && not (Vec.is_empty st.State.sealed) do
    let seg = Vec.get st.State.sealed 0 in
    let _, vmin, vmax = Segment.descriptor seg in
    if State.interval_dead st ~lo:vmin ~hi:vmax then begin
      ignore (State.pop_oldest_sealed st);
      let p = Vsorter.drop_dead_segment st seg ~now in
      incr dropped;
      pruned := !pruned + p;
      incr examined
    end
    else begin
      (* The harden is a store write: the same fail-point as vSorter's
         flush models a rejected write, retried next pass. *)
      match Failpoint.check "vsorter.flush" with
      | `Fail -> blocked := true
      | `Pass ->
          ignore (State.pop_oldest_sealed st);
          let s = Vsorter.harden_segment st seg ~now in
          incr flushed;
          stored := !stored + s;
          incr examined
    end
  done;
  (* The buffer budget still binds when the announce cap lags a burst. *)
  let rec relieve () =
    if State.buffered_bytes st > st.State.config.State.vbuffer_bytes then
      match Failpoint.check "vsorter.flush" with
      | `Fail -> ()
      | `Pass -> (
          match State.pop_oldest_sealed st with
          | Some seg ->
              let s = Vsorter.harden_segment st seg ~now in
              incr flushed;
              stored := !stored + s;
              relieve ()
          | None -> ())
  in
  relieve ();
  (match st.State.watchdog with Some w -> Watchdog.beat w "vsorter" ~now | None -> ());
  (* Store pass: interval subtraction over up to [budget] hardened
     segments, rotating so every segment is reached within a bounded
     number of steps (the reclamation-lag bound depends on this). *)
  let all = ref [] and scanned = ref 0 in
  Version_store.iter_hardened st.State.store (fun seg ->
      incr scanned;
      all := seg :: !all);
  let ordered = rotate b.cursor (List.rev !all) in
  b.cursor <- b.cursor + 1;
  let cut_segs = ref 0 and cut_vers = ref 0 and bytes = ref 0 in
  let rec go n = function
    | [] -> ()
    | _ when n = 0 -> ()
    | seg :: rest ->
        let v, by, cut = subtract_segment b seg ~now in
        cut_vers := !cut_vers + v;
        bytes := !bytes + by;
        if cut then incr cut_segs;
        go (n - 1) rest
  in
  go budget ordered;
  (match st.State.watchdog with Some w -> Watchdog.beat w "vcutter" ~now | None -> ());
  {
    State.gs_segments_dropped = !dropped;
    gs_versions_pruned = !pruned;
    gs_segments_flushed = !flushed;
    gs_versions_stored = !stored;
    gs_segments_cut = !cut_segs;
    gs_versions_cut = !cut_vers;
    gs_bytes_reclaimed = !bytes;
    gs_segments_scanned = !scanned;
  }

let hook st ~sabotage ~scan_cap =
  let b = { st; sabotage; scan_cap = max 1 scan_cap; cursor = 0; store_reclaims = 0 } in
  {
    State.gh_name = "range";
    gh_id = 1;
    gh_step = (fun ~now ~budget -> step b ~now ~budget);
    gh_frontier = (fun () -> Zone_set.oldest_boundary st.State.zones);
    (* Soundness is judged by the universal prune audit; the backend
       adds no second oracle of its own. *)
    gh_check = (fun () -> []);
    gh_gauges = (fun () -> [ ("gc.range.store_reclaims", b.store_reclaims) ]);
  }
