(* BBF+-style bounded-space collection (Ben-David, Blelloch, Fatourou,
   Ruppert): the collector's contract is a worst-case bound K on the
   number of *reclaimable-but-resident* versions — versions whose valid
   interval is already dead but that still occupy the store — enforced
   at every collection step, not merely approached on average.

   Mapped onto the vDriver pipeline:

   - Buffer phase: whole-dead sealed segments are dropped, then every
     surviving sealed segment is hardened eagerly (bounded-space
     designs keep no aging buffer — another completeness concession to
     vCutter, which lets segments die in vBuffer).
   - Store phase: count the dead versions resident per hardened
     segment, then reclaim per-version oldest-first. The governor's
     per-rung budget paces the ordinary work, but once the budget is
     spent the collector *keeps going while more than K dead versions
     remain resident* — the bound outranks the budget, which is
     exactly the guarantee vCutter does not give (its budget-limited,
     whole-segment cuts can leave an unbounded dead residue in any one
     pass).
   - The post-step dead-resident count is recorded as a checkpoint
     (mirroring the governor's post-maintenance space checkpoint) and
     judged online: any checkpoint above K is a violation. The
     sabotage knob turns the collector into a token-effort one — one
     segment per pass, bound ignored — and the checkpoint catches it
     as soon as a death storm outruns that trickle. *)

type t = {
  st : State.t;
  sabotage : bool;
  max_dead : int; (* K: resident dead-version bound *)
  mutable post_step_dead : int;
  mutable peak_post_step_dead : int;
  mutable stepped : bool;
  mutable breaches : int;
}

let node_dead b (node : Chain.node) =
  State.interval_dead b.st ~lo:node.Chain.prune_lo ~hi:node.Chain.prune_hi

let dead_in_segment b seg =
  let n = ref 0 in
  Vec.iter
    (fun (node : Chain.node) -> if (not node.Chain.deleted) && node_dead b node then incr n)
    seg.Segment.nodes;
  !n

(* Delete every dead node of one hardened segment; finish it through
   the seed cut path once nothing live remains. *)
let reclaim_segment b seg ~now =
  let st = b.st in
  let deleted = ref 0 in
  Vec.iter
    (fun (node : Chain.node) ->
      if (not node.Chain.deleted) && node_dead b node then begin
        (match Llb.find st.State.llb ~rid:node.Chain.version.Version.rid with
        | Some chain ->
            let episode = Collab.create () in
            (match
               Collab.cutter episode
                 ~delete:(fun () -> Chain.delete_node chain node)
                 ~fixup:(fun () -> ())
             with
            | `Won -> ()
            | `Lost -> Chain.delete_node chain node)
        | None -> assert false);
        State.audit_prune st ~now ~origin:`Cut ~lo:node.Chain.prune_lo
          ~hi:node.Chain.prune_hi;
        incr deleted
      end)
    seg.Segment.nodes;
  if Segment.live_count seg = 0 then begin
    let _, bytes = Vcutter.cut_segment st seg ~now in
    (!deleted, bytes, true)
  end
  else (!deleted, 0, false)

let step b ~now ~budget =
  let st = b.st in
  State.refresh_zones st ~now;
  (* Buffer phase: 2nd prune, then eager flush of every survivor. *)
  let dropped = ref 0 and pruned = ref 0 and flushed = ref 0 and stored = ref 0 in
  Vec.filter_in_place
    (fun seg ->
      let _, vmin, vmax = Segment.descriptor seg in
      if State.interval_dead st ~lo:vmin ~hi:vmax then begin
        let p = Vsorter.drop_dead_segment st seg ~now in
        incr dropped;
        pruned := !pruned + p;
        false
      end
      else true)
    st.State.sealed;
  let rec drain () =
    if not (Vec.is_empty st.State.sealed) then
      match Failpoint.check "vsorter.flush" with
      | `Fail -> ()
      | `Pass -> (
          match State.pop_oldest_sealed st with
          | Some seg ->
              let s = Vsorter.harden_segment st seg ~now in
              incr flushed;
              stored := !stored + s;
              drain ()
          | None -> ())
  in
  drain ();
  (match st.State.watchdog with Some w -> Watchdog.beat w "vsorter" ~now | None -> ());
  (* Store phase: census, then bound-enforced per-version reclaim. *)
  let all = ref [] and scanned = ref 0 in
  Version_store.iter_hardened st.State.store (fun seg ->
      incr scanned;
      all := seg :: !all);
  (* [!all] holds the segments newest-first; rev_map restores store
     (oldest-first) order, which is the reclaim priority. *)
  let census = List.rev_map (fun seg -> (seg, dead_in_segment b seg)) !all in
  let total_dead = List.fold_left (fun acc (_, d) -> acc + d) 0 census in
  let remaining = ref total_dead in
  let processed = ref 0 in
  let cut_segs = ref 0 and cut_vers = ref 0 and bytes = ref 0 in
  List.iter
    (fun (seg, dcount) ->
      if dcount > 0 then begin
        let within_budget = !processed < budget in
        let must_enforce = (not b.sabotage) && !remaining > b.max_dead in
        let token_spent = b.sabotage && !processed >= 1 in
        if (within_budget || must_enforce) && not token_spent then begin
          let v, by, cut = reclaim_segment b seg ~now in
          incr processed;
          remaining := !remaining - dcount;
          cut_vers := !cut_vers + v;
          bytes := !bytes + by;
          if cut then incr cut_segs
        end
      end)
    census;
  (match st.State.watchdog with Some w -> Watchdog.beat w "vcutter" ~now | None -> ());
  b.post_step_dead <- !remaining;
  b.stepped <- true;
  if !remaining > b.peak_post_step_dead then b.peak_post_step_dead <- !remaining;
  if !remaining > b.max_dead then b.breaches <- b.breaches + 1;
  {
    State.gs_segments_dropped = !dropped;
    gs_versions_pruned = !pruned;
    gs_segments_flushed = !flushed;
    gs_versions_stored = !stored;
    gs_segments_cut = !cut_segs;
    gs_versions_cut = !cut_vers;
    gs_bytes_reclaimed = !bytes;
    gs_segments_scanned = !scanned;
  }

let hook st ~sabotage ~max_dead =
  let b =
    {
      st;
      sabotage;
      max_dead = max 0 max_dead;
      post_step_dead = 0;
      peak_post_step_dead = 0;
      stepped = false;
      breaches = 0;
    }
  in
  {
    State.gh_name = "bounded";
    gh_id = 2;
    gh_step = (fun ~now ~budget -> step b ~now ~budget);
    gh_frontier = (fun () -> Zone_set.oldest_boundary st.State.zones);
    gh_check =
      (fun () ->
        if b.breaches > 0 then
          [
            Printf.sprintf
              "space bound: %d collection step(s) ended with more than %d dead versions \
               resident (last checkpoint: %d, peak: %d)"
              b.breaches b.max_dead b.post_step_dead b.peak_post_step_dead;
          ]
        else []);
    gh_gauges =
      (fun () ->
        [
          ("gc.bounded.bound", b.max_dead);
          ("gc.bounded.post_step_dead", b.post_step_dead);
          ("gc.bounded.peak_dead", b.peak_post_step_dead);
        ]);
  }
