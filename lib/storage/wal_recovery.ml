type analysis = {
  records : Wal_record.t list;
  survivors : int;
  truncate_lsn : int;
  dropped : int;
  checkpoint : (int * Checkpoint.t) option;
}

let analyze ?(check_crc = true) wal =
  let frames = Wal.frames wal in
  let total = List.length frames in
  let own_shard = Wal.shard wal in
  (* Scan forward and stop at the first frame that fails to parse or
     verify: everything beyond a torn/corrupt frame is untrustworthy
     even if it happens to checksum, because the device gave no
     ordering guarantee past the tear. A frame tagged for a different
     shard is treated the same way — each shard's log is its own LSN
     namespace, and an interleaved foreign frame means the write path
     crossed shards, which replay must refuse rather than absorb. *)
  let rec scan acc last = function
    | [] -> (List.rev acc, last)
    | (_, repr) :: rest -> (
        match Wal_record.decode ~check_crc repr with
        | Ok r when r.Wal_record.shard = own_shard -> scan (r :: acc) r.Wal_record.lsn rest
        | Ok _ | Error _ -> (List.rev acc, last))
  in
  let records, truncate_lsn = scan [] 0 frames in
  let survivors = List.length records in
  let checkpoint =
    List.fold_left
      (fun acc (r : Wal_record.t) ->
        match r.payload with
        | Wal_record.Ckpt_end { snapshot } -> (
            match Checkpoint.of_json snapshot with
            | Ok ckpt -> Some (r.lsn, ckpt)
            | Error _ -> acc)
        | _ -> acc)
      None records
  in
  { records; survivors; truncate_lsn; dropped = total - survivors; checkpoint }

type seg_build = {
  seg_id : int;
  cls : string;
  hardened : bool;
  versions : Checkpoint.seg_version list;
}

type expectation = {
  committed : (int * int) list;
  aborted : (int * int) list;
  losers : int list;
  rows : Checkpoint.row list;
  segments : seg_build list;
  dead_segs : int list;
  next_seg_id : int;
  oracle_floor : int;
  replayed : int;
  indoubt : (int * int) list;
  resolved_commits : (int * int) list;
  decisions : (int * int) list;
}

type seg_acc = {
  sa_cls : string;
  mutable sa_hardened : bool;
  mutable sa_versions : Checkpoint.seg_version list; (* reversed *)
}

let expect ?resolve analysis =
  let base =
    match analysis.checkpoint with
    | Some (_, ckpt) -> ckpt
    | None ->
        {
          Checkpoint.at = 0;
          oracle_next = 1;
          live = [];
          committed = [];
          aborted = [];
          rows = [];
          pending = [];
          segments = [];
          next_seg_id = 0;
          prepared = [];
          decisions = [];
        }
  in
  let ckpt_lsn = match analysis.checkpoint with Some (lsn, _) -> lsn | None -> 0 in
  let committed : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let aborted : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let live : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let rows : (int, Checkpoint.row) Hashtbl.t = Hashtbl.create 256 in
  let pending : (int, (int * Checkpoint.pending_write) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let segs : (int, seg_acc) Hashtbl.t = Hashtbl.create 64 in
  let prepared : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let decisions : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let dead_segs = ref [] in
  let max_ts = ref (base.Checkpoint.oracle_next - 1) in
  let see ts = if ts > !max_ts then max_ts := ts in
  let next_seg_id = ref base.Checkpoint.next_seg_id in
  List.iter (fun (tid, cts) -> Hashtbl.replace committed tid cts; see tid; see cts)
    base.Checkpoint.committed;
  List.iter (fun (tid, ats) -> Hashtbl.replace aborted tid ats; see tid; see ats)
    base.Checkpoint.aborted;
  List.iter (fun tid -> Hashtbl.replace live tid (); see tid) base.Checkpoint.live;
  List.iter (fun (r : Checkpoint.row) -> Hashtbl.replace rows r.rid r; see r.vs; see r.cts)
    base.Checkpoint.rows;
  List.iter
    (fun (p : Checkpoint.pending) ->
      see p.tid;
      Hashtbl.replace pending p.tid
        (ref (List.map (fun (w : Checkpoint.pending_write) -> (w.rid, w)) p.writes)))
    base.Checkpoint.pending;
  List.iter
    (fun (s : Checkpoint.seg) ->
      Hashtbl.replace segs s.seg_id
        { sa_cls = s.cls; sa_hardened = s.hardened; sa_versions = List.rev s.versions };
      if s.seg_id >= !next_seg_id then next_seg_id := s.seg_id + 1)
    base.Checkpoint.segments;
  List.iter
    (fun (tid, coord) ->
      see tid;
      Hashtbl.replace prepared tid coord;
      Hashtbl.replace live tid ())
    base.Checkpoint.prepared;
  List.iter
    (fun (gid, cts) ->
      see gid;
      see cts;
      Hashtbl.replace decisions gid cts)
    base.Checkpoint.decisions;
  (* Coordinator decisions are collected from the whole trustworthy
     prefix, not just the replay window: another shard's in-doubt
     participant may ask about a transaction whose decision predates
     this shard's last checkpoint (already forgotten here, still
     unresolved there). *)
  List.iter
    (fun (r : Wal_record.t) ->
      match r.Wal_record.payload with
      | Wal_record.Coord_commit { gid; cts; _ } -> Hashtbl.replace decisions gid cts
      | _ -> ())
    analysis.records;
  let note_write tid (w : Checkpoint.pending_write) =
    let writes =
      match Hashtbl.find_opt pending tid with
      | Some ws -> ws
      | None ->
          let ws = ref [] in
          Hashtbl.replace pending tid ws;
          ws
    in
    (* Same-transaction overwrite: only the final value exists. *)
    writes := (w.rid, w) :: List.remove_assoc w.rid !writes
  in
  let replayed = ref 0 in
  let apply (r : Wal_record.t) =
    incr replayed;
    match r.payload with
    | Wal_record.Txn_begin { tid } ->
        see tid;
        Hashtbl.replace live tid ()
    | Wal_record.Txn_commit { tid; cts } ->
        see tid;
        see cts;
        Hashtbl.remove live tid;
        Hashtbl.remove prepared tid;
        Hashtbl.replace committed tid cts;
        (match Hashtbl.find_opt pending tid with
        | None -> ()
        | Some ws ->
            Hashtbl.remove pending tid;
            List.iter
              (fun (_, (w : Checkpoint.pending_write)) ->
                Hashtbl.replace rows w.rid
                  {
                    Checkpoint.rid = w.rid;
                    value = w.value;
                    vs = tid;
                    vs_time = w.vs_time;
                    cts;
                  })
              (List.rev !ws))
    | Wal_record.Txn_abort { tid; ats } ->
        see tid;
        see ats;
        Hashtbl.remove live tid;
        Hashtbl.remove pending tid;
        Hashtbl.remove prepared tid;
        Hashtbl.replace aborted tid ats
    | Wal_record.Version_insert { tid; rid; value } ->
        see tid;
        note_write tid { Checkpoint.rid; value; vs_time = r.at }
    | Wal_record.Relocate { rid; vs; ve; vs_time; ve_time; bytes; value; seg_id; cls; lo; hi }
      ->
        see vs;
        see ve;
        see lo;
        see hi;
        if seg_id >= !next_seg_id then next_seg_id := seg_id + 1;
        let acc =
          match Hashtbl.find_opt segs seg_id with
          | Some acc -> acc
          | None ->
              let acc = { sa_cls = cls; sa_hardened = false; sa_versions = [] } in
              Hashtbl.replace segs seg_id acc;
              acc
        in
        acc.sa_versions <-
          { Checkpoint.rid; vs; ve; vs_time; ve_time; bytes; value; lo; hi }
          :: acc.sa_versions
    | Wal_record.Seg_harden { seg_id } -> (
        match Hashtbl.find_opt segs seg_id with
        | Some acc -> acc.sa_hardened <- true
        | None -> ())
    | Wal_record.Seg_drop { seg_id } | Wal_record.Seg_cut { seg_id } ->
        Hashtbl.remove segs seg_id;
        dead_segs := seg_id :: !dead_segs
    | Wal_record.Prepare { tid; coord; shards = _ } ->
        see tid;
        (* Prepared and not yet resolved locally: the transaction is
           in-doubt, not a loser — rollback must wait for the
           coordinator's verdict. *)
        Hashtbl.replace prepared tid coord;
        Hashtbl.replace live tid ()
    | Wal_record.Coord_commit { gid; cts; shards = _ } ->
        see gid;
        see cts;
        Hashtbl.replace decisions gid cts
    | Wal_record.Coord_abort { gid } | Wal_record.Ack { gid; _ } | Wal_record.Forget { gid } ->
        (* Presumed abort: the absence of a commit decision already
           means abort, and acks/forgets only trim the coordinator's
           in-doubt table. *)
        see gid
    | Wal_record.Promote _ | Wal_record.Rep_ack _ ->
        (* Replication bookkeeping: fencing markers and ship/ack
           watermarks carry no row state — replay skips them. *)
        ()
    | Wal_record.Ckpt_begin | Wal_record.Ckpt_end _ ->
        (* Only the last complete checkpoint is the replay base; a
           trailing Ckpt_begin whose end was lost is ignored. *)
        ()
  in
  List.iter
    (fun (r : Wal_record.t) -> if r.Wal_record.lsn > ckpt_lsn then apply r)
    analysis.records;
  (* In-doubt resolution: a transaction that prepared here but has no
     local outcome asks the coordinator. A durable Coord_commit means
     commit (apply the pending writes at its commit timestamp); no
     answer means presumed abort — the transaction stays a loser and
     the caller rolls it back with a CLR like any other. *)
  let indoubt_list =
    Hashtbl.fold
      (fun tid coord acc -> if Hashtbl.mem live tid then (tid, coord) :: acc else acc)
      prepared []
    |> List.sort compare
  in
  let resolved_commits = ref [] in
  (match resolve with
  | None -> ()
  | Some lookup ->
      List.iter
        (fun (tid, coord) ->
          match lookup ~tid ~coord with
          | None -> ()
          | Some cts ->
              see cts;
              resolved_commits := (tid, cts) :: !resolved_commits;
              Hashtbl.remove live tid;
              Hashtbl.replace committed tid cts;
              (match Hashtbl.find_opt pending tid with
              | None -> ()
              | Some ws ->
                  Hashtbl.remove pending tid;
                  List.iter
                    (fun (_, (w : Checkpoint.pending_write)) ->
                      Hashtbl.replace rows w.rid
                        {
                          Checkpoint.rid = w.rid;
                          value = w.value;
                          vs = tid;
                          vs_time = w.vs_time;
                          cts;
                        })
                    (List.rev !ws)))
        indoubt_list);
  let committed_list =
    Hashtbl.fold (fun tid cts acc -> (tid, cts) :: acc) committed []
  in
  (* Commit entries for the creators of recovered rows are part of the
     contract even when they predate the checkpoint window: write
     conflict checks on a recovered row look its creator up in the
     commit log. *)
  let committed_list =
    Hashtbl.fold
      (fun _ (r : Checkpoint.row) acc ->
        if r.vs > 0 && not (Hashtbl.mem committed r.vs) then (r.vs, r.cts) :: acc else acc)
      rows committed_list
  in
  {
    committed = List.sort compare committed_list;
    aborted = Hashtbl.fold (fun tid ats acc -> (tid, ats) :: acc) aborted [] |> List.sort compare;
    losers = Hashtbl.fold (fun tid () acc -> tid :: acc) live [] |> List.sort compare;
    rows = Hashtbl.fold (fun _ r acc -> r :: acc) rows []
           |> List.sort (fun (a : Checkpoint.row) b -> compare a.rid b.rid);
    segments =
      Hashtbl.fold
        (fun seg_id acc l ->
          {
            seg_id;
            cls = acc.sa_cls;
            hardened = acc.sa_hardened;
            versions = List.rev acc.sa_versions;
          }
          :: l)
        segs []
      |> List.sort (fun a b -> compare a.seg_id b.seg_id);
    dead_segs = List.sort_uniq compare !dead_segs;
    next_seg_id = !next_seg_id;
    oracle_floor = !max_ts + 1;
    replayed = !replayed;
    indoubt = indoubt_list;
    resolved_commits = List.sort compare !resolved_commits;
    decisions = Hashtbl.fold (fun gid cts acc -> (gid, cts) :: acc) decisions [] |> List.sort compare;
  }
