type t = { mutable total : int; mutable records : int; mutable errors : int }

let create () = { total = 0; records = 0; errors = 0 }

let append t ~bytes =
  if bytes < 0 then invalid_arg "Wal.append: negative size";
  match Failpoint.check "wal.append" with
  | `Fail -> t.errors <- t.errors + 1
  | `Pass ->
      t.total <- t.total + bytes;
      t.records <- t.records + 1

let total_bytes t = t.total
let records t = t.records
let errors t = t.errors
