type frame = { lsn : int; repr : string }

type durable = {
  frames : frame Vec.t;
  mutable next_lsn : int;
  mutable flushed_lsn : int;
  mutable fsyncs : int;
  mutable fsync_failures : int;
  mutable crashes : int;
}

type t = {
  mutable total : int;
  mutable records : int;
  mutable errors : int;
  mutable shard : int;
  mutable durable : durable option;
}

let create ?(shard = 0) () =
  if shard < 0 then invalid_arg "Wal.create: negative shard";
  { total = 0; records = 0; errors = 0; shard; durable = None }

let shard t = t.shard
let set_shard t shard = t.shard <- shard

let append t ?at ~bytes () =
  if bytes < 0 then invalid_arg "Wal.append: negative size";
  match Failpoint.check "wal.append" with
  | `Fail ->
      t.errors <- t.errors + 1;
      Metrics.bump "wal.errors";
      if Trace.on () then begin
        match at with
        | Some at -> Trace.instant Trace.Wal "append-error" ~at [ ("bytes", Trace.I bytes) ]
        | None -> ()
      end
  | `Pass ->
      t.total <- t.total + bytes;
      t.records <- t.records + 1;
      Metrics.bump "wal.appends";
      Metrics.bump_by "wal.bytes" bytes;
      if Trace.on () then begin
        match at with
        | Some at ->
            Trace.instant Trace.Wal "append" ~at
              [ ("bytes", Trace.I bytes); ("total", Trace.I t.total) ]
        | None -> ()
      end

let total_bytes t = t.total
let records t = t.records
let errors t = t.errors

(* ------------------------------------------------------------------ *)
(* Durable mode: typed record frames with LSNs and an fsync frontier.  *)

let enable_durability t =
  if t.durable = None then
    t.durable <-
      Some
        {
          frames = Vec.create ();
          next_lsn = 1;
          flushed_lsn = 0;
          fsyncs = 0;
          fsync_failures = 0;
          crashes = 0;
        }

let is_durable t = t.durable <> None

let log t ?(at = 0) payload =
  match t.durable with
  | None -> None
  | Some d -> (
      match Failpoint.check "wal.append" with
      | `Fail ->
          (* The simulated log device rejected the write: the record is
             lost before it gets an LSN, so the surviving log stays a
             gap-free prefix-of-intent; the loss is only visible in the
             conservative error count. *)
          t.errors <- t.errors + 1;
          Metrics.bump "wal.errors";
          if Trace.on () then
            Trace.instant Trace.Wal "log-error" ~at
              [ ("kind", Trace.S (Wal_record.kind_name payload)) ];
          None
      | `Pass ->
          let lsn = d.next_lsn in
          d.next_lsn <- lsn + 1;
          let repr = Wal_record.encode { Wal_record.lsn; at; shard = t.shard; payload } in
          Vec.push d.frames { lsn; repr };
          t.total <- t.total + String.length repr;
          t.records <- t.records + 1;
          Metrics.bump "wal.appends";
          Metrics.bump_by "wal.bytes" (String.length repr);
          if Trace.on () then
            Trace.instant Trace.Wal "log" ~at
              [ ("lsn", Trace.I lsn); ("kind", Trace.S (Wal_record.kind_name payload)) ];
          Some lsn)

let fsync t ?(at = 0) () =
  match t.durable with
  | None -> true
  | Some d -> (
      match Failpoint.check "wal.fsync" with
      | `Fail ->
          (* Like a rejected append, a rejected fsync is conservative:
             nothing new becomes durable and the failure is counted. *)
          t.errors <- t.errors + 1;
          d.fsync_failures <- d.fsync_failures + 1;
          Metrics.bump "wal.errors";
          if Trace.on () then
            Trace.instant Trace.Wal "fsync-error" ~at
              [ ("flushed", Trace.I d.flushed_lsn) ];
          false
      | `Pass ->
          d.flushed_lsn <- d.next_lsn - 1;
          d.fsyncs <- d.fsyncs + 1;
          Metrics.bump "wal.fsyncs";
          if Trace.on () then
            Trace.instant Trace.Wal "fsync" ~at [ ("flushed", Trace.I d.flushed_lsn) ];
          true)

let with_durable t name f =
  match t.durable with
  | None -> invalid_arg (Printf.sprintf "Wal.%s: durability not enabled" name)
  | Some d -> f d

let max_lsn t =
  match t.durable with
  | None -> 0
  | Some d -> (
      match Vec.length d.frames with 0 -> 0 | n -> (Vec.get d.frames (n - 1)).lsn)

let flushed_lsn t = match t.durable with None -> 0 | Some d -> d.flushed_lsn
let next_lsn t = match t.durable with None -> 1 | Some d -> d.next_lsn
let fsyncs t = match t.durable with None -> 0 | Some d -> d.fsyncs
let fsync_failures t = match t.durable with None -> 0 | Some d -> d.fsync_failures
let crashes t = match t.durable with None -> 0 | Some d -> d.crashes

let frames t =
  match t.durable with
  | None -> []
  | Some d -> Vec.fold_left (fun acc f -> (f.lsn, f.repr) :: acc) [] d.frames |> List.rev

(* The bootstrap checkpoint occupies LSNs 1-2 and is fsynced at engine
   creation; no crash may truncate below it or recovery would have no
   base image to replay from. *)
let bootstrap_lsn = 2

let crash t ~keep_lsn =
  with_durable t "crash" (fun d ->
      let keep = max keep_lsn bootstrap_lsn in
      Vec.filter_in_place (fun f -> f.lsn <= keep) d.frames;
      d.flushed_lsn <- min d.flushed_lsn keep;
      d.crashes <- d.crashes + 1;
      Metrics.bump "wal.crashes")

let truncate_to t ~lsn =
  with_durable t "truncate_to" (fun d ->
      Vec.filter_in_place (fun f -> f.lsn <= lsn) d.frames;
      d.flushed_lsn <- min d.flushed_lsn lsn)

let inject_raw t repr =
  (* A partially-written sector: it claimed its LSN on the device but
     never counted as a completed append, so records/bytes accounting
     stays conservative. *)
  with_durable t "inject_raw" (fun d ->
      let lsn = d.next_lsn in
      d.next_lsn <- lsn + 1;
      Vec.push d.frames { lsn; repr };
      lsn)

(* ------------------------------------------------------------------ *)
(* Log shipping: the replica-side mirror face.                         *)

let frames_from t ~lsn =
  match t.durable with
  | None -> []
  | Some d ->
      Vec.fold_left (fun acc f -> if f.lsn > lsn then (f.lsn, f.repr) :: acc else acc) [] d.frames
      |> List.rev

let receive t ~lsn ~repr =
  with_durable t "receive" (fun d ->
      if lsn < d.next_lsn then `Duplicate
      else if lsn > d.next_lsn then `Gap
      else begin
        Vec.push d.frames { lsn; repr };
        d.next_lsn <- lsn + 1;
        (* A shipped frame is durable on the mirror as soon as it is
           acknowledged: backups replay from their own device at
           promotion, so the ack must imply survival. *)
        d.flushed_lsn <- lsn;
        t.total <- t.total + String.length repr;
        t.records <- t.records + 1;
        `Applied
      end)

let adopt t ~src =
  match src.durable with
  | None -> invalid_arg "Wal.adopt: source durability not enabled"
  | Some sd ->
      with_durable t "adopt" (fun d ->
          Vec.clear d.frames;
          Vec.iter (fun f -> Vec.push d.frames f) sd.frames;
          d.next_lsn <- sd.next_lsn;
          d.flushed_lsn <- sd.flushed_lsn;
          t.total <- src.total;
          t.records <- src.records;
          t.shard <- src.shard)

let corrupt_frame t ~lsn f =
  with_durable t "corrupt_frame" (fun d ->
      let corrupted = ref false in
      Vec.iteri
        (fun i fr ->
          if fr.lsn = lsn then begin
            Vec.set d.frames i { fr with repr = f fr.repr };
            corrupted := true
          end)
        d.frames;
      !corrupted)
