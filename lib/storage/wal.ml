type t = { mutable total : int; mutable records : int; mutable errors : int }

let create () = { total = 0; records = 0; errors = 0 }

let append t ?at ~bytes () =
  if bytes < 0 then invalid_arg "Wal.append: negative size";
  match Failpoint.check "wal.append" with
  | `Fail ->
      t.errors <- t.errors + 1;
      Metrics.bump "wal.errors";
      if Trace.on () then begin
        match at with
        | Some at -> Trace.instant Trace.Wal "append-error" ~at [ ("bytes", Trace.I bytes) ]
        | None -> ()
      end
  | `Pass ->
      t.total <- t.total + bytes;
      t.records <- t.records + 1;
      Metrics.bump "wal.appends";
      Metrics.bump_by "wal.bytes" bytes;
      if Trace.on () then begin
        match at with
        | Some at ->
            Trace.instant Trace.Wal "append" ~at
              [ ("bytes", Trace.I bytes); ("total", Trace.I t.total) ]
        | None -> ()
      end

let total_bytes t = t.total
let records t = t.records
let errors t = t.errors
