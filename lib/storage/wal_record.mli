(** Typed logical WAL records.

    The durable log is a sequence of framed records: transaction
    lifecycle events, in-row version inserts, SIRO relocations into
    off-row segments, segment state transitions (harden / second-prune
    drop / vCutter cut) and checkpoint brackets. Each frame is one line
    of canonical {!Jsonx} — deterministic and diffable — carrying its
    LSN, the simulated timestamp, and a CRC-32 over the frame body so
    recovery can detect torn or corrupted tails.

    [Relocate] frames carry the displaced version's {e precomputed}
    commit interval [(lo, hi)] (Definition 3.3's [I(v)]): replay must
    not depend on commit-log entries older than the checkpoint window. *)

type payload =
  | Txn_begin of { tid : int }
  | Txn_commit of { tid : int; cts : int }
  | Txn_abort of { tid : int; ats : int }
  | Version_insert of { tid : int; rid : int; value : int }
      (** An uncommitted in-row write (ARIES-style: logged at write
          time; it only takes effect at replay if [tid] commits). *)
  | Relocate of {
      rid : int;
      vs : int;
      ve : int;
      vs_time : int;
      ve_time : int;
      bytes : int;
      value : int;
      seg_id : int;
      cls : string;
      lo : int;
      hi : int;
    }  (** A displaced version inserted into off-row segment [seg_id]. *)
  | Seg_harden of { seg_id : int }
  | Seg_drop of { seg_id : int }  (** Second prune of a whole sealed segment. *)
  | Seg_cut of { seg_id : int }  (** vCutter cut of a hardened segment. *)
  | Ckpt_begin
  | Ckpt_end of { snapshot : Jsonx.t }  (** See {!Checkpoint}. *)

type t = { lsn : int; at : int; payload : payload }

val kind_name : payload -> string

val encode : t -> string
(** One-line JSON frame ending in a [crc] member computed over the rest
    of the frame. *)

val encode_with_bad_crc : t -> string
(** Same frame with a deliberately wrong checksum — the chaos harness
    uses it to fabricate torn tails that honest recovery must refuse. *)

val decode : ?check_crc:bool -> string -> (t, string) result
(** Parse and verify one frame. [~check_crc:false] skips checksum
    verification — the sabotage knob recovery must {e not} use. *)
