(** Typed logical WAL records.

    The durable log is a sequence of framed records: transaction
    lifecycle events, in-row version inserts, SIRO relocations into
    off-row segments, segment state transitions (harden / second-prune
    drop / vCutter cut) and checkpoint brackets. Each frame is one line
    of canonical {!Jsonx} — deterministic and diffable — carrying its
    LSN, the simulated timestamp, and a CRC-32 over the frame body so
    recovery can detect torn or corrupted tails.

    [Relocate] frames carry the displaced version's {e precomputed}
    commit interval [(lo, hi)] (Definition 3.3's [I(v)]): replay must
    not depend on commit-log entries older than the checkpoint window. *)

type payload =
  | Txn_begin of { tid : int }
  | Txn_commit of { tid : int; cts : int }
  | Txn_abort of { tid : int; ats : int }
  | Version_insert of { tid : int; rid : int; value : int }
      (** An uncommitted in-row write (ARIES-style: logged at write
          time; it only takes effect at replay if [tid] commits). *)
  | Relocate of {
      rid : int;
      vs : int;
      ve : int;
      vs_time : int;
      ve_time : int;
      bytes : int;
      value : int;
      seg_id : int;
      cls : string;
      lo : int;
      hi : int;
    }  (** A displaced version inserted into off-row segment [seg_id]. *)
  | Seg_harden of { seg_id : int }
  | Seg_drop of { seg_id : int }  (** Second prune of a whole sealed segment. *)
  | Seg_cut of { seg_id : int }  (** vCutter cut of a hardened segment. *)
  | Ckpt_begin
  | Ckpt_end of { snapshot : Jsonx.t }  (** See {!Checkpoint}. *)
  | Prepare of { tid : int; coord : int; shards : int list }
      (** Presumed-abort 2PC, participant side: this shard holds [tid]'s
          writes ready to commit and has ceded the decision to shard
          [coord]. [shards] is the full write-participant set. A prepare
          with no later local outcome is {e in-doubt}: recovery must
          resolve it from the coordinator's log (commit iff a durable
          {!Coord_commit} exists; otherwise presumed abort). *)
  | Coord_commit of { gid : int; cts : int; shards : int list }
      (** Coordinator decision record — the 2PC commit point. Forced to
          the coordinator shard's log {e before} any participant applies
          the commit locally. *)
  | Coord_abort of { gid : int }
      (** Coordinator abort decision. Informational under presumed
          abort (absence of a decision means abort) — logged unforced. *)
  | Ack of { gid : int; shard : int }
      (** Coordinator-side note that participant [shard] has durably
          applied the decision. *)
  | Forget of { gid : int }
      (** All participants acked — the coordinator drops [gid] from its
          in-doubt table and need answer no more queries about it. *)
  | Promote of { epoch : int; node : int }
      (** Replication fencing marker: node [node] took over as this
          shard's primary for replication epoch [epoch]. Forced to the
          adopted log at promotion, so the new timeline durably records
          where the old primary's authority ended — frames and votes
          from earlier epochs are refused from here on. *)
  | Rep_ack of { epoch : int; node : int; upto : int }
      (** Primary-side note that backup [node] has durably mirrored the
          log through LSN [upto] under epoch [epoch] — the ship/ack
          watermark trail. Logged unforced; replay ignores it. *)

type t = { lsn : int; at : int; shard : int; payload : payload }
(** [shard] namespaces the frame: each shard's pipeline logs into its
    own WAL with its own LSN space, and recovery refuses frames whose
    tag does not match the log being analyzed (cross-shard frame
    interleaving is corruption, not data). Shard 0 — the unsharded
    namespace — is encoded without the tag, byte-identical to the
    pre-sharding format. *)

val kind_name : payload -> string

val encode : t -> string
(** One-line JSON frame ending in a [crc] member computed over the rest
    of the frame. *)

val encode_with_bad_crc : t -> string
(** Same frame with a deliberately wrong checksum — the chaos harness
    uses it to fabricate torn tails that honest recovery must refuse. *)

val decode : ?check_crc:bool -> string -> (t, string) result
(** Parse and verify one frame. [~check_crc:false] skips checksum
    verification — the sabotage knob recovery must {e not} use. *)
