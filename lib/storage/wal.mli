(** Redo-log volume accounting. Page splits in in-row engines "produce
    redo logs for capturing changes" (§2.1); we track the bytes so the
    cost shows up in the space metrics.

    Writes pass through the ["wal.append"] fail-point: a failed append
    is dropped (the simulated log device rejected it) and counted in
    {!errors} instead of {!total_bytes} — chaos campaigns assert the
    accounting stays conservative under storms of these. *)

type t

val create : unit -> t

val append : t -> ?at:int -> bytes:int -> unit -> unit
(** Append a record, unless the ["wal.append"] fail-point fires. [at]
    is the simulated time in ns; when given, the append (or its
    injected failure) is also recorded on the WAL trace track and in
    the metrics registry in scope. *)

val total_bytes : t -> int
val records : t -> int

val errors : t -> int
(** Appends rejected by fault injection. *)
