(** Write-ahead log: redo-volume accounting plus an opt-in durable mode.

    The byte-accounting face is unchanged from the seed: page splits in
    in-row engines "produce redo logs for capturing changes" (§2.1); we
    track the bytes so the cost shows up in the space metrics. Writes
    pass through the ["wal.append"] fail-point: a failed append is
    dropped (the simulated log device rejected it) and counted in
    {!errors} instead of {!total_bytes} — chaos campaigns assert the
    accounting stays conservative under storms of these.

    {!enable_durability} switches on the typed-record log underneath the
    same counters: {!log} frames a {!Wal_record.payload} with an LSN and
    CRC, {!fsync} advances the durability frontier (through the
    ["wal.fsync"] fail-point, failures counted in {!errors} the same
    conservative way), and {!crash} models power loss by discarding
    every frame past a survival point. A non-durable [t] behaves
    byte-for-byte as before — {!log} is a no-op returning [None] with
    no side effects, which is what keeps non-crash runs bit-identical. *)

type t

val create : ?shard:int -> unit -> t
(** [shard] (default 0) namespaces the log: every frame {!log} writes
    carries the tag, and {!Wal_recovery.analyze} refuses frames tagged
    for a different shard. Shard 0 encodes without the tag, preserving
    the pre-sharding frame bytes. *)

val shard : t -> int
val set_shard : t -> int -> unit

val append : t -> ?at:int -> bytes:int -> unit -> unit
(** Append a record, unless the ["wal.append"] fail-point fires. [at]
    is the simulated time in ns; when given, the append (or its
    injected failure) is also recorded on the WAL trace track and in
    the metrics registry in scope. *)

val total_bytes : t -> int
val records : t -> int

val errors : t -> int
(** Appends and fsyncs rejected by fault injection. *)

(** {1 Durable mode} *)

val enable_durability : t -> unit
(** Idempotent. Until called, {!log} returns [None] without side
    effects and {!fsync} returns [true] without side effects. *)

val is_durable : t -> bool

val log : t -> ?at:int -> Wal_record.payload -> int option
(** Frame and append a typed record; returns its LSN. [None] when
    durability is off, or when the ["wal.append"] fail-point rejected
    the write (then the record is lost {e before} receiving an LSN, so
    surviving LSNs are gap-free, and the loss is counted in
    {!errors}). *)

val fsync : t -> ?at:int -> unit -> bool
(** Advance the durability frontier to the last logged record. Goes
    through the ["wal.fsync"] fail-point; a rejected fsync leaves the
    frontier alone, counts into {!errors}, and returns [false]. *)

val max_lsn : t -> int
(** LSN of the last surviving frame (0 if none / non-durable). *)

val flushed_lsn : t -> int
(** The durability frontier: frames at or below it survive a {!crash}
    with no explicit survival point. *)

val next_lsn : t -> int
(** The LSN the next append (or {!inject_raw}) will claim. Differs from
    [max_lsn t + 1] after a crash: LSNs are never reused. *)

val fsyncs : t -> int
val fsync_failures : t -> int
val crashes : t -> int

val frames : t -> (int * string) list
(** Surviving frames in LSN order, for recovery scans. *)

val bootstrap_lsn : int
(** LSN of the engine-creation checkpoint's [Ckpt_end] frame; {!crash}
    clamps its survival point here so recovery always has a base
    image. *)

val crash : t -> keep_lsn:int -> unit
(** Power loss: discard every frame with LSN beyond
    [max keep_lsn bootstrap_lsn] and pull the flushed frontier back to
    the survival point. LSNs are never reused afterwards. *)

val truncate_to : t -> lsn:int -> unit
(** Physically drop frames beyond [lsn] — recovery calls this after
    identifying the last trustworthy frame, so a corrupt tail cannot
    shadow post-recovery appends on the next scan. *)

val inject_raw : t -> string -> int
(** Append a raw (typically corrupt) frame, claiming the next LSN but
    bypassing the append counters — the harness's torn-sector model.
    Returns the claimed LSN. *)

(** {1 Log shipping} *)

val frames_from : t -> lsn:int -> (int * string) list
(** Surviving frames strictly beyond [lsn], in LSN order — the
    primary-side read for shipping a backup everything past its
    replication cursor. *)

val receive : t -> lsn:int -> repr:string -> [ `Applied | `Duplicate | `Gap ]
(** Mirror-side append of a shipped frame. Contiguous ([lsn] is exactly
    the next expected) frames are appended and immediately count as
    flushed — a backup acknowledges only what would survive its own
    crash. Frames at an already-seen LSN are [`Duplicate]s (idempotent
    receive under a duplicating bus); frames beyond the next expected
    LSN are a [`Gap] and refused, so a mirror is always an exact prefix
    of its primary's device. *)

val adopt : t -> src:t -> unit
(** Make [t]'s device an exact copy of [src]'s: frames, LSN cursor,
    flushed frontier, shard tag and byte accounting. State transfer —
    used at promotion to seed the new primary's device from the
    best mirror, and to resync the surviving backups onto the new
    primary's timeline. *)

val corrupt_frame : t -> lsn:int -> (string -> string) -> bool
(** In-place bit-flip injection on a surviving frame; [false] if no
    frame has that LSN. *)
