(** Fuzzy checkpoint snapshots.

    A checkpoint is one [Ckpt_end] WAL record whose payload captures
    everything redo needs so replay cost is bounded by the distance to
    the last checkpoint rather than by history (the bounded-space MVGC
    motivation):

    - the timestamp-oracle frontier and the live-transaction begin set
      (the dead-zone inputs);
    - a {e bounded} commit-log window — outcomes of transactions no
      older than the oldest live begin timestamp; older commit
      timestamps recovery could still need travel with the data that
      references them (each row carries its creator's [cts], each
      relocated version its precomputed prune interval);
    - the last-committed in-row image of every record, plus the
      uncommitted write sets of in-flight transactions ([pending]) so a
      transaction that spans the checkpoint and commits after it can be
      replayed without rereading pre-checkpoint log;
    - every live off-row segment with its full version contents and
      descriptor state (class, hardened or still buffered).

    The checkpoint is fuzzy: it is taken while transactions are in
    flight, and never waits for them. *)

type seg_version = {
  rid : int;
  vs : int;
  ve : int;
  vs_time : int;
  ve_time : int;
  bytes : int;
  value : int;
  lo : int;
  hi : int;
}

type seg = { seg_id : int; cls : string; hardened : bool; versions : seg_version list }

type row = { rid : int; value : int; vs : int; vs_time : int; cts : int }
(** Last-committed in-row version of record [rid]; [cts] is the
    creator's commit timestamp (0 for the initial version [vs = 0]). *)

type pending_write = { rid : int; value : int; vs_time : int }
type pending = { tid : int; writes : pending_write list }

type t = {
  at : int;
  oracle_next : int;
  live : int list;
  committed : (int * int) list;  (** [(tid, commit_ts)], bounded window. *)
  aborted : (int * int) list;
  rows : row list;
  pending : pending list;
  segments : seg list;
  next_seg_id : int;
  prepared : (int * int) list;
      (** [(tid, coord_shard)] — transactions 2PC-prepared on this shard
          with no decision applied locally at snapshot time. Without
          this member a crash landing between the checkpoint and the
          coordinator's decision would replay the transaction as an
          ordinary loser and roll it back even when the coordinator
          committed it — the in-doubt state must survive the snapshot. *)
  decisions : (int * int) list;
      (** [(gid, commit_ts)] — coordinator-side decided-but-unforgotten
          transactions (this shard acting as coordinator), so in-doubt
          resolution keeps working even if pre-checkpoint log is
          archived. Both 2PC members encode only when non-empty;
          unsharded snapshots keep the pre-sharding bytes. *)
}

val to_json : t -> Jsonx.t
val of_json : Jsonx.t -> (t, string) result
