type t = {
  page_bytes : int;
  slot_bytes : int;
  wal : Wal.t;
  pages : Page.t Vec.t;
  page_of_rid : (int, Page.t) Hashtbl.t;
  rids_of_page : (int, int Vec.t) Hashtbl.t;
  vbytes_of_rid : (int, int) Hashtbl.t;
  mutable records : int;
  mutable splits : int;
  mutable version_bytes : int;
}

let fresh_page t =
  let page = Page.create ~id:(Vec.length t.pages) ~cap_bytes:t.page_bytes in
  Vec.push t.pages page;
  Hashtbl.replace t.rids_of_page page.Page.id (Vec.create ());
  page

let place t page rid =
  Hashtbl.replace t.page_of_rid rid page;
  Vec.push (Hashtbl.find t.rids_of_page page.Page.id) rid;
  Page.add_bytes page t.slot_bytes;
  page.Page.records <- page.Page.records + 1

let create ~page_bytes ~slot_bytes ~records ~fill_factor ~wal =
  if slot_bytes <= 0 || slot_bytes > page_bytes then invalid_arg "Heap.create: bad slot size";
  if fill_factor <= 0. || fill_factor > 1. then invalid_arg "Heap.create: bad fill factor";
  let t =
    {
      page_bytes;
      slot_bytes;
      wal;
      pages = Vec.create ();
      page_of_rid = Hashtbl.create (2 * records);
      rids_of_page = Hashtbl.create 256;
      vbytes_of_rid = Hashtbl.create (2 * records);
      records;
      splits = 0;
      version_bytes = 0;
    }
  in
  let budget = int_of_float (fill_factor *. float_of_int page_bytes) in
  let per_page = max 1 (budget / slot_bytes) in
  let current = ref (fresh_page t) in
  for rid = 0 to records - 1 do
    if (!current).Page.records >= per_page then current := fresh_page t;
    place t !current rid
  done;
  t

let page_count t = Vec.length t.pages
let record_count t = t.records
let page_of t ~rid = Hashtbl.find t.page_of_rid rid
let splits t = t.splits
let total_bytes t = Vec.fold_left (fun acc p -> acc + p.Page.used_bytes) 0 t.pages
let version_bytes t = t.version_bytes
let rid_version_bytes t ~rid = Option.value ~default:0 (Hashtbl.find_opt t.vbytes_of_rid rid)

(* Split: move the upper half of the page's records (and their version
   bytes) to a fresh page; both pages' byte accounting is rebuilt. *)
let split_page t page =
  let rids = Hashtbl.find t.rids_of_page page.Page.id in
  let all = Vec.to_array rids in
  let n = Array.length all in
  let keep = n / 2 in
  if keep = 0 || keep = n then false
  else begin
    let fresh = fresh_page t in
    (* Rebuild the old page's membership with the lower half. *)
    let kept = Vec.create () in
    let moved_bytes = ref 0 in
    Array.iteri
      (fun i rid ->
        if i < keep then Vec.push kept rid
        else begin
          Hashtbl.replace t.page_of_rid rid fresh;
          Vec.push (Hashtbl.find t.rids_of_page fresh.Page.id) rid;
          fresh.Page.records <- fresh.Page.records + 1;
          let vb = rid_version_bytes t ~rid in
          moved_bytes := !moved_bytes + t.slot_bytes + vb
        end)
      all;
    Hashtbl.replace t.rids_of_page page.Page.id kept;
    page.Page.records <- keep;
    Page.remove_bytes page !moved_bytes;
    Page.add_bytes fresh !moved_bytes;
    Wal.append t.wal ~bytes:!moved_bytes ();
    t.splits <- t.splits + 1;
    true
  end

let add_version_bytes t ~rid ~bytes =
  if bytes < 0 then invalid_arg "Heap.add_version_bytes: negative";
  let page = page_of t ~rid in
  Page.add_bytes page bytes;
  Hashtbl.replace t.vbytes_of_rid rid (rid_version_bytes t ~rid + bytes);
  t.version_bytes <- t.version_bytes + bytes;
  if Page.overflowed page && split_page t page then `Split else `Fits

let remove_version_bytes t ~rid ~bytes =
  if bytes < 0 then invalid_arg "Heap.remove_version_bytes: negative";
  let held = rid_version_bytes t ~rid in
  if bytes > held then invalid_arg "Heap.remove_version_bytes: more than held";
  let page = page_of t ~rid in
  Page.remove_bytes page bytes;
  Hashtbl.replace t.vbytes_of_rid rid (held - bytes);
  t.version_bytes <- t.version_bytes - bytes
