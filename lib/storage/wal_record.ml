type payload =
  | Txn_begin of { tid : int }
  | Txn_commit of { tid : int; cts : int }
  | Txn_abort of { tid : int; ats : int }
  | Version_insert of { tid : int; rid : int; value : int }
  | Relocate of {
      rid : int;
      vs : int;
      ve : int;
      vs_time : int;
      ve_time : int;
      bytes : int;
      value : int;
      seg_id : int;
      cls : string;
      lo : int;
      hi : int;
    }
  | Seg_harden of { seg_id : int }
  | Seg_drop of { seg_id : int }
  | Seg_cut of { seg_id : int }
  | Ckpt_begin
  | Ckpt_end of { snapshot : Jsonx.t }
  | Prepare of { tid : int; coord : int; shards : int list }
  | Coord_commit of { gid : int; cts : int; shards : int list }
  | Coord_abort of { gid : int }
  | Ack of { gid : int; shard : int }
  | Forget of { gid : int }
  | Promote of { epoch : int; node : int }
  | Rep_ack of { epoch : int; node : int; upto : int }

type t = { lsn : int; at : int; shard : int; payload : payload }

let kind_name = function
  | Txn_begin _ -> "txn-begin"
  | Txn_commit _ -> "txn-commit"
  | Txn_abort _ -> "txn-abort"
  | Version_insert _ -> "version-insert"
  | Relocate _ -> "relocate"
  | Seg_harden _ -> "seg-harden"
  | Seg_drop _ -> "seg-drop"
  | Seg_cut _ -> "seg-cut"
  | Ckpt_begin -> "ckpt-begin"
  | Ckpt_end _ -> "ckpt-end"
  | Prepare _ -> "2pc-prepare"
  | Coord_commit _ -> "2pc-commit"
  | Coord_abort _ -> "2pc-abort"
  | Ack _ -> "2pc-ack"
  | Forget _ -> "2pc-forget"
  | Promote _ -> "rep-promote"
  | Rep_ack _ -> "rep-ack"

let payload_fields = function
  | Txn_begin { tid } -> [ ("tid", Jsonx.Int tid) ]
  | Txn_commit { tid; cts } -> [ ("tid", Jsonx.Int tid); ("cts", Jsonx.Int cts) ]
  | Txn_abort { tid; ats } -> [ ("tid", Jsonx.Int tid); ("ats", Jsonx.Int ats) ]
  | Version_insert { tid; rid; value } ->
      [ ("tid", Jsonx.Int tid); ("rid", Jsonx.Int rid); ("value", Jsonx.Int value) ]
  | Relocate { rid; vs; ve; vs_time; ve_time; bytes; value; seg_id; cls; lo; hi } ->
      [
        ("rid", Jsonx.Int rid);
        ("vs", Jsonx.Int vs);
        ("ve", Jsonx.Int ve);
        ("vs_time", Jsonx.Int vs_time);
        ("ve_time", Jsonx.Int ve_time);
        ("bytes", Jsonx.Int bytes);
        ("value", Jsonx.Int value);
        ("seg", Jsonx.Int seg_id);
        ("cls", Jsonx.Str cls);
        ("lo", Jsonx.Int lo);
        ("hi", Jsonx.Int hi);
      ]
  | Seg_harden { seg_id } | Seg_drop { seg_id } | Seg_cut { seg_id } ->
      [ ("seg", Jsonx.Int seg_id) ]
  | Ckpt_begin -> []
  | Ckpt_end { snapshot } -> [ ("snapshot", snapshot) ]
  | Prepare { tid; coord; shards } ->
      [
        ("tid", Jsonx.Int tid);
        ("coord", Jsonx.Int coord);
        ("shards", Jsonx.Arr (List.map (fun s -> Jsonx.Int s) shards));
      ]
  | Coord_commit { gid; cts; shards } ->
      [
        ("gid", Jsonx.Int gid);
        ("cts", Jsonx.Int cts);
        ("shards", Jsonx.Arr (List.map (fun s -> Jsonx.Int s) shards));
      ]
  | Coord_abort { gid } -> [ ("gid", Jsonx.Int gid) ]
  | Ack { gid; shard } -> [ ("gid", Jsonx.Int gid); ("shard", Jsonx.Int shard) ]
  | Forget { gid } -> [ ("gid", Jsonx.Int gid) ]
  | Promote { epoch; node } -> [ ("epoch", Jsonx.Int epoch); ("node", Jsonx.Int node) ]
  | Rep_ack { epoch; node; upto } ->
      [ ("epoch", Jsonx.Int epoch); ("node", Jsonx.Int node); ("upto", Jsonx.Int upto) ]

let body_json t =
  (* The shard tag is emitted only when nonzero: shard 0 is the
     unsharded (single-pipeline) namespace and its frames must stay
     byte-identical to the pre-sharding format. *)
  let shard_field = if t.shard = 0 then [] else [ ("sh", Jsonx.Int t.shard) ] in
  Jsonx.Obj
    ([ ("lsn", Jsonx.Int t.lsn); ("at", Jsonx.Int t.at) ]
    @ shard_field
    @ [ ("kind", Jsonx.Str (kind_name t.payload)) ]
    @ payload_fields t.payload)

let frame_of_body body ~crc =
  match body with
  | Jsonx.Obj fields -> Jsonx.Obj (fields @ [ ("crc", Jsonx.Int crc) ])
  | _ -> invalid_arg "Wal_record.frame_of_body: not an object"

let encode t =
  let body = body_json t in
  let crc = Crc32.string (Jsonx.to_string body) in
  Jsonx.to_string (frame_of_body body ~crc)

let encode_with_bad_crc t =
  (* A deliberately stale checksum: the frame parses as JSON but fails
     verification — the shape of a torn sector whose payload bytes were
     written and whose trailing checksum was not. *)
  let body = body_json t in
  let crc = Crc32.string (Jsonx.to_string body) lxor 0x5a5a5a5a in
  Jsonx.to_string (frame_of_body body ~crc)

let int_field name obj =
  match Option.bind (Jsonx.member name obj) Jsonx.to_int with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing int field %S" name)

let str_field name obj =
  match Option.bind (Jsonx.member name obj) Jsonx.to_str with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing string field %S" name)

let ( let* ) = Result.bind

let int_list_field name obj =
  match Option.bind (Jsonx.member name obj) Jsonx.to_arr with
  | None -> Error (Printf.sprintf "missing array field %S" name)
  | Some items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | x :: rest -> (
            match Jsonx.to_int x with
            | Some n -> go (n :: acc) rest
            | None -> Error (Printf.sprintf "non-int element in array field %S" name))
      in
      go [] items

let payload_of_json kind obj =
  match kind with
  | "txn-begin" ->
      let* tid = int_field "tid" obj in
      Ok (Txn_begin { tid })
  | "txn-commit" ->
      let* tid = int_field "tid" obj in
      let* cts = int_field "cts" obj in
      Ok (Txn_commit { tid; cts })
  | "txn-abort" ->
      let* tid = int_field "tid" obj in
      let* ats = int_field "ats" obj in
      Ok (Txn_abort { tid; ats })
  | "version-insert" ->
      let* tid = int_field "tid" obj in
      let* rid = int_field "rid" obj in
      let* value = int_field "value" obj in
      Ok (Version_insert { tid; rid; value })
  | "relocate" ->
      let* rid = int_field "rid" obj in
      let* vs = int_field "vs" obj in
      let* ve = int_field "ve" obj in
      let* vs_time = int_field "vs_time" obj in
      let* ve_time = int_field "ve_time" obj in
      let* bytes = int_field "bytes" obj in
      let* value = int_field "value" obj in
      let* seg_id = int_field "seg" obj in
      let* cls = str_field "cls" obj in
      let* lo = int_field "lo" obj in
      let* hi = int_field "hi" obj in
      Ok (Relocate { rid; vs; ve; vs_time; ve_time; bytes; value; seg_id; cls; lo; hi })
  | "seg-harden" ->
      let* seg_id = int_field "seg" obj in
      Ok (Seg_harden { seg_id })
  | "seg-drop" ->
      let* seg_id = int_field "seg" obj in
      Ok (Seg_drop { seg_id })
  | "seg-cut" ->
      let* seg_id = int_field "seg" obj in
      Ok (Seg_cut { seg_id })
  | "ckpt-begin" -> Ok Ckpt_begin
  | "ckpt-end" -> (
      match Jsonx.member "snapshot" obj with
      | Some snapshot -> Ok (Ckpt_end { snapshot })
      | None -> Error "missing field \"snapshot\"")
  | "2pc-prepare" ->
      let* tid = int_field "tid" obj in
      let* coord = int_field "coord" obj in
      let* shards = int_list_field "shards" obj in
      Ok (Prepare { tid; coord; shards })
  | "2pc-commit" ->
      let* gid = int_field "gid" obj in
      let* cts = int_field "cts" obj in
      let* shards = int_list_field "shards" obj in
      Ok (Coord_commit { gid; cts; shards })
  | "2pc-abort" ->
      let* gid = int_field "gid" obj in
      Ok (Coord_abort { gid })
  | "2pc-ack" ->
      let* gid = int_field "gid" obj in
      let* shard = int_field "shard" obj in
      Ok (Ack { gid; shard })
  | "2pc-forget" ->
      let* gid = int_field "gid" obj in
      Ok (Forget { gid })
  | "rep-promote" ->
      let* epoch = int_field "epoch" obj in
      let* node = int_field "node" obj in
      Ok (Promote { epoch; node })
  | "rep-ack" ->
      let* epoch = int_field "epoch" obj in
      let* node = int_field "node" obj in
      let* upto = int_field "upto" obj in
      Ok (Rep_ack { epoch; node; upto })
  | k -> Error (Printf.sprintf "unknown record kind %S" k)

let decode ?(check_crc = true) repr =
  let* json =
    match Jsonx.of_string repr with Ok j -> Ok j | Error e -> Error ("bad frame: " ^ e)
  in
  let* fields =
    match json with Jsonx.Obj fields -> Ok fields | _ -> Error "frame is not an object"
  in
  let* () =
    if not check_crc then Ok ()
    else
      let* stored = int_field "crc" json in
      (* Recompute over the frame minus its crc member, in parsed member
         order — the encoder appends crc last, so a round-tripped frame
         reproduces the exact checksummed bytes. *)
      let body = Jsonx.Obj (List.filter (fun (k, _) -> k <> "crc") fields) in
      let computed = Crc32.string (Jsonx.to_string body) in
      if stored = computed then Ok ()
      else Error (Printf.sprintf "crc mismatch (stored %d, computed %d)" stored computed)
  in
  let* lsn = int_field "lsn" json in
  let* at = int_field "at" json in
  let shard = match Option.bind (Jsonx.member "sh" json) Jsonx.to_int with Some s -> s | None -> 0 in
  let* kind = str_field "kind" json in
  let* payload = payload_of_json kind json in
  Ok { lsn; at; shard; payload }
