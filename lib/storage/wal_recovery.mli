(** Log analysis for restart recovery — and the independent oracle the
    post-recovery invariants check the engine against.

    {!analyze} scans the surviving frames in LSN order, decoding and
    CRC-verifying each, and truncates at the first bad frame: a torn or
    bit-flipped record ends the trustworthy prefix. {!expect} then folds
    checkpoint + redo into the {e expected} post-recovery state:
    transaction outcomes, losers to roll back, the committed in-row
    image, and the surviving off-row segments with their contents.

    The engine's restart path and the {!Invariant} checker both consume
    this module — the engine with its configured knobs (including the
    [skip_tail_check] sabotage), the checker always honestly — which is
    what makes an unsound recovery provably catchable. *)

type analysis = {
  records : Wal_record.t list;  (** Decoded trustworthy prefix, LSN order. *)
  survivors : int;
  truncate_lsn : int;  (** LSN of the last trustworthy frame (0 if none). *)
  dropped : int;  (** Frames rejected at the tail. *)
  checkpoint : (int * Checkpoint.t) option;
      (** Last complete checkpoint in the prefix, with its [Ckpt_end] LSN. *)
}

val analyze : ?check_crc:bool -> Wal.t -> analysis
(** [~check_crc:false] is the sabotage knob: frames are still parsed but
    checksums are ignored, so a fabricated torn tail gets replayed. A
    frame whose shard tag differs from [Wal.shard wal] ends the
    trustworthy prefix regardless of the knob: shard logs are disjoint
    LSN namespaces and interleaved foreign frames are corruption. *)

type seg_build = {
  seg_id : int;
  cls : string;
  hardened : bool;
  versions : Checkpoint.seg_version list;  (** Relocation order. *)
}

type expectation = {
  committed : (int * int) list;
      (** [(tid, cts)], sorted — the checkpoint window, redo outcomes,
          and the creators of recovered rows. *)
  aborted : (int * int) list;
  losers : int list;  (** Began, no durable outcome: must be rolled back. *)
  rows : Checkpoint.row list;  (** Expected in-row image, sorted by rid. *)
  segments : seg_build list;  (** Surviving segments, sorted by id. *)
  dead_segs : int list;  (** Dropped or cut — must not be resurrected. *)
  next_seg_id : int;
  oracle_floor : int;  (** Timestamp oracle must resume at or above this. *)
  replayed : int;  (** Redo records applied past the checkpoint. *)
  indoubt : (int * int) list;
      (** [(tid, coord_shard)], sorted — 2PC-prepared here with no local
          outcome. Resolved through [?resolve] when given; the
          unresolved remainder stays in {!field-losers} (presumed
          abort). *)
  resolved_commits : (int * int) list;
      (** [(tid, cts)] in-doubt transactions the resolver committed —
          their pending writes are folded into {!field-rows}. *)
  decisions : (int * int) list;
      (** [(gid, cts)] coordinator commit decisions durable in {e this}
          log (checkpoint window plus replayed [Coord_commit] records) —
          what other shards' resolvers come asking for. *)
}

val expect : ?resolve:(tid:int -> coord:int -> int option) -> analysis -> expectation
(** [resolve ~tid ~coord] answers an in-doubt participant from the
    coordinator shard's durable state: [Some cts] iff a [Coord_commit]
    for [tid] survived in shard [coord]'s log. Without a resolver every
    in-doubt transaction is presumed aborted. *)
