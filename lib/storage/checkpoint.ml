type seg_version = {
  rid : int;
  vs : int;
  ve : int;
  vs_time : int;
  ve_time : int;
  bytes : int;
  value : int;
  lo : int;
  hi : int;
}

type seg = { seg_id : int; cls : string; hardened : bool; versions : seg_version list }
type row = { rid : int; value : int; vs : int; vs_time : int; cts : int }
type pending_write = { rid : int; value : int; vs_time : int }
type pending = { tid : int; writes : pending_write list }

type t = {
  at : int;
  oracle_next : int;
  live : int list;
  committed : (int * int) list;
  aborted : (int * int) list;
  rows : row list;
  pending : pending list;
  segments : seg list;
  next_seg_id : int;
  prepared : (int * int) list;
  decisions : (int * int) list;
}

let seg_version_json (v : seg_version) =
  Jsonx.Obj
    [
      ("rid", Jsonx.Int v.rid);
      ("vs", Jsonx.Int v.vs);
      ("ve", Jsonx.Int v.ve);
      ("vs_time", Jsonx.Int v.vs_time);
      ("ve_time", Jsonx.Int v.ve_time);
      ("bytes", Jsonx.Int v.bytes);
      ("value", Jsonx.Int v.value);
      ("lo", Jsonx.Int v.lo);
      ("hi", Jsonx.Int v.hi);
    ]

let seg_json s =
  Jsonx.Obj
    [
      ("seg", Jsonx.Int s.seg_id);
      ("cls", Jsonx.Str s.cls);
      ("hardened", Jsonx.Bool s.hardened);
      ("versions", Jsonx.Arr (List.map seg_version_json s.versions));
    ]

let row_json (r : row) =
  Jsonx.Obj
    [
      ("rid", Jsonx.Int r.rid);
      ("value", Jsonx.Int r.value);
      ("vs", Jsonx.Int r.vs);
      ("vs_time", Jsonx.Int r.vs_time);
      ("cts", Jsonx.Int r.cts);
    ]

let pending_json (p : pending) =
  Jsonx.Obj
    [
      ("tid", Jsonx.Int p.tid);
      ( "writes",
        Jsonx.Arr
          (List.map
             (fun w ->
               Jsonx.Obj
                 [
                   ("rid", Jsonx.Int w.rid);
                   ("value", Jsonx.Int w.value);
                   ("vs_time", Jsonx.Int w.vs_time);
                 ])
             p.writes) );
    ]

let outcome_json (tid, ts) = Jsonx.Arr [ Jsonx.Int tid; Jsonx.Int ts ]

let to_json t =
  (* The 2PC members are emitted only when non-empty: unsharded
     snapshots keep the pre-sharding byte format. *)
  let twopc =
    (if t.prepared = [] then []
     else [ ("prepared", Jsonx.Arr (List.map outcome_json t.prepared)) ])
    @
    if t.decisions = [] then []
    else [ ("decisions", Jsonx.Arr (List.map outcome_json t.decisions)) ]
  in
  Jsonx.Obj
    ([
       ("at", Jsonx.Int t.at);
       ("oracle_next", Jsonx.Int t.oracle_next);
       ("live", Jsonx.Arr (List.map (fun ts -> Jsonx.Int ts) t.live));
       ("committed", Jsonx.Arr (List.map outcome_json t.committed));
       ("aborted", Jsonx.Arr (List.map outcome_json t.aborted));
       ("rows", Jsonx.Arr (List.map row_json t.rows));
       ("pending", Jsonx.Arr (List.map pending_json t.pending));
       ("segments", Jsonx.Arr (List.map seg_json t.segments));
       ("next_seg_id", Jsonx.Int t.next_seg_id);
     ]
    @ twopc)

let ( let* ) = Result.bind

let int_field name obj =
  match Option.bind (Jsonx.member name obj) Jsonx.to_int with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "checkpoint: missing int field %S" name)

let str_field name obj =
  match Option.bind (Jsonx.member name obj) Jsonx.to_str with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "checkpoint: missing string field %S" name)

let bool_field name obj =
  match Jsonx.member name obj with
  | Some (Jsonx.Bool b) -> Ok b
  | _ -> Error (Printf.sprintf "checkpoint: missing bool field %S" name)

let arr_field name obj =
  match Option.bind (Jsonx.member name obj) Jsonx.to_arr with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "checkpoint: missing array field %S" name)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let outcome_of_json = function
  | Jsonx.Arr [ Jsonx.Int tid; Jsonx.Int ts ] -> Ok (tid, ts)
  | _ -> Error "checkpoint: malformed outcome pair"

let seg_version_of_json j =
  let* rid = int_field "rid" j in
  let* vs = int_field "vs" j in
  let* ve = int_field "ve" j in
  let* vs_time = int_field "vs_time" j in
  let* ve_time = int_field "ve_time" j in
  let* bytes = int_field "bytes" j in
  let* value = int_field "value" j in
  let* lo = int_field "lo" j in
  let* hi = int_field "hi" j in
  Ok { rid; vs; ve; vs_time; ve_time; bytes; value; lo; hi }

let seg_of_json j =
  let* seg_id = int_field "seg" j in
  let* cls = str_field "cls" j in
  let* hardened = bool_field "hardened" j in
  let* versions = arr_field "versions" j in
  let* versions = map_result seg_version_of_json versions in
  Ok { seg_id; cls; hardened; versions }

let row_of_json j =
  let* rid = int_field "rid" j in
  let* value = int_field "value" j in
  let* vs = int_field "vs" j in
  let* vs_time = int_field "vs_time" j in
  let* cts = int_field "cts" j in
  Ok { rid; value; vs; vs_time; cts }

let pending_of_json j =
  let* tid = int_field "tid" j in
  let* writes = arr_field "writes" j in
  let* writes =
    map_result
      (fun w ->
        let* rid = int_field "rid" w in
        let* value = int_field "value" w in
        let* vs_time = int_field "vs_time" w in
        Ok { rid; value; vs_time })
      writes
  in
  Ok { tid; writes }

let of_json j =
  let* at = int_field "at" j in
  let* oracle_next = int_field "oracle_next" j in
  let* live = arr_field "live" j in
  let* live =
    map_result
      (function Jsonx.Int ts -> Ok ts | _ -> Error "checkpoint: malformed live entry")
      live
  in
  let* committed = arr_field "committed" j in
  let* committed = map_result outcome_of_json committed in
  let* aborted = arr_field "aborted" j in
  let* aborted = map_result outcome_of_json aborted in
  let* rows = arr_field "rows" j in
  let* rows = map_result row_of_json rows in
  let* pending = arr_field "pending" j in
  let* pending = map_result pending_of_json pending in
  let* segments = arr_field "segments" j in
  let* segments = map_result seg_of_json segments in
  let* next_seg_id = int_field "next_seg_id" j in
  let pairs_opt name =
    match Option.bind (Jsonx.member name j) Jsonx.to_arr with
    | None -> Ok []
    | Some items -> map_result outcome_of_json items
  in
  let* prepared = pairs_opt "prepared" in
  let* decisions = pairs_opt "decisions" in
  Ok
    {
      at;
      oracle_next;
      live;
      committed;
      aborted;
      rows;
      pending;
      segments;
      next_seg_id;
      prepared;
      decisions;
    }
