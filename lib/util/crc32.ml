(* CRC-32 (IEEE 802.3 polynomial, reflected), table-driven. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xedb88320 lxor (!c lsr 1) else c := !c lsr 1
         done;
         !c))

let update crc s =
  let table = Lazy.force table in
  let crc = ref (crc lxor 0xffffffff) in
  String.iter
    (fun ch -> crc := table.((!crc lxor Char.code ch) land 0xff) lxor (!crc lsr 8))
    s;
  !crc lxor 0xffffffff

let string s = update 0 s
