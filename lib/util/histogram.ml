type t = {
  bucket_width : int;
  mutable counts : int array;
  mutable total : int;
  mutable max_value : int;
}

let create ?(bucket_width = 1) () =
  if bucket_width <= 0 then invalid_arg "Histogram.create";
  { bucket_width; counts = Array.make 16 0; total = 0; max_value = 0 }

let ensure t idx =
  let cap = Array.length t.counts in
  if idx >= cap then begin
    let new_cap = max (idx + 1) (cap * 2) in
    let counts = Array.make new_cap 0 in
    Array.blit t.counts 0 counts 0 cap;
    t.counts <- counts
  end

let add_many t v ~count =
  if v < 0 then invalid_arg "Histogram.add: negative value";
  if count < 0 then invalid_arg "Histogram.add_many: negative count";
  let idx = v / t.bucket_width in
  ensure t idx;
  t.counts.(idx) <- t.counts.(idx) + count;
  t.total <- t.total + count;
  if v > t.max_value then t.max_value <- v

let add t v = add_many t v ~count:1
let total t = t.total
let max_value t = t.max_value

(* Bucket [i] is reported at its inclusive upper bound, clamped to the
   largest observation actually seen: with [bucket_width > 1] the raw
   upper bound of the topmost occupied bucket can exceed every recorded
   value (a histogram holding only [3] at width 10 would otherwise
   report 9 from [percentile]/[cdf] — silent precision loss at the
   tail). Buckets below the top are unaffected. *)
let bucket_repr t i = min (((i + 1) * t.bucket_width) - 1) t.max_value

let count_le t v =
  let acc = ref 0 in
  let i = ref 0 in
  let n = Array.length t.counts in
  while !i < n && bucket_repr t !i <= v do
    acc := !acc + t.counts.(!i);
    incr i
  done;
  !acc

let cdf t =
  if t.total = 0 then []
  else begin
    let acc = ref 0 in
    let out = ref [] in
    Array.iteri
      (fun i c ->
        if c > 0 then begin
          acc := !acc + c;
          out := (bucket_repr t i, float_of_int !acc /. float_of_int t.total) :: !out
        end)
      t.counts;
    List.rev !out
  end

let merge a b =
  if a.bucket_width <> b.bucket_width then
    invalid_arg "Histogram.merge: bucket_width mismatch";
  let t = create ~bucket_width:a.bucket_width () in
  let blend src =
    Array.iteri
      (fun i c ->
        if c > 0 then begin
          ensure t i;
          t.counts.(i) <- t.counts.(i) + c
        end)
      src.counts;
    t.total <- t.total + src.total;
    if src.max_value > t.max_value then t.max_value <- src.max_value
  in
  blend a;
  blend b;
  t

let percentile t p =
  if t.total = 0 then invalid_arg "Histogram.percentile: empty histogram";
  if p < 0. || p > 1. then invalid_arg "Histogram.percentile: fraction out of range";
  let target = int_of_float (ceil (p *. float_of_int t.total)) in
  let target = max target 1 in
  let acc = ref 0 in
  let result = ref None in
  (try
     Array.iteri
       (fun i c ->
         acc := !acc + c;
         if !acc >= target && !result = None then begin
           result := Some (bucket_repr t i);
           raise Exit
         end)
       t.counts
   with Exit -> ());
  match !result with
  | Some v -> v
  | None -> bucket_repr t (Array.length t.counts - 1)
