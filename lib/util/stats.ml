let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
      let m = mean xs in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs
        /. float_of_int (List.length xs)
      in
      sqrt var

(* Nearest-rank percentile over a sorted array. [Float.compare] gives a
   total order (NaNs sort first), unlike polymorphic [compare] whose
   use on floats is both slower and NaN-hostile. *)
let rank_in a p =
  let n = Array.length a in
  let rank = int_of_float (ceil (p *. float_of_int n)) in
  a.(max 0 (min (n - 1) (rank - 1)))

let check_fraction who p =
  if p < 0. || p > 1. then invalid_arg (who ^ ": fraction out of range")

let percentile xs p =
  if xs = [] then invalid_arg "Stats.percentile: empty sample";
  check_fraction "Stats.percentile" p;
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  rank_in a p

let percentiles xs ps =
  if xs = [] then invalid_arg "Stats.percentiles: empty sample";
  List.iter (check_fraction "Stats.percentiles") ps;
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  List.map (rank_in a) ps

let minimum = function
  | [] -> invalid_arg "Stats.minimum: empty sample"
  | x :: xs -> List.fold_left (fun acc y -> if Float.compare y acc < 0 then y else acc) x xs

let maximum = function
  | [] -> invalid_arg "Stats.maximum: empty sample"
  | x :: xs -> List.fold_left (fun acc y -> if Float.compare y acc > 0 then y else acc) x xs
