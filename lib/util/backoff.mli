(** Bounded exponential backoff with deterministic jitter.

    The retry policy the runner applies to governor-aborted (shed) and
    fault-aborted transactions: delay doubles per consecutive failure up
    to a cap, a seeded jitter term decorrelates retriers, and after
    [max_attempts] failures the caller is told to give up. Every delay
    is a pure function of the generator's seed and the attempt sequence,
    so retry schedules replay bit-for-bit. *)

type t

val create :
  ?base_ns:int -> ?cap_ns:int -> ?max_attempts:int -> ?jitter_frac:float -> Rng.t -> t
(** [base_ns] first-retry delay (default 100 us), [cap_ns] ceiling on
    the exponential term (default 10 ms), [max_attempts] consecutive
    failures tolerated before giving up (default 8), [jitter_frac]
    uniform additive jitter as a fraction of the chosen delay (default
    0.25). Raises [Invalid_argument] on non-positive [base_ns],
    [cap_ns] or [max_attempts], or a negative [jitter_frac]. *)

val next : t -> int option
(** Record one more consecutive failure and return the delay (ns) to
    wait before the retry, or [None] when the attempt budget is
    exhausted — the caller should count a give-up and {!reset}. *)

val reset : t -> unit
(** Back to zero consecutive failures (call after a success or a
    give-up). Does not rewind the jitter stream. *)

val attempts : t -> int
(** Consecutive failures recorded since the last {!reset}. *)

val max_attempts : t -> int

(** {1 Per-channel stream forking}

    Every retrying subsystem historically drew jitter from one
    generator it was handed; two subsystems sharing a seed would then
    perturb each other's streams through interleaving. A {e channel}
    names an independent stream: the generator is a pure function of
    [(seed, channel)], so net-layer retries on ["net:0->3"] can never
    shift the governor's or runner's retry schedules, and each
    channel's delay sequence replays bit-for-bit in isolation. *)

val channel_rng : seed:int -> channel:string -> Rng.t
(** The forked generator itself (FNV-1a of [channel] folded into
    [seed]), for callers that draw more than backoff jitter from the
    channel's stream. *)

val channel :
  ?base_ns:int ->
  ?cap_ns:int ->
  ?max_attempts:int ->
  ?jitter_frac:float ->
  seed:int ->
  channel:string ->
  unit ->
  t
(** A backoff policy over the channel's forked stream; parameters as
    {!create}. *)
