(** CRC-32 (the IEEE 802.3 polynomial, as used by zip/png/ethernet).

    Pure OCaml, table-driven. Used by the WAL record framing to detect
    torn or bit-flipped log frames during recovery: a frame whose stored
    checksum does not match the recomputed one marks the end of the
    trustworthy log prefix. *)

val string : string -> int
(** Checksum of a whole string, in [0, 0xffffffff]. *)

val update : int -> string -> int
(** [update crc s] extends a running checksum — [update 0 s = string s]. *)
