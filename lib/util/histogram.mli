(** Fixed-width bucket histogram over non-negative integers, with CDF
    extraction. Used for the chain-length CDF (Figure 14) and cut-delay
    distributions (Figure 16). *)

type t

val create : ?bucket_width:int -> unit -> t
(** [create ~bucket_width ()] — values [v] are counted in bucket
    [v / bucket_width]. Default width 1. Buckets are reported at their
    inclusive upper bound, clamped to {!max_value}: {!percentile},
    {!cdf} and {!count_le} never answer with a value larger than any
    observation actually recorded. *)

val add : t -> int -> unit
(** Record one observation. Negative values raise [Invalid_argument]. *)

val add_many : t -> int -> count:int -> unit

val total : t -> int
(** Number of observations recorded. *)

val max_value : t -> int
(** Largest observation seen; 0 if empty. *)

val count_le : t -> int -> int
(** Observations whose bucket upper bound is [<=] the given value. *)

val cdf : t -> (int * float) list
(** [(v, f)] pairs: fraction [f] of observations fall in buckets whose
    representative value is [<= v]. Empty histogram gives []. *)

val percentile : t -> float -> int
(** [percentile t 0.99] is the smallest bucket representative covering at
    least that fraction of observations. Raises if the histogram is
    empty or the fraction is outside [0, 1]. *)

val merge : t -> t -> t
(** Fresh histogram holding both operands' observations. The operands
    are unchanged and must share a [bucket_width]
    ([Invalid_argument] otherwise). *)

