(** Small descriptive-statistics helpers for float samples.

    Ordering everywhere uses [Float.compare] — a total order in which
    NaNs sort first — never polymorphic [compare], so a stray NaN in a
    sample gives a deterministic (if garbage-in) answer instead of an
    ordering that depends on element positions. *)

val mean : float list -> float
(** Arithmetic mean; 0. for the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0. for lists shorter than 2. *)

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [0,1], nearest-rank on the sorted
    sample. Raises [Invalid_argument] on an empty list or out-of-range
    [p]. *)

val percentiles : float list -> float list -> float list
(** [percentiles xs ps] — one nearest-rank value per fraction in [ps],
    in order, sorting the sample {e once} (use this instead of repeated
    {!percentile} calls when scraping p50/p90/p99 of the same sample).
    Raises like {!percentile}. *)

val minimum : float list -> float
val maximum : float list -> float
