type t = {
  base_ns : int;
  cap_ns : int;
  max_attempts : int;
  jitter_frac : float;
  rng : Rng.t;
  mutable attempts : int;
}

let create ?(base_ns = 100_000) ?(cap_ns = 10_000_000) ?(max_attempts = 8)
    ?(jitter_frac = 0.25) rng =
  if base_ns <= 0 then invalid_arg "Backoff.create: base_ns must be positive";
  if cap_ns <= 0 then invalid_arg "Backoff.create: cap_ns must be positive";
  if max_attempts <= 0 then invalid_arg "Backoff.create: max_attempts must be positive";
  if jitter_frac < 0. then invalid_arg "Backoff.create: negative jitter_frac";
  { base_ns; cap_ns; max_attempts; jitter_frac; rng; attempts = 0 }

let next t =
  if t.attempts >= t.max_attempts then None
  else begin
    t.attempts <- t.attempts + 1;
    (* base * 2^(attempt-1), saturating at the cap: shifting by the
       attempt index overflows for large budgets, so clamp first. *)
    let exp =
      if t.attempts - 1 >= 30 then t.cap_ns
      else min t.cap_ns (t.base_ns lsl (t.attempts - 1))
    in
    let jitter_bound = int_of_float (float_of_int exp *. t.jitter_frac) in
    let jitter = if jitter_bound <= 0 then 0 else Rng.int t.rng (jitter_bound + 1) in
    Some (exp + jitter)
  end

let reset t = t.attempts <- 0
let attempts t = t.attempts
let max_attempts t = t.max_attempts

(* Per-channel stream forking: an FNV-1a fold of the channel name mixed
   into the seed. Each channel owns an independent splitmix state, so a
   retry storm on one channel (say, a partitioned net link) never
   advances the jitter stream of another (say, the runner's shed-retry
   policy) — both replay bit-for-bit from (seed, channel) alone. *)
let channel_rng ~seed ~channel =
  let h = ref 0x2545f4914f6cdd1d in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x100000001b3) channel;
  Rng.create (seed lxor !h)

let channel ?base_ns ?cap_ns ?max_attempts ?jitter_frac ~seed ~channel:name () =
  create ?base_ns ?cap_ns ?max_attempts ?jitter_frac (channel_rng ~seed ~channel:name)
