type decision = [ `Pass | `Fail ]

type point = {
  mutable handler : (unit -> decision) option;
  mutable hits : int;
  mutable fails : int;
}

let registry : (string, point) Hashtbl.t = Hashtbl.create 16

let well_known = [ "vsorter.flush"; "wal.append"; "wal.fsync" ]

let point name =
  match Hashtbl.find_opt registry name with
  | Some p -> p
  | None ->
      let p = { handler = None; hits = 0; fails = 0 } in
      Hashtbl.replace registry name p;
      p

let arm name handler = (point name).handler <- Some handler

let arm_fail_n name n =
  let budget = ref n in
  arm name (fun () ->
      if !budget > 0 then begin
        decr budget;
        `Fail
      end
      else `Pass)

let disarm name = match Hashtbl.find_opt registry name with Some p -> p.handler <- None | None -> ()
let disarm_all () = Hashtbl.iter (fun _ p -> p.handler <- None) registry

let check name =
  let p = point name in
  p.hits <- p.hits + 1;
  match p.handler with
  | None -> `Pass
  | Some h -> (
      match h () with
      | `Pass -> `Pass
      | `Fail ->
          p.fails <- p.fails + 1;
          `Fail)

let hit_count name = match Hashtbl.find_opt registry name with Some p -> p.hits | None -> 0
let fail_count name = match Hashtbl.find_opt registry name with Some p -> p.fails | None -> 0

let reset_counts () =
  Hashtbl.iter
    (fun _ p ->
      p.hits <- 0;
      p.fails <- 0)
    registry

let with_scope f =
  let clean () =
    disarm_all ();
    reset_counts ()
  in
  clean ();
  Fun.protect ~finally:clean f
