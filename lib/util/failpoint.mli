(** Named fail-points for deterministic fault injection.

    Production systems scatter fail-points through their hot paths
    (etcd/TiKV's [fail::fail_point!]) so a chaos harness can force rare
    error branches on demand. This is the simulation-friendly analogue:
    a site calls {!check} with its name and gets [`Pass] unless a
    handler has been armed for that name. Handlers are plain closures —
    the fault library arms them from a seeded plan, so every decision is
    a deterministic function of the plan's RNG stream.

    The registry is global (the simulation is single-threaded and runs
    one experiment at a time); {!with_scope} brackets a run so that no
    armed handler or hit count leaks into the next experiment. An
    unarmed fail-point costs one hashtable probe. *)

type decision = [ `Pass | `Fail ]

val well_known : string list
(** The fail-point sites compiled into the pipeline: ["vsorter.flush"]
    (segment flush to the version store), ["wal.append"] (log-device
    write, byte-accounting and typed-record paths alike), and
    ["wal.fsync"] (durability-frontier advance). Arming any other name
    is legal but will never fire. *)

val arm : string -> (unit -> decision) -> unit
(** [arm name handler] routes subsequent {!check name} calls through
    [handler], replacing any previous handler for [name]. *)

val arm_fail_n : string -> int -> unit
(** Arm [name] to fail the next [n] checks, then pass (handler stays
    installed; re-arming resets the budget). *)

val disarm : string -> unit
val disarm_all : unit -> unit

val check : string -> decision
(** Consult the fail-point. Always counts the hit, armed or not. *)

val hit_count : string -> int
(** How many times [check name] ran since the last {!reset_counts} /
    {!with_scope} entry. *)

val fail_count : string -> int
(** How many of those checks returned [`Fail]. *)

val reset_counts : unit -> unit

val with_scope : (unit -> 'a) -> 'a
(** Run a thunk in a clean registry: counts reset and all handlers
    disarmed on entry {e and} on exit (even by exception). *)
