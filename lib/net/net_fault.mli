(** Seeded message-fault model for the simulated shard fabric.

    A config is a pure description of how the network misbehaves:
    per-message loss and duplication probabilities, a delay window
    (fixed floor plus drawn jitter — jitter is what reorders), and
    named bidirectional partitions with scheduled heal times. All
    randomness is drawn by the {!Bus} from per-channel splitmix
    streams derived from [seed], following the {!Fault_plan} stream
    discipline: equal seeds give equal fault sequences, and a fault
    config never touches the workload's RNG.

    {!none} is the contract the whole layer hangs off: with it, the
    bus is a provably transparent pass-through — no draws, no queues,
    every message delivered inline at the send site — so a run with
    the net layer installed but no net faults is byte-identical to a
    run without the layer at all (pinned by test). *)

type partition = {
  p_name : string;
  isolated : int list;
      (** endpoint ids cut off from everyone outside the set
          (bidirectional; endpoints inside the set still reach each
          other) *)
  from_t : Clock.time;
  heal_t : Clock.time;  (** healed from this instant on (exclusive window) *)
}

type config = {
  seed : int;
  loss : float;  (** per-message drop probability, [0..1) *)
  dup : float;  (** per-message duplication probability, [0..1) *)
  min_delay : Clock.time;  (** fixed propagation floor (ns) *)
  max_delay : Clock.time;  (** additional uniform jitter bound (ns) — reordering *)
  partitions : partition list;
}

val none : config
(** The transparent pass-through: zero rates, zero delays, no
    partitions. *)

val is_none : config -> bool

val make :
  ?loss:float ->
  ?dup:float ->
  ?min_delay:Clock.time ->
  ?max_delay:Clock.time ->
  ?partitions:partition list ->
  seed:int ->
  unit ->
  config
(** Raises [Invalid_argument] on rates outside [0..1) or negative
    delays/windows. *)

val severed : config -> src:int -> dst:int -> now:Clock.time -> string option
(** The name of the partition separating [src] from [dst] at [now], if
    any. *)

val last_heal : config -> Clock.time
(** Latest scheduled heal instant (0 with no partitions) — after it the
    fabric is whole again and the bounded-lag clocks start. *)

val active_at : config -> now:Clock.time -> bool
(** Some partition window covers [now]. *)

val pp : Format.formatter -> config -> unit
