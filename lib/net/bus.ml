type 'a envelope = { due : Clock.time; seq : int; src : int; dst : int; msg : 'a }

(* Tiny binary min-heap on (due, seq) — enough structure for the
   in-flight queue; handlers enqueue while we drain, so the heap must
   tolerate interleaved pushes. *)
type 'a heap = { mutable a : 'a envelope array; mutable len : int }

let heap_create () = { a = [||]; len = 0 }

let heap_less x y = x.due < y.due || (x.due = y.due && x.seq < y.seq)

let heap_push h e =
  if h.len = Array.length h.a then begin
    let cap = max 16 (2 * h.len) in
    let a' = Array.make cap e in
    Array.blit h.a 0 a' 0 h.len;
    h.a <- a'
  end;
  h.a.(h.len) <- e;
  h.len <- h.len + 1;
  let i = ref (h.len - 1) in
  while !i > 0 && heap_less h.a.(!i) h.a.((!i - 1) / 2) do
    let p = (!i - 1) / 2 in
    let tmp = h.a.(p) in
    h.a.(p) <- h.a.(!i);
    h.a.(!i) <- tmp;
    i := p
  done

let heap_peek h = if h.len = 0 then None else Some h.a.(0)

let heap_pop h =
  let top = h.a.(0) in
  h.len <- h.len - 1;
  if h.len > 0 then begin
    h.a.(0) <- h.a.(h.len);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < h.len && heap_less h.a.(l) h.a.(!m) then m := l;
      if r < h.len && heap_less h.a.(r) h.a.(!m) then m := r;
      if !m = !i then continue := false
      else begin
        let tmp = h.a.(!m) in
        h.a.(!m) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := !m
      end
    done
  end;
  top

type stats = {
  sent : int;
  delivered : int;
  dropped_loss : int;
  dropped_partition : int;
  duplicated : int;
  retried : int;
}

type 'a t = {
  faults : Net_fault.config;
  passthrough : bool;
  endpoints : int;
  handlers : (now:Clock.time -> src:int -> 'a -> unit) option array;
  queue : 'a heap;
  channel_rngs : (int, Rng.t) Hashtbl.t;
  mutable seq : int;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped_loss : int;
  mutable dropped_partition : int;
  mutable duplicated : int;
  mutable retried : int;
}

let create ?(faults = Net_fault.none) ~endpoints () =
  if endpoints < 1 then invalid_arg "Bus.create: need at least one endpoint";
  {
    faults;
    passthrough = Net_fault.is_none faults;
    endpoints;
    handlers = Array.make endpoints None;
    queue = heap_create ();
    channel_rngs = Hashtbl.create 16;
    seq = 0;
    sent = 0;
    delivered = 0;
    dropped_loss = 0;
    dropped_partition = 0;
    duplicated = 0;
    retried = 0;
  }

let faults t = t.faults

let set_handler t ~ep f =
  if ep < 0 || ep >= t.endpoints then invalid_arg "Bus.set_handler: bad endpoint";
  t.handlers.(ep) <- Some f

(* Per-channel stream: one splitmix generator per ordered (src, dst)
   pair, forked from the config seed — a retry storm on one channel
   never shifts another channel's draws. *)
let channel_rng t ~src ~dst =
  let key = (src * 65536) + dst in
  match Hashtbl.find_opt t.channel_rngs key with
  | Some rng -> rng
  | None ->
      let rng =
        Rng.create
          (t.faults.Net_fault.seed
          lxor (((src + 1) * 0x9e3779b1) lxor ((dst + 1) * 0x85ebca77)))
      in
      Hashtbl.replace t.channel_rngs key rng;
      rng

let deliver t ~now ~src ~dst msg =
  t.delivered <- t.delivered + 1;
  match t.handlers.(dst) with Some f -> f ~now ~src msg | None -> ()

let send t ~src ~dst ~now msg =
  t.sent <- t.sent + 1;
  if t.passthrough || src = dst then deliver t ~now ~src ~dst msg
  else
    match Net_fault.severed t.faults ~src ~dst ~now with
    | Some _ -> t.dropped_partition <- t.dropped_partition + 1
    | None ->
        let rng = channel_rng t ~src ~dst in
        let cfg = t.faults in
        (* Fixed draw order per message — loss, dup, then one delay per
           copy — so the stream is a pure function of the channel's send
           sequence. *)
        let lost = cfg.Net_fault.loss > 0. && Rng.float rng < cfg.Net_fault.loss in
        let dup = cfg.Net_fault.dup > 0. && Rng.float rng < cfg.Net_fault.dup in
        if lost then t.dropped_loss <- t.dropped_loss + 1
        else begin
          let copies = if dup then 2 else 1 in
          if dup then t.duplicated <- t.duplicated + 1;
          for _ = 1 to copies do
            let jitter =
              if cfg.Net_fault.max_delay <= 0 then 0
              else Rng.int rng (cfg.Net_fault.max_delay + 1)
            in
            let delay = cfg.Net_fault.min_delay + jitter in
            if delay <= 0 then deliver t ~now ~src ~dst msg
            else begin
              t.seq <- t.seq + 1;
              heap_push t.queue { due = now + delay; seq = t.seq; src; dst; msg }
            end
          done
        end

let pump t ~now =
  let n = ref 0 in
  let continue = ref true in
  while !continue do
    match heap_peek t.queue with
    | Some e when e.due <= now ->
        let e = heap_pop t.queue in
        incr n;
        deliver t ~now ~src:e.src ~dst:e.dst e.msg
    | _ -> continue := false
  done;
  !n

let pending t = t.queue.len
let clear t = t.queue.len <- 0
let reachable t ~src ~dst ~now = Net_fault.severed t.faults ~src ~dst ~now = None
let count_retry t = t.retried <- t.retried + 1

let stats t =
  {
    sent = t.sent;
    delivered = t.delivered;
    dropped_loss = t.dropped_loss;
    dropped_partition = t.dropped_partition;
    duplicated = t.duplicated;
    retried = t.retried;
  }
