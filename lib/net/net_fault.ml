type partition = {
  p_name : string;
  isolated : int list;
  from_t : Clock.time;
  heal_t : Clock.time;
}

type config = {
  seed : int;
  loss : float;
  dup : float;
  min_delay : Clock.time;
  max_delay : Clock.time;
  partitions : partition list;
}

let none = { seed = 0; loss = 0.; dup = 0.; min_delay = 0; max_delay = 0; partitions = [] }

let is_none c =
  c.loss = 0. && c.dup = 0. && c.min_delay = 0 && c.max_delay = 0 && c.partitions = []

let make ?(loss = 0.) ?(dup = 0.) ?(min_delay = 0) ?(max_delay = 0) ?(partitions = []) ~seed ()
    =
  if loss < 0. || loss >= 1. then invalid_arg "Net_fault.make: loss must be in [0,1)";
  if dup < 0. || dup >= 1. then invalid_arg "Net_fault.make: dup must be in [0,1)";
  if min_delay < 0 || max_delay < 0 then invalid_arg "Net_fault.make: negative delay";
  List.iter
    (fun p ->
      if p.from_t < 0 || p.heal_t < p.from_t then
        invalid_arg "Net_fault.make: bad partition window";
      if p.isolated = [] then invalid_arg "Net_fault.make: empty partition side")
    partitions;
  { seed; loss; dup; min_delay; max_delay; partitions }

let severed c ~src ~dst ~now =
  if src = dst then None
  else
    List.find_map
      (fun p ->
        if
          now >= p.from_t && now < p.heal_t
          && List.mem src p.isolated <> List.mem dst p.isolated
        then Some p.p_name
        else None)
      c.partitions

let last_heal c = List.fold_left (fun acc p -> max acc p.heal_t) 0 c.partitions
let active_at c ~now = List.exists (fun p -> now >= p.from_t && now < p.heal_t) c.partitions

let pp fmt c =
  if is_none c then Format.fprintf fmt "net: none"
  else begin
    Format.fprintf fmt "net: seed=%d loss=%.2f dup=%.2f delay=%d..%dns" c.seed c.loss c.dup
      c.min_delay (c.min_delay + c.max_delay);
    List.iter
      (fun p ->
        Format.fprintf fmt " [%s:{%s} %a..%a]" p.p_name
          (String.concat "," (List.map string_of_int p.isolated))
          Clock.pp p.from_t Clock.pp p.heal_t)
      c.partitions
  end
