(** Seeded, deterministic simulated message bus.

    Endpoints are small integers (the shard group uses [0..n-1] for
    shards and [n] for the epoch/control service). Each endpoint
    installs one handler; {!send} routes a message through the fault
    model of the attached {!Net_fault.config}:

    - a message whose channel is cut by an active partition is dropped
      (no randomness consumed, so heal timing never shifts the streams);
    - otherwise a loss draw, a duplication draw, and one delay draw per
      surviving copy come from the {e per-channel} splitmix stream
      [(seed, src, dst)] — channels never perturb each other, and the
      whole fault sequence replays bit-for-bit from the seed;
    - a copy whose total delay is zero is delivered inline at the send
      site; a delayed copy queues until {!pump} reaches its due time.
      Jitter windows overlap across sends, so delivery order genuinely
      reorders.

    With [Net_fault.none] (the default) there are no draws and no
    queues at all: every send is an inline synchronous handler call —
    the transparent pass-through the byte-identity pin relies on.
    Self-sends ([src = dst]) are always inline and fault-free. *)

type 'a t

type stats = {
  sent : int;
  delivered : int;
  dropped_loss : int;
  dropped_partition : int;
  duplicated : int;
  retried : int;  (** counted by the protocol layer via {!count_retry} *)
}

val create : ?faults:Net_fault.config -> endpoints:int -> unit -> 'a t
(** Raises [Invalid_argument] if [endpoints < 1]. *)

val faults : 'a t -> Net_fault.config

val set_handler : 'a t -> ep:int -> (now:Clock.time -> src:int -> 'a -> unit) -> unit

val send : 'a t -> src:int -> dst:int -> now:Clock.time -> 'a -> unit
(** Route one message. Handlers invoked inline may themselves send. *)

val pump : 'a t -> now:Clock.time -> int
(** Deliver every queued copy due at or before [now], in (due time,
    sequence) order, until quiescent (handlers may enqueue more work).
    Returns the number of deliveries made. *)

val pending : 'a t -> int
(** Copies still queued (in flight). *)

val clear : 'a t -> unit
(** Crash: drop everything in flight. Stats survive. *)

val reachable : 'a t -> src:int -> dst:int -> now:Clock.time -> bool
(** No active partition separates the pair at [now]. *)

val count_retry : 'a t -> unit
val stats : 'a t -> stats
