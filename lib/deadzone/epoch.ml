type t = {
  mgr : Txn_manager.t;
  mutable epoch : int;
  mutable current : Zone_set.t;
  mutable broadcast_ts : Timestamp.t;
}

let create mgr =
  { mgr; epoch = 0; current = Zone_set.of_txn_manager mgr; broadcast_ts = 0 }

let broadcast t =
  let zones = Zone_set.of_txn_manager t.mgr in
  t.current <- zones;
  t.broadcast_ts <- Zone_set.now_ts zones;
  t.epoch <- t.epoch + 1;
  Metrics.bump "epoch.broadcasts";
  t.epoch

let current t = t.current
let epoch t = t.epoch
let broadcast_ts t = t.broadcast_ts
let snapshot t = (t.epoch, t.current, t.broadcast_ts)
let subscribe t = fun () -> t.current
