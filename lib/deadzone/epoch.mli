(** Global epoch broadcast of the dead-zone snapshot.

    With the keyspace sharded into independent vDriver pipelines, each
    shard prunes against the {e same} global picture of live
    transactions: a coordinator-side process periodically snapshots the
    shared live table into a {!Zone_set} and bumps the epoch; every
    shard's [State.refresh_zones] then reads the latest broadcast
    instead of the live table directly.

    Soundness under staleness is the whole point. A broadcast taken at
    oracle time [C^T] can only cover intervals with [hi < C^T]
    ({!Zone_set.covers}); any transaction that begins after the
    broadcast draws a begin timestamp [>= C^T], so its boundary can
    never fall strictly inside an interval the stale snapshot already
    covers. A stale epoch therefore only {e under}-prunes — shard-local
    prune decisions stay sound against every live global snapshot, which
    keeps Theorem 3.5's guarantee global while the work stays
    per-shard (the per-process-local GC shape of Ben-David et al.). An
    LLT on one shard pins on every other shard exactly the boundary its
    begin timestamp contributes to the broadcast — no more. *)

type t

val create : Txn_manager.t -> t
(** Epoch 0 carries an initial snapshot so subscribers are never
    zone-less. *)

val broadcast : t -> int
(** Take a fresh global snapshot, advance the epoch, and return it. *)

val current : t -> Zone_set.t
(** The latest broadcast snapshot (what subscribers consume). *)

val epoch : t -> int

val broadcast_ts : t -> Timestamp.t
(** Oracle frontier [C^T] captured by the latest broadcast (0 before
    the first). *)

val snapshot : t -> int * Zone_set.t * Timestamp.t
(** [(epoch, zones, broadcast_ts)] of the latest broadcast as one
    value — what a fabric-delivered epoch message carries. Subscribers
    that consume broadcasts through a lossy channel must apply a
    snapshot only when its epoch is newer than the one they hold:
    epochs are monotone, so duplicates and reorderings are no-ops, and
    a stale snapshot only under-prunes (the {!Epoch} soundness
    argument is per-snapshot, not per-delivery). *)

val subscribe : t -> unit -> Zone_set.t
(** A pull closure suitable for [State.zone_source]: always yields the
    latest broadcast. *)
