type vrec = { vs : Timestamp.t; mutable ve : Timestamp.t; payload : int }

type state = {
  costs : Costs.t;
  schema : Schema.t;
  mgr : Txn_manager.t;
  wal : Wal.t;
  heap : Heap.t;
  pool : Buffer_pool.t; (* heap pages; bloat past capacity costs I/O *)
  versions : vrec Vec.t array; (* oldest first; last element is current *)
  write_sets : (Timestamp.t, int list ref) Hashtbl.t;
  mutable vacuum_cursor : int;
  vacuum_batch : int;
}

let is_committed st vs = vs = 0 || Commit_log.is_committed (Txn_manager.commit_log st.mgr) vs

let fetch_page st page ~now =
  match Buffer_pool.access st.pool ~block:page.Page.id with
  | `Hit -> now
  | `Miss -> now + st.costs.Costs.io_latency

let read st (txn : Txn.t) ~rid ~now =
  let page = Heap.page_of st.heap ~rid in
  let now = fetch_page st page ~now in
  let t = Resource.acquire page.Page.latch ~now ~hold:st.costs.Costs.read_base in
  let vec = st.versions.(rid) in
  (* PostgreSQL searches from the oldest version (§2.1), paying the
     full chain prefix on every read of a bloated record. *)
  match
    Mvcc_search.find_visible ~view:txn.Txn.view ~len:(Vec.length vec)
      ~vs_of:(fun i -> (Vec.get vec i).vs)
  with
  | Some i ->
      let hops = i + 1 in
      ((Vec.get vec i).payload, t + (hops * st.costs.Costs.version_hop) + st.costs.Costs.think)
  | None -> failwith "inrow: snapshot read unreachable"

let note_write st (txn : Txn.t) rid =
  match Hashtbl.find_opt st.write_sets txn.Txn.tid with
  | Some l -> l := rid :: !l
  | None -> Hashtbl.replace st.write_sets txn.Txn.tid (ref [ rid ])

let write st (txn : Txn.t) ~rid ~payload ~now =
  let vec = st.versions.(rid) in
  let current = Vec.get vec (Vec.length vec - 1) in
  let page = Heap.page_of st.heap ~rid in
  let now = fetch_page st page ~now in
  if current.vs = txn.Txn.tid then begin
    (* Same transaction: in-place refresh of its own version. *)
    let t = Resource.acquire page.Page.latch ~now ~hold:st.costs.Costs.write_base in
    Vec.set vec (Vec.length vec - 1) { current with payload };
    Engine.Committed_path (t + st.costs.Costs.think)
  end
  else if Cc.write_conflict st.mgr txn ~current_vs:current.vs then
    (* First-committer-wins, no-wait: the txn must abort. *)
    Engine.Conflict (Resource.acquire page.Page.latch ~now ~hold:st.costs.Costs.read_base)
  else begin
    current.ve <- txn.Txn.tid;
    Vec.push vec { vs = txn.Txn.tid; ve = Timestamp.infinity; payload };
    note_write st txn rid;
    Wal.append st.wal ~at:now ~bytes:st.schema.Schema.record_bytes ();
    let split =
      Heap.add_version_bytes st.heap ~rid ~bytes:st.schema.Schema.record_bytes = `Split
    in
    let hold =
      st.costs.Costs.write_base + if split then st.costs.Costs.page_split else 0
    in
    let t = Resource.acquire page.Page.latch ~now ~hold in
    Engine.Committed_path (t + st.costs.Costs.think)
  end

let rollback_writes st (txn : Txn.t) =
  (match Hashtbl.find_opt st.write_sets txn.Txn.tid with
  | Some rids ->
      List.iter
        (fun rid ->
          let vec = st.versions.(rid) in
          let n = Vec.length vec in
          let current = Vec.get vec (n - 1) in
          if current.vs = txn.Txn.tid then begin
            ignore (Vec.pop vec);
            Heap.remove_version_bytes st.heap ~rid ~bytes:st.schema.Schema.record_bytes;
            if n >= 2 then (Vec.get vec (n - 2)).ve <- Timestamp.infinity
          end)
        !rids
  | None -> ());
  Hashtbl.remove st.write_sets txn.Txn.tid

(* Vacuum: remove the reclaimable prefix of each chain, gated on the
   oldest-active horizon (the age-old criterion, §2.2). *)
let vacuum st ~now =
  let horizon = Txn_manager.oldest_visible_horizon st.mgr in
  let records = Schema.records st.schema in
  let batch = min st.vacuum_batch records in
  let t = ref now in
  let last_page = ref (-1) in
  for k = 0 to batch - 1 do
    let rid = (st.vacuum_cursor + k) mod records in
    let page = Heap.page_of st.heap ~rid in
    if page.Page.id <> !last_page then begin
      last_page := page.Page.id;
      t := Resource.acquire page.Page.latch ~now:!t ~hold:st.costs.Costs.gc_page_scan
    end;
    let vec = st.versions.(rid) in
    let rec reclaimable i =
      if i >= Vec.length vec - 1 then i
      else
        let v = Vec.get vec i in
        if v.ve <> Timestamp.infinity && v.ve < horizon && is_committed st v.vs then
          reclaimable (i + 1)
        else i
    in
    let k = reclaimable 0 in
    if k > 0 then begin
      Vec.drop_front vec k;
      Heap.remove_version_bytes st.heap ~rid ~bytes:(k * st.schema.Schema.record_bytes);
      t := !t + (k * st.costs.Costs.version_hop)
    end
  done;
  st.vacuum_cursor <- (st.vacuum_cursor + batch) mod records;
  !t

(* Roll back and abort every live transaction — crash recovery with
   losers identified through the commit log (pg_xact style, §4.2):
   each loser write costs a page fetch plus an in-place undo. *)
let crash_recover st =
  let losers = ref [] in
  Hashtbl.iter (fun tid _ -> losers := tid :: !losers) st.write_sets;
  let undo_ops = ref 0 in
  (* Only live transactions can still own a write set. *)
  List.iter
    (fun tid ->
      match Hashtbl.find_opt st.write_sets tid with
      | Some rids ->
          List.iter
            (fun rid ->
              let vec = st.versions.(rid) in
              let n = Vec.length vec in
              let current = Vec.get vec (n - 1) in
              if current.vs = tid then begin
                incr undo_ops;
                ignore (Vec.pop vec);
                Heap.remove_version_bytes st.heap ~rid ~bytes:st.schema.Schema.record_bytes;
                if n >= 2 then (Vec.get vec (n - 2)).ve <- Timestamp.infinity
              end)
            !rids;
          Hashtbl.remove st.write_sets tid
      | None -> ())
    !losers;
  !undo_ops * (st.costs.Costs.io_latency + st.costs.Costs.write_base)

let create ?(costs = Costs.default) ?(vacuum_batch = 4096) schema =
  let mgr = Txn_manager.create () in
  let wal = Wal.create () in
  let heap =
    Heap.create ~page_bytes:schema.Schema.page_bytes ~slot_bytes:schema.Schema.record_bytes
      ~records:(Schema.records schema) ~fill_factor:schema.Schema.fill_factor ~wal
  in
  let pool =
    Buffer_pool.create ~name:"heap"
      ~capacity_blocks:(((3 * Heap.page_count heap) / 2) + 8)
  in
  let st =
    {
      costs;
      schema;
      mgr;
      wal;
      heap;
      pool;
      versions =
        Array.init (Schema.records schema) (fun rid ->
            let vec = Vec.create () in
            Vec.push vec { vs = 0; ve = Timestamp.infinity; payload = rid };
            vec);
      write_sets = Hashtbl.create 256;
      vacuum_cursor = 0;
      vacuum_batch;
    }
  in
  let max_chain () = Array.fold_left (fun acc v -> max acc (Vec.length v)) 0 st.versions in
  let pages_wait () =
    let acc = ref 0 in
    let seen = Hashtbl.create 64 in
    for rid = 0 to Schema.records schema - 1 do
      let page = Heap.page_of heap ~rid in
      if not (Hashtbl.mem seen page.Page.id) then begin
        Hashtbl.replace seen page.Page.id ();
        acc := !acc + Resource.wait_time page.Page.latch
      end
    done;
    !acc
  in
  {
    Engine.name = "postgres-vanilla";
    txns = mgr;
    begin_txn =
      (fun ~now ->
        let txn = Txn_manager.begin_txn mgr ~now in
        (txn, now + costs.Costs.txn_begin));
    read = (fun txn ~rid ~now -> read st txn ~rid ~now);
    write = (fun txn ~rid ~payload ~now -> write st txn ~rid ~payload ~now);
    commit =
      (fun txn ~now ->
        Hashtbl.remove st.write_sets txn.Txn.tid;
        Txn_manager.commit mgr txn ~now;
        now + costs.Costs.txn_commit);
    abort =
      (fun txn ~now ->
        rollback_writes st txn;
        Txn_manager.abort mgr txn ~now;
        now + costs.Costs.txn_commit);
    maintenance = (fun ~now -> vacuum st ~now);
    sample =
      (fun () ->
        {
          Engine.version_bytes = Heap.version_bytes heap;
          redo_bytes = Wal.total_bytes wal;
          max_chain = max_chain ();
          splits = Heap.splits heap;
          truncations = 0;
          latch_wait = pages_wait ();
          wal_errors = Wal.errors wal;
        });
    chain_histogram =
      (fun () ->
        let h = Histogram.create () in
        Array.iter (fun vec -> Histogram.add h (Vec.length vec)) st.versions;
        h);
    finish = (fun ~now -> ignore now);
    crash = (fun () -> crash_recover st);
    driver = None;
    checkpoint = None;
    restart = None;
    twopc = None;
  }
