(** Engine with vDriver plugged in (SIRO-versioning, §3–§4).

    Heap pages keep each record plus exactly one in-row old version
    (fixed two-slot footprint: pages never split); every older version
    relocates through vSorter into classified version segments. Short
    transactions are served from the in-row pair under a brief latch;
    readers needing older versions go through the LLB and version-buffer
    layer {e without holding the page latch}, so LLTs cannot convoy hot
    pages. The [flavor] selects the host-engine persona: [`Pg] replaces
    PostgreSQL's in-row layout, [`Mysql] replaces InnoDB's undo chains
    and drops the rollback-segment giant latch by recycling undo logs at
    commit (§4.2). Functionally both flavors behave identically, as the
    paper observes of its two integrations. *)

val create :
  ?costs:Costs.t ->
  ?driver_config:State.config ->
  ?mgr:Txn_manager.t ->
  ?shard:int ->
  flavor:[ `Pg | `Mysql ] ->
  Schema.t ->
  Engine.t
(** [?mgr] shares an existing transaction manager (the global snapshot
    order of a sharded deployment) instead of creating a private one;
    [?shard] (default 0) tags this instance's WAL frames with its shard
    namespace. Unsharded callers omit both and get the seed behavior
    byte for byte. *)

val driver_exn : Engine.t -> Driver.t
(** The engine's vDriver instance. Raises if called on a vanilla
    engine. *)
