(* Shard replication: deterministic WAL log-shipping with lease-based
   failover (DESIGN §4j).

   Each shard owns one authoritative device — the [gwal] the engine
   logs to — attached to whichever node currently holds the shard's
   primary lease. Every node additionally keeps a private mirror
   [nwal], maintained as an exact prefix of the primary's log by
   shipping typed CRC'd frames over a per-group {!Bus} (fault-free:
   replication transport is in-process and synchronous; the chaos
   surface is node death, injected through {!kill}). A commit may be
   acknowledged to the client only once {!replicate} reports [`Quorum]:
   the decision frame is durable on at least [quorum] of the
   [replicas + 1] nodes.

   Failover is deterministic. Killing the primary snapshots the device
   into the dead node's mirror (its coffin — what a revived node will
   find on its disk), detaches the device, and lets the shard's
   {!Lease} run out of heartbeats. {!sweep} then promotes the
   highest-caught-up live backup: bump the replication epoch, adopt the
   candidate's mirror as the device, force a {!Wal_record.Promote}
   fencing marker, resync the remaining backups, and re-grant the
   lease. A revived stale primary still ships under its old epoch and
   every frame is refused ([fencings]).

   Determinism: no randomness and no wall clock — every decision is a
   function of the caller-supplied [now] and the kill/revive schedule,
   so Sim and Domains runs of the same seed agree. *)

type sabotage = Ack_before_replicate | Stale_primary_writes

let sabotage_name = function
  | Ack_before_replicate -> "ack-before-replicate"
  | Stale_primary_writes -> "stale-primary-writes"

let sabotage_of_string = function
  | "ack-before-replicate" -> Some Ack_before_replicate
  | "stale-primary-writes" -> Some Stale_primary_writes
  | _ -> None

type rstep =
  | R_ship of { sid : int; node : int; frames : int }
  | R_ack of { sid : int; node : int; upto : int }
  | R_quorum of { sid : int }
  | R_promote of { sid : int; node : int }

let rstep_name = function
  | R_ship _ -> "ship"
  | R_ack _ -> "ack"
  | R_quorum _ -> "quorum"
  | R_promote _ -> "promote"

let rstep_sid = function
  | R_ship { sid; _ } | R_ack { sid; _ } | R_quorum { sid } | R_promote { sid; _ } -> sid

type rmsg =
  | Ship of { repoch : int; frames : (int * string) list }
  | Ship_ack of { repoch : int; node : int; upto : int }

type node = {
  node_id : int;
  nwal : Wal.t;  (* private mirror: exact prefix of the primary's log *)
  mutable alive : bool;
  mutable acked_upto : int;  (* primary-side view of this backup's watermark *)
  mutable claims_primary : bool;
  mutable was_primary : bool;  (* held the device when it died *)
  mutable fence_epoch : int;  (* epoch it last held authority under *)
}

type group = {
  sid : int;
  gwal : Wal.t;  (* the shard's device, attached to the current primary *)
  nodes : node array;  (* replicas + 1; node 0 starts as primary *)
  mutable primary : int;  (* index into [nodes]; -1 while primaryless *)
  mutable repoch : int;
  bus : rmsg Bus.t;
  mutable killed_at : Clock.time option;  (* pending-failover start *)
  mutable promotions : int;
  mutable fencings : int;
  mutable stale_counter : int;
}

type t = {
  groups : group array;  (* indexed by shard id *)
  quorum : int;
  lease : Clock.time;
  leases : Lease.t;  (* primary leases, keyed by shard id *)
  mutable on_step : (now:Clock.time -> rstep -> unit) option;
  mutable on_promote : (sid:int -> node:int -> now:Clock.time -> unit) option;
  mutable sabotage : sabotage option;
  mutable kills : int;
  mutable revives : int;
  mutable dead : (int * int) list;  (* (sid, node), oldest kill first *)
  mutable stale_acks : (int * int * int list) list;  (* fabricated (tid, cts, shards) acks *)
  mutable lags : (int * Clock.time) list;  (* (sid, failover lag), oldest first *)
}

let fire_step t ~now step =
  match t.on_step with Some f -> f ~now step | None -> ()

let primary_node g = if g.primary < 0 then None else Some g.nodes.(g.primary)

let primary_alive g =
  match primary_node g with Some nd -> nd.alive | None -> false

let group t ~sid =
  if sid < 0 || sid >= Array.length t.groups then
    invalid_arg "Replica: shard id out of range";
  t.groups.(sid)

(* Backup side of a [Ship]: refuse anything from a fenced epoch, then
   append contiguously into the mirror. [`Gap] cannot happen from an
   honest primary (frames are shipped from the backup's own watermark)
   but a stale primary's divergent tail is dropped either way. *)
let handle_ship t g ~ep ~now ~repoch ~frames =
  let nd = g.nodes.(ep) in
  if not nd.alive then ()
  else if repoch < g.repoch then begin
    g.fencings <- g.fencings + 1;
    Metrics.bump "replica.fencings"
  end
  else begin
    List.iter
      (fun (lsn, repr) ->
        match Wal.receive nd.nwal ~lsn ~repr with
        | `Applied | `Duplicate | `Gap -> ())
      frames;
    let upto = Wal.max_lsn nd.nwal in
    fire_step t ~now (R_ack { sid = g.sid; node = ep; upto });
    (* The step hook may have killed this node: a replica that dies
       while acking never acks. *)
    if nd.alive && g.primary >= 0 then
      Bus.send g.bus ~src:ep ~dst:g.primary ~now
        (Ship_ack { repoch = g.repoch; node = ep; upto })
  end

(* Primary side of a [Ship_ack]: advance the backup's watermark and
   journal it (unforced) so the audit trail of what was replicated when
   survives in the log itself. *)
let handle_ship_ack t g ~ep ~now ~repoch ~node ~upto =
  ignore t;
  if ep = g.primary && repoch = g.repoch && primary_alive g then begin
    let nd = g.nodes.(node) in
    if upto > nd.acked_upto then begin
      nd.acked_upto <- upto;
      ignore (Wal.log g.gwal ~at:now (Wal_record.Rep_ack { epoch = g.repoch; node; upto }))
    end
  end

let install_handlers t g =
  Array.iteri
    (fun ep _ ->
      Bus.set_handler g.bus ~ep (fun ~now ~src:_ msg ->
          match msg with
          | Ship { repoch; frames } -> handle_ship t g ~ep ~now ~repoch ~frames
          | Ship_ack { repoch; node; upto } ->
              handle_ship_ack t g ~ep ~now ~repoch ~node ~upto))
    g.nodes

let create ?quorum ?(lease = Clock.ms 50) ~replicas ~wals () =
  if replicas < 1 then invalid_arg "Replica.create: need at least one replica";
  if lease <= 0 then invalid_arg "Replica.create: lease must be positive";
  let q =
    match quorum with Some q -> q | None -> ((replicas + 1) / 2) + 1
  in
  if q < 1 || q > replicas + 1 then
    invalid_arg "Replica.create: quorum out of range";
  let wals = List.sort (fun (a, _) (b, _) -> compare a b) wals in
  let leases = Lease.create () in
  let groups =
    List.mapi
      (fun i (sid, gwal) ->
        if sid <> i then invalid_arg "Replica.create: shard ids must be 0..n-1";
        if not (Wal.is_durable gwal) then
          invalid_arg "Replica.create: shard wal must be durable";
        let nodes =
          Array.init (replicas + 1) (fun node_id ->
              let nwal = Wal.create ~shard:sid () in
              Wal.enable_durability nwal;
              Wal.adopt nwal ~src:gwal;
              {
                node_id;
                nwal;
                alive = true;
                acked_upto = Wal.max_lsn gwal;
                claims_primary = node_id = 0;
                was_primary = false;
                fence_epoch = 0;
              })
        in
        let bus = Bus.create ~endpoints:(replicas + 1) () in
        Lease.grant_primary leases ~tid:sid ~lease ~now:0;
        {
          sid;
          gwal;
          nodes;
          primary = 0;
          repoch = 0;
          bus;
          killed_at = None;
          promotions = 0;
          fencings = 0;
          stale_counter = 0;
        })
      wals
  in
  let t =
    {
      groups = Array.of_list groups;
      quorum = q;
      lease;
      leases;
      on_step = None;
      on_promote = None;
      sabotage = None;
      kills = 0;
      revives = 0;
      dead = [];
      stale_acks = [];
      lags = [];
    }
  in
  Array.iter (fun g -> install_handlers t g) t.groups;
  t

let set_on_step t f = t.on_step <- Some f
let set_on_promote t f = t.on_promote <- Some f
let set_sabotage t s = t.sabotage <- s
let quorum t = t.quorum
let shard_count t = Array.length t.groups
let primary t ~sid = let g = group t ~sid in if g.primary < 0 then None else Some g.primary
let shard_up t ~sid = primary_alive (group t ~sid)
let epoch t ~sid = (group t ~sid).repoch

(* Ship the primary's backlog to one lagging backup. Steps fire before
   the send so a kill schedule can land between "about to replicate"
   and "replicated". *)
let ship_to t g ~now nd =
  let p_alive () = primary_alive g in
  if p_alive () && nd.alive && nd.node_id <> g.primary then begin
    let frames = Wal.frames_from g.gwal ~lsn:nd.acked_upto in
    if frames <> [] then begin
      fire_step t ~now (R_ship { sid = g.sid; node = nd.node_id; frames = List.length frames });
      if p_alive () && nd.alive then
        Bus.send g.bus ~src:g.primary ~dst:nd.node_id ~now
          (Ship { repoch = g.repoch; frames })
    end
  end

let quorum_met t g ~target =
  primary_alive g
  && 1
     + Array.fold_left
         (fun acc nd ->
           if nd.alive && nd.node_id <> g.primary && nd.acked_upto >= target then acc + 1
           else acc)
         0 g.nodes
     >= t.quorum

let replicate t ~sid ~now =
  let g = group t ~sid in
  match t.sabotage with
  | Some Ack_before_replicate ->
      (* The lie under test: claim quorum durability without shipping a
         single frame. The sweep's catch-up path will ship the backlog
         later — a kill inside that window loses acknowledged commits,
         which is exactly what [no-committed-loss] must catch. *)
      if primary_alive g then `Quorum else `Degraded
  | _ ->
      if not (primary_alive g) then `Degraded
      else begin
        (* Capture the target before shipping: acks journal [Rep_ack]
           frames on the device, so the live max advances underneath
           the loop and must not move the goalposts. *)
        let target = Wal.max_lsn g.gwal in
        Array.iter (fun nd -> ship_to t g ~now nd) g.nodes;
        Lease.note_progress t.leases ~tid:sid ~now;
        fire_step t ~now (R_quorum { sid });
        if quorum_met t g ~target then `Quorum else `Degraded
      end

let kill t ~sid ~node ~now =
  let g = group t ~sid in
  if node < 0 || node >= Array.length g.nodes then false
  else
    let nd = g.nodes.(node) in
    if (not nd.alive) || Array.exists (fun o -> not o.alive) g.nodes then
      (* One dead node per group at a time: the campaign budget that
         keeps every honest kill schedule recoverable. *)
      false
    else begin
      nd.alive <- false;
      t.kills <- t.kills + 1;
      t.dead <- t.dead @ [ (sid, node) ];
      Metrics.bump "replica.kills";
      if node = g.primary then begin
        (* Coffin snapshot: whatever the device held at death is what a
           revived node finds on its own disk. *)
        Wal.adopt nd.nwal ~src:g.gwal;
        nd.was_primary <- true;
        nd.fence_epoch <- g.repoch;
        g.primary <- -1;
        g.killed_at <- Some now
      end;
      true
    end

let revive t ~sid ~node ~now =
  ignore now;
  let g = group t ~sid in
  if node < 0 || node >= Array.length g.nodes then false
  else
    let nd = g.nodes.(node) in
    if nd.alive then false
    else
      match (t.sabotage, nd.was_primary) with
      | Some Stale_primary_writes, true ->
          if g.primary < 0 then
            (* The stale ex-primary resurfaces only once a successor
               holds the shard — that is the split-brain under test. *)
            false
          else begin
            nd.alive <- true;
            nd.claims_primary <- true;
            (* Keeps its coffin state and its old epoch: it refuses to
               acknowledge that it was fenced. *)
            t.revives <- t.revives + 1;
            t.dead <- List.filter (fun d -> d <> (sid, node)) t.dead;
            true
          end
      | _ ->
          nd.alive <- true;
          nd.claims_primary <- false;
          nd.was_primary <- false;
          (* State transfer — but only from a node that can serve one.
             With a live primary, rejoin as a fully caught-up backup of
             the authoritative device (this is also the fencing step: a
             returning ex-primary's divergent suffix is truncated onto
             the promoted timeline here). While the shard is
             primaryless there is nobody to transfer from: the node
             rejoins with whatever its own disk holds — for a dead
             ex-primary that is its coffin, so a node that returns
             before the lease expires can still win candidacy and
             honestly rescue the un-shipped tail of its timeline. *)
          if primary_alive g then begin
            Wal.adopt nd.nwal ~src:g.gwal;
            nd.fence_epoch <- g.repoch
          end;
          nd.acked_upto <- Wal.max_lsn nd.nwal;
          t.revives <- t.revives + 1;
          t.dead <- List.filter (fun d -> d <> (sid, node)) t.dead;
          true

(* Highest-caught-up live backup; ties break to the lowest node id so
   promotion is deterministic. A stale claimant is never a candidate —
   its log diverged from the acknowledged timeline. *)
let candidate g =
  Array.fold_left
    (fun best nd ->
      if (not nd.alive) || nd.node_id = g.primary || nd.claims_primary then best
      else
        match best with
        | Some b when Wal.max_lsn b.nwal >= Wal.max_lsn nd.nwal -> best
        | _ -> Some nd)
    None g.nodes

let promote t g cand ~now =
  ignore (Wal.log g.gwal ~at:now (Wal_record.Promote { epoch = g.repoch; node = cand.node_id }));
  ignore (Wal.fsync g.gwal ~at:now ());
  g.primary <- cand.node_id;
  cand.claims_primary <- true;
  cand.was_primary <- false;
  cand.fence_epoch <- g.repoch;
  cand.acked_upto <- Wal.max_lsn g.gwal;
  (* Resync the other live backups onto the promoted timeline: their
     mirrors may hold frames the candidate never saw (a longer but
     un-acked tail) and divergence is not allowed to linger. *)
  Array.iter
    (fun nd ->
      if nd.alive && nd.node_id <> cand.node_id && not nd.claims_primary then begin
        Wal.adopt nd.nwal ~src:g.gwal;
        nd.acked_upto <- Wal.max_lsn nd.nwal
      end)
    g.nodes;
  g.promotions <- g.promotions + 1;
  Metrics.bump "replica.promotions";
  (match g.killed_at with
  | Some k -> t.lags <- t.lags @ [ (g.sid, now - k) ]
  | None -> ());
  g.killed_at <- None;
  Lease.grant_primary t.leases ~tid:g.sid ~lease:t.lease ~now;
  fire_step t ~now (R_promote { sid = g.sid; node = cand.node_id });
  match t.on_promote with
  | Some f -> f ~sid:g.sid ~node:cand.node_id ~now
  | None -> ()

(* Fabricate unreplicated commits from a revived stale primary and try
   to ship them: the epoch fence must refuse every frame, and the
   fabricated "acks" land in the stale ledger the loss invariant is
   checked against. *)
let stale_primary_noise t g ~now =
  Array.iter
    (fun nd ->
      if nd.alive && nd.claims_primary && nd.node_id <> g.primary then begin
        let tid = 900_000_000 + (g.sid * 1_000_000) + g.stale_counter in
        g.stale_counter <- g.stale_counter + 1;
        ignore (Wal.log nd.nwal ~at:now (Wal_record.Txn_commit { tid; cts = tid }));
        t.stale_acks <- (tid, tid, [ g.sid ]) :: t.stale_acks;
        Metrics.bump "replica.stale_acks";
        let frames = Wal.frames_from nd.nwal ~lsn:(Wal.max_lsn nd.nwal - 1) in
        Array.iter
          (fun other ->
            if other.node_id <> nd.node_id then
              Bus.send g.bus ~src:nd.node_id ~dst:other.node_id ~now
                (Ship { repoch = nd.fence_epoch; frames }))
          g.nodes;
        (* It also still answers clients: votes and acks under the old
           epoch. The group-side fence refuses those too; here we only
           record that it tried. *)
        ignore (Bus.pump g.bus ~now)
      end)
    g.nodes

let sweep t ~now =
  (* Heartbeats: a live primary renews its lease; a dead one goes
     silent and the lease runs out. *)
  Array.iter
    (fun g -> if primary_alive g then Lease.note_progress t.leases ~tid:g.sid ~now)
    t.groups;
  let expired = Lease.expired t.leases ~now in
  let promotable =
    Array.to_list t.groups
    |> List.filter_map (fun g ->
           if g.primary >= 0 || not (List.mem g.sid expired) then None
           else match candidate g with None -> None | Some c -> Some (g, c))
  in
  (* Two-phase promote-all: adopt every device first, then finalize.
     The finalize step re-reads *other* shards' devices (the in-doubt
     resolver consults coordinator logs), so no resolver may observe a
     device that is still about to be rolled onto a shorter timeline. *)
  List.iter
    (fun (g, c) ->
      g.repoch <- g.repoch + 1;
      Wal.adopt g.gwal ~src:c.nwal)
    promotable;
  List.iter (fun (g, c) -> promote t g c ~now) promotable;
  (* Catch-up shipping: lagging live backups (including the backlog an
     ack-before-replicate primary silently accumulated) converge here. *)
  Array.iter
    (fun g -> if primary_alive g then Array.iter (fun nd -> ship_to t g ~now nd) g.nodes)
    t.groups;
  if t.sabotage = Some Stale_primary_writes then
    Array.iter (fun g -> stale_primary_noise t g ~now) t.groups

let dead_nodes t = t.dead
let stale_acked t = List.rev t.stale_acks
let promotions t ~sid = (group t ~sid).promotions
let fencings t ~sid = (group t ~sid).fencings
let kills t = t.kills
let revives t = t.revives
let stale_ack_count t = List.length t.stale_acks
let lags t = t.lags

let node_alive t ~sid ~node =
  let g = group t ~sid in
  node >= 0 && node < Array.length g.nodes && g.nodes.(node).alive

let mirror t ~sid ~node =
  let g = group t ~sid in
  if node < 0 || node >= Array.length g.nodes then
    invalid_arg "Replica.mirror: node out of range";
  g.nodes.(node).nwal

let check_no_split_brain t =
  Array.fold_left
    (fun acc g ->
      let claimants =
        Array.fold_left
          (fun l nd -> if nd.alive && nd.claims_primary then nd.node_id :: l else l)
          [] g.nodes
        |> List.rev
      in
      if List.length claimants > 1 then
        ( "no-split-brain",
          Printf.sprintf "shard %d epoch %d: %d live primaries (nodes %s)" g.sid
            g.repoch (List.length claimants)
            (String.concat "," (List.map string_of_int claimants)) )
        :: acc
      else acc)
    [] t.groups
  |> List.rev

let check_failover_lag t ~bound ~now =
  let recorded =
    List.filter_map
      (fun (sid, lag) ->
        if lag > bound then
          Some
            ( "bounded-failover-lag",
              Printf.sprintf "shard %d: failover took %d > bound %d" sid lag bound )
        else None)
      t.lags
  in
  let overdue =
    Array.fold_left
      (fun acc g ->
        match g.killed_at with
        | Some k when now - k > bound && candidate g <> None ->
            ( "bounded-failover-lag",
              Printf.sprintf
                "shard %d: primaryless for %d > bound %d with a live backup" g.sid
                (now - k) bound )
            :: acc
        | _ -> acc)
      [] t.groups
    |> List.rev
  in
  recorded @ overdue
