type t = {
  sid : int;
  engine : Engine.t;
  driver : Driver.t;
  wal : Wal.t;
  twopc : Engine.twopc;
  schema : Schema.t; (* this shard's local layout *)
}

let create ?costs ?driver_config ~mgr ~sid ~flavor schema =
  if sid < 0 then invalid_arg "Shard.create: negative shard id";
  let config =
    (* A shard must run a durable WAL: 2PC is a logging protocol, and a
       shard that cannot force a Prepare cannot promise anything. *)
    match driver_config with
    | Some c ->
        if not c.State.durable_wal then
          invalid_arg "Shard.create: shards require durable_wal";
        c
    | None -> { State.default_config with State.durable_wal = true }
  in
  let engine = Siro_engine.create ?costs ~driver_config:config ~mgr ~shard:sid ~flavor schema in
  let driver = Siro_engine.driver_exn engine in
  let twopc =
    match engine.Engine.twopc with
    | Some tw -> tw
    | None -> invalid_arg "Shard.create: engine exposes no 2PC primitives"
  in
  driver.State.shared_mgr <- true;
  { sid; engine; driver; wal = twopc.Engine.wal; twopc; schema }

let sid t = t.sid
let engine t = t.engine
let driver t = t.driver
let wal t = t.wal
let twopc t = t.twopc
let schema t = t.schema
