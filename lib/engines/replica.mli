(** Shard replication: deterministic WAL log-shipping, lease-based
    failover, and epoch fencing (DESIGN §4j).

    Each shard's authoritative WAL (the device the engine logs to) is
    attached to whichever of [replicas + 1] nodes currently holds the
    shard's primary {!Lease}. Backups maintain exact-prefix mirrors by
    frame shipping over a per-group in-process bus; {!replicate}
    reports [`Quorum] only once the backlog is durable on [quorum]
    nodes, and the shard group acknowledges commits to clients only on
    [`Quorum]. Node death is injected with {!kill}; {!sweep} detects
    the expired lease and deterministically promotes the
    highest-caught-up live backup under a bumped replication epoch,
    fencing the old primary's frames and votes for good.

    Everything is a pure function of the caller-supplied clock and the
    kill/revive schedule — no randomness, no wall time — so simulated
    and multicore runs of one seed make identical decisions. *)

type sabotage =
  | Ack_before_replicate
      (** Acknowledge quorum durability without shipping any frame;
          the backlog only converges at the next {!sweep}. A kill in
          that window loses acknowledged commits —
          [no-committed-loss] must catch it. *)
  | Stale_primary_writes
      (** A revived ex-primary refuses its fencing: it claims the
          shard, fabricates commit frames on its stale log and keeps
          shipping/acking under its old epoch. [no-split-brain] and
          [no-committed-loss] must catch it. *)

val sabotage_name : sabotage -> string
val sabotage_of_string : string -> sabotage option

(** Observable replication steps, fired {e before} the corresponding
    send so a kill schedule can land between intent and effect. *)
type rstep =
  | R_ship of { sid : int; node : int; frames : int }
      (** Primary about to ship [frames] frames to backup [node]. *)
  | R_ack of { sid : int; node : int; upto : int }
      (** Backup [node] about to acknowledge its mirror up to [upto]. *)
  | R_quorum of { sid : int }
      (** Primary about to evaluate the quorum condition. *)
  | R_promote of { sid : int; node : int }
      (** [node] was just promoted to primary of [sid]. *)

val rstep_name : rstep -> string
val rstep_sid : rstep -> int

type t

val create :
  ?quorum:int ->
  ?lease:Clock.time ->
  replicas:int ->
  wals:(int * Wal.t) list ->
  unit ->
  t
(** One replication group per [(sid, wal)] pair (sids must be
    [0..n-1]; each wal must be durable — pass {!Shard_group.wals}).
    Every group gets [replicas] backups seeded as exact copies; node 0
    starts as primary holding a [lease]-long authority lease (default
    50 ms, simulated). [quorum] defaults to a majority of
    [replicas + 1] and must lie in [1 .. replicas + 1]. Raises
    [Invalid_argument] on bad arguments. *)

val set_on_step : t -> (now:Clock.time -> rstep -> unit) -> unit
(** Install the step hook (the kill-schedule injection point). The
    hook must not raise; it may call {!kill}. *)

val set_on_promote : t -> (sid:int -> node:int -> now:Clock.time -> unit) -> unit
(** Called at the end of each promotion, after the device is adopted,
    the fencing marker forced and the lease re-granted — the shard
    group uses it to restart the engine on the promoted timeline. *)

val set_sabotage : t -> sabotage option -> unit

val replicate : t -> sid:int -> now:Clock.time -> [ `Quorum | `Degraded ]
(** Ship the primary's backlog to every lagging live backup and report
    whether the pre-ship device contents are durable on [quorum] nodes
    (counting the primary). [`Degraded] whenever the primary is dead
    or too few backups acked — the caller must not acknowledge the
    commit to the client. *)

val kill : t -> sid:int -> node:int -> now:Clock.time -> bool
(** Whole-node death. Killing the primary snapshots the device into
    the node's own mirror (the coffin a revival will find), detaches
    the device and starts the failover clock. Returns [false] — no
    kill — if the node is already dead or another node of the group is
    (one dead node per group keeps campaigns recoverable). *)

val revive : t -> sid:int -> node:int -> now:Clock.time -> bool
(** Bring a dead node back. Honestly: it state-transfers from the
    current device and rejoins as a caught-up backup. Under
    {!Stale_primary_writes}, a dead ex-primary instead comes back once
    a successor holds the shard, keeps its stale log and claims the
    shard again. [false] if the node is alive (or the stale revival is
    not yet due). *)

val sweep : t -> now:Clock.time -> unit
(** The failover heartbeat: renew live primaries' leases, promote
    every expired primaryless group (two-phase across groups so
    cross-shard resolvers never read a device that is still about to
    be rolled back), ship catch-up backlogs, and let a stale claimant
    emit its fenced noise. Call periodically from the scheduler. *)

val quorum : t -> int
val shard_count : t -> int
val primary : t -> sid:int -> int option
(** [None] while the shard is primaryless (failover pending). *)

val shard_up : t -> sid:int -> bool
val epoch : t -> sid:int -> int
val node_alive : t -> sid:int -> node:int -> bool
val mirror : t -> sid:int -> node:int -> Wal.t
(** The node's private mirror (tests inspect prefix equality). *)

val dead_nodes : t -> (int * int) list
(** [(sid, node)] pairs currently dead, oldest kill first. *)

val stale_acked : t -> (int * int * int list) list
(** Fabricated [(tid, cts, shards)] acks a stale primary handed to
    clients; the loss invariant is checked against the union of the
    real and stale ledgers. The fabricated commit timestamps sit far
    above any real oracle frontier, so they never age out of the
    oracle's checkpoint window. Oldest first. *)

val promotions : t -> sid:int -> int
val fencings : t -> sid:int -> int
val kills : t -> int
val revives : t -> int
val stale_ack_count : t -> int

val lags : t -> (int * Clock.time) list
(** Completed failovers as [(sid, promotion_time - kill_time)],
    oldest first. *)

val check_no_split_brain : t -> (string * string) list
(** [(invariant, detail)] rows — one per group with more than one live
    node claiming the shard. Empty in honest runs. *)

val check_failover_lag : t -> bound:Clock.time -> now:Clock.time -> (string * string) list
(** Completed failovers that took longer than [bound], plus groups
    primaryless past [bound] despite a live promotable backup. *)
