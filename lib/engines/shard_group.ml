type step =
  | Prepared of { tid : int; shard : int }
  | Decided of { tid : int; cts : int }
  | Applied of { tid : int; shard : int }
  | Acked of { tid : int; shard : int }
  | Forgotten of { tid : int }

let step_name = function
  | Prepared _ -> "prepared"
  | Decided _ -> "decided"
  | Applied _ -> "applied"
  | Acked _ -> "acked"
  | Forgotten _ -> "forgotten"

type t = {
  n : int;
  costs : Costs.t;
  schema : Schema.t; (* global layout; shard s holds rids congruent to s mod n *)
  mgr : Txn_manager.t;
  epoch : Epoch.t;
  shards : Shard.t array;
  participants : (int, int list ref) Hashtbl.t; (* tid -> shards written *)
  prepared_now : (int, int) Hashtbl.t array; (* per shard: tid -> coord *)
  decisions_now : (int, int) Hashtbl.t array; (* per coord: gid -> cts *)
  mutable steps : int; (* durable 2PC micro-steps taken, globally *)
  mutable on_step : (int -> step -> unit) option;
  mutable skip_coord_decision : bool;
  mutable single_commits : int;
  mutable cross_commits : int;
}

let shard_of t ~rid = rid mod t.n
let local_rid t ~rid = rid / t.n
let global_rid t ~sid ~local = (local * t.n) + sid
let local_records ~shards ~records ~sid = (records - sid + shards - 1) / shards

let create ?costs ?driver_config ?(flavor = `Pg) ~shards:n schema =
  if n < 1 then invalid_arg "Shard_group.create: need at least one shard";
  let costs = match costs with Some c -> c | None -> Costs.default in
  let mgr = Txn_manager.create () in
  let epoch = Epoch.create mgr in
  let records = Schema.records schema in
  let shards =
    Array.init n (fun sid ->
        (* Local layout: the shard's slice of the keyspace as one flat
           table. Global rid [r] lives on shard [r mod n] at local rid
           [r / n]. *)
        let local_schema =
          {
            schema with
            Schema.tables = 1;
            rows_per_table = max 1 (local_records ~shards:n ~records ~sid);
          }
        in
        Shard.create ~costs ?driver_config ~mgr ~sid ~flavor local_schema)
  in
  let t =
    {
      n;
      costs;
      schema;
      mgr;
      epoch;
      shards;
      participants = Hashtbl.create 256;
      prepared_now = Array.init n (fun _ -> Hashtbl.create 16);
      decisions_now = Array.init n (fun _ -> Hashtbl.create 16);
      steps = 0;
      on_step = None;
      skip_coord_decision = false;
      single_commits = 0;
      cross_commits = 0;
    }
  in
  Array.iter
    (fun (sh : Shard.t) ->
      let d = sh.Shard.driver in
      (* Dead zones come from the epoch broadcast, never from a direct
         live-table read: staleness only under-prunes (see {!Epoch}),
         and every shard prunes against the same global picture. *)
      d.State.zone_source <- Some (Epoch.subscribe epoch);
      (* Fuzzy checkpoints persist the shard's in-doubt window and the
         coordinator's undecided... decided-but-unforgotten window, so a
         crash between a checkpoint and the decision recovers right. *)
      d.State.ckpt_indoubt <-
        Some
          (fun () ->
            let prep =
              Hashtbl.fold (fun tid coord acc -> (tid, coord) :: acc)
                t.prepared_now.(sh.Shard.sid) []
              |> List.sort compare
            in
            let dec =
              Hashtbl.fold (fun gid cts acc -> (gid, cts) :: acc)
                t.decisions_now.(sh.Shard.sid) []
              |> List.sort compare
            in
            (prep, dec));
      (* In-doubt resolution at restart: ask the coordinator's durable
         log — its trustworthy prefix plus its checkpoint's decision
         window — exactly what {!Wal_recovery.expect} collects. The
         scan is always honest (CRC on): recovery may not trust a torn
         decision. *)
      d.State.indoubt_resolver <-
        Some
          (fun ~tid ~coord ->
            if coord < 0 || coord >= n then None
            else
              let exp =
                Wal_recovery.expect
                  (Wal_recovery.analyze ~check_crc:true t.shards.(coord).Shard.wal)
              in
              List.assoc_opt tid exp.Wal_recovery.decisions))
    shards;
  t

let shards t = t.shards
let shard_count t = t.n
let mgr t = t.mgr
let epoch t = t.epoch
let wals t = Array.to_list (Array.map (fun sh -> (sh.Shard.sid, sh.Shard.wal)) t.shards)
let two_pc_steps t = t.steps
let single_commits t = t.single_commits
let cross_commits t = t.cross_commits
let set_on_step t f = t.on_step <- f
let set_skip_coord_decision t b = t.skip_coord_decision <- b

let broadcast t = Epoch.broadcast t.epoch

let step t s =
  t.steps <- t.steps + 1;
  Metrics.bump ("twopc.step." ^ step_name s);
  match t.on_step with Some f -> f t.steps s | None -> ()

let begin_txn t ~now =
  let txn = Txn_manager.begin_txn t.mgr ~now in
  (txn, now + t.costs.Costs.txn_begin)

let read t txn ~rid ~now =
  let s = shard_of t ~rid in
  t.shards.(s).Shard.engine.Engine.read txn ~rid:(local_rid t ~rid) ~now

let write t (txn : Txn.t) ~rid ~payload ~now =
  let s = shard_of t ~rid in
  let tid = txn.Txn.tid in
  (* First touch of this shard: log the per-shard Txn_begin, so a crash
     before any outcome leaves an honest shard-local loser. *)
  (match Hashtbl.find_opt t.participants tid with
  | Some l ->
      if not (List.mem s !l) then begin
        t.shards.(s).Shard.twopc.Engine.log_begin ~tid ~now;
        l := s :: !l
      end
  | None ->
      t.shards.(s).Shard.twopc.Engine.log_begin ~tid ~now;
      Hashtbl.replace t.participants tid (ref [ s ]));
  t.shards.(s).Shard.engine.Engine.write txn ~rid:(local_rid t ~rid) ~payload ~now

let take_participants t tid =
  match Hashtbl.find_opt t.participants tid with
  | None -> []
  | Some l ->
      Hashtbl.remove t.participants tid;
      List.sort_uniq compare !l

let commit t (txn : Txn.t) ~now =
  let tid = txn.Txn.tid in
  match take_participants t tid with
  | [] ->
      (* Read-only: commit in the shared order; no shard logged a
         begin, so no shard's recovery will ever ask about it. *)
      Txn_manager.commit t.mgr txn ~now;
      now + t.costs.Costs.txn_commit
  | [ s ] ->
      (* One participant: plain single-shard durability, no 2PC. *)
      t.single_commits <- t.single_commits + 1;
      t.shards.(s).Shard.engine.Engine.commit txn ~now
  | parts ->
      (* Presumed-abort 2PC. The coordinator is the smallest
         participant; each arrow below is a durable micro-step, and the
         [on_step] hook fires after each one — the crash campaign's way
         of dying at every point of the protocol. *)
      let coord = List.hd parts in
      List.iter
        (fun s ->
          t.shards.(s).Shard.twopc.Engine.log_prepare ~tid ~coord ~shards:parts ~now;
          Hashtbl.replace t.prepared_now.(s) tid coord;
          step t (Prepared { tid; shard = s }))
        parts;
      (* The in-memory decision: global snapshot order commits once. *)
      Txn_manager.commit t.mgr txn ~now;
      let cts =
        match Commit_log.commit_ts_of (Txn_manager.commit_log t.mgr) tid with
        | Some c -> c
        | None -> 0
      in
      let cwal = t.shards.(coord).Shard.wal in
      if t.skip_coord_decision then Metrics.bump "twopc.decisions_skipped"
      else begin
        (* The commit point: the decision must be durable before any
           participant applies. *)
        ignore
          (Wal.log cwal ~at:now (Wal_record.Coord_commit { gid = tid; cts; shards = parts }));
        ignore (Wal.fsync cwal ~at:now ());
        Hashtbl.replace t.decisions_now.(coord) tid cts
      end;
      step t (Decided { tid; cts });
      List.iter
        (fun s ->
          t.shards.(s).Shard.twopc.Engine.apply_commit txn ~cts ~now;
          Hashtbl.remove t.prepared_now.(s) tid;
          step t (Applied { tid; shard = s });
          (* Acks collect at the coordinator; only the complete set lets
             it forget. Not forced: losing an ack merely re-asks. *)
          ignore (Wal.log cwal ~at:now (Wal_record.Ack { gid = tid; shard = s }));
          step t (Acked { tid; shard = s }))
        parts;
      ignore (Wal.log cwal ~at:now (Wal_record.Forget { gid = tid }));
      Hashtbl.remove t.decisions_now.(coord) tid;
      step t (Forgotten { tid });
      t.cross_commits <- t.cross_commits + 1;
      Metrics.bump "twopc.cross_commits";
      now + ((1 + List.length parts) * t.costs.Costs.txn_commit)

let abort t (txn : Txn.t) ~now =
  let tid = txn.Txn.tid in
  match take_participants t tid with
  | [] ->
      Txn_manager.abort t.mgr txn ~now;
      now + t.costs.Costs.txn_commit
  | [ s ] -> t.shards.(s).Shard.engine.Engine.abort txn ~now
  | parts ->
      Txn_manager.abort t.mgr txn ~now;
      let ats =
        match Commit_log.status (Txn_manager.commit_log t.mgr) tid with
        | Some (Commit_log.Aborted_at a) -> a
        | _ -> 0
      in
      let coord = List.hd parts in
      (* Informational only — absence of a decision already means
         abort. Never forced. *)
      ignore
        (Wal.log t.shards.(coord).Shard.wal ~at:now (Wal_record.Coord_abort { gid = tid }));
      List.iter
        (fun s ->
          t.shards.(s).Shard.twopc.Engine.apply_abort txn ~ats ~now;
          Hashtbl.remove t.prepared_now.(s) tid)
        parts;
      now + t.costs.Costs.txn_commit

let maintenance t ~now =
  Array.fold_left
    (fun acc (sh : Shard.t) -> max acc (sh.Shard.engine.Engine.maintenance ~now))
    now t.shards

let finish t ~now = Array.iter (fun (sh : Shard.t) -> sh.Shard.engine.Engine.finish ~now) t.shards

let sample t =
  Array.fold_left
    (fun (acc : Engine.sample) (sh : Shard.t) ->
      let s = sh.Shard.engine.Engine.sample () in
      {
        Engine.version_bytes = acc.Engine.version_bytes + s.Engine.version_bytes;
        redo_bytes = acc.Engine.redo_bytes + s.Engine.redo_bytes;
        max_chain = max acc.Engine.max_chain s.Engine.max_chain;
        splits = acc.Engine.splits + s.Engine.splits;
        truncations = acc.Engine.truncations + s.Engine.truncations;
        latch_wait = acc.Engine.latch_wait + s.Engine.latch_wait;
        wal_errors = acc.Engine.wal_errors + s.Engine.wal_errors;
      })
    {
      Engine.version_bytes = 0;
      redo_bytes = 0;
      max_chain = 0;
      splits = 0;
      truncations = 0;
      latch_wait = 0;
      wal_errors = 0;
    }
    t.shards

let total_lsn t =
  Array.fold_left (fun acc (sh : Shard.t) -> acc + Wal.max_lsn sh.Shard.wal) 0 t.shards

let clear_inflight t =
  Hashtbl.reset t.participants;
  Array.iter Hashtbl.reset t.prepared_now;
  Array.iter Hashtbl.reset t.decisions_now

let crash_all ?keep t =
  (* Whole-system power loss: every shard's device keeps only what it
     fsynced (or what the per-shard [keep] override says survived). *)
  Array.iter
    (fun (sh : Shard.t) ->
      let keep_lsn =
        match keep with
        | Some f -> f sh.Shard.sid
        | None -> Wal.flushed_lsn sh.Shard.wal
      in
      Wal.crash sh.Shard.wal ~keep_lsn)
    t.shards;
  clear_inflight t

let restart_all t ~now =
  (* One shared snapshot order: reset it once, then let each shard merge
     its recovered outcomes in ([crash_recover ~reset:false] inside the
     engine restart). Ascending sid order means a coordinator restarts
     no later than any shard it coordinates for — though resolution
     reads the coordinator's log directly, so order is a nicety, not a
     correctness requirement. *)
  Txn_manager.reset_for_recovery t.mgr;
  let infos =
    Array.to_list
      (Array.map
         (fun (sh : Shard.t) ->
           match sh.Shard.engine.Engine.restart with
           | Some restart -> restart ~now
           | None -> assert false (* shards are durable by construction *))
         t.shards)
  in
  (* Fresh global picture for every pipeline before work resumes. *)
  ignore (Epoch.broadcast t.epoch);
  infos
