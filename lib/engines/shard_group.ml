type step =
  | Prepared of { tid : int; shard : int }
  | Decided of { tid : int; cts : int }
  | Applied of { tid : int; shard : int }
  | Acked of { tid : int; shard : int }
  | Forgotten of { tid : int }

let step_name = function
  | Prepared _ -> "prepared"
  | Decided _ -> "decided"
  | Applied _ -> "applied"
  | Acked _ -> "acked"
  | Forgotten _ -> "forgotten"

type net_sabotage = Apply_on_timeout | Ack_forge

let net_sabotage_name = function
  | Apply_on_timeout -> "apply-on-timeout"
  | Ack_forge -> "ack-forge"

let net_sabotage_of_string = function
  | "apply-on-timeout" -> Some Apply_on_timeout
  | "ack-forge" -> Some Ack_forge
  | _ -> None

type outcome = Committed of Clock.time | Net_abort of Clock.time

exception Shard_down of int

(* Everything the coordinator/participant choreography says now rides
   the bus. [Abort_done] and the prepare votes are in-memory protocol
   traffic only — they never touch a WAL, matching the synchronous
   code's durable footprint exactly. *)
type msg =
  | Prepare_req of { tid : int; coord : int; parts : int list }
  | Prepare_ok of { tid : int; shard : int }
  | Decision_commit of { gid : int; cts : int }
  | Decision_abort of { gid : int; ats : int }
  | Abort_done of { gid : int; shard : int }
  | Ack_msg of { gid : int; shard : int }
  | Query_decision of { tid : int; shard : int }
  | Decision_reply of { tid : int; verdict : verdict }
  | Epoch_msg of { epoch : int; zones : Zone_set.t; ts : Timestamp.t }

and verdict = V_commit of int | V_abort of int

type pending_commit = {
  pc_coord : int;
  pc_cts : int;
  pc_parts : int list;
  mutable pc_next : Clock.time; (* next resend sweep *)
}

type pending_abort = {
  pa_coord : int;
  pa_ats : int;
  mutable pa_remaining : int list;
  mutable pa_next : Clock.time;
}

type t = {
  n : int;
  costs : Costs.t;
  schema : Schema.t; (* global layout; shard s holds rids congruent to s mod n *)
  mgr : Txn_manager.t;
  epoch : Epoch.t;
  shards : Shard.t array;
  participants : (int, int list ref) Hashtbl.t; (* tid -> shards written *)
  prepared_now : (int, int) Hashtbl.t array; (* per shard: tid -> coord *)
  decisions_now : (int, int) Hashtbl.t array; (* per coord: gid -> cts *)
  mutable steps : int; (* durable 2PC micro-steps taken, globally *)
  mutable on_step : (int -> step -> unit) option;
  mutable skip_coord_decision : bool;
  mutable single_commits : int;
  mutable cross_commits : int;
  (* --- network fabric --- *)
  net : msg Bus.t;
  net_cfg : Net_fault.config;
  rto : Clock.time; (* per-attempt vote wait *)
  indoubt_after : Clock.time; (* participant termination timeout *)
  resend_period : Clock.time; (* coordinator decision resend sweep *)
  mutable net_sabotage : net_sabotage option;
  backoffs : (int * int, Backoff.t) Hashtbl.t; (* (src,dst) channel policies *)
  txn_of : (int, Txn.t) Hashtbl.t; (* in-flight txn objects for deferred apply *)
  votes : (int * int, unit) Hashtbl.t; (* coordinator: (tid, shard) prepare votes *)
  acks : (int * int, unit) Hashtbl.t; (* coordinator: (gid, shard) commit acks *)
  inflight : (int, unit) Hashtbl.t; (* coordinator mid-protocol, pre-decision *)
  decided_all : (int, int) Hashtbl.t; (* durable commit decisions, never pruned *)
  aborted_all : (int, int) Hashtbl.t; (* abort decisions (gid -> ats) *)
  pending_commits : (int, pending_commit) Hashtbl.t;
  pending_aborts : (int, pending_abort) Hashtbl.t;
  prepared_at : (int, Clock.time) Hashtbl.t array; (* per shard: tid -> prepare time *)
  query_at : (int, Clock.time) Hashtbl.t array; (* per shard: tid -> next query time *)
  done_t : (int, unit) Hashtbl.t array; (* per shard: locally resolved (dedup) *)
  shard_epoch : int array; (* per shard: last applied broadcast epoch *)
  shard_zones : Zone_set.t array; (* per shard: zones of that epoch *)
  mutable net_aborts : int; (* cross commits failed fast as unreachable *)
  mutable indoubt_max : Clock.time; (* longest prepared->resolved residence *)
  mutable indoubt_sum : Clock.time;
  mutable indoubt_n : int;
  (* --- replication (None = unreplicated; every path below is then
     untouched, keeping the single-copy run byte-identical) --- *)
  mutable repl : Replica.t option;
  poisoned : (int, unit) Hashtbl.t; (* open txns that lost writes to a failover *)
  fence_at : Clock.time array; (* per shard: last promotion time (0 = never) *)
  acked_tbl : (int, int * int list) Hashtbl.t; (* tid -> (cts, parts) acked to the client *)
  mutable unacked : int; (* locally committed, never acked (quorum missed) *)
}

let shard_of t ~rid = rid mod t.n
let local_rid t ~rid = rid / t.n
let global_rid t ~sid ~local = (local * t.n) + sid
let local_records ~shards ~records ~sid = (records - sid + shards - 1) / shards

let svc t = t.n (* epoch/control service endpoint *)

let passthrough t =
  Net_fault.is_none t.net_cfg && t.net_sabotage = None && t.repl = None

(* Replication seams: with no replica layer attached every one of these
   is the identity, and the commit paths reduce to the single-copy
   code. *)
let shard_up t s = match t.repl with None -> true | Some r -> Replica.shard_up r ~sid:s

let rep_sync t ~s ~now =
  match t.repl with None -> `Quorum | Some r -> Replica.replicate r ~sid:s ~now

let record_acked t ~tid ~cts parts = Hashtbl.replace t.acked_tbl tid (cts, parts)

let step t s =
  t.steps <- t.steps + 1;
  Metrics.bump ("twopc.step." ^ step_name s);
  match t.on_step with Some f -> f t.steps s | None -> ()

let backoff_for t ~src ~dst =
  match Hashtbl.find_opt t.backoffs (src, dst) with
  | Some b -> b
  | None ->
      let b =
        Backoff.channel ~base_ns:t.rto ~cap_ns:(8 * t.rto) ~max_attempts:4
          ~seed:t.net_cfg.Net_fault.seed
          ~channel:(Printf.sprintf "net:%d->%d" src dst)
          ()
      in
      Hashtbl.replace t.backoffs (src, dst) b;
      b

(* Participant-side resolution of a prepared (or not-yet-prepared but
   written-to) transaction. Guarded by the per-shard [done_t] table:
   duplicated or reordered decision frames are no-ops, live and at any
   interleaving. *)
let resolve_indoubt_residence t ~s ~tid ~now =
  match Hashtbl.find_opt t.prepared_at.(s) tid with
  | None -> ()
  | Some at ->
      Hashtbl.remove t.prepared_at.(s) tid;
      let res = now - at in
      if res > 0 then begin
        if res > t.indoubt_max then t.indoubt_max <- res;
        t.indoubt_sum <- t.indoubt_sum + res;
        t.indoubt_n <- t.indoubt_n + 1
      end

let apply_commit_at t ~s ~coord ~gid ~cts ~now =
  if not (Hashtbl.mem t.done_t.(s) gid) then begin
    match Hashtbl.find_opt t.txn_of gid with
    | None -> ()
    | Some txn -> (
        match t.net_sabotage with
        | Some Ack_forge when s <> coord ->
            (* Sabotage: roll the local work back, lie with an ack. The
               coordinator forgets a transaction one shard aborted — the
               cross-shard atomicity oracle must catch this from the
               logs alone. *)
            t.shards.(s).Shard.twopc.Engine.apply_abort txn ~ats:0 ~now;
            Hashtbl.remove t.prepared_now.(s) gid;
            resolve_indoubt_residence t ~s ~tid:gid ~now;
            Hashtbl.replace t.done_t.(s) gid ();
            Bus.send t.net ~src:s ~dst:coord ~now (Ack_msg { gid; shard = s })
        | _ ->
            t.shards.(s).Shard.twopc.Engine.apply_commit txn ~cts ~now;
            Hashtbl.remove t.prepared_now.(s) gid;
            resolve_indoubt_residence t ~s ~tid:gid ~now;
            Hashtbl.replace t.done_t.(s) gid ();
            step t (Applied { tid = gid; shard = s });
            (* Participant apply replicates lazily: the decision is
               already quorum-durable at the coordinator, so a backup
               missing this frame recovers it through the termination
               query. A kill inside this ship still must not ack. *)
            ignore (rep_sync t ~s ~now);
            if shard_up t s then
              Bus.send t.net ~src:s ~dst:coord ~now (Ack_msg { gid; shard = s }))
  end
  else if t.repl <> None && shard_up t s then
    (* Already resolved here — possibly by a promotion-time restart
       whose ack the coordinator never saw. Re-acking on the duplicate
       decision is how the coordinator gets to forget. *)
    Bus.send t.net ~src:s ~dst:coord ~now (Ack_msg { gid; shard = s })

let apply_abort_at t ~s ~coord ~gid ~ats ~now =
  if not (Hashtbl.mem t.done_t.(s) gid) then begin
    (match Hashtbl.find_opt t.txn_of gid with
    | None -> ()
    | Some txn -> t.shards.(s).Shard.twopc.Engine.apply_abort txn ~ats ~now);
    Hashtbl.remove t.prepared_now.(s) gid;
    resolve_indoubt_residence t ~s ~tid:gid ~now;
    Hashtbl.replace t.done_t.(s) gid ()
  end;
  (* Always confirm: the first confirmation may have been lost. *)
  Bus.send t.net ~src:s ~dst:coord ~now (Abort_done { gid; shard = s })

let all_acked t ~gid parts = List.for_all (fun s -> Hashtbl.mem t.acks (gid, s)) parts

let handle t ~ep ~now ~src msg =
  let s = ep in
  (* A dead shard processes nothing: its primary is gone and the
     promoted successor rebuilds protocol state from the device. *)
  if not (shard_up t s) then ()
  else
  match msg with
  | Prepare_req { tid; coord; parts } ->
      if not (Hashtbl.mem t.done_t.(s) tid) then begin
        if not (Hashtbl.mem t.prepared_now.(s) tid) then begin
          t.shards.(s).Shard.twopc.Engine.log_prepare ~tid ~coord ~shards:parts ~now;
          Hashtbl.replace t.prepared_now.(s) tid coord;
          Hashtbl.replace t.prepared_at.(s) tid now;
          step t (Prepared { tid; shard = s })
        end;
        (* Re-voting on a duplicate request is how a lost vote heals.
           Under replication the vote is a durability promise, so it is
           withheld until the prepare frame itself is quorum-replicated
           — and never given by a shard that died during that ship. *)
        if rep_sync t ~s ~now = `Quorum && shard_up t s then
          Bus.send t.net ~src:s ~dst:coord ~now (Prepare_ok { tid; shard = s })
      end
  | Prepare_ok { tid; shard } -> Hashtbl.replace t.votes (tid, shard) ()
  | Decision_commit { gid; cts } -> apply_commit_at t ~s ~coord:src ~gid ~cts ~now
  | Decision_abort { gid; ats } -> apply_abort_at t ~s ~coord:src ~gid ~ats ~now
  | Abort_done { gid; shard } -> (
      match Hashtbl.find_opt t.pending_aborts gid with
      | None -> ()
      | Some pa ->
          pa.pa_remaining <- List.filter (fun x -> x <> shard) pa.pa_remaining;
          if pa.pa_remaining = [] then begin
            Hashtbl.remove t.pending_aborts gid;
            Hashtbl.remove t.txn_of gid
          end)
  | Ack_msg { gid; shard } ->
      if not (Hashtbl.mem t.acks (gid, shard)) then begin
        Hashtbl.replace t.acks (gid, shard) ();
        let cwal = t.shards.(s).Shard.wal in
        ignore (Wal.log cwal ~at:now (Wal_record.Ack { gid; shard }));
        step t (Acked { tid = gid; shard });
        match Hashtbl.find_opt t.pending_commits gid with
        | Some pc when all_acked t ~gid pc.pc_parts ->
            ignore (Wal.log cwal ~at:now (Wal_record.Forget { gid }));
            Hashtbl.remove t.decisions_now.(s) gid;
            Hashtbl.remove t.pending_commits gid;
            Hashtbl.remove t.txn_of gid;
            List.iter
              (fun x ->
                Hashtbl.remove t.acks (gid, x);
                Hashtbl.remove t.votes (gid, x))
              pc.pc_parts;
            step t (Forgotten { tid = gid })
        | _ -> ()
      end
  | Query_decision { tid; shard } ->
      (* In-doubt termination: answer only from what this coordinator
         durably knows. Mid-protocol transactions get silence (the
         decision is coming); otherwise a durable [Coord_commit] means
         commit, and anything else is presumed abort — exactly the rule
         recovery applies to the same log. *)
      if not (Hashtbl.mem t.inflight tid) then begin
        let verdict =
          match Hashtbl.find_opt t.decided_all tid with
          | Some cts -> V_commit cts
          | None -> (
              match Hashtbl.find_opt t.aborted_all tid with
              | Some ats -> V_abort ats
              | None -> V_abort 0)
        in
        Bus.send t.net ~src:s ~dst:shard ~now (Decision_reply { tid; verdict })
      end
  | Decision_reply { tid; verdict } -> (
      match verdict with
      | V_commit cts -> apply_commit_at t ~s ~coord:src ~gid:tid ~cts ~now
      | V_abort ats -> apply_abort_at t ~s ~coord:src ~gid:tid ~ats ~now)
  | Epoch_msg { epoch; zones; ts = _ } ->
      (* Monotone application: duplicates and reorderings are no-ops,
         staleness only under-prunes. *)
      if epoch > t.shard_epoch.(s) then begin
        t.shard_epoch.(s) <- epoch;
        t.shard_zones.(s) <- zones
      end

let create ?costs ?driver_config ?(flavor = `Pg) ?(net = Net_fault.none) ?net_rto
    ?net_indoubt_after ~shards:n schema =
  if n < 1 then invalid_arg "Shard_group.create: need at least one shard";
  let costs = match costs with Some c -> c | None -> Costs.default in
  let mgr = Txn_manager.create () in
  let epoch = Epoch.create mgr in
  let records = Schema.records schema in
  let shards =
    Array.init n (fun sid ->
        (* Local layout: the shard's slice of the keyspace as one flat
           table. Global rid [r] lives on shard [r mod n] at local rid
           [r / n]. *)
        let local_schema =
          {
            schema with
            Schema.tables = 1;
            rows_per_table = max 1 (local_records ~shards:n ~records ~sid);
          }
        in
        Shard.create ~costs ?driver_config ~mgr ~sid ~flavor local_schema)
  in
  let rto =
    match net_rto with
    | Some r ->
        if r < 1 then invalid_arg "Shard_group.create: net_rto must be positive";
        r
    | None -> max (Clock.us 200) (net.Net_fault.min_delay + net.Net_fault.max_delay)
  in
  let indoubt_after =
    match net_indoubt_after with
    | Some r ->
        if r < 1 then invalid_arg "Shard_group.create: net_indoubt_after must be positive";
        r
    | None -> 8 * rto
  in
  let t =
    {
      n;
      costs;
      schema;
      mgr;
      epoch;
      shards;
      participants = Hashtbl.create 256;
      prepared_now = Array.init n (fun _ -> Hashtbl.create 16);
      decisions_now = Array.init n (fun _ -> Hashtbl.create 16);
      steps = 0;
      on_step = None;
      skip_coord_decision = false;
      single_commits = 0;
      cross_commits = 0;
      net = Bus.create ~faults:net ~endpoints:(n + 1) ();
      net_cfg = net;
      rto;
      indoubt_after;
      resend_period = 4 * rto;
      net_sabotage = None;
      backoffs = Hashtbl.create 16;
      txn_of = Hashtbl.create 64;
      votes = Hashtbl.create 64;
      acks = Hashtbl.create 64;
      inflight = Hashtbl.create 16;
      decided_all = Hashtbl.create 256;
      aborted_all = Hashtbl.create 256;
      pending_commits = Hashtbl.create 16;
      pending_aborts = Hashtbl.create 16;
      prepared_at = Array.init n (fun _ -> Hashtbl.create 16);
      query_at = Array.init n (fun _ -> Hashtbl.create 16);
      done_t = Array.init n (fun _ -> Hashtbl.create 256);
      shard_epoch = Array.make n 0;
      shard_zones = Array.make n (Epoch.current epoch);
      net_aborts = 0;
      indoubt_max = 0;
      indoubt_sum = 0;
      indoubt_n = 0;
      repl = None;
      poisoned = Hashtbl.create 16;
      fence_at = Array.make n 0;
      acked_tbl = Hashtbl.create 256;
      unacked = 0;
    }
  in
  for ep = 0 to n - 1 do
    Bus.set_handler t.net ~ep (fun ~now ~src msg -> handle t ~ep ~now ~src msg)
  done;
  Array.iter
    (fun (sh : Shard.t) ->
      let d = sh.Shard.driver in
      let sid = sh.Shard.sid in
      (* Dead zones come from the epoch broadcast as delivered over the
         fabric, never from a direct live-table read: each shard prunes
         against the last broadcast that {e reached} it, and staleness
         (delay, loss, partition) only under-prunes (see {!Epoch}). *)
      d.State.zone_source <- Some (fun () -> t.shard_zones.(sid));
      (* Fuzzy checkpoints persist the shard's in-doubt window and the
         coordinator's decided-but-unforgotten window, so a crash
         between a checkpoint and the decision recovers right. *)
      d.State.ckpt_indoubt <-
        Some
          (fun () ->
            let prep =
              Hashtbl.fold (fun tid coord acc -> (tid, coord) :: acc)
                t.prepared_now.(sh.Shard.sid) []
              |> List.sort compare
            in
            let dec =
              Hashtbl.fold (fun gid cts acc -> (gid, cts) :: acc)
                t.decisions_now.(sh.Shard.sid) []
              |> List.sort compare
            in
            (prep, dec));
      (* In-doubt resolution at restart: ask the coordinator's durable
         log — its trustworthy prefix plus its checkpoint's decision
         window — exactly what {!Wal_recovery.expect} collects. The
         scan is always honest (CRC on): recovery may not trust a torn
         decision. *)
      d.State.indoubt_resolver <-
        Some
          (fun ~tid ~coord ->
            if coord < 0 || coord >= n then None
            else
              let exp =
                Wal_recovery.expect
                  (Wal_recovery.analyze ~check_crc:true t.shards.(coord).Shard.wal)
              in
              List.assoc_opt tid exp.Wal_recovery.decisions))
    shards;
  t

let shards t = t.shards
let shard_count t = t.n
let mgr t = t.mgr
let epoch t = t.epoch
let wals t = Array.to_list (Array.map (fun sh -> (sh.Shard.sid, sh.Shard.wal)) t.shards)
let two_pc_steps t = t.steps
let single_commits t = t.single_commits
let cross_commits t = t.cross_commits
let set_on_step t f = t.on_step <- f
let set_skip_coord_decision t b = t.skip_coord_decision <- b
let set_net_sabotage t s = t.net_sabotage <- s
let net_config t = t.net_cfg
let net_rto t = t.rto
let net_indoubt_after t = t.indoubt_after
let net_stats t = Bus.stats t.net
let net_aborts t = t.net_aborts
let indoubt_count t ~sid = Hashtbl.length t.prepared_now.(sid)

let indoubt_total t =
  Array.fold_left (fun acc h -> acc + Hashtbl.length h) 0 t.prepared_now

let epoch_lag t ~sid = Epoch.epoch t.epoch - t.shard_epoch.(sid)
let max_indoubt_residence t = t.indoubt_max

let mean_indoubt_residence t =
  if t.indoubt_n = 0 then 0. else float_of_int t.indoubt_sum /. float_of_int t.indoubt_n

let net_pending t =
  Bus.pending t.net + Hashtbl.length t.pending_commits + Hashtbl.length t.pending_aborts

let broadcast ?(now = 0) t =
  let e = Epoch.broadcast t.epoch in
  let _, zones, ts = Epoch.snapshot t.epoch in
  for s = 0 to t.n - 1 do
    Bus.send t.net ~src:(svc t) ~dst:s ~now (Epoch_msg { epoch = e; zones; ts })
  done;
  e

let begin_txn t ~now =
  let txn = Txn_manager.begin_txn t.mgr ~now in
  (txn, now + t.costs.Costs.txn_begin)

(* A transaction that began before shard [s]'s last failover holds a
   snapshot of the dead primary's timeline; the promoted engine cannot
   honestly serve it (its versions may be gone). Fenced like a down
   shard: the worker aborts and retries on the new timeline. *)
let fenced t (txn : Txn.t) ~s = txn.Txn.begin_time < t.fence_at.(s)

let read t (txn : Txn.t) ~rid ~now =
  let s = shard_of t ~rid in
  if (not (shard_up t s)) || fenced t txn ~s then raise (Shard_down s);
  t.shards.(s).Shard.engine.Engine.read txn ~rid:(local_rid t ~rid) ~now

let write t (txn : Txn.t) ~rid ~payload ~now =
  let s = shard_of t ~rid in
  if (not (shard_up t s)) || fenced t txn ~s then raise (Shard_down s);
  let tid = txn.Txn.tid in
  (* First touch of this shard: log the per-shard Txn_begin, so a crash
     before any outcome leaves an honest shard-local loser. *)
  (match Hashtbl.find_opt t.participants tid with
  | Some l ->
      if not (List.mem s !l) then begin
        t.shards.(s).Shard.twopc.Engine.log_begin ~tid ~now;
        l := s :: !l
      end
  | None ->
      t.shards.(s).Shard.twopc.Engine.log_begin ~tid ~now;
      Hashtbl.replace t.participants tid (ref [ s ]));
  t.shards.(s).Shard.engine.Engine.write txn ~rid:(local_rid t ~rid) ~payload ~now

let take_participants t tid =
  match Hashtbl.find_opt t.participants tid with
  | None -> []
  | Some l ->
      Hashtbl.remove t.participants tid;
      List.sort_uniq compare !l

(* Bounded-retry vote collection. Passthrough never enters the wait
   loop (the inline prepare already voted), so no backoff stream is
   ever created or drawn from — the no-fault run stays byte-identical.
   Under faults the channel's own backoff paces resends; exhaustion
   means the participant is unreachable and the transaction fails
   fast. *)
let wait_vote t ~coord ~s ~tid ~parts tref =
  if Hashtbl.mem t.votes (tid, s) then true
  else begin
    let b = backoff_for t ~src:coord ~dst:s in
    Backoff.reset b;
    let rec go () =
      if Hashtbl.mem t.votes (tid, s) then true
      else
        match Backoff.next b with
        | None -> false
        | Some d ->
            tref := !tref + d;
            ignore (Bus.pump t.net ~now:!tref);
            if Hashtbl.mem t.votes (tid, s) then true
            else begin
              Bus.count_retry t.net;
              Bus.send t.net ~src:coord ~dst:s ~now:!tref (Prepare_req { tid; coord; parts });
              ignore (Bus.pump t.net ~now:!tref);
              go ()
            end
    in
    go ()
  end

(* Global abort with reliable (resent-until-confirmed) participant
   notification. Used by the conflict path and by a phase-1 that could
   not reach every participant. *)
let abort_cross t (txn : Txn.t) ~tid ~parts ~now =
  Txn_manager.abort t.mgr txn ~now;
  let ats =
    match Commit_log.status (Txn_manager.commit_log t.mgr) tid with
    | Some (Commit_log.Aborted_at a) -> a
    | _ -> 0
  in
  let coord = List.hd parts in
  (* Informational only — absence of a decision already means abort.
     Never forced, and never written through a detached device. *)
  if shard_up t coord then
    ignore (Wal.log t.shards.(coord).Shard.wal ~at:now (Wal_record.Coord_abort { gid = tid }));
  Hashtbl.replace t.aborted_all tid ats;
  Hashtbl.replace t.txn_of tid txn;
  Hashtbl.replace t.pending_aborts tid
    { pa_coord = coord; pa_ats = ats; pa_remaining = parts; pa_next = now + t.resend_period };
  List.iter (fun s -> Hashtbl.remove t.votes (tid, s)) parts;
  List.iter
    (fun s -> Bus.send t.net ~src:coord ~dst:s ~now (Decision_abort { gid = tid; ats }))
    parts;
  now + t.costs.Costs.txn_commit

let abort t (txn : Txn.t) ~now =
  let tid = txn.Txn.tid in
  match take_participants t tid with
  | [] ->
      Txn_manager.abort t.mgr txn ~now;
      now + t.costs.Costs.txn_commit
  | [ s ] -> t.shards.(s).Shard.engine.Engine.abort txn ~now
  | parts -> abort_cross t txn ~tid ~parts ~now

let commit_checked t (txn : Txn.t) ~now =
  let tid = txn.Txn.tid in
  if Hashtbl.mem t.poisoned tid then begin
    (* A shard holding this transaction's un-replicated writes failed
       over: those writes do not exist on the promoted timeline, so the
       only honest outcome is a clean global abort. *)
    Hashtbl.remove t.poisoned tid;
    Net_abort (abort t txn ~now)
  end
  else
  match take_participants t tid with
  | [] ->
      (* Read-only: commit in the shared order; no shard logged a
         begin, so no shard's recovery will ever ask about it. *)
      Txn_manager.commit t.mgr txn ~now;
      Committed (now + t.costs.Costs.txn_commit)
  | [ s ] -> (
      (* One participant: plain single-shard durability, no 2PC — and
         no fabric, so single-shard traffic keeps committing under any
         partition. *)
      match t.repl with
      | None ->
          t.single_commits <- t.single_commits + 1;
          Committed (t.shards.(s).Shard.engine.Engine.commit txn ~now)
      | Some _ when not (shard_up t s) ->
          t.net_aborts <- t.net_aborts + 1;
          Net_abort (t.shards.(s).Shard.engine.Engine.abort txn ~now)
      | Some _ -> (
          let at = t.shards.(s).Shard.engine.Engine.commit txn ~now in
          (* The commit frame is forced locally; the client may only
             hear "committed" once it is quorum-durable and the shard
             survived the ship. *)
          match rep_sync t ~s ~now with
          | `Quorum when shard_up t s ->
              t.single_commits <- t.single_commits + 1;
              let cts =
                match Commit_log.commit_ts_of (Txn_manager.commit_log t.mgr) tid with
                | Some c -> c
                | None -> 0
              in
              record_acked t ~tid ~cts [ s ];
              Committed at
          | _ ->
              t.unacked <- t.unacked + 1;
              Net_abort at))
  | parts -> (
      (* Presumed-abort 2PC over the fabric. The coordinator is the
         smallest participant; each durable micro-step still fires the
         [on_step] hook — the crash campaign's way of dying at every
         point of the protocol. *)
      let coord = List.hd parts in
      if t.repl <> None && not (List.for_all (fun s -> shard_up t s) parts) then begin
        (* Fail fast without entering phase 1: some participant has no
           primary right now. Prepared nobody, promised nobody. *)
        t.net_aborts <- t.net_aborts + 1;
        Net_abort (abort_cross t txn ~tid ~parts ~now)
      end
      else begin
      let tref = ref now in
      Hashtbl.replace t.inflight tid ();
      Hashtbl.replace t.txn_of tid txn;
      (* Phase 1: prepare everywhere, with per-channel timeout+retry.
         The coordinator's self-send is inline and lossless, so its own
         prepare always lands first. *)
      let unreachable =
        List.exists
          (fun s ->
            Bus.send t.net ~src:coord ~dst:s ~now:!tref (Prepare_req { tid; coord; parts });
            not (wait_vote t ~coord ~s ~tid ~parts tref))
          parts
      in
      Hashtbl.remove t.inflight tid;
      if unreachable then begin
        (* Fail fast: some participant is unreachable (lost votes past
           the retry budget, or a partition). Globally abort; prepared
           participants resolve through the abort resend or the
           termination query, both of which answer presumed-abort. *)
        t.net_aborts <- t.net_aborts + 1;
        Net_abort (abort_cross t txn ~tid ~parts ~now:!tref)
      end
      else begin
        (* The in-memory decision: global snapshot order commits once. *)
        Txn_manager.commit t.mgr txn ~now:!tref;
        let cts =
          match Commit_log.commit_ts_of (Txn_manager.commit_log t.mgr) tid with
          | Some c -> c
          | None -> 0
        in
        let cwal = t.shards.(coord).Shard.wal in
        if t.skip_coord_decision then Metrics.bump "twopc.decisions_skipped"
        else begin
          (* The commit point: the decision must be durable before any
             participant applies. *)
          ignore
            (Wal.log cwal ~at:!tref
               (Wal_record.Coord_commit { gid = tid; cts; shards = parts }));
          ignore (Wal.fsync cwal ~at:!tref ());
          Hashtbl.replace t.decisions_now.(coord) tid cts;
          Hashtbl.replace t.decided_all tid cts
        end;
        step t (Decided { tid; cts });
        Hashtbl.replace t.pending_commits tid
          {
            pc_coord = coord;
            pc_cts = cts;
            pc_parts = parts;
            pc_next = !tref + t.resend_period;
          };
        (* The decision frame must itself survive the coordinator: only
           a quorum-replicated [Coord_commit] may be acknowledged. A
           coordinator that dies during this ship leaves the decision
           durable on its own disk at most — the promoted timeline
           rules, and in-doubt participants terminate against it. *)
        let rep_ok =
          match t.repl with
          | None -> true
          | Some _ -> rep_sync t ~s:coord ~now:!tref = `Quorum && shard_up t coord
        in
        if rep_ok then begin
          (* Phase 2: the decision is durable, so delivery may be lazy —
             each send is fire-and-forget here, and the resend sweep plus
             the termination protocol guarantee eventual application.
             Inline (no-fault) delivery applies, acks and forgets in
             exactly the synchronous order. *)
          List.iter
            (fun s ->
              Bus.send t.net ~src:coord ~dst:s ~now:!tref (Decision_commit { gid = tid; cts }))
            parts;
          t.cross_commits <- t.cross_commits + 1;
          Metrics.bump "twopc.cross_commits";
          record_acked t ~tid ~cts parts;
          Committed (!tref + ((1 + List.length parts) * t.costs.Costs.txn_commit))
        end
        else begin
          (* No client ack and no eager phase 2. Whatever the promoted
             timeline says becomes the outcome: if the decision survived
             it will be re-armed and resent; if not, presumed abort
             terminates every prepared participant. *)
          t.unacked <- t.unacked + 1;
          Net_abort (!tref + ((1 + List.length parts) * t.costs.Costs.txn_commit))
        end
      end
      end)

let commit t txn ~now =
  match commit_checked t txn ~now with Committed at -> at | Net_abort at -> at

(* The resolver sweep: deliver due traffic, resend unacknowledged
   decisions, and run the termination protocol for in-doubt
   participants. A no-op in passthrough — the synchronous choreography
   never leaves residue. *)
let tick t ~now =
  if not (passthrough t) then begin
    ignore (Bus.pump t.net ~now);
    (* Coordinator resends: any decided transaction still missing acks,
       any abort not yet confirmed everywhere. *)
    let pcs =
      Hashtbl.fold (fun gid pc acc -> (gid, pc) :: acc) t.pending_commits []
      |> List.sort compare
    in
    List.iter
      (fun (gid, pc) ->
        if now >= pc.pc_next && shard_up t pc.pc_coord then begin
          pc.pc_next <- now + t.resend_period;
          List.iter
            (fun s ->
              if not (Hashtbl.mem t.acks (gid, s)) then begin
                Bus.count_retry t.net;
                Bus.send t.net ~src:pc.pc_coord ~dst:s ~now
                  (Decision_commit { gid; cts = pc.pc_cts })
              end)
            pc.pc_parts
        end)
      pcs;
    let pas =
      Hashtbl.fold (fun gid pa acc -> (gid, pa) :: acc) t.pending_aborts []
      |> List.sort compare
    in
    List.iter
      (fun (gid, pa) ->
        if now >= pa.pa_next && shard_up t pa.pa_coord then begin
          pa.pa_next <- now + t.resend_period;
          List.iter
            (fun s ->
              Bus.count_retry t.net;
              Bus.send t.net ~src:pa.pa_coord ~dst:s ~now
                (Decision_abort { gid; ats = pa.pa_ats }))
            pa.pa_remaining
        end)
      pas;
    (* Participant termination: a prepare that has sat in doubt past the
       timeout asks its coordinator for the durable verdict (rate
       limited per transaction). Under the apply-on-timeout sabotage the
       participant instead applies unilaterally — the catalogue must
       catch the fabricated commit from the logs. *)
    for s = 0 to t.n - 1 do
      let prepared =
        if not (shard_up t s) then [] (* a dead shard asks no questions *)
        else
          Hashtbl.fold (fun tid coord acc -> (tid, coord) :: acc) t.prepared_now.(s) []
          |> List.sort compare
      in
      List.iter
        (fun (tid, coord) ->
          let born =
            match Hashtbl.find_opt t.prepared_at.(s) tid with Some a -> a | None -> now
          in
          if now - born >= t.indoubt_after then
            match t.net_sabotage with
            | Some Apply_on_timeout -> (
                match Hashtbl.find_opt t.txn_of tid with
                | Some txn ->
                    t.shards.(s).Shard.twopc.Engine.apply_commit txn ~cts:tid ~now;
                    Hashtbl.remove t.prepared_now.(s) tid;
                    resolve_indoubt_residence t ~s ~tid ~now;
                    Hashtbl.replace t.done_t.(s) tid ()
                | None -> ())
            | _ ->
                let due =
                  match Hashtbl.find_opt t.query_at.(s) tid with Some q -> now >= q | None -> true
                in
                if due then begin
                  Hashtbl.replace t.query_at.(s) tid (now + t.indoubt_after);
                  Bus.send t.net ~src:s ~dst:coord ~now (Query_decision { tid; shard = s })
                end)
        prepared
    done;
    ignore (Bus.pump t.net ~now)
  end

(* Post-horizon settlement: tick (and keep broadcasting epochs) until
   every in-doubt transaction resolved and the fabric drained, or the
   budget runs out (a partition that never heals legitimately pins
   residue — the liveness checks below skip unreachable pairs). *)
let quiesce t ~now =
  if passthrough t then now
  else begin
    let stride = max t.resend_period t.indoubt_after in
    let tn = ref now in
    let budget = ref 64 in
    let i = ref 0 in
    while !budget > 0 && (indoubt_total t > 0 || net_pending t > 0) do
      decr budget;
      tn := !tn + stride;
      (* Re-broadcast the epoch only every 8th stride: each broadcast
         queues fresh delayed frames, and a fabric whose delay floor
         exceeds the stride would otherwise never look drained — the
         gaps give in-flight frames room to land so [net_pending] can
         actually reach zero. *)
      if !i mod 8 = 0 then ignore (broadcast ~now:!tn t);
      incr i;
      (* Pending failovers must complete for doubt to drain: promotion
         restores the coordinator the termination queries need. *)
      (match t.repl with Some r -> Replica.sweep r ~now:!tn | None -> ());
      tick t ~now:!tn
    done;
    !tn
  end

(* In-doubt liveness: after the fabric heals, every prepared
   transaction must resolve within a bound. Entries whose coordinator
   is still unreachable are excluded — a partition that never heals is
   allowed to pin doubt (that is the under-prune degradation, not a
   bug). *)
let check_indoubt_liveness t ~now =
  let bound = 8 * t.indoubt_after in
  let heal =
    List.fold_left
      (fun acc p -> if p.Net_fault.heal_t <= now then max acc p.Net_fault.heal_t else acc)
      0 t.net_cfg.Net_fault.partitions
  in
  let acc = ref [] in
  for s = 0 to t.n - 1 do
    Hashtbl.iter
      (fun tid coord ->
        if Bus.reachable t.net ~src:s ~dst:coord ~now && shard_up t s && shard_up t coord
        then begin
          let born =
            match Hashtbl.find_opt t.prepared_at.(s) tid with Some a -> a | None -> now
          in
          let since = now - max born heal in
          if since > bound then
            acc :=
              ( "in-doubt-liveness",
                Printf.sprintf
                  "tid %d prepared on shard %d unresolved %dns after heal (bound %dns)" tid s
                  since bound )
              :: !acc
        end)
      t.prepared_now.(s)
  done;
  List.sort compare !acc

(* Bounded reclamation lag after heal: once the fabric is whole, every
   shard's applied epoch must track the broadcaster within a small
   number of broadcasts (each broadcast is an independent delivery;
   staleness in between only under-prunes). *)
let check_epoch_lag ?(bound = 12) t ~now =
  if Net_fault.active_at t.net_cfg ~now then []
  else begin
    let acc = ref [] in
    for s = 0 to t.n - 1 do
      let lag = epoch_lag t ~sid:s in
      if lag > bound then
        acc :=
          ( "reclamation-lag-after-heal",
            Printf.sprintf "shard %d applied epoch lags the broadcast by %d (> %d) after heal"
              s lag bound )
          :: !acc
    done;
    List.sort compare !acc
  end

let maintenance t ~now =
  Array.fold_left
    (fun acc (sh : Shard.t) -> max acc (sh.Shard.engine.Engine.maintenance ~now))
    now t.shards

let finish t ~now = Array.iter (fun (sh : Shard.t) -> sh.Shard.engine.Engine.finish ~now) t.shards

let sample t =
  Array.fold_left
    (fun (acc : Engine.sample) (sh : Shard.t) ->
      let s = sh.Shard.engine.Engine.sample () in
      {
        Engine.version_bytes = acc.Engine.version_bytes + s.Engine.version_bytes;
        redo_bytes = acc.Engine.redo_bytes + s.Engine.redo_bytes;
        max_chain = max acc.Engine.max_chain s.Engine.max_chain;
        splits = acc.Engine.splits + s.Engine.splits;
        truncations = acc.Engine.truncations + s.Engine.truncations;
        latch_wait = acc.Engine.latch_wait + s.Engine.latch_wait;
        wal_errors = acc.Engine.wal_errors + s.Engine.wal_errors;
      })
    {
      Engine.version_bytes = 0;
      redo_bytes = 0;
      max_chain = 0;
      splits = 0;
      truncations = 0;
      latch_wait = 0;
      wal_errors = 0;
    }
    t.shards

let total_lsn t =
  Array.fold_left (fun acc (sh : Shard.t) -> acc + Wal.max_lsn sh.Shard.wal) 0 t.shards

let clear_inflight t =
  Hashtbl.reset t.participants;
  Array.iter Hashtbl.reset t.prepared_now;
  Array.iter Hashtbl.reset t.decisions_now;
  (* The fabric forgets with the power: in-flight frames, votes, acks,
     resend queues, per-shard dedup state — all of it is volatile.
     Durable truth lives only in the WALs, which is exactly what the
     restart resolution reads. *)
  Bus.clear t.net;
  Hashtbl.reset t.txn_of;
  Hashtbl.reset t.votes;
  Hashtbl.reset t.acks;
  Hashtbl.reset t.inflight;
  Hashtbl.reset t.pending_commits;
  Hashtbl.reset t.pending_aborts;
  Array.iter Hashtbl.reset t.prepared_at;
  Array.iter Hashtbl.reset t.query_at;
  Array.iter Hashtbl.reset t.done_t;
  Hashtbl.reset t.poisoned

let crash_all ?keep t =
  (* Whole-system power loss: every shard's device keeps only what it
     fsynced (or what the per-shard [keep] override says survived). *)
  Array.iter
    (fun (sh : Shard.t) ->
      let keep_lsn =
        match keep with
        | Some f -> f sh.Shard.sid
        | None -> Wal.flushed_lsn sh.Shard.wal
      in
      Wal.crash sh.Shard.wal ~keep_lsn)
    t.shards;
  clear_inflight t

let restart_all t ~now =
  (* Safe re-entry: drop whatever volatile residue is still around, so
     a restart that was not preceded by a crash (or a second restart
     after one) starts from the same clean slate. After [crash_all]
     every one of these tables is already empty and this is a no-op. *)
  clear_inflight t;
  (* One shared snapshot order: reset it once, then let each shard merge
     its recovered outcomes in ([crash_recover ~reset:false] inside the
     engine restart). Ascending sid order means a coordinator restarts
     no later than any shard it coordinates for — though resolution
     reads the coordinator's log directly, so order is a nicety, not a
     correctness requirement. *)
  Txn_manager.reset_for_recovery t.mgr;
  let infos =
    Array.to_list
      (Array.map
         (fun (sh : Shard.t) ->
           match sh.Shard.engine.Engine.restart with
           | Some restart -> restart ~now
           | None -> assert false (* shards are durable by construction *))
         t.shards)
  in
  (* Fresh global picture for every pipeline before work resumes (a
     shard behind a still-active partition keeps its stale — merely
     under-pruning — snapshot until heal). *)
  ignore (broadcast ~now t);
  infos

(* Failover fixup, called by the replica layer at the end of each
   promotion: the shard's device was just adopted from the
   highest-caught-up backup and fenced under a new epoch. Everything
   volatile the old primary held is gone with it; everything the
   promoted timeline proves is rebuilt from the device — a restart,
   scoped to one shard of a running group. *)
let promote_fixup t ~sid:s ~now =
  (* 0. Fence the old timeline's readers: any transaction that began
     before this instant holds a snapshot the promoted engine may no
     longer be able to serve — {!read}/{!write} turn it away. *)
  t.fence_at.(s) <- now;
  (* 1. Worker transactions with un-replicated writes on this shard are
     poisoned: those writes do not exist on the promoted timeline, so
     their only honest outcome is a global abort at commit time. *)
  Hashtbl.iter
    (fun tid l -> if List.mem s !l then Hashtbl.replace t.poisoned tid ())
    t.participants;
  (* 2. Volatile per-shard protocol state died with the old primary —
     including the coordinator role's resend queues, which are re-armed
     below from what the surviving log proves. *)
  Hashtbl.reset t.prepared_now.(s);
  Hashtbl.reset t.prepared_at.(s);
  Hashtbl.reset t.query_at.(s);
  Hashtbl.reset t.decisions_now.(s);
  Hashtbl.reset t.done_t.(s);
  let drop_where tbl pred =
    Hashtbl.fold (fun gid v acc -> if pred v then (gid, v) :: acc else acc) tbl []
  in
  List.iter
    (fun (gid, pc) ->
      List.iter (fun x -> Hashtbl.remove t.acks (gid, x)) pc.pc_parts;
      Hashtbl.remove t.pending_commits gid)
    (drop_where t.pending_commits (fun pc -> pc.pc_coord = s));
  List.iter
    (fun (gid, _) -> Hashtbl.remove t.pending_aborts gid)
    (drop_where t.pending_aborts (fun pa -> pa.pa_coord = s));
  (* 3. Read the promoted timeline. Always honest (CRC on); in-doubt
     entries resolve against the other shards' devices, which the
     replica layer has already settled (its promotion pass adopts every
     failing-over device before any fixup runs). *)
  let wal = t.shards.(s).Shard.wal in
  let resolve ~tid ~coord =
    if coord < 0 || coord >= t.n then None
    else
      let exp =
        Wal_recovery.expect
          (Wal_recovery.analyze ~check_crc:true t.shards.(coord).Shard.wal)
      in
      List.assoc_opt tid exp.Wal_recovery.decisions
  in
  let analysis = Wal_recovery.analyze ~check_crc:true wal in
  let exp = Wal_recovery.expect ~resolve analysis in
  (* 4. Decisions the dead primary made that never reached a quorum:
     the shared commit log says committed, the surviving timeline says
     the transaction never happened. Flip them back with compensating
     aborts before the engine replays the log. *)
  List.iter
    (fun tid ->
      match Txn_manager.rollback_unreplicated t.mgr ~tid with
      | Some ats -> ignore (Wal.log wal ~at:now (Wal_record.Txn_abort { tid; ats }))
      | None -> ())
    exp.Wal_recovery.losers;
  ignore (Wal.fsync wal ~at:now ());
  (* 5. Restart the engine on the promoted timeline. Shared manager:
     outcomes merge in, first (durable) outcome winning. *)
  (match t.shards.(s).Shard.engine.Engine.restart with
  | Some restart -> ignore (restart ~now)
  | None -> assert false);
  (* 6. Every transaction with a durable prepare on the new timeline
     was locally resolved by that restart — applied if a decision
     survived somewhere, rolled back as presumed-abort otherwise. Mark
     them done so late decision frames re-ack instead of re-applying. *)
  let mark tid = Hashtbl.replace t.done_t.(s) tid () in
  (match analysis.Wal_recovery.checkpoint with
  | Some (_, ck) -> List.iter (fun (tid, _) -> mark tid) ck.Checkpoint.prepared
  | None -> ());
  let forgotten = Hashtbl.create 16 in
  List.iter
    (fun (r : Wal_record.t) ->
      match r.Wal_record.payload with
      | Wal_record.Prepare { tid; _ } -> mark tid
      | Wal_record.Forget { gid } -> Hashtbl.replace forgotten gid ()
      | Wal_record.Coord_abort { gid } ->
          if not (Hashtbl.mem t.aborted_all gid) then Hashtbl.replace t.aborted_all gid 0
      | _ -> ())
    analysis.Wal_recovery.records;
  (* 7. Re-arm the coordinator role: durable decisions without a Forget
     still owe phase 2 — resends and re-acks converge them. *)
  List.iter
    (fun (gid, cts) ->
      if not (Hashtbl.mem forgotten gid) then begin
        Hashtbl.replace t.decided_all gid cts;
        Hashtbl.replace t.decisions_now.(s) gid cts
      end)
    exp.Wal_recovery.decisions;
  List.iter
    (fun (r : Wal_record.t) ->
      match r.Wal_record.payload with
      | Wal_record.Coord_commit { gid; cts; shards = parts }
        when (not (Hashtbl.mem forgotten gid)) && not (Hashtbl.mem t.pending_commits gid)
        ->
          Hashtbl.replace t.pending_commits gid
            { pc_coord = s; pc_cts = cts; pc_parts = parts; pc_next = now + t.resend_period }
      | _ -> ())
    analysis.Wal_recovery.records;
  Metrics.bump "twopc.promote_fixups"

let attach_replicas t r =
  if t.repl <> None then invalid_arg "Shard_group.attach_replicas: already attached";
  if Replica.shard_count r <> t.n then
    invalid_arg "Shard_group.attach_replicas: shard count mismatch";
  t.repl <- Some r;
  Replica.set_on_promote r (fun ~sid ~node:_ ~now -> promote_fixup t ~sid ~now)

let replicas t = t.repl

let acked t =
  Hashtbl.fold (fun tid (cts, parts) acc -> (tid, cts, parts) :: acc) t.acked_tbl []
  |> List.sort compare

let acked_count t = Hashtbl.length t.acked_tbl
let unacked t = t.unacked
let shard_is_up = shard_up
