type vrec = { vs : Timestamp.t; mutable ve : Timestamp.t; payload : int; undo_page : int }

type state = {
  costs : Costs.t;
  schema : Schema.t;
  mgr : Txn_manager.t;
  wal : Wal.t;
  heap : Heap.t;
  current : vrec array;
  undo : vrec Vec.t array; (* oldest first; newest at the end *)
  pool : Buffer_pool.t; (* shared: data pages and undo pages compete *)
  rseg : Queue_model.t; (* global rollback-segment mutex *)
  undo_recs_per_page : int;
  mutable undo_seq : int;
  mutable undo_live_bytes : int;
  mutable undo_alloc_bytes : int;
  mutable truncations : int;
  mutable purge_cursor : int;
  purge_batch : int;
  truncate_threshold : int;
  gc : [ `Purge_prefix | `Interval_scan ];
  write_sets : (Timestamp.t, int list ref) Hashtbl.t;
}

let is_committed st vs = vs = 0 || Commit_log.is_committed (Txn_manager.commit_log st.mgr) vs

(* Undo pages use a disjoint block-id space in the shared pool. *)
let undo_block upage = 1_000_000 + upage

let fetch_data_page st page ~now =
  match Buffer_pool.access st.pool ~block:page.Page.id with
  | `Hit -> now
  | `Miss -> now + st.costs.Costs.io_latency

(* Walk from the newest version (roll-pointer order). The snapshot read
   is located by binary search, but the caller is charged the walk:
   [hops] chain steps and the undo-page fetches the walk would do.
   Because appends interleave across records, consecutive chain entries
   of one record live on distinct undo pages; we touch up to 32 of them
   in the pool and extrapolate the miss count. *)
let lookup st (txn : Txn.t) rid =
  let cur = st.current.(rid) in
  if Read_view.committed_before txn.Txn.view cur.vs then Some (cur.payload, 0, 0)
  else begin
    let vec = st.undo.(rid) in
    let n = Vec.length vec in
    match
      Mvcc_search.find_visible ~view:txn.Txn.view ~len:n ~vs_of:(fun i -> (Vec.get vec i).vs)
    with
    | None -> None
    | Some i ->
        let hops = n - i in
        let touched = min hops 32 in
        let missed = ref 0 in
        for k = 0 to touched - 1 do
          let v = Vec.get vec (n - 1 - k) in
          match Buffer_pool.access st.pool ~block:(undo_block v.undo_page) with
          | `Miss -> incr missed
          | `Hit -> ()
        done;
        let misses = if touched = 0 then 0 else !missed * hops / touched in
        Some ((Vec.get vec i).payload, hops, misses)
  end

let read st txn ~rid ~now =
  let page = Heap.page_of st.heap ~rid in
  let now = fetch_data_page st page ~now in
  match lookup st txn rid with
  | None -> failwith "offrow: snapshot read unreachable"
  | Some (payload, hops, misses) ->
      (* The whole walk happens while holding the page latch — MySQL's
         collapse mechanism under LLTs (§2.1): chain steps plus undo
         I/O stretch the hold time. *)
      let hold =
        st.costs.Costs.read_base
        + (hops * st.costs.Costs.version_hop)
        + (misses * st.costs.Costs.io_latency)
      in
      let t = Resource.acquire page.Page.latch ~now ~hold in
      (payload, t + st.costs.Costs.think)

let note_write st (txn : Txn.t) rid =
  match Hashtbl.find_opt st.write_sets txn.Txn.tid with
  | Some l -> l := rid :: !l
  | None -> Hashtbl.replace st.write_sets txn.Txn.tid (ref [ rid ])

let write st (txn : Txn.t) ~rid ~payload ~now =
  let cur = st.current.(rid) in
  let page = Heap.page_of st.heap ~rid in
  let now = fetch_data_page st page ~now in
  if cur.vs = txn.Txn.tid then begin
    let t = Resource.acquire page.Page.latch ~now ~hold:st.costs.Costs.write_base in
    st.current.(rid) <- { cur with payload };
    Engine.Committed_path (t + st.costs.Costs.think)
  end
  else if Cc.write_conflict st.mgr txn ~current_vs:cur.vs then
    Engine.Conflict (Resource.acquire page.Page.latch ~now ~hold:st.costs.Costs.read_base)
  else begin
    (* Displace the current version into undo space. *)
    cur.ve <- txn.Txn.tid;
    let bytes = st.schema.Schema.record_bytes in
    Vec.push st.undo.(rid) { cur with undo_page = st.undo_seq / st.undo_recs_per_page };
    st.undo_seq <- st.undo_seq + 1;
    st.undo_live_bytes <- st.undo_live_bytes + bytes;
    if st.undo_live_bytes > st.undo_alloc_bytes then st.undo_alloc_bytes <- st.undo_live_bytes;
    st.current.(rid) <- { vs = txn.Txn.tid; ve = Timestamp.infinity; payload; undo_page = -1 };
    note_write st txn rid;
    Wal.append st.wal ~at:now ~bytes ();
    (* Undo-log header bookkeeping rides the global rollback-segment
       mutex — stock MySQL's "giant latch" (§4.2). *)
    let t = Queue_model.service st.rseg ~now ~hold:st.costs.Costs.undo_header in
    let t = Resource.acquire page.Page.latch ~now:t ~hold:st.costs.Costs.write_base in
    Engine.Committed_path (t + st.costs.Costs.think)
  end

let rollback_writes st (txn : Txn.t) =
  (match Hashtbl.find_opt st.write_sets txn.Txn.tid with
  | Some rids ->
      List.iter
        (fun rid ->
          if st.current.(rid).vs = txn.Txn.tid then begin
            match Vec.pop st.undo.(rid) with
            | Some prev ->
                prev.ve <- Timestamp.infinity;
                st.current.(rid) <- prev;
                st.undo_live_bytes <- st.undo_live_bytes - st.schema.Schema.record_bytes
            | None -> failwith "offrow: rollback without undo record"
          end)
        !rids
  | None -> ());
  Hashtbl.remove st.write_sets txn.Txn.tid

(* Purge: drop undo prefixes below the oldest read view, then truncate
   the tablespace if it is mostly empty (the Figure 13 sawtooth). *)
let purge st ~now =
  let horizon = Txn_manager.oldest_visible_horizon st.mgr in
  let records = Schema.records st.schema in
  let batch = min st.purge_batch records in
  let removed = ref 0 in
  for k = 0 to batch - 1 do
    let rid = (st.purge_cursor + k) mod records in
    let vec = st.undo.(rid) in
    let rec reclaimable i =
      if i >= Vec.length vec then i
      else
        let v = Vec.get vec i in
        if v.ve < horizon && is_committed st v.vs then reclaimable (i + 1) else i
    in
    let n = reclaimable 0 in
    if n > 0 then begin
      Vec.drop_front vec n;
      removed := !removed + n
    end
  done;
  st.purge_cursor <- (st.purge_cursor + batch) mod records;
  st.undo_live_bytes <- st.undo_live_bytes - (!removed * st.schema.Schema.record_bytes);
  if
    st.undo_alloc_bytes > st.truncate_threshold
    && st.undo_live_bytes * 4 < st.undo_alloc_bytes
  then begin
    st.undo_alloc_bytes <- max st.undo_live_bytes (st.truncate_threshold / 4);
    st.truncations <- st.truncations + 1
  end;
  let hold =
    ((batch / st.undo_recs_per_page) + 1) * st.costs.Costs.gc_page_scan / 8
    + (!removed * st.costs.Costs.version_hop)
  in
  Queue_model.service st.rseg ~now ~hold

(* HANA/Steam-style interval garbage collection (§2.2): walk whole
   chains, translate each version to its commit-time interval and apply
   the complete pruning check — removing dead versions anywhere in the
   chain, at the price of fetching the undo pages being scanned. *)
let interval_scan st ~now =
  let zones = Zone_set.of_txn_manager st.mgr in
  let log = Txn_manager.commit_log st.mgr in
  let records = Schema.records st.schema in
  let batch = min st.purge_batch records in
  let removed = ref 0 in
  let scanned = ref 0 in
  let io = ref 0 in
  for k = 0 to batch - 1 do
    let rid = (st.purge_cursor + k) mod records in
    let vec = st.undo.(rid) in
    if not (Vec.is_empty vec) then begin
      (* Touch up to 8 undo pages of this chain through the shared
         pool; the scan evicts useful pages just like the LLT walks. *)
      let touch = min (Vec.length vec) 8 in
      for i = 0 to touch - 1 do
        match Buffer_pool.access st.pool ~block:(undo_block (Vec.get vec i).undo_page) with
        | `Miss -> incr io
        | `Hit -> ()
      done;
      scanned := !scanned + Vec.length vec;
      Vec.filter_in_place
        (fun v ->
          match Prune.commit_interval log ~vs:v.vs ~ve:v.ve with
          | Some (lo, hi) ->
              if Zone_set.prunable zones ~vs:lo ~ve:hi then begin
                incr removed;
                false
              end
              else true
          | None -> true)
        vec
    end
  done;
  st.purge_cursor <- (st.purge_cursor + batch) mod records;
  st.undo_live_bytes <- st.undo_live_bytes - (!removed * st.schema.Schema.record_bytes);
  if
    st.undo_alloc_bytes > st.truncate_threshold
    && st.undo_live_bytes * 4 < st.undo_alloc_bytes
  then begin
    st.undo_alloc_bytes <- max st.undo_live_bytes (st.truncate_threshold / 4);
    st.truncations <- st.truncations + 1
  end;
  now
  + (!scanned * st.costs.Costs.version_hop)
  + (!io * st.costs.Costs.io_latency)
  + (!removed * st.costs.Costs.version_hop)

let create ?(costs = Costs.default) ?(purge_batch = 4096) ?(undo_pool_pages = 512)
    ?(truncate_threshold_bytes = 4 * 1024 * 1024) ?(gc = `Purge_prefix) schema =
  let mgr = Txn_manager.create () in
  let wal = Wal.create () in
  let heap =
    Heap.create ~page_bytes:schema.Schema.page_bytes ~slot_bytes:schema.Schema.record_bytes
      ~records:(Schema.records schema) ~fill_factor:schema.Schema.fill_factor ~wal
  in
  let st =
    {
      costs;
      schema;
      mgr;
      wal;
      heap;
      current =
        Array.init (Schema.records schema) (fun rid ->
            { vs = 0; ve = Timestamp.infinity; payload = rid; undo_page = -1 });
      undo = Array.init (Schema.records schema) (fun _ -> Vec.create ());
      pool =
        Buffer_pool.create ~name:"buffer-pool"
          ~capacity_blocks:(((3 * Heap.page_count heap) / 2) + undo_pool_pages);
      rseg = Queue_model.create "rollback-segment";
      undo_recs_per_page = max 1 (schema.Schema.page_bytes / schema.Schema.record_bytes);
      undo_seq = 0;
      undo_live_bytes = 0;
      undo_alloc_bytes = 0;
      truncations = 0;
      purge_cursor = 0;
      purge_batch;
      truncate_threshold = truncate_threshold_bytes;
      gc;
      write_sets = Hashtbl.create 256;
    }
  in
  let max_chain () = 1 + Array.fold_left (fun acc v -> max acc (Vec.length v)) 0 st.undo in
  let pages_wait () =
    let acc = ref (Queue_model.busy_time st.rseg) in
    let seen = Hashtbl.create 64 in
    for rid = 0 to Schema.records schema - 1 do
      let page = Heap.page_of heap ~rid in
      if not (Hashtbl.mem seen page.Page.id) then begin
        Hashtbl.replace seen page.Page.id ();
        acc := !acc + Resource.wait_time page.Page.latch
      end
    done;
    !acc
  in
  {
    Engine.name = (match gc with `Purge_prefix -> "mysql-vanilla" | `Interval_scan -> "mysql-interval-gc");
    txns = mgr;
    begin_txn =
      (fun ~now ->
        let txn = Txn_manager.begin_txn mgr ~now in
        (txn, now + costs.Costs.txn_begin));
    read = (fun txn ~rid ~now -> read st txn ~rid ~now);
    write = (fun txn ~rid ~payload ~now -> write st txn ~rid ~payload ~now);
    commit =
      (fun txn ~now ->
        Hashtbl.remove st.write_sets txn.Txn.tid;
        Txn_manager.commit mgr txn ~now;
        (* Committed undo logs are appended to the global history list
           under the rollback-segment mutex (stock MySQL; vDriver's
           integration recycles them instead, §4.2). *)
        let t = Queue_model.service st.rseg ~now ~hold:costs.Costs.undo_header in
        t + costs.Costs.txn_commit);
    abort =
      (fun txn ~now ->
        rollback_writes st txn;
        Txn_manager.abort mgr txn ~now;
        now + costs.Costs.txn_commit);
    maintenance =
      (fun ~now ->
        match st.gc with `Purge_prefix -> purge st ~now | `Interval_scan -> interval_scan st ~now);
    sample =
      (fun () ->
        {
          Engine.version_bytes = st.undo_alloc_bytes;
          redo_bytes = Wal.total_bytes wal;
          max_chain = max_chain ();
          splits = Heap.splits heap;
          truncations = st.truncations;
          latch_wait = pages_wait ();
          wal_errors = Wal.errors wal;
        });
    chain_histogram =
      (fun () ->
        let h = Histogram.create () in
        Array.iter (fun vec -> Histogram.add h (1 + Vec.length vec)) st.undo;
        h);
    finish = (fun ~now -> ignore now);
    crash =
      (fun () ->
        (* Stock MySQL resurrects in-flight transactions by scanning
           undo log headers in the rollback segments (§4.2): recovery
           pays a scan proportional to live undo records before any
           loser can be rolled back. *)
        let live_undo =
          Array.fold_left (fun acc vec -> acc + Vec.length vec) 0 st.undo
        in
        let scan_cost =
          (live_undo / st.undo_recs_per_page + 1) * costs.Costs.gc_page_scan
        in
        let undo_ops = ref 0 in
        let losers = Hashtbl.fold (fun tid _ acc -> tid :: acc) st.write_sets [] in
        List.iter
          (fun tid ->
            match Hashtbl.find_opt st.write_sets tid with
            | Some rids ->
                List.iter
                  (fun rid ->
                    if st.current.(rid).vs = tid then
                      match Vec.pop st.undo.(rid) with
                      | Some prev ->
                          incr undo_ops;
                          prev.ve <- Timestamp.infinity;
                          st.current.(rid) <- prev;
                          st.undo_live_bytes <-
                            st.undo_live_bytes - st.schema.Schema.record_bytes
                      | None -> ())
                  !rids;
                Hashtbl.remove st.write_sets tid
            | None -> ())
          losers;
        scan_cost + (!undo_ops * (costs.Costs.io_latency + costs.Costs.write_base)));
    driver = None;
    checkpoint = None;
    restart = None;
    twopc = None;
  }
