(** One shard of a sharded vDriver deployment: a full per-shard
    pipeline (vBuffer, vSorter, vCutter, governor accounting) plus a
    private WAL whose frames carry the shard tag — a disjoint LSN
    namespace, so each shard's recovery analyzes only its own log.

    A shard never owns the snapshot order: every shard shares one
    {!Txn_manager} (passed by the {!Shard_group}), which is what keeps
    reads globally consistent while pruning stays shard-local. *)

type t = {
  sid : int;
  engine : Engine.t;
  driver : Driver.t;
  wal : Wal.t;
  twopc : Engine.twopc;
  schema : Schema.t;  (** this shard's local layout *)
}

val create :
  ?costs:Costs.t ->
  ?driver_config:State.config ->
  mgr:Txn_manager.t ->
  sid:int ->
  flavor:[ `Pg | `Mysql ] ->
  Schema.t ->
  t
(** Build one shard over the shared manager. [driver_config] must have
    [durable_wal] set (the default when omitted): 2PC is a logging
    protocol. Raises [Invalid_argument] otherwise, or on a negative
    [sid]. The returned shard has [shared_mgr] set on its driver; the
    group wires [zone_source], [ckpt_indoubt] and [indoubt_resolver]. *)

val sid : t -> int
val engine : t -> Engine.t
val driver : t -> Driver.t
val wal : t -> Wal.t
val twopc : t -> Engine.twopc
val schema : t -> Schema.t
