type sample = {
  version_bytes : int;
  redo_bytes : int;
  max_chain : int;
  splits : int;
  truncations : int;
  latch_wait : Clock.time;
  wal_errors : int;
}

type write_result = Committed_path of Clock.time | Conflict of Clock.time

type restart_info = {
  replayed_records : int;
  replayed_versions : int;
  truncated_frames : int;
  losers_rolled_back : int;
  recovered_to_lsn : int;
  recovery_cost : Clock.time;
}

type twopc = {
  log_begin : tid:int -> now:Clock.time -> unit;
  log_prepare : tid:int -> coord:int -> shards:int list -> now:Clock.time -> unit;
  apply_commit : Txn.t -> cts:int -> now:Clock.time -> unit;
  apply_abort : Txn.t -> ats:int -> now:Clock.time -> unit;
  wal : Wal.t;
}

type t = {
  name : string;
  txns : Txn_manager.t;
  begin_txn : now:Clock.time -> Txn.t * Clock.time;
  read : Txn.t -> rid:int -> now:Clock.time -> int * Clock.time;
  write : Txn.t -> rid:int -> payload:int -> now:Clock.time -> write_result;
  commit : Txn.t -> now:Clock.time -> Clock.time;
  abort : Txn.t -> now:Clock.time -> Clock.time;
  maintenance : now:Clock.time -> Clock.time;
  sample : unit -> sample;
  chain_histogram : unit -> Histogram.t;
  finish : now:Clock.time -> unit;
  crash : unit -> Clock.time;
  driver : Driver.t option;
  checkpoint : (now:Clock.time -> unit) option;
      (* durable engines only: write a fuzzy checkpoint to the WAL *)
  restart : (now:Clock.time -> restart_info) option;
      (* durable engines only: recover from the surviving log after a
         crash truncated it — replaces the bare [crash] wipe *)
  twopc : twopc option;
      (* durable engines only: the shard-local primitives a cross-shard
         commit is assembled from — the group sequences them and owns
         the (shared) transaction manager transitions *)
}
