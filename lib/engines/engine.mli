(** Common engine interface.

    An engine is a record of operations over simulated time: each call
    takes the caller's current simulated time and returns the time at
    which the operation completes (having queued on page latches, paid
    chain-traversal and I/O costs, etc.). The discrete-event runner in
    [repro_workload] drives workers, LLTs and background maintenance
    against this interface; all four engines (vanilla in-row, vanilla
    off-row, and both with vDriver) implement it.

    Concurrency control is snapshot isolation with no-wait write
    conflicts: a write to a record whose current version is younger than
    the writer or still uncommitted returns [`Conflict], and the caller
    must abort (first-updater-wins keeps per-record version chains
    ordered by creator timestamp in every engine). *)

type sample = {
  version_bytes : int;  (** version-space overhead (heap bloat, undo, or vDriver space) *)
  redo_bytes : int;  (** cumulative redo volume *)
  max_chain : int;  (** longest valid version chain *)
  splits : int;  (** cumulative page splits (in-row engines) *)
  truncations : int;  (** undo-tablespace truncations (off-row vanilla) *)
  latch_wait : Clock.time;  (** cumulative time spent queueing on latches *)
  wal_errors : int;  (** log appends rejected by fault injection *)
}

type write_result = Committed_path of Clock.time | Conflict of Clock.time

type restart_info = {
  replayed_records : int;  (** redo records applied past the checkpoint *)
  replayed_versions : int;  (** off-row versions rebuilt into chains *)
  truncated_frames : int;  (** torn/corrupt tail frames refused *)
  losers_rolled_back : int;  (** in-flight at crash, rolled back by CLR aborts *)
  recovered_to_lsn : int;  (** last trustworthy LSN replayed *)
  recovery_cost : Clock.time;  (** simulated duration of the restart *)
}

type twopc = {
  log_begin : tid:int -> now:Clock.time -> unit;
      (** Log [Txn_begin] in this shard's WAL — called on a
          transaction's first write to the shard. *)
  log_prepare : tid:int -> coord:int -> shards:int list -> now:Clock.time -> unit;
      (** Force a [Prepare] record: after this returns, the shard can
          redo the transaction's writes whichever way the coordinator
          decides. *)
  apply_commit : Txn.t -> cts:int -> now:Clock.time -> unit;
      (** Apply the commit decision locally: drop the write set's undo
          obligation and force a [Txn_commit] record. Does {e not}
          touch the (shared) transaction manager — the group commits
          there exactly once. *)
  apply_abort : Txn.t -> ats:int -> now:Clock.time -> unit;
      (** Apply the abort decision locally: roll the shard's writes
          back and log [Txn_abort]. Manager untouched, as above. *)
  wal : Wal.t;  (** this shard's log, for decision lookup and crash. *)
}
(** Shard-local 2PC primitives (durable vDriver engines only). A
    cross-shard commit is the group-sequenced composition:
    prepare everywhere, decide at the coordinator, apply everywhere,
    ack, forget. *)

type t = {
  name : string;
  txns : Txn_manager.t;
  begin_txn : now:Clock.time -> Txn.t * Clock.time;
  read : Txn.t -> rid:int -> now:Clock.time -> int * Clock.time;
      (** returns (payload, completion). Raises [Failure] if the
          snapshot read is unreachable — a representation-invariant
          violation. *)
  write : Txn.t -> rid:int -> payload:int -> now:Clock.time -> write_result;
  commit : Txn.t -> now:Clock.time -> Clock.time;
  abort : Txn.t -> now:Clock.time -> Clock.time;
  maintenance : now:Clock.time -> Clock.time;
      (** one background GC pass (vacuum / purge / vCutter). *)
  sample : unit -> sample;
  chain_histogram : unit -> Histogram.t;
      (** valid chain length of every record, for the Figure 14 CDF. *)
  finish : now:Clock.time -> unit;
      (** settle statistics at experiment end (e.g. flush vDriver's
          open segments so the pruning breakdown is complete). *)
  crash : unit -> Clock.time;
      (** simulate a crash-restart: every in-flight transaction is a
          loser and is rolled back; engine-specific recovery runs
          (vDriver additionally empties all off-row state, §3.5).
          Returns the simulated recovery duration: identifying losers
          costs an undo-header scan in stock MySQL but only commit-log
          lookups in PostgreSQL and vDriver (§4.2), and vDriver's undo
          is a per-record bit toggle. *)
  driver : Driver.t option;  (** vDriver instance, when the engine has one *)
  checkpoint : (now:Clock.time -> unit) option;
      (** durable engines only: write a fuzzy checkpoint (commit-log
          window, live set, in-row image, segment descriptors) to the
          WAL and fsync it. [None] for non-durable engines — the runner
          uses this to decide whether to spawn a checkpointer process. *)
  restart : (now:Clock.time -> restart_info) option;
      (** durable engines only: ARIES-lite restart from the surviving
          log — truncate the untrustworthy tail, replay redo from the
          last checkpoint, rebuild in-row and off-row state, roll back
          losers, write an end-of-restart checkpoint. Replaces the bare
          {!field-crash} wipe when present. *)
  twopc : twopc option;
      (** shard-local 2PC primitives; durable vDriver engines only. *)
}
