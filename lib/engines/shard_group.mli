(** N independent vDriver pipelines over one global snapshot order.

    The keyspace is sharded by record id — global rid [r] lives on
    shard [r mod n] at local rid [r / n] — and each shard runs the full
    per-shard pipeline behind {!Shard}. Three things stay global:

    - the {b snapshot order}: one shared {!Txn_manager}, so any
      transaction reads a consistent snapshot across every shard;
    - the {b dead zones}: a coordinator-side {!Epoch} broadcast
      snapshots the shared live table; each shard prunes against the
      latest broadcast, which is sound under arbitrary staleness
      (under-pruning only) and pins, per LLT, exactly the boundary
      Theorem 3.5 requires — globally;
    - the {b commit decision} of a cross-shard transaction: presumed-
      abort two-phase commit over the shards' typed WALs. Prepares are
      forced at every participant, the decision ([Coord_commit]) is
      forced at the coordinator {e before} any participant applies,
      participants force their local outcome, acks collect at the
      coordinator, and a complete set lets it forget. Absence of a
      durable decision means abort.

    Every durable action of the 2PC sequence bumps a global step
    counter and fires the [on_step] hook — the crash campaign's way of
    killing the system at {e every} point of the protocol and checking
    that recovery resolves each orphaned prepare to the same outcome on
    every shard. *)

type step =
  | Prepared of { tid : int; shard : int }
  | Decided of { tid : int; cts : int }
  | Applied of { tid : int; shard : int }
  | Acked of { tid : int; shard : int }
  | Forgotten of { tid : int }

val step_name : step -> string

type t

val create :
  ?costs:Costs.t ->
  ?driver_config:State.config ->
  ?flavor:[ `Pg | `Mysql ] ->
  shards:int ->
  Schema.t ->
  t
(** Build the group over a fresh shared manager and epoch source. The
    schema is the {e global} layout; each shard gets its slice as a
    local schema. [driver_config] must be durable when given (shards
    log); the default config is made durable. Raises
    [Invalid_argument] if [shards < 1]. *)

(** {1 Routing} *)

val shard_of : t -> rid:int -> int
val local_rid : t -> rid:int -> int
val global_rid : t -> sid:int -> local:int -> int
val local_records : shards:int -> records:int -> sid:int -> int
(** Number of global rids congruent to [sid] modulo [shards]. *)

(** {1 Transaction interface (global rids)} *)

val begin_txn : t -> now:Clock.time -> Txn.t * Clock.time
(** Begins in the shared order only; each shard logs its own
    [Txn_begin] on the transaction's first write there. *)

val read : t -> Txn.t -> rid:int -> now:Clock.time -> int * Clock.time
val write : t -> Txn.t -> rid:int -> payload:int -> now:Clock.time -> Engine.write_result

val commit : t -> Txn.t -> now:Clock.time -> Clock.time
(** Read-only: manager commit only. One participant: plain single-shard
    durable commit (no 2PC). Several: the presumed-abort sequence
    above. *)

val abort : t -> Txn.t -> now:Clock.time -> Clock.time

(** {1 Group services} *)

val broadcast : t -> int
(** Take a fresh global dead-zone snapshot and bump the epoch. *)

val maintenance : t -> now:Clock.time -> Clock.time
(** One background pass on every shard; returns the latest completion. *)

val finish : t -> now:Clock.time -> unit
val sample : t -> Engine.sample
(** Summed over shards ([max_chain] is the max). *)

(** {1 Crash and recovery} *)

val crash_all : ?keep:(int -> int) -> t -> unit
(** Whole-system power loss: truncate every shard's WAL at its flushed
    LSN (or at [keep sid]) and drop all in-flight 2PC bookkeeping. The
    caller drops its in-flight transactions — never aborts them through
    the engine — and then calls {!restart_all}. *)

val restart_all : t -> now:Clock.time -> Engine.restart_info list
(** Group restart: reset the shared manager once, restart each shard in
    ascending sid order (merging recovered outcomes, resolving in-doubt
    transactions from the coordinators' durable logs), then broadcast a
    fresh epoch. *)

(** {1 Introspection and knobs} *)

val shards : t -> Shard.t array
val shard_count : t -> int
val mgr : t -> Txn_manager.t
val epoch : t -> Epoch.t
val wals : t -> (int * Wal.t) list
val total_lsn : t -> int
(** Sum of every shard's highest surviving LSN — the crash-point
    schedule's notion of global log position. *)

val two_pc_steps : t -> int
val single_commits : t -> int
val cross_commits : t -> int

val set_on_step : t -> (int -> step -> unit) option -> unit
(** Fires after every durable 2PC micro-step with the global step
    counter. The hook may raise to model a crash at exactly that point
    of the protocol; the raise propagates out of {!commit}. *)

val set_skip_coord_decision : t -> bool -> unit
(** Sabotage: commit cross-shard transactions {e without} forcing the
    coordinator's decision record. Participants then hold committed
    work whose decision no durable log witnesses — caught by
    {!Invariant.check_cross_shard_atomicity} ("2pc-decision-missing"
    statically; "cross-shard-atomicity" after a crash between the
    participant applies). *)
