(** N independent vDriver pipelines over one global snapshot order.

    The keyspace is sharded by record id — global rid [r] lives on
    shard [r mod n] at local rid [r / n] — and each shard runs the full
    per-shard pipeline behind {!Shard}. Three things stay global:

    - the {b snapshot order}: one shared {!Txn_manager}, so any
      transaction reads a consistent snapshot across every shard;
    - the {b dead zones}: a coordinator-side {!Epoch} broadcast
      snapshots the shared live table; each shard prunes against the
      latest broadcast {e that reached it} over the fabric, which is
      sound under arbitrary staleness (under-pruning only) and pins,
      per LLT, exactly the boundary Theorem 3.5 requires — globally;
    - the {b commit decision} of a cross-shard transaction: presumed-
      abort two-phase commit over the shards' typed WALs. Prepares are
      forced at every participant, the decision ([Coord_commit]) is
      forced at the coordinator {e before} any participant applies,
      participants force their local outcome, acks collect at the
      coordinator, and a complete set lets it forget. Absence of a
      durable decision means abort.

    Since PR 9 the whole choreography — prepare requests and votes,
    decisions, acks, aborts, termination queries, and the epoch
    broadcast — rides a seeded {!Bus} with a {!Net_fault} model: loss,
    duplication, delay/reordering, and scheduled partitions. The
    robustness machinery on top:

    - {b timeout + bounded retry} on prepare votes (per-channel
      {!Backoff} streams — net retries cannot perturb any other
      subsystem's jitter);
    - {b idempotent receive paths}: duplicated or reordered prepare /
      decision / ack / forget traffic is harmless, live (per-shard
      dedup tables) and at recovery ({!Wal_recovery.expect} replay is
      naturally idempotent — qcheck-pinned);
    - {b cooperative termination}: an in-doubt participant queries the
      coordinator's durable decision table; presumed-abort only when
      the coordinator durably has no record — the same rule restart
      resolution applies to the same log;
    - {b graceful degradation}: single-shard traffic never touches the
      fabric and keeps committing under any partition; a cross-shard
      transaction spanning a partition fails fast ({!commit_checked}
      returns [Net_abort] — back-pressure, not a wedged pipeline); a
      shard behind a partition keeps its stale epoch and merely
      under-prunes until heal.

    With [Net_fault.none] (the default) the bus is a transparent
    pass-through: every message is delivered inline at the send site,
    no stream is ever drawn from, and the observable behaviour —
    WAL bytes, micro-step order, digests — is identical to the
    synchronous PR 7 code (pinned by test).

    Every durable action of the 2PC sequence bumps a global step
    counter and fires the [on_step] hook — the crash campaign's way of
    killing the system at {e every} point of the protocol and checking
    that recovery resolves each orphaned prepare to the same outcome on
    every shard. *)

type step =
  | Prepared of { tid : int; shard : int }
  | Decided of { tid : int; cts : int }
  | Applied of { tid : int; shard : int }
  | Acked of { tid : int; shard : int }
  | Forgotten of { tid : int }

val step_name : step -> string

type net_sabotage =
  | Apply_on_timeout
      (** an in-doubt participant unilaterally applies a fabricated
          commit instead of asking the coordinator — must trip
          [2pc-decision-missing] (or the cts-mismatch atomicity check) *)
  | Ack_forge
      (** a participant rolls its work back but acks the commit anyway,
          so the coordinator forgets a transaction one shard aborted —
          must trip [cross-shard-atomicity] *)

val net_sabotage_name : net_sabotage -> string
val net_sabotage_of_string : string -> net_sabotage option

type outcome =
  | Committed of Clock.time
  | Net_abort of Clock.time
      (** cross-shard fail-fast: a participant was unreachable past the
          retry budget; the transaction was globally aborted — or, with
          replicas attached, the commit missed its replication quorum
          and the client must not be told "committed" *)

exception Shard_down of int
(** Raised by {!read} / {!write} when the target shard's replicated
    primary is dead and no successor has been promoted yet. Workers
    back off and retry after the failover window; commits on dead
    shards do not raise — they return [Net_abort]. *)

type t

val create :
  ?costs:Costs.t ->
  ?driver_config:State.config ->
  ?flavor:[ `Pg | `Mysql ] ->
  ?net:Net_fault.config ->
  ?net_rto:Clock.time ->
  ?net_indoubt_after:Clock.time ->
  shards:int ->
  Schema.t ->
  t
(** Build the group over a fresh shared manager and epoch source. The
    schema is the {e global} layout; each shard gets its slice as a
    local schema. [driver_config] must be durable when given (shards
    log); the default config is made durable. [net] attaches the fault
    model (default: the transparent pass-through). [net_rto] is the
    per-attempt vote timeout (default: 200 µs or the config's full
    delay window, whichever is larger); [net_indoubt_after] the
    participant termination timeout (default [8 * rto]). Raises
    [Invalid_argument] if [shards < 1] or a timeout is non-positive. *)

(** {1 Routing} *)

val shard_of : t -> rid:int -> int
val local_rid : t -> rid:int -> int
val global_rid : t -> sid:int -> local:int -> int
val local_records : shards:int -> records:int -> sid:int -> int
(** Number of global rids congruent to [sid] modulo [shards]. *)

(** {1 Transaction interface (global rids)} *)

val begin_txn : t -> now:Clock.time -> Txn.t * Clock.time
(** Begins in the shared order only; each shard logs its own
    [Txn_begin] on the transaction's first write there. *)

val read : t -> Txn.t -> rid:int -> now:Clock.time -> int * Clock.time
val write : t -> Txn.t -> rid:int -> payload:int -> now:Clock.time -> Engine.write_result

val commit_checked : t -> Txn.t -> now:Clock.time -> outcome
(** Read-only: manager commit only. One participant: plain single-shard
    durable commit (no 2PC, no fabric). Several: the presumed-abort
    sequence above, over the fabric — [Net_abort] when some participant
    stayed unreachable past the vote retry budget (the transaction is
    then globally aborted; stragglers resolve through resends or the
    termination protocol). *)

val commit : t -> Txn.t -> now:Clock.time -> Clock.time
(** {!commit_checked} with the outcome collapsed to its completion
    time. *)

val abort : t -> Txn.t -> now:Clock.time -> Clock.time

(** {1 Group services} *)

val broadcast : ?now:Clock.time -> t -> int
(** Take a fresh global dead-zone snapshot, bump the epoch, and offer
    it to every shard over the fabric ([now] times the sends; it only
    matters under a fault config). *)

val tick : t -> now:Clock.time -> unit
(** The resolver sweep: pump due traffic, resend unacknowledged
    decisions and aborts, and run the in-doubt termination protocol.
    A no-op in passthrough. The campaign driver schedules this
    periodically; the [on_step] hook may raise out of it (late applies
    are durable micro-steps). *)

val quiesce : t -> now:Clock.time -> Clock.time
(** Post-horizon settlement: tick (and keep broadcasting epochs) until
    in-doubt and in-flight residue drains or a fixed budget runs out
    (a never-healing partition legitimately pins residue). Returns the
    reached time. No-op in passthrough. *)

val maintenance : t -> now:Clock.time -> Clock.time
(** One background pass on every shard; returns the latest completion. *)

val finish : t -> now:Clock.time -> unit
val sample : t -> Engine.sample
(** Summed over shards ([max_chain] is the max). *)

(** {1 Crash and recovery} *)

val crash_all : ?keep:(int -> int) -> t -> unit
(** Whole-system power loss: truncate every shard's WAL at its flushed
    LSN (or at [keep sid]), drop all in-flight 2PC bookkeeping and
    every frame the fabric still held. The caller drops its in-flight
    transactions — never aborts them through the engine — and then
    calls {!restart_all}. *)

val restart_all : t -> now:Clock.time -> Engine.restart_info list
(** Group restart: reset the shared manager once, restart each shard in
    ascending sid order (merging recovered outcomes, resolving in-doubt
    transactions from the coordinators' durable logs), then broadcast a
    fresh epoch. *)

(** {1 Network invariants} *)

val check_indoubt_liveness : t -> now:Clock.time -> (string * string) list
(** [(invariant, detail)] pairs — ["in-doubt-liveness"] for every
    prepared transaction whose coordinator is reachable yet has sat
    unresolved longer than the bound ([8 * indoubt_after]) since
    [max prepared_at last_heal]. Pairs still severed by an active
    partition are excluded (pinned doubt under a partition is the
    documented degradation, not a violation). *)

val check_epoch_lag : ?bound:int -> t -> now:Clock.time -> (string * string) list
(** ["reclamation-lag-after-heal"] for every shard whose applied epoch
    lags the broadcaster by more than [bound] (default 12) broadcasts
    while no partition is active. Empty while a partition is active. *)

(** {1 Introspection and knobs} *)

val shards : t -> Shard.t array
val shard_count : t -> int
val mgr : t -> Txn_manager.t
val epoch : t -> Epoch.t
val wals : t -> (int * Wal.t) list
val total_lsn : t -> int
(** Sum of every shard's highest surviving LSN — the crash-point
    schedule's notion of global log position. *)

val two_pc_steps : t -> int
val single_commits : t -> int
val cross_commits : t -> int

val net_config : t -> Net_fault.config
val net_rto : t -> Clock.time
val net_indoubt_after : t -> Clock.time
val net_stats : t -> Bus.stats
val net_aborts : t -> int
(** Cross-shard transactions failed fast as unreachable. *)

val net_pending : t -> int
(** Frames in flight plus decisions/aborts still awaiting full
    acknowledgement. *)

val indoubt_count : t -> sid:int -> int
val indoubt_total : t -> int
val epoch_lag : t -> sid:int -> int
(** Broadcast epoch minus the shard's applied epoch. *)

val max_indoubt_residence : t -> Clock.time
val mean_indoubt_residence : t -> float
(** Longest / mean prepared→resolved residence observed (ns). *)

val set_on_step : t -> (int -> step -> unit) option -> unit
(** Fires after every durable 2PC micro-step with the global step
    counter. The hook may raise to model a crash at exactly that point
    of the protocol; the raise propagates out of {!commit} (or
    {!tick}, for late applies). *)

val set_skip_coord_decision : t -> bool -> unit
(** Sabotage: commit cross-shard transactions {e without} forcing the
    coordinator's decision record. Participants then hold committed
    work whose decision no durable log witnesses — caught by
    {!Invariant.check_cross_shard_atomicity} ("2pc-decision-missing"
    statically; "cross-shard-atomicity" after a crash between the
    participant applies). *)

val set_net_sabotage : t -> net_sabotage option -> unit
(** Arm a network-layer sabotage mode (see {!net_sabotage}); [None]
    restores honesty. *)

(** {1 Replication}

    With a {!Replica} layer attached, every shard's device is held by
    the current primary of an [R+1]-node group and a commit is
    acknowledged to the client only once its decision frame is
    quorum-replicated: single-shard commits gate on their own group,
    cross-shard commits additionally gate the coordinator's
    [Coord_commit]; prepare votes are withheld until the prepare frame
    is quorum-durable (so a vote is a promise that survives failover).
    Dead shards drop all protocol traffic and fail commits fast;
    promotion runs a single-shard restart on the adopted timeline
    ({e promote fixup}): poison open writers that lost un-replicated
    writes, flip decided-but-unreplicated commits back to aborted with
    compensating records, replay the device, and re-arm the
    coordinator's unforgotten decisions for resend. Without an attached
    layer every path below is the identity and the group's observable
    behaviour is byte-identical to the unreplicated build. *)

val attach_replicas : t -> Replica.t -> unit
(** Wire a replica layer (built over {!wals}) into the commit and vote
    paths and install the promotion fixup. Raises [Invalid_argument]
    if already attached or the shard counts disagree. *)

val replicas : t -> Replica.t option
val shard_is_up : t -> int -> bool
(** Whether the shard currently has a live primary (always true
    unreplicated). *)

val acked : t -> (int * int * int list) list
(** The client-visible ledger: [(tid, cts, participants)] for every
    commit acknowledged as [Committed], sorted by tid. What
    {!Invariant.check_no_committed_loss} audits the logs against; the
    commit timestamp lets the oracle skip entries that have aged past a
    log's bounded checkpoint window. *)

val acked_count : t -> int
val unacked : t -> int
(** Commits that reached local durability but missed their quorum and
    were reported [Net_abort] — never entered the acked ledger. *)
