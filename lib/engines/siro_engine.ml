type state = {
  flavor : [ `Pg | `Mysql ];
  costs : Costs.t;
  schema : Schema.t;
  mgr : Txn_manager.t;
  wal : Wal.t;
  heap : Heap.t;
  pool : Buffer_pool.t; (* data pages; fixed footprint keeps it warm *)
  slots : Siro.t array;
  driver : Driver.t;
  write_sets : (Timestamp.t, int list ref) Hashtbl.t;
}


let fetch_page st page ~now =
  match Buffer_pool.access st.pool ~block:page.Page.id with
  | `Hit -> now
  | `Miss -> now + st.costs.Costs.io_latency

let read st (txn : Txn.t) ~rid ~now =
  let page = Heap.page_of st.heap ~rid in
  let now = fetch_page st page ~now in
  (* Copy the requested tuple under a short latch (§4.1): the in-row
     pair answers most reads. The PostgreSQL flavor pays the switch from
     returning a locator to copying the tuple (§4.1). *)
  let copy_cost = match st.flavor with `Pg -> st.costs.Costs.version_hop * 2 | `Mysql -> 0 in
  let t =
    Resource.acquire page.Page.latch ~now ~hold:(st.costs.Costs.read_base + copy_cost)
  in
  match Siro.read_inrow st.slots.(rid) txn.Txn.view with
  | Some v ->
      (* In-row hit: the scan touched only the slot pair. *)
      Metrics.observe "scan.chain_length" 1;
      (v.Version.payload, t + st.costs.Costs.think)
  | None -> (
      (* Off-row lookup through LLB and the version buffer — no page
         latch held while walking. *)
      match Driver.read st.driver txn.Txn.view ~rid with
      | Some (v, source, hops) ->
          (* Both in-row versions were checked before the chain walk. *)
          Metrics.observe "scan.chain_length" (2 + hops);
          (match source with
          | Driver.From_vbuffer -> Metrics.bump "read.vbuffer"
          | Driver.From_store_cached -> Metrics.bump "read.store_cached"
          | Driver.From_store_io -> Metrics.bump "read.store_io");
          let cost =
            st.costs.Costs.llb_lookup
            + (hops * st.costs.Costs.version_hop)
            +
            match source with
            | Driver.From_vbuffer -> 0
            | Driver.From_store_cached -> st.costs.Costs.version_hop
            | Driver.From_store_io -> st.costs.Costs.io_latency
          in
          (v.Version.payload, t + cost + st.costs.Costs.think)
      | None -> failwith "siro: snapshot read unreachable")

let note_write st (txn : Txn.t) rid =
  match Hashtbl.find_opt st.write_sets txn.Txn.tid with
  | Some l -> l := rid :: !l
  | None -> Hashtbl.replace st.write_sets txn.Txn.tid (ref [ rid ])

let write st (txn : Txn.t) ~rid ~payload ~now =
  let slot = st.slots.(rid) in
  let cur = Siro.current slot in
  let page = Heap.page_of st.heap ~rid in
  let now = fetch_page st page ~now in
  if Cc.write_conflict st.mgr txn ~current_vs:cur.Version.vs then
    Engine.Conflict (Resource.acquire page.Page.latch ~now ~hold:st.costs.Costs.read_base)
  else begin
    let r =
      Siro.update slot ~vs:txn.Txn.tid ~vs_time:now ~payload ~bytes:st.schema.Schema.record_bytes
    in
    if cur.Version.vs <> txn.Txn.tid then note_write st txn rid;
    Wal.append st.wal ~at:now ~bytes:st.schema.Schema.record_bytes ();
    let reloc_cost =
      match r.Siro.relocated with
      | None -> 0
      | Some v ->
          let g = Driver.governor st.driver in
          let assists_before = Governor.assists g in
          let base = st.costs.Costs.zone_check + st.costs.Costs.segment_append in
          let outcome = Driver.relocate st.driver v ~now in
          let c =
            match outcome with
            | Vsorter.Pruned_first _ -> base
            | Vsorter.Buffered _ -> base + st.costs.Costs.segment_append
          in
          let assisted = Governor.assists g > assists_before in
          if Trace.on () then
            Trace.instant Trace.Engine "relocate" ~at:now
              [
                ("rid", Trace.I rid);
                ( "outcome",
                  Trace.S
                    (match outcome with
                    | Vsorter.Pruned_first cls -> "pruned-first:" ^ Vclass.to_string cls
                    | Vsorter.Buffered cls -> "buffered:" ^ Vclass.to_string cls) );
                ("assisted", Trace.I (if assisted then 1 else 0));
              ];
          (* Emergency backpressure: when the governor made this writer
             run a synchronous maintenance pass, the writer pays for it
             (sync-flush-point semantics). *)
          if assisted then c + st.costs.Costs.gc_page_scan + st.costs.Costs.io_latency else c
    in
    (* The MySQL flavor still writes an undo log (kept until commit,
       recycled without touching the global history list — the temporal
       redundancy of §4.2). *)
    let undo_cost = match st.flavor with `Mysql -> st.costs.Costs.undo_header / 4 | `Pg -> 0 in
    let t = Resource.acquire page.Page.latch ~now ~hold:st.costs.Costs.write_base in
    Engine.Committed_path (t + reloc_cost + undo_cost + st.costs.Costs.think)
  end

let rollback_writes st (txn : Txn.t) =
  (match Hashtbl.find_opt st.write_sets txn.Txn.tid with
  | Some rids ->
      List.iter (fun rid -> Siro.abort_undo st.slots.(rid) ~t_aborted:txn.Txn.tid) !rids;
      Driver.abort_cleanup st.driver
  | None -> ());
  Hashtbl.remove st.write_sets txn.Txn.tid

let maintenance st ~now =
  let swept, cut = Driver.maintain st.driver ~now in
  let cost =
    (cut.Vcutter.segments_scanned * st.costs.Costs.zone_check)
    + (cut.Vcutter.segments_cut * st.costs.Costs.gc_page_scan)
    + ((swept.Vsorter.segments_dropped + swept.Vsorter.segments_flushed)
      * st.costs.Costs.zone_check)
    + (swept.Vsorter.versions_stored * st.costs.Costs.version_hop)
    + (swept.Vsorter.segments_flushed * st.costs.Costs.io_latency)
  in
  now + st.costs.Costs.zone_check + cost

let create ?(costs = Costs.default) ?driver_config ~flavor schema =
  let mgr = Txn_manager.create () in
  let wal = Wal.create () in
  (* SIRO reserves the placeholder: two slots per record, never split. *)
  let heap =
    Heap.create ~page_bytes:schema.Schema.page_bytes
      ~slot_bytes:(2 * schema.Schema.record_bytes)
      ~records:(Schema.records schema) ~fill_factor:schema.Schema.fill_factor ~wal
  in
  let driver =
    match driver_config with
    | Some config -> Driver.create ~config mgr
    | None -> Driver.create mgr
  in
  let pool =
    Buffer_pool.create ~name:"heap"
      ~capacity_blocks:(((3 * Heap.page_count heap) / 2) + 8)
  in
  let st =
    {
      flavor;
      costs;
      schema;
      mgr;
      wal;
      heap;
      pool;
      slots =
        Array.init (Schema.records schema) (fun rid ->
            Siro.create ~rid ~bytes:schema.Schema.record_bytes ~payload:rid ~vs:0 ~vs_time:0);
      driver;
      write_sets = Hashtbl.create 256;
    }
  in
  let inrow_len rid =
    if Siro.previous st.slots.(rid) = None then 1 else 2
  in
  let pages_wait () =
    let acc = ref 0 in
    let seen = Hashtbl.create 64 in
    for rid = 0 to Schema.records schema - 1 do
      let page = Heap.page_of heap ~rid in
      if not (Hashtbl.mem seen page.Page.id) then begin
        Hashtbl.replace seen page.Page.id ();
        acc := !acc + Resource.wait_time page.Page.latch
      end
    done;
    !acc
  in
  let name = match flavor with `Pg -> "postgres-vdriver" | `Mysql -> "mysql-vdriver" in
  {
    Engine.name;
    txns = mgr;
    begin_txn =
      (fun ~now ->
        let txn = Txn_manager.begin_txn mgr ~now in
        (txn, now + costs.Costs.txn_begin));
    read = (fun txn ~rid ~now -> read st txn ~rid ~now);
    write = (fun txn ~rid ~payload ~now -> write st txn ~rid ~payload ~now);
    commit =
      (fun txn ~now ->
        Hashtbl.remove st.write_sets txn.Txn.tid;
        Txn_manager.commit mgr txn ~now;
        now + costs.Costs.txn_commit);
    abort =
      (fun txn ~now ->
        rollback_writes st txn;
        Txn_manager.abort mgr txn ~now;
        now + costs.Costs.txn_commit);
    maintenance = (fun ~now -> maintenance st ~now);
    sample =
      (fun () ->
        {
          Engine.version_bytes = Driver.space_bytes driver;
          redo_bytes = Wal.total_bytes wal;
          max_chain = 2 + Driver.max_chain_length driver;
          splits = Heap.splits heap;
          truncations = 0;
          latch_wait = pages_wait ();
          wal_errors = Wal.errors wal;
        });
    chain_histogram =
      (fun () ->
        let h = Histogram.create () in
        for rid = 0 to Schema.records schema - 1 do
          Histogram.add h (inrow_len rid + Driver.chain_length driver ~rid)
        done;
        h);
    finish = (fun ~now -> ignore (Driver.flush_all driver ~now));
    crash =
      (fun () ->
        (* Losers roll back by bit toggles (a few nanoseconds each);
           off-row state dies wholesale with the restart (§3.5) — the
           "instant recovery" property of in-row designs. *)
        let undo_ops = ref 0 in
        let losers = Hashtbl.fold (fun tid _ acc -> tid :: acc) st.write_sets [] in
        List.iter
          (fun tid ->
            match Hashtbl.find_opt st.write_sets tid with
            | Some rids ->
                List.iter
                  (fun rid ->
                    incr undo_ops;
                    Siro.abort_undo st.slots.(rid) ~t_aborted:tid)
                  !rids;
                Hashtbl.remove st.write_sets tid
            | None -> ())
          losers;
        Driver.crash_restart driver;
        !undo_ops * costs.Costs.zone_check);
    driver = Some driver;
  }

let driver_exn (engine : Engine.t) =
  match engine.Engine.driver with
  | Some d -> d
  | None -> invalid_arg "Siro_engine.driver_exn: engine has no vDriver"
