type state = {
  flavor : [ `Pg | `Mysql ];
  costs : Costs.t;
  schema : Schema.t;
  mgr : Txn_manager.t;
  wal : Wal.t;
  heap : Heap.t;
  pool : Buffer_pool.t; (* data pages; fixed footprint keeps it warm *)
  slots : Siro.t array;
  driver : Driver.t;
  write_sets : (Timestamp.t, int list ref) Hashtbl.t;
}


let fetch_page st page ~now =
  match Buffer_pool.access st.pool ~block:page.Page.id with
  | `Hit -> now
  | `Miss -> now + st.costs.Costs.io_latency

let read st (txn : Txn.t) ~rid ~now =
  let page = Heap.page_of st.heap ~rid in
  let now = fetch_page st page ~now in
  (* Copy the requested tuple under a short latch (§4.1): the in-row
     pair answers most reads. The PostgreSQL flavor pays the switch from
     returning a locator to copying the tuple (§4.1). *)
  let copy_cost = match st.flavor with `Pg -> st.costs.Costs.version_hop * 2 | `Mysql -> 0 in
  let t =
    Resource.acquire page.Page.latch ~now ~hold:(st.costs.Costs.read_base + copy_cost)
  in
  match Siro.read_inrow st.slots.(rid) txn.Txn.view with
  | Some v ->
      (* In-row hit: the scan touched only the slot pair. *)
      Metrics.observe "scan.chain_length" 1;
      (v.Version.payload, t + st.costs.Costs.think)
  | None -> (
      (* Off-row lookup through LLB and the version buffer — no page
         latch held while walking. *)
      match Driver.read st.driver txn.Txn.view ~rid with
      | Some (v, source, hops) ->
          (* Both in-row versions were checked before the chain walk. *)
          Metrics.observe "scan.chain_length" (2 + hops);
          (match source with
          | Driver.From_vbuffer -> Metrics.bump "read.vbuffer"
          | Driver.From_store_cached -> Metrics.bump "read.store_cached"
          | Driver.From_store_io -> Metrics.bump "read.store_io");
          let cost =
            st.costs.Costs.llb_lookup
            + (hops * st.costs.Costs.version_hop)
            +
            match source with
            | Driver.From_vbuffer -> 0
            | Driver.From_store_cached -> st.costs.Costs.version_hop
            | Driver.From_store_io -> st.costs.Costs.io_latency
          in
          (v.Version.payload, t + cost + st.costs.Costs.think)
      | None -> failwith "siro: snapshot read unreachable")

let note_write st (txn : Txn.t) rid =
  match Hashtbl.find_opt st.write_sets txn.Txn.tid with
  | Some l -> l := rid :: !l
  | None -> Hashtbl.replace st.write_sets txn.Txn.tid (ref [ rid ])

let write st (txn : Txn.t) ~rid ~payload ~now =
  let slot = st.slots.(rid) in
  let cur = Siro.current slot in
  let page = Heap.page_of st.heap ~rid in
  let now = fetch_page st page ~now in
  if Cc.write_conflict st.mgr txn ~current_vs:cur.Version.vs then
    Engine.Conflict (Resource.acquire page.Page.latch ~now ~hold:st.costs.Costs.read_base)
  else begin
    let r =
      Siro.update slot ~vs:txn.Txn.tid ~vs_time:now ~payload ~bytes:st.schema.Schema.record_bytes
    in
    if cur.Version.vs <> txn.Txn.tid then note_write st txn rid;
    Wal.append st.wal ~at:now ~bytes:st.schema.Schema.record_bytes ();
    (* Durable mode: the uncommitted write is logged ARIES-style at
       write time; replay applies it only if the owner commits. No-op
       (and no side effects) while the WAL is in byte-counting mode. *)
    ignore
      (Wal.log st.wal ~at:now
         (Wal_record.Version_insert { tid = txn.Txn.tid; rid; value = payload }));
    let reloc_cost =
      match r.Siro.relocated with
      | None -> 0
      | Some v ->
          let g = Driver.governor st.driver in
          let assists_before = Governor.assists g in
          let base = st.costs.Costs.zone_check + st.costs.Costs.segment_append in
          let outcome = Driver.relocate st.driver v ~now in
          let c =
            match outcome with
            | Vsorter.Pruned_first _ -> base
            | Vsorter.Buffered _ -> base + st.costs.Costs.segment_append
          in
          let assisted = Governor.assists g > assists_before in
          if Trace.on () then
            Trace.instant Trace.Engine "relocate" ~at:now
              [
                ("rid", Trace.I rid);
                ( "outcome",
                  Trace.S
                    (match outcome with
                    | Vsorter.Pruned_first cls -> "pruned-first:" ^ Vclass.to_string cls
                    | Vsorter.Buffered cls -> "buffered:" ^ Vclass.to_string cls) );
                ("assisted", Trace.I (if assisted then 1 else 0));
              ];
          (* Emergency backpressure: when the governor made this writer
             run a synchronous maintenance pass, the writer pays for it
             (sync-flush-point semantics). *)
          if assisted then c + st.costs.Costs.gc_page_scan + st.costs.Costs.io_latency else c
    in
    (* The MySQL flavor still writes an undo log (kept until commit,
       recycled without touching the global history list — the temporal
       redundancy of §4.2). *)
    let undo_cost = match st.flavor with `Mysql -> st.costs.Costs.undo_header / 4 | `Pg -> 0 in
    let t = Resource.acquire page.Page.latch ~now ~hold:st.costs.Costs.write_base in
    Engine.Committed_path (t + reloc_cost + undo_cost + st.costs.Costs.think)
  end

let rollback_writes st (txn : Txn.t) =
  (match Hashtbl.find_opt st.write_sets txn.Txn.tid with
  | Some rids ->
      List.iter (fun rid -> Siro.abort_undo st.slots.(rid) ~t_aborted:txn.Txn.tid) !rids;
      Driver.abort_cleanup st.driver
  | None -> ());
  Hashtbl.remove st.write_sets txn.Txn.tid

let maintenance st ~now =
  let swept, cut = Driver.maintain st.driver ~now in
  let cost =
    (cut.Vcutter.segments_scanned * st.costs.Costs.zone_check)
    + (cut.Vcutter.segments_cut * st.costs.Costs.gc_page_scan)
    + ((swept.Vsorter.segments_dropped + swept.Vsorter.segments_flushed)
      * st.costs.Costs.zone_check)
    + (swept.Vsorter.versions_stored * st.costs.Costs.version_hop)
    + (swept.Vsorter.segments_flushed * st.costs.Costs.io_latency)
  in
  now + st.costs.Costs.zone_check + cost

let create ?(costs = Costs.default) ?driver_config ?mgr ?(shard = 0) ~flavor schema =
  (* A sharded deployment shares one transaction manager (the global
     snapshot order) across per-shard engine instances; each instance
     still owns its pipeline, heap, slots and WAL — the shard tag keeps
     the log a private LSN namespace. *)
  let mgr = match mgr with Some m -> m | None -> Txn_manager.create () in
  let wal = Wal.create ~shard () in
  (* SIRO reserves the placeholder: two slots per record, never split. *)
  let heap =
    Heap.create ~page_bytes:schema.Schema.page_bytes
      ~slot_bytes:(2 * schema.Schema.record_bytes)
      ~records:(Schema.records schema) ~fill_factor:schema.Schema.fill_factor ~wal
  in
  let driver =
    match driver_config with
    | Some config -> Driver.create ~config mgr
    | None -> Driver.create mgr
  in
  let pool =
    Buffer_pool.create ~name:"heap"
      ~capacity_blocks:(((3 * Heap.page_count heap) / 2) + 8)
  in
  let st =
    {
      flavor;
      costs;
      schema;
      mgr;
      wal;
      heap;
      pool;
      slots =
        Array.init (Schema.records schema) (fun rid ->
            Siro.create ~rid ~bytes:schema.Schema.record_bytes ~payload:rid ~vs:0 ~vs_time:0);
      driver;
      write_sets = Hashtbl.create 256;
    }
  in
  driver.State.shard_id <- shard;
  let durable = (Driver.config driver).State.durable_wal in
  (* Fuzzy checkpoint image: everything redo needs, captured without
     waiting for in-flight transactions (see {!Checkpoint}). *)
  let build_snapshot ~now =
    let clog = Txn_manager.commit_log mgr in
    let live_global = Txn_manager.live_begin_ts mgr in
    let prepared, decisions =
      match driver.State.ckpt_indoubt with Some f -> f () | None -> ([], [])
    in
    (* With a shared manager the global live table lists transactions
       that never touched this shard; snapshotting them here would turn
       them into phantom shard-local losers at replay. The shard's live
       set is the transactions with writes (or a prepare) here. *)
    let live =
      if driver.State.shared_mgr then
        List.filter
          (fun tid -> Hashtbl.mem st.write_sets tid || List.mem_assoc tid prepared)
          live_global
      else live_global
    in
    (* Bounded commit-log window: outcomes older than the oldest live
       begin ts are only needed through data that carries them (row
       [cts], relocation [(lo, hi)]), so they are not snapshotted. The
       floor stays global — any live transaction anywhere may still
       come reading. *)
    let floor =
      match live_global with t0 :: _ -> t0 | [] -> Txn_manager.oracle mgr
    in
    let committed, aborted =
      List.fold_left
        (fun (cs, abs_) (tid, status) ->
          if tid < floor then (cs, abs_)
          else
            match status with
            | Commit_log.Committed_at ts -> ((tid, ts) :: cs, abs_)
            | Commit_log.Aborted_at ts -> (cs, (tid, ts) :: abs_))
        ([], []) (Commit_log.entries clog)
    in
    let rows = ref [] in
    for rid = Schema.records schema - 1 downto 0 do
      let slot = st.slots.(rid) in
      let cur = Siro.current slot in
      let pick =
        if cur.Version.vs = 0 || Commit_log.is_committed clog cur.Version.vs then Some cur
        else Siro.previous slot
        (* fuzzy: the current version is an in-flight write; the in-row
           old version is the last committed image *)
      in
      let row =
        match pick with
        | Some v ->
            let cts =
              if v.Version.vs = 0 then 0
              else
                match Commit_log.commit_ts_of clog v.Version.vs with
                | Some c -> c
                | None -> 0
            in
            {
              Checkpoint.rid;
              value = v.Version.payload;
              vs = v.Version.vs;
              vs_time = v.Version.vs_time;
              cts;
            }
        | None -> { Checkpoint.rid; value = rid; vs = 0; vs_time = 0; cts = 0 }
      in
      rows := row :: !rows
    done;
    let pending =
      Hashtbl.fold (fun tid rids acc -> (tid, List.sort_uniq compare !rids) :: acc)
        st.write_sets []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.map (fun (tid, rids) ->
             let writes =
               List.filter_map
                 (fun rid ->
                   let cur = Siro.current st.slots.(rid) in
                   if cur.Version.vs = tid then
                     Some
                       {
                         Checkpoint.rid;
                         value = cur.Version.payload;
                         vs_time = cur.Version.vs_time;
                       }
                   else None)
                 rids
             in
             { Checkpoint.tid; writes })
    in
    let seg_image (seg : Segment.t) ~hardened =
      let versions = ref [] in
      Vec.iter
        (fun (n : Chain.node) ->
          if not n.Chain.deleted then
            let v = n.Chain.version in
            versions :=
              {
                Checkpoint.rid = v.Version.rid;
                vs = v.Version.vs;
                ve = v.Version.ve;
                vs_time = v.Version.vs_time;
                ve_time = v.Version.ve_time;
                bytes = v.Version.bytes;
                value = v.Version.payload;
                lo = n.Chain.prune_lo;
                hi = n.Chain.prune_hi;
              }
              :: !versions)
        seg.Segment.nodes;
      {
        Checkpoint.seg_id = seg.Segment.id;
        cls = Vclass.to_string seg.Segment.cls;
        hardened;
        versions = List.rev !versions;
      }
    in
    let segs = ref [] in
    Array.iter
      (function Some s -> segs := seg_image s ~hardened:false :: !segs | None -> ())
      driver.State.open_segments;
    Vec.iter (fun s -> segs := seg_image s ~hardened:false :: !segs) driver.State.sealed;
    Version_store.iter_hardened (Driver.store driver) (fun s ->
        segs := seg_image s ~hardened:true :: !segs);
    {
      Checkpoint.at = now;
      oracle_next = Txn_manager.oracle mgr;
      live;
      committed = List.rev committed;
      aborted = List.rev aborted;
      rows = !rows;
      pending;
      segments =
        List.sort (fun (a : Checkpoint.seg) b -> compare a.seg_id b.seg_id) !segs;
      next_seg_id = driver.State.next_seg_id;
      prepared;
      decisions;
    }
  in
  let do_checkpoint ~now =
    ignore (Wal.log wal ~at:now Wal_record.Ckpt_begin);
    let snap = build_snapshot ~now in
    ignore
      (Wal.log wal ~at:now (Wal_record.Ckpt_end { snapshot = Checkpoint.to_json snap }));
    ignore (Wal.fsync wal ~at:now ());
    Metrics.bump "recovery.checkpoints";
    if Trace.on () then
      Trace.instant Trace.Wal "checkpoint" ~at:now
        [ ("lsn", Trace.I (Wal.max_lsn wal)) ]
  in
  (* ARIES-lite restart: truncate the untrustworthy tail, replay redo
     from the last checkpoint, rebuild in-row and off-row state, roll
     back losers with compensating aborts, then checkpoint so the next
     restart starts clean. *)
  let do_restart ~now =
    let skip = (Driver.config driver).State.recovery_skip_tail_check in
    let analysis = Wal_recovery.analyze ~check_crc:(not skip) wal in
    let exp = Wal_recovery.expect ?resolve:driver.State.indoubt_resolver analysis in
    Wal.truncate_to wal ~lsn:analysis.Wal_recovery.truncate_lsn;
    Driver.crash_restart driver;
    Hashtbl.reset st.write_sets;
    Buffer_pool.clear st.pool;
    let clrs =
      (* A shared manager is reset once by the group before the
         per-shard restarts; each shard then merges its outcomes in. *)
      Txn_manager.crash_recover ~reset:(not driver.State.shared_mgr) mgr
        ~committed:exp.Wal_recovery.committed
        ~aborted:exp.Wal_recovery.aborted ~losers:exp.Wal_recovery.losers
        ~oracle_floor:exp.Wal_recovery.oracle_floor
    in
    List.iter
      (fun (tid, ats) -> ignore (Wal.log wal ~at:now (Wal_record.Txn_abort { tid; ats })))
      clrs;
    ignore (Wal.fsync wal ~at:now ());
    for rid = 0 to Schema.records schema - 1 do
      st.slots.(rid) <-
        Siro.create ~rid ~bytes:schema.Schema.record_bytes ~payload:rid ~vs:0 ~vs_time:0
    done;
    List.iter
      (fun (r : Checkpoint.row) ->
        st.slots.(r.Checkpoint.rid) <-
          Siro.create ~rid:r.Checkpoint.rid ~bytes:schema.Schema.record_bytes
            ~payload:r.Checkpoint.value ~vs:r.Checkpoint.vs ~vs_time:r.Checkpoint.vs_time)
      exp.Wal_recovery.rows;
    let vres =
      Vrecovery.rebuild driver ~segments:exp.Wal_recovery.segments
        ~next_seg_id:exp.Wal_recovery.next_seg_id ~now
    in
    State.refresh_zones driver ~now;
    do_checkpoint ~now;
    Metrics.bump "recovery.restarts";
    Metrics.bump_by "recovery.records_replayed" exp.Wal_recovery.replayed;
    Metrics.bump_by "recovery.frames_truncated" analysis.Wal_recovery.dropped;
    Metrics.bump_by "recovery.losers_rolled_back" (List.length clrs);
    let recovery_cost =
      (analysis.Wal_recovery.survivors * costs.Costs.version_hop)
      + (vres.Vrecovery.versions * costs.Costs.segment_append)
      + (vres.Vrecovery.segments * costs.Costs.io_latency)
      + (List.length clrs * costs.Costs.zone_check)
      + costs.Costs.io_latency
    in
    if Trace.on () then
      Trace.span Trace.Engine "restart" ~start:now ~dur:recovery_cost
        [
          ("replayed", Trace.I exp.Wal_recovery.replayed);
          ("versions", Trace.I vres.Vrecovery.versions);
          ("truncated", Trace.I analysis.Wal_recovery.dropped);
          ("losers", Trace.I (List.length clrs));
          ("to_lsn", Trace.I analysis.Wal_recovery.truncate_lsn);
        ];
    {
      Engine.replayed_records = exp.Wal_recovery.replayed;
      replayed_versions = vres.Vrecovery.versions;
      truncated_frames = analysis.Wal_recovery.dropped;
      losers_rolled_back = List.length clrs;
      recovered_to_lsn = analysis.Wal_recovery.truncate_lsn;
      recovery_cost;
    }
  in
  if durable then begin
    Wal.enable_durability wal;
    driver.State.wal <- Some wal;
    driver.State.inrow_probe <-
      Some
        (fun () ->
          let acc = ref [] in
          for rid = Schema.records schema - 1 downto 0 do
            let cur = Siro.current st.slots.(rid) in
            acc := (rid, cur.Version.payload, cur.Version.vs) :: !acc
          done;
          !acc);
    (* Bootstrap checkpoint (LSNs 1-2): recovery always has a base
       image, so a crash clamped to {!Wal.bootstrap_lsn} replays the
       initial database rather than an empty one. *)
    do_checkpoint ~now:0
  end;
  let inrow_len rid =
    if Siro.previous st.slots.(rid) = None then 1 else 2
  in
  let pages_wait () =
    let acc = ref 0 in
    let seen = Hashtbl.create 64 in
    for rid = 0 to Schema.records schema - 1 do
      let page = Heap.page_of heap ~rid in
      if not (Hashtbl.mem seen page.Page.id) then begin
        Hashtbl.replace seen page.Page.id ();
        acc := !acc + Resource.wait_time page.Page.latch
      end
    done;
    !acc
  in
  let name = match flavor with `Pg -> "postgres-vdriver" | `Mysql -> "mysql-vdriver" in
  {
    Engine.name;
    txns = mgr;
    begin_txn =
      (fun ~now ->
        let txn = Txn_manager.begin_txn mgr ~now in
        ignore (Wal.log wal ~at:now (Wal_record.Txn_begin { tid = txn.Txn.tid }));
        (txn, now + costs.Costs.txn_begin));
    read = (fun txn ~rid ~now -> read st txn ~rid ~now);
    write = (fun txn ~rid ~payload ~now -> write st txn ~rid ~payload ~now);
    commit =
      (fun txn ~now ->
        Hashtbl.remove st.write_sets txn.Txn.tid;
        Txn_manager.commit mgr txn ~now;
        if Wal.is_durable wal then begin
          let cts =
            match Commit_log.commit_ts_of (Txn_manager.commit_log mgr) txn.Txn.tid with
            | Some c -> c
            | None -> 0
          in
          ignore (Wal.log wal ~at:now (Wal_record.Txn_commit { tid = txn.Txn.tid; cts }));
          (* Group-commit-free model: every commit forces the log. A
             rejected fsync leaves the commit volatile — the crash
             oracle treats it as a loser, which is the conservative
             durability contract. *)
          ignore (Wal.fsync wal ~at:now ())
        end;
        now + costs.Costs.txn_commit);
    abort =
      (fun txn ~now ->
        rollback_writes st txn;
        Txn_manager.abort mgr txn ~now;
        if Wal.is_durable wal then begin
          let ats =
            match Commit_log.status (Txn_manager.commit_log mgr) txn.Txn.tid with
            | Some (Commit_log.Aborted_at a) -> a
            | _ -> 0
          in
          ignore (Wal.log wal ~at:now (Wal_record.Txn_abort { tid = txn.Txn.tid; ats }))
        end;
        now + costs.Costs.txn_commit);
    maintenance = (fun ~now -> maintenance st ~now);
    sample =
      (fun () ->
        {
          Engine.version_bytes = Driver.space_bytes driver;
          redo_bytes = Wal.total_bytes wal;
          max_chain = 2 + Driver.max_chain_length driver;
          splits = Heap.splits heap;
          truncations = 0;
          latch_wait = pages_wait ();
          wal_errors = Wal.errors wal;
        });
    chain_histogram =
      (fun () ->
        let h = Histogram.create () in
        for rid = 0 to Schema.records schema - 1 do
          Histogram.add h (inrow_len rid + Driver.chain_length driver ~rid)
        done;
        h);
    finish = (fun ~now -> ignore (Driver.flush_all driver ~now));
    crash =
      (fun () ->
        (* Losers roll back by bit toggles (a few nanoseconds each);
           off-row state dies wholesale with the restart (§3.5) — the
           "instant recovery" property of in-row designs. *)
        let undo_ops = ref 0 in
        let losers = Hashtbl.fold (fun tid _ acc -> tid :: acc) st.write_sets [] in
        List.iter
          (fun tid ->
            match Hashtbl.find_opt st.write_sets tid with
            | Some rids ->
                List.iter
                  (fun rid ->
                    incr undo_ops;
                    Siro.abort_undo st.slots.(rid) ~t_aborted:tid)
                  !rids;
                Hashtbl.remove st.write_sets tid
            | None -> ())
          losers;
        Driver.crash_restart driver;
        !undo_ops * costs.Costs.zone_check);
    driver = Some driver;
    checkpoint = (if durable then Some (fun ~now -> do_checkpoint ~now) else None);
    restart = (if durable then Some (fun ~now -> do_restart ~now) else None);
    twopc =
      (if not durable then None
       else
         Some
           {
             Engine.log_begin =
               (fun ~tid ~now -> ignore (Wal.log wal ~at:now (Wal_record.Txn_begin { tid })));
             log_prepare =
               (fun ~tid ~coord ~shards ~now ->
                 ignore (Wal.log wal ~at:now (Wal_record.Prepare { tid; coord; shards }));
                 (* A prepare is a promise: it must be durable before
                    the coordinator may count this shard as ready. *)
                 ignore (Wal.fsync wal ~at:now ()));
             apply_commit =
               (fun txn ~cts ~now ->
                 Hashtbl.remove st.write_sets txn.Txn.tid;
                 ignore
                   (Wal.log wal ~at:now (Wal_record.Txn_commit { tid = txn.Txn.tid; cts }));
                 ignore (Wal.fsync wal ~at:now ()));
             apply_abort =
               (fun txn ~ats ~now ->
                 rollback_writes st txn;
                 ignore
                   (Wal.log wal ~at:now (Wal_record.Txn_abort { tid = txn.Txn.tid; ats })));
             wal;
           });
  }

let driver_exn (engine : Engine.t) =
  match engine.Engine.driver with
  | Some d -> d
  | None -> invalid_arg "Siro_engine.driver_exn: engine has no vDriver"
