(** Seeded fault plans.

    A plan is a deterministic schedule of injected failures: explicit
    [events] pinned to simulated times, plus independent Poisson
    processes (one per fault kind, rates in expected injections per
    simulated second) whose arrival times are pre-drawn from the plan's
    own splitmix stream. Equal seeds and rates give equal injection
    sequences regardless of what the system under test does, and a plan
    never touches the workload's RNG — a run with a zero-rate plan is
    bit-identical to a run with no plan at all.

    The scheduler consults the plan through its dispatch probe: before
    every process step the harness calls {!poll}, which returns the
    faults that have come due since the previous poll. *)

type action =
  | Crash  (** crash-restart the engine (§3.5, Figure 10b) *)
  | Abort_txn  (** abort one in-flight transaction (Figure 10a) *)
  | Wal_error  (** reject a burst of WAL appends *)
  | Flush_fail  (** fail segment flushes for a sweep window *)
  | Evict_storm  (** evict the whole version-store cache *)
  | Space_storm
      (** a burst writer displaces a volley of versions at once — the
          quota squeeze that drives the governor's ladder *)
  | Wal_bitflip
      (** flip bits inside one surviving WAL frame — silent log
          corruption the next recovery's CRC pass must refuse *)
  | Cleaner_stall
      (** the cleaning side (vSorter/vCutter maintenance loop) stops
          making progress for a drawn duration — the hung-GC hazard the
          liveness watchdog exists to bound *)
  | Llt_zombie
      (** one in-flight LLT stops issuing operations but keeps its
          snapshot pinned — the zombie the lease-based shed rung must
          contain *)
  | Collab_delay
      (** the cutter dawdles between installing its footprint and
          marking completion, stretching the sorter's spin-wait window
          in the collaboration protocol *)
  | Node_kill
      (** kill one whole replica node (the runner draws the victim):
          dead silence, lease expiry, deterministic failover *)
  | Node_revive
      (** bring the oldest dead node back — honestly state-transferred,
          or stale under the stale-primary sabotage *)

val action_name : action -> string
val all_actions : action list

type event = { at : Clock.time; action : action }

type t

val create :
  ?seed:int ->
  ?events:event list ->
  ?crash_rate:float ->
  ?abort_rate:float ->
  ?wal_error_rate:float ->
  ?flush_fail_rate:float ->
  ?evict_storm_rate:float ->
  ?space_storm_rate:float ->
  ?wal_bitflip_rate:float ->
  ?cleaner_stall_rate:float ->
  ?llt_zombie_rate:float ->
  ?collab_delay_rate:float ->
  ?node_kill_rate:float ->
  ?node_revive_rate:float ->
  ?crash_points:int list ->
  ?torn_tail:bool ->
  ?check_period:Clock.time ->
  unit ->
  t
(** Rates are per simulated second and default to 0; [events] may be in
    any order. [check_period] is the cadence at which the harness runs
    the online invariant sweep (default 100 ms; the prune-soundness
    audit is continuous regardless). Negative rates raise
    [Invalid_argument].

    [crash_points] schedules deterministic crash-restarts by WAL
    position: the runner kills power the first time the log's highest
    LSN reaches each point (requires a durable engine; ignored
    otherwise). [torn_tail] additionally appends a fabricated,
    checksum-stale commit frame at each of those crashes — the
    torn-sector model honest recovery must truncate. *)

val none : t
(** The no-op plan: no events, all rates zero. Wiring it through a run
    must not change the run's results — the determinism tests hold us to
    that. *)

val random :
  ?crash_points:int list ->
  ?torn_tail:bool ->
  ?stalls:bool ->
  ?zombies:bool ->
  ?crashes:bool ->
  seed:int ->
  unit ->
  t
(** A moderately aggressive plan derived entirely from [seed]: every
    rate is drawn from a seeded stream. Chaos campaigns use one per
    campaign. The optional crash-point schedule rides along without
    perturbing the rate draws. [stalls] additionally draws cleaner-stall
    and collab-delay rates, [zombies] an LLT-zombie rate; both are drawn
    strictly after the classic rates, so enabling them never perturbs
    the classic injection times for the same seed. [crashes:false]
    (default [true]) zeroes the crash process and drops the crash-point
    schedule {e after} the rate draws, leaving every other process's
    injection times untouched — the crash-free plan variant the
    sim-vs-domains differential harness runs both modes under. *)

val random_net :
  ?loss:float ->
  ?dup:float ->
  ?delay_us:int ->
  ?partitions:int ->
  shards:int ->
  horizon:Clock.time ->
  seed:int ->
  unit ->
  Net_fault.config
(** A seeded {!Net_fault.config} for a [shards]-endpoint fabric:
    [partitions] named windows, each isolating a drawn nonempty strict
    subset of shards, opening inside the first ~70% of [horizon] and
    healing strictly before it. Rates and the delay bound pass through
    ([loss] 10%, [dup] 5%, [delay_us] 150 by default). The partition
    draws come from a stream forked off [seed] with a tweak distinct
    from {!random}'s, so pairing both from one seed keeps either's
    draws stable. Raises [Invalid_argument] for [shards < 2], a
    non-positive horizon, or a negative partition count. *)

val random_nodes : seed:int -> unit -> t
(** A seeded whole-node fault plan for replicated-shard campaigns:
    kill and revive arrival rates drawn from a stream forked off
    [seed] with its own tweak (independent of {!random} and
    {!random_net} at the same seed). Revives are drawn a bit more
    frequent than kills, so the one-dead-node-per-group budget keeps
    freeing up over a long soak. *)

val seed : t -> int
val check_period : t -> Clock.time

val crash_points : t -> int list
(** Ascending, duplicates removed. *)

val torn_tail : t -> bool

val poll : t -> now:Clock.time -> action list
(** All injections due at or before [now] that were not already
    returned, oldest first (scheduled events before Poisson arrivals on
    ties, then by declaration order of the action kinds). *)

val pp : Format.formatter -> t -> unit
(** Seed and rates — enough to reproduce the plan. *)
