(** Per-run chaos report: injected faults, invariant checks, violations.

    The report is the campaign's verdict and must be reproducible
    byte-for-byte from the seed, so everything it prints is either
    sorted or recorded in simulation order. Violation details are kept
    only up to a cap (a genuinely broken invariant can fire on every
    pruned version); the total count is always exact. *)

type violation = { at : Clock.time; invariant : string; detail : string }

type t

val create : ?max_details:int -> unit -> t
(** [max_details] bounds stored violation records (default 64). *)

val record : t -> at:Clock.time -> invariant:string -> detail:string -> unit
val note_check : t -> unit
(** Count one invariant sweep. *)

val note_fault : t -> string -> unit
(** Count one injected fault by action name. *)

val set_gauge : t -> string -> int -> unit
(** Record an end-of-run counter (WAL errors, retries, sheds, give-ups
    …) under a stable name; overwrites any previous value. *)

val gauge : t -> string -> int option
val gauges : t -> (string * int) list
(** Sorted by name. *)

val violations : t -> violation list
(** Stored violation records, oldest first. *)

val violation_count : t -> int
(** Exact total, including records dropped past the cap. *)

val checks_run : t -> int
val faults_injected : t -> (string * int) list
(** Sorted by action name. *)

val ok : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
