(** Online invariant checking over a live vDriver instance.

    The safety and completeness oracles of the GC literature, asserted
    continuously while faults are injected: never reclaim a version
    some live transaction still needs, never corrupt the structures
    that make the remaining versions reachable.

    Catalogue (see DESIGN.md, "Fault model and invariant catalogue"):

    - {b prune soundness} — every discarded version is dead per
      Definition 3.3 against the live table {e at the moment of the
      discard} (installed as a continuous audit via
      {!install_prune_audit}; this is what catches a widened zone);
    - {b chain shape} — every LLB chain is in the 0-hole or 1-hole
      state with consistent links and counts (§3.4, Figure 8);
    - {b chain/segment reachability} — every live chain node's segment
      exists and is [In_buffer] or [Hardened], never [Cut];
    - {b stats conservation} — [relocated = prune1 + prune2 + stored +
      lost + in_flight], with [in_flight] equal to the versions
      actually buffered;
    - {b store accounting} — [live_bytes] equals the sum over resident
      hardened segments, and the segment index holds exactly the open,
      sealed and hardened segments;
    - {b space quota} — when a governor quota is configured, the space
      reading at every post-maintenance checkpoint is within the hard
      quota (this is what catches [quota_ignore_sabotage]);
    - {b governor ladder} — every logged health transition is between
      adjacent rungs and respects the hysteresis thresholds;
    - {b post-crash emptiness} — after [crash_restart] the LLB, the
      vBuffer, the version store and its cache are all empty (§3.5,
      Figure 10b). *)

type violation = { invariant : string; detail : string }

val check_chains : Driver.t -> violation list
(** Chain shape and chain/segment reachability, sorted by record id. *)

val check_stats : Driver.t -> violation list
val check_store : Driver.t -> violation list

val check_governor : Driver.t -> violation list
(** Overload-protection honesty, against the {e configured} quota (so a
    sabotaged governor that ignores its quota is still judged by it):
    the most recent post-maintenance space checkpoint must not exceed
    the hard quota, and the governor's transition log must be adjacent
    and hysteresis-respecting ({!Governor.check_ladder}). Empty when no
    quota is configured. *)

val check_watchdog : Driver.t -> violation list
(** Liveness-ladder honesty for the installed watchdog, if any:
    transitions adjacent, escalations only out of unhealthy polls,
    de-escalations only out of clean ones ({!Watchdog.check_ladder}).
    Empty when no watchdog is armed. *)

val check_gc : Driver.t -> violation list
(** The installed GC backend's own online invariant (DESIGN §4h):
    vCutter's cut-completeness-within-budget, the BBF+ resident
    dead-version bound. Prune {e soundness} stays universal — the
    continuous audit judges every backend's deletions — so this only
    carries the per-backend guarantee. Empty when no backend is
    installed. *)

val check_no_false_kill : Lease.t -> violation list
(** The watchdog never cancels a transaction that made progress within
    its lease: every recorded cancellation must show idle time strictly
    beyond the lease the victim held. *)

type lag_monitor
(** Stateful monitor for the bounded-reclamation-lag guarantee: tracks,
    per segment, the first time its descriptor interval was observed
    dead (Definition 3.3 against the live table), and judges resident
    segments against the configured bound. Deadness is monotone — live
    begin timestamps only ever disappear — so the first-observed clock
    is sound. *)

val lag_monitor : Driver.t -> bound:Clock.time -> lag_monitor
(** [bound] is the lag budget [L], typically {!Watchdog.lag_bound} of
    the armed watchdog's config. Raises [Invalid_argument] unless
    positive. *)

val check_lag : lag_monitor -> now:Clock.time -> violation list
(** One sweep: start clocks for newly dead segments, score reclaimed
    ones into the lag histogram, and report a [reclamation-lag]
    violation for every segment dead and resident past the bound. Call
    periodically (the bound budgets one check period of slack). *)

val finish_lag : lag_monitor -> now:Clock.time -> unit
(** End-of-run settlement: fold the final residence lag of every
    still-ticking clock into the histogram and max, then reset. *)

val lag_bound : lag_monitor -> Clock.time
val max_lag : lag_monitor -> Clock.time
(** Largest dead-resident lag observed so far (reclaimed or not). *)

val lag_histogram : lag_monitor -> Histogram.t
(** Per-segment reclaim lags in microseconds (bucket width 50 µs). *)

val check_all : Driver.t -> violation list
(** The steady-state checks above plus {!check_watchdog} and
    {!check_gc}, concatenated. *)

val check_post_crash : Driver.t -> violation list
(** To be run immediately after a crash-restart, before any new
    relocation reaches the driver. *)

val check_post_recovery : Driver.t -> violation list
(** To be run immediately after a durable restart-replay, before the
    workload resumes. Re-derives the expected post-recovery state from
    the WAL with CRC checking unconditionally on (never the engine's
    [recovery_skip_tail_check] sabotage knob) and compares: committed
    effects durable (outcomes and the in-row image byte-exact), no
    loser or aborted transaction resurrected as committed, no committed
    timestamp at or above the log's frontier (a fabricated record), the
    surviving segment set rebuilt with identity/class/state/contents,
    dropped and cut segments still dead, the timestamp oracle and
    segment allocator at or past their logged frontiers, and the WAL
    counters conservative. Ends with the steady-state structure checks
    ({!check_chains}, {!check_stats}, {!check_store}). Empty for a
    non-durable engine. *)

val install_prune_audit :
  Driver.t -> on_violation:(now:Clock.time -> violation -> unit) -> unit
(** Arm the driver's prune audit hook: every version the instance
    discards (1st prune, 2nd prune, or cut) is re-checked against
    Definition 3.3 using the live table's current begin timestamps;
    unsound discards are reported through [on_violation] with the
    simulated time of the discard. *)

val remove_prune_audit : Driver.t -> unit

val analyze_shard_logs :
  (int * Wal.t) list -> (int * Wal_recovery.analysis) list
(** Honest (CRC-on) analysis of every shard's log, sorted by shard id —
    the shared, linear-cost input of the log-level oracles below. A
    periodic sweep that runs more than one of them should analyze once
    and pass the result through [?analyses]. *)

val check_cross_shard_atomicity :
  ?clog:Commit_log.t ->
  ?analyses:(int * Wal_recovery.analysis) list ->
  (int * Wal.t) list ->
  violation list
(** The sharded deployment's headline oracle, over the [(shard id, wal)]
    logs of every shard. Analyzes each log honestly (CRC on), builds the
    durable coordinator-decision table from every trustworthy prefix,
    resolves each shard's in-doubt transactions through it exactly as a
    recovering participant must, and reports:

    - {b cross-shard-atomicity} — a transaction committed on one shard
      but aborted / presumed-aborted on another, or committed with
      different commit timestamps on two shards;
    - {b 2pc-decision-missing} — a participant applied a local commit
      for a prepared transaction with no durable decision at its
      coordinator (what [skip_coord_decision] sabotage produces — holds
      at every instant of the honest protocol, so it needs no lucky
      crash timing);
    - {b recovery-phantom} — with [?clog] (immediately after a group
      restart), a committed timestamp at or above every shard's durable
      frontier. *)

val check_no_committed_loss :
  ?analyses:(int * Wal_recovery.analysis) list ->
  acked:(int * int * int list) list ->
  (int * Wal.t) list ->
  violation list
(** The replicated deployment's headline oracle: every commit
    acknowledged to a client must survive every node-kill/failover
    schedule. [acked] is the client-visible ledger — [(tid, cts,
    participant shards)] for each acknowledged commit, the union of
    {!Shard_group.acked} and any sabotage-fabricated
    {!Replica.stale_acked} entries — and the [(shard id, wal)] list
    holds each shard's authoritative (post-failover) device. Each log
    is analyzed honestly with in-doubt entries resolved against the
    durable decision table, exactly as {!check_cross_shard_atomicity}
    does; a ["no-committed-loss"] violation is reported for every
    acknowledged [(tid, shard)] the surviving logs fail to commit.

    Fuzzy checkpoints keep only a bounded commit-log window, so the
    oracle demands an entry only while its commit timestamp sits at or
    above the participant log's last snapshot frontier
    ([Checkpoint.oracle_next]) — below it, the outcome has legitimately
    aged into the snapshot image. A loss is therefore visible from the
    kill that caused it until a later checkpoint's frontier passes it,
    which spans several online sweeps; the periodic
    [ack-before-replicate] and [stale-primary-writes] campaigns must
    provably trip this check. *)
