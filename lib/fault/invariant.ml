type violation = { invariant : string; detail : string }

let v invariant fmt = Format.kasprintf (fun detail -> { invariant; detail }) fmt

(* ------------------------------------------------------------------ *)
(* Chain shape and reachability *)

let check_chain (st : State.t) chain =
  let rid = Chain.rid chain in
  let shape =
    match Chain.check_invariants chain with
    | Ok () -> []
    | Error msg -> [ v "chain-shape" "%s" msg ]
  in
  (* Every live node must point at a segment that still exists and has
     not been cut: a cut segment's versions were deleted from their
     chains, so a live node referencing one is a dangling locator. *)
  let dangling = ref [] in
  let rec walk = function
    | None -> ()
    | Some node ->
        if not node.Chain.deleted then begin
          match State.find_segment st node.Chain.seg_id with
          | None ->
              dangling :=
                v "chain-reachability" "chain r%d: live node points at dropped segment %d" rid
                  node.Chain.seg_id
                :: !dangling
          | Some seg ->
              if seg.Segment.state = Segment.Cut then
                dangling :=
                  v "chain-reachability" "chain r%d: live node points at cut segment %d" rid
                    node.Chain.seg_id
                  :: !dangling
        end;
        walk node.Chain.older
  in
  walk (Chain.head chain);
  shape @ List.rev !dangling

let check_chains (d : Driver.t) =
  let st : State.t = d in
  let per_rid = ref [] in
  Llb.iter st.State.llb (fun chain -> per_rid := (Chain.rid chain, check_chain st chain) :: !per_rid);
  List.concat_map snd (List.sort (fun (a, _) (b, _) -> compare a b) !per_rid)

(* ------------------------------------------------------------------ *)
(* Prune_stats conservation *)

let buffered_live (st : State.t) =
  Array.fold_left
    (fun acc -> function Some seg -> acc + Segment.live_count seg | None -> acc)
    0 st.State.open_segments
  + Vec.fold_left (fun acc seg -> acc + Segment.live_count seg) 0 st.State.sealed

let check_stats (d : Driver.t) =
  let st : State.t = d in
  let stats = st.State.stats in
  let in_flight = Prune_stats.in_flight stats in
  let buffered = buffered_live st in
  let acc = ref [] in
  if in_flight < 0 then
    acc :=
      v "stats-conservation" "in_flight negative: relocated=%d prune1=%d prune2=%d stored=%d lost=%d"
        (Prune_stats.relocated stats) (Prune_stats.prune1_total stats)
        (Prune_stats.prune2_total stats) (Prune_stats.stored_total stats)
        (Prune_stats.lost stats)
      :: !acc;
  if in_flight <> buffered then
    acc :=
      v "stats-conservation"
        "buckets do not sum to relocated: in_flight=%d but %d versions buffered \
         (relocated=%d prune1=%d prune2=%d stored=%d lost=%d)"
        in_flight buffered (Prune_stats.relocated stats) (Prune_stats.prune1_total stats)
        (Prune_stats.prune2_total stats) (Prune_stats.stored_total stats)
        (Prune_stats.lost stats)
      :: !acc;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Version store accounting *)

let check_store (d : Driver.t) =
  let st : State.t = d in
  let store = st.State.store in
  let acc = ref [] in
  let hardened = ref 0 in
  let bytes = ref 0 in
  Version_store.iter_hardened store (fun seg ->
      incr hardened;
      bytes := !bytes + seg.Segment.used_bytes;
      match State.find_segment st seg.Segment.id with
      | Some s when s == seg -> ()
      | Some _ ->
          acc := v "store-accounting" "segment %d indexed to a different segment" seg.Segment.id :: !acc
      | None ->
          acc := v "store-accounting" "hardened segment %d missing from index" seg.Segment.id :: !acc);
  if !bytes <> Version_store.live_bytes store then
    acc :=
      v "store-accounting" "live_bytes=%d but hardened segments hold %d"
        (Version_store.live_bytes store) !bytes
      :: !acc;
  let open_count =
    Array.fold_left
      (fun n -> function Some _ -> n + 1 | None -> n)
      0 st.State.open_segments
  in
  let indexed = Hashtbl.length st.State.seg_index in
  let expected = open_count + Vec.length st.State.sealed + !hardened in
  if indexed <> expected then
    acc :=
      v "store-accounting" "segment index holds %d entries, expected %d (%d open + %d sealed + %d hardened)"
        indexed expected open_count (Vec.length st.State.sealed) !hardened
      :: !acc;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Governor: space envelope and ladder honesty.

   Both checks read the governor's *configured* quota, never its
   willingness to act on it — that is what lets a campaign under
   [quota_ignore_sabotage] catch the breach the sabotaged governor
   ignores, exactly as the prune-soundness audit catches a widened
   zone. *)

let check_governor (d : Driver.t) =
  let st : State.t = d in
  let g = st.State.governor in
  let quota = (Governor.config g).Governor.hard_quota_bytes in
  if quota <= 0 then []
  else begin
    let acc = ref [] in
    (match st.State.post_maintain_space with
    | Some (at, space) when space > quota ->
        acc :=
          v "space-quota" "post-maintenance space %d B exceeds the %d B hard quota (at %s)"
            space quota
            (Format.asprintf "%a" Clock.pp at)
          :: !acc
    | _ -> ());
    List.iter (fun msg -> acc := v "governor-ladder" "%s" msg :: !acc) (Governor.check_ladder g);
    List.rev !acc
  end

let check_all d = check_chains d @ check_stats d @ check_store d @ check_governor d

(* ------------------------------------------------------------------ *)
(* §3.5 post-crash emptiness *)

let check_post_crash (d : Driver.t) =
  let st : State.t = d in
  let acc = ref [] in
  let expect_zero what n = if n <> 0 then acc := v "post-crash" "%s nonempty: %d" what n :: !acc in
  expect_zero "LLB" (Llb.chain_count st.State.llb);
  expect_zero "vBuffer" (State.buffered_bytes st);
  expect_zero "version store" (Version_store.live_bytes st.State.store);
  expect_zero "resident hardened segments" (Version_store.resident_count st.State.store);
  expect_zero "store cache" (Buffer_pool.resident st.State.store_cache);
  expect_zero "segment index" (Hashtbl.length st.State.seg_index);
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Continuous prune-soundness audit *)

let origin_name = function `Prune1 -> "1st-prune" | `Prune2 -> "2nd-prune" | `Cut -> "cut"

let install_prune_audit (d : Driver.t) ~on_violation =
  let st : State.t = d in
  let mgr = st.State.txns in
  st.State.prune_audit <-
    Some
      (fun ~now ~origin ~lo ~hi ->
        if lo >= hi then
          on_violation ~now
            (v "prune-soundness" "%s discarded malformed interval (%d, %d)" (origin_name origin)
               lo hi)
        else begin
          (* Definition 3.3 against the live table as it is right now —
             not the driver's zone snapshot. Staleness of the snapshot
             is conservative, so any disagreement is a real unsound
             discard. *)
          let live = Txn_manager.live_begin_ts mgr in
          if not (Prune.dead_spec ~live ~vs:lo ~ve:hi) then
            on_violation ~now
              (v "prune-soundness"
                 "%s discarded a version visible to a live transaction: interval (%d, %d), live inside: %s"
                 (origin_name origin) lo hi
                 (String.concat ","
                    (List.filter_map
                       (fun tb -> if lo < tb && tb < hi then Some (string_of_int tb) else None)
                       live)))
        end)

let remove_prune_audit (d : Driver.t) =
  let st : State.t = d in
  st.State.prune_audit <- None
