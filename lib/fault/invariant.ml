type violation = { invariant : string; detail : string }

let v invariant fmt = Format.kasprintf (fun detail -> { invariant; detail }) fmt

(* ------------------------------------------------------------------ *)
(* Chain shape and reachability *)

let check_chain (st : State.t) chain =
  let rid = Chain.rid chain in
  let shape =
    match Chain.check_invariants chain with
    | Ok () -> []
    | Error msg -> [ v "chain-shape" "%s" msg ]
  in
  (* Every live node must point at a segment that still exists and has
     not been cut: a cut segment's versions were deleted from their
     chains, so a live node referencing one is a dangling locator. *)
  let dangling = ref [] in
  let rec walk = function
    | None -> ()
    | Some node ->
        if not node.Chain.deleted then begin
          match State.find_segment st node.Chain.seg_id with
          | None ->
              dangling :=
                v "chain-reachability" "chain r%d: live node points at dropped segment %d" rid
                  node.Chain.seg_id
                :: !dangling
          | Some seg ->
              if seg.Segment.state = Segment.Cut then
                dangling :=
                  v "chain-reachability" "chain r%d: live node points at cut segment %d" rid
                    node.Chain.seg_id
                  :: !dangling
        end;
        walk node.Chain.older
  in
  walk (Chain.head chain);
  shape @ List.rev !dangling

let check_chains (d : Driver.t) =
  let st : State.t = d in
  let per_rid = ref [] in
  Llb.iter st.State.llb (fun chain -> per_rid := (Chain.rid chain, check_chain st chain) :: !per_rid);
  List.concat_map snd (List.sort (fun (a, _) (b, _) -> compare a b) !per_rid)

(* ------------------------------------------------------------------ *)
(* Prune_stats conservation *)

let buffered_live (st : State.t) =
  Array.fold_left
    (fun acc -> function Some seg -> acc + Segment.live_count seg | None -> acc)
    0 st.State.open_segments
  + Vec.fold_left (fun acc seg -> acc + Segment.live_count seg) 0 st.State.sealed

let check_stats (d : Driver.t) =
  let st : State.t = d in
  let stats = st.State.stats in
  let in_flight = Prune_stats.in_flight stats in
  let buffered = buffered_live st in
  let acc = ref [] in
  if in_flight < 0 then
    acc :=
      v "stats-conservation" "in_flight negative: relocated=%d prune1=%d prune2=%d stored=%d lost=%d"
        (Prune_stats.relocated stats) (Prune_stats.prune1_total stats)
        (Prune_stats.prune2_total stats) (Prune_stats.stored_total stats)
        (Prune_stats.lost stats)
      :: !acc;
  if in_flight <> buffered then
    acc :=
      v "stats-conservation"
        "buckets do not sum to relocated: in_flight=%d but %d versions buffered \
         (relocated=%d prune1=%d prune2=%d stored=%d lost=%d)"
        in_flight buffered (Prune_stats.relocated stats) (Prune_stats.prune1_total stats)
        (Prune_stats.prune2_total stats) (Prune_stats.stored_total stats)
        (Prune_stats.lost stats)
      :: !acc;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Version store accounting *)

let check_store (d : Driver.t) =
  let st : State.t = d in
  let store = st.State.store in
  let acc = ref [] in
  let hardened = ref 0 in
  let bytes = ref 0 in
  Version_store.iter_hardened store (fun seg ->
      incr hardened;
      bytes := !bytes + seg.Segment.used_bytes;
      match State.find_segment st seg.Segment.id with
      | Some s when s == seg -> ()
      | Some _ ->
          acc := v "store-accounting" "segment %d indexed to a different segment" seg.Segment.id :: !acc
      | None ->
          acc := v "store-accounting" "hardened segment %d missing from index" seg.Segment.id :: !acc);
  if !bytes <> Version_store.live_bytes store then
    acc :=
      v "store-accounting" "live_bytes=%d but hardened segments hold %d"
        (Version_store.live_bytes store) !bytes
      :: !acc;
  let open_count =
    Array.fold_left
      (fun n -> function Some _ -> n + 1 | None -> n)
      0 st.State.open_segments
  in
  let indexed = Hashtbl.length st.State.seg_index in
  let expected = open_count + Vec.length st.State.sealed + !hardened in
  if indexed <> expected then
    acc :=
      v "store-accounting" "segment index holds %d entries, expected %d (%d open + %d sealed + %d hardened)"
        indexed expected open_count (Vec.length st.State.sealed) !hardened
      :: !acc;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Governor: space envelope and ladder honesty.

   Both checks read the governor's *configured* quota, never its
   willingness to act on it — that is what lets a campaign under
   [quota_ignore_sabotage] catch the breach the sabotaged governor
   ignores, exactly as the prune-soundness audit catches a widened
   zone. *)

let check_governor (d : Driver.t) =
  let st : State.t = d in
  let g = st.State.governor in
  let quota = (Governor.config g).Governor.hard_quota_bytes in
  if quota <= 0 then []
  else begin
    let acc = ref [] in
    (match st.State.post_maintain_space with
    | Some (at, space) when space > quota ->
        acc :=
          v "space-quota" "post-maintenance space %d B exceeds the %d B hard quota (at %s)"
            space quota
            (Format.asprintf "%a" Clock.pp at)
          :: !acc
    | _ -> ());
    List.iter (fun msg -> acc := v "governor-ladder" "%s" msg :: !acc) (Governor.check_ladder g);
    List.rev !acc
  end

(* ------------------------------------------------------------------ *)
(* Liveness: watchdog ladder honesty, no-false-kill, reclamation lag *)

let check_watchdog (d : Driver.t) =
  let st : State.t = d in
  match st.State.watchdog with
  | None -> []
  | Some w -> List.map (fun msg -> v "watchdog-ladder" "%s" msg) (Watchdog.check_ladder w)

(* ------------------------------------------------------------------ *)
(* Pluggable GC backends: each installed backend carries its own
   online invariant (vCutter: cut completeness within budget; BBF+:
   the resident dead-version bound) behind [gh_check]. Prune soundness
   needs no per-backend check — the universal audit re-judges every
   deletion any backend makes. Empty when no backend is installed. *)

let check_gc (d : Driver.t) =
  let st : State.t = d in
  match st.State.gc_backend with
  | None -> []
  | Some h ->
      List.map
        (fun msg -> v "gc-backend" "%s: %s" h.State.gh_name msg)
        (h.State.gh_check ())

let check_no_false_kill lease =
  List.filter_map
    (fun (c : Lease.cancel) ->
      if c.Lease.c_idle <= c.Lease.c_lease then
        Some
          (v "no-false-kill"
             "t%d was cancelled after only %s idle, within its %s lease — it had made progress"
             c.Lease.c_tid
             (Format.asprintf "%a" Clock.pp c.Lease.c_idle)
             (Format.asprintf "%a" Clock.pp c.Lease.c_lease))
      else None)
    (Lease.cancels lease)

(* Bounded reclamation lag: every version interval observed dead at
   time [t] must be reclaimed by [t + bound]. Deadness is monotone —
   the live table's begin timestamps only disappear (commit, abort,
   shed), never reappear, so once [Zone_set.covers] accepts a segment's
   descriptor interval it accepts it forever. That makes the
   first-observed-dead clock sound: the segment was dead continuously
   since then, and still being resident past the bound is a genuine
   liveness failure, not a flicker. *)
type lag_monitor = {
  lm_driver : Driver.t;
  lm_bound : Clock.time;
  lm_first_dead : (int, Clock.time) Hashtbl.t; (* seg id -> first seen dead *)
  mutable lm_max_lag : Clock.time; (* largest dead-resident lag observed *)
  lm_hist : Histogram.t; (* reclaim lag in µs, one sample per segment *)
}

let lag_monitor d ~bound =
  if bound <= 0 then invalid_arg "Invariant.lag_monitor: bound must be positive";
  {
    lm_driver = d;
    lm_bound = bound;
    lm_first_dead = Hashtbl.create 64;
    lm_max_lag = 0;
    lm_hist = Histogram.create ~bucket_width:50 ();
  }

let lag_bound m = m.lm_bound
let max_lag m = m.lm_max_lag
let lag_histogram m = m.lm_hist

let check_lag m ~now =
  let st : State.t = m.lm_driver in
  (* Judge against the live table as it is right now, not the driver's
     (possibly stale, conservative) zone snapshot: the bound already
     budgets for the refresh period. *)
  let zones = Zone_set.of_txn_manager st.State.txns in
  let present = Hashtbl.create 64 in
  let consider seg =
    if Segment.live_count seg > 0 then begin
      let _, vmin, vmax = Segment.descriptor seg in
      if vmin < vmax && Zone_set.covers zones ~lo:vmin ~hi:vmax then
        Hashtbl.replace present seg.Segment.id ()
    end
  in
  Vec.iter consider st.State.sealed;
  Version_store.iter_hardened st.State.store consider;
  Hashtbl.iter
    (fun id () ->
      if not (Hashtbl.mem m.lm_first_dead id) then Hashtbl.replace m.lm_first_dead id now)
    present;
  let overdue = ref [] and reclaimed = ref [] in
  Hashtbl.iter
    (fun id t0 ->
      let lag = now - t0 in
      if Hashtbl.mem present id then begin
        if lag > m.lm_max_lag then m.lm_max_lag <- lag;
        if lag > m.lm_bound then overdue := (id, lag) :: !overdue
      end
      else
        (* Reclaimed since the previous poll; [lag] over-counts by at
           most one check period, which the bound's headroom absorbs. *)
        reclaimed := (id, lag) :: !reclaimed)
    m.lm_first_dead;
  List.iter
    (fun (id, lag) ->
      Histogram.add m.lm_hist (lag / 1000);
      if lag > m.lm_max_lag then m.lm_max_lag <- lag;
      Hashtbl.remove m.lm_first_dead id)
    !reclaimed;
  List.map
    (fun (id, lag) ->
      v "reclamation-lag" "segment %d has been dead and unreclaimed for %s, bound is %s" id
        (Format.asprintf "%a" Clock.pp lag)
        (Format.asprintf "%a" Clock.pp m.lm_bound))
    (List.sort compare !overdue)

(* Settle the clocks at end of run: every segment still on a clock is
   scored with its final residence lag so the histogram and max cover
   the tail, without raising (the run is over; overdue segments were
   already reported by the periodic sweep). *)
let finish_lag m ~now =
  Hashtbl.iter
    (fun _ t0 ->
      let lag = now - t0 in
      if lag > m.lm_max_lag then m.lm_max_lag <- lag;
      Histogram.add m.lm_hist (lag / 1000))
    m.lm_first_dead;
  Hashtbl.reset m.lm_first_dead

let check_all d =
  check_chains d @ check_stats d @ check_store d @ check_governor d @ check_watchdog d
  @ check_gc d

(* ------------------------------------------------------------------ *)
(* §3.5 post-crash emptiness *)

let check_post_crash (d : Driver.t) =
  let st : State.t = d in
  let acc = ref [] in
  let expect_zero what n = if n <> 0 then acc := v "post-crash" "%s nonempty: %d" what n :: !acc in
  expect_zero "LLB" (Llb.chain_count st.State.llb);
  expect_zero "vBuffer" (State.buffered_bytes st);
  expect_zero "version store" (Version_store.live_bytes st.State.store);
  expect_zero "resident hardened segments" (Version_store.resident_count st.State.store);
  expect_zero "store cache" (Buffer_pool.resident st.State.store_cache);
  expect_zero "segment index" (Hashtbl.length st.State.seg_index);
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Post-recovery durability: the recovered engine against the honest
   log oracle.

   The oracle re-analyzes the WAL with CRC checking unconditionally on
   — never the engine's [recovery_skip_tail_check] knob — so a restart
   that replayed a torn tail diverges from the oracle and is caught
   here. The comparison is one-directional (oracle subset of engine)
   for the commit log: the recovered engine legitimately remembers
   outcomes older than the bounded window the end-of-restart checkpoint
   snapshots. The negative checks close the gap: no oracle loser or
   aborted transaction may be committed, and no committed timestamp may
   sit at or above the oracle's frontier (which is what catches a
   fabricated commit record). *)

let check_post_recovery (d : Driver.t) =
  let st : State.t = d in
  match st.State.wal with
  | None -> []
  | Some wal when not (Wal.is_durable wal) -> []
  | Some wal ->
      let analysis = Wal_recovery.analyze ~check_crc:true wal in
      (* The oracle resolves in-doubt 2PC transactions the same honest
         way the engine must: by looking the decision up in the
         coordinator shard's durable log. The resolver itself always
         CRC-verifies, so a sabotaged local replay still gets judged
         against the honest resolution. *)
      let exp = Wal_recovery.expect ?resolve:st.State.indoubt_resolver analysis in
      let clog = Txn_manager.commit_log st.State.txns in
      let acc = ref [] in
      let add x = acc := x :: !acc in
      (* Committed effects are durable. *)
      List.iter
        (fun (tid, cts) ->
          match Commit_log.status clog tid with
          | Some (Commit_log.Committed_at c) when c = cts -> ()
          | Some (Commit_log.Committed_at c) ->
              add
                (v "recovery-durability" "t%d recovered with commit ts %d, log says %d" tid c
                   cts)
          | Some (Commit_log.Aborted_at _) ->
              add (v "recovery-durability" "t%d committed durably but recovered as aborted" tid)
          | None ->
              add (v "recovery-durability" "t%d committed durably but the engine forgot it" tid))
        exp.Wal_recovery.committed;
      (* No resurrection: losers and aborted transactions stay dead. *)
      List.iter
        (fun (tid, _) ->
          if Commit_log.is_committed clog tid then
            add (v "recovery-atomicity" "t%d aborted durably but recovered as committed" tid))
        exp.Wal_recovery.aborted;
      List.iter
        (fun tid ->
          if Commit_log.is_committed clog tid then
            add
              (v "recovery-atomicity"
                 "t%d had no durable outcome (loser) but recovered as committed" tid))
        exp.Wal_recovery.losers;
      (* No phantom: a committed timestamp the trustworthy log never
         handed out means a fabricated record was replayed. With a
         shared manager the commit log is global, so one shard's
         frontier cannot judge it — the group-level check
         (check_cross_shard_atomicity) applies the max frontier across
         shards instead. *)
      if not st.State.shared_mgr then
        List.iter
          (fun (tid, status) ->
            match status with
            | Commit_log.Committed_at _ when tid >= exp.Wal_recovery.oracle_floor ->
                add
                  (v "recovery-phantom"
                     "t%d is committed in the engine but at/above the log's timestamp frontier %d"
                     tid exp.Wal_recovery.oracle_floor)
            | _ -> ())
          (Commit_log.entries clog);
      (* The recovered in-row image matches the durable one exactly. *)
      (match st.State.inrow_probe with
      | None -> ()
      | Some probe ->
          let image = probe () in
          let by_rid = Hashtbl.create (List.length image) in
          List.iter (fun (rid, value, vs) -> Hashtbl.replace by_rid rid (value, vs)) image;
          List.iter
            (fun (r : Checkpoint.row) ->
              match Hashtbl.find_opt by_rid r.Checkpoint.rid with
              | None ->
                  add (v "recovery-inrow" "r%d has no in-row slot after recovery" r.Checkpoint.rid)
              | Some (value, vs) ->
                  if value <> r.Checkpoint.value || vs <> r.Checkpoint.vs then
                    add
                      (v "recovery-inrow"
                         "r%d recovered as (value=%d, vs=%d) but the log says (value=%d, vs=%d)"
                         r.Checkpoint.rid value vs r.Checkpoint.value r.Checkpoint.vs))
            exp.Wal_recovery.rows);
      (* Surviving segments are back with identity, class, lifecycle
         state and contents; dropped or cut segments stay dead. *)
      List.iter
        (fun (b : Wal_recovery.seg_build) ->
          if b.Wal_recovery.versions <> [] then
            match State.find_segment st b.Wal_recovery.seg_id with
            | None ->
                add
                  (v "recovery-segments" "segment %d survived in the log but was not rebuilt"
                     b.Wal_recovery.seg_id)
            | Some seg ->
                if Vclass.to_string seg.Segment.cls <> b.Wal_recovery.cls then
                  add
                    (v "recovery-segments" "segment %d rebuilt in class %s, log says %s"
                       b.Wal_recovery.seg_id
                       (Vclass.to_string seg.Segment.cls)
                       b.Wal_recovery.cls);
                let hardened = seg.Segment.state = Segment.Hardened in
                if hardened <> b.Wal_recovery.hardened then
                  add
                    (v "recovery-segments" "segment %d rebuilt %s, log says %s"
                       b.Wal_recovery.seg_id
                       (if hardened then "hardened" else "buffered")
                       (if b.Wal_recovery.hardened then "hardened" else "buffered"));
                let live = Segment.live_count seg in
                let logged = List.length b.Wal_recovery.versions in
                if live <> logged then
                  add
                    (v "recovery-segments" "segment %d rebuilt with %d live versions, log says %d"
                       b.Wal_recovery.seg_id live logged))
        exp.Wal_recovery.segments;
      List.iter
        (fun seg_id ->
          match State.find_segment st seg_id with
          | Some seg when seg.Segment.state <> Segment.Cut ->
              add
                (v "recovery-segments"
                   "segment %d was durably dropped/cut but resurrected by recovery" seg_id)
          | _ -> ())
        exp.Wal_recovery.dead_segs;
      (* Frontier and accounting conservativeness. *)
      if Txn_manager.oracle st.State.txns < exp.Wal_recovery.oracle_floor then
        add
          (v "recovery-frontier" "timestamp oracle resumed at %d, below the log frontier %d"
             (Txn_manager.oracle st.State.txns)
             exp.Wal_recovery.oracle_floor);
      if st.State.next_seg_id < exp.Wal_recovery.next_seg_id then
        add
          (v "recovery-frontier" "segment allocator resumed at %d, below the log frontier %d"
             st.State.next_seg_id exp.Wal_recovery.next_seg_id);
      if Wal.records wal < analysis.Wal_recovery.survivors then
        add
          (v "recovery-accounting" "WAL records counter %d below %d surviving frames"
             (Wal.records wal) analysis.Wal_recovery.survivors);
      List.rev !acc @ check_chains d @ check_stats d @ check_store d

(* ------------------------------------------------------------------ *)
(* Continuous prune-soundness audit *)

let origin_name = function `Prune1 -> "1st-prune" | `Prune2 -> "2nd-prune" | `Cut -> "cut"

let install_prune_audit (d : Driver.t) ~on_violation =
  let st : State.t = d in
  let mgr = st.State.txns in
  st.State.prune_audit <-
    Some
      (fun ~now ~origin ~lo ~hi ->
        if lo >= hi then
          on_violation ~now
            (v "prune-soundness" "%s discarded malformed interval (%d, %d)" (origin_name origin)
               lo hi)
        else begin
          (* Definition 3.3 against the live table as it is right now —
             not the driver's zone snapshot. Staleness of the snapshot
             is conservative, so any disagreement is a real unsound
             discard. *)
          let live = Txn_manager.live_begin_ts mgr in
          if not (Prune.dead_spec ~live ~vs:lo ~ve:hi) then
            on_violation ~now
              (v "prune-soundness"
                 "%s discarded a version visible to a live transaction: interval (%d, %d), live inside: %s"
                 (origin_name origin) lo hi
                 (String.concat ","
                    (List.filter_map
                       (fun tb -> if lo < tb && tb < hi then Some (string_of_int tb) else None)
                       live)))
        end)

let remove_prune_audit (d : Driver.t) =
  let st : State.t = d in
  st.State.prune_audit <- None

(* ------------------------------------------------------------------ *)
(* Cross-shard 2PC atomicity *)

let analyze_shard_logs wals =
  List.sort (fun (a, _) (b, _) -> compare a b) wals
  |> List.map (fun (sid, wal) -> (sid, Wal_recovery.analyze ~check_crc:true wal))

let check_cross_shard_atomicity ?clog ?analyses wals =
  (* Honest analysis of every shard's log, with in-doubt transactions
     resolved exactly the way a recovering participant must: a durable
     Coord_commit anywhere in the coordinator's trustworthy prefix (or
     its checkpoint's decision window) means commit; silence means
     presumed abort. Analysis cost is linear in the logs, so a periodic
     sweep that runs several log-level checks should analyze once
     ({!analyze_shard_logs}) and share. *)
  let analyses =
    match analyses with Some a -> a | None -> analyze_shard_logs wals
  in
  let decisions : (int * int, int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (sid, (a : Wal_recovery.analysis)) ->
      (match a.Wal_recovery.checkpoint with
      | Some (_, ck) ->
          List.iter
            (fun (gid, cts) -> Hashtbl.replace decisions (sid, gid) cts)
            ck.Checkpoint.decisions
      | None -> ());
      List.iter
        (fun (r : Wal_record.t) ->
          match r.Wal_record.payload with
          | Wal_record.Coord_commit { gid; cts; _ } ->
              Hashtbl.replace decisions (sid, gid) cts
          | _ -> ())
        a.Wal_recovery.records)
    analyses;
  let resolve ~tid ~coord = Hashtbl.find_opt decisions (coord, tid) in
  let exps =
    List.map (fun (sid, a) -> (sid, a, Wal_recovery.expect ~resolve a)) analyses
  in
  let acc = ref [] in
  let add x = acc := x :: !acc in
  (* Resolved per-shard outcomes, keyed by transaction. *)
  let outcomes : (int, (int * [ `C of int | `A | `L ]) list ref) Hashtbl.t =
    Hashtbl.create 256
  in
  let note tid o =
    match Hashtbl.find_opt outcomes tid with
    | Some l -> l := o :: !l
    | None -> Hashtbl.replace outcomes tid (ref [ o ])
  in
  List.iter
    (fun (sid, _, (e : Wal_recovery.expectation)) ->
      List.iter (fun (tid, cts) -> note tid (sid, `C cts)) e.Wal_recovery.committed;
      List.iter (fun (tid, _) -> note tid (sid, `A)) e.Wal_recovery.aborted;
      List.iter (fun tid -> note tid (sid, `L)) e.Wal_recovery.losers)
    exps;
  (* The headline invariant: no transaction commits on one shard and
     aborts (or stays a rolled-back loser) on another. *)
  Hashtbl.fold (fun tid l acc -> (tid, !l) :: acc) outcomes []
  |> List.sort compare
  |> List.iter (fun (tid, l) ->
         let commits = List.filter_map (function s, `C c -> Some (s, c) | _ -> None) l in
         let aborts = List.filter_map (function s, `A -> Some s | _ -> None) l in
         let losers = List.filter_map (function s, `L -> Some s | _ -> None) l in
         (match (commits, aborts @ losers) with
         | (cs, cts) :: _, d :: _ ->
             add
               (v "cross-shard-atomicity"
                  "t%d committed on shard %d (cts %d) but aborted/lost on shard %d" tid cs cts
                  d)
         | _ -> ());
         match commits with
         | (s0, c0) :: rest ->
             List.iter
               (fun (s, c) ->
                 if c <> c0 then
                   add
                     (v "cross-shard-atomicity"
                        "t%d committed with cts %d on shard %d but cts %d on shard %d" tid c0
                        s0 c s))
               rest
         | [] -> ());
  (* Protocol honesty: a participant may only apply a commit for a
     prepared transaction if the coordinator's decision is durable.
     This is what the skip-coordinator-decision sabotage violates, and
     it holds at every instant of the honest protocol (the decision is
     forced before any participant applies), so it needs no lucky crash
     timing to fire. *)
  List.iter
    (fun (sid, (a : Wal_recovery.analysis), _) ->
      let prep : (int, int) Hashtbl.t = Hashtbl.create 8 in
      (match a.Wal_recovery.checkpoint with
      | Some (_, ck) ->
          List.iter (fun (tid, coord) -> Hashtbl.replace prep tid coord) ck.Checkpoint.prepared
      | None -> ());
      List.iter
        (fun (r : Wal_record.t) ->
          match r.Wal_record.payload with
          | Wal_record.Prepare { tid; coord; _ } -> Hashtbl.replace prep tid coord
          | Wal_record.Txn_commit { tid; _ } -> (
              match Hashtbl.find_opt prep tid with
              | Some coord when not (Hashtbl.mem decisions (coord, tid)) ->
                  add
                    (v "2pc-decision-missing"
                       "shard %d applied a commit for prepared t%d with no durable decision at coordinator shard %d"
                       sid tid coord)
              | _ -> ())
          | _ -> ())
        a.Wal_recovery.records)
    exps;
  (* Group-level recovery-phantom check (the shared-manager form of the
     per-shard frontier check): immediately after a group restart, no
     committed timestamp may sit at or above the max durable frontier. *)
  (match clog with
  | None -> ()
  | Some clog ->
      let max_floor =
        List.fold_left
          (fun m (_, _, (e : Wal_recovery.expectation)) ->
            max m e.Wal_recovery.oracle_floor)
          0 exps
      in
      List.iter
        (fun (tid, status) ->
          match status with
          | Commit_log.Committed_at _ when tid >= max_floor ->
              add
                (v "recovery-phantom"
                   "t%d is committed in the engine but at/above every shard's durable frontier %d"
                   tid max_floor)
          | _ -> ())
        (Commit_log.entries clog));
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Replicated shards: zero committed loss *)

let check_no_committed_loss ?analyses ~acked wals =
  (* The contract of a quorum-acknowledged commit: once the client was
     told "committed", every node-kill/failover schedule must leave the
     transaction committed on every participant's surviving log. The
     audit is log-only and honest — the same analysis a recovering
     shard runs, with in-doubt entries resolved against the durable
     decision table — checked against the client-visible acked ledger.
     An ack the logs cannot justify is a loss, whether it came from an
     ack-before-replicate lie or from a fenced stale primary's
     fabricated ledger entries. *)
  let analyses =
    match analyses with Some a -> a | None -> analyze_shard_logs wals
  in
  (* Re-anchor each log at its last checkpoint NOT written by a
     failover restart. A promotion's recovery checkpoint snapshots the
     global oracle frontier an instant after the device was adopted —
     taken at face value it would instantly archive (and so hide)
     exactly the commits a dishonest replication path can lose.
     Anchoring before the [Promote] frame replays the adopted suffix
     instead, so an acked commit missing from that suffix stays
     demandable until the next ordinary checkpoint absorbs the epoch —
     and the sweep grid visits that checkpoint's instant first. *)
  let anchored =
    List.map
      (fun (sid, (a : Wal_recovery.analysis)) ->
        let anchor = ref None and promoted = ref false in
        List.iter
          (fun (r : Wal_record.t) ->
            match r.Wal_record.payload with
            | Wal_record.Promote _ -> promoted := true
            | Wal_record.Ckpt_end { snapshot } ->
                if !promoted then promoted := false
                else (
                  match Checkpoint.of_json snapshot with
                  | Ok ck -> anchor := Some (r.Wal_record.lsn, ck)
                  | Error _ -> ())
            | _ -> ())
          a.Wal_recovery.records;
        (sid, { a with Wal_recovery.checkpoint = !anchor }))
      analyses
  in
  let decisions : (int * int, int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (sid, (a : Wal_recovery.analysis)) ->
      (match a.Wal_recovery.checkpoint with
      | Some (_, ck) ->
          List.iter
            (fun (gid, cts) -> Hashtbl.replace decisions (sid, gid) cts)
            ck.Checkpoint.decisions
      | None -> ());
      List.iter
        (fun (r : Wal_record.t) ->
          match r.Wal_record.payload with
          | Wal_record.Coord_commit { gid; cts; _ } ->
              Hashtbl.replace decisions (sid, gid) cts
          | _ -> ())
        a.Wal_recovery.records)
    analyses;
  let resolve ~tid ~coord = Hashtbl.find_opt decisions (coord, tid) in
  let committed_on : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  (* Per-log answerability horizon: the fuzzy checkpoint keeps only a
     bounded commit-log window, so outcomes whose commit timestamp
     predates the snapshot's oracle frontier may legitimately be
     archived out of the analysis. A commit timestamp at or above the
     frontier was drawn after the snapshot was captured, so its frame
     is strictly after the checkpoint record and must survive in the
     log — those are the entries the oracle is entitled to demand. *)
  let horizon : (int, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (sid, (a : Wal_recovery.analysis)) ->
      let e = Wal_recovery.expect ~resolve a in
      let tbl = Hashtbl.create 256 in
      List.iter (fun (tid, _) -> Hashtbl.replace tbl tid ()) e.Wal_recovery.committed;
      List.iter
        (fun (tid, _) -> Hashtbl.replace tbl tid ())
        e.Wal_recovery.resolved_commits;
      Hashtbl.replace committed_on sid tbl;
      Hashtbl.replace horizon sid
        (match a.Wal_recovery.checkpoint with
        | Some (_, ck) -> ck.Checkpoint.oracle_next
        | None -> 0))
    anchored;
  let acc = ref [] in
  List.iter
    (fun (tid, cts, parts) ->
      List.iter
        (fun sid ->
          match Hashtbl.find_opt committed_on sid with
          | None ->
              acc :=
                v "no-committed-loss"
                  "t%d was acknowledged on shard %d but no such shard log exists" tid sid
                :: !acc
          | Some tbl ->
              let h = Option.value ~default:0 (Hashtbl.find_opt horizon sid) in
              if cts >= h && not (Hashtbl.mem tbl tid) then
                acc :=
                  v "no-committed-loss"
                    "t%d (cts=%d) was acknowledged to the client with participant shard %d, but the surviving logs do not commit it there"
                    tid cts sid
                  :: !acc)
        parts)
    (List.sort compare acked);
  List.rev !acc
