type violation = { at : Clock.time; invariant : string; detail : string }

type t = {
  max_details : int;
  mutable stored : violation list; (* newest first *)
  mutable stored_count : int;
  mutable total : int;
  mutable checks : int;
  mutable injected : (string * int) list; (* assoc, insertion order *)
  mutable gauges : (string * int) list; (* end-of-run counters, assoc *)
}

let create ?(max_details = 64) () =
  {
    max_details;
    stored = [];
    stored_count = 0;
    total = 0;
    checks = 0;
    injected = [];
    gauges = [];
  }

let record t ~at ~invariant ~detail =
  t.total <- t.total + 1;
  Metrics.bump "fault.violations";
  if Trace.on () then
    Trace.instant Trace.Fault "violation" ~at
      [ ("invariant", Trace.S invariant); ("detail", Trace.S detail) ];
  if t.stored_count < t.max_details then begin
    t.stored <- { at; invariant; detail } :: t.stored;
    t.stored_count <- t.stored_count + 1
  end

let note_check t =
  t.checks <- t.checks + 1;
  Metrics.bump "fault.checks"

let note_fault t name =
  Metrics.bump "fault.injected";
  (match List.assoc_opt name t.injected with
  | Some n -> t.injected <- (name, n + 1) :: List.remove_assoc name t.injected
  | None -> t.injected <- (name, 1) :: t.injected)

let set_gauge t name value = t.gauges <- (name, value) :: List.remove_assoc name t.gauges
let gauge t name = List.assoc_opt name t.gauges
let gauges t = List.sort (fun (a, _) (b, _) -> compare a b) t.gauges

let violations t = List.rev t.stored
let violation_count t = t.total
let checks_run t = t.checks
let faults_injected t = List.sort (fun (a, _) (b, _) -> compare a b) t.injected
let ok t = t.total = 0

let pp fmt t =
  Format.fprintf fmt "@[<v>faults:";
  if t.injected = [] then Format.fprintf fmt " none"
  else
    List.iter (fun (name, n) -> Format.fprintf fmt " %s=%d" name n) (faults_injected t);
  if t.gauges <> [] then begin
    Format.fprintf fmt "@ counters:";
    List.iter (fun (name, v) -> Format.fprintf fmt " %s=%d" name v) (gauges t)
  end;
  Format.fprintf fmt "@ checks=%d violations=%d@ " t.checks t.total;
  List.iter
    (fun v ->
      Format.fprintf fmt "VIOLATION t=%a [%s] %s@ " Clock.pp v.at v.invariant v.detail)
    (violations t);
  if t.total > t.stored_count then
    Format.fprintf fmt "... %d further violations elided@ " (t.total - t.stored_count);
  Format.fprintf fmt "@]"

let to_string t = Format.asprintf "%a" pp t
