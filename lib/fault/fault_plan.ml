type action =
  | Crash
  | Abort_txn
  | Wal_error
  | Flush_fail
  | Evict_storm
  | Space_storm
  | Wal_bitflip
  | Cleaner_stall
  | Llt_zombie
  | Collab_delay
  | Node_kill
  | Node_revive

let action_name = function
  | Crash -> "crash"
  | Abort_txn -> "abort"
  | Wal_error -> "wal-error"
  | Flush_fail -> "flush-fail"
  | Evict_storm -> "evict-storm"
  | Space_storm -> "space-storm"
  | Wal_bitflip -> "wal-bitflip"
  | Cleaner_stall -> "cleaner-stall"
  | Llt_zombie -> "llt-zombie"
  | Collab_delay -> "collab-delay"
  | Node_kill -> "node-kill"
  | Node_revive -> "node-revive"

let all_actions =
  [
    Crash;
    Abort_txn;
    Wal_error;
    Flush_fail;
    Evict_storm;
    Space_storm;
    Wal_bitflip;
    Cleaner_stall;
    Llt_zombie;
    Collab_delay;
    Node_kill;
    Node_revive;
  ]

type event = { at : Clock.time; action : action }

(* One Poisson arrival process. [next] is the pre-drawn time of the next
   injection; advancing draws the following inter-arrival gap from the
   process's private RNG so the sequence is a pure function of the
   seed. *)
type process = {
  p_action : action;
  rate : float; (* injections per simulated second *)
  rng : Rng.t;
  mutable next : Clock.time;
}

type t = {
  plan_seed : int;
  mutable events : event list; (* pending, sorted by [at] *)
  processes : process list;
  check_period : Clock.time;
  rates : (action * float) list; (* for pp, declaration order *)
  crash_points : int list; (* crash-at-LSN schedule, ascending *)
  torn_tail : bool;
}

let gap process =
  (* Exponential inter-arrival: -ln(1-u)/rate seconds, floored to 1 ns
     so the process always advances. *)
  let u = Rng.float process.rng in
  max 1 (Clock.seconds (-.log (1. -. u) /. process.rate))

let make_process ~seed action rate =
  if rate < 0. then invalid_arg "Fault_plan: negative rate";
  if rate = 0. then None
  else begin
    let rng = Rng.create seed in
    let p = { p_action = action; rate; rng; next = 0 } in
    p.next <- gap p;
    Some p
  end

let create ?(seed = 0) ?(events = []) ?(crash_rate = 0.) ?(abort_rate = 0.)
    ?(wal_error_rate = 0.) ?(flush_fail_rate = 0.) ?(evict_storm_rate = 0.)
    ?(space_storm_rate = 0.) ?(wal_bitflip_rate = 0.) ?(cleaner_stall_rate = 0.)
    ?(llt_zombie_rate = 0.) ?(collab_delay_rate = 0.) ?(node_kill_rate = 0.)
    ?(node_revive_rate = 0.) ?(crash_points = []) ?(torn_tail = false)
    ?(check_period = Clock.ms 100) () =
  (* Newer actions are drawn strictly after the older ones so plans that
     do not use them keep the exact sub-seed sequence (and therefore
     injection times) they had before those actions existed: [Wal_bitflip]
     after the original six, then the liveness trio. Append only. *)
  let rates =
    [
      (Crash, crash_rate);
      (Abort_txn, abort_rate);
      (Wal_error, wal_error_rate);
      (Flush_fail, flush_fail_rate);
      (Evict_storm, evict_storm_rate);
      (Space_storm, space_storm_rate);
      (Wal_bitflip, wal_bitflip_rate);
      (Cleaner_stall, cleaner_stall_rate);
      (Llt_zombie, llt_zombie_rate);
      (Collab_delay, collab_delay_rate);
      (Node_kill, node_kill_rate);
      (Node_revive, node_revive_rate);
    ]
  in
  (* Derive one independent stream per process from the plan seed. *)
  let master = Rng.create seed in
  let processes =
    List.filter_map
      (fun (action, rate) ->
        let sub_seed = Int64.to_int (Rng.next_int64 master) in
        make_process ~seed:sub_seed action rate)
      rates
  in
  {
    plan_seed = seed;
    events = List.sort (fun a b -> compare (a.at, a.action) (b.at, b.action)) events;
    processes;
    check_period;
    rates;
    crash_points = List.sort_uniq compare (List.filter (fun p -> p > 0) crash_points);
    torn_tail;
  }

let none = create ()

let random ?(crash_points = []) ?(torn_tail = false) ?(stalls = false)
    ?(zombies = false) ?(crashes = true) ~seed () =
  let rng = Rng.create (seed lxor 0x6661756c74) in
  (* Keep crashes rare relative to the finer-grained faults: a crash
     wipes the state the other injections are stressing. The rate draws
     happen in this exact order regardless of the crash-point extras.
     Historically the rates were drawn inline at the [create] call site,
     which OCaml evaluates right-to-left — so the stream order is
     space-storm first and crash last. The explicit bindings freeze that
     order; the gated liveness draws come strictly after, so plans
     without [stalls]/[zombies] are unchanged from before they existed. *)
  let draw lo hi = lo +. (Rng.float rng *. (hi -. lo)) in
  let space_storm_rate = draw 0.5 3. in
  let evict_storm_rate = draw 0.5 4. in
  let flush_fail_rate = draw 5. 40. in
  let wal_error_rate = draw 1. 10. in
  let abort_rate = draw 2. 20. in
  let crash_rate = draw 0.05 0.3 in
  let cleaner_stall_rate = if stalls then draw 0.8 2.5 else 0. in
  let collab_delay_rate = if stalls then draw 1. 4. else 0. in
  let llt_zombie_rate = if zombies then draw 0.5 1.5 else 0. in
  (* [crashes:false] zeroes the crash arrivals *after* the draw, so every
     other process keeps the exact sub-seed (and injection times) of the
     same-seed plan with crashes — the differential harness compares
     Sim/Domains runs under crash-free variants of the same plans. *)
  let crash_rate = if crashes then crash_rate else 0. in
  let crash_points = if crashes then crash_points else [] in
  create ~seed ~crash_rate ~abort_rate ~wal_error_rate ~flush_fail_rate
    ~evict_storm_rate ~space_storm_rate ~cleaner_stall_rate ~llt_zombie_rate
    ~collab_delay_rate ~crash_points ~torn_tail ()

(* Seeded network-fault config for the shard fabric. The partition
   schedule is drawn from a stream forked off [seed] (distinct tweak
   from [random]'s), so a campaign can pair a process-fault plan and a
   net config from one seed without the draws interfering. Windows are
   placed in the first ~70% of the horizon and always heal strictly
   before it, so bounded-lag clocks get room to run. *)
let random_net ?(loss = 0.1) ?(dup = 0.05) ?(delay_us = 150) ?(partitions = 1)
    ~shards ~horizon ~seed () =
  if shards < 2 then invalid_arg "Fault_plan.random_net: need at least two shards";
  if horizon <= 0 then invalid_arg "Fault_plan.random_net: need a positive horizon";
  if partitions < 0 then invalid_arg "Fault_plan.random_net: negative partition count";
  let rng = Rng.create (seed lxor 0x6e6574fa) in
  let parts =
    List.init partitions (fun i ->
        (* Isolate a seeded nonempty strict subset of the shard
           endpoints (the coordinator service endpoint stays on the
           majority side, so decisions remain reachable from there). *)
        let k = 1 + Rng.int rng (max 1 (shards - 1)) in
        let k = min k (shards - 1) in
        let start = Rng.int rng shards in
        let isolated = List.init k (fun j -> (start + j) mod shards) in
        let span = max 1 (horizon * 7 / 10) in
        let from_t = 1 + Rng.int rng span in
        let width = 1 + Rng.int rng (max 1 (horizon / 5)) in
        let heal_t = min (from_t + width) (horizon - 1) in
        let heal_t = max heal_t (from_t + 1) in
        { Net_fault.p_name = Printf.sprintf "p%d" i; isolated; from_t; heal_t })
  in
  Net_fault.make ~loss ~dup ~max_delay:(Clock.us delay_us) ~partitions:parts ~seed ()

(* Seeded whole-node fault plan for the replication layer. Its own seed
   tweak keeps the arrival draws independent of both [random] (process
   faults) and [random_net] (fabric faults) built from the same
   campaign seed. Revives arrive a bit faster than kills so the
   one-dead-per-group budget keeps freeing up. *)
let random_nodes ~seed () =
  let rng = Rng.create (seed lxor 0x6e6f6465) in
  let draw lo hi = lo +. (Rng.float rng *. (hi -. lo)) in
  let node_kill_rate = draw 2. 8. in
  let node_revive_rate = draw 4. 12. in
  create ~seed ~node_kill_rate ~node_revive_rate ()

let seed t = t.plan_seed
let check_period t = t.check_period
let crash_points t = t.crash_points
let torn_tail t = t.torn_tail

let poll t ~now =
  let due_events = ref [] in
  let rec take = function
    | e :: rest when e.at <= now ->
        due_events := e.action :: !due_events;
        take rest
    | rest -> rest
  in
  t.events <- take t.events;
  let arrivals = ref [] in
  List.iter
    (fun p ->
      while p.next <= now do
        arrivals := p.p_action :: !arrivals;
        p.next <- p.next + gap p
      done)
    t.processes;
  List.rev !due_events @ List.rev !arrivals

let pp fmt t =
  Format.fprintf fmt "@[<h>seed=%d" t.plan_seed;
  List.iter
    (fun (action, rate) ->
      if rate > 0. then Format.fprintf fmt " %s=%.3g/s" (action_name action) rate)
    t.rates;
  Format.fprintf fmt "@]"
