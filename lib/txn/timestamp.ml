type t = int

let infinity = max_int

type oracle = { mutable counter : int }

let oracle () = { counter = 1 }

let next o =
  let v = o.counter in
  o.counter <- o.counter + 1;
  v

let current o = o.counter
let advance_to o floor = if floor > o.counter then o.counter <- floor
