(** Logical timestamps.

    A single monotone oracle hands out transaction identifiers; a
    transaction's id doubles as its begin timestamp (the MySQL/PostgreSQL
    convention the paper builds its read-view formulation on, §3.1).
    Uniqueness of timestamps is what makes the strict inequalities of
    Theorem 3.5 unambiguous. *)

type t = int

val infinity : t
(** End timestamp of the current record version [v^{r,0}] (half-open
    visibility, "valid time" in Hekaton). *)

type oracle

val oracle : unit -> oracle

val next : oracle -> t
(** Strictly increasing; starts at 1. *)

val current : oracle -> t
(** The value the next call to [next] will return — the reproduction's
    proxy for the paper's current time [C^T]. *)

val advance_to : oracle -> t -> unit
(** Ratchet the oracle so the next timestamp is at least [floor] — the
    restart path uses it to jump past every timestamp in the recovered
    log (monotonicity must survive a crash). Never moves backwards. *)
