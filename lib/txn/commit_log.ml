type status = Committed_at of Timestamp.t | Aborted_at of Timestamp.t
type t = { table : (Timestamp.t, status) Hashtbl.t }

let create () = { table = Hashtbl.create 1024 }

let record t ~tid status =
  if Hashtbl.mem t.table tid then invalid_arg "Commit_log.record: duplicate status";
  Hashtbl.replace t.table tid status

let override t ~tid status = Hashtbl.replace t.table tid status
let status t tid = Hashtbl.find_opt t.table tid

let is_committed t tid =
  match Hashtbl.find_opt t.table tid with
  | Some (Committed_at _) -> true
  | Some (Aborted_at _) | None -> false

let commit_ts_of t tid =
  match Hashtbl.find_opt t.table tid with
  | Some (Committed_at cts) -> Some cts
  | Some (Aborted_at _) | None -> None

let finished t = Hashtbl.length t.table
let reset t = Hashtbl.reset t.table

let entries t =
  Hashtbl.fold (fun tid status acc -> (tid, status) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
