(* Per-transaction progress leases (DESIGN §4e).

   A lease is not a lifetime cap — LLTs are the phenomenon under study
   and may run for the whole experiment. It is an *idle* budget: a
   transaction that has made no read/write progress for longer than its
   lease is a zombie candidate. The registry is plain bookkeeping (no
   randomness, no clock reads of its own), so arming it keeps a run a
   pure function of the seed. *)

type kind = Short | Llt | Primary

let kind_name = function Short -> "short" | Llt -> "llt" | Primary -> "primary"

type config = { short_lease : Clock.time; llt_lease : Clock.time }

let default_config = { short_lease = Clock.ms 20; llt_lease = Clock.ms 200 }

type entry = {
  kind : kind;
  lease : Clock.time;
  granted_at : Clock.time;
  mutable last_progress : Clock.time;
}

type cancel = {
  c_tid : Timestamp.t;
  c_at : Clock.time;
  c_idle : Clock.time;
  c_lease : Clock.time;
}

type t = {
  config : config;
  entries : (Timestamp.t, entry) Hashtbl.t;
  mutable cancels : cancel list; (* newest first *)
  mutable cancel_count : int;
  mutable grants : int;
}

let create ?(config = default_config) () =
  if config.short_lease <= 0 || config.llt_lease <= 0 then
    invalid_arg "Lease.create: leases must be positive";
  { config; entries = Hashtbl.create 64; cancels = []; cancel_count = 0; grants = 0 }

let config t = t.config

let grant t ~tid ~kind ~now =
  let lease =
    match kind with
    | Short -> t.config.short_lease
    | Llt -> t.config.llt_lease
    | Primary -> invalid_arg "Lease.grant: primary leases take an explicit duration"
  in
  Hashtbl.replace t.entries tid { kind; lease; granted_at = now; last_progress = now };
  t.grants <- t.grants + 1

let grant_primary t ~tid ~lease ~now =
  if lease <= 0 then invalid_arg "Lease.grant_primary: lease must be positive";
  Hashtbl.replace t.entries tid { kind = Primary; lease; granted_at = now; last_progress = now };
  t.grants <- t.grants + 1

let note_progress t ~tid ~now =
  match Hashtbl.find_opt t.entries tid with
  | Some e -> e.last_progress <- max e.last_progress now
  | None -> ()

let release t ~tid = Hashtbl.remove t.entries tid
let live t = Hashtbl.length t.entries
let grants t = t.grants

let lease_of t ~tid =
  match Hashtbl.find_opt t.entries tid with Some e -> Some e.lease | None -> None

let idle t ~tid ~now =
  match Hashtbl.find_opt t.entries tid with
  | Some e -> Some (max 0 (now - e.last_progress))
  | None -> None

let expired t ~now =
  List.sort compare
    (Hashtbl.fold
       (fun tid e acc -> if now - e.last_progress > e.lease then tid :: acc else acc)
       t.entries [])

let note_cancel t ~tid ~now =
  match Hashtbl.find_opt t.entries tid with
  | None -> ()
  | Some e ->
      t.cancels <-
        { c_tid = tid; c_at = now; c_idle = max 0 (now - e.last_progress); c_lease = e.lease }
        :: t.cancels;
      t.cancel_count <- t.cancel_count + 1

let cancels t = List.rev t.cancels
let cancel_count t = t.cancel_count
