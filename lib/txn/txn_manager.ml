type t = {
  ts_oracle : Timestamp.oracle;
  live : (Timestamp.t, Txn.t) Hashtbl.t;
  log : Commit_log.t;
  mutable started : int;
  mutable committed : int;
  mutable aborted : int;
  mutable avg_duration : float; (* ns, EWMA *)
}

let create () =
  {
    ts_oracle = Timestamp.oracle ();
    live = Hashtbl.create 256;
    log = Commit_log.create ();
    started = 0;
    committed = 0;
    aborted = 0;
    avg_duration = 0.;
  }

let oracle t = Timestamp.current t.ts_oracle

let live_begin_ts t =
  Hashtbl.fold (fun ts _ acc -> ts :: acc) t.live [] |> List.sort compare

let begin_txn t ~now =
  let actives = live_begin_ts t in
  let tid = Timestamp.next t.ts_oracle in
  let view = Read_view.make ~creator:tid ~actives ~high:tid in
  let txn =
    {
      Txn.tid;
      begin_time = now;
      view;
      state = Txn.Active;
      commit_ts = None;
      reads = 0;
      writes = 0;
    }
  in
  Hashtbl.replace t.live tid txn;
  t.started <- t.started + 1;
  Metrics.bump "txn.begins";
  txn

let note_duration t dur =
  let dur = float_of_int dur in
  if t.avg_duration = 0. then t.avg_duration <- dur
  else t.avg_duration <- (0.95 *. t.avg_duration) +. (0.05 *. dur)

let finish t (txn : Txn.t) =
  if not (Txn.is_active txn) then invalid_arg "Txn_manager: transaction not active";
  Hashtbl.remove t.live txn.tid

let commit t (txn : Txn.t) ~now =
  finish t txn;
  let commit_ts = Timestamp.next t.ts_oracle in
  txn.state <- Txn.Committed;
  txn.commit_ts <- Some commit_ts;
  Commit_log.record t.log ~tid:txn.tid (Commit_log.Committed_at commit_ts);
  note_duration t (Txn.age txn ~now);
  t.committed <- t.committed + 1;
  Metrics.bump "txn.commits";
  Metrics.observe ~bucket_width:100 "txn.duration_us" (Txn.age txn ~now / 1_000)

let abort t (txn : Txn.t) ~now =
  finish t txn;
  let ts = Timestamp.next t.ts_oracle in
  txn.state <- Txn.Aborted;
  (* A failover may already have recorded this tid as a recovery loser
     while the worker still held the handle; the durable outcome wins
     and the worker's abort just retires the live entry. *)
  if Commit_log.status t.log txn.tid = None then
    Commit_log.record t.log ~tid:txn.tid (Commit_log.Aborted_at ts);
  ignore now;
  t.aborted <- t.aborted + 1;
  Metrics.bump "txn.aborts"

let rollback_unreplicated t ~tid =
  (* Promotion-time compensation: the old primary decided commit locally
     but died before the decision reached a quorum, so on the promoted
     timeline the transaction never committed. Flip the stale status to
     aborted with a fresh timestamp so clog and WAL agree again. *)
  match Commit_log.status t.log tid with
  | Some (Commit_log.Committed_at _) ->
      let ats = Timestamp.next t.ts_oracle in
      Commit_log.override t.log ~tid (Commit_log.Aborted_at ats);
      t.committed <- t.committed - 1;
      t.aborted <- t.aborted + 1;
      Some ats
  | Some (Commit_log.Aborted_at _) | None -> None


let reset_for_recovery t =
  Hashtbl.reset t.live;
  Commit_log.reset t.log

let crash_recover ?(reset = true) t ~committed ~aborted ~losers ~oracle_floor =
  (* Lost memory is not consulted: the live table is wiped and the
     commit log rebuilt from what the recovered WAL proves. Shards
     sharing one manager recover with [~reset:false] — the group wipes
     once up front and each shard merges its outcomes in, first outcome
     winning across shards exactly as it does within one log. *)
  if reset then reset_for_recovery t;
  let restore status (tid, ts) =
    (* First outcome wins: a sabotaged replay can fabricate conflicting
       outcomes, and recovery must degrade into a state the invariant
       checker can inspect rather than raise. *)
    if Commit_log.status t.log tid = None then Commit_log.record t.log ~tid (status ts)
  in
  List.iter (restore (fun ts -> Commit_log.Committed_at ts)) committed;
  List.iter (restore (fun ts -> Commit_log.Aborted_at ts)) aborted;
  Timestamp.advance_to t.ts_oracle oracle_floor;
  (* Losers: began, no durable outcome — rolled back with a fresh abort
     timestamp, returned so the engine can log the compensating abort
     records. *)
  List.filter_map
    (fun tid ->
      if Commit_log.status t.log tid = None then begin
        let ats = Timestamp.next t.ts_oracle in
        Commit_log.record t.log ~tid (Commit_log.Aborted_at ats);
        t.aborted <- t.aborted + 1;
        Some (tid, ats)
      end
      else None)
    losers

let commit_log t = t.log
let live_count t = Hashtbl.length t.live

let live_txns_sorted t =
  Hashtbl.fold (fun _ txn acc -> txn :: acc) t.live []
  |> List.sort (fun (a : Txn.t) (b : Txn.t) -> compare a.tid b.tid)

let live_views t = List.map (fun (txn : Txn.t) -> txn.Txn.view) (live_txns_sorted t)

let oldest_active t =
  match live_begin_ts t with [] -> None | ts :: _ -> Some ts

let oldest_visible_horizon t =
  List.fold_left
    (fun acc view -> min acc (Read_view.oldest_visible_horizon view))
    (oracle t) (live_views t)

let shed_candidates t ~now ~min_age =
  live_txns_sorted t |> List.filter (fun txn -> Txn.age txn ~now > min_age)

let llt_views t ~now ~delta_llt =
  live_txns_sorted t
  |> List.filter (fun txn -> Txn.age txn ~now > delta_llt)
  |> List.map (fun (txn : Txn.t) -> txn.Txn.view)

let avg_txn_duration t = int_of_float t.avg_duration
let started t = t.started
let committed t = t.committed
let aborted t = t.aborted
