(** Live-transaction table.

    The engine-shared structure the paper builds dead zones from: MySQL's
    [trx_sys->mvcc] list / PostgreSQL's proc array (§3.3, §4.3).
    Provides begin/commit/abort, read-view construction, the oldest-active
    boundary (the vanilla GC criterion), and LLT identification by age. *)

type t

val create : unit -> t
val oracle : t -> Timestamp.t
(** Current value of the timestamp oracle (proxy for [C^T]). *)

val begin_txn : t -> now:Clock.time -> Txn.t
val commit : t -> Txn.t -> now:Clock.time -> unit
(** Assigns a commit timestamp, records it in the commit log and removes
    the transaction from the live table. Raises [Invalid_argument] if the
    transaction is not active. *)

val abort : t -> Txn.t -> now:Clock.time -> unit
(** Roll the transaction back and retire it from the live table. If a
    failover already recorded a durable outcome for this tid (promotion
    treats un-replicated open transactions as recovery losers), that
    first outcome is kept and only the live entry is retired. *)

val rollback_unreplicated : t -> tid:Timestamp.t -> Timestamp.t option
(** Promotion-path compensation: if [tid] is recorded committed but the
    decision never reached a replication quorum, flip it to aborted at a
    fresh timestamp and return that timestamp so the caller can log the
    compensating abort record. [None] if the tid is not recorded
    committed (nothing to compensate). Only the replica promotion fixup
    may call this. *)

val reset_for_recovery : t -> unit
(** Wipe the live table and commit log without restoring anything — the
    shard group calls this once before letting each shard merge its
    recovered outcomes in via [crash_recover ~reset:false]. *)

val crash_recover :
  ?reset:bool ->
  t ->
  committed:(Timestamp.t * Timestamp.t) list ->
  aborted:(Timestamp.t * Timestamp.t) list ->
  losers:Timestamp.t list ->
  oracle_floor:Timestamp.t ->
  (Timestamp.t * Timestamp.t) list
(** Restart path: wipe the live table ([~reset], default true; shards
    sharing one manager pass [false] and merge), rebuild the commit log
    from the recovered outcomes, ratchet the oracle past every recovered
    timestamp, then roll back each loser by recording an abort at a
    fresh timestamp. First outcome wins on conflicting restores — within
    one log and across shards alike. Returns the [(tid, abort_ts)] pairs
    so the caller can write the compensating abort records to the log. *)

val commit_log : t -> Commit_log.t
val live_count : t -> int
val live_begin_ts : t -> Timestamp.t list
(** Sorted ascending. *)

val live_views : t -> Read_view.t list
(** Read views of all live transactions, ascending by creator ts. *)

val oldest_active : t -> Timestamp.t option
val oldest_visible_horizon : t -> Timestamp.t
(** Versions with [ve] below this are invisible to every live view —
    the vanilla purge/vacuum boundary. Equals the oracle when no
    transaction is live. *)

val shed_candidates : t -> now:Clock.time -> min_age:Clock.time -> Txn.t list
(** Live transactions older than [min_age], oldest begin timestamp
    first — the victim order of the governor's snapshot-too-old policy
    (shed the most harmful pin first). *)

val llt_views : t -> now:Clock.time -> delta_llt:Clock.time -> Read_view.t list
(** Views of live transactions whose age exceeds [delta_llt] — the
    classifier's notion of "known LLTs". A transaction younger than the
    threshold is invisible here even if it will live long: that gap is
    the paper's vulnerability window. *)

val avg_txn_duration : t -> Clock.time
(** Exponentially-weighted average duration of committed transactions
    (basis for choosing [delta_llt] as "a multiple of an average
    transaction length"). Zero until the first commit. *)

val started : t -> int
val committed : t -> int
val aborted : t -> int
