(** Commit log — the analogue of PostgreSQL's [pg_xact] (§4.2).

    Records the final status of every finished transaction so that loser
    transactions can be identified directly, which is the property that
    lets vDriver drop the engine's duplicate undo copies once the owner
    commits. *)

type status = Committed_at of Timestamp.t | Aborted_at of Timestamp.t
type t

val create : unit -> t
val record : t -> tid:Timestamp.t -> status -> unit
(** Raises [Invalid_argument] if [tid] already has a status. *)

val override : t -> tid:Timestamp.t -> status -> unit
(** Replace (or create) a status unconditionally. Only the replica
    promotion path may use this: a primary killed after deciding
    locally but before quorum-replicating leaves a stale [Committed_at]
    entry that the promoted timeline — on which the transaction never
    happened — must flip back to aborted. *)

val status : t -> Timestamp.t -> status option

val is_committed : t -> Timestamp.t -> bool
(** Whether the transaction with this begin timestamp committed. *)

val commit_ts_of : t -> Timestamp.t -> Timestamp.t option
(** The commit timestamp of the transaction that began at the given
    timestamp; [None] if it aborted or is still live. *)

val finished : t -> int
(** Number of transactions with a recorded status. *)

val reset : t -> unit
(** Forget everything — the restart path rebuilds the log from the
    recovered WAL rather than trusting lost in-memory state. *)

val entries : t -> (Timestamp.t * status) list
(** All recorded outcomes, sorted by begin timestamp — checkpointing
    snapshots (a window of) these. *)
