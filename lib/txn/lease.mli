(** Per-transaction progress leases for zombie-LLT containment.

    A lease bounds {e idleness}, not lifetime: LLTs legitimately run
    for the whole experiment, so an LLT gets a long lease and a short
    transaction a short one (both derived from the experiment config by
    the runner), and only a transaction that made {b no read/write
    progress} for longer than its lease becomes a zombie candidate. The
    watchdog cancels a candidate only if it additionally pins
    otherwise-dead versions ({!Driver.pins_dead_interval}), and always
    cooperatively — through the workload's existing forced-abort and
    backoff path, never mid-operation.

    Every cancellation is journalled with the victim's idle time and
    lease so the [no-false-kill] invariant
    ({!Invariant.check_no_false_kill}) can replay the decisions: the
    watchdog must never have cancelled a transaction that made progress
    within its lease. *)

type kind = Short | Llt | Primary

val kind_name : kind -> string

type config = { short_lease : Clock.time; llt_lease : Clock.time }

val default_config : config
(** 20 ms short, 200 ms LLT. *)

type cancel = {
  c_tid : Timestamp.t;
  c_at : Clock.time;  (** when the cancel was recorded *)
  c_idle : Clock.time;  (** time since the victim's last progress *)
  c_lease : Clock.time;  (** the lease it was judged against *)
}

type t

val create : ?config:config -> unit -> t
(** Raises [Invalid_argument] on non-positive leases. *)

val config : t -> config

val grant : t -> tid:Timestamp.t -> kind:kind -> now:Clock.time -> unit
(** Start (or restart) a lease for [tid]; progress starts at [now].
    Raises for [Primary] — primary leases take an explicit duration
    through {!grant_primary}. *)

val grant_primary : t -> tid:Timestamp.t -> lease:Clock.time -> now:Clock.time -> unit
(** Start (or renew) a {e primary authority} lease: the replication
    layer keys these by shard id rather than transaction id. A live
    primary renews by {!note_progress} heartbeats; heartbeat loss past
    [lease] makes the shard promotable via {!expired}, and the old
    holder's authority is fenced at promotion. Raises on a
    non-positive [lease]. *)

val note_progress : t -> tid:Timestamp.t -> now:Clock.time -> unit
(** Record read/write progress; no-op for unknown tids. *)

val release : t -> tid:Timestamp.t -> unit
(** Drop the lease (commit, abort, give-up, crash-drop). *)

val live : t -> int
val grants : t -> int
val lease_of : t -> tid:Timestamp.t -> Clock.time option
val idle : t -> tid:Timestamp.t -> now:Clock.time -> Clock.time option

val expired : t -> now:Clock.time -> Timestamp.t list
(** Transactions idle past their lease, ascending by tid. These are the
    zombie {e candidates}; the pinning test is the caller's job. *)

val note_cancel : t -> tid:Timestamp.t -> now:Clock.time -> unit
(** Journal a watchdog cancellation of [tid] (idle time and lease are
    snapshotted from the live entry). Call {e before} the kill releases
    the lease; no-op if the lease is already gone. *)

val cancels : t -> cancel list
(** Oldest first. *)

val cancel_count : t -> int
