type outcome = Sleep_until of Clock.time | Finished

type proc = {
  name : string;
  seq : int; (* registration order; deterministic tie-break *)
  mutable at : Clock.time;
  step : Clock.time -> outcome;
}

(* Binary min-heap on (at, seq). *)
type t = {
  mutable heap : proc array;
  mutable len : int;
  mutable next_seq : int;
  mutable now : Clock.time;
  mutable probe : (name:string -> now:Clock.time -> unit) option;
}

let create () = { heap = [||]; len = 0; next_seq = 0; now = 0; probe = None }

let set_probe t f = t.probe <- Some f
let clear_probe t = t.probe <- None

let less a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && less t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.len && less t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t p =
  if t.len = Array.length t.heap then begin
    let cap = max 8 (t.len * 2) in
    let heap = Array.make cap p in
    Array.blit t.heap 0 heap 0 t.len;
    t.heap <- heap
  end;
  t.heap.(t.len) <- p;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop t =
  assert (t.len > 0);
  let top = t.heap.(0) in
  t.len <- t.len - 1;
  if t.len > 0 then begin
    t.heap.(0) <- t.heap.(t.len);
    sift_down t 0
  end;
  top

let spawn t ~name ~at step =
  let p = { name; seq = t.next_seq; at; step } in
  t.next_seq <- t.next_seq + 1;
  push t p

let run t ~until =
  let rec loop () =
    if t.len = 0 then t.now
    else if t.heap.(0).at > until then t.now
    else begin
      let p = pop t in
      t.now <- max t.now p.at;
      (match t.probe with Some f -> f ~name:p.name ~now:p.at | None -> ());
      Metrics.bump "scheduler.dispatches";
      (match p.step p.at with
      | Finished ->
          if Trace.on () then Trace.span Trace.Scheduler p.name ~start:p.at ~dur:0 []
      | Sleep_until next ->
          (* Enforce progress: a process may not reschedule in its past. *)
          let next = if next > p.at then next else p.at + 1 in
          (* The dispatch span runs from the wake-up to the next wake-up
             the process asked for: in this discrete-event model a
             process is "busy" exactly until it would next act. *)
          if Trace.on () then Trace.span Trace.Scheduler p.name ~start:p.at ~dur:(next - p.at) [];
          p.at <- next;
          push t p);
      loop ()
    end
  in
  loop ()

let now t = t.now
