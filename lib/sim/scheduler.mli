(** Discrete-event scheduler.

    Processes (transaction workers, long-lived transaction drivers,
    background cleaners, metric samplers) each carry a wake-up time. The
    scheduler repeatedly advances the process with the earliest wake-up
    time, asking it to perform one unit of work and report when it next
    wants to run. Ties are broken by registration order, which keeps
    whole runs deterministic. *)

type t

type outcome =
  | Sleep_until of Clock.time  (** run me again no earlier than this *)
  | Finished  (** deregister this process *)

val create : unit -> t

val spawn : t -> name:string -> at:Clock.time -> (Clock.time -> outcome) -> unit
(** [spawn t ~name ~at step] registers a process whose [step now] is
    called when its wake-up time is reached; [now] is its wake-up time.
    [Sleep_until t'] with [t' <= now] advances the clock by 1 ns to
    guarantee progress. *)

val set_probe : t -> (name:string -> now:Clock.time -> unit) -> unit
(** Install a dispatch probe: called immediately before every process
    step with the process name and its wake-up time. This is the fault
    harness's consultation point — a fault plan armed here sees every
    scheduling decision and can inject per-step faults deterministically.
    The probe must not call back into the scheduler. *)

val clear_probe : t -> unit

val run : t -> until:Clock.time -> Clock.time
(** Run processes in time order until every process has finished or the
    next wake-up exceeds [until]. Returns the simulated time reached. *)

val now : t -> Clock.time
(** The current simulated time (last dispatched wake-up). *)
