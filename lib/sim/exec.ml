(* Execution substrate: the same (wake-time, step) task shape as the
   discrete-event Scheduler, runnable either deterministically inline or
   on real OCaml 5 domains under a bounded virtual-time skew window.

   Window protocol (domains substrate). Every task publishes its next
   wake-up time in an Atomic cell ([max_int] once retired). The global
   frontier is the minimum over those cells. A domain may dispatch one
   of its tasks iff the task's wake-up is <= frontier + window. The task
   that *holds* the frontier always satisfies this, so at least one
   domain can always make progress and the protocol cannot deadlock.
   Monotonicity: a step at time t only ever publishes a strictly larger
   time (Sleep_until in the past is bumped to t+1, as in Scheduler), so
   the frontier never moves backwards.

   All cross-domain state here — the clock cells, the skew/step
   telemetry — is sequentially-consistent Atomics; everything else is
   owned by exactly one domain for the whole run. *)

type outcome = Sleep_until of Clock.time | Finished

type task = {
  name : string;
  seq : int;
  step : Clock.time -> outcome;
  clock : int Atomic.t;  (* next wake-up; max_int = retired *)
}

type substrate = Inline | Domains of int

type t = {
  substrate : substrate;
  window : Clock.time;
  mutable tasks : task list;  (* reverse spawn order until [run] *)
  mutable started : bool;
  max_skew : int Atomic.t;
  steps_total : int Atomic.t;
  frontier_cache : int Atomic.t;  (* last frontier computed; for [frontier] *)
}

let make substrate window =
  {
    substrate;
    window;
    tasks = [];
    started = false;
    max_skew = Atomic.make 0;
    steps_total = Atomic.make 0;
    frontier_cache = Atomic.make 0;
  }

(* 25 us — see the calibration note in exec.mli. *)
let default_window = Clock.us 25
let inline ?(window = default_window) () = make Inline window

let domains ?(window = default_window) ~domains () =
  if domains < 1 then invalid_arg "Exec.domains: need at least one domain";
  make (Domains domains) window

let mode_name t =
  match t.substrate with Inline -> "inline" | Domains _ -> "domains"

let domain_count t = match t.substrate with Inline -> 1 | Domains n -> n
let max_skew_observed t = Atomic.get t.max_skew
let steps t = Atomic.get t.steps_total

let spawn t ~name ~at step =
  if t.started then invalid_arg "Exec.spawn: run already started";
  let seq = List.length t.tasks in
  t.tasks <- { name; seq; step; clock = Atomic.make at } :: t.tasks

(* A dummy seq_cst atomic round-trip is a full fence in the OCaml 5
   memory model: it both publishes prior plain writes and invalidates
   stale plain reads on the fencing domain. *)
let fence_cell = Atomic.make 0
let fence () = ignore (Atomic.fetch_and_add fence_cell 0 : int)

let yield t =
  match t.substrate with Inline -> () | Domains _ -> Domain.cpu_relax ()

let frontier_of clocks =
  Array.fold_left (fun acc c -> min acc (Atomic.get c)) max_int clocks

let frontier t = Atomic.get t.frontier_cache

let note_skew t skew =
  let rec bump () =
    let cur = Atomic.get t.max_skew in
    if skew > cur && not (Atomic.compare_and_set t.max_skew cur skew) then
      bump ()
  in
  if skew > 0 then bump ()

(* Dispatch [task] at its current wake-up time; returns the time it ran
   at, or [None] if it was already retired. Exceptions retire the task
   (so it leaves the frontier and cannot wedge the window) and are
   stashed for re-raising after the join. *)
let dispatch t ~until task (failures : (int * exn) option Atomic.t) =
  let now = Atomic.get task.clock in
  if now = max_int then None
  else begin
    Atomic.incr t.steps_total;
    (match
       try Ok (task.step now) with exn -> Error exn
     with
    | Ok Finished -> Atomic.set task.clock max_int
    | Ok (Sleep_until next) ->
        let next = if next > now then next else now + 1 in
        Atomic.set task.clock (if next > until then max_int else next)
    | Error exn ->
        Atomic.set task.clock max_int;
        let rec stash () =
          match Atomic.get failures with
          | Some (seq, _) when seq <= task.seq -> ()
          | cur ->
              if not (Atomic.compare_and_set failures cur (Some (task.seq, exn)))
              then stash ()
        in
        stash ());
    Some now
  end

let run_inline t ~until failures =
  let tasks = Array.of_list (List.rev t.tasks) in
  let clocks = Array.map (fun task -> task.clock) tasks in
  let last = ref 0 in
  let rec loop () =
    (* Pick the globally earliest wake-up, ties by spawn order. *)
    let best = ref None in
    Array.iter
      (fun task ->
        let c = Atomic.get task.clock in
        if c <> max_int then
          match !best with
          | Some b when Atomic.get b.clock <= c -> ()
          | _ -> best := Some task)
      tasks;
    match !best with
    | None -> ()
    | Some task ->
        Atomic.set t.frontier_cache (frontier_of clocks);
        (match dispatch t ~until task failures with
        | Some now -> last := max !last now
        | None -> ());
        loop ()
  in
  loop ();
  Atomic.set t.frontier_cache until;
  !last

let run_domains t ~until n failures =
  let tasks = Array.of_list (List.rev t.tasks) in
  let clocks = Array.map (fun task -> task.clock) tasks in
  let last = Atomic.make 0 in
  let body did () =
    let mine =
      Array.of_list
        (List.filter (fun task -> task.seq mod n = did) (Array.to_list tasks))
    in
    let spins = ref 0 in
    let continue = ref (Array.length mine > 0) in
    while !continue do
      (* Earliest of my own live tasks. *)
      let best = ref None in
      Array.iter
        (fun task ->
          let c = Atomic.get task.clock in
          if c <> max_int then
            match !best with
            | Some (bc, _) when bc <= c -> ()
            | _ -> best := Some (c, task))
        mine;
      match !best with
      | None -> continue := false
      | Some (wake, task) ->
          let frontier = frontier_of clocks in
          Atomic.set t.frontier_cache frontier;
          if wake <= frontier + t.window then begin
            spins := 0;
            note_skew t (wake - frontier);
            match dispatch t ~until task failures with
            | Some now ->
                let rec bump () =
                  let cur = Atomic.get last in
                  if now > cur && not (Atomic.compare_and_set last cur now)
                  then bump ()
                in
                bump ()
            | None -> ()
          end
          else begin
            (* Ahead of the window: back off until the frontier domain
               catches up. Spin politely first, then nap so a long
               straggler step doesn't burn a core. *)
            incr spins;
            if !spins < 256 then Domain.cpu_relax ()
            else begin
              spins := 0;
              Unix.sleepf 20e-6
            end
          end
    done
  in
  let workers = Array.init n (fun did -> Domain.spawn (body did)) in
  Array.iter Domain.join workers;
  Atomic.set t.frontier_cache until;
  Atomic.get last

let run t ~until =
  if t.started then invalid_arg "Exec.run: already run";
  t.started <- true;
  let failures = Atomic.make None in
  let last =
    match t.substrate with
    | Inline -> run_inline t ~until failures
    | Domains n -> run_domains t ~until n failures
  in
  (match Atomic.get failures with
  | Some (_, exn) -> raise exn
  | None -> ());
  last
