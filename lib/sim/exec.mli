(** Execution substrate capability: spawn / yield / now / fence.

    The discrete-event [Scheduler] totally orders every process step on
    one thread. [Exec] is the abstraction that lets the same task shape
    — a step function plus a virtual wake-up time — run on {e real}
    OCaml 5 domains instead, while keeping the virtual clocks of all
    tasks coupled within a bounded skew window (a conservative
    time-window parallel simulation).

    Two substrates implement the capability:

    - {!inline} steps every task on the calling thread, always picking
      the globally earliest wake-up (ties by spawn order). This is the
      deterministic twin of the domain substrate: identical task code,
      totally ordered, reproducible — used by the unit tests of the
      substrate itself.
    - {!domains} maps tasks round-robin onto [n] real [Domain.t]s. Each
      domain steps its own tasks in local wake-up order, but a task may
      only be stepped while its wake-up time is within [window] of the
      global frontier (the minimum published clock over all live
      tasks). Clocks are published through [Atomic] cells — the
      publish/consume points of the memory-ordering argument in
      DESIGN §4f — and a domain that runs ahead of the window yields,
      then naps, until the frontier catches up.

    Progress: the task holding the global minimum clock is always
    eligible, so some domain can always step; a task whose step raises
    is retired (its clock leaves the frontier) and the exception is
    re-raised from {!run} after every domain has joined, so a crashed
    task can never wedge the window for the others. *)

type t

type outcome =
  | Sleep_until of Clock.time  (** run me again no earlier than this *)
  | Finished  (** retire this task *)

val inline : ?window:Clock.time -> unit -> t
(** Deterministic single-thread substrate (the window is accepted for
    interface symmetry; a total order trivially respects any window). *)

val domains : ?window:Clock.time -> domains:int -> unit -> t
(** Real-parallelism substrate on [domains] OCaml 5 domains (at least
    1, else [Invalid_argument]). [window] is the maximum virtual-time
    skew a task may run ahead of the global frontier. The default
    (25 us, about a quarter of a short-transaction latency) was
    calibrated on the differential harness: at 2 ms the out-of-order
    latch arrivals inflate queueing enough to depress throughput ~30%
    below the Sim model, and even at 100 us a 3-domain run on a hot
    small table still lands ~20% low (the inflated queueing shows up
    as a deeper chain peak and fatter latency tail); at 25 us every
    differential case agrees to well under 1% while still letting
    every runnable task proceed concurrently. *)

val spawn : t -> name:string -> at:Clock.time -> (Clock.time -> outcome) -> unit
(** Register a task. As in {!Scheduler.spawn}, the step receives its
    wake-up time and a [Sleep_until t'] with [t' <= now] advances the
    clock by 1 ns to guarantee progress. All spawns must precede
    {!run}; spawning after the run has started raises. *)

val run : t -> until:Clock.time -> Clock.time
(** Execute every task until it finishes or its next wake-up exceeds
    [until]. On the domain substrate this spawns the domains, drives
    the window protocol and joins them all before returning (so every
    task-local effect is visible to the caller afterwards). Returns the
    largest wake-up time dispatched. If any task raised, the first such
    exception (by task spawn order) is re-raised after the join. Can
    only be called once per [t]. *)

val frontier : t -> Clock.time
(** The global frontier: minimum published clock over unfinished tasks
    ([until] passed to {!run} once every task has retired). This is the
    substrate's [now] capability — monotone, safe to read from any
    domain. *)

val yield : t -> unit
(** Politely give the core away: [Domain.cpu_relax] on the domain
    substrate, a no-op inline. *)

val fence : unit -> unit
(** Full memory fence (a sequentially-consistent atomic round-trip).
    The publish points of the Domains runner run their updates through
    this before they are considered observable. *)

val mode_name : t -> string
val domain_count : t -> int

val max_skew_observed : t -> Clock.time
(** Largest [wake-up - frontier] skew any dispatched step ran at; the
    window-respect tests assert it never exceeds [window]. *)

val steps : t -> int
(** Total task steps dispatched (across all domains). *)
