type result = {
  engine_name : string;
  throughput : (float * float) list;
  version_space : (float * float) list;
  redo : (float * float) list;
  max_chain : (float * float) list;
  splits : (float * float) list;
  chain_cdf : (int * float) list;
  latency_us : Histogram.t;  (* committed-transaction latency, 10 us buckets *)
  commits : int;
  conflicts : int;
  llt_reads : int;
  truncations : int;
  latch_wait : Clock.time;
  cut_delays : (Vclass.t * Clock.time) list;
  driver : Driver.t option;
  faults : Fault_report.t;
  wal_errors : int;
  retries : int;
  give_ups : int;
  sheds : int;
  crashes : int;
  recoveries : Engine.restart_info list;
  zombie_cancels : int;
  watchdog_escalations : int;
  max_reclamation_lag : Clock.time;
  reclamation_lag_us : Histogram.t;  (* per-segment reclaim lag, 50 us buckets *)
}

let run_sim ~engine ?faults ?watchdog (cfg : Exp_config.t) =
 Failpoint.with_scope @@ fun () ->
  let eng = engine cfg.Exp_config.schema in
  let sched = Scheduler.create () in
  let master_rng = Rng.create cfg.Exp_config.seed in
  let horizon = Clock.seconds cfg.Exp_config.duration_s in
  let commit_rate = Series.Rate.create ~bucket:1.0 "commits" in
  let latency_us = Histogram.create ~bucket_width:10 () in
  let conflicts = ref 0 in
  let llt_reads = ref 0 in
  let retries = ref 0 in
  let give_ups = ref 0 in
  let report = Fault_report.create () in
  (* Every process that can hold an open transaction registers a kill
     switch here (in spawn order, so victim selection is deterministic).
     The fault injector uses them for [Abort_txn] and to roll every
     in-flight loser back before a [Crash]. *)
  let abort_slots : (Clock.time -> bool) Vec.t = Vec.create () in
  (* Power-loss kill switches: drop the in-flight transaction from the
     workload WITHOUT an engine abort. A crash's in-flight transactions
     must reach the log as losers — aborting them through the engine
     would write Txn_abort records and durably decide outcomes the
     crash is supposed to leave undecided. The owning process then
     re-enters its killed/backoff path exactly as after a forced
     abort. *)
  let drop_slots : (Clock.time -> unit) Vec.t = Vec.create () in
  let crashes = ref 0 in
  let recoveries = ref [] in
  (* Tid-targeted kill switches for the governor's snapshot-too-old
     policy: entries live exactly while the transaction is in flight, so
     the shed hook rolls the victim back through the engine (undoing its
     writes) rather than behind its back. *)
  let shed_tbl : (Timestamp.t, Clock.time -> bool) Hashtbl.t = Hashtbl.create 64 in
  (match eng.Engine.driver with
  | Some d ->
      d.State.shed_hook <-
        Some
          (fun ~tid ~now ->
            match Hashtbl.find_opt shed_tbl tid with Some kill -> kill now | None -> false)
  | None -> ());
  (* Liveness containment, armed only when a watchdog configuration is
     passed. The default run allocates no watchdog, grants no lease,
     spawns no extra process and reads no extra randomness, so it stays
     bit-identical to the seed. *)
  let wd = Option.map (fun wcfg -> Watchdog.create ~config:wcfg ()) watchdog in
  let liveness_armed = wd <> None in
  let lease =
    match wd with
    | None -> None
    | Some _ ->
        (* Leases scale with the experiment: short transactions finish
           within one scheduling step, so their lease only has to cover
           scheduling jitter; LLTs are granted a tenth of the longest
           declared lifetime — far beyond any healthy read gap, so only
           a driver that genuinely stopped can expire. *)
        let short_lease =
          max (Clock.ms 10) (Clock.seconds (cfg.Exp_config.duration_s /. 200.))
        in
        let longest_llt_s =
          List.fold_left
            (fun acc (spec : Exp_config.llt_spec) -> Float.max acc spec.Exp_config.duration_s)
            0. cfg.Exp_config.llts
        in
        let llt_lease = max (4 * short_lease) (Clock.seconds (longest_llt_s /. 10.)) in
        Some (Lease.create ~config:{ Lease.short_lease; llt_lease } ())
  in
  let lease_grant ~tid ~kind ~now =
    match lease with Some l -> Lease.grant l ~tid ~kind ~now | None -> ()
  in
  let lease_progress ~tid ~now =
    match lease with Some l -> Lease.note_progress l ~tid ~now | None -> ()
  in
  let lease_release ~tid = match lease with Some l -> Lease.release l ~tid | None -> () in
  (* The cleaning loop makes no progress until this instant — set by
     [Cleaner_stall]/[Collab_delay] injections, cleared by the
     watchdog's restart rung. 0 (never) outside stall campaigns. *)
  let cleaner_stall_until = ref 0 in
  (* Zombie switches, one per LLT driver: flip the LLT into a hung
     state that keeps its snapshot but issues no further operation. *)
  let zombie_slots : (Clock.time -> bool) Vec.t = Vec.create () in
  (* Externally-aborted transactions (forced aborts, governor sheds)
     re-execute after a bounded-exponential backoff. Each process owns a
     backoff state seeded independently of the workload streams, so a
     run that kills nobody draws nothing and stays bit-identical. *)
  let make_backoff salt =
    Backoff.create ~base_ns:(Clock.us 200) ~cap_ns:(Clock.ms 20) ~max_attempts:6
      (Rng.create (cfg.Exp_config.seed lxor salt))
  in
  (* Pre-build one sampler per phase so workers just look the pattern
     up by time. *)
  let samplers =
    List.map
      (fun { Exp_config.at_s; pattern } ->
        (at_s, Access.create cfg.Exp_config.schema pattern))
      (if cfg.Exp_config.phases = [] then [ { Exp_config.at_s = 0.; pattern = Access.Uniform } ]
       else cfg.Exp_config.phases)
  in
  let sampler_at s =
    let rec pick current = function
      | [] -> current
      | (at_s, sampler) :: rest -> if s >= at_s then pick sampler rest else current
    in
    match samplers with
    | [] -> assert false
    | (_, first) :: rest -> pick first rest
  in
  (* OLTP workers: each short transaction takes two scheduling steps —
     begin first, then the operation body — so that transactions from
     different workers genuinely overlap in simulated time (write-write
     conflicts depend on that overlap). *)
  let spawn_worker i =
    let rng = Rng.split master_rng in
    let pending = ref None in
    let killed = ref false in
    let backoff = make_backoff (0x42e7 lxor (i * 0x9e3779b9)) in
    let kill now =
      match !pending with
      | Some txn ->
          pending := None;
          killed := true;
          Hashtbl.remove shed_tbl txn.Txn.tid;
          lease_release ~tid:txn.Txn.tid;
          if Trace.on () then
            Trace.instant Trace.Txn "killed" ~at:now [ ("tid", Trace.I txn.Txn.tid) ];
          ignore (eng.Engine.abort txn ~now);
          true
      | None -> false
    in
    Vec.push abort_slots kill;
    Vec.push drop_slots (fun now ->
        match !pending with
        | Some txn ->
            pending := None;
            killed := true;
            Hashtbl.remove shed_tbl txn.Txn.tid;
            lease_release ~tid:txn.Txn.tid;
            if Trace.on () then
              Trace.instant Trace.Txn "crash-lost" ~at:now [ ("tid", Trace.I txn.Txn.tid) ]
        | None -> ());
    let begin_txn now =
      let txn, t = eng.Engine.begin_txn ~now in
      pending := Some txn;
      Hashtbl.replace shed_tbl txn.Txn.tid kill;
      lease_grant ~tid:txn.Txn.tid ~kind:Lease.Short ~now;
      Scheduler.Sleep_until t
    in
    Scheduler.spawn sched ~name:(Printf.sprintf "worker-%d" i) ~at:0 (fun now ->
        match !pending with
        | None ->
            if !killed then begin
              killed := false;
              match Backoff.next backoff with
              | Some delay ->
                  incr retries;
                  Metrics.bump "runner.retries";
                  if Trace.on () then
                    Trace.instant Trace.Txn "retry" ~at:now [ ("delay_ns", Trace.I delay) ];
                  Scheduler.Sleep_until (now + delay)
              | None ->
                  (* Attempt budget exhausted: give the intent up and
                     move on to fresh work. *)
                  incr give_ups;
                  Metrics.bump "runner.give_ups";
                  if Trace.on () then Trace.instant Trace.Txn "give-up" ~at:now [];
                  Backoff.reset backoff;
                  if now >= horizon then Scheduler.Finished else begin_txn now
            end
            else if now >= horizon then Scheduler.Finished
            else begin_txn now
        | Some txn ->
            pending := None;
            Hashtbl.remove shed_tbl txn.Txn.tid;
            (* The whole body runs in this one step — no further
               scheduling gap where a short transaction could hang — so
               its lease ends here. *)
            lease_release ~tid:txn.Txn.tid;
            let access = sampler_at (Clock.to_seconds now) in
            let t = ref now in
            (try
               for _ = 1 to cfg.Exp_config.reads_per_txn do
                 let rid = Access.sample access rng in
                 let _, t' = eng.Engine.read txn ~rid ~now:!t in
                 t := t'
               done;
               for _ = 1 to cfg.Exp_config.writes_per_txn do
                 let rid = Access.sample access rng in
                 match eng.Engine.write txn ~rid ~payload:(Rng.int rng 1_000_000) ~now:!t with
                 | Engine.Committed_path t' -> t := t'
                 | Engine.Conflict t' ->
                     t := t';
                     raise Exit
               done;
               t := eng.Engine.commit txn ~now:!t;
               Backoff.reset backoff;
               Series.Rate.incr commit_rate ~time:(Clock.to_seconds !t);
               Histogram.add latency_us ((!t - txn.Txn.begin_time) / 1_000);
               if Trace.on () then
                 Trace.span Trace.Txn "txn" ~start:txn.Txn.begin_time
                   ~dur:(!t - txn.Txn.begin_time)
                   [ ("tid", Trace.I txn.Txn.tid); ("worker", Trace.I i) ]
             with Exit ->
               incr conflicts;
               Metrics.bump "runner.conflicts";
               t := eng.Engine.abort txn ~now:!t;
               if Trace.on () then
                 Trace.span Trace.Txn "txn-conflict" ~start:txn.Txn.begin_time
                   ~dur:(!t - txn.Txn.begin_time)
                   [ ("tid", Trace.I txn.Txn.tid); ("worker", Trace.I i) ]);
            Scheduler.Sleep_until !t)
  in
  for i = 0 to cfg.Exp_config.workers - 1 do
    spawn_worker i
  done;
  (* LLT drivers: begin at [start_s], read random records continuously,
     commit at the end of their lifetime. *)
  List.iteri
    (fun gi { Exp_config.start_s; duration_s; count } ->
      for li = 0 to count - 1 do
        let rng = Rng.split master_rng in
        let uniform = Access.create cfg.Exp_config.schema Access.Uniform in
        let state = ref None in
        let killed = ref false in
        let zombie = ref false in
        let backoff = make_backoff (0x11c0ffee lxor ((gi * 131) + li)) in
        let kill now =
          match !state with
          | Some txn ->
              state := None;
              killed := true;
              zombie := false;
              Hashtbl.remove shed_tbl txn.Txn.tid;
              lease_release ~tid:txn.Txn.tid;
              if Trace.on () then
                Trace.instant Trace.Txn "llt-killed" ~at:now [ ("tid", Trace.I txn.Txn.tid) ];
              ignore (eng.Engine.abort txn ~now);
              true
          | None -> false
        in
        Vec.push abort_slots kill;
        Vec.push drop_slots (fun now ->
            match !state with
            | Some txn ->
                state := None;
                killed := true;
                zombie := false;
                Hashtbl.remove shed_tbl txn.Txn.tid;
                lease_release ~tid:txn.Txn.tid;
                if Trace.on () then
                  Trace.instant Trace.Txn "llt-crash-lost" ~at:now
                    [ ("tid", Trace.I txn.Txn.tid) ]
            | None -> ());
        if liveness_armed then
          Vec.push zombie_slots (fun now ->
              match !state with
              | Some txn when not !zombie ->
                  zombie := true;
                  if Trace.on () then
                    Trace.instant Trace.Fault "llt-zombie" ~at:now
                      [ ("tid", Trace.I txn.Txn.tid) ];
                  true
              | _ -> false);
        let llt_end = Clock.seconds (start_s +. duration_s) in
        Scheduler.spawn sched
          ~name:(Printf.sprintf "llt-%d-%d" gi li)
          ~at:(Clock.seconds start_s)
          (fun now ->
            match !state with
            | None ->
                if now >= llt_end || now >= horizon then Scheduler.Finished
                else if !killed then begin
                  (* Shed (snapshot-too-old) or fault-aborted: restart
                     the scan after a backoff, with a fresh read view,
                     until the attempt budget runs out. *)
                  killed := false;
                  match Backoff.next backoff with
                  | Some delay ->
                      incr retries;
                      Metrics.bump "runner.retries";
                      if Trace.on () then
                        Trace.instant Trace.Txn "llt-retry" ~at:now
                          [ ("delay_ns", Trace.I delay) ];
                      Scheduler.Sleep_until (now + delay)
                  | None ->
                      incr give_ups;
                      Metrics.bump "runner.give_ups";
                      if Trace.on () then Trace.instant Trace.Txn "llt-give-up" ~at:now [];
                      Scheduler.Finished
                end
                else begin
                  let txn, t = eng.Engine.begin_txn ~now in
                  state := Some txn;
                  Hashtbl.replace shed_tbl txn.Txn.tid kill;
                  lease_grant ~tid:txn.Txn.tid ~kind:Lease.Llt ~now;
                  Scheduler.Sleep_until t
                end
            | Some txn ->
                if !zombie then
                  (* Hung driver: keeps its snapshot pinned but never
                     issues another operation or the commit. Only the
                     watchdog's shed rung (through the kill switch) or
                     the end of the run gets it off the live table. *)
                  if now >= horizon then Scheduler.Finished
                  else Scheduler.Sleep_until (now + Clock.ms 1)
                else if now >= llt_end || now >= horizon then begin
                  state := None;
                  Hashtbl.remove shed_tbl txn.Txn.tid;
                  lease_release ~tid:txn.Txn.tid;
                  let _ = eng.Engine.commit txn ~now in
                  if Trace.on () then
                    Trace.span Trace.Txn "llt" ~start:txn.Txn.begin_time
                      ~dur:(now - txn.Txn.begin_time)
                      [ ("tid", Trace.I txn.Txn.tid); ("group", Trace.I gi) ];
                  Scheduler.Finished
                end
                else begin
                  let rid = Access.sample uniform rng in
                  let _, t = eng.Engine.read txn ~rid ~now in
                  incr llt_reads;
                  lease_progress ~tid:txn.Txn.tid ~now:t;
                  Scheduler.Sleep_until t
                end)
      done)
    cfg.Exp_config.llts;
  (* Background GC (vacuum / purge / vCutter). Under an enabled
     governor the cadence follows the ladder: Pressured and above
     shorten the period so maintenance outpaces the pressure. *)
  Scheduler.spawn sched ~name:"gc" ~at:cfg.Exp_config.gc_period (fun now ->
      if now >= horizon then Scheduler.Finished
      else if now < !cleaner_stall_until then
        (* Stalled (hung) cleaner: keep the wakeup cadence — so a
           watchdog restart takes effect at the next tick — but do no
           maintenance and post no beat. The missing beat is exactly
           what the watchdog detects. *)
        Scheduler.Sleep_until (now + cfg.Exp_config.gc_period)
      else begin
        (match wd with Some w -> Watchdog.beat w "cleaner" ~now | None -> ());
        let t = eng.Engine.maintenance ~now in
        let period =
          match eng.Engine.driver with
          | Some d ->
              let scale = Governor.gc_scale (Driver.governor d) in
              max (Clock.us 500)
                (int_of_float (float_of_int cfg.Exp_config.gc_period *. scale))
          | None -> cfg.Exp_config.gc_period
        in
        Scheduler.Sleep_until (max t (now + period))
      end);
  (* Fuzzy checkpointer: exists only for durable engines, so non-durable
     runs keep the exact process set (and scheduler order) of the
     seed. *)
  (match eng.Engine.checkpoint with
  | Some ckpt when cfg.Exp_config.ckpt_period_s > 0. ->
      let period = max 1 (Clock.seconds cfg.Exp_config.ckpt_period_s) in
      Scheduler.spawn sched ~name:"checkpointer" ~at:period (fun now ->
          ckpt ~now;
          (match wd with Some w -> Watchdog.beat w "checkpointer" ~now | None -> ());
          if now >= horizon then Scheduler.Finished else Scheduler.Sleep_until (now + period))
  | _ -> ());
  (* Metrics sampler. *)
  let space_series = Series.create "space" in
  let redo_series = Series.create "redo" in
  let chain_series = Series.create "chain" in
  let split_series = Series.create "splits" in
  let sample_period = Clock.seconds cfg.Exp_config.sample_period_s in
  let last_sample = ref { Engine.version_bytes = 0; redo_bytes = 0; max_chain = 0; splits = 0; truncations = 0; latch_wait = 0; wal_errors = 0 } in
  Scheduler.spawn sched ~name:"sampler" ~at:sample_period (fun now ->
      let s = eng.Engine.sample () in
      last_sample := s;
      let sec = Clock.to_seconds now in
      Series.add space_series ~time:sec ~value:(float_of_int s.Engine.version_bytes);
      Series.add redo_series ~time:sec ~value:(float_of_int s.Engine.redo_bytes);
      Series.add chain_series ~time:sec ~value:(float_of_int s.Engine.max_chain);
      Series.add split_series ~time:sec ~value:(float_of_int s.Engine.splits);
      if now >= horizon then Scheduler.Finished else Scheduler.Sleep_until (now + sample_period));
  (* Fault harness: a continuous prune-soundness audit on the driver, a
     dispatch probe that consults the plan before every scheduled step,
     and a periodic invariant sweep over the whole driver state. *)
  let record_all ~at vs =
    List.iter
      (fun { Invariant.invariant; detail } -> Fault_report.record report ~at ~invariant ~detail)
      vs
  in
  (match faults with
  | None -> ()
  | Some plan ->
      (match eng.Engine.driver with
      | Some d ->
          Invariant.install_prune_audit d ~on_violation:(fun ~now viol ->
              record_all ~at:now [ viol ]);
          let period = Fault_plan.check_period plan in
          Scheduler.spawn sched ~name:"invariants" ~at:period (fun now ->
              Fault_report.note_check report;
              record_all ~at:now (Invariant.check_all d);
              if now >= horizon then Scheduler.Finished else Scheduler.Sleep_until (now + period))
      | None -> ());
      (* Victim selection draws from the plan's seed, never from
         [master_rng]: a plan that injects nothing must leave the
         workload's random stream untouched. *)
      let victim_rng = Rng.create (Fault_plan.seed plan lxor 0x7fabc0de) in
      let engine_wal () =
        match eng.Engine.driver with
        | Some d -> (
            match d.State.wal with
            | Some wal when Wal.is_durable wal -> Some wal
            | _ -> None)
        | None -> None
      in
      (* Power loss + ARIES-lite restart, for durable engines. [keep] is
         the device's survival point: frames beyond it are gone. With
         [torn_tail] a fabricated commit frame with a stale checksum is
         appended — honest recovery truncates it; a recovery running
         with [recovery_skip_tail_check] replays it and is caught by
         the post-recovery invariants. *)
      let do_crash_restart wal restart ~keep ~now =
        incr crashes;
        Fault_report.note_fault report "crash-restart";
        if Trace.on () then
          Trace.instant Trace.Fault "crash-restart" ~at:now
            [ ("keep_lsn", Trace.I keep) ];
        Vec.iter (fun drop -> drop now) drop_slots;
        Wal.crash wal ~keep_lsn:keep;
        if Fault_plan.torn_tail plan then begin
          (* The torn sector always holds a semantically dangerous
             record: a commit for a transaction the surviving prefix
             says is still undecided (or, with no loser available, for
             a timestamp the log never handed out). *)
          let exp = Wal_recovery.expect (Wal_recovery.analyze wal) in
          let tid, cts =
            match exp.Wal_recovery.losers with
            | tid :: _ -> (tid, exp.Wal_recovery.oracle_floor + 1)
            | [] ->
                ( exp.Wal_recovery.oracle_floor + 999983,
                  exp.Wal_recovery.oracle_floor + 999984 )
          in
          let frame =
            Wal_record.encode_with_bad_crc
              {
                Wal_record.lsn = Wal.next_lsn wal;
                at = now;
                shard = Wal.shard wal;
                payload = Wal_record.Txn_commit { tid; cts };
              }
          in
          ignore (Wal.inject_raw wal frame);
          Fault_report.note_fault report "torn-tail"
        end;
        let info = restart ~now in
        recoveries := info :: !recoveries;
        (match eng.Engine.driver with
        | Some d -> record_all ~at:now (Invariant.check_post_recovery d)
        | None -> ());
        if Trace.on () then
          Trace.instant Trace.Fault "recovered" ~at:now
            [
              ("replayed", Trace.I info.Engine.replayed_records);
              ("truncated", Trace.I info.Engine.truncated_frames);
              ("losers", Trace.I info.Engine.losers_rolled_back);
            ]
      in
      let apply action ~now =
        Fault_report.note_fault report (Fault_plan.action_name action);
        if Trace.on () then
          Trace.instant Trace.Fault (Fault_plan.action_name action) ~at:now [];
        match action with
        | Fault_plan.Abort_txn ->
            let n = Vec.length abort_slots in
            if n > 0 then begin
              let start = Rng.int victim_rng n in
              let rec try_slot i =
                if i < n then
                  if (Vec.get abort_slots ((start + i) mod n)) now then () else try_slot (i + 1)
              in
              try_slot 0
            end
        | Fault_plan.Crash -> (
            match (engine_wal (), eng.Engine.restart) with
            | Some wal, Some restart ->
                (* Durable engine: a Poisson crash is a power loss at
                   the durability frontier — unfsynced frames are
                   gone — followed by restart replay. *)
                do_crash_restart wal restart ~keep:(Wal.flushed_lsn wal) ~now
            | _ ->
                (* §3.5: every in-flight transaction is a loser. Roll
                   them back through the engine's abort path, then run
                   crash recovery and immediately assert the Figure 10b
                   post-conditions. *)
                Vec.iter (fun slot -> ignore (slot now)) abort_slots;
                ignore (eng.Engine.crash ());
                (match eng.Engine.driver with
                | Some d -> record_all ~at:now (Invariant.check_post_crash d)
                | None -> ()))
        | Fault_plan.Wal_bitflip -> (
            match engine_wal () with
            | Some wal when Wal.max_lsn wal > Wal.bootstrap_lsn ->
                let lo = Wal.bootstrap_lsn + 1 in
                let lsn = lo + Rng.int victim_rng (Wal.max_lsn wal - lo + 1) in
                let flipped =
                  Wal.corrupt_frame wal ~lsn (fun s ->
                      if String.length s = 0 then s
                      else begin
                        let b = Bytes.of_string s in
                        let i = Rng.int victim_rng (Bytes.length b) in
                        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
                        Bytes.to_string b
                      end)
                in
                if flipped && Trace.on () then
                  Trace.instant Trace.Fault "wal-bitflip" ~at:now [ ("lsn", Trace.I lsn) ]
            | _ -> ())
        | Fault_plan.Wal_error ->
            Failpoint.arm_fail_n "wal.append" 16;
            (* the simulated log device rejects syncs along with
               appends; harmless (never consulted) for engines that
               do not fsync *)
            Failpoint.arm_fail_n "wal.fsync" 4
        | Fault_plan.Flush_fail -> Failpoint.arm_fail_n "vsorter.flush" 4
        | Fault_plan.Evict_storm -> (
            match eng.Engine.driver with
            | Some d -> Buffer_pool.clear d.State.store_cache
            | None -> ())
        | Fault_plan.Space_storm ->
            (* A burst writer: displace a volley of versions in one
               instant, squeezing the version-space quota. Drawn from
               the victim stream so a plan without storms stays
               bit-identical. *)
            let records = Schema.records cfg.Exp_config.schema in
            let txn, _ = eng.Engine.begin_txn ~now in
            let conflicted = ref false in
            (try
               for _ = 1 to 48 do
                 let rid = Rng.int victim_rng records in
                 match
                   eng.Engine.write txn ~rid ~payload:(Rng.int victim_rng 1_000_000) ~now
                 with
                 | Engine.Committed_path _ -> ()
                 | Engine.Conflict _ -> raise Exit
               done
             with Exit -> conflicted := true);
            if !conflicted then ignore (eng.Engine.abort txn ~now)
            else ignore (eng.Engine.commit txn ~now)
        | Fault_plan.Cleaner_stall ->
            (* The cleaning loop hangs outright for a drawn duration —
               long enough that a run without the watchdog provably
               exceeds the reclamation-lag bound. Liveness injections
               only bite in armed runs (the gate is constant for the
               whole run, so determinism per mode is unaffected). *)
            if liveness_armed then begin
              let dur = Clock.ms (150 + Rng.int victim_rng 451) in
              cleaner_stall_until := max !cleaner_stall_until (now + dur)
            end
        | Fault_plan.Collab_delay ->
            (* The cutter dawdles between footprint install and its
               completion mark. In the discrete-event engines the
               episode is uncontended, so the observable effect is a
               brief maintenance hiccup; the genuine spin-window stretch
               is exercised by the multi-domain collaboration tests. *)
            if liveness_armed then begin
              let dur = Clock.ms (2 + Rng.int victim_rng 19) in
              cleaner_stall_until := max !cleaner_stall_until (now + dur)
            end
        | Fault_plan.Llt_zombie ->
            let n = Vec.length zombie_slots in
            if n > 0 then begin
              let start = Rng.int victim_rng n in
              let rec try_slot i =
                if i < n then
                  if (Vec.get zombie_slots ((start + i) mod n)) now then ()
                  else try_slot (i + 1)
              in
              try_slot 0
            end
        | Fault_plan.Node_kill | Fault_plan.Node_revive ->
            (* Whole-node faults target the replicated shard deployment;
               the single-instance runner has no nodes to kill. *)
            ()
      in
      (* Crash-point schedule: power loss the first time the log's
         highest LSN reaches each point, checked at every dispatch
         boundary — deterministic in WAL position, independent of
         simulated time. *)
      let crash_points = ref (Fault_plan.crash_points plan) in
      Scheduler.set_probe sched (fun ~name:_ ~now ->
          (match !crash_points with
          | p :: rest -> (
              match (engine_wal (), eng.Engine.restart) with
              | Some wal, Some restart when Wal.max_lsn wal >= p ->
                  crash_points := rest;
                  do_crash_restart wal restart ~keep:(min p (Wal.max_lsn wal)) ~now
              | _ -> ())
          | [] -> ());
          List.iter (fun action -> apply action ~now) (Fault_plan.poll plan ~now)));
  (* Liveness watchdog: heartbeat sources over the cleaning pipeline,
     the escalation ladder polled on the simulated clock, and the
     bounded-reclamation-lag monitor. Spawned after the fault plumbing
     so the probe is already armed when the first poll fires. *)
  let lag_mon = ref None in
  (match wd with
  | None -> ()
  | Some w ->
      Watchdog.register w "cleaner" ~now:0;
      (match eng.Engine.driver with
      | Some d ->
          Watchdog.register w "vsorter" ~now:0;
          Watchdog.register w "vcutter" ~now:0;
          Watchdog.register w "governor" ~now:0;
          d.State.watchdog <- Some w;
          let bound =
            Watchdog.lag_bound (Watchdog.config w) ~gc_period:cfg.Exp_config.gc_period
          in
          lag_mon := Some (Invariant.lag_monitor d ~bound)
      | None -> ());
      if eng.Engine.checkpoint <> None && cfg.Exp_config.ckpt_period_s > 0. then
        Watchdog.register ~watch:false w "checkpointer" ~now:0;
      (* A zombie is a transaction past its lease with no progress that
         also pins otherwise-dead versions (ISSUE §5): merely idling is
         harmless, so only harmful idlers count — and only they are
         ever shed, which is what the no-false-kill invariant audits. *)
      let expired_zombies ~now =
        match (lease, eng.Engine.driver) with
        | Some l, Some d ->
            List.filter
              (fun tid -> Hashtbl.mem shed_tbl tid && Driver.pins_dead_interval d ~tid)
              (Lease.expired l ~now)
        | _ -> []
      in
      let actions =
        {
          Watchdog.nudge = (fun ~now -> ignore (eng.Engine.maintenance ~now));
          restart_cleaners = (fun ~now -> cleaner_stall_until := now);
          sync_reclaim =
            (fun ~now ->
              match eng.Engine.driver with
              | Some d ->
                  ignore (Driver.flush_all d ~now);
                  ignore (Driver.maintain d ~now)
              | None -> ignore (eng.Engine.maintenance ~now));
          shed_zombies =
            (fun ~max:batch ~now ->
              let victims = expired_zombies ~now in
              let rec cancel n = function
                | [] -> n
                | _ when n >= batch -> n
                | tid :: rest ->
                    let killed =
                      match Hashtbl.find_opt shed_tbl tid with
                      | Some kill ->
                          (match lease with
                          | Some l -> Lease.note_cancel l ~tid ~now
                          | None -> ());
                          kill now
                      | None -> false
                    in
                    cancel (if killed then n + 1 else n) rest
              in
              cancel 0 victims);
          zombie_count = (fun ~now -> List.length (expired_zombies ~now));
        }
      in
      let period = (Watchdog.config w).Watchdog.check_period in
      Scheduler.spawn sched ~name:"watchdog" ~at:period (fun now ->
          (match !lag_mon with
          | Some m -> record_all ~at:now (Invariant.check_lag m ~now)
          | None -> ());
          (match lease with
          | Some l -> record_all ~at:now (Invariant.check_no_false_kill l)
          | None -> ());
          (match eng.Engine.driver with
          | Some d -> record_all ~at:now (Invariant.check_watchdog d)
          | None -> ());
          Watchdog.poll w ~now ~actions;
          if now >= horizon then Scheduler.Finished else Scheduler.Sleep_until (now + period)));
  (* Under an unsound rule (e.g. a sabotaged zone test) the engine can
     fail outright — a snapshot read landing on a pruned version. During
     a fault run that is itself a verdict, not a harness crash: record
     it and let the campaign report it. Without a fault plan the
     exception propagates as before. *)
  let engine_failed =
    try
      ignore (Scheduler.run sched ~until:horizon);
      false
    with exn when faults <> None ->
      Fault_report.record report ~at:(Scheduler.now sched) ~invariant:"engine-failure"
        ~detail:(Printexc.to_string exn);
      true
  in
  if not engine_failed then eng.Engine.finish ~now:horizon;
  (match !lag_mon with Some m -> Invariant.finish_lag m ~now:horizon | None -> ());
  (match eng.Engine.driver with
  | Some d ->
      Invariant.remove_prune_audit d;
      d.State.shed_hook <- None;
      d.State.watchdog <- None
  | None -> ());
  let final = eng.Engine.sample () in
  let sheds =
    match eng.Engine.driver with
    | Some d -> Governor.sheds (Driver.governor d)
    | None -> 0
  in
  (* Robustness counters, surfaced both in the result record and in the
     report so chaos campaigns print them. *)
  Fault_report.set_gauge report "wal-errors" final.Engine.wal_errors;
  Fault_report.set_gauge report "retries" !retries;
  Fault_report.set_gauge report "give-ups" !give_ups;
  Fault_report.set_gauge report "sheds" sheds;
  (* GC backend identity and its counters, hooked runs only — the
     default gauge surface stays untouched. *)
  (match eng.Engine.driver with
  | Some d -> (
      match d.State.gc_backend with
      | Some h ->
          Fault_report.set_gauge report "gc-backend" h.State.gh_id;
          List.iter (fun (k, n) -> Fault_report.set_gauge report k n) (h.State.gh_gauges ())
      | None -> ())
  | None -> ());
  if !crashes > 0 then begin
    Fault_report.set_gauge report "crash-restarts" !crashes;
    Fault_report.set_gauge report "records-replayed"
      (List.fold_left (fun acc (i : Engine.restart_info) -> acc + i.Engine.replayed_records)
         0 !recoveries);
    Fault_report.set_gauge report "frames-truncated"
      (List.fold_left (fun acc (i : Engine.restart_info) -> acc + i.Engine.truncated_frames)
         0 !recoveries);
    Fault_report.set_gauge report "losers-rolled-back"
      (List.fold_left
         (fun acc (i : Engine.restart_info) -> acc + i.Engine.losers_rolled_back)
         0 !recoveries)
  end;
  let max_reclamation_lag = match !lag_mon with Some m -> Invariant.max_lag m | None -> 0 in
  (* Liveness gauges, armed runs only — the default (and golden) metric
     surface is untouched. *)
  (match wd with
  | None -> ()
  | Some w ->
      Fault_report.set_gauge report "watchdog-escalations" (Watchdog.escalations w);
      Fault_report.set_gauge report "watchdog-nudges" (Watchdog.nudges w);
      Fault_report.set_gauge report "zombie-cancels" (Watchdog.zombie_cancels w);
      Fault_report.set_gauge report "max-stall-us" (Watchdog.max_stall_observed w / 1000);
      Fault_report.set_gauge report "max-reclamation-lag-us" (max_reclamation_lag / 1000);
      match Metrics.in_scope () with
      | None -> ()
      | Some _ ->
          Metrics.set_gauge "watchdog.escalations" (float_of_int (Watchdog.escalations w));
          Metrics.set_gauge "watchdog.zombie_cancels" (float_of_int (Watchdog.zombie_cancels w));
          Metrics.set_gauge "watchdog.max_reclamation_lag_us"
            (float_of_int (max_reclamation_lag / 1000)));
  (* Headline gauges for the metrics snapshot (the BENCH_obs / golden
     surface): every traced run exports these whether or not the hot
     paths fed their histograms, so the schema's required keys are
     always present. *)
  (match Metrics.in_scope () with
  | None -> ()
  | Some reg ->
      let commits = Series.Rate.total commit_rate in
      Metrics.set_gauge "txn.throughput"
        (if cfg.Exp_config.duration_s > 0. then
           float_of_int commits /. cfg.Exp_config.duration_s
         else 0.);
      let scan = Metrics.histogram reg "scan.chain_length" in
      let scan_pctl p = if Histogram.total scan = 0 then 0 else Histogram.percentile scan p in
      Metrics.set_gauge "scan.p50" (float_of_int (scan_pctl 0.5));
      Metrics.set_gauge "scan.p99" (float_of_int (scan_pctl 0.99));
      let peak =
        List.fold_left (fun acc (_, v) -> max acc v) 0.
          (Series.to_list space_series)
      in
      Metrics.set_gauge "space.peak_bytes" peak;
      Metrics.set_gauge "space.final_bytes" (float_of_int final.Engine.version_bytes);
      let lat_pctl p =
        if Histogram.total latency_us = 0 then 0 else Histogram.percentile latency_us p
      in
      Metrics.set_gauge "txn.latency_p50_us" (float_of_int (lat_pctl 0.5));
      Metrics.set_gauge "txn.latency_p99_us" (float_of_int (lat_pctl 0.99));
      Metrics.set_gauge "prune.completeness"
        (match eng.Engine.driver with
        | Some d ->
            let s = Driver.stats d in
            let pruned = Prune_stats.prune1_total s + Prune_stats.prune2_total s in
            let settled = pruned + Prune_stats.stored_total s in
            if settled = 0 then 1. else float_of_int pruned /. float_of_int settled
        | None -> 0.));
  let cdf = Histogram.cdf (eng.Engine.chain_histogram ()) in
  {
    engine_name = eng.Engine.name;
    throughput = Series.Rate.per_second commit_rate;
    version_space = Series.to_list space_series;
    redo = Series.to_list redo_series;
    max_chain = Series.to_list chain_series;
    splits = Series.to_list split_series;
    chain_cdf = cdf;
    latency_us;
    commits = Series.Rate.total commit_rate;
    conflicts = !conflicts;
    llt_reads = !llt_reads;
    truncations = final.Engine.truncations;
    latch_wait = final.Engine.latch_wait;
    cut_delays =
      (match eng.Engine.driver with
      | Some d -> Version_store.cut_delays (Driver.store d)
      | None -> []);
    driver = eng.Engine.driver;
    faults = report;
    wal_errors = final.Engine.wal_errors;
    retries = !retries;
    give_ups = !give_ups;
    sheds;
    crashes = !crashes;
    recoveries = List.rev !recoveries;
    zombie_cancels = (match wd with Some w -> Watchdog.zombie_cancels w | None -> 0);
    watchdog_escalations = (match wd with Some w -> Watchdog.escalations w | None -> 0);
    max_reclamation_lag;
    reclamation_lag_us =
      (match !lag_mon with
      | Some m -> Invariant.lag_histogram m
      | None -> Histogram.create ~bucket_width:50 ());
  }

(* ================================================================== *)
(* Domains mode: the same workload shape on real OCaml 5 domains.      *)
(* ================================================================== *)

(* Synchronization discipline (DESIGN §4f). Virtual time is coupled by
   the Exec bounded-skew window (Atomic clock cells). Every call into
   the engine — and every touch of driver state, the fault report, the
   shed table or the current-txn slots — happens under one engine
   mutex, so the MVCC structures see a linearizable call sequence while
   tasks genuinely interleave at call granularity across domains.
   Cross-task signalling (external aborts) goes through per-task
   Atomic mailboxes: the injector rolls the victim's transaction back
   through the engine under the lock and raises the owner's flag; the
   owner consumes the flag at its next step and enters the same
   backoff path as the Sim runner. Workload counters are task-local
   and flushed to the shared aggregate exactly once, at the owner's
   publish point (a fence followed by locked merges) — the publication
   edge the [skip_publish_fence] sabotage knob severs. *)

(* One per task that can hold an open transaction. [cur] is
   lock-protected; [kill_req] is the owner's mailbox. *)
type dslot = { kill_req : bool Atomic.t; mutable cur : Txn.t option }

(* Task-local counters; merged into the aggregate at publish time. *)
type dstats = {
  mutable d_commits : int;
  mutable d_conflicts : int;
  mutable d_llt_reads : int;
  mutable d_retries : int;
  mutable d_give_ups : int;
  d_latency : Histogram.t;
  d_buckets : int array;  (* commits per whole second *)
}

let dstats_create nbuckets =
  {
    d_commits = 0;
    d_conflicts = 0;
    d_llt_reads = 0;
    d_retries = 0;
    d_give_ups = 0;
    d_latency = Histogram.create ~bucket_width:10 ();
    d_buckets = Array.make nbuckets 0;
  }

let run_domains ~engine ?faults ~domains ~skip_publish_fence (cfg : Exp_config.t) =
  Failpoint.with_scope @@ fun () ->
  let eng = engine cfg.Exp_config.schema in
  let exec = Exec.domains ~domains () in
  let horizon = Clock.seconds cfg.Exp_config.duration_s in
  let lock = Mutex.create () in
  let locked f =
    Mutex.lock lock;
    match f () with
    | v ->
        Mutex.unlock lock;
        v
    | exception exn ->
        Mutex.unlock lock;
        raise exn
  in
  let report = Fault_report.create () in
  let nbuckets = int_of_float (Float.ceil cfg.Exp_config.duration_s) + 2 in
  let agg = dstats_create nbuckets in
  let agg_latency = ref agg.d_latency in
  (* The publish point: one fence, then merge the task's counters into
     the shared aggregate under the lock. The sabotage knob models a
     missing publish fence by severing this edge entirely — the
     coordinator then reads the aggregate's initial zeros, which the
     differential digest comparison flags deterministically. *)
  let publish (s : dstats) =
    if not skip_publish_fence then begin
      Exec.fence ();
      locked (fun () ->
          agg.d_commits <- agg.d_commits + s.d_commits;
          agg.d_conflicts <- agg.d_conflicts + s.d_conflicts;
          agg.d_llt_reads <- agg.d_llt_reads + s.d_llt_reads;
          agg.d_retries <- agg.d_retries + s.d_retries;
          agg.d_give_ups <- agg.d_give_ups + s.d_give_ups;
          agg_latency := Histogram.merge !agg_latency s.d_latency;
          Array.iteri (fun i c -> agg.d_buckets.(i) <- agg.d_buckets.(i) + c) s.d_buckets)
    end
  in
  let bucket_commit (s : dstats) ~at =
    let idx = int_of_float (Clock.to_seconds at) in
    let idx = if idx < 0 then 0 else if idx >= nbuckets then nbuckets - 1 else idx in
    s.d_buckets.(idx) <- s.d_buckets.(idx) + 1;
    s.d_commits <- s.d_commits + 1
  in
  (* Kill switches, Sim's [abort_slots]/[shed_tbl] under the lock
     discipline: the injector aborts the victim's transaction through
     the engine right here (it already holds the lock, and the owner
     cannot be mid-call), then raises the owner's mailbox flag. *)
  let slots : dslot Vec.t = Vec.create () in
  let shed_tbl : (Timestamp.t, dslot) Hashtbl.t = Hashtbl.create 64 in
  let kill_slot (slot : dslot) ~now =
    match slot.cur with
    | Some txn ->
        slot.cur <- None;
        Hashtbl.remove shed_tbl txn.Txn.tid;
        Atomic.set slot.kill_req true;
        ignore (eng.Engine.abort txn ~now);
        true
    | None -> false
  in
  (match eng.Engine.driver with
  | Some d ->
      d.State.shed_hook <-
        Some
          (fun ~tid ~now ->
            (* Runs inside [Driver.maintain], i.e. under the lock. *)
            match Hashtbl.find_opt shed_tbl tid with
            | Some slot -> kill_slot slot ~now
            | None -> false)
  | None -> ());
  let make_backoff salt =
    Backoff.create ~base_ns:(Clock.us 200) ~cap_ns:(Clock.ms 20) ~max_attempts:6
      (Rng.create (cfg.Exp_config.seed lxor salt))
  in
  let master_rng = Rng.create cfg.Exp_config.seed in
  let samplers =
    List.map
      (fun { Exp_config.at_s; pattern } ->
        (at_s, Access.create cfg.Exp_config.schema pattern))
      (if cfg.Exp_config.phases = [] then [ { Exp_config.at_s = 0.; pattern = Access.Uniform } ]
       else cfg.Exp_config.phases)
  in
  let sampler_at s =
    let rec pick current = function
      | [] -> current
      | (at_s, sampler) :: rest -> if s >= at_s then pick sampler rest else current
    in
    match samplers with
    | [] -> assert false
    | (_, first) :: rest -> pick first rest
  in
  (* OLTP workers: the same two-step transaction shape as Sim mode
     (begin, then the whole body) with the same per-worker RNG streams
     — worker [i] issues the same operation sequence in both modes
     until real interleaving diverges its conflict history. *)
  let spawn_worker i =
    let rng = Rng.split master_rng in
    let s = dstats_create nbuckets in
    let slot = { kill_req = Atomic.make false; cur = None } in
    Vec.push slots slot;
    let pending = ref None in
    let backoff = make_backoff (0x42e7 lxor (i * 0x9e3779b9)) in
    let begin_txn now =
      let t =
        locked (fun () ->
            let txn, t = eng.Engine.begin_txn ~now in
            pending := Some txn;
            slot.cur <- Some txn;
            Hashtbl.replace shed_tbl txn.Txn.tid slot;
            t)
      in
      Exec.Sleep_until t
    in
    (* After an external abort (fault injection or governor shed): the
       injector already rolled the transaction back through the engine;
       we re-enter the same backoff/give-up policy as Sim mode. *)
    let after_kill now =
      match Backoff.next backoff with
      | Some delay ->
          s.d_retries <- s.d_retries + 1;
          Exec.Sleep_until (now + delay)
      | None ->
          s.d_give_ups <- s.d_give_ups + 1;
          Backoff.reset backoff;
          if now >= horizon then begin
            publish s;
            Exec.Finished
          end
          else begin_txn now
    in
    Exec.spawn exec ~name:(Printf.sprintf "worker-%d" i) ~at:0 (fun now ->
        match !pending with
        | None ->
            if Atomic.get slot.kill_req then begin
              Atomic.set slot.kill_req false;
              after_kill now
            end
            else if now >= horizon then begin
              publish s;
              Exec.Finished
            end
            else begin_txn now
        | Some txn ->
            pending := None;
            let access = sampler_at (Clock.to_seconds now) in
            let body =
              locked (fun () ->
                  if Atomic.get slot.kill_req then begin
                    Atomic.set slot.kill_req false;
                    `Killed
                  end
                  else begin
                    slot.cur <- None;
                    Hashtbl.remove shed_tbl txn.Txn.tid;
                    let t = ref now in
                    (try
                       for _ = 1 to cfg.Exp_config.reads_per_txn do
                         let rid = Access.sample access rng in
                         let _, t' = eng.Engine.read txn ~rid ~now:!t in
                         t := t'
                       done;
                       for _ = 1 to cfg.Exp_config.writes_per_txn do
                         let rid = Access.sample access rng in
                         match
                           eng.Engine.write txn ~rid ~payload:(Rng.int rng 1_000_000)
                             ~now:!t
                         with
                         | Engine.Committed_path t' -> t := t'
                         | Engine.Conflict t' ->
                             t := t';
                             raise Exit
                       done;
                       t := eng.Engine.commit txn ~now:!t;
                       Backoff.reset backoff;
                       bucket_commit s ~at:!t;
                       Histogram.add s.d_latency ((!t - txn.Txn.begin_time) / 1_000)
                     with Exit ->
                       s.d_conflicts <- s.d_conflicts + 1;
                       t := eng.Engine.abort txn ~now:!t);
                    `Ran !t
                  end)
            in
            (match body with
            | `Killed -> after_kill now
            | `Ran t -> Exec.Sleep_until t))
  in
  for i = 0 to cfg.Exp_config.workers - 1 do
    spawn_worker i
  done;
  (* LLT drivers: begin at [start_s], read continuously under the
     engine lock, commit at end-of-life. No zombie switches — the
     watchdog ladder (and therefore the zombie containment rung) is
     Sim-only. *)
  List.iteri
    (fun gi { Exp_config.start_s; duration_s; count } ->
      for li = 0 to count - 1 do
        let rng = Rng.split master_rng in
        let uniform = Access.create cfg.Exp_config.schema Access.Uniform in
        let s = dstats_create nbuckets in
        let slot = { kill_req = Atomic.make false; cur = None } in
        Vec.push slots slot;
        let state = ref None in
        let backoff = make_backoff (0x11c0ffee lxor ((gi * 131) + li)) in
        let llt_end = Clock.seconds (start_s +. duration_s) in
        let after_kill now =
          match Backoff.next backoff with
          | Some delay ->
              s.d_retries <- s.d_retries + 1;
              Exec.Sleep_until (now + delay)
          | None ->
              s.d_give_ups <- s.d_give_ups + 1;
              publish s;
              Exec.Finished
        in
        Exec.spawn exec
          ~name:(Printf.sprintf "llt-%d-%d" gi li)
          ~at:(Clock.seconds start_s)
          (fun now ->
            match !state with
            | None ->
                if now >= llt_end || now >= horizon then begin
                  publish s;
                  Exec.Finished
                end
                else if Atomic.get slot.kill_req then begin
                  Atomic.set slot.kill_req false;
                  after_kill now
                end
                else begin
                  let t =
                    locked (fun () ->
                        let txn, t = eng.Engine.begin_txn ~now in
                        state := Some txn;
                        slot.cur <- Some txn;
                        Hashtbl.replace shed_tbl txn.Txn.tid slot;
                        t)
                  in
                  Exec.Sleep_until t
                end
            | Some txn ->
                let verdict =
                  locked (fun () ->
                      if Atomic.get slot.kill_req then begin
                        Atomic.set slot.kill_req false;
                        `Killed
                      end
                      else if now >= llt_end || now >= horizon then begin
                        state := None;
                        slot.cur <- None;
                        Hashtbl.remove shed_tbl txn.Txn.tid;
                        ignore (eng.Engine.commit txn ~now);
                        `Done
                      end
                      else begin
                        let rid = Access.sample uniform rng in
                        let _, t = eng.Engine.read txn ~rid ~now in
                        s.d_llt_reads <- s.d_llt_reads + 1;
                        `Ran t
                      end)
                in
                (match verdict with
                | `Killed ->
                    state := None;
                    after_kill now
                | `Done ->
                    publish s;
                    Exec.Finished
                | `Ran t -> Exec.Sleep_until t))
      done)
    cfg.Exp_config.llts;
  (* Background GC, paced by the governor exactly as in Sim mode. *)
  Exec.spawn exec ~name:"gc" ~at:cfg.Exp_config.gc_period (fun now ->
      if now >= horizon then Exec.Finished
      else begin
        let t, period =
          locked (fun () ->
              let t = eng.Engine.maintenance ~now in
              let period =
                match eng.Engine.driver with
                | Some d ->
                    let scale = Governor.gc_scale (Driver.governor d) in
                    max (Clock.us 500)
                      (int_of_float (float_of_int cfg.Exp_config.gc_period *. scale))
                | None -> cfg.Exp_config.gc_period
              in
              (t, period))
        in
        Exec.Sleep_until (max t (now + period))
      end);
  (* Fuzzy checkpointer, durable engines only (parity with Sim; crash
     faults themselves stay Sim-only). *)
  (match eng.Engine.checkpoint with
  | Some ckpt when cfg.Exp_config.ckpt_period_s > 0. ->
      let period = max 1 (Clock.seconds cfg.Exp_config.ckpt_period_s) in
      Exec.spawn exec ~name:"checkpointer" ~at:period (fun now ->
          locked (fun () -> ckpt ~now);
          if now >= horizon then Exec.Finished else Exec.Sleep_until (now + period))
  | _ -> ());
  (* Metrics sampler (sole owner of the series; read after the join). *)
  let space_series = Series.create "space" in
  let redo_series = Series.create "redo" in
  let chain_series = Series.create "chain" in
  let split_series = Series.create "splits" in
  let sample_period = Clock.seconds cfg.Exp_config.sample_period_s in
  Exec.spawn exec ~name:"sampler" ~at:sample_period (fun now ->
      let smp = locked (fun () -> eng.Engine.sample ()) in
      let sec = Clock.to_seconds now in
      Series.add space_series ~time:sec ~value:(float_of_int smp.Engine.version_bytes);
      Series.add redo_series ~time:sec ~value:(float_of_int smp.Engine.redo_bytes);
      Series.add chain_series ~time:sec ~value:(float_of_int smp.Engine.max_chain);
      Series.add split_series ~time:sec ~value:(float_of_int smp.Engine.splits);
      if now >= horizon then Exec.Finished else Exec.Sleep_until (now + sample_period));
  (* Fault harness: prune audit + invariant sweeps as in Sim mode, and
     a bounded-reclamation-lag monitor armed directly (the Sim runner
     arms it through the watchdog; Domains mode has no watchdog, but
     the chaos soak still asserts the lag guarantee online). Crash
     faults are stop-the-world and stay Sim-only: a [Crash] arrival is
     recorded as [crash-skipped] and otherwise ignored — differential
     campaigns run both modes under [Fault_plan.random ~crashes:false]
     variants so neither side ever draws one. *)
  let record_all ~at vs =
    List.iter
      (fun { Invariant.invariant; detail } -> Fault_report.record report ~at ~invariant ~detail)
      vs
  in
  let lag_mon = ref None in
  (match faults with
  | None -> ()
  | Some plan ->
      (match eng.Engine.driver with
      | Some d ->
          Invariant.install_prune_audit d ~on_violation:(fun ~now viol ->
              record_all ~at:now [ viol ]);
          let bound =
            Watchdog.lag_bound Watchdog.default_config ~gc_period:cfg.Exp_config.gc_period
          in
          lag_mon := Some (Invariant.lag_monitor d ~bound);
          let period = Fault_plan.check_period plan in
          (* Horizon check first: a sweep dispatched past the horizon
             would clock segment deaths later than the [finish_lag]
             settle time and make the final lags negative. *)
          Exec.spawn exec ~name:"invariants" ~at:period (fun now ->
              if now >= horizon then Exec.Finished
              else begin
                locked (fun () ->
                    Fault_report.note_check report;
                    record_all ~at:now (Invariant.check_all d);
                    match !lag_mon with
                    | Some m -> record_all ~at:now (Invariant.check_lag m ~now)
                    | None -> ());
                Exec.Sleep_until (now + period)
              end)
      | None -> ());
      let victim_rng = Rng.create (Fault_plan.seed plan lxor 0x7fabc0de) in
      let engine_wal () =
        match eng.Engine.driver with
        | Some d -> (
            match d.State.wal with
            | Some wal when Wal.is_durable wal -> Some wal
            | _ -> None)
        | None -> None
      in
      let apply action ~now =
        match action with
        | Fault_plan.Crash -> Fault_report.note_fault report "crash-skipped"
        | action -> (
            Fault_report.note_fault report (Fault_plan.action_name action);
            match action with
            | Fault_plan.Crash -> ()
            | Fault_plan.Abort_txn ->
                let n = Vec.length slots in
                if n > 0 then begin
                  let start = Rng.int victim_rng n in
                  let rec try_slot i =
                    if i < n then
                      if kill_slot (Vec.get slots ((start + i) mod n)) ~now then ()
                      else try_slot (i + 1)
                  in
                  try_slot 0
                end
            | Fault_plan.Wal_bitflip -> (
                match engine_wal () with
                | Some wal when Wal.max_lsn wal > Wal.bootstrap_lsn ->
                    let lo = Wal.bootstrap_lsn + 1 in
                    let lsn = lo + Rng.int victim_rng (Wal.max_lsn wal - lo + 1) in
                    ignore
                      (Wal.corrupt_frame wal ~lsn (fun frame ->
                           if String.length frame = 0 then frame
                           else begin
                             let b = Bytes.of_string frame in
                             let i = Rng.int victim_rng (Bytes.length b) in
                             Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
                             Bytes.to_string b
                           end))
                | _ -> ())
            | Fault_plan.Wal_error ->
                Failpoint.arm_fail_n "wal.append" 16;
                Failpoint.arm_fail_n "wal.fsync" 4
            | Fault_plan.Flush_fail -> Failpoint.arm_fail_n "vsorter.flush" 4
            | Fault_plan.Evict_storm -> (
                match eng.Engine.driver with
                | Some d -> Buffer_pool.clear d.State.store_cache
                | None -> ())
            | Fault_plan.Space_storm ->
                let records = Schema.records cfg.Exp_config.schema in
                let txn, _ = eng.Engine.begin_txn ~now in
                let conflicted = ref false in
                (try
                   for _ = 1 to 48 do
                     let rid = Rng.int victim_rng records in
                     match
                       eng.Engine.write txn ~rid ~payload:(Rng.int victim_rng 1_000_000) ~now
                     with
                     | Engine.Committed_path _ -> ()
                     | Engine.Conflict _ -> raise Exit
                   done
                 with Exit -> conflicted := true);
                if !conflicted then ignore (eng.Engine.abort txn ~now)
                else ignore (eng.Engine.commit txn ~now)
            | Fault_plan.Cleaner_stall | Fault_plan.Collab_delay | Fault_plan.Llt_zombie ->
                (* Liveness injections only bite in watchdog-armed runs;
                   the ladder is Sim-only. *)
                ()
            | Fault_plan.Node_kill | Fault_plan.Node_revive ->
                (* Whole-node faults belong to the replicated shard
                   deployment, not this single-instance runner. *)
                ())
      in
      let tick = Clock.us 250 in
      Exec.spawn exec ~name:"faults" ~at:tick (fun now ->
          if now >= horizon then Exec.Finished
          else begin
            let due = Fault_plan.poll plan ~now in
            if due <> [] then locked (fun () -> List.iter (fun a -> apply a ~now) due);
            Exec.Sleep_until (now + tick)
          end));
  (* [until] is effectively unbounded: every task self-terminates once
     its local clock passes [horizon], and only a [Finished] step runs
     the task's publish point — retiring tasks at the horizon from the
     outside would silently drop their counters. *)
  let engine_failed =
    try
      ignore (Exec.run exec ~until:(horizon + Clock.seconds 3600.));
      false
    with exn when faults <> None ->
      Fault_report.record report ~at:(Exec.frontier exec) ~invariant:"engine-failure"
        ~detail:(Printexc.to_string exn);
      true
  in
  if not engine_failed then eng.Engine.finish ~now:horizon;
  (match !lag_mon with Some m -> Invariant.finish_lag m ~now:horizon | None -> ());
  (match eng.Engine.driver with
  | Some d ->
      Invariant.remove_prune_audit d;
      d.State.shed_hook <- None
  | None -> ());
  let final = eng.Engine.sample () in
  let sheds =
    match eng.Engine.driver with
    | Some d -> Governor.sheds (Driver.governor d)
    | None -> 0
  in
  Fault_report.set_gauge report "wal-errors" final.Engine.wal_errors;
  Fault_report.set_gauge report "retries" agg.d_retries;
  Fault_report.set_gauge report "give-ups" agg.d_give_ups;
  Fault_report.set_gauge report "sheds" sheds;
  (match eng.Engine.driver with
  | Some d -> (
      match d.State.gc_backend with
      | Some h ->
          Fault_report.set_gauge report "gc-backend" h.State.gh_id;
          List.iter (fun (k, n) -> Fault_report.set_gauge report k n) (h.State.gh_gauges ())
      | None -> ())
  | None -> ());
  let max_reclamation_lag = match !lag_mon with Some m -> Invariant.max_lag m | None -> 0 in
  (match !lag_mon with
  | Some _ ->
      Fault_report.set_gauge report "max-reclamation-lag-us" (max_reclamation_lag / 1000)
  | None -> ());
  let throughput =
    let rec trim = function 0 :: rest -> trim rest | l -> l in
    let buckets = List.rev (trim (List.rev (Array.to_list agg.d_buckets))) in
    List.mapi (fun i c -> (float_of_int i, float_of_int c)) buckets
  in
  {
    engine_name = eng.Engine.name;
    throughput;
    version_space = Series.to_list space_series;
    redo = Series.to_list redo_series;
    max_chain = Series.to_list chain_series;
    splits = Series.to_list split_series;
    chain_cdf = Histogram.cdf (eng.Engine.chain_histogram ());
    latency_us = !agg_latency;
    commits = agg.d_commits;
    conflicts = agg.d_conflicts;
    llt_reads = agg.d_llt_reads;
    truncations = final.Engine.truncations;
    latch_wait = final.Engine.latch_wait;
    cut_delays =
      (match eng.Engine.driver with
      | Some d -> Version_store.cut_delays (Driver.store d)
      | None -> []);
    driver = eng.Engine.driver;
    faults = report;
    wal_errors = final.Engine.wal_errors;
    retries = agg.d_retries;
    give_ups = agg.d_give_ups;
    sheds;
    crashes = 0;
    recoveries = [];
    zombie_cancels = 0;
    watchdog_escalations = 0;
    max_reclamation_lag;
    reclamation_lag_us =
      (match !lag_mon with
      | Some m -> Invariant.lag_histogram m
      | None -> Histogram.create ~bucket_width:50 ());
  }

type mode = Sim | Domains of { domains : int }

let run ~engine ?faults ?watchdog ?(mode = Sim) ?(skip_publish_fence = false)
    (cfg : Exp_config.t) =
  match mode with
  | Sim ->
      (* The sabotage knob models a broken cross-domain publication; it
         has no meaning on the single-threaded substrate. *)
      ignore skip_publish_fence;
      run_sim ~engine ?faults ?watchdog cfg
  | Domains { domains } ->
      if domains < 1 then invalid_arg "Runner.run: need at least one domain";
      if watchdog <> None then
        invalid_arg
          "Runner.run: the watchdog ladder is Sim-only (its stall injections and \
           stop-the-world restart rung assume the discrete-event scheduler)";
      run_domains ~engine ?faults ~domains ~skip_publish_fence cfg

let avg_throughput r ~between:(lo, hi) =
  let xs =
    List.filter_map (fun (t, v) -> if t >= lo && t <= hi then Some v else None) r.throughput
  in
  Stats.mean xs

let final_space r = match List.rev r.version_space with (_, v) :: _ -> int_of_float v | [] -> 0

let peak_space r =
  List.fold_left (fun acc (_, v) -> max acc (int_of_float v)) 0 r.version_space

let peak_chain r = List.fold_left (fun acc (_, v) -> max acc (int_of_float v)) 0 r.max_chain
