(** Mode-independent summary of a run, for sim-vs-domains differential
    testing.

    A digest condenses one {!Runner.result} into the quantities both
    execution modes must agree on: exact safety facts (invariant
    violations, the SIRO 0/1-hole chain shape, prune-stats
    conservation) and statistical aggregates (commits, space peak,
    latency and chain percentiles, throughput) that are compared under
    per-field tolerances — Domains mode interleaves for real, so counts
    shifted by scheduling noise are expected; counts shifted by a lost
    update or a skipped publish fence are not.

    What agreement does and does not prove (DESIGN §4f): a matching
    digest says the two modes computed statistically indistinguishable
    histories and neither violated a safety invariant; it does not say
    the histories are identical, and it cannot certify the absence of
    races the workload never provoked. *)

type t = {
  mode : string;  (** "sim" or "domains" *)
  domains : int;
  gc_backend : string;
      (** installed GC backend name ("vcutter" un-hooked); part of the
          experiment identity, compared exactly *)
  commits : int;
  conflicts : int;
  llt_reads : int;
  retries : int;
  give_ups : int;
  sheds : int;
  wal_errors : int;
  faults_injected : int;
  invariant_violations : int;  (** exact; must be 0 in both modes *)
  peak_space : int;
  final_space : int;
  peak_chain : int;
  prune_relocated : int;
  prune_in_flight : int;
      (** conservation-law residue; negative means counters were lost *)
  prune_completeness : float;  (** pruned / settled, 1.0 when nothing settled *)
  max_holes : int;  (** largest hole count in any live chain; SIRO legal <= 1 *)
  holey_chains : int;
  avg_throughput : float;  (** commits/s over the whole run *)
  latency_p50_us : int;
  latency_p99_us : int;
  chain_p50 : int;  (** from the final chain-length CDF *)
  chain_p99 : int;
  lag_armed : bool;
  max_reclamation_lag_us : int;  (** compared only when armed in both *)
}

val of_result : mode:string -> domains:int -> Exp_config.t -> Runner.result -> t

(** Per-field closeness for the statistical counters: [a] and [b] agree
    when [|a - b| <= max abs (rel * max |a| |b|)]. *)
type tol = { rel : float; abs : int }

type tolerance = {
  commits : tol;
  conflicts : tol;
  llt_reads : tol;
  retries : tol;
  give_ups : tol;
  sheds : tol;
  wal_errors : tol;
  space : tol;  (** peak and final bytes *)
  chain : tol;  (** peak length and CDF percentiles *)
  latency : tol;  (** p50/p99 microseconds *)
  lag : tol;  (** max reclamation lag, microseconds *)
}

val default_tolerance : tolerance
(** Calibrated on the differential qcheck matrix: wide enough that
    honest scheduling noise between the modes never trips it, tight
    enough that losing any worker's published counters always does. *)

val diff : ?tolerance:tolerance -> t -> t -> string list
(** Human-readable mismatches, empty when the digests agree. Safety
    fields (violations, hole shape, conservation) are exact — any
    nonzero violation count or >1-hole chain on either side is itself a
    mismatch; statistical fields use the tolerance. *)

val to_json : t -> Jsonx.t
val pp : Format.formatter -> t -> unit
