type llt_spec = { start_s : float; duration_s : float; count : int }
type phase = { at_s : float; pattern : Access.pattern }

type t = {
  name : string;
  seed : int;
  duration_s : float;
  workers : int;
  reads_per_txn : int;
  writes_per_txn : int;
  schema : Schema.t;
  phases : phase list;
  llts : llt_spec list;
  gc_period : Clock.time;
  sample_period_s : float;
  ckpt_period_s : float;
}

let default =
  {
    name = "default";
    seed = 42;
    duration_s = 60.;
    workers = 16;
    reads_per_txn = 4;
    writes_per_txn = 2;
    schema = Schema.default;
    phases = [ { at_s = 0.; pattern = Access.Uniform } ];
    llts = [];
    gc_period = Clock.ms 10;
    sample_period_s = 1.0;
    ckpt_period_s = 0.25;
  }

let pattern_at t s =
  let rec pick current = function
    | [] -> current
    | { at_s; pattern } :: rest -> if s >= at_s then pick pattern rest else current
  in
  match t.phases with
  | [] -> Access.Uniform
  | { pattern; _ } :: rest -> pick pattern rest
