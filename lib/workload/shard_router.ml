type scenario =
  | Uniform_shards
  | Zipfian_shards of float
  | Hot_shard of { shard : int; pct : int }

let scenario_to_string = function
  | Uniform_shards -> "uniform"
  | Zipfian_shards s -> Printf.sprintf "zipf(%.2f)" s
  | Hot_shard { shard; pct } -> Printf.sprintf "hot(%d:%d%%)" shard pct

let scenario_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "uniform" -> Some Uniform_shards
  | "zipf" | "zipfian" -> Some (Zipfian_shards 1.2)
  | "hot" | "hot-shard" -> Some (Hot_shard { shard = 0; pct = 80 })
  | _ -> None

type shard_picker = Uniform_pick | Zipf_pick of Zipf.t | Hot_pick of { shard : int; pct : int }
type row_sampler = Uniform_rows | Zipf_rows of Zipf.t array (* one per shard *)

type t = {
  shards : int;
  records : int;
  rows : row_sampler;
  picker : shard_picker;
}

let local_records ~shards ~records ~sid =
  Shard_group.local_records ~shards ~records ~sid

let create ?(row = Access.Uniform) ~shards schema scenario =
  if shards < 1 then invalid_arg "Shard_router.create: need at least one shard";
  let records = Schema.records schema in
  let picker =
    match scenario with
    | Uniform_shards -> Uniform_pick
    | Zipfian_shards s -> Zipf_pick (Zipf.create ~n:shards ~s)
    | Hot_shard { shard; pct } ->
        if shard < 0 || shard >= shards then
          invalid_arg "Shard_router.create: hot shard out of range";
        if pct < 0 || pct > 100 then invalid_arg "Shard_router.create: pct out of range";
        Hot_pick { shard; pct }
  in
  let rows =
    match row with
    | Access.Uniform -> Uniform_rows
    | Access.Zipfian s ->
        Zipf_rows
          (Array.init shards (fun sid ->
               Zipf.create ~n:(max 1 (local_records ~shards ~records ~sid)) ~s))
  in
  { shards; records; rows; picker }

let shard_count t = t.shards
let local_count t ~sid = local_records ~shards:t.shards ~records:t.records ~sid

let pick_shard t rng =
  match t.picker with
  | Uniform_pick -> Rng.int rng t.shards
  | Zipf_pick z -> Zipf.sample z rng
  | Hot_pick { shard; pct } ->
      if Rng.int rng 100 < pct then shard
      else if t.shards = 1 then 0
      else begin
        (* Cold traffic spreads uniformly over the other shards. *)
        let other = Rng.int rng (t.shards - 1) in
        if other >= shard then other + 1 else other
      end

let sample_on t rng ~sid =
  let count = max 1 (local_count t ~sid) in
  let local =
    match t.rows with
    | Uniform_rows -> Rng.int rng count
    | Zipf_rows zs -> Zipf.sample zs.(sid) rng
  in
  (local * t.shards) + sid

let sample t rng =
  let sid = pick_shard t rng in
  sample_on t rng ~sid
