type t = {
  mode : string;
  domains : int;
  gc_backend : string;
  commits : int;
  conflicts : int;
  llt_reads : int;
  retries : int;
  give_ups : int;
  sheds : int;
  wal_errors : int;
  faults_injected : int;
  invariant_violations : int;
  peak_space : int;
  final_space : int;
  peak_chain : int;
  prune_relocated : int;
  prune_in_flight : int;
  prune_completeness : float;
  max_holes : int;
  holey_chains : int;
  avg_throughput : float;
  latency_p50_us : int;
  latency_p99_us : int;
  chain_p50 : int;
  chain_p99 : int;
  lag_armed : bool;
  max_reclamation_lag_us : int;
}

let pctl h p = if Histogram.total h = 0 then 0 else Histogram.percentile h p

(* Percentile over the final chain-length CDF: smallest length covering
   the fraction. *)
let cdf_pctl cdf p =
  let rec find = function
    | [] -> 0
    | (v, f) :: rest -> if f >= p then v else find rest
  in
  find cdf

let of_result ~mode ~domains (cfg : Exp_config.t) (r : Runner.result) =
  let max_holes, holey_chains =
    match r.Runner.driver with
    | None -> (0, 0)
    | Some d ->
        let worst = ref 0 and holey = ref 0 in
        Llb.iter d.State.llb (fun chain ->
            let h = Chain.holes chain in
            if h > !worst then worst := h;
            if h > 0 then incr holey);
        (!worst, !holey)
  in
  let relocated, in_flight, completeness =
    match r.Runner.driver with
    | None -> (0, 0, 1.)
    | Some d ->
        let s = Driver.stats d in
        let pruned = Prune_stats.prune1_total s + Prune_stats.prune2_total s in
        let settled = pruned + Prune_stats.stored_total s in
        ( Prune_stats.relocated s,
          Prune_stats.in_flight s,
          if settled = 0 then 1. else float_of_int pruned /. float_of_int settled )
  in
  let faults_injected =
    List.fold_left (fun acc (_, n) -> acc + n) 0 (Fault_report.faults_injected r.Runner.faults)
  in
  {
    mode;
    domains;
    gc_backend =
      (match r.Runner.driver with Some d -> Driver.gc_backend_name d | None -> "vcutter");
    commits = r.Runner.commits;
    conflicts = r.Runner.conflicts;
    llt_reads = r.Runner.llt_reads;
    retries = r.Runner.retries;
    give_ups = r.Runner.give_ups;
    sheds = r.Runner.sheds;
    wal_errors = r.Runner.wal_errors;
    faults_injected;
    invariant_violations = Fault_report.violation_count r.Runner.faults;
    peak_space = Runner.peak_space r;
    final_space = Runner.final_space r;
    peak_chain = Runner.peak_chain r;
    prune_relocated = relocated;
    prune_in_flight = in_flight;
    prune_completeness = completeness;
    max_holes;
    holey_chains;
    avg_throughput =
      (if cfg.Exp_config.duration_s > 0. then
         float_of_int r.Runner.commits /. cfg.Exp_config.duration_s
       else 0.);
    latency_p50_us = pctl r.Runner.latency_us 0.5;
    latency_p99_us = pctl r.Runner.latency_us 0.99;
    chain_p50 = cdf_pctl r.Runner.chain_cdf 0.5;
    chain_p99 = cdf_pctl r.Runner.chain_cdf 0.99;
    lag_armed = Histogram.total r.Runner.reclamation_lag_us > 0 || r.Runner.max_reclamation_lag > 0;
    max_reclamation_lag_us = r.Runner.max_reclamation_lag / 1_000;
  }

type tol = { rel : float; abs : int }

type tolerance = {
  commits : tol;
  conflicts : tol;
  llt_reads : tol;
  retries : tol;
  give_ups : tol;
  sheds : tol;
  wal_errors : tol;
  space : tol;
  chain : tol;
  latency : tol;
  lag : tol;
}

(* Calibrated against the differential qcheck matrix (test_differential):
   real interleaving shifts conflict/retry counts a lot and the
   volume/space counters a little; a lost publication shifts commits by
   a worker's whole output, far past any of these. *)
let default_tolerance =
  {
    commits = { rel = 0.20; abs = 400 };
    conflicts = { rel = 2.0; abs = 150 };
    llt_reads = { rel = 0.25; abs = 400 };
    retries = { rel = 2.0; abs = 60 };
    give_ups = { rel = 2.0; abs = 25 };
    sheds = { rel = 2.0; abs = 25 };
    wal_errors = { rel = 2.0; abs = 80 };
    (* Peak space is the spikiest field: under a space-storm plan one
       extra LLT-pinned segment riding through a burst doubles the
       transient peak, so only a >2x divergence is flagged. *)
    space = { rel = 1.0; abs = 65536 };
    chain = { rel = 1.0; abs = 12 };
    latency = { rel = 0.75; abs = 60 };
    lag = { rel = 2.0; abs = 100_000 };
  }

let close tol a b =
  let slack = max tol.abs (int_of_float (tol.rel *. float_of_int (max (abs a) (abs b)))) in
  abs (a - b) <= slack

let diff ?(tolerance = default_tolerance) a b =
  let out = ref [] in
  let say fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  let approx name tol v =
    if not (close tol (v a) (v b)) then
      say "%s: %s=%d vs %s=%d (tol rel=%.2f abs=%d)" name a.mode (v a) b.mode (v b) tol.rel
        tol.abs
  in
  (* Safety facts first: each side must be clean on its own. *)
  List.iter
    (fun d ->
      if d.invariant_violations > 0 then
        say "%s mode: %d invariant violations" d.mode d.invariant_violations;
      if d.max_holes > 1 then
        say "%s mode: chain with %d holes (SIRO allows at most 1)" d.mode d.max_holes;
      if d.prune_in_flight < 0 then
        say "%s mode: prune conservation violated (in_flight=%d)" d.mode d.prune_in_flight)
    [ a; b ];
  (* The backend identity is part of the experiment, not a statistic:
     any disagreement is a mismatch outright. *)
  if a.gc_backend <> b.gc_backend then
    say "gc_backend: %s=%s vs %s=%s" a.mode a.gc_backend b.mode b.gc_backend;
  approx "commits" tolerance.commits (fun d -> d.commits);
  approx "conflicts" tolerance.conflicts (fun d -> d.conflicts);
  approx "llt_reads" tolerance.llt_reads (fun d -> d.llt_reads);
  approx "retries" tolerance.retries (fun d -> d.retries);
  approx "give_ups" tolerance.give_ups (fun d -> d.give_ups);
  approx "sheds" tolerance.sheds (fun d -> d.sheds);
  approx "wal_errors" tolerance.wal_errors (fun d -> d.wal_errors);
  approx "peak_space" tolerance.space (fun d -> d.peak_space);
  approx "final_space" tolerance.space (fun d -> d.final_space);
  approx "peak_chain" tolerance.chain (fun d -> d.peak_chain);
  approx "chain_p50" tolerance.chain (fun d -> d.chain_p50);
  approx "chain_p99" tolerance.chain (fun d -> d.chain_p99);
  approx "latency_p50_us" tolerance.latency (fun d -> d.latency_p50_us);
  approx "latency_p99_us" tolerance.latency (fun d -> d.latency_p99_us);
  (* Relocation volume tracks maintenance work; completeness is the
     prune-soundness headline. Space tolerance fits both scales. *)
  approx "prune_relocated" tolerance.space (fun d -> d.prune_relocated);
  if Float.abs (a.prune_completeness -. b.prune_completeness) > 0.25 then
    say "prune_completeness: %s=%.3f vs %s=%.3f" a.mode a.prune_completeness b.mode
      b.prune_completeness;
  if a.lag_armed && b.lag_armed then
    approx "max_reclamation_lag_us" tolerance.lag (fun d -> d.max_reclamation_lag_us);
  List.rev !out

let to_json d =
  Jsonx.Obj
    [
      ("mode", Jsonx.Str d.mode);
      ("domains", Jsonx.Int d.domains);
      ("gc_backend", Jsonx.Str d.gc_backend);
      ("commits", Jsonx.Int d.commits);
      ("conflicts", Jsonx.Int d.conflicts);
      ("llt_reads", Jsonx.Int d.llt_reads);
      ("retries", Jsonx.Int d.retries);
      ("give_ups", Jsonx.Int d.give_ups);
      ("sheds", Jsonx.Int d.sheds);
      ("wal_errors", Jsonx.Int d.wal_errors);
      ("faults_injected", Jsonx.Int d.faults_injected);
      ("invariant_violations", Jsonx.Int d.invariant_violations);
      ("peak_space", Jsonx.Int d.peak_space);
      ("final_space", Jsonx.Int d.final_space);
      ("peak_chain", Jsonx.Int d.peak_chain);
      ("prune_relocated", Jsonx.Int d.prune_relocated);
      ("prune_in_flight", Jsonx.Int d.prune_in_flight);
      ("prune_completeness", Jsonx.Float d.prune_completeness);
      ("max_holes", Jsonx.Int d.max_holes);
      ("holey_chains", Jsonx.Int d.holey_chains);
      ("avg_throughput", Jsonx.Float d.avg_throughput);
      ("latency_p50_us", Jsonx.Int d.latency_p50_us);
      ("latency_p99_us", Jsonx.Int d.latency_p99_us);
      ("chain_p50", Jsonx.Int d.chain_p50);
      ("chain_p99", Jsonx.Int d.chain_p99);
      ("lag_armed", Jsonx.Bool d.lag_armed);
      ("max_reclamation_lag_us", Jsonx.Int d.max_reclamation_lag_us);
    ]

let pp fmt d =
  Format.fprintf fmt
    "@[<v>[%s x%d gc=%s] commits=%d conflicts=%d llt_reads=%d sheds=%d violations=%d@ \
     space peak=%d final=%d chain peak=%d p50=%d p99=%d holes max=%d chains=%d@ \
     prune relocated=%d in_flight=%d completeness=%.3f lat p50=%dus p99=%dus lag=%dus@]"
    d.mode d.domains d.gc_backend d.commits d.conflicts d.llt_reads d.sheds
    d.invariant_violations
    d.peak_space d.final_space d.peak_chain d.chain_p50 d.chain_p99 d.max_holes
    d.holey_chains d.prune_relocated d.prune_in_flight d.prune_completeness d.latency_p50_us
    d.latency_p99_us d.max_reclamation_lag_us
