type mode = Sim | Domains of { domains : int }

type cfg = {
  base : Exp_config.t;
  shards : int;
  scenario : Shard_router.scenario;
  cross_pct : int; (* % of writing transactions forced to span two shards *)
  epoch_period : Clock.time;
  crash_points : int list; (* cumulative-LSN power-loss schedule *)
  crash_steps : int list; (* global 2PC step indices, ascending *)
  torn_tail : bool;
  skip_coord_decision : bool;
  check_period : Clock.time; (* invariant sweep; 0 disables *)
  net : Net_fault.config; (* message-fault model; none = transparent *)
  net_sabotage : Shard_group.net_sabotage option;
  net_tick : Clock.time; (* resolver sweep period (faulty configs only) *)
  replicas : int; (* backups per shard; 0 = replication layer absent *)
  rep_quorum : int option; (* sync-replication quorum; None = majority *)
  rep_lease : Clock.time; (* primary authority lease *)
  rep_sweep : Clock.time; (* failover scheduler period *)
  rep_lag_bound : Clock.time; (* bounded-failover-lag budget *)
  kill_steps : int list; (* global replication-step kill schedule, ascending *)
  node_faults : Fault_plan.t option; (* Node_kill / Node_revive arrivals *)
  revive_after : Clock.time; (* age at which dead nodes are revived *)
  failover_sabotage : Replica.sabotage option;
}

let default ~shards base =
  {
    base;
    shards;
    scenario = Shard_router.Uniform_shards;
    cross_pct = 30;
    epoch_period = Clock.ms 5;
    crash_points = [];
    crash_steps = [];
    torn_tail = false;
    skip_coord_decision = false;
    check_period = Clock.ms 50;
    net = Net_fault.none;
    net_sabotage = None;
    net_tick = Clock.ms 1;
    replicas = 0;
    rep_quorum = None;
    rep_lease = Clock.ms 50;
    rep_sweep = Clock.ms 2;
    rep_lag_bound = Clock.ms 250;
    kill_steps = [];
    node_faults = None;
    (* Past the 50 ms lease: by default a killed node stays down long
       enough for the lease to expire and a successor to be promoted,
       so every kill exercises a real failover (and the fencing of the
       returning node). Set below the lease to model fast reboots that
       rescue the primary's timeline instead. *)
    revive_after = Clock.ms 80;
    failover_sabotage = None;
  }

(* Anything that makes the fabric non-transparent: the resolver process
   must run, and the digest grows a net block. *)
let net_active cfg = (not (Net_fault.is_none cfg.net)) || cfg.net_sabotage <> None

type net_digest = {
  nd_sent : int;
  nd_dropped : int; (* loss + partition drops *)
  nd_retried : int;
  nd_net_aborts : int; (* cross-shard fail-fasts *)
  nd_indoubt_max_us : int; (* longest in-doubt residence *)
}

type rep_digest = {
  rd_replicas : int;
  rd_quorum : int;
  rd_kills : int;
  rd_revives : int;
  rd_promotions : int; (* summed over shards *)
  rd_fencings : int; (* stale-epoch frames refused, summed *)
  rd_stale_acks : int; (* sabotage-fabricated client acks *)
  rd_restarts : int; (* engine restarts: crash recoveries + promotions *)
  rd_lag_max_us : int; (* worst completed failover lag *)
}

type digest = {
  d_mode : string;
  d_shards : int;
  d_commits : int;
  d_conflicts : int;
  d_cross_commits : int;
  d_violations : int;
  d_peak_space : int;
  d_throughput : float;
  d_net : net_digest option; (* absent for transparent-fabric runs *)
  d_repl : rep_digest option; (* absent when replicas = 0 *)
}

let digest_to_json d =
  Jsonx.Obj
    ([
       ("mode", Jsonx.Str d.d_mode);
       ("shards", Jsonx.Int d.d_shards);
       ("commits", Jsonx.Int d.d_commits);
       ("conflicts", Jsonx.Int d.d_conflicts);
       ("cross_commits", Jsonx.Int d.d_cross_commits);
       ("violations", Jsonx.Int d.d_violations);
       ("peak_space", Jsonx.Int d.d_peak_space);
       ("throughput", Jsonx.Float d.d_throughput);
     ]
    @
    (* The net block appears only when a fault config was active, so
       no-fault digests stay byte-identical to the pre-net layer. *)
    (match d.d_net with
    | None -> []
    | Some n ->
        [
          ( "net",
            Jsonx.Obj
              [
                ("sent", Jsonx.Int n.nd_sent);
                ("dropped", Jsonx.Int n.nd_dropped);
                ("retried", Jsonx.Int n.nd_retried);
                ("net_aborts", Jsonx.Int n.nd_net_aborts);
                ("indoubt_max_us", Jsonx.Int n.nd_indoubt_max_us);
              ] );
        ])
    @
    (* Likewise the repl block: [--replicas 0] digests keep the exact
       bytes of the unreplicated driver. *)
    match d.d_repl with
    | None -> []
    | Some r ->
        [
          ( "repl",
            Jsonx.Obj
              [
                ("replicas", Jsonx.Int r.rd_replicas);
                ("quorum", Jsonx.Int r.rd_quorum);
                ("kills", Jsonx.Int r.rd_kills);
                ("revives", Jsonx.Int r.rd_revives);
                ("promotions", Jsonx.Int r.rd_promotions);
                ("fencings", Jsonx.Int r.rd_fencings);
                ("stale_acks", Jsonx.Int r.rd_stale_acks);
                ("restarts", Jsonx.Int r.rd_restarts);
                ("failover_lag_max_us", Jsonx.Int r.rd_lag_max_us);
              ] );
        ])

(* Sim vs Domains agree on safety exactly and on load statistically:
   Domains interleaves for real, so counts drift with scheduling. Slack
   follows Run_digest: an absolute floor for small-run noise (a run
   short enough that no sampler fired can legitimately report a fully
   pruned peak of zero) under a relative band for real divergence. *)
let digest_diff ?(tol = 0.5) a b =
  let acc = ref [] in
  let say fmt = Format.kasprintf (fun s -> acc := s :: !acc) fmt in
  if a.d_shards <> b.d_shards then say "shards: %d vs %d" a.d_shards b.d_shards;
  if a.d_violations <> 0 || b.d_violations <> 0 then
    say "violations: %d (%s) vs %d (%s)" a.d_violations a.d_mode b.d_violations b.d_mode;
  let close ~rel ~abs x y =
    let slack = max abs (int_of_float (rel *. float_of_int (max x y))) in
    Stdlib.abs (x - y) <= slack
  in
  if not (close ~rel:tol ~abs:400 a.d_commits b.d_commits) then
    say "commits: %d vs %d (beyond %.0f%% + 400)" a.d_commits b.d_commits (tol *. 100.);
  if not (close ~rel:1.0 ~abs:65536 a.d_peak_space b.d_peak_space) then
    say "peak_space: %d vs %d (beyond 2x + 64KiB)" a.d_peak_space b.d_peak_space;
  (* Cross-shard traffic must exist in both modes or neither. *)
  if (a.d_cross_commits = 0) <> (b.d_cross_commits = 0) then
    say "cross_commits: %d vs %d" a.d_cross_commits b.d_cross_commits;
  (* Net blocks must agree on presence; volume drifts with real
     interleaving, so only gross disagreement (an order of magnitude
     beyond a floor) counts. *)
  (match (a.d_net, b.d_net) with
  | None, None -> ()
  | Some _, None | None, Some _ -> say "net digest present in one mode only"
  | Some na, Some nb ->
      if not (close ~rel:4.0 ~abs:4096 na.nd_sent nb.nd_sent) then
        say "net sent: %d vs %d (beyond 5x + 4096)" na.nd_sent nb.nd_sent);
  (* The replication layer must be configured identically in both modes;
     kill/promotion volumes come from the same seeded plan but success
     depends on interleaving-sensitive budget refusals, so only gross
     disagreement counts. *)
  (match (a.d_repl, b.d_repl) with
  | None, None -> ()
  | Some _, None | None, Some _ -> say "repl digest present in one mode only"
  | Some ra, Some rb ->
      if ra.rd_replicas <> rb.rd_replicas || ra.rd_quorum <> rb.rd_quorum then
        say "repl config: %d/%d vs %d/%d" ra.rd_replicas ra.rd_quorum rb.rd_replicas
          rb.rd_quorum;
      if not (close ~rel:1.0 ~abs:8 ra.rd_kills rb.rd_kills) then
        say "repl kills: %d vs %d (beyond 2x + 8)" ra.rd_kills rb.rd_kills;
      if not (close ~rel:1.0 ~abs:8 ra.rd_promotions rb.rd_promotions) then
        say "repl promotions: %d vs %d (beyond 2x + 8)" ra.rd_promotions rb.rd_promotions;
      (* Fabricated client acks are a sabotage artifact: both modes run
         the same sabotage knob, so presence must agree. *)
      if (ra.rd_stale_acks = 0) <> (rb.rd_stale_acks = 0) then
        say "repl stale_acks: %d vs %d" ra.rd_stale_acks rb.rd_stale_acks);
  List.rev !acc

type result = {
  commits : int;
  conflicts : int;
  cross_commits : int;
  single_commits : int;
  two_pc_steps : int;
  llt_reads : int;
  crashes : int;
  recoveries : Engine.restart_info list;
  report : Fault_report.t;
  peak_space : int;
  final_space : int;
  epochs : int;
  throughput : float;
  net_aborts : int; (* cross-shard fail-fasts under partition/loss *)
  indoubt_max_us : int;
  indoubt_mean_us : float;
  failover_lags_us : int list; (* completed failovers, oldest first *)
  digest : digest;
}

exception Crash_now
(* Raised by the 2PC step hook to die at an exact protocol point; caught
   by the owning worker, which then runs the whole-system restart. *)

let make_digest ~mode ~shards ~commits ~conflicts ~cross ~violations ~peak ~tput ~net ~rep
    =
  {
    d_mode = mode;
    d_shards = shards;
    d_commits = commits;
    d_conflicts = conflicts;
    d_cross_commits = cross;
    d_violations = violations;
    d_peak_space = peak;
    d_throughput = tput;
    d_net = net;
    d_repl = rep;
  }

let viols_of_pairs ps =
  List.map (fun (invariant, detail) -> { Invariant.invariant; detail }) ps

(* Net block + per-shard gauges, recorded only for active fault
   configs: transparent runs keep their pre-net report and digest
   bytes. *)
let net_digest_of g =
  let s = Shard_group.net_stats g in
  {
    nd_sent = s.Bus.sent;
    nd_dropped = s.Bus.dropped_loss + s.Bus.dropped_partition;
    nd_retried = s.Bus.retried;
    nd_net_aborts = Shard_group.net_aborts g;
    nd_indoubt_max_us = Shard_group.max_indoubt_residence g / 1000;
  }

let record_net_gauges report g =
  let s = Shard_group.net_stats g in
  Fault_report.set_gauge report "net-sent" s.Bus.sent;
  Fault_report.set_gauge report "net-dropped" (s.Bus.dropped_loss + s.Bus.dropped_partition);
  Fault_report.set_gauge report "net-duplicated" s.Bus.duplicated;
  Fault_report.set_gauge report "net-retried" s.Bus.retried;
  Fault_report.set_gauge report "net-aborts" (Shard_group.net_aborts g);
  Fault_report.set_gauge report "indoubt-max-us" (Shard_group.max_indoubt_residence g / 1000);
  Metrics.set_gauge "net.sent" (float_of_int s.Bus.sent);
  Metrics.set_gauge "net.dropped" (float_of_int (s.Bus.dropped_loss + s.Bus.dropped_partition));
  Metrics.set_gauge "net.retried" (float_of_int s.Bus.retried);
  for sid = 0 to Shard_group.shard_count g - 1 do
    Fault_report.set_gauge report
      (Printf.sprintf "indoubt-s%d" sid)
      (Shard_group.indoubt_count g ~sid);
    Fault_report.set_gauge report
      (Printf.sprintf "epoch-lag-s%d" sid)
      (Shard_group.epoch_lag g ~sid);
    Metrics.set_gauge
      (Printf.sprintf "shard.indoubt.s%d" sid)
      (float_of_int (Shard_group.indoubt_count g ~sid));
    Metrics.set_gauge
      (Printf.sprintf "shard.epoch_lag.s%d" sid)
      (float_of_int (Shard_group.epoch_lag g ~sid))
  done

(* ------------------------------------------------------------------ *)
(* Replication plumbing shared by both modes. *)

let rep_total f r ~shards =
  let acc = ref 0 in
  for sid = 0 to shards - 1 do
    acc := !acc + f r ~sid
  done;
  !acc

let rep_digest_of r ~replicas ~shards ~restarts =
  let lag_max = List.fold_left (fun m (_, l) -> max m l) 0 (Replica.lags r) in
  {
    rd_replicas = replicas;
    rd_quorum = Replica.quorum r;
    rd_kills = Replica.kills r;
    rd_revives = Replica.revives r;
    rd_promotions = rep_total Replica.promotions r ~shards;
    rd_fencings = rep_total Replica.fencings r ~shards;
    rd_stale_acks = Replica.stale_ack_count r;
    rd_restarts = restarts;
    rd_lag_max_us = lag_max / 1000;
  }

(* Satellite: restart and promotion/fencing visibility is uniform across
   modes — the same gauge names feed the Sim-vs-Domains differential. *)
let record_rep_gauges report r ~shards ~restarts =
  Fault_report.set_gauge report "rep-kills" (Replica.kills r);
  Fault_report.set_gauge report "rep-revives" (Replica.revives r);
  Fault_report.set_gauge report "recovery-restarts" restarts;
  Fault_report.set_gauge report "rep-stale-acks" (Replica.stale_ack_count r);
  for sid = 0 to shards - 1 do
    Fault_report.set_gauge report
      (Printf.sprintf "promotions-s%d" sid)
      (Replica.promotions r ~sid);
    Fault_report.set_gauge report
      (Printf.sprintf "fencings-s%d" sid)
      (Replica.fencings r ~sid);
    Metrics.set_gauge
      (Printf.sprintf "replica.promotions.s%d" sid)
      (float_of_int (Replica.promotions r ~sid));
    Metrics.set_gauge
      (Printf.sprintf "replica.fencings.s%d" sid)
      (float_of_int (Replica.fencings r ~sid))
  done

(* Arm the replication layer when configured: attach the group's devices
   and install the kill-step hook. Steps are counted globally across
   shards, and a scheduled kill lands between a step's intent and its
   send — exactly the windows the acceptance campaigns probe. The hook
   only marks nodes dead (never raises); the group's end-of-call
   re-checks turn the death into refused votes and unacked commits. *)
let setup_replicas (cfg : cfg) g =
  if cfg.replicas = 0 then None
  else begin
    let r =
      Replica.create ?quorum:cfg.rep_quorum ~lease:cfg.rep_lease ~replicas:cfg.replicas
        ~wals:(Shard_group.wals g) ()
    in
    Shard_group.attach_replicas g r;
    Replica.set_sabotage r cfg.failover_sabotage;
    let kill_steps = ref cfg.kill_steps in
    let steps = ref 0 in
    Replica.set_on_step r (fun ~now step ->
        incr steps;
        match !kill_steps with
        | p :: rest when !steps >= p -> (
            kill_steps := rest;
            let sid = Replica.rstep_sid step in
            let victim =
              match step with
              | Replica.R_ack { node; _ } -> Some node
              | Replica.R_ship _ | Replica.R_quorum _ | Replica.R_promote _ ->
                  Replica.primary r ~sid
            in
            match victim with
            | Some node -> ignore (Replica.kill r ~sid ~node ~now)
            | None -> ())
        | _ -> ());
    Some r
  end

(* One failover-scheduler beat: plan-driven kills and revives (victims
   drawn from the runner's own stream, never the workload's), age-based
   revives so kill-step campaigns recover even without a revive process,
   the lease sweep itself, and the online replication checks. Returns
   the violation rows observed this beat. *)
let failover_beat (cfg : cfg) r ~node_rng ~dead_since ~note ~now =
  (match cfg.node_faults with
  | None -> ()
  | Some plan ->
      List.iter
        (fun a ->
          match a with
          | Fault_plan.Node_kill ->
              let sid = Rng.int node_rng cfg.shards in
              let node = Rng.int node_rng (cfg.replicas + 1) in
              if Replica.kill r ~sid ~node ~now then note "node-kill"
          | Fault_plan.Node_revive -> (
              match Replica.dead_nodes r with
              | (sid, node) :: _ ->
                  if Replica.revive r ~sid ~node ~now then note "node-revive"
              | [] -> ())
          | _ -> ())
        (Fault_plan.poll plan ~now));
  let dead = Replica.dead_nodes r in
  let stale =
    Hashtbl.fold
      (fun k (_ : Clock.time) acc -> if List.mem k dead then acc else k :: acc)
      dead_since []
  in
  List.iter (Hashtbl.remove dead_since) stale;
  List.iter
    (fun (sid, node) ->
      match Hashtbl.find_opt dead_since (sid, node) with
      | None -> Hashtbl.replace dead_since (sid, node) now
      | Some since ->
          if now - since >= cfg.revive_after && Replica.revive r ~sid ~node ~now
          then begin
            Hashtbl.remove dead_since (sid, node);
            note "node-revive"
          end)
    dead;
  Replica.sweep r ~now;
  Replica.check_no_split_brain r @ Replica.check_failover_lag r ~bound:cfg.rep_lag_bound ~now

(* The client-visible commit ledger the loss oracle audits: everything
   the group acknowledged plus anything a stale claimant fabricated. *)
let rep_acked g r = Shard_group.acked g @ Replica.stale_acked r

(* ------------------------------------------------------------------ *)
(* Sim mode: deterministic discrete-event campaign with the full fault
   surface — LSN crash points, crash-at-every-2PC-step, torn tails. *)

let run_sim (cfg : cfg) =
  Failpoint.with_scope @@ fun () ->
  let base = cfg.base in
  let g = Shard_group.create ~net:cfg.net ~shards:cfg.shards base.Exp_config.schema in
  Shard_group.set_skip_coord_decision g cfg.skip_coord_decision;
  Shard_group.set_net_sabotage g cfg.net_sabotage;
  let repl = setup_replicas cfg g in
  let faulty = net_active cfg in
  (* Replication makes the fabric non-transparent the same way net
     faults do: the resolver must tick and the group must quiesce. *)
  let active = faulty || repl <> None in
  let row = Exp_config.pattern_at base 0.0 in
  let router = Shard_router.create ~row ~shards:cfg.shards base.Exp_config.schema cfg.scenario in
  let sched = Scheduler.create () in
  let master_rng = Rng.create base.Exp_config.seed in
  let horizon = Clock.seconds base.Exp_config.duration_s in
  let report = Fault_report.create () in
  let record_all ~at vs =
    List.iter
      (fun { Invariant.invariant; detail } -> Fault_report.record report ~at ~invariant ~detail)
      vs
  in
  let commits = ref 0 in
  let conflicts = ref 0 in
  let llt_reads = ref 0 in
  let crashes = ref 0 in
  let recoveries = ref [] in
  let peak_space = ref 0 in
  let drop_slots : (Clock.time -> unit) Vec.t = Vec.create () in
  (* Prune audits on every shard: unsound shard-local discards under the
     (possibly stale) epoch snapshot surface immediately. *)
  Array.iter
    (fun (sh : Shard.t) ->
      Invariant.install_prune_audit sh.Shard.driver ~on_violation:(fun ~now viol ->
          record_all ~at:now [ viol ]))
    (Shard_group.shards g);
  (* Crash-at-every-2PC-step: the hook fires after each durable protocol
     action; reaching a scheduled step raises out of the commit in
     progress, leaving the system exactly as the step left it. *)
  let crash_steps = ref cfg.crash_steps in
  Shard_group.set_on_step g
    (Some
       (fun n _ ->
         match !crash_steps with
         | p :: rest when n >= p ->
             crash_steps := rest;
             raise Crash_now
         | _ -> ()));
  let torn_rr = ref 0 in
  let do_crash_restart ~now =
    incr crashes;
    Fault_report.note_fault report "crash-restart";
    Vec.iter (fun drop -> drop now) drop_slots;
    Shard_group.crash_all g;
    if cfg.torn_tail then begin
      (* A fabricated tail frame on a rotating shard: a commit for a
         transaction the surviving prefix says is undecided. Honest
         recovery truncates it by CRC. *)
      let sid = !torn_rr mod cfg.shards in
      incr torn_rr;
      let wal = (Shard_group.shards g).(sid).Shard.wal in
      let exp = Wal_recovery.expect (Wal_recovery.analyze wal) in
      let tid, cts =
        match exp.Wal_recovery.losers with
        | tid :: _ -> (tid, exp.Wal_recovery.oracle_floor + 1)
        | [] ->
            (exp.Wal_recovery.oracle_floor + 999983, exp.Wal_recovery.oracle_floor + 999984)
      in
      let frame =
        Wal_record.encode_with_bad_crc
          {
            Wal_record.lsn = Wal.next_lsn wal;
            at = now;
            shard = Wal.shard wal;
            payload = Wal_record.Txn_commit { tid; cts };
          }
      in
      ignore (Wal.inject_raw wal frame);
      Fault_report.note_fault report "torn-tail"
    end;
    let infos = Shard_group.restart_all g ~now in
    recoveries := List.rev_append infos !recoveries;
    Array.iter
      (fun (sh : Shard.t) -> record_all ~at:now (Invariant.check_post_recovery sh.Shard.driver))
      (Shard_group.shards g);
    record_all ~at:now
      (Invariant.check_cross_shard_atomicity
         ~clog:(Txn_manager.commit_log (Shard_group.mgr g))
         (Shard_group.wals g))
  in
  (* OLTP workers, routed across shards. A drawn fraction of writing
     transactions is forced to touch a second shard — the 2PC traffic. *)
  let spawn_worker i =
    let rng = Rng.split master_rng in
    let pending = ref None in
    Vec.push drop_slots (fun _now -> pending := None);
    Scheduler.spawn sched ~name:(Printf.sprintf "worker-%d" i) ~at:0 (fun now ->
        match !pending with
        | None ->
            if now >= horizon then Scheduler.Finished
            else begin
              let txn, t = Shard_group.begin_txn g ~now in
              pending := Some txn;
              Scheduler.Sleep_until t
            end
        | Some txn -> (
            pending := None;
            let t = ref now in
            let cross =
              cfg.shards > 1
              && base.Exp_config.writes_per_txn > 1
              && Rng.int rng 100 < cfg.cross_pct
            in
            try
              for _ = 1 to base.Exp_config.reads_per_txn do
                let rid = Shard_router.sample router rng in
                let _, t' = Shard_group.read g txn ~rid ~now:!t in
                t := t'
              done;
              let first_sid = ref 0 in
              for w = 0 to base.Exp_config.writes_per_txn - 1 do
                let rid =
                  if w = 0 then begin
                    let rid = Shard_router.sample router rng in
                    first_sid := Shard_group.shard_of g ~rid;
                    rid
                  end
                  else if cross then
                    (* Spread the rest of the write set over the other
                       shards, round-robin from the first. *)
                    Shard_router.sample_on router rng
                      ~sid:((!first_sid + w) mod cfg.shards)
                  else Shard_router.sample_on router rng ~sid:!first_sid
                in
                match Shard_group.write g txn ~rid ~payload:(Rng.int rng 1_000_000) ~now:!t with
                | Engine.Committed_path t' -> t := t'
                | Engine.Conflict t' ->
                    t := t';
                    raise Exit
              done;
              match Shard_group.commit_checked g txn ~now:!t with
              | Shard_group.Committed t' ->
                  t := t';
                  incr commits;
                  Scheduler.Sleep_until !t
              | Shard_group.Net_abort t' ->
                  (* Cross-shard fail-fast: a participant was
                     unreachable. Back off hard before offering more
                     load — the degradation contract is pressure, not a
                     wedged pipeline. *)
                  t := t';
                  Scheduler.Sleep_until (!t + Shard_group.net_indoubt_after g)
            with
            | Exit ->
                incr conflicts;
                t := Shard_group.abort g txn ~now:!t;
                Scheduler.Sleep_until !t
            | Shard_group.Shard_down _ ->
                (* A primaryless shard refused the operation. Abort and
                   back off past one lease-expiry-plus-sweep window so
                   the failover scheduler gets to promote before this
                   worker offers load again. *)
                t := Shard_group.abort g txn ~now:!t;
                Scheduler.Sleep_until (!t + cfg.rep_lease + (2 * cfg.rep_sweep))
            | Crash_now ->
                (* The 2PC step hook killed the system mid-commit. The
                   in-flight transaction (ours included) dies with it;
                   recovery decides every orphaned prepare from the
                   logs. *)
                do_crash_restart ~now:!t;
                Scheduler.Sleep_until (!t + Clock.us 100)))
  in
  for i = 0 to base.Exp_config.workers - 1 do
    spawn_worker i
  done;
  (* LLT fleet: long read-only scans pinning global snapshots — what
     makes stale-epoch pruning and the space curves interesting. *)
  List.iteri
    (fun gi { Exp_config.start_s; duration_s; count } ->
      for li = 0 to count - 1 do
        let rng = Rng.split master_rng in
        let state = ref None in
        Vec.push drop_slots (fun _now -> state := None);
        let llt_end = Clock.seconds (start_s +. duration_s) in
        Scheduler.spawn sched
          ~name:(Printf.sprintf "llt-%d-%d" gi li)
          ~at:(Clock.seconds start_s)
          (fun now ->
            match !state with
            | None ->
                if now >= llt_end || now >= horizon then Scheduler.Finished
                else begin
                  let txn, t = Shard_group.begin_txn g ~now in
                  state := Some txn;
                  Scheduler.Sleep_until t
                end
            | Some txn ->
                if now >= llt_end || now >= horizon then begin
                  state := None;
                  ignore (Shard_group.commit g txn ~now);
                  Scheduler.Finished
                end
                else begin
                  let rid = Shard_router.sample router rng in
                  match Shard_group.read g txn ~rid ~now with
                  | _, t ->
                      incr llt_reads;
                      Scheduler.Sleep_until t
                  | exception Shard_group.Shard_down _ ->
                      (* The shard died (or fenced this pre-failover
                         snapshot): abort the scan and restart it fresh —
                         holding the snapshot pinned forever would block
                         pruning groupwide. *)
                      state := None;
                      let t = Shard_group.abort g txn ~now in
                      Scheduler.Sleep_until (t + cfg.rep_lease + (2 * cfg.rep_sweep))
                end)
      done)
    base.Exp_config.llts;
  (* Background maintenance across every shard. *)
  Scheduler.spawn sched ~name:"gc" ~at:base.Exp_config.gc_period (fun now ->
      if now >= horizon then Scheduler.Finished
      else begin
        let t = Shard_group.maintenance g ~now in
        Scheduler.Sleep_until (max t (now + base.Exp_config.gc_period))
      end);
  (* The epoch broadcaster: the only process that reads the global live
     table for pruning purposes. *)
  Scheduler.spawn sched ~name:"epoch" ~at:cfg.epoch_period (fun now ->
      ignore (Shard_group.broadcast ~now g);
      if now >= horizon then Scheduler.Finished else Scheduler.Sleep_until (now + cfg.epoch_period));
  (* The net resolver: pump due frames, resend unacked decisions, run
     the in-doubt termination protocol. Spawned only for active fault
     configs, so the transparent fabric adds no scheduler process (and
     keeps dispatch-probe crash timing byte-identical). *)
  if active then
    Scheduler.spawn sched ~name:"net" ~at:cfg.net_tick (fun now ->
        (try Shard_group.tick g ~now with Crash_now -> do_crash_restart ~now);
        if now >= horizon then Scheduler.Finished else Scheduler.Sleep_until (now + cfg.net_tick));
  (* The failover scheduler: node-fault plan polling, age-based revives,
     lease sweeps / promotions, and the online replication checks. *)
  (match repl with
  | None -> ()
  | Some r ->
      let node_rng = Rng.create (base.Exp_config.seed lxor 0x6b696c6c) in
      let dead_since = Hashtbl.create 8 in
      Scheduler.spawn sched ~name:"failover" ~at:cfg.rep_sweep (fun now ->
          let vs =
            failover_beat cfg r ~node_rng ~dead_since
              ~note:(Fault_report.note_fault report)
              ~now
          in
          record_all ~at:now (viols_of_pairs vs);
          if now >= horizon then Scheduler.Finished
          else Scheduler.Sleep_until (now + cfg.rep_sweep)));
  (* Periodic invariant sweep: per-shard catalogue plus the static
     cross-shard 2PC checks (the latter catch a skipped decision with
     no crash at all). *)
  let spawn_invariants () =
    Scheduler.spawn sched ~name:"invariants" ~at:cfg.check_period (fun now ->
        Fault_report.note_check report;
        Array.iter
          (fun (sh : Shard.t) -> record_all ~at:now (Invariant.check_all sh.Shard.driver))
          (Shard_group.shards g);
        (* Log analysis is linear in the logs; one pass feeds every
           log-level oracle of this sweep. *)
        let wals = Shard_group.wals g in
        let analyses = Invariant.analyze_shard_logs wals in
        record_all ~at:now (Invariant.check_cross_shard_atomicity ~analyses wals);
        (* The loss oracle runs continuously, not just at the end: an
           acked commit missing from the surviving logs is a violation
           at every sweep between the kill that lost it and the
           checkpoint frontier that archives it. *)
        (match repl with
        | None -> ()
        | Some r ->
            record_all ~at:now
              (Invariant.check_no_committed_loss ~analyses ~acked:(rep_acked g r) wals));
        if now >= horizon then Scheduler.Finished else Scheduler.Sleep_until (now + cfg.check_period))
  in
  (* Replicated runs register the sweep before the checkpointer: their
     periods share grid instants, and a sweep must observe each ordinary
     checkpoint's instant before the checkpointer archives the epoch —
     otherwise a loss from a promotion landing within one check period
     of the checkpoint could be aged out unseen. Unreplicated runs keep
     the historical registration order (dispatch order at shared
     instants is part of their byte-stable behavior). *)
  if cfg.check_period > 0 && repl <> None then spawn_invariants ();
  (* Fuzzy checkpoints, every shard in turn. *)
  if base.Exp_config.ckpt_period_s > 0. then begin
    let period = max 1 (Clock.seconds base.Exp_config.ckpt_period_s) in
    Scheduler.spawn sched ~name:"checkpointer" ~at:period (fun now ->
        Array.iter
          (fun (sh : Shard.t) ->
            match sh.Shard.engine.Engine.checkpoint with
            | Some ckpt -> ckpt ~now
            | None -> ())
          (Shard_group.shards g);
        if now >= horizon then Scheduler.Finished else Scheduler.Sleep_until (now + period))
  end;
  (* Sampler: peak space over the group. *)
  let sample_period = max 1 (Clock.seconds base.Exp_config.sample_period_s) in
  Scheduler.spawn sched ~name:"sampler" ~at:sample_period (fun now ->
      let s = Shard_group.sample g in
      if s.Engine.version_bytes > !peak_space then peak_space := s.Engine.version_bytes;
      if now >= horizon then Scheduler.Finished else Scheduler.Sleep_until (now + sample_period));
  if cfg.check_period > 0 && repl = None then spawn_invariants ();
  (* Crash points in global log position: power loss the first time the
     summed LSN reaches each point, checked at every dispatch. *)
  let crash_points = ref cfg.crash_points in
  Scheduler.set_probe sched (fun ~name:_ ~now ->
      match !crash_points with
      | p :: rest when Shard_group.total_lsn g >= p ->
          crash_points := rest;
          do_crash_restart ~now
      | _ -> ());
  let engine_failed =
    try
      ignore (Scheduler.run sched ~until:horizon);
      false
    with exn ->
      Fault_report.record report ~at:(Scheduler.now sched) ~invariant:"engine-failure"
        ~detail:(Printexc.to_string exn);
      true
  in
  Scheduler.clear_probe sched;
  Shard_group.set_on_step g None;
  (* Post-horizon settlement for faulty fabrics: drain in-flight
     frames and resolve every in-doubt transaction the horizon cut
     off (a never-healing partition legitimately leaves residue; the
     liveness check below skips still-severed pairs). *)
  let endt =
    if active && not engine_failed then Shard_group.quiesce g ~now:horizon else horizon
  in
  if not engine_failed then Shard_group.finish g ~now:horizon;
  Array.iter (fun (sh : Shard.t) -> Invariant.remove_prune_audit sh.Shard.driver) (Shard_group.shards g);
  (* End-of-run verdicts: the full catalogue per shard, and the
     cross-shard oracle over every surviving log. *)
  Array.iter
    (fun (sh : Shard.t) -> record_all ~at:horizon (Invariant.check_all sh.Shard.driver))
    (Shard_group.shards g);
  let final_wals = Shard_group.wals g in
  let final_analyses = Invariant.analyze_shard_logs final_wals in
  record_all ~at:horizon
    (Invariant.check_cross_shard_atomicity ~analyses:final_analyses final_wals);
  if active then begin
    record_all ~at:endt (viols_of_pairs (Shard_group.check_indoubt_liveness g ~now:endt));
    record_all ~at:endt (viols_of_pairs (Shard_group.check_epoch_lag g ~now:endt));
    if faulty then record_net_gauges report g
  end;
  (* Replication verdicts: split-brain and lag over the final node
     state, and the loss oracle over the authoritative (post-failover)
     devices against the full client-visible ack ledger. *)
  let rep_restarts r =
    List.length !recoveries + rep_total Replica.promotions r ~shards:cfg.shards
  in
  (match repl with
  | None -> ()
  | Some r ->
      record_all ~at:endt (viols_of_pairs (Replica.check_no_split_brain r));
      record_all ~at:endt
        (viols_of_pairs (Replica.check_failover_lag r ~bound:cfg.rep_lag_bound ~now:endt));
      record_all ~at:endt
        (Invariant.check_no_committed_loss ~analyses:final_analyses
           ~acked:(rep_acked g r) final_wals);
      record_rep_gauges report r ~shards:cfg.shards ~restarts:(rep_restarts r));
  let final = Shard_group.sample g in
  if final.Engine.version_bytes > !peak_space then peak_space := final.Engine.version_bytes;
  Fault_report.set_gauge report "commits" !commits;
  Fault_report.set_gauge report "cross-commits" (Shard_group.cross_commits g);
  Fault_report.set_gauge report "single-commits" (Shard_group.single_commits g);
  Fault_report.set_gauge report "2pc-steps" (Shard_group.two_pc_steps g);
  Fault_report.set_gauge report "epochs" (Epoch.epoch (Shard_group.epoch g));
  if !crashes > 0 then Fault_report.set_gauge report "crash-restarts" !crashes;
  let tput = float_of_int !commits /. Float.max 1e-9 base.Exp_config.duration_s in
  {
    commits = !commits;
    conflicts = !conflicts;
    cross_commits = Shard_group.cross_commits g;
    single_commits = Shard_group.single_commits g;
    two_pc_steps = Shard_group.two_pc_steps g;
    llt_reads = !llt_reads;
    crashes = !crashes;
    recoveries = List.rev !recoveries;
    report;
    peak_space = !peak_space;
    final_space = final.Engine.version_bytes;
    epochs = Epoch.epoch (Shard_group.epoch g);
    throughput = tput;
    net_aborts = Shard_group.net_aborts g;
    indoubt_max_us = Shard_group.max_indoubt_residence g / 1000;
    indoubt_mean_us = Shard_group.mean_indoubt_residence g /. 1000.;
    failover_lags_us =
      (match repl with
      | None -> []
      | Some r -> List.map (fun (_, l) -> l / 1000) (Replica.lags r));
    digest =
      make_digest ~mode:"sim" ~shards:cfg.shards ~commits:!commits ~conflicts:!conflicts
        ~cross:(Shard_group.cross_commits g)
        ~violations:(Fault_report.violation_count report)
        ~peak:!peak_space ~tput
        ~net:(if faulty then Some (net_digest_of g) else None)
        ~rep:
          (match repl with
          | None -> None
          | Some r ->
              Some
                (rep_digest_of r ~replicas:cfg.replicas ~shards:cfg.shards
                   ~restarts:(rep_restarts r)));
  }

(* ------------------------------------------------------------------ *)
(* Domains mode: the honest (crash-free) campaign on real OCaml 5
   domains over the Exec bounded-skew substrate — the same task shapes
   as Sim, with virtual clocks advanced by the same simulated costs, so
   load statistics land close to the Sim digest. Every group call goes
   through one mutex: engine state is serialized at operation
   granularity while operations from different domains genuinely
   interleave (transactions overlap, conflicts happen). Statistically —
   not bit — reproducible; compare with {!digest_diff}. *)

let run_domains ~domains (cfg : cfg) =
  if cfg.crash_points <> [] || cfg.crash_steps <> [] || cfg.torn_tail then
    invalid_arg "Shard_runner: crash faults are Sim-only (stop-the-world constructs)";
  if domains < 1 then invalid_arg "Shard_runner: need at least one domain";
  Failpoint.with_scope @@ fun () ->
  let base = cfg.base in
  let g = Shard_group.create ~net:cfg.net ~shards:cfg.shards base.Exp_config.schema in
  Shard_group.set_skip_coord_decision g cfg.skip_coord_decision;
  Shard_group.set_net_sabotage g cfg.net_sabotage;
  let repl = setup_replicas cfg g in
  let faulty = net_active cfg in
  let active = faulty || repl <> None in
  let row = Exp_config.pattern_at base 0.0 in
  let router = Shard_router.create ~row ~shards:cfg.shards base.Exp_config.schema cfg.scenario in
  let horizon = Clock.seconds base.Exp_config.duration_s in
  let exec = Exec.domains ~domains () in
  let lock = Mutex.create () in
  let locked f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f
  in
  let commits = Atomic.make 0 in
  let conflicts = Atomic.make 0 in
  let llt_reads = Atomic.make 0 in
  let peak_space = Atomic.make 0 in
  let master_rng = Rng.create base.Exp_config.seed in
  let spawn_worker i =
    let rng = Rng.split master_rng in
    let pending = ref None in
    Exec.spawn exec ~name:(Printf.sprintf "worker-%d" i) ~at:0 (fun now ->
        match !pending with
        | None ->
            if now >= horizon then Exec.Finished
            else begin
              let txn, t = locked (fun () -> Shard_group.begin_txn g ~now) in
              pending := Some txn;
              Exec.Sleep_until t
            end
        | Some txn -> (
            pending := None;
            let t = ref now in
            let cross =
              cfg.shards > 1
              && base.Exp_config.writes_per_txn > 1
              && Rng.int rng 100 < cfg.cross_pct
            in
            try
              for _ = 1 to base.Exp_config.reads_per_txn do
                let rid = Shard_router.sample router rng in
                let _, t' = locked (fun () -> Shard_group.read g txn ~rid ~now:!t) in
                t := t'
              done;
              let first_sid = ref 0 in
              for w = 0 to base.Exp_config.writes_per_txn - 1 do
                let rid =
                  if w = 0 then begin
                    let rid = Shard_router.sample router rng in
                    first_sid := Shard_group.shard_of g ~rid;
                    rid
                  end
                  else if cross then
                    Shard_router.sample_on router rng
                      ~sid:((!first_sid + w) mod cfg.shards)
                  else Shard_router.sample_on router rng ~sid:!first_sid
                in
                match
                  locked (fun () ->
                      Shard_group.write g txn ~rid ~payload:(Rng.int rng 1_000_000) ~now:!t)
                with
                | Engine.Committed_path t' -> t := t'
                | Engine.Conflict t' ->
                    t := t';
                    raise Exit
              done;
              (match locked (fun () -> Shard_group.commit_checked g txn ~now:!t) with
              | Shard_group.Committed t' ->
                  t := t';
                  Atomic.incr commits;
                  Exec.Sleep_until !t
              | Shard_group.Net_abort t' ->
                  (* Fail-fast under partition: back off for the in-doubt
                     window before offering new load (back-pressure). *)
                  t := t';
                  Exec.Sleep_until (!t + Shard_group.net_indoubt_after g))
            with
            | Exit ->
                Atomic.incr conflicts;
                t := locked (fun () -> Shard_group.abort g txn ~now:!t);
                Exec.Sleep_until !t
            | Shard_group.Shard_down _ ->
                (* Primaryless shard: abort, back off past the failover
                   window before offering new load. *)
                t := locked (fun () -> Shard_group.abort g txn ~now:!t);
                Exec.Sleep_until (!t + cfg.rep_lease + (2 * cfg.rep_sweep))))
  in
  for i = 0 to base.Exp_config.workers - 1 do
    spawn_worker i
  done;
  List.iteri
    (fun gi { Exp_config.start_s; duration_s; count } ->
      for li = 0 to count - 1 do
        let rng = Rng.split master_rng in
        let state = ref None in
        let llt_end = Clock.seconds (start_s +. duration_s) in
        Exec.spawn exec
          ~name:(Printf.sprintf "llt-%d-%d" gi li)
          ~at:(Clock.seconds start_s)
          (fun now ->
            match !state with
            | None ->
                if now >= llt_end || now >= horizon then Exec.Finished
                else begin
                  let txn, t = locked (fun () -> Shard_group.begin_txn g ~now) in
                  state := Some txn;
                  Exec.Sleep_until t
                end
            | Some txn ->
                if now >= llt_end || now >= horizon then begin
                  state := None;
                  ignore (locked (fun () -> Shard_group.commit g txn ~now));
                  Exec.Finished
                end
                else begin
                  let rid = Shard_router.sample router rng in
                  match locked (fun () -> Shard_group.read g txn ~rid ~now) with
                  | _, t ->
                      Atomic.incr llt_reads;
                      Exec.Sleep_until t
                  | exception Shard_group.Shard_down _ ->
                      (* Abort and restart the scan — see the Sim twin. *)
                      state := None;
                      let t = locked (fun () -> Shard_group.abort g txn ~now) in
                      Exec.Sleep_until (t + cfg.rep_lease + (2 * cfg.rep_sweep))
                end)
      done)
    base.Exp_config.llts;
  Exec.spawn exec ~name:"gc" ~at:base.Exp_config.gc_period (fun now ->
      if now >= horizon then Exec.Finished
      else begin
        let t = locked (fun () -> Shard_group.maintenance g ~now) in
        Exec.Sleep_until (max t (now + base.Exp_config.gc_period))
      end);
  Exec.spawn exec ~name:"epoch" ~at:cfg.epoch_period (fun now ->
      ignore (locked (fun () -> Shard_group.broadcast ~now g));
      if now >= horizon then Exec.Finished else Exec.Sleep_until (now + cfg.epoch_period));
  if active then
    Exec.spawn exec ~name:"net" ~at:cfg.net_tick (fun now ->
        locked (fun () -> Shard_group.tick g ~now);
        if now >= horizon then Exec.Finished else Exec.Sleep_until (now + cfg.net_tick));
  (* The failover scheduler, serialized like every other group call.
     Domains builds its report only after the run, so violations seen
     mid-run are staged and replayed into it at the end. *)
  let rep_viols : (Clock.time * Invariant.violation) list ref = ref [] in
  (match repl with
  | None -> ()
  | Some r ->
      let node_rng = Rng.create (base.Exp_config.seed lxor 0x6b696c6c) in
      let dead_since = Hashtbl.create 8 in
      Exec.spawn exec ~name:"failover" ~at:cfg.rep_sweep (fun now ->
          locked (fun () ->
              let vs =
                failover_beat cfg r ~node_rng ~dead_since ~note:(fun _ -> ()) ~now
              in
              List.iter
                (fun viol -> rep_viols := (now, viol) :: !rep_viols)
                (viols_of_pairs vs));
          if now >= horizon then Exec.Finished else Exec.Sleep_until (now + cfg.rep_sweep)));
  if base.Exp_config.ckpt_period_s > 0. then begin
    let period = max 1 (Clock.seconds base.Exp_config.ckpt_period_s) in
    Exec.spawn exec ~name:"checkpointer" ~at:period (fun now ->
        locked (fun () ->
            Array.iter
              (fun (sh : Shard.t) ->
                match sh.Shard.engine.Engine.checkpoint with
                | Some ckpt -> ckpt ~now
                | None -> ())
              (Shard_group.shards g));
        if now >= horizon then Exec.Finished else Exec.Sleep_until (now + period))
  end;
  let sample_period = max 1 (Clock.seconds base.Exp_config.sample_period_s) in
  Exec.spawn exec ~name:"sampler" ~at:sample_period (fun now ->
      let s = locked (fun () -> Shard_group.sample g) in
      if s.Engine.version_bytes > Atomic.get peak_space then
        Atomic.set peak_space s.Engine.version_bytes;
      if now >= horizon then Exec.Finished else Exec.Sleep_until (now + sample_period));
  ignore (Exec.run exec ~until:horizon);
  let endt =
    if active then locked (fun () -> Shard_group.quiesce g ~now:horizon) else horizon
  in
  locked (fun () -> Shard_group.finish g ~now:horizon);
  let report = Fault_report.create () in
  let record_all ~at vs =
    List.iter
      (fun { Invariant.invariant; detail } -> Fault_report.record report ~at ~invariant ~detail)
      vs
  in
  Fault_report.note_check report;
  Array.iter
    (fun (sh : Shard.t) -> record_all ~at:horizon (Invariant.check_all sh.Shard.driver))
    (Shard_group.shards g);
  let final_wals = Shard_group.wals g in
  let final_analyses = Invariant.analyze_shard_logs final_wals in
  record_all ~at:horizon
    (Invariant.check_cross_shard_atomicity ~analyses:final_analyses final_wals);
  if active then begin
    record_all ~at:endt (viols_of_pairs (Shard_group.check_indoubt_liveness g ~now:endt));
    record_all ~at:endt (viols_of_pairs (Shard_group.check_epoch_lag g ~now:endt));
    if faulty then record_net_gauges report g
  end;
  let rep_restarts r = rep_total Replica.promotions r ~shards:cfg.shards in
  (match repl with
  | None -> ()
  | Some r ->
      List.iter
        (fun (at, { Invariant.invariant; detail }) ->
          Fault_report.record report ~at ~invariant ~detail)
        (List.rev !rep_viols);
      record_all ~at:endt (viols_of_pairs (Replica.check_no_split_brain r));
      record_all ~at:endt
        (viols_of_pairs (Replica.check_failover_lag r ~bound:cfg.rep_lag_bound ~now:endt));
      record_all ~at:endt
        (Invariant.check_no_committed_loss ~analyses:final_analyses
           ~acked:(rep_acked g r) final_wals);
      record_rep_gauges report r ~shards:cfg.shards ~restarts:(rep_restarts r));
  let final = Shard_group.sample g in
  if final.Engine.version_bytes > Atomic.get peak_space then
    Atomic.set peak_space final.Engine.version_bytes;
  let tput = float_of_int (Atomic.get commits) /. Float.max 1e-9 base.Exp_config.duration_s in
  {
    commits = Atomic.get commits;
    conflicts = Atomic.get conflicts;
    cross_commits = Shard_group.cross_commits g;
    single_commits = Shard_group.single_commits g;
    two_pc_steps = Shard_group.two_pc_steps g;
    llt_reads = Atomic.get llt_reads;
    crashes = 0;
    recoveries = [];
    report;
    peak_space = Atomic.get peak_space;
    final_space = final.Engine.version_bytes;
    epochs = Epoch.epoch (Shard_group.epoch g);
    throughput = tput;
    net_aborts = Shard_group.net_aborts g;
    indoubt_max_us = Shard_group.max_indoubt_residence g / 1000;
    indoubt_mean_us = Shard_group.mean_indoubt_residence g /. 1000.;
    failover_lags_us =
      (match repl with
      | None -> []
      | Some r -> List.map (fun (_, l) -> l / 1000) (Replica.lags r));
    digest =
      make_digest ~mode:"domains" ~shards:cfg.shards ~commits:(Atomic.get commits)
        ~conflicts:(Atomic.get conflicts)
        ~cross:(Shard_group.cross_commits g)
        ~violations:(Fault_report.violation_count report)
        ~peak:(Atomic.get peak_space) ~tput
        ~net:(if faulty then Some (net_digest_of g) else None)
        ~rep:
          (match repl with
          | None -> None
          | Some r ->
              Some
                (rep_digest_of r ~replicas:cfg.replicas ~shards:cfg.shards
                   ~restarts:(rep_restarts r)));
  }

let run ?(mode = Sim) cfg =
  if cfg.shards < 1 then invalid_arg "Shard_runner.run: need at least one shard";
  if cfg.replicas < 0 then invalid_arg "Shard_runner.run: negative replica count";
  (* Whole-node kills and power-loss crashes do not compose: [Wal.crash]
     truncates to the flushed prefix non-deterministically relative to
     what backups already mirrored, leaving LSN gaps the contiguous
     [Wal.receive] protocol is designed to refuse. *)
  if cfg.replicas > 0 && (cfg.crash_points <> [] || cfg.crash_steps <> [] || cfg.torn_tail)
  then invalid_arg "Shard_runner.run: crash faults are incompatible with replication";
  if
    cfg.replicas = 0
    && (cfg.kill_steps <> [] || cfg.node_faults <> None || cfg.failover_sabotage <> None)
  then invalid_arg "Shard_runner.run: node faults require replicas > 0";
  match mode with Sim -> run_sim cfg | Domains { domains } -> run_domains ~domains cfg
