(** Keyspace router for sharded deployments: which shard a transaction
    touches, and which record within it.

    The physical mapping (global rid [r] → shard [r mod n], local rid
    [r / n]) belongs to {!Shard_group}; this module decides the
    {e traffic} shape across shards — uniform, Zipfian-across-shards,
    or an explicit hot shard — with an independent within-shard row
    distribution. *)

type scenario =
  | Uniform_shards
  | Zipfian_shards of float  (** Zipf exponent over shard ids *)
  | Hot_shard of { shard : int; pct : int }
      (** [pct]% of traffic lands on [shard]; the rest uniform over the
          others *)

val scenario_to_string : scenario -> string
val scenario_of_string : string -> scenario option
(** ["uniform"], ["zipf"] (exponent 1.2), ["hot"] (shard 0, 80%). *)

type t

val create : ?row:Access.pattern -> shards:int -> Schema.t -> scenario -> t
(** [row] (default uniform) is the within-shard row distribution;
    Zipfian tables are precomputed per shard. Raises
    [Invalid_argument] on [shards < 1], a hot shard out of range, or a
    percentage outside [0, 100]. *)

val shard_count : t -> int
val local_count : t -> sid:int -> int
val pick_shard : t -> Rng.t -> int
val sample : t -> Rng.t -> int
(** Draw a global rid: shard by the scenario, row by [row]. *)

val sample_on : t -> Rng.t -> sid:int -> int
(** Draw a global rid on a {e given} shard — how the workload forces a
    transaction to be cross-shard. *)
