(** Experiment configuration: the paper's evaluation knobs (§5.1). *)

type llt_spec = {
  start_s : float;  (** simulated time the LLT group joins *)
  duration_s : float;  (** how long each LLT lives before committing *)
  count : int;  (** transactions in the group *)
}

type phase = {
  at_s : float;  (** phase start *)
  pattern : Access.pattern;
}

type t = {
  name : string;
  seed : int;
  duration_s : float;
  workers : int;  (** simulated cores running the OLTP mix *)
  reads_per_txn : int;
  writes_per_txn : int;
  schema : Schema.t;
  phases : phase list;  (** ascending [at_s]; first at 0.0 *)
  llts : llt_spec list;
  gc_period : Clock.time;  (** background vacuum/purge/vCutter cadence *)
  sample_period_s : float;
  ckpt_period_s : float;
      (** fuzzy-checkpoint cadence for durable engines; the checkpointer
          process only exists when the engine exposes one, so the knob
          is inert (and the run unchanged) otherwise *)
}

val default : t
(** 60 s, 16 workers, 4 reads + 2 writes per transaction, uniform
    access over the default schema, GC every 10 ms, 1 s samples, no
    LLTs. *)

val pattern_at : t -> float -> Access.pattern
(** The access pattern in force at a given simulated second. *)
