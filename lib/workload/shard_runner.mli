(** Campaign driver for sharded deployments.

    Sim mode is the seed discrete-event scheduler over a
    {!Shard_group}: OLTP workers routed by a {!Shard_router} (a drawn
    fraction of writing transactions forced cross-shard, i.e. through
    2PC), an LLT fleet pinning global snapshots, per-shard background
    maintenance and fuzzy checkpoints, a global epoch broadcaster, and
    the full fault surface — power loss at scheduled global log
    positions, {b crash-at-every-2PC-step} via the group's step hook,
    and torn tails on a rotating shard. After every restart the
    per-shard post-recovery catalogue and the cross-shard atomicity
    oracle both run; the static 2PC checks also run in the periodic
    sweep and at the end of every run, so a skipped coordinator
    decision is caught even without a crash. Whole runs are
    deterministic: same config, same bytes.

    Domains mode runs the honest path on real OCaml 5 domains over the
    {!Exec} bounded-skew substrate — the same task shapes and simulated
    costs as Sim, interleaved for real, with one mutex serializing
    group calls at operation granularity — statistically reproducible,
    compared across modes with {!digest_diff}. Crash faults are
    Sim-only and rejected ([Invalid_argument]).

    Both modes can attach a {!Net_fault} config: the 2PC and epoch
    choreography then rides the seeded lossy fabric, a periodic
    resolver task pumps it (resends, in-doubt termination), post-run
    the fabric is quiesced and the network invariants
    (in-doubt-liveness, reclamation-lag-after-heal) recorded, and the
    digest grows a net block. With [Net_fault.none] and no sabotage the
    fabric is provably transparent — reports and digests are
    byte-identical to the pre-fabric driver. *)

type mode = Sim | Domains of { domains : int }

type cfg = {
  base : Exp_config.t;  (** workload shape: workers, mix, LLTs, periods *)
  shards : int;
  scenario : Shard_router.scenario;
  cross_pct : int;  (** % of writing transactions forced to span two shards *)
  epoch_period : Clock.time;
  crash_points : int list;  (** power loss when the summed LSN reaches each *)
  crash_steps : int list;  (** crash at these global 2PC step indices, ascending *)
  torn_tail : bool;
  skip_coord_decision : bool;  (** sabotage: never force the decision record *)
  check_period : Clock.time;  (** invariant sweep period; 0 disables *)
  net : Net_fault.config;  (** message-fault model; {!Net_fault.none} = transparent *)
  net_sabotage : Shard_group.net_sabotage option;
  net_tick : Clock.time;  (** resolver sweep period (active fault configs only) *)
  replicas : int;  (** backups per shard; 0 = replication layer absent *)
  rep_quorum : int option;  (** sync-replication quorum; [None] = majority *)
  rep_lease : Clock.time;  (** primary authority lease *)
  rep_sweep : Clock.time;  (** failover scheduler period *)
  rep_lag_bound : Clock.time;  (** bounded-failover-lag budget *)
  kill_steps : int list;
      (** kill a node of the step's shard when the global replication
          step counter reaches each index, ascending — R_ship/R_quorum
          steps kill the shard's primary, R_ack steps the acking backup *)
  node_faults : Fault_plan.t option;
      (** seeded [Node_kill]/[Node_revive] arrivals (other actions are
          ignored); victims are drawn from the runner's own stream *)
  revive_after : Clock.time;
      (** age at which dead nodes are revived; the default exceeds the
          lease so every kill runs a full failover — below the lease a
          fast reboot rescues the dead primary's own timeline instead *)
  failover_sabotage : Replica.sabotage option;
}

val default : shards:int -> Exp_config.t -> cfg
(** Uniform routing, 30% cross-shard, 5 ms epochs, 50 ms sweeps, no
    faults, transparent fabric, 1 ms resolver ticks, no replication
    (50 ms leases, 2 ms failover sweeps, a 250 ms lag budget and an
    80 ms revive age once [replicas > 0]). *)

type net_digest = {
  nd_sent : int;
  nd_dropped : int;  (** loss + partition drops *)
  nd_retried : int;
  nd_net_aborts : int;  (** cross-shard fail-fasts *)
  nd_indoubt_max_us : int;  (** longest in-doubt residence *)
}

type rep_digest = {
  rd_replicas : int;
  rd_quorum : int;
  rd_kills : int;
  rd_revives : int;
  rd_promotions : int;  (** summed over shards *)
  rd_fencings : int;  (** stale-epoch frames refused, summed *)
  rd_stale_acks : int;  (** sabotage-fabricated client acks *)
  rd_restarts : int;  (** engine restarts: crash recoveries + promotions *)
  rd_lag_max_us : int;  (** worst completed failover lag *)
}

type digest = {
  d_mode : string;
  d_shards : int;
  d_commits : int;
  d_conflicts : int;
  d_cross_commits : int;
  d_violations : int;
  d_peak_space : int;
  d_throughput : float;
  d_net : net_digest option;
      (** present iff a fault config or net sabotage was active — the
          JSON of a transparent run stays byte-identical to the
          pre-fabric driver *)
  d_repl : rep_digest option;
      (** present iff [replicas > 0] — unreplicated digests keep the
          exact bytes of the pre-replication driver *)
}

val digest_to_json : digest -> Jsonx.t

val digest_diff : ?tol:float -> digest -> digest -> string list
(** Empty when the digests agree: violations exactly zero in both,
    commits within the relative tolerance (default 0.5 — Domains
    interleaves for real) with a 400-commit floor, peak space within 2x
    with a 64 KiB floor, cross-shard traffic present in both or
    neither, net blocks present in both or neither, and net send
    volume within gross (5x + 4096) agreement. *)

type result = {
  commits : int;
  conflicts : int;
  cross_commits : int;
  single_commits : int;
  two_pc_steps : int;
  llt_reads : int;
  crashes : int;
  recoveries : Engine.restart_info list;
  report : Fault_report.t;  (** faults injected, checks run, violations *)
  peak_space : int;
  final_space : int;
  epochs : int;
  throughput : float;  (** commits/s over the whole run *)
  net_aborts : int;  (** cross-shard transactions failed fast as unreachable *)
  indoubt_max_us : int;  (** longest prepared→resolved residence (µs) *)
  indoubt_mean_us : float;
  failover_lags_us : int list;
      (** completed failovers (kill → promotion), oldest first, µs *)
  digest : digest;
}

val run : ?mode:mode -> cfg -> result
(** Raises [Invalid_argument] for a bad shard or replica count, for
    crash faults combined with replication (power loss truncates the
    device out from under the contiguous mirror protocol), or for node
    faults / failover sabotage without [replicas > 0]. With
    [replicas > 0] the failover scheduler runs in both modes: node
    kills and revives from [node_faults] and [kill_steps], lease-based
    promotions with engine restart and in-doubt recovery on the
    promoted timeline, and the replication invariants
    ([no-committed-loss], [no-split-brain], [bounded-failover-lag])
    recorded continuously and at the end of the run. *)
