(** Discrete-event experiment runner.

    Builds an engine, spawns worker processes (the OLTP mix), LLT driver
    processes, a background GC process and a metrics sampler, then runs
    the simulation and collects the series the paper's figures plot.

    Fidelity note (documented in DESIGN.md): each worker computes one
    whole short transaction per scheduling step, so a short
    transaction's read view may reflect commits that complete within the
    same step window. The error is bounded by one transaction duration
    (tens of microseconds); LLTs — the phenomenon under study — live for
    many seconds across thousands of steps and are modeled exactly. *)

type result = {
  engine_name : string;
  throughput : (float * float) list;  (** (second, commits/s) *)
  version_space : (float * float) list;  (** (second, bytes) *)
  redo : (float * float) list;  (** (second, cumulative redo bytes) *)
  max_chain : (float * float) list;  (** (second, longest valid chain) *)
  splits : (float * float) list;  (** (second, cumulative page splits) *)
  chain_cdf : (int * float) list;  (** final chain-length CDF (Fig 14) *)
  latency_us : Histogram.t;  (** committed-transaction latency (10 us buckets) *)
  commits : int;
  conflicts : int;
  llt_reads : int;
  truncations : int;
  latch_wait : Clock.time;  (** cumulative latch queueing time *)
  cut_delays : (Vclass.t * Clock.time) list;  (** vDriver engines only *)
  driver : Driver.t option;
  faults : Fault_report.t;
      (** injected faults, invariant sweeps, and any violations; empty
          when the run had no fault plan. Always carries the end-of-run
          robustness gauges ([wal-errors], [retries], [give-ups],
          [sheds]). *)
  wal_errors : int;  (** log appends rejected by fault injection *)
  retries : int;
      (** backed-off re-executions after forced aborts and governor
          sheds (both OLTP workers and LLT drivers) *)
  give_ups : int;  (** transactions abandoned after the retry budget *)
  sheds : int;
      (** victims evicted by the governor's snapshot-too-old policy *)
  crashes : int;
      (** durable crash-restarts taken (crash points + Poisson crashes
          on a durable engine) *)
  recoveries : Engine.restart_info list;
      (** one per crash-restart, in order — replay/truncation/rollback
          counts and the simulated recovery duration *)
  zombie_cancels : int;
      (** transactions cancelled by the watchdog's shed rung: past their
          lease, no progress, and pinning otherwise-dead versions *)
  watchdog_escalations : int;
      (** upward moves of the liveness ladder; 0 when not armed *)
  max_reclamation_lag : Clock.time;
      (** largest dead-to-reclaimed (or dead-and-still-resident) lag the
          monitor observed; 0 when not armed *)
  reclamation_lag_us : Histogram.t;
      (** per-segment reclaim lag in microseconds (50 us buckets); empty
          when not armed *)
}

type mode =
  | Sim  (** deterministic discrete-event simulation (the seed behavior) *)
  | Domains of { domains : int }
      (** real OCaml 5 parallelism: workers, LLT drivers, GC, sampler
          and fault tasks run on [domains] [Domain.t]s with real
          [Atomic]/[Mutex] synchronization, their virtual clocks coupled
          by the {!Exec} bounded-skew window. Engine/driver/txn layers
          are reused unchanged behind one engine mutex; cross-task kills
          go through Atomic mailboxes; each task's counters reach the
          shared aggregate only at its publish point. Watchdog configs
          are rejected ([Invalid_argument]) and crash faults are
          recorded as [crash-skipped] and not applied — both are
          stop-the-world constructs of the Sim scheduler. Results are
          statistically (not bit-) reproducible; compare across modes
          with {!Run_digest}. *)

val run :
  engine:(Schema.t -> Engine.t) ->
  ?faults:Fault_plan.t ->
  ?watchdog:Watchdog.config ->
  ?mode:mode ->
  ?skip_publish_fence:bool ->
  Exp_config.t ->
  result
(** [run ~engine ?faults ?watchdog cfg] builds the engine and drives the
    discrete-event simulation. [?mode] (default [Sim]) selects the
    execution substrate; the Sim path is untouched by the mode
    machinery, so default-mode runs stay bit-identical to the seed.
    [?skip_publish_fence] (default false, Domains-only sabotage knob)
    severs the publication of task-local counters to the shared
    aggregate — the differential digest comparison must catch it; see
    {!Run_digest}. With [?faults], the scheduler's dispatch
    probe consults the plan before every process step; due injections
    (crashes, forced aborts, WAL errors, flush failures, cache eviction
    storms, space storms) are applied to the engine, a continuous
    prune-soundness audit is armed on the vDriver instance, and a
    periodic process sweeps the full invariant catalogue
    ({!Invariant.check_all}), collecting everything into
    [result.faults]. A plan that injects nothing leaves the run
    bit-identical to a run without one.

    On a durable engine (one exposing [checkpoint]/[restart]) the
    runner additionally spawns a fuzzy checkpointer at
    [cfg.ckpt_period_s], and the plan's crash points and Poisson
    [Crash] arrivals become full power-loss/restart-replay cycles:
    unfsynced (or post-crash-point) frames are discarded, an optional
    torn tail is fabricated, in-flight transactions are dropped as
    losers (never aborted through the engine), the engine's restart
    replays the surviving log, and {!Invariant.check_post_recovery} is
    asserted before the workload resumes.

    When the engine has a vDriver, the runner installs the governor's
    shed hook (so snapshot-too-old victims are rolled back through the
    engine), paces background maintenance by {!Governor.gc_scale}, and
    re-executes externally-aborted workers and LLT drivers under a
    seeded bounded-exponential backoff (200 us base, 20 ms cap, 6
    attempts, deterministic jitter).

    With [?watchdog], the liveness subsystem is armed: every cleaning
    loop posts progress beats into a {!Watchdog.t} (also installed on
    the vDriver state so vSorter/vCutter/maintenance beat from inside
    the pipeline), every transaction is granted a {!Lease} scaled to
    the experiment, a watchdog process polls the escalation ladder at
    the configured check period, and an {!Invariant.lag_monitor}
    asserts the bounded-reclamation-lag guarantee
    ({!Watchdog.lag_bound}) online, recording violations into
    [result.faults]. Stall/zombie injections ([Cleaner_stall],
    [Collab_delay], [Llt_zombie] in the fault plan) only bite in armed
    runs. Passing a config with [enabled = false] keeps the whole
    observation side (beats, leases, lag monitor — and therefore the
    reclamation-lag violations) while the ladder never acts: the
    [--no-watchdog] sabotage mode. Without [?watchdog] nothing above
    exists and the run is bit-identical to the seed. *)

val avg_throughput : result -> between:float * float -> float
(** Mean commits/s over a closed time window. *)

val final_space : result -> int
val peak_space : result -> int
val peak_chain : result -> int
