(* Observability point: one canonical vDriver scenario run with the
   metrics registry in scope, exported as BENCH_obs.json. This is the
   machine-readable companion to the figure tables — a flat metrics
   snapshot (validated by bin/obs_check's schema) whose headline gauges
   are the numbers a regression tracker wants: throughput, p50/p99
   chain-scan length, peak version-space bytes and the prune
   completeness ratio. *)

let cfg =
  {
    Exp_config.default with
    Exp_config.name = "obs-point";
    duration_s = Common.sec 12.;
    workers = 16;
    schema = Common.small_schema;
    phases = [ { Exp_config.at_s = 0.; pattern = Access.Zipfian 0.9 } ];
    llts = [ { Exp_config.start_s = Common.sec 3.; duration_s = Common.sec 6.; count = 4 } ];
  }

let headline = [
    "txn.throughput";
    "scan.p50";
    "scan.p99";
    "space.peak_bytes";
    "prune.completeness";
  ]

let run () =
  Common.section ~figure:"OBS" ~title:"Observability point (BENCH_obs.json)"
    ~expectation:
      "the traced pg-vdriver run exports every headline gauge; prune completeness \
       stays near 1.0 and the p99 chain scan stays short even with LLTs pinning \
       versions";
  let reg = Metrics.create () in
  let r =
    Metrics.with_registry reg (fun () ->
        Runner.run ~engine:(Common.make_engine "pg-vdriver") cfg)
  in
  let json = Metrics.to_json reg in
  Obs_export.write_file "BENCH_obs.json" json;
  (match Obs_schema.check_metrics json with
  | [] -> ()
  | problems ->
      List.iter (Printf.printf "SCHEMA VIOLATION: %s\n") problems;
      failwith "obs_point: BENCH_obs.json failed its own schema");
  let snapshot = Metrics.snapshot reg in
  let value name =
    match List.assoc_opt name snapshot with
    | Some (Metrics.Gauge v) -> Printf.sprintf "%.3f" v
    | Some (Metrics.Counter n) -> string_of_int n
    | Some (Metrics.Histo h) ->
        Printf.sprintf "n=%d p99=%d" (Histogram.total h) (Histogram.percentile h 0.99)
    | None -> "-"
  in
  Table.print ~header:[ "metric"; "value" ] (List.map (fun n -> [ n; value n ]) headline);
  Printf.printf "commits=%d conflicts=%d -> BENCH_obs.json (%d metrics)\n" r.Runner.commits
    r.Runner.conflicts (List.length snapshot)
