(* Partition tolerance (DESIGN §4i): the sharded deployment with the
   2PC/epoch choreography riding the seeded lossy fabric, swept over
   loss rate x partition duration.

   Each point runs the identical workload in deterministic Sim mode and
   once more on real OCaml 5 domains; both sides must hold the whole
   invariant catalogue — including in-doubt-liveness and the post-heal
   reclamation-lag bound — and the two digests must agree (statistical
   load agreement plus net-block presence). The curve to read:
   throughput degrades gracefully (single-shard traffic keeps
   committing while cross-shard transactions spanning the cut fail
   fast), net aborts and in-doubt residence grow with severity, and
   violations stay 0 at every point. *)

let cfg ~shards ~loss ~part_ms ~seed =
  let base =
    {
      Exp_config.default with
      Exp_config.name = Printf.sprintf "bench-partition-l%.2f-p%d" loss part_ms;
      seed;
      duration_s = Common.sec 0.5;
      workers = 8;
      schema = { Schema.default with Schema.tables = 4; rows_per_table = 250 };
      phases = [ { Exp_config.at_s = 0.; pattern = Access.Zipfian 0.9 } ];
      llts = [ { Exp_config.start_s = Common.sec 0.1; duration_s = Common.sec 0.25; count = 2 } ];
      gc_period = Clock.ms 10;
      sample_period_s = Common.sec 0.05;
      ckpt_period_s = Common.sec 0.25;
    }
  in
  let horizon = Clock.seconds base.Exp_config.duration_s in
  let net =
    if loss = 0. && part_ms = 0 then Net_fault.none
    else
      let partitions =
        if part_ms = 0 then []
        else
          (* One deterministic mid-run cut isolating shard 0 for
             exactly [part_ms]: the duration axis of the sweep stays a
             controlled variable instead of a seeded draw. *)
          [
            {
              Net_fault.p_name = "bench-cut";
              isolated = [ 0 ];
              from_t = horizon / 4;
              heal_t = (horizon / 4) + Clock.ms part_ms;
            };
          ]
      in
      Net_fault.make ~loss ~dup:0.02 ~max_delay:(Clock.us 150) ~partitions ~seed ()
  in
  { (Shard_runner.default ~shards base) with Shard_runner.cross_pct = 30; net }

let run () =
  Common.section ~figure:"Partition"
    ~title:"Message loss x partition duration (BENCH_partition.json)"
    ~expectation:
      "throughput degrades gracefully as loss and partition windows grow — single-shard \
       traffic keeps committing, cross-shard transactions spanning the cut fail fast \
       (net-aborts), in-doubt residence stays bounded and drains after heal; every point \
       passes the invariant catalogue in Sim and Domains modes and the digests agree \
       (violations always 0)";
  let shards = 2 in
  let sweep =
    [ (0.0, 0); (0.05, 0); (0.05, 50); (0.15, 50); (0.15, 150); (0.30, 150) ]
  in
  let points =
    List.map
      (fun (loss, part_ms) ->
        let c = cfg ~shards ~loss ~part_ms ~seed:42 in
        let sim = Shard_runner.run ~mode:Shard_runner.Sim c in
        let t0 = Unix.gettimeofday () in
        let dom = Shard_runner.run ~mode:(Shard_runner.Domains { domains = 2 }) c in
        let wall_ms = int_of_float ((Unix.gettimeofday () -. t0) *. 1000.) in
        let mismatches = Shard_runner.digest_diff sim.Shard_runner.digest dom.Shard_runner.digest in
        List.iter
          (fun m -> Printf.printf "!! loss=%.2f part=%dms digest mismatch: %s\n" loss part_ms m)
          mismatches;
        let violations =
          Fault_report.violation_count sim.Shard_runner.report
          + Fault_report.violation_count dom.Shard_runner.report
        in
        let nd = sim.Shard_runner.digest.Shard_runner.d_net in
        let sent = match nd with Some n -> n.Shard_runner.nd_sent | None -> 0 in
        let dropped = match nd with Some n -> n.Shard_runner.nd_dropped | None -> 0 in
        let retried = match nd with Some n -> n.Shard_runner.nd_retried | None -> 0 in
        let row =
          [
            Printf.sprintf "%.2f" loss;
            string_of_int part_ms;
            string_of_int sim.Shard_runner.commits;
            Printf.sprintf "%.0f" sim.Shard_runner.throughput;
            string_of_int sim.Shard_runner.cross_commits;
            string_of_int sim.Shard_runner.net_aborts;
            string_of_int sim.Shard_runner.indoubt_max_us;
            string_of_int violations;
            string_of_int (List.length mismatches);
            string_of_int wall_ms;
          ]
        in
        let json =
          Jsonx.Obj
            [
              ("loss", Jsonx.Float loss);
              ("partition_ms", Jsonx.Int part_ms);
              ("commits", Jsonx.Int sim.Shard_runner.commits);
              ("commits_per_s", Jsonx.Float sim.Shard_runner.throughput);
              ("cross_commits", Jsonx.Int sim.Shard_runner.cross_commits);
              ("single_commits", Jsonx.Int sim.Shard_runner.single_commits);
              ("net_aborts", Jsonx.Int sim.Shard_runner.net_aborts);
              ("net_sent", Jsonx.Int sent);
              ("net_dropped", Jsonx.Int dropped);
              ("net_retried", Jsonx.Int retried);
              ("indoubt_max_us", Jsonx.Int sim.Shard_runner.indoubt_max_us);
              ("indoubt_mean_us", Jsonx.Float sim.Shard_runner.indoubt_mean_us);
              ("violations", Jsonx.Int violations);
              ("digest_mismatches", Jsonx.Int (List.length mismatches));
              ("domains_digest", Shard_runner.digest_to_json dom.Shard_runner.digest);
              ("wall_ms", Jsonx.Int wall_ms);
            ]
        in
        (sim, violations, List.length mismatches, row, json))
      sweep
  in
  Table.print
    ~header:
      [
        "loss"; "part-ms"; "commits"; "commits/s"; "cross"; "net-aborts"; "indoubt-us";
        "violations"; "mismatches"; "wall-ms";
      ]
    (List.map (fun (_, _, _, row, _) -> row) points);
  let clean = List.for_all (fun (_, v, m, _, _) -> v = 0 && m = 0) points in
  let degraded_not_dead =
    (* Even the harshest point must keep committing: graceful
       degradation, not collapse. *)
    List.for_all (fun (sim, _, _, _, _) -> sim.Shard_runner.commits > 0) points
  in
  Printf.printf "all points clean: %b; committing at every severity: %b\n" clean
    degraded_not_dead;
  Obs_export.write_file "BENCH_partition.json"
    (Jsonx.Obj
       [
         ("bench", Jsonx.Str "partition");
         ("seed", Jsonx.Int 42);
         ("shards", Jsonx.Int shards);
         ("engine", Jsonx.Str "pg-vdriver");
         ("clean", Jsonx.Bool clean);
         ("degraded_not_dead", Jsonx.Bool degraded_not_dead);
         ("points", Jsonx.Arr (List.map (fun (_, _, _, _, j) -> j) points));
       ]);
  Printf.printf "-> BENCH_partition.json (%d severity points)\n" (List.length sweep)
