(* Recovery-time comparison (§3.5 / §4.2 — beyond the paper's figures).

   Build committed history, leave a batch of loser transactions in
   flight, crash, and compare simulated recovery work: stock MySQL must
   scan rollback-segment undo headers to identify losers before rolling
   them back; PostgreSQL identifies losers directly through pg_xact; the
   SIRO engines additionally roll back by bit toggles and drop all
   off-row state wholesale — near-instant recovery. *)

let schema = { Schema.default with Schema.tables = 4; rows_per_table = 500 }

let run_engine name =
  let eng = Common.make_engine name schema in
  let now = ref 0 in
  let tick () =
    now := !now + Clock.us 100;
    !now
  in
  (* Committed history: fills undo space / heap versions. Keep a reader
     alive so vanilla GC cannot reclaim it before the crash. *)
  let pin, _ = eng.Engine.begin_txn ~now:(tick ()) in
  for i = 1 to 4_000 do
    let txn, _ = eng.Engine.begin_txn ~now:(tick ()) in
    (match eng.Engine.write txn ~rid:(i mod Schema.records schema) ~payload:i ~now:(tick ()) with
    | Engine.Committed_path _ -> ()
    | Engine.Conflict _ -> ());
    ignore (eng.Engine.commit txn ~now:(tick ()))
  done;
  ignore pin;
  (* Losers: 16 transactions, 8 writes each, all in flight at the crash. *)
  let losers =
    List.init 16 (fun i ->
        let txn, _ = eng.Engine.begin_txn ~now:(tick ()) in
        for k = 0 to 7 do
          match
            eng.Engine.write txn ~rid:(((i * 31) + (k * 7)) mod Schema.records schema)
              ~payload:(-1) ~now:(tick ())
          with
          | Engine.Committed_path _ | Engine.Conflict _ -> ()
        done;
        txn)
  in
  ignore losers;
  let space_before = (eng.Engine.sample ()).Engine.version_bytes in
  let recovery = eng.Engine.crash () in
  (* Correctness: no -1 payload survives. *)
  let probe, _ = eng.Engine.begin_txn ~now:(tick ()) in
  let clean = ref true in
  for rid = 0 to Schema.records schema - 1 do
    let payload, _ = eng.Engine.read probe ~rid ~now:(tick ()) in
    if payload = -1 then clean := false
  done;
  ignore (eng.Engine.commit probe ~now:(tick ()));
  (name, recovery, space_before, !clean)

(* ------------------------------------------------------------------ *)
(* Durable-WAL restart point: run the pg-vdriver engine with the
   ARIES-lite log armed, crash at the end of the workload, and measure
   the restart as a function of the checkpoint interval. Shorter
   intervals bound the redo tail (fewer records to replay, higher
   apparent replay throughput per unit of recovery time); 0 disables
   the periodic checkpointer so recovery replays from the initial
   image — the worst case. Exported as BENCH_recovery.json. *)

let durable_cfg ~ckpt_s =
  {
    Exp_config.default with
    Exp_config.name = "bench-recovery";
    seed = 42;
    duration_s = Common.sec 4.;
    workers = 8;
    schema = { Schema.default with Schema.tables = 4; rows_per_table = 250 };
    phases = [ { Exp_config.at_s = 0.; pattern = Access.Zipfian 0.9 } ];
    llts = [ { Exp_config.start_s = Common.sec 1.; duration_s = Common.sec 2.; count = 2 } ];
    ckpt_period_s = ckpt_s;
  }

let restart_point ~ckpt_ms =
  let driver_config = { State.default_config with State.durable_wal = true } in
  let captured = ref None in
  let engine schema =
    let e = Siro_engine.create ~driver_config ~flavor:`Pg schema in
    captured := Some e;
    e
  in
  let cfg = durable_cfg ~ckpt_s:(float_of_int ckpt_ms /. 1000.) in
  let r = Runner.run ~engine cfg in
  let eng = match !captured with Some e -> e | None -> failwith "engine not captured" in
  let st : State.t =
    match r.Runner.driver with Some d -> d | None -> failwith "no driver"
  in
  let wal = match st.State.wal with Some w -> w | None -> failwith "no durable wal" in
  let restart =
    match eng.Engine.restart with Some f -> f | None -> failwith "no restart closure"
  in
  (* Post-run burst past the last checkpointer tick (which fires at the
     horizon, leaving an empty redo tail): committed work that must be
     replayed, plus in-flight losers the restart must roll back. *)
  let now = ref (Clock.seconds cfg.Exp_config.duration_s + Clock.ms 1) in
  let tick () =
    now := !now + Clock.us 50;
    !now
  in
  let records = Schema.records cfg.Exp_config.schema in
  (* Losers first so the burst's commit fsyncs carry their begin records
     past the durability frontier — the crash must not erase them. *)
  let losers =
    List.init 8 (fun i ->
        let txn, _ = eng.Engine.begin_txn ~now:(tick ()) in
        (match eng.Engine.write txn ~rid:((i * 131) mod records) ~payload:(-1) ~now:(tick ()) with
        | Engine.Committed_path _ | Engine.Conflict _ -> ());
        txn)
  in
  ignore losers;
  for i = 1 to 2_000 do
    let txn, _ = eng.Engine.begin_txn ~now:(tick ()) in
    (match eng.Engine.write txn ~rid:(i mod records) ~payload:i ~now:(tick ()) with
    | Engine.Committed_path _ | Engine.Conflict _ -> ());
    ignore (eng.Engine.commit txn ~now:(tick ()))
  done;
  let wal_records = Wal.records wal in
  Wal.crash wal ~keep_lsn:(Wal.flushed_lsn wal);
  let now = tick () in
  let t0 = Unix.gettimeofday () in
  let info = restart ~now in
  let wall = Unix.gettimeofday () -. t0 in
  (r, info, wall, wal_records)

let recovery_point () =
  (* Deliberately not divisors of the run length: a divisor puts the
     last checkpoint exactly at the horizon and every interval then
     shows the same (burst-only) redo tail. *)
  let intervals = [ 0; 1100; 270; 70 ] in
  let points =
    List.map
      (fun ckpt_ms ->
        let r, info, wall, wal_records = restart_point ~ckpt_ms in
        let cost_us = float_of_int info.Engine.recovery_cost /. float_of_int (Clock.us 1) in
        let replay_tput =
          if cost_us <= 0. then 0.
          else float_of_int info.Engine.replayed_records /. (cost_us /. 1e6)
        in
        let row =
          [
            (if ckpt_ms = 0 then "off" else Printf.sprintf "%dms" ckpt_ms);
            string_of_int wal_records;
            string_of_int info.Engine.replayed_records;
            string_of_int info.Engine.replayed_versions;
            string_of_int info.Engine.losers_rolled_back;
            Printf.sprintf "%.0f" cost_us;
            Printf.sprintf "%.0f" replay_tput;
          ]
        in
        let json =
          Jsonx.Obj
            [
              ("ckpt_ms", Jsonx.Int ckpt_ms);
              ("commits", Jsonx.Int r.Runner.commits);
              ("wal_records", Jsonx.Int wal_records);
              ("replayed_records", Jsonx.Int info.Engine.replayed_records);
              ("replayed_versions", Jsonx.Int info.Engine.replayed_versions);
              ("losers_rolled_back", Jsonx.Int info.Engine.losers_rolled_back);
              ("truncated_frames", Jsonx.Int info.Engine.truncated_frames);
              ("recovered_to_lsn", Jsonx.Int info.Engine.recovered_to_lsn);
              ("recovery_cost_us", Jsonx.Float cost_us);
              ("replay_records_per_s", Jsonx.Float replay_tput);
              ("wall_s", Jsonx.Float wall);
            ]
        in
        (row, json))
      intervals
  in
  Table.print
    ~header:
      [ "ckpt"; "wal-records"; "replayed"; "versions"; "losers"; "recovery-us"; "replay-rec/s" ]
    (List.map fst points);
  Obs_export.write_file "BENCH_recovery.json"
    (Jsonx.Obj
       [
         ("bench", Jsonx.Str "recovery");
         ("seed", Jsonx.Int 42);
         ("engine", Jsonx.Str "pg-vdriver");
         ("points", Jsonx.Arr (List.map snd points));
       ]);
  Printf.printf "-> BENCH_recovery.json (%d checkpoint intervals)\n" (List.length intervals)

let run () =
  Common.section ~figure:"Recovery" ~title:"Crash-recovery work by engine (§3.5, §4.2)"
    ~expectation:
      "MySQL pays an undo-header scan proportional to live undo records to \
       identify losers; PostgreSQL consults the commit log directly; the \
       SIRO engines recover near-instantly (bit toggles, off-row state \
       dropped wholesale)";
  let rows =
    List.map
      (fun name ->
        let name, recovery, space, clean = run_engine name in
        [
          name;
          Format.asprintf "%a" Clock.pp recovery;
          Table.fmt_bytes space;
          (if clean then "yes" else "NO");
        ])
      [ "pg"; "mysql"; "pg-vdriver"; "mysql-vdriver" ]
  in
  Table.print ~header:[ "engine"; "recovery-work"; "version-space-at-crash"; "losers-undone" ] rows;
  Common.section ~figure:"Recovery"
    ~title:"Restart replay vs checkpoint interval (BENCH_recovery.json)"
    ~expectation:
      "shorter checkpoint intervals bound the redo tail: fewer records replayed \
       and a cheaper restart, at the price of more checkpoints during the run; \
       with the checkpointer off, recovery replays the whole history";
  recovery_point ()
