(* Multicore scaling point (DESIGN §4f — beyond the paper's figures):
   the Domains execution mode under growing offered load.

   One domain hosts ~4 OLTP workers; the sweep grows domains and
   workers together (1x4, 2x8, 4x16) and reports the aggregate
   simulated throughput of the Domains run next to a Sim run of the
   identical configuration. Simulated commits/s must grow monotonically
   along the curve and stay within the differential tolerance of the
   Sim twin at every point — this benchmark measures model fidelity
   under scale, not host parallelism (on a single-core container the
   domains time-share; wall_ms is reported for that reason, simulated
   throughput is the curve). *)

let cfg ~domains =
  {
    Exp_config.default with
    Exp_config.name = Printf.sprintf "bench-multicore-x%d" domains;
    seed = 42;
    duration_s = Common.sec 1.5;
    workers = 4 * domains;
    schema = { Schema.default with Schema.tables = 4; rows_per_table = 250 };
    phases = [ { Exp_config.at_s = 0.; pattern = Access.Zipfian 0.9 } ];
    llts = [ { Exp_config.start_s = Common.sec 0.3; duration_s = Common.sec 0.8; count = 1 } ];
  }

let engine schema = Siro_engine.create ~flavor:`Pg schema

let run () =
  Common.section ~figure:"Multicore"
    ~title:"Domains-mode scaling, 1 -> 4 domains (BENCH_multicore.json)"
    ~expectation:
      "aggregate simulated throughput grows monotonically as domains and workers scale \
       together, and every point's digest stays within the differential tolerance of its \
       deterministic Sim twin (violations always 0)";
  let sweep = [ 1; 2; 4 ] in
  let points =
    List.map
      (fun domains ->
        let c = cfg ~domains in
        let sim = Runner.run ~engine c in
        let t0 = Unix.gettimeofday () in
        let r = Runner.run ~engine ~mode:(Runner.Domains { domains }) c in
        let wall_ms = int_of_float ((Unix.gettimeofday () -. t0) *. 1000.) in
        let ds = Run_digest.of_result ~mode:"sim" ~domains:1 c sim in
        let dd = Run_digest.of_result ~mode:"domains" ~domains c r in
        let mismatches = Run_digest.diff ds dd in
        let tput = float_of_int r.Runner.commits /. c.Exp_config.duration_s in
        let row =
          [
            string_of_int domains;
            string_of_int c.Exp_config.workers;
            string_of_int r.Runner.commits;
            Printf.sprintf "%.0f" tput;
            string_of_int sim.Runner.commits;
            Printf.sprintf "%dus" dd.Run_digest.latency_p99_us;
            string_of_int wall_ms;
            string_of_int (List.length mismatches);
          ]
        in
        let json =
          Jsonx.Obj
            [
              ("domains", Jsonx.Int domains);
              ("workers", Jsonx.Int c.Exp_config.workers);
              ("commits", Jsonx.Int r.Runner.commits);
              ("commits_per_s", Jsonx.Float tput);
              ("sim_commits", Jsonx.Int sim.Runner.commits);
              ("latency_p50_us", Jsonx.Int dd.Run_digest.latency_p50_us);
              ("latency_p99_us", Jsonx.Int dd.Run_digest.latency_p99_us);
              ("violations", Jsonx.Int dd.Run_digest.invariant_violations);
              ("digest_mismatches", Jsonx.Int (List.length mismatches));
              ("wall_ms", Jsonx.Int wall_ms);
            ]
        in
        List.iter
          (fun m -> Printf.printf "!! x%d digest mismatch: %s\n" domains m)
          mismatches;
        (tput, row, json))
      sweep
  in
  Table.print
    ~header:
      [ "domains"; "workers"; "commits"; "commits/s"; "sim-commits"; "p99-latency"; "wall-ms"; "mismatches" ]
    (List.map (fun (_, row, _) -> row) points);
  let tputs = List.map (fun (t, _, _) -> t) points in
  let rec is_monotone = function a :: (b :: _ as rest) -> a <= b && is_monotone rest | _ -> true in
  let monotone = is_monotone tputs in
  Printf.printf "scaling curve monotone: %b\n" monotone;
  Obs_export.write_file "BENCH_multicore.json"
    (Jsonx.Obj
       [
         ("bench", Jsonx.Str "multicore");
         ("seed", Jsonx.Int 42);
         ("engine", Jsonx.Str "pg-vdriver");
         ("monotone", Jsonx.Bool monotone);
         ("points", Jsonx.Arr (List.map (fun (_, _, j) -> j) points));
       ]);
  Printf.printf "-> BENCH_multicore.json (%d domain counts)\n" (List.length sweep)
