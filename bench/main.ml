(* Benchmark harness entry point: regenerates every figure of the
   paper's evaluation section (§5) plus bechamel micro-benchmarks.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- fig13 fig15
     REPRO_SCALE=0.5 dune exec bench/main.exe   # halve all durations

   Table 1 of the paper is notation only; Figures 1/2/4-12 are design
   illustrations. The evaluation artifacts are Figures 3 and 13-19. *)

let all : (string * (unit -> unit)) list =
  [
    ("fig3", Fig03.run);
    ("fig13", Fig13.run);
    ("fig14", Fig14.run);
    ("fig15", Fig15.run);
    ("fig16", Fig16.run);
    ("fig17", Fig17.run);
    ("fig18", Fig18.run);
    ("fig19", Fig19.run);
    ("ablation", Ablation.run);
    ("recovery", Recovery.run);
    ("liveness", Liveness.run);
    ("micro", Micro.run);
    ("obs", Obs_point.run);
    ("multicore", Multicore.run);
    ("shard", Shard_bench.run);
    ("partition", Partition_bench.run);
    ("gc_shootout", Gc_shootout.run);
    ("failover", Failover.run);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst all
  in
  Printf.printf
    "vDriver reproduction benchmarks (REPRO_SCALE=%.2f)\n\
     Engines: postgres-vanilla | mysql-vanilla | postgres-vdriver | mysql-vdriver\n"
    Common.scale;
  List.iter
    (fun name ->
      match List.assoc_opt name all with
      | Some f ->
          let t0 = Unix.gettimeofday () in
          f ();
          Printf.printf "[%s done in %.1fs]\n%!" name (Unix.gettimeofday () -. t0)
      | None ->
          Printf.eprintf "unknown figure %S (known: %s)\n" name
            (String.concat ", " (List.map fst all)))
    requested
