(* Liveness point (DESIGN §4e — beyond the paper's figures): the
   bounded-reclamation-lag guarantee under stall pressure.

   Sweep the cleaner-stall injection rate with the watchdog armed and
   report the per-segment reclamation-lag distribution (p50/p99/max)
   against the computable bound L, plus the escalation and zombie-shed
   work the ladder performed to stay inside it. The zombie rate is held
   fixed so every point also exercises the lease/shed path. Exported as
   BENCH_liveness.json. *)

let liveness_cfg =
  {
    Exp_config.default with
    Exp_config.name = "bench-liveness";
    seed = 42;
    duration_s = Common.sec 4.;
    workers = 8;
    schema = { Schema.default with Schema.tables = 4; rows_per_table = 250 };
    phases = [ { Exp_config.at_s = 0.; pattern = Access.Zipfian 0.9 } ];
    llts = [ { Exp_config.start_s = Common.sec 0.5; duration_s = Common.sec 3.; count = 1 } ];
  }

let wdog =
  {
    Watchdog.default_config with
    Watchdog.check_period = Clock.ms 5;
    stall_timeout = Clock.ms 20;
    escalation_cooldown = Clock.ms 10;
  }

let point ~stall_rate =
  let plan =
    Fault_plan.create
      ~seed:(liveness_cfg.Exp_config.seed lxor 0x11fe)
      ~cleaner_stall_rate:stall_rate ~collab_delay_rate:(stall_rate *. 2.)
      ~llt_zombie_rate:2. ~check_period:(Clock.ms 50) ()
  in
  let engine schema = Siro_engine.create ~flavor:`Pg schema in
  Runner.run ~engine ~faults:plan ~watchdog:wdog liveness_cfg

let run () =
  let bound = Watchdog.lag_bound wdog ~gc_period:liveness_cfg.Exp_config.gc_period in
  Common.section ~figure:"Liveness"
    ~title:"Reclamation lag vs stall pressure (BENCH_liveness.json)"
    ~expectation:
      (Printf.sprintf
         "with the watchdog armed, every dead version is reclaimed within the \
          computable bound L=%dus regardless of how often the cleaner hangs; the \
          lag tail grows with the stall rate but never crosses L, and harmful \
          zombie LLTs are shed through the lease path"
         (bound / 1000));
  let rates = [ 0.; 0.5; 1.; 2. ] in
  let points =
    List.map
      (fun stall_rate ->
        let r = point ~stall_rate in
        let hist = r.Runner.reclamation_lag_us in
        let pctl p = if Histogram.total hist = 0 then 0 else Histogram.percentile hist p in
        let violations = Fault_report.violation_count r.Runner.faults in
        let row =
          [
            Printf.sprintf "%.1f/s" stall_rate;
            string_of_int r.Runner.commits;
            string_of_int r.Runner.watchdog_escalations;
            string_of_int r.Runner.zombie_cancels;
            string_of_int (pctl 0.5);
            string_of_int (pctl 0.99);
            string_of_int (r.Runner.max_reclamation_lag / 1000);
            string_of_int (bound / 1000);
            string_of_int violations;
          ]
        in
        let json =
          Jsonx.Obj
            [
              ("stall_rate_per_s", Jsonx.Float stall_rate);
              ("commits", Jsonx.Int r.Runner.commits);
              ("escalations", Jsonx.Int r.Runner.watchdog_escalations);
              ("zombie_cancels", Jsonx.Int r.Runner.zombie_cancels);
              ("lag_p50_us", Jsonx.Int (pctl 0.5));
              ("lag_p99_us", Jsonx.Int (pctl 0.99));
              ("lag_max_us", Jsonx.Int (r.Runner.max_reclamation_lag / 1000));
              ("lag_samples", Jsonx.Int (Histogram.total hist));
              ("bound_us", Jsonx.Int (bound / 1000));
              ("violations", Jsonx.Int violations);
            ]
        in
        (row, json))
      rates
  in
  Table.print
    ~header:
      [
        "stall-rate"; "commits"; "escalations"; "zombie-cancels"; "lag-p50-us"; "lag-p99-us";
        "lag-max-us"; "bound-us"; "violations";
      ]
    (List.map fst points);
  Obs_export.write_file "BENCH_liveness.json"
    (Jsonx.Obj
       [
         ("bench", Jsonx.Str "liveness");
         ("seed", Jsonx.Int liveness_cfg.Exp_config.seed);
         ("engine", Jsonx.Str "pg-vdriver");
         ("bound_us", Jsonx.Int (bound / 1000));
         ("points", Jsonx.Arr (List.map snd points));
       ]);
  Printf.printf "-> BENCH_liveness.json (%d stall rates)\n" (List.length rates)
