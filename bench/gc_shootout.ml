(* GC backend shootout (DESIGN §4h — beyond the paper's figures): the
   paper's vCutter against two rival collectors from the GC literature
   — range tracking (Wei & Fatourou) and BBF+-style bounded-space
   collection — over a sweep of LLT duration x access skew x record
   size, all three under the same governor, invariant catalogue and
   store.

   The claims under test, one column each:

   - vCutter wins *prune completeness* (fraction of retired versions
     that die in vBuffer without ever being stored): buffered aging
     lets whole segments die before hardening, where the rivals'
     eager-flush designs store first and reclaim later.
   - The bounded backend never exceeds its resident dead-version bound
     K at any post-step checkpoint — the guarantee vCutter's
     budget-paced whole-segment cuts do not give.
   - Everyone is prune-sound (the universal audit runs; the violations
     column must be all zero).

   The sweep runs the default vBuffer over a keyspace wide enough that
   a sealed segment takes real time to go whole-dead: in that window
   vCutter *ages* the segment in the buffer while the rivals' eager
   announce/flush passes store it — which is precisely the design
   choice the completeness column measures. (Shrinking the vBuffer
   instead, as `chaos --vbuffer` does, makes all three designs
   converge: overflow forces even vCutter to store.) Exported as
   BENCH_gc_shootout.json. *)

let vbuffer_bytes = State.default_config.State.vbuffer_bytes
let bounded_k = 256
let seed = 42

let driver_config = State.default_config

let engine_for kind =
  Gc_backend.wrap_engine
    { Gc_backend.default_config with Gc_backend.kind; bounded_max_dead = bounded_k }
    (fun schema -> Siro_engine.create ~driver_config ~flavor:`Pg schema)

let cfg ~llt_duration_s ~skew ~record_bytes =
  let duration_s = Common.sec 3. in
  {
    Exp_config.default with
    Exp_config.name = "gc-shootout";
    seed;
    duration_s;
    workers = 8;
    schema =
      { Schema.default with Schema.tables = 8; rows_per_table = 1000; record_bytes };
    phases =
      [
        {
          Exp_config.at_s = 0.;
          pattern = (if skew <= 0. then Access.Uniform else Access.Zipfian skew);
        };
      ];
    llts =
      [
        {
          Exp_config.start_s = duration_s /. 6.;
          duration_s = Common.sec llt_duration_s;
          count = 2;
        };
      ];
    gc_period = Clock.ms 5;
  }

type sample = {
  s_backend : string;
  s_commits : int;
  s_completeness : float;
  s_pruned : int;
  s_stored : int;
  s_peak_space : int;
  s_violations : int;
  s_gauges : (string * int) list;
}

let sample kind ~llt_duration_s ~skew ~record_bytes =
  let r =
    Runner.run ~engine:(engine_for kind) ~faults:Fault_plan.none
      (cfg ~llt_duration_s ~skew ~record_bytes)
  in
  let pruned, stored, gauges =
    match r.Runner.driver with
    | None -> (0, 0, [])
    | Some d ->
        let s = Driver.stats d in
        ( Prune_stats.prune1_total s + Prune_stats.prune2_total s,
          Prune_stats.stored_total s,
          Gc_backend.gauges d )
  in
  let settled = pruned + stored in
  {
    s_backend = Gc_backend.kind_name kind;
    s_commits = r.Runner.commits;
    s_completeness =
      (if settled = 0 then 1. else float_of_int pruned /. float_of_int settled);
    s_pruned = pruned;
    s_stored = stored;
    s_peak_space = Runner.peak_space r;
    s_violations = Fault_report.violation_count r.Runner.faults;
    s_gauges = gauges;
  }

let run () =
  Common.section ~figure:"GC shootout"
    ~title:"vCutter vs range tracking vs bounded-space (BENCH_gc_shootout.json)"
    ~expectation:
      (Printf.sprintf
         "the paper's design wins prune completeness in every cell (its rivals \
          eagerly store what vCutter lets die in vBuffer); the bounded backend \
          keeps its resident dead-version checkpoint within K=%d at every sample \
          point; nobody violates prune soundness"
         bounded_k);
  let llt_durations = [ 0.5; 2. ] in
  let skews = [ 0.; 0.9 ] in
  let record_sizes = [ 64; 256 ] in
  let completeness_upsets = ref 0 and bound_breaches = ref 0 and violations = ref 0 in
  let cells = ref [] and rows = ref [] in
  List.iter
    (fun llt_duration_s ->
      List.iter
        (fun skew ->
          List.iter
            (fun record_bytes ->
              let samples =
                List.map
                  (fun kind -> sample kind ~llt_duration_s ~skew ~record_bytes)
                  Gc_backend.all_kinds
              in
              let vcutter = List.hd samples in
              let wins =
                List.for_all
                  (fun s -> vcutter.s_completeness >= s.s_completeness)
                  samples
              in
              if not wins then incr completeness_upsets;
              let peak_dead =
                List.fold_left
                  (fun acc s ->
                    match List.assoc_opt "gc.bounded.peak_dead" s.s_gauges with
                    | Some v -> v
                    | None -> acc)
                  0 samples
              in
              let within = peak_dead <= bounded_k in
              if not within then incr bound_breaches;
              List.iter (fun s -> violations := !violations + s.s_violations) samples;
              List.iter
                (fun s ->
                  rows :=
                    [
                      Printf.sprintf "%.1fs" llt_duration_s;
                      (if skew <= 0. then "uniform" else Printf.sprintf "zipf %.1f" skew);
                      string_of_int record_bytes;
                      s.s_backend;
                      string_of_int s.s_commits;
                      Printf.sprintf "%.3f" s.s_completeness;
                      Table.fmt_bytes s.s_peak_space;
                      string_of_int s.s_stored;
                      string_of_int s.s_violations;
                    ]
                    :: !rows)
                samples;
              cells :=
                Jsonx.Obj
                  [
                    ("llt_duration_s", Jsonx.Float llt_duration_s);
                    ("skew", Jsonx.Float skew);
                    ("record_bytes", Jsonx.Int record_bytes);
                    ("vcutter_wins_completeness", Jsonx.Bool wins);
                    ("bounded_peak_dead", Jsonx.Int peak_dead);
                    ("bounded_within_bound", Jsonx.Bool within);
                    ( "backends",
                      Jsonx.Arr
                        (List.map
                           (fun s ->
                             Jsonx.Obj
                               [
                                 ("backend", Jsonx.Str s.s_backend);
                                 ("commits", Jsonx.Int s.s_commits);
                                 ("prune_completeness", Jsonx.Float s.s_completeness);
                                 ("pruned", Jsonx.Int s.s_pruned);
                                 ("stored", Jsonx.Int s.s_stored);
                                 ("peak_space", Jsonx.Int s.s_peak_space);
                                 ("violations", Jsonx.Int s.s_violations);
                                 ( "gauges",
                                   Jsonx.Obj
                                     (List.map (fun (k, v) -> (k, Jsonx.Int v)) s.s_gauges)
                                 );
                               ])
                           samples) );
                  ]
                :: !cells)
            record_sizes)
        skews)
    llt_durations;
  Table.print
    ~header:
      [
        "llt-dur"; "access"; "rec-B"; "backend"; "commits"; "completeness"; "peak-space";
        "stored"; "violations";
      ]
    (List.rev !rows);
  Obs_export.write_file "BENCH_gc_shootout.json"
    (Jsonx.Obj
       [
         ("bench", Jsonx.Str "gc_shootout");
         ("seed", Jsonx.Int seed);
         ("engine", Jsonx.Str "pg-vdriver");
         ("vbuffer_bytes", Jsonx.Int vbuffer_bytes);
         ("bounded_k", Jsonx.Int bounded_k);
         ("completeness_upsets", Jsonx.Int !completeness_upsets);
         ("bound_breaches", Jsonx.Int !bound_breaches);
         ("violations", Jsonx.Int !violations);
         ("cells", Jsonx.Arr (List.rev !cells));
       ]);
  Printf.printf
    "-> BENCH_gc_shootout.json (%d cells x 3 backends; completeness upsets=%d, bound \
     breaches=%d, violations=%d)\n"
    (List.length !cells) !completeness_upsets !bound_breaches !violations;
  if !completeness_upsets > 0 || !bound_breaches > 0 || !violations > 0 then
    failwith "gc_shootout: a backend lost its headline guarantee (see table above)"
