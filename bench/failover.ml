(* Replicated-shard failover (DESIGN §4j): the full vDriver pipeline
   per shard with WAL log-shipping to quorum-acknowledged backups,
   swept over replication factor x node-kill count.

   Each point runs the identical workload in deterministic Sim mode and
   once more on real OCaml 5 domains; both sides must hold the whole
   invariant catalogue — including no-committed-loss, no-split-brain
   and the bounded-failover-lag budget — and the two digests must
   agree. The curves to read: commit throughput pays a modest
   replication tax that grows with the quorum size, kills dent but
   never collapse it (single-copy shards keep committing while a
   victim's clients wait out one lease), and promotion lag stays within
   lease + sweep slack at every point with violations 0. *)

let cfg ~shards ~replicas ~kills ~seed =
  let base =
    {
      Exp_config.default with
      Exp_config.name = Printf.sprintf "bench-failover-r%d-k%d" replicas kills;
      seed;
      duration_s = Common.sec 0.5;
      workers = 8;
      schema = { Schema.default with Schema.tables = 4; rows_per_table = 250 };
      phases = [ { Exp_config.at_s = 0.; pattern = Access.Zipfian 0.9 } ];
      llts = [ { Exp_config.start_s = Common.sec 0.1; duration_s = Common.sec 0.25; count = 2 } ];
      gc_period = Clock.ms 10;
      sample_period_s = Common.sec 0.05;
      ckpt_period_s = Common.sec 0.25;
    }
  in
  (* Kill schedule in replication-step position, spread across the
     run: step traffic is roughly proportional to commit traffic, so
     fractions of an estimated total place the kills mid-workload
     deterministically (the estimate only shifts where they land, never
     whether the invariants must hold). *)
  let est_steps = 60_000 in
  let kill_steps =
    List.init kills (fun i -> (i + 1) * est_steps / (kills + 1))
  in
  {
    (Shard_runner.default ~shards base) with
    Shard_runner.cross_pct = 30;
    replicas;
    kill_steps;
  }

let pct lags p =
  match List.sort compare lags with
  | [] -> 0
  | l ->
      let n = List.length l in
      List.nth l (min (n - 1) (p * n / 100))

let run () =
  Common.section ~figure:"Failover"
    ~title:"Replication factor x node kills (BENCH_failover.json)"
    ~expectation:
      "quorum replication costs a modest, quorum-proportional commit tax; node kills dent \
       throughput for about one lease per kill while surviving shards keep committing; \
       every promotion completes within the lease + sweep slack and the no-committed-loss, \
       no-split-brain and bounded-failover-lag oracles stay clean in Sim and Domains modes \
       with agreeing digests";
  let shards = 2 in
  let sweep = [ (1, 0); (1, 2); (2, 0); (2, 2); (2, 4) ] in
  let points =
    List.map
      (fun (replicas, kills) ->
        let c = cfg ~shards ~replicas ~kills ~seed:42 in
        let sim = Shard_runner.run ~mode:Shard_runner.Sim c in
        let t0 = Unix.gettimeofday () in
        let dom = Shard_runner.run ~mode:(Shard_runner.Domains { domains = 2 }) c in
        let wall_ms = int_of_float ((Unix.gettimeofday () -. t0) *. 1000.) in
        let mismatches = Shard_runner.digest_diff sim.Shard_runner.digest dom.Shard_runner.digest in
        List.iter
          (fun m -> Printf.printf "!! r=%d k=%d digest mismatch: %s\n" replicas kills m)
          mismatches;
        let violations =
          Fault_report.violation_count sim.Shard_runner.report
          + Fault_report.violation_count dom.Shard_runner.report
        in
        let rd = sim.Shard_runner.digest.Shard_runner.d_repl in
        let promotions = match rd with Some r -> r.Shard_runner.rd_promotions | None -> 0 in
        let restarts = match rd with Some r -> r.Shard_runner.rd_restarts | None -> 0 in
        let lags = sim.Shard_runner.failover_lags_us in
        let row =
          [
            string_of_int replicas;
            string_of_int kills;
            string_of_int sim.Shard_runner.commits;
            Printf.sprintf "%.0f" sim.Shard_runner.throughput;
            string_of_int promotions;
            string_of_int (pct lags 99);
            string_of_int violations;
            string_of_int (List.length mismatches);
            string_of_int wall_ms;
          ]
        in
        let json =
          Jsonx.Obj
            [
              ("replicas", Jsonx.Int replicas);
              ("kills", Jsonx.Int kills);
              ("commits", Jsonx.Int sim.Shard_runner.commits);
              ("commits_per_s", Jsonx.Float sim.Shard_runner.throughput);
              ("cross_commits", Jsonx.Int sim.Shard_runner.cross_commits);
              ("single_commits", Jsonx.Int sim.Shard_runner.single_commits);
              ("promotions", Jsonx.Int promotions);
              ("recovery_restarts", Jsonx.Int restarts);
              ("failover_lag_p50_us", Jsonx.Int (pct lags 50));
              ("failover_lag_p99_us", Jsonx.Int (pct lags 99));
              ( "failover_lags_us",
                Jsonx.Arr (List.map (fun l -> Jsonx.Int l) lags) );
              ("violations", Jsonx.Int violations);
              ("digest_mismatches", Jsonx.Int (List.length mismatches));
              ("domains_digest", Shard_runner.digest_to_json dom.Shard_runner.digest);
              ("wall_ms", Jsonx.Int wall_ms);
            ]
        in
        (sim, violations, List.length mismatches, row, json))
      sweep
  in
  Table.print
    ~header:
      [
        "replicas"; "kills"; "commits"; "commits/s"; "promotions"; "lag-p99-us";
        "violations"; "mismatches"; "wall-ms";
      ]
    (List.map (fun (_, _, _, row, _) -> row) points);
  let clean = List.for_all (fun (_, v, m, _, _) -> v = 0 && m = 0) points in
  let degraded_not_dead =
    List.for_all (fun (sim, _, _, _, _) -> sim.Shard_runner.commits > 0) points
  in
  Printf.printf "all points clean: %b; committing at every kill count: %b\n" clean
    degraded_not_dead;
  Obs_export.write_file "BENCH_failover.json"
    (Jsonx.Obj
       [
         ("bench", Jsonx.Str "failover");
         ("seed", Jsonx.Int 42);
         ("shards", Jsonx.Int shards);
         ("engine", Jsonx.Str "pg-vdriver");
         ("clean", Jsonx.Bool clean);
         ("degraded_not_dead", Jsonx.Bool degraded_not_dead);
         ("points", Jsonx.Arr (List.map (fun (_, _, _, _, j) -> j) points));
       ]);
  Printf.printf "-> BENCH_failover.json (%d sweep points)\n" (List.length sweep)
