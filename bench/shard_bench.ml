(* Shard-count scaling (DESIGN §4g — beyond the paper's figures): the
   sharded vDriver deployment under a fixed offered load and LLT fleet
   as the keyspace splits across 1, 2, 4 and 8 pipelines.

   Each point runs the identical workload in deterministic Sim mode
   (the reported curve: simulated throughput, peak version space,
   cross-shard commit share) and once more on real OCaml 5 domains;
   the two digests must agree at every point and both sides must hold
   every invariant, including the cross-shard atomicity oracle. The
   simulated-time cost of 2PC is visible as the gap between the
   cross-shard share and a flat curve — sharding the pipeline must not
   change what commits, only where the versions live. *)

let cfg ~shards =
  let base =
    {
      Exp_config.default with
      Exp_config.name = Printf.sprintf "bench-shard-x%d" shards;
      seed = 42;
      duration_s = Common.sec 1.0;
      workers = 8;
      schema = { Schema.default with Schema.tables = 4; rows_per_table = 250 };
      phases = [ { Exp_config.at_s = 0.; pattern = Access.Zipfian 0.9 } ];
      llts = [ { Exp_config.start_s = Common.sec 0.2; duration_s = Common.sec 0.5; count = 2 } ];
      gc_period = Clock.ms 10;
      sample_period_s = Common.sec 0.05;
      ckpt_period_s = Common.sec 0.25;
    }
  in
  { (Shard_runner.default ~shards base) with Shard_runner.cross_pct = 30 }

let run () =
  Common.section ~figure:"Shard"
    ~title:"Sharded pipelines, 1 -> 8 shards (BENCH_shard.json)"
    ~expectation:
      "throughput stays flat-ish while per-shard version space shrinks as the keyspace \
       splits; cross-shard (2PC) traffic appears from 2 shards on; every point passes the \
       invariant catalogue in Sim and Domains modes and the two digests agree (violations \
       always 0)";
  let sweep = [ 1; 2; 4; 8 ] in
  let points =
    List.map
      (fun shards ->
        let c = cfg ~shards in
        let sim = Shard_runner.run ~mode:Shard_runner.Sim c in
        let t0 = Unix.gettimeofday () in
        let dom =
          Shard_runner.run ~mode:(Shard_runner.Domains { domains = min shards 4 }) c
        in
        let wall_ms = int_of_float ((Unix.gettimeofday () -. t0) *. 1000.) in
        let mismatches = Shard_runner.digest_diff sim.Shard_runner.digest dom.Shard_runner.digest in
        List.iter
          (fun m -> Printf.printf "!! x%d digest mismatch: %s\n" shards m)
          mismatches;
        let violations =
          Fault_report.violation_count sim.Shard_runner.report
          + Fault_report.violation_count dom.Shard_runner.report
        in
        let row =
          [
            string_of_int shards;
            string_of_int sim.Shard_runner.commits;
            Printf.sprintf "%.0f" sim.Shard_runner.throughput;
            string_of_int sim.Shard_runner.cross_commits;
            string_of_int sim.Shard_runner.two_pc_steps;
            string_of_int sim.Shard_runner.peak_space;
            string_of_int sim.Shard_runner.epochs;
            string_of_int violations;
            string_of_int (List.length mismatches);
            string_of_int wall_ms;
          ]
        in
        let json =
          Jsonx.Obj
            [
              ("shards", Jsonx.Int shards);
              ("commits", Jsonx.Int sim.Shard_runner.commits);
              ("commits_per_s", Jsonx.Float sim.Shard_runner.throughput);
              ("cross_commits", Jsonx.Int sim.Shard_runner.cross_commits);
              ("single_commits", Jsonx.Int sim.Shard_runner.single_commits);
              ("two_pc_steps", Jsonx.Int sim.Shard_runner.two_pc_steps);
              ("conflicts", Jsonx.Int sim.Shard_runner.conflicts);
              ("llt_reads", Jsonx.Int sim.Shard_runner.llt_reads);
              ("peak_space_bytes", Jsonx.Int sim.Shard_runner.peak_space);
              ("final_space_bytes", Jsonx.Int sim.Shard_runner.final_space);
              ("epochs", Jsonx.Int sim.Shard_runner.epochs);
              ("violations", Jsonx.Int violations);
              ("digest_mismatches", Jsonx.Int (List.length mismatches));
              ("domains_digest", Shard_runner.digest_to_json dom.Shard_runner.digest);
              ("wall_ms", Jsonx.Int wall_ms);
            ]
        in
        (sim, violations, List.length mismatches, row, json))
      sweep
  in
  Table.print
    ~header:
      [
        "shards"; "commits"; "commits/s"; "cross"; "2pc-steps"; "peak-bytes"; "epochs";
        "violations"; "mismatches"; "wall-ms";
      ]
    (List.map (fun (_, _, _, row, _) -> row) points);
  let clean =
    List.for_all (fun (_, v, m, _, _) -> v = 0 && m = 0) points
  in
  let cross_present =
    List.for_all
      (fun (sim, _, _, _, _) ->
        sim.Shard_runner.digest.Shard_runner.d_shards = 1
        || sim.Shard_runner.cross_commits > 0)
      points
  in
  Printf.printf "all points clean: %b; 2PC exercised at every multi-shard point: %b\n" clean
    cross_present;
  Obs_export.write_file "BENCH_shard.json"
    (Jsonx.Obj
       [
         ("bench", Jsonx.Str "shard");
         ("seed", Jsonx.Int 42);
         ("engine", Jsonx.Str "pg-vdriver");
         ("clean", Jsonx.Bool clean);
         ("cross_present", Jsonx.Bool cross_present);
         ("points", Jsonx.Arr (List.map (fun (_, _, _, _, j) -> j) points));
       ]);
  Printf.printf "-> BENCH_shard.json (%d shard counts)\n" (List.length sweep)
