let print ?(oc = stdout) ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make cols 0 in
  let record row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter record all;
  let print_row row =
    let cells =
      List.mapi
        (fun i cell -> cell ^ String.make (widths.(i) - String.length cell) ' ')
        row
    in
    output_string oc ("  " ^ String.concat "  " cells ^ "\n")
  in
  print_row header;
  let rule = List.mapi (fun i _ -> String.make widths.(i) '-') header in
  print_row rule;
  List.iter print_row rows

let fmt_f ?(decimals = 1) x = Printf.sprintf "%.*f" decimals x

let fmt_bytes n =
  let f = float_of_int n in
  if f >= 1024. *. 1024. *. 1024. then Printf.sprintf "%.1f GiB" (f /. (1024. *. 1024. *. 1024.))
  else if f >= 1024. *. 1024. then Printf.sprintf "%.1f MiB" (f /. (1024. *. 1024.))
  else if f >= 1024. then Printf.sprintf "%.1f KiB" (f /. 1024.)
  else Printf.sprintf "%d B" n
