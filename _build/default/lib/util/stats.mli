(** Small descriptive-statistics helpers for float samples. *)

val mean : float list -> float
(** Arithmetic mean; 0. for the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0. for lists shorter than 2. *)

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [0,1], nearest-rank on the sorted
    sample. Raises [Invalid_argument] on an empty list or out-of-range
    [p]. *)

val minimum : float list -> float
val maximum : float list -> float
