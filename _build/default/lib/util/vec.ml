type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }
let length t = t.len
let is_empty t = t.len = 0

let grow t elt =
  let cap = Array.length t.data in
  let new_cap = if cap = 0 then 8 else cap * 2 in
  let data = Array.make new_cap elt in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t x =
  if t.len = Array.length t.data then grow t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Vec: index out of bounds"

let get t i = check t i; t.data.(i)
let set t i x = check t i; t.data.(i) <- x

let pop t =
  if t.len = 0 then None
  else begin
    t.len <- t.len - 1;
    Some t.data.(t.len)
  end

let drop_front t k =
  if k < 0 || k > t.len then invalid_arg "Vec.drop_front";
  if k > 0 then begin
    Array.blit t.data k t.data 0 (t.len - k);
    t.len <- t.len - k
  end

let clear t =
  t.data <- [||];
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec loop i = i < t.len && (p t.data.(i) || loop (i + 1)) in
  loop 0

let to_array t = Array.sub t.data 0 t.len
let to_list t = Array.to_list (to_array t)

let of_list xs =
  let t = create () in
  List.iter (push t) xs;
  t

let filter_in_place p t =
  let j = ref 0 in
  for i = 0 to t.len - 1 do
    let x = t.data.(i) in
    if p x then begin
      t.data.(!j) <- x;
      incr j
    end
  done;
  t.len <- !j
