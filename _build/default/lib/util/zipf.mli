(** Zipfian distribution sampler.

    Implements Hörmann's rejection-inversion method, valid for any
    exponent [s > 0] (including [s >= 1], which the common YCSB formula
    cannot handle). This mirrors sysbench's [rand-zipfian-exp] knob used
    throughout the paper's evaluation. *)

type t

val create : n:int -> s:float -> t
(** [create ~n ~s] prepares a sampler over ranks [0 .. n-1] with
    exponent [s]. Rank 0 is the most popular item.
    Raises [Invalid_argument] if [n <= 0] or [s <= 0]. *)

val n : t -> int
val exponent : t -> float

val sample : t -> Rng.t -> int
(** Draw a rank in [\[0, n)]; smaller ranks are exponentially more
    likely. *)
