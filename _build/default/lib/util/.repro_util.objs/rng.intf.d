lib/util/rng.mli:
