lib/util/stats.mli:
