lib/util/histogram.mli:
