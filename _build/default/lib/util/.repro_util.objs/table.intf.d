lib/util/table.mli:
