lib/util/series.ml: List Vec
