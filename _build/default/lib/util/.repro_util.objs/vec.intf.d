lib/util/vec.mli:
