lib/util/series.mli:
