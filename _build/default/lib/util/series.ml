type t = { name : string; points : (float * float) Vec.t }

let create name = { name; points = Vec.create () }
let name t = t.name
let add t ~time ~value = Vec.push t.points (time, value)
let to_list t = Vec.to_list t.points

let last t =
  let n = Vec.length t.points in
  if n = 0 then None else Some (Vec.get t.points (n - 1))

let length t = Vec.length t.points

module Rate = struct
  type rate = { name : string; bucket : float; counts : int Vec.t; mutable total : int }

  let create ?(bucket = 1.0) name =
    if bucket <= 0. then invalid_arg "Series.Rate.create";
    { name; bucket; counts = Vec.create (); total = 0 }

  let name r = r.name

  let add r ~time ~count =
    if time < 0. then invalid_arg "Series.Rate.add: negative time";
    let idx = int_of_float (time /. r.bucket) in
    while Vec.length r.counts <= idx do
      Vec.push r.counts 0
    done;
    Vec.set r.counts idx (Vec.get r.counts idx + count);
    r.total <- r.total + count

  let incr r ~time = add r ~time ~count:1

  let per_second r =
    List.mapi
      (fun i c -> (float_of_int i *. r.bucket, float_of_int c /. r.bucket))
      (Vec.to_list r.counts)

  let total r = r.total
end
