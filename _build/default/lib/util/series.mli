(** Time series collected during a simulation run.

    [Series.t] stores raw (time, value) samples, e.g. version-space bytes
    sampled each simulated second. [Rate.t] buckets discrete events (e.g.
    commits) into fixed-width time windows and reports per-second rates —
    this is how the throughput curves of Figures 3, 13, 17 and 18 are
    produced. Times are in seconds. *)

type t

val create : string -> t
val name : t -> string
val add : t -> time:float -> value:float -> unit
val to_list : t -> (float * float) list
(** Samples in insertion (time) order. *)

val last : t -> (float * float) option
val length : t -> int

module Rate : sig
  type rate

  val create : ?bucket:float -> string -> rate
  (** [bucket] is the window width in seconds (default 1.0). *)

  val name : rate -> string
  val incr : rate -> time:float -> unit
  val add : rate -> time:float -> count:int -> unit

  val per_second : rate -> (float * float) list
  (** [(window_start_time, events_per_second)] for every window up to the
      last event seen, including empty windows. *)

  val total : rate -> int
end
