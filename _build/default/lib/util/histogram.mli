(** Fixed-width bucket histogram over non-negative integers, with CDF
    extraction. Used for the chain-length CDF (Figure 14) and cut-delay
    distributions (Figure 16). *)

type t

val create : ?bucket_width:int -> unit -> t
(** [create ~bucket_width ()] — values [v] are counted in bucket
    [v / bucket_width]. Default width 1. *)

val add : t -> int -> unit
(** Record one observation. Negative values raise [Invalid_argument]. *)

val add_many : t -> int -> count:int -> unit

val total : t -> int
(** Number of observations recorded. *)

val max_value : t -> int
(** Largest observation seen; 0 if empty. *)

val count_le : t -> int -> int
(** Observations whose bucket upper bound is [<=] the given value. *)

val cdf : t -> (int * float) list
(** [(v, f)] pairs: fraction [f] of observations fall in buckets whose
    representative value is [<= v]. Empty histogram gives []. *)

val percentile : t -> float -> int
(** [percentile t 0.99] is the smallest bucket representative covering at
    least that fraction of observations. Raises if the histogram is
    empty or the fraction is outside [0, 1]. *)
