(* Rejection-inversion sampling for the Zipf distribution, after
   W. Hörmann and G. Derflinger, "Rejection-inversion to generate variates
   from monotone discrete distributions" (1996). The [helper1]/[helper2]
   functions are numerically stable forms of log1p(x)/x and expm1(x)/x. *)

type t = {
  n : int;
  s : float;
  h_integral_x1 : float;
  h_integral_n : float;
  threshold : float;
}

let helper1 x = if Float.abs x > 1e-8 then Float.log1p x /. x else 1. -. (x /. 2.) +. (x *. x /. 3.)
let helper2 x = if Float.abs x > 1e-8 then Float.expm1 x /. x else 1. +. (x /. 2.) +. (x *. x /. 6.)

let h_integral ~s x =
  let log_x = Float.log x in
  helper2 ((1. -. s) *. log_x) *. log_x

let h ~s x = Float.exp (-.s *. Float.log x)

let h_integral_inverse ~s x =
  let t = x *. (1. -. s) in
  let t = if t < -1. then -1. else t in
  Float.exp (helper1 t *. x)

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s <= 0. then invalid_arg "Zipf.create: s must be positive";
  {
    n;
    s;
    h_integral_x1 = h_integral ~s 1.5 -. 1.;
    h_integral_n = h_integral ~s (float_of_int n +. 0.5);
    threshold = 2. -. h_integral_inverse ~s (h_integral ~s 2.5 -. h ~s 2.);
  }

let n t = t.n
let exponent t = t.s

let sample t rng =
  let s = t.s in
  let rec loop () =
    let u = t.h_integral_n +. (Rng.float rng *. (t.h_integral_x1 -. t.h_integral_n)) in
    let x = h_integral_inverse ~s u in
    let k = int_of_float (Float.round x) in
    let k = if k < 1 then 1 else if k > t.n then t.n else k in
    let kf = float_of_int k in
    if kf -. x <= t.threshold then k
    else if u >= h_integral ~s (kf +. 0.5) -. h ~s kf then k
    else loop ()
  in
  loop () - 1
