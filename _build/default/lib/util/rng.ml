type t = { mutable s : int64 }

let create seed = { s = Int64.of_int seed }

let next_int64 t =
  let open Int64 in
  t.s <- add t.s 0x9E3779B97F4A7C15L;
  let z = t.s in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* 62 non-negative bits of the raw stream. *)
let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod bound

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in_range: hi < lo";
  lo + int t (hi - lo + 1)

let float t =
  Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) *. 0x1p-53

let bool t = Int64.logand (next_int64 t) 1L = 1L
let split t = create (Int64.to_int (next_int64 t))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
