(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the reproduction draws from an explicit
    [Rng.t] so that experiments are replayable bit-for-bit from a seed. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds give equal
    streams. *)

val next_int64 : t -> int64
(** Next raw 64-bit output of the splitmix64 stream. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** [int_in_range t ~lo ~hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val split : t -> t
(** [split t] derives an independent generator, advancing [t]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
