let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
      let m = mean xs in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs
        /. float_of_int (List.length xs)
      in
      sqrt var

let percentile xs p =
  if xs = [] then invalid_arg "Stats.percentile: empty sample";
  if p < 0. || p > 1. then invalid_arg "Stats.percentile: fraction out of range";
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  let rank = int_of_float (ceil (p *. float_of_int n)) in
  a.(max 0 (min (n - 1) (rank - 1)))

let minimum = function
  | [] -> invalid_arg "Stats.minimum: empty sample"
  | x :: xs -> List.fold_left min x xs

let maximum = function
  | [] -> invalid_arg "Stats.maximum: empty sample"
  | x :: xs -> List.fold_left max x xs
