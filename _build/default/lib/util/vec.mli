(** Growable array (OCaml 5.1 predates stdlib [Dynarray]). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val pop : 'a t -> 'a option
(** Remove and return the last element, if any. *)

val drop_front : 'a t -> int -> unit
(** Remove the first [k] elements, shifting the rest down. Raises
    [Invalid_argument] if [k] is negative or exceeds the length. *)

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t
val filter_in_place : ('a -> bool) -> 'a t -> unit
(** Keep only elements satisfying the predicate, preserving order. *)
