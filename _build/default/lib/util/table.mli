(** Aligned ASCII table printing for benchmark output. *)

val print : ?oc:out_channel -> header:string list -> string list list -> unit
(** Print rows under a header with columns padded to the widest cell. *)

val fmt_f : ?decimals:int -> float -> string
(** Render a float with fixed decimals (default 1). *)

val fmt_bytes : int -> string
(** Human-readable byte count, e.g. "1.5 MiB". *)
