lib/core/prune_stats.ml: Array Format List Vclass
