lib/core/llb.ml: Chain Hashtbl Histogram
