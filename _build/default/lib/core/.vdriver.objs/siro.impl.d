lib/core/siro.ml: Read_view Timestamp Version
