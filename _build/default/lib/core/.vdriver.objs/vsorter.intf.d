lib/core/vsorter.mli: Clock State Vclass Version
