lib/core/collab.ml: Atomic Domain
