lib/core/state.ml: Array Buffer_pool Classifier Clock Hashtbl Llb Prune_stats Read_view Segment Txn_manager Vclass Vec Version_store Zone_set
