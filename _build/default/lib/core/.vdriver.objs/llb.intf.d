lib/core/llb.mli: Chain Histogram
