lib/core/vcutter.mli: Clock State
