lib/core/vcutter.ml: Buffer_pool Chain Collab List Llb Segment State Vec Version Version_store Zone_set
