lib/core/collab.mli:
