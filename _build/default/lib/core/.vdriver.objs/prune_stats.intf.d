lib/core/prune_stats.mli: Format Vclass
