lib/core/driver.ml: Array Buffer_pool Chain Hashtbl Llb Segment State Vcutter Vec Version_store Vsorter
