lib/core/vsorter.ml: Array Chain Classifier List Llb Prune Prune_stats Segment State Txn_manager Vclass Vec Version Version_store Zone_set
