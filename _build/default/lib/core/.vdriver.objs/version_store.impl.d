lib/core/version_store.ml: Clock Segment Vclass Vec
