lib/core/version_store.mli: Clock Segment Vclass
