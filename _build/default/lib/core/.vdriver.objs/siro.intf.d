lib/core/siro.mli: Clock Read_view Timestamp Version
