lib/core/driver.mli: Clock Histogram Prune_stats Read_view State Txn_manager Vcutter Version Version_store Vsorter
